// Quickstart: boot three storage peers on loopback, share a file
// through them, then fetch it back — the complete asymshare workflow
// in one process.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/core"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Identities: one user, three storage peers.
	user, err := auth.NewIdentity()
	if err != nil {
		return err
	}

	var addrs []string
	for i := 0; i < 3; i++ {
		id, err := auth.NewIdentity()
		if err != nil {
			return err
		}
		node, err := peer.New(peer.Config{Identity: id, Store: store.NewMemory()})
		if err != nil {
			return err
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer node.Close()
		addrs = append(addrs, node.Addr().String())
		fmt.Printf("peer %d (%s) listening on %s\n", i, id.Fingerprint(), node.Addr())
	}

	// A small coding plan keeps the demo fast; production use would keep
	// chunk.DefaultPlan() (GF(2^32), m=32768, 1MB generations, k=8).
	plan := chunk.Plan{FieldBits: gf.Bits16, M: 2048, ChunkSize: 64 << 10}
	sys, err := core.NewSystem(user, nil, core.WithPlan(plan))
	if err != nil {
		return err
	}

	// Share 200 KiB of "home video".
	data := make([]byte, 200<<10)
	rand.New(rand.NewSource(1)).Read(data)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	shareStart := time.Now()
	res, err := sys.ShareFile(ctx, "home-video.bin", data, addrs)
	if err != nil {
		return err
	}
	fmt.Printf("shared %d bytes as %d encoded messages (%d chunks) in %v\n",
		len(data), res.MessagesSent, len(res.Handle.Manifest.Chunks), time.Since(shareStart).Round(time.Millisecond))
	fmt.Printf("manifest carries %d per-message MD5 digests for authentication\n",
		res.Handle.Manifest.DigestCount())

	// Fetch it back "from a remote location": parallel download across
	// all three peers, decode with the secret.
	got, stats, err := sys.FetchFile(ctx, &res.Handle, res.Secret)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("decoded data mismatch")
	}
	fmt.Printf("fetched %d bytes in %v: %d messages from %d peers, %d innovative, %d rejected\n",
		len(got), stats.Elapsed.Round(time.Millisecond), stats.Messages, len(stats.BytesFrom),
		stats.Innovative, stats.Rejected)
	for fp, b := range stats.BytesFrom {
		fmt.Printf("  peer %s served %d bytes\n", fp, b)
	}
	fmt.Println("round trip OK — storage peers never saw the coding secret")
	return nil
}
