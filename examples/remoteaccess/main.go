// Remoteaccess: the headline experiment over a real TCP stack. A file
// is disseminated to several storage peers whose upload links are
// token-bucket shaped to a slow "home upload" rate; fetching from all
// of them in parallel fills the fast download pipe, beating the single
// upload bottleneck by roughly the number of peers (Fig. 4(a)).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/core"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

const (
	uploadRate = 96 << 10  // 96 KiB/s per peer: the slow home uplink
	fileSize   = 768 << 10 // 768 KiB "photo folder"
	numPeers   = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func startPeer(i int) (*peer.Node, error) {
	id, err := auth.NewIdentity()
	if err != nil {
		return nil, err
	}
	node, err := peer.New(peer.Config{
		Identity:          id,
		Store:             store.NewMemory(),
		UploadBytesPerSec: uploadRate,
		ReallocInterval:   100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if err := node.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	fmt.Printf("peer %d on %s, upload shaped to %d KiB/s\n", i, node.Addr(), uploadRate>>10)
	return node, nil
}

func run() error {
	user, err := auth.NewIdentity()
	if err != nil {
		return err
	}
	var addrs []string
	for i := 0; i < numPeers; i++ {
		node, err := startPeer(i)
		if err != nil {
			return err
		}
		defer node.Close()
		addrs = append(addrs, node.Addr().String())
	}

	plan := chunk.Plan{FieldBits: gf.Bits16, M: 4096, ChunkSize: fileSize}
	sys, err := core.NewSystem(user, nil, core.WithPlan(plan))
	if err != nil {
		return err
	}
	data := make([]byte, fileSize)
	rand.New(rand.NewSource(7)).Read(data)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fmt.Printf("\ndisseminating %d KiB to %d peers (initialization phase)...\n", fileSize>>10, numPeers)
	res, err := sys.ShareFile(ctx, "photos.tar", data, addrs)
	if err != nil {
		return err
	}

	// Baseline: fetch from a single peer — capped by its upload link.
	single := &core.Handle{Manifest: res.Handle.Manifest, Peers: addrs[:1]}
	fmt.Println("\nfetching from ONE peer (classic remote access):")
	got, stats, err := sys.FetchFile(ctx, single, res.Secret)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("single-peer decode mismatch")
	}
	singleRate := stats.EffectiveRate(len(got))
	fmt.Printf("  %v elapsed, %.0f KiB/s goodput\n", stats.Elapsed.Round(time.Millisecond), singleRate/1024)

	// The asymshare way: all peers in parallel.
	fmt.Printf("\nfetching from %d peers in parallel (asymshare):\n", numPeers)
	got, stats, err = sys.FetchFile(ctx, &res.Handle, res.Secret)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("parallel decode mismatch")
	}
	parallelRate := stats.EffectiveRate(len(got))
	fmt.Printf("  %v elapsed, %.0f KiB/s goodput\n", stats.Elapsed.Round(time.Millisecond), parallelRate/1024)
	for fp, b := range stats.BytesFrom {
		fmt.Printf("  peer %s contributed %d KiB\n", fp, b>>10)
	}
	fmt.Printf("\nspeedup over the upload bottleneck: %.1fx\n", parallelRate/singleRate)
	return nil
}
