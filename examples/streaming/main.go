// Streaming: the chunked delivery mode of Sec. III-D. A large "video"
// is encoded as independent generations; the Stream API decodes and
// delivers them strictly in order while prefetching later chunks in the
// background, so playback starts after the first chunk instead of after
// the whole file.
package main

import (
	"bytes"
	"context"
	"crypto/md5"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 1 MiB "video" split into 128 KiB generations.
	plan := chunk.Plan{FieldBits: gf.Bits16, M: 2048, ChunkSize: 128 << 10}
	video := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(video)

	secret, err := chunk.NewSecret()
	if err != nil {
		return err
	}
	share, err := chunk.BuildShare("movie.mpg", video, plan, 9000, secret)
	if err != nil {
		return err
	}
	fmt.Printf("encoded %d KiB into %d generations (k=%d each)\n",
		len(video)>>10, share.NumChunks(), share.Manifest.Chunks[0].K)

	// Two storage peers.
	user, err := auth.NewIdentity()
	if err != nil {
		return err
	}
	c, err := client.New(user, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var addrs []string
	for i := 0; i < 2; i++ {
		id, err := auth.NewIdentity()
		if err != nil {
			return err
		}
		node, err := peer.New(peer.Config{Identity: id, Store: store.NewMemory()})
		if err != nil {
			return err
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer node.Close()
		batches, err := share.BatchForPeer(i, 1024)
		if err != nil {
			return err
		}
		var flat []*rlnc.Message
		for _, b := range batches {
			flat = append(flat, b...)
		}
		if err := c.Disseminate(ctx, node.Addr().String(), flat); err != nil {
			return err
		}
		addrs = append(addrs, node.Addr().String())
		fmt.Printf("peer %d holds %d pre-fabricated messages\n", i, len(flat))
	}

	// "Play" the stream: chunks arrive in order while later chunks are
	// prefetched concurrently.
	stream, err := c.StreamFile(ctx, addrs, &share.Manifest, secret, client.StreamOptions{Prefetch: 2})
	if err != nil {
		return err
	}
	defer stream.Close()

	fmt.Println("\nplaying:")
	var played []byte
	start := time.Now()
	for {
		idx, data, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		played = append(played, data...)
		digest := md5.Sum(data)
		fmt.Printf("  chunk %d: %3d KiB at t=%-8v digest %x...\n",
			idx, len(data)>>10, time.Since(start).Round(time.Millisecond), digest[:4])
	}
	if !bytes.Equal(played, video) {
		return fmt.Errorf("playback differs from original")
	}
	stats := stream.Stats()
	fmt.Printf("\nplayed %d KiB: %d messages (%d innovative) from %d peers\n",
		len(played)>>10, stats.Messages, stats.Innovative, len(stats.BytesFrom))
	fmt.Println("first chunk was playable long before the file finished — Sec. III-D streaming")
	return nil
}
