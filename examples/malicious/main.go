// Malicious: adversarial behaviour, in both the allocation layer and
// the data layer.
//
// Part 1 simulates Sec. IV-C's resilience claims: a freeloader, and a
// two-peer coalition that serves only itself, against honest
// pairwise-proportional peers. The honest users keep (at least) their
// isolated bandwidth; the freeloader starves.
//
// Part 2 runs a real fetch where one storage peer serves forged
// payloads: the per-message MD5 digests (Sec. III-C) reject every
// forgery and the download completes from the honest peer.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/client"
	"asymshare/internal/fairshare"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/sim"
	"asymshare/internal/store"
	"asymshare/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := allocationAttacks(); err != nil {
		return err
	}
	return forgedMessageAttack()
}

func allocationAttacks() error {
	fmt.Println("=== Part 1: allocation-layer attacks (simulated, 4000 s) ===")
	coalition := map[fairshare.ID]bool{"colluder0": true, "colluder1": true}
	cfg := sim.Config{
		Slots: 4000,
		Peers: []sim.PeerConfig{
			{Name: "honest0", Upload: trace.Const(512), Demand: trace.NewBernoulli(0.5, 1)},
			{Name: "honest1", Upload: trace.Const(512), Demand: trace.NewBernoulli(0.5, 2)},
			{Name: "freeloader", Upload: trace.Const(0), Demand: trace.Always{}},
			{Name: "colluder0", Upload: trace.Const(512), Demand: trace.NewBernoulli(0.5, 3),
				Policy: fairshare.Favor{Members: coalition}},
			{Name: "colluder1", Upload: trace.Const(512), Demand: trace.NewBernoulli(0.5, 4),
				Policy: fairshare.Favor{Members: coalition}},
		},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-10s %-22s %s\n", "peer", "strategy", "mean download (kbps)", "isolated baseline")
	strategies := []string{"honest", "honest", "freeload", "collude", "collude"}
	baselines := []float64{0.5 * 512, 0.5 * 512, 0, 0.5 * 512, 0.5 * 512}
	for i, name := range res.Names {
		got := res.MeanDownload(i, 500, cfg.Slots)
		fmt.Printf("%-12s %-10s %-22.1f %.1f\n", name, strategies[i], got, baselines[i])
	}
	fmt.Println("honest peers clear their isolation bound (Theorem 1); the freeloader starves;")
	fmt.Println("collusion cannot take bandwidth that honest contributions did not earn")
	fmt.Println()
	return nil
}

func forgedMessageAttack() error {
	fmt.Println("=== Part 2: forged messages over real TCP ===")
	secret := make([]byte, rlnc.SecretLen)
	rand.New(rand.NewSource(5)).Read(secret)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(6)).Read(data)

	params, err := rlnc.ParamsForSize(gf.MustNew(gf.Bits16), len(data), 2048)
	if err != nil {
		return err
	}
	enc, err := rlnc.NewEncoder(params, 99, secret, data)
	if err != nil {
		return err
	}

	honestBatch, err := enc.BatchForPeer(0, params.K)
	if err != nil {
		return err
	}
	forgedBatch, err := enc.BatchForPeer(1, params.K)
	if err != nil {
		return err
	}
	digests := make(map[uint64]rlnc.Digest)
	for _, m := range honestBatch {
		digests[m.MessageID] = m.Digest()
	}
	for _, m := range forgedBatch {
		digests[m.MessageID] = m.Digest()
		m.Payload[0] ^= 0xAA // the adversary corrupts after digesting
	}

	userID, err := auth.NewIdentity()
	if err != nil {
		return err
	}
	c, err := client.New(userID, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var addrs []string
	for i, batch := range [][]*rlnc.Message{forgedBatch, honestBatch} {
		id, err := auth.NewIdentity()
		if err != nil {
			return err
		}
		node, err := peer.New(peer.Config{Identity: id, Store: store.NewMemory()})
		if err != nil {
			return err
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer node.Close()
		if err := c.Disseminate(ctx, node.Addr().String(), batch); err != nil {
			return err
		}
		addrs = append(addrs, node.Addr().String())
		kind := "FORGING"
		if i == 1 {
			kind = "honest"
		}
		fmt.Printf("peer %s (%s) holds %d messages\n", node.Addr(), kind, len(batch))
	}

	got, stats, err := c.FetchGeneration(ctx, addrs, params, 99, secret, digests)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("decoded data mismatch")
	}
	fmt.Printf("fetch completed: %d messages seen, %d forgeries rejected by MD5, %d innovative used\n",
		stats.Messages, stats.Rejected, stats.Innovative)
	fmt.Println("the forging peer wasted its bandwidth; the download was unharmed")
	return nil
}
