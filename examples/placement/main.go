// Placement: the "geographic data robustness" story. A file is placed
// on a consistent-hashing ring (PAST-style) with 2 replicas per
// generation across 5 peers, so each peer stores only ~40% of the
// data. One peer then suffers a disk failure; the audit spots the
// damage and repair regenerates exactly the lost batches from the
// original data — deterministically, because every message is a pure
// function of (file-id, message-id, secret).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/core"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/ring"
	"asymshare/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	user, err := auth.NewIdentity()
	if err != nil {
		return err
	}
	plan := chunk.Plan{FieldBits: gf.Bits16, M: 1024, ChunkSize: 32 << 10}
	sys, err := core.NewSystem(user, nil, core.WithPlan(plan))
	if err != nil {
		return err
	}

	stores := make(map[string]*store.Memory)
	var addrs []string
	for i := 0; i < 5; i++ {
		id, err := auth.NewIdentity()
		if err != nil {
			return err
		}
		st := store.NewMemory()
		node, err := peer.New(peer.Config{Identity: id, Store: st})
		if err != nil {
			return err
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer node.Close()
		addrs = append(addrs, node.Addr().String())
		stores[node.Addr().String()] = st
	}
	r, err := ring.New(addrs, 0)
	if err != nil {
		return err
	}

	data := make([]byte, 256<<10) // 8 generations of 32 KiB
	rand.New(rand.NewSource(3)).Read(data)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	res, err := sys.ShareFilePlaced(ctx, "archive.tar", data, r, 2)
	if err != nil {
		return err
	}
	fmt.Printf("placed %d generations x2 replicas on %d peers\n",
		len(res.Handle.Manifest.Chunks), len(addrs))
	for addr, st := range stores {
		fmt.Printf("  %s stores %d messages\n", addr, st.TotalMessages())
	}

	report, err := sys.Audit(ctx, &res.Handle)
	if err != nil {
		return err
	}
	fmt.Printf("audit: healthy=%v (%d batches tracked)\n\n", report.Healthy(), report.TotalBatches)

	// Disaster: one peer loses its whole store.
	victim := res.Handle.ChunkPeers[0][0]
	for _, fid := range stores[victim].Files() {
		if err := stores[victim].Drop(fid); err != nil {
			return err
		}
	}
	fmt.Printf("disk failure at %s: store wiped\n", victim)

	report, err = sys.Audit(ctx, &res.Handle)
	if err != nil {
		return err
	}
	fmt.Printf("audit: healthy=%v, missing batches: %v\n", report.Healthy(), report.MissingByPeer[victim])

	// Even degraded, the file still fetches (the other replica serves).
	got, _, err := sys.FetchFile(ctx, &res.Handle, res.Secret)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("degraded fetch mismatch")
	}
	fmt.Println("degraded fetch still succeeds via surviving replicas")

	n, err := sys.Repair(ctx, &res.Handle, res.Secret, data)
	if err != nil {
		return err
	}
	report, err = sys.Audit(ctx, &res.Handle)
	if err != nil {
		return err
	}
	fmt.Printf("repair re-uploaded %d messages; audit healthy=%v\n", n, report.Healthy())
	return nil
}
