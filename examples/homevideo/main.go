// Homevideo: the motivating scenario of the paper's introduction.
// Three users with asymmetric home links (256/512/1024 kbps upload)
// stream their home videos remotely during 12 random hours of the day.
// Cooperating through the pairwise-proportional scheme (Eq. 2), each
// enjoys a download rate above what its own home upload could ever
// deliver — the shaded "gain" regions of Fig. 6.
package main

import (
	"fmt"
	"log"

	"asymshare/internal/figures"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One simulated minute per slot keeps the demo snappy; pass
	// SlotsPerHour: 3600 for the paper's full resolution.
	const slotsPerHour = 600
	_, res, gains, err := figures.HomeVideo(figures.HomeVideoOptions{
		SlotsPerHour: slotsPerHour,
		Seed:         2006,
	})
	if err != nil {
		return err
	}

	uploads := []float64{256, 512, 1024}
	fmt.Println("24-hour home-video day, 3 cooperating peers")
	fmt.Println()
	fmt.Printf("%-8s %-12s %-16s %-14s %s\n", "peer", "upload", "avg while busy", "isolated", "gain")
	for i, u := range uploads {
		rate := res.MeanDownloadWhileRequesting(i, 0, res.Slots())
		fmt.Printf("peer %-3d %7.0f kbps %11.0f kbps %9.0f kbps %+8.0f kbps\n",
			i, u, rate, u, gains[i])
	}
	fmt.Println()

	// An hour-by-hour view of peer 0's day: busy hours show service at
	// rates its own 256 kbps uplink could never sustain.
	fmt.Println("peer 0, hour by hour (* = streaming):")
	for hour := 0; hour < 24; hour++ {
		from, to := hour*slotsPerHour, (hour+1)*slotsPerHour
		busy := res.Requesting[0][from]
		rate := res.MeanDownload(0, from, to)
		marker := " "
		if busy {
			marker = "*"
		}
		bar := ""
		for i := 0; i < int(rate/50); i++ {
			bar += "#"
		}
		fmt.Printf("  %02d:00 %s %6.0f kbps %s\n", hour, marker, rate, bar)
	}
	fmt.Println()
	fmt.Println("every gain above is bandwidth the 'use it or lose it' ISP model would have wasted")
	return nil
}
