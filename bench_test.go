package asymshare

// One benchmark per table and figure of the paper, plus ablations.
// Each benchmark regenerates the corresponding result at a reduced but
// shape-preserving scale and reports the headline quantity through
// b.ReportMetric, so `go test -bench=.` doubles as the reproduction
// harness. cmd/paperfig emits the full-scale series.

import (
	"fmt"
	"math/rand"
	"testing"

	"asymshare/internal/eventsim"
	"asymshare/internal/fairshare"
	"asymshare/internal/figures"
	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
	"asymshare/internal/sim"
	"asymshare/internal/trace"
)

// BenchmarkFig1 regenerates the transmission-time curves of Figure 1
// and reports the headline cable-modem upload/download gap in hours.
func BenchmarkFig1(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Fig1()
	}
	if len(fig.Series) != 4 {
		b.Fatal("wrong series count")
	}
	up, down := figures.Fig1Headline()
	b.ReportMetric(up, "upload_h")
	b.ReportMetric(down*60, "download_min")
}

// BenchmarkTable1 regenerates the k grid of Table I.
func BenchmarkTable1(b *testing.B) {
	var tbl *figures.Table
	for i := 0; i < b.N; i++ {
		tbl = figures.Table1()
	}
	// Paper check: GF(2^32) @ m=2^15 gives k=8.
	if tbl.Cells[3][2] != 8 {
		b.Fatalf("table1 corrupted: %v", tbl.Cells)
	}
}

// BenchmarkDecode1MB is Table II: decode (== encode) time for 1 MB of
// data across the (q, m) grid. The per-iteration work is one full
// decode of k fresh messages.
func BenchmarkDecode1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, figures.TableDataBytes)
	rng.Read(data)
	secret := make([]byte, rlnc.SecretLen)
	rng.Read(secret)

	for _, bits := range figures.TableFieldBits {
		field := gf.MustNew(bits)
		for _, m := range figures.TableMessageLens {
			name := fmt.Sprintf("GF2_%d/m=2^%d", bits, log2(m))
			b.Run(name, func(b *testing.B) {
				params, err := rlnc.ParamsForSize(field, len(data), m)
				if err != nil {
					b.Fatal(err)
				}
				enc, err := rlnc.NewEncoder(params, 1, secret, data)
				if err != nil {
					b.Fatal(err)
				}
				msgs := make([]*rlnc.Message, params.K)
				for i := range msgs {
					msgs[i] = enc.Message(uint64(i))
				}
				b.SetBytes(int64(len(data)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dec, err := rlnc.NewDecoder(params, 1, secret, nil)
					if err != nil {
						b.Fatal(err)
					}
					for _, msg := range msgs {
						if dec.Done() {
							break
						}
						if _, err := dec.Add(msg); err != nil {
							b.Fatal(err)
						}
					}
					// Random GF(2^4) rows are occasionally dependent;
					// top up with extra messages.
					for id := uint64(params.K); !dec.Done(); id++ {
						if _, err := dec.Add(enc.Message(id)); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := dec.Decode(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEncode1MB measures the owner-side cost of minting one
// encoded message (the initialization phase is k such messages per
// peer).
func BenchmarkEncode1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, figures.TableDataBytes)
	rng.Read(data)
	secret := make([]byte, rlnc.SecretLen)
	rng.Read(secret)
	for _, bits := range figures.TableFieldBits {
		field := gf.MustNew(bits)
		const m = 1 << 15
		b.Run(fmt.Sprintf("GF2_%d/m=2^15", bits), func(b *testing.B) {
			params, err := rlnc.ParamsForSize(field, len(data), m)
			if err != nil {
				b.Fatal(err)
			}
			enc, err := rlnc.NewEncoder(params, 1, secret, data)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(params.ChunkBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.Message(uint64(i))
			}
		})
	}
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BenchmarkFig5a: ten saturated users converge to their own upload
// rates; reports the worst relative deviation at steady state.
func BenchmarkFig5a(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = figures.Fig5a(1800)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for i := 0; i < 10; i++ {
		want := float64(100 * (i + 1))
		got := res.MeanDownload(i, 1500, 1800)
		dev := abs(got-want) / want
		if dev > worst {
			worst = dev
		}
	}
	b.ReportMetric(worst*100, "worst_dev_%")
}

// BenchmarkFig5b: fairness with a dominating peer; reports the
// dominant peer's steady-state rate (paper: ~1024 kbps).
func BenchmarkFig5b(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = figures.Fig5b(1800)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanDownload(2, 1500, 1800), "dominant_kbps")
}

// BenchmarkFig6: the 24-hour home-video day; reports the smallest
// per-user gain over isolation (paper: strictly positive for all).
func BenchmarkFig6(b *testing.B) {
	var gains []float64
	for i := 0; i < b.N; i++ {
		var err error
		_, _, gains, err = figures.HomeVideo(figures.HomeVideoOptions{SlotsPerHour: 300, Seed: 2006})
		if err != nil {
			b.Fatal(err)
		}
	}
	minGain := gains[0]
	for _, g := range gains[1:] {
		if g < minGain {
			minGain = g
		}
	}
	b.ReportMetric(minGain, "min_gain_kbps")
}

// BenchmarkFig7: same day with peer 1 contributing only after hour 3;
// reports how much gain peer 1 lost versus the Fig. 6 baseline.
func BenchmarkFig7(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		_, _, base, err := figures.HomeVideo(figures.HomeVideoOptions{SlotsPerHour: 300, Seed: 2006})
		if err != nil {
			b.Fatal(err)
		}
		_, _, late, err := figures.HomeVideo(figures.HomeVideoOptions{
			SlotsPerHour: 300, Seed: 2006, Peer1StartHour: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		penalty = base[1] - late[1]
	}
	b.ReportMetric(penalty, "peer1_penalty_kbps")
}

// BenchmarkFig8a: contribute-while-idle credit; reports the early
// contributor's advantage over the late joiner right after both join.
func BenchmarkFig8a(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = figures.Fig8a(1600)
		if err != nil {
			b.Fatal(err)
		}
	}
	saver := res.MeanDownload(0, 1000, 1200)
	late := res.MeanDownload(1, 1000, 1200)
	b.ReportMetric(saver-late, "advantage_kbps")
}

// BenchmarkFig8b: the capacity drop/recovery; reports the depth of the
// dip relative to the pre-drop rate.
func BenchmarkFig8b(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = figures.Fig8b(figures.Fig8bOptions{Slots: 4000})
		if err != nil {
			b.Fatal(err)
		}
	}
	before := res.MeanDownload(0, 800, 1000)
	during := res.MeanDownload(0, 2800, 3000)
	b.ReportMetric((before-during)/before*100, "dip_%")
}

// BenchmarkAblationLedgerDecay compares adaptation speed of the
// cumulative ledger against the decaying variant on the Fig. 8(b)
// drop; reports the rate advantage (lower is faster adaptation) of the
// decaying ledger shortly after the drop.
func BenchmarkAblationLedgerDecay(b *testing.B) {
	var cumulative, decayed *sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, cumulative, err = figures.Fig8b(figures.Fig8bOptions{Slots: 2000})
		if err != nil {
			b.Fatal(err)
		}
		_, decayed, err = figures.Fig8b(figures.Fig8bOptions{Slots: 2000, LedgerDecay: 0.995})
		if err != nil {
			b.Fatal(err)
		}
	}
	c := cumulative.MeanDownload(0, 1200, 1500)
	d := decayed.MeanDownload(0, 1200, 1500)
	b.ReportMetric(c-d, "faster_adapt_kbps")
}

// BenchmarkAblationAllocators pits Eq. (2) against the Eq. (3)
// baseline when one peer lies about its capacity: under global
// proportional fairness the liar captures bandwidth; under the
// pairwise rule it cannot. Reports the liar's take under each rule.
func BenchmarkAblationAllocators(b *testing.B) {
	liarTake := func(alloc func(declared map[fairshare.ID]float64) fairshare.Allocator) float64 {
		// Peer "liar" contributes 0 but declares 10000.
		declared := map[fairshare.ID]float64{"liar": 10000, "h0": 512, "h1": 512}
		cfg := sim.Config{
			Slots: 1500,
			Peers: []sim.PeerConfig{
				{Name: "liar", Upload: trace.Const(0), Demand: trace.Always{}, Policy: alloc(declared)},
				{Name: "h0", Upload: trace.Const(512), Demand: trace.Always{}, Policy: alloc(declared)},
				{Name: "h1", Upload: trace.Const(512), Demand: trace.Always{}, Policy: alloc(declared)},
			},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.MeanDownload(0, 1000, 1500)
	}
	var eq3, eq2 float64
	for i := 0; i < b.N; i++ {
		eq3 = liarTake(func(d map[fairshare.ID]float64) fairshare.Allocator {
			return fairshare.GlobalProportional{DeclaredUpload: d}
		})
		eq2 = liarTake(func(map[fairshare.ID]float64) fairshare.Allocator {
			return fairshare.PairwiseProportional{}
		})
	}
	b.ReportMetric(eq3, "liar_eq3_kbps")
	b.ReportMetric(eq2, "liar_eq2_kbps")
}

// BenchmarkInnovationOverhead measures the extra messages beyond k a
// decoder needs across field sizes — the cost of the w.h.p.
// independence argument, which shrinks as q grows.
func BenchmarkInnovationOverhead(b *testing.B) {
	for _, bits := range figures.TableFieldBits {
		field := gf.MustNew(bits)
		b.Run(fmt.Sprintf("GF2_%d", bits), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			secret := make([]byte, rlnc.SecretLen)
			rng.Read(secret)
			const k = 32
			params, err := rlnc.NewParams(field, k, 16, k*gf.VecBytes(field.Bits(), 16))
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, params.DataLen)
			rng.Read(data)
			enc, err := rlnc.NewEncoder(params, 1, secret, data)
			if err != nil {
				b.Fatal(err)
			}
			extra := 0
			total := 0
			for i := 0; i < b.N; i++ {
				dec, err := rlnc.NewDecoder(params, 1, secret, nil)
				if err != nil {
					b.Fatal(err)
				}
				sent := 0
				for id := uint64(i) << 16; !dec.Done(); id++ {
					if _, err := dec.Add(enc.Message(id)); err != nil {
						b.Fatal(err)
					}
					sent++
				}
				extra += sent - k
				total++
			}
			b.ReportMetric(float64(extra)/float64(total), "extra_msgs")
		})
	}
}

// BenchmarkAblationTitForTat compares Jain fairness under the paper's
// Eq. (2) and a BitTorrent-style top-2 tit-for-tat in a saturated
// heterogeneous network.
func BenchmarkAblationTitForTat(b *testing.B) {
	var res *figures.TitForTatAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = figures.TitForTatAblation(3000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.JainEq2, "jain_eq2")
	b.ReportMetric(res.JainTFT, "jain_tft")
}

// BenchmarkRobustness measures the decode-success table of the
// partial-storage robustness experiment and reports the success rate
// at the critical a*k' == k boundary.
func BenchmarkRobustness(b *testing.B) {
	var tbl *figures.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = figures.Robustness(figures.RobustnessOptions{
			K: 16, KPrimes: []int{4}, MaxPeers: 4, Trials: 40, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tbl.Cells[0][3], "success_at_boundary")
}

// BenchmarkRecode measures relay recombination throughput — the
// operation the paper's verbatim-forwarding design avoids on peers.
func BenchmarkRecode(b *testing.B) {
	for _, bits := range []uint{gf.Bits8, gf.Bits32} {
		field := gf.MustNew(bits)
		b.Run(fmt.Sprintf("GF2_%d", bits), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			const k, m = 16, 4096
			params, err := rlnc.NewParams(field, k, m, k*gf.VecBytes(field.Bits(), m))
			if err != nil {
				b.Fatal(err)
			}
			secret := make([]byte, rlnc.SecretLen)
			rng.Read(secret)
			data := make([]byte, params.DataLen)
			rng.Read(data)
			enc, err := rlnc.NewEncoder(params, 1, secret, data)
			if err != nil {
				b.Fatal(err)
			}
			gen, err := rlnc.NewCoeffGenerator(field, k, secret)
			if err != nil {
				b.Fatal(err)
			}
			relay, err := rlnc.NewRecoder(params, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			for id := uint64(0); id < k; id++ {
				if err := relay.Absorb(rlnc.PacketFromMessage(gen, enc.Message(id))); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(params.ChunkBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := relay.Emit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoeffRow measures secret-coefficient derivation, the
// owner-side cost the coefficient-header mode trades for bandwidth.
func BenchmarkCoeffRow(b *testing.B) {
	for _, k := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			field := gf.MustNew(gf.Bits32)
			gen, err := rlnc.NewCoeffGenerator(field, k, make([]byte, rlnc.SecretLen))
			if err != nil {
				b.Fatal(err)
			}
			row := make([]uint32, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen.RowInto(1, uint64(i), row)
			}
		})
	}
}

// BenchmarkEventSimCrossValidation runs the message-granular simulator
// against the fluid model on the same saturated scenario and reports
// the worst disagreement between their steady-state rates.
func BenchmarkEventSimCrossValidation(b *testing.B) {
	uploads := []float64{200, 500, 800, 1100}
	var worst float64
	for i := 0; i < b.N; i++ {
		evCfg := eventsim.Config{Duration: 3000, Seed: 1}
		flCfg := sim.Config{Slots: 3000}
		for j, u := range uploads {
			name := fmt.Sprintf("p%d", j)
			evCfg.Peers = append(evCfg.Peers, eventsim.PeerConfig{
				Name: name, UploadKbps: u, Demand: trace.Always{},
			})
			flCfg.Peers = append(flCfg.Peers, sim.PeerConfig{
				Name: name, Upload: trace.Const(u), Demand: trace.Always{},
			})
		}
		evRes, err := eventsim.Run(evCfg)
		if err != nil {
			b.Fatal(err)
		}
		flRes, err := sim.Run(flCfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for j := range uploads {
			dev := abs(evRes.MeanRateKbps(j)-flRes.MeanDownload(j, 2000, 3000)) /
				flRes.MeanDownload(j, 2000, 3000)
			if dev > worst {
				worst = dev
			}
		}
	}
	b.ReportMetric(worst*100, "max_disagreement_%")
}

// BenchmarkQuantization reports the Sec. III-D fairness dilution: the
// worst fixed-point deviation at a huge message size relative to a
// small one.
func BenchmarkQuantization(b *testing.B) {
	var tbl *figures.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = figures.Quantization(2500, []float64{64, 16384}, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tbl.Cells[0][0], "dev_small_msg")
	b.ReportMetric(tbl.Cells[1][0], "dev_large_msg")
}

// BenchmarkChurn reports fairness under rapid churn.
func BenchmarkChurn(b *testing.B) {
	var res *figures.ChurnResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = figures.Churn(10000, 6, 200, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Jain, "jain")
	b.ReportMetric(res.MinNormalized, "min_ratio")
}
