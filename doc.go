// Package asymshare reproduces "Fast data access over asymmetric
// channels using fair and secure bandwidth sharing" (Agarwal,
// Laifenfeld, Trachtenberg, Alanyali; ICDCS 2006).
//
// The implementation lives under internal/:
//
//   - internal/gf        — GF(2^4/8/16/32) arithmetic
//   - internal/rlnc      — secret-coefficient random linear coding
//   - internal/chunk     — 1 MB generations, manifests, digests
//   - internal/store     — per-peer message storage (Fig. 3 layout)
//   - internal/auth,wire — mutual challenge-response + framing
//   - internal/fairshare — Eq. (2) allocation, Eq. (3) baseline, attacks
//   - internal/trace,sim — workloads and the Sec. V discrete simulator
//   - internal/peer,client,core — the real TCP system
//   - internal/figures   — one generator per paper table/figure
//
// The benchmarks in bench_test.go regenerate every table and figure;
// see EXPERIMENTS.md for paper-versus-measured results.
package asymshare
