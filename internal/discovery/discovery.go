// Package discovery defines the content-location seam: mapping a
// generation's file-id to the addresses of the peers storing its
// messages. The paper assumes a central tracker plays this role
// (Sec. II); this package makes that one implementation among several —
// the Kademlia-style DHT is the primary, trackerless path, and Failover
// composes them so the tracker degrades into an optional bootstrap
// seed. Everything above (core, harness, CLI) programs against the
// interface and neither knows nor cares which mechanism resolved a
// peer.
package discovery

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrNotFound is returned by Lookup when the mechanism worked but no
// peer is registered for the file-id. It is a fallback-worthy outcome:
// another mechanism may know peers this one does not.
var ErrNotFound = errors.New("discovery: no peers found")

// ErrBadRecord is returned for malformed announce/lookup inputs. It is
// fatal: every mechanism will reject the same input the same way.
var ErrBadRecord = errors.New("discovery: malformed record")

// Discovery resolves file-ids to storage peer addresses.
//
// Announce registers addr as holding messages of fileID for ttl (zero
// requests the mechanism's maximum). Lookup returns the known
// addresses, or ErrNotFound if there are none. Close releases any
// background state (re-announce loops, owned nodes); the Discovery is
// unusable afterwards.
type Discovery interface {
	Announce(ctx context.Context, fileID uint64, addr string, ttl time.Duration) error
	Lookup(ctx context.Context, fileID uint64) ([]string, error)
	Close() error
}

// Retriable reports whether err names an outcome worth trying on
// another discovery mechanism: the record may exist elsewhere
// (ErrNotFound), or this mechanism was unreachable (dial failures,
// deadlines, cancellation, partitions). Fatal errors — malformed
// records, protocol violations — fail everywhere alike, so a failover
// chain surfaces them immediately instead of burning the remaining
// budget on mechanisms that will reject them too.
func Retriable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrBadRecord) {
		return false
	}
	if errors.Is(err, ErrNotFound) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) {
		return true
	}
	var netErr net.Error
	if errors.As(err, &netErr) {
		return true
	}
	// Unrecognized errors are treated as transport-ish: trying the next
	// mechanism is cheap relative to failing a fetch outright.
	return true
}

// Failover chains discovery mechanisms, primary first.
//
// Lookup consults mechanisms in order and returns the first non-empty
// answer, falling through only on Retriable errors; a fatal error
// aborts the chain. Announce registers the record with every mechanism
// (the DHT for the trackerless path AND the tracker bootstrap seed,
// say) and succeeds if at least one accepted it.
type Failover struct {
	chain []Discovery
}

// NewFailover builds a failover chain; the first mechanism is primary.
func NewFailover(chain ...Discovery) (*Failover, error) {
	if len(chain) == 0 {
		return nil, errors.New("discovery: failover needs at least one mechanism")
	}
	return &Failover{chain: chain}, nil
}

// Announce implements Discovery: best-effort on every mechanism.
func (f *Failover) Announce(ctx context.Context, fileID uint64, addr string, ttl time.Duration) error {
	var firstErr error
	ok := 0
	for _, d := range f.chain {
		if err := d.Announce(ctx, fileID, addr, ttl); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if !Retriable(err) {
				return err
			}
			continue
		}
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("discovery: announce failed on all %d mechanisms: %w", len(f.chain), firstErr)
	}
	return nil
}

// Lookup implements Discovery: first mechanism with an answer wins.
func (f *Failover) Lookup(ctx context.Context, fileID uint64) ([]string, error) {
	var firstErr error
	for _, d := range f.chain {
		addrs, err := d.Lookup(ctx, fileID)
		if err == nil && len(addrs) > 0 {
			return addrs, nil
		}
		if err == nil {
			err = ErrNotFound
		}
		if !Retriable(err) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("discovery: all %d mechanisms failed: %w", len(f.chain), firstErr)
}

// Close closes every mechanism in the chain.
func (f *Failover) Close() error {
	var firstErr error
	for _, d := range f.chain {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ Discovery = (*Failover)(nil)
