package discovery

// Failover semantics: retriable errors consult the next mechanism,
// fatal ones abort the chain. These are the error-classification
// contracts the netsim failover tests exercise end-to-end.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// fake is a scriptable Discovery for chain-order assertions.
type fake struct {
	name        string
	lookupErr   error
	lookupAddrs []string
	announceErr error

	lookups   atomic.Int64
	announces atomic.Int64
	closed    atomic.Bool
}

func (f *fake) Announce(ctx context.Context, fileID uint64, addr string, ttl time.Duration) error {
	f.announces.Add(1)
	return f.announceErr
}

func (f *fake) Lookup(ctx context.Context, fileID uint64) ([]string, error) {
	f.lookups.Add(1)
	if f.lookupErr != nil {
		return nil, f.lookupErr
	}
	return f.lookupAddrs, nil
}

func (f *fake) Close() error {
	f.closed.Store(true)
	return nil
}

// timeoutErr satisfies net.Error, the shape a dial into a blackholed
// host produces.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestRetriableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"bad record", ErrBadRecord, false},
		{"wrapped bad record", fmt.Errorf("announce: %w", ErrBadRecord), false},
		{"joined bad record", errors.Join(ErrBadRecord, errors.New("code 3")), false},
		{"not found", ErrNotFound, true},
		{"deadline", context.DeadlineExceeded, true},
		{"canceled", context.Canceled, true},
		{"net timeout", timeoutErr{}, true},
		{"wrapped net timeout", fmt.Errorf("dial: %w", timeoutErr{}), true},
		{"op error", &net.OpError{Op: "dial", Err: errors.New("refused")}, true},
		{"unknown", errors.New("mystery"), true},
	}
	for _, tc := range cases {
		if got := Retriable(tc.err); got != tc.want {
			t.Errorf("Retriable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFailoverLookupFallsThroughOnRetriable(t *testing.T) {
	ctx := context.Background()
	for _, primaryErr := range []error{ErrNotFound, timeoutErr{}, context.DeadlineExceeded} {
		primary := &fake{name: "dht", lookupErr: primaryErr}
		backup := &fake{name: "tracker", lookupAddrs: []string{"peer1:1", "peer2:1"}}
		f, err := NewFailover(primary, backup)
		if err != nil {
			t.Fatal(err)
		}
		addrs, err := f.Lookup(ctx, 7)
		if err != nil {
			t.Fatalf("primaryErr=%v: lookup failed: %v", primaryErr, err)
		}
		if len(addrs) != 2 {
			t.Fatalf("primaryErr=%v: got %v, want backup's 2 addrs", primaryErr, addrs)
		}
		if primary.lookups.Load() != 1 || backup.lookups.Load() != 1 {
			t.Fatalf("primaryErr=%v: lookup counts primary=%d backup=%d, want 1/1",
				primaryErr, primary.lookups.Load(), backup.lookups.Load())
		}
	}
}

func TestFailoverLookupPrimaryWinsWithoutConsultingBackup(t *testing.T) {
	primary := &fake{name: "dht", lookupAddrs: []string{"peerA:1"}}
	backup := &fake{name: "tracker", lookupAddrs: []string{"peerB:1"}}
	f, _ := NewFailover(primary, backup)
	addrs, err := f.Lookup(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != "peerA:1" {
		t.Fatalf("got %v, want primary's answer", addrs)
	}
	if backup.lookups.Load() != 0 {
		t.Fatal("backup consulted even though primary answered")
	}
}

func TestFailoverLookupFatalAbortsChain(t *testing.T) {
	primary := &fake{name: "dht", lookupErr: fmt.Errorf("rejected: %w", ErrBadRecord)}
	backup := &fake{name: "tracker", lookupAddrs: []string{"peerB:1"}}
	f, _ := NewFailover(primary, backup)
	_, err := f.Lookup(context.Background(), 7)
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord surfaced", err)
	}
	if backup.lookups.Load() != 0 {
		t.Fatal("fatal error still consulted the backup mechanism")
	}
}

func TestFailoverLookupAllFailReportsFirstError(t *testing.T) {
	primary := &fake{name: "dht", lookupErr: ErrNotFound}
	backup := &fake{name: "tracker", lookupErr: timeoutErr{}}
	f, _ := NewFailover(primary, backup)
	_, err := f.Lookup(context.Background(), 7)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want the primary's ErrNotFound preserved", err)
	}
}

func TestFailoverAnnounceBestEffort(t *testing.T) {
	// One mechanism down: announce still succeeds and reaches the other.
	primary := &fake{name: "dht", announceErr: timeoutErr{}}
	backup := &fake{name: "tracker"}
	f, _ := NewFailover(primary, backup)
	if err := f.Announce(context.Background(), 7, "peer:1", time.Minute); err != nil {
		t.Fatalf("announce with one live mechanism failed: %v", err)
	}
	if primary.announces.Load() != 1 || backup.announces.Load() != 1 {
		t.Fatal("announce did not attempt every mechanism")
	}

	// All down: the failure propagates.
	p2 := &fake{announceErr: timeoutErr{}}
	b2 := &fake{announceErr: ErrNotFound}
	f2, _ := NewFailover(p2, b2)
	if err := f2.Announce(context.Background(), 7, "peer:1", time.Minute); err == nil {
		t.Fatal("announce succeeded with every mechanism failing")
	}

	// Fatal input: abort immediately, do not spam the rest of the chain.
	p3 := &fake{announceErr: fmt.Errorf("reject: %w", ErrBadRecord)}
	b3 := &fake{}
	f3, _ := NewFailover(p3, b3)
	if err := f3.Announce(context.Background(), 7, "peer:1", time.Minute); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", err)
	}
	if b3.announces.Load() != 0 {
		t.Fatal("fatal announce error still reached the backup mechanism")
	}
}

func TestFailoverCloseClosesChain(t *testing.T) {
	a, b := &fake{}, &fake{}
	f, _ := NewFailover(a, b)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !a.closed.Load() || !b.closed.Load() {
		t.Fatal("close did not reach every mechanism")
	}
}
