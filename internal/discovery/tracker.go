package discovery

// The tracker-backed implementation: the paper's central
// content-location service, now just one Discovery among several —
// typically the bootstrap seed behind the DHT in a Failover chain.

import (
	"context"
	"errors"
	"time"

	"asymshare/internal/tracker"
	"asymshare/internal/transport"
	"asymshare/internal/wire"
)

// DefaultTrackerTimeout bounds one tracker round-trip so a dead
// tracker fails fast enough for a Failover chain to consult the next
// mechanism within the caller's budget.
const DefaultTrackerTimeout = 3 * time.Second

// Tracker resolves and announces through one tracker server.
type Tracker struct {
	addr    string
	tr      transport.Transport
	timeout time.Duration
}

// NewTracker returns a tracker-backed Discovery. tr nil means real TCP.
func NewTracker(addr string, tr transport.Transport) (*Tracker, error) {
	if addr == "" {
		return nil, errors.New("discovery: tracker address required")
	}
	if tr == nil {
		tr = transport.Default
	}
	return &Tracker{addr: addr, tr: tr, timeout: DefaultTrackerTimeout}, nil
}

// SetTimeout overrides the per-call budget; d <= 0 restores the
// default.
func (t *Tracker) SetTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultTrackerTimeout
	}
	t.timeout = d
}

// Addr returns the tracker server address.
func (t *Tracker) Addr() string { return t.addr }

// callCtx derives the per-call context: the caller's, capped at the
// tracker timeout so one dead server cannot eat a chain's whole budget.
func (t *Tracker) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, t.timeout)
}

// Announce implements Discovery.
func (t *Tracker) Announce(ctx context.Context, fileID uint64, addr string, ttl time.Duration) error {
	if addr == "" {
		return ErrBadRecord
	}
	ctx, cancel := t.callCtx(ctx)
	defer cancel()
	err := tracker.AnnounceVia(ctx, t.tr, t.addr, fileID, addr, ttl)
	return classifyTracker(err)
}

// Lookup implements Discovery.
func (t *Tracker) Lookup(ctx context.Context, fileID uint64) ([]string, error) {
	ctx, cancel := t.callCtx(ctx)
	defer cancel()
	addrs, err := tracker.LookupVia(ctx, t.tr, t.addr, fileID)
	if err != nil {
		return nil, classifyTracker(err)
	}
	if len(addrs) == 0 {
		return nil, ErrNotFound
	}
	return addrs, nil
}

// Close implements Discovery; the tracker client is stateless.
func (t *Tracker) Close() error { return nil }

// classifyTracker maps tracker protocol rejections onto the fatal
// ErrBadRecord class; everything else stays retriable.
func classifyTracker(err error) error {
	if err == nil {
		return nil
	}
	var remote *wire.RemoteError
	if errors.As(err, &remote) && remote.Code == wire.CodeBadRequest {
		return errors.Join(ErrBadRecord, err)
	}
	if errors.Is(err, tracker.ErrBadRequest) {
		return errors.Join(ErrBadRecord, err)
	}
	return err
}

var _ Discovery = (*Tracker)(nil)
