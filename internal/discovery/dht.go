package discovery

// The DHT-backed implementation — the primary, trackerless discovery
// path. Values are soft state on the K nodes closest to each key, so
// the wrapper keeps a record book of everything it announced and
// refreshes each record before its TTL lapses; a peer that dies simply
// stops refreshing and ages out, exactly like a tracker announcement.

import (
	"context"
	"errors"
	"sync"
	"time"

	"asymshare/internal/dht"
)

// DHT resolves and announces through a dht.Node.
type DHT struct {
	node *dht.Node
	opts DHTOptions

	mu      sync.Mutex
	records map[record]time.Duration // announced (fileID, addr) -> ttl
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type record struct {
	fileID uint64
	addr   string
}

// DHTOptions tunes the DHT wrapper.
type DHTOptions struct {
	// ReannounceInterval is the refresh period for announced records;
	// zero derives it per record as ttl/2 (minimum 1s). Negative
	// disables the background refresher entirely.
	ReannounceInterval time.Duration

	// OwnNode, when true, makes Close also close the underlying node.
	OwnNode bool

	// DefaultTTL is used for zero-TTL announces when tracking refresh
	// periods; zero means dht.DefaultTTL.
	DefaultTTL time.Duration
}

// NewDHT wraps a joined dht.Node as a Discovery.
func NewDHT(node *dht.Node, opts DHTOptions) (*DHT, error) {
	if node == nil {
		return nil, errors.New("discovery: dht node required")
	}
	if opts.DefaultTTL <= 0 {
		opts.DefaultTTL = dht.DefaultTTL
	}
	d := &DHT{
		node:    node,
		opts:    opts,
		records: make(map[record]time.Duration),
	}
	d.ctx, d.cancel = context.WithCancel(context.Background())
	if opts.ReannounceInterval >= 0 {
		d.wg.Add(1)
		go d.refreshLoop()
	}
	return d, nil
}

// Node returns the underlying DHT node.
func (d *DHT) Node() *dht.Node { return d.node }

// Announce implements Discovery and registers the record for periodic
// TTL refresh.
func (d *DHT) Announce(ctx context.Context, fileID uint64, addr string, ttl time.Duration) error {
	if addr == "" {
		return ErrBadRecord
	}
	if ttl <= 0 {
		ttl = d.opts.DefaultTTL
	}
	if err := d.node.Announce(ctx, dht.KeyFromFileID(fileID), addr, ttl); err != nil {
		return err
	}
	d.mu.Lock()
	if !d.closed {
		d.records[record{fileID, addr}] = ttl
	}
	d.mu.Unlock()
	return nil
}

// Forget drops a record from the refresh book (e.g. after the peer
// stopped storing the file); the DHT copy ages out at its TTL.
func (d *DHT) Forget(fileID uint64, addr string) {
	d.mu.Lock()
	delete(d.records, record{fileID, addr})
	d.mu.Unlock()
}

// Lookup implements Discovery.
func (d *DHT) Lookup(ctx context.Context, fileID uint64) ([]string, error) {
	addrs, err := d.node.Lookup(ctx, dht.KeyFromFileID(fileID))
	if err != nil {
		if errors.Is(err, dht.ErrNotFound) {
			return nil, errors.Join(ErrNotFound, err)
		}
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, ErrNotFound
	}
	return addrs, nil
}

// Close stops the refresher (and the node when owned).
func (d *DHT) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.cancel()
	d.wg.Wait()
	if d.opts.OwnNode {
		return d.node.Close()
	}
	return nil
}

// refreshLoop re-announces every tracked record before it expires.
func (d *DHT) refreshLoop() {
	defer d.wg.Done()
	for {
		period := d.nextRefreshPeriod()
		timer := time.NewTimer(period)
		select {
		case <-d.ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		d.mu.Lock()
		batch := make(map[record]time.Duration, len(d.records))
		for r, ttl := range d.records {
			batch[r] = ttl
		}
		d.mu.Unlock()
		for r, ttl := range batch {
			ctx, cancel := context.WithTimeout(d.ctx, 10*time.Second)
			_ = d.node.Announce(ctx, dht.KeyFromFileID(r.fileID), r.addr, ttl)
			cancel()
			if d.ctx.Err() != nil {
				return
			}
		}
	}
}

// nextRefreshPeriod picks the refresh cadence: the configured interval,
// or half the shortest tracked TTL (floored at 1s), or a long idle nap
// when nothing is tracked yet.
func (d *DHT) nextRefreshPeriod() time.Duration {
	if d.opts.ReannounceInterval > 0 {
		return d.opts.ReannounceInterval
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	shortest := time.Duration(0)
	for _, ttl := range d.records {
		if shortest == 0 || ttl < shortest {
			shortest = ttl
		}
	}
	if shortest == 0 {
		return time.Second // nothing tracked; poll for first record
	}
	period := shortest / 2
	if period < time.Second {
		period = time.Second
	}
	return period
}

var _ Discovery = (*DHT)(nil)
