package discovery

// The DHT wrapper over real TCP nodes: records are soft state, so the
// refresher must keep an announced record resolvable past its TTL, and
// Close must let it age out.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"asymshare/internal/dht"
)

func startDHTNode(t *testing.T) *dht.Node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := dht.NewNode(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestDHTDiscoveryAnnounceLookup(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, b := startDHTNode(t), startDHTNode(t)
	if err := b.Join(ctx, a.Addr()); err != nil {
		t.Fatal(err)
	}

	d, err := NewDHT(a, DHTOptions{ReannounceInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, err := d.Lookup(ctx, 42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup of unannounced id = %v, want ErrNotFound", err)
	}
	if err := d.Announce(ctx, 42, "peer:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	addrs, err := d.Lookup(ctx, 42)
	if err != nil || len(addrs) != 1 || addrs[0] != "peer:1" {
		t.Fatalf("lookup = %v, %v; want [peer:1]", addrs, err)
	}

	// The other node resolves it too, through its own wrapper.
	db, err := NewDHT(b, DHTOptions{ReannounceInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addrs, err = db.Lookup(ctx, 42)
	if err != nil || len(addrs) != 1 {
		t.Fatalf("remote lookup = %v, %v; want [peer:1]", addrs, err)
	}

	if err := d.Announce(ctx, 42, "", time.Minute); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("empty-addr announce = %v, want ErrBadRecord", err)
	}
}

func TestDHTDiscoveryReannounceOutlivesTTL(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	a, b := startDHTNode(t), startDHTNode(t)
	if err := b.Join(ctx, a.Addr()); err != nil {
		t.Fatal(err)
	}

	d, err := NewDHT(a, DHTOptions{ReannounceInterval: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// A 1s TTL record checked at t=2s has expired unless the refresher
	// re-announced it in between.
	if err := d.Announce(ctx, 42, "peer:1", time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	db, err := NewDHT(b, DHTOptions{ReannounceInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addrs, err := db.Lookup(ctx, 42)
	if err != nil || len(addrs) != 1 {
		t.Fatalf("lookup past TTL = %v, %v; want refresher to have kept [peer:1] alive", addrs, err)
	}

	// After Close the refresher stops and the record ages out.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if _, err := db.Lookup(ctx, 42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after refresher stopped = %v, want ErrNotFound", err)
	}
}
