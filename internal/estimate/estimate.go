// Package estimate infers a peer's real upload capacity online from
// observed transfers, so the allocation rule (fairshare, Eq. 2) can
// divide measured bandwidth instead of a statically configured number
// (following Andreica & Tapus, "Efficient Upload Bandwidth Estimation
// and Communication Resource Allocation" — see PAPERS.md).
//
// The wire layer feeds each estimator Samples: how many bytes one
// socket flush moved and how long the flush took. Crucially these
// time the *drain rate of the link*, not the token-bucket-shaped
// application rate — a stream granted 10 KB/s by the allocator still
// drains its batches at full link speed, so the samples see capacity
// even while the policy is withholding it. Small flushes ride buffers
// and overestimate wildly; callers aggregate writes into trains of at
// least MinTrainBytes before emitting a sample (see peer.Node).
//
// Two estimators are provided: History, an EWMA-smoothed percentile
// over a sliding window (robust to cross-traffic dips), and Probe, a
// packet-train analogue that takes the window maximum (converges
// fastest, trusts the single cleanest train). Both are safe for
// concurrent use and answer 0 until they have enough samples.
package estimate

import (
	"sort"
	"sync"
	"time"
)

// MinTrainBytes is the smallest transfer callers should aggregate
// before emitting one Sample. Below this, socket and shaper burst
// buffers (64 KiB order) dominate the timing and the rate reads high.
const MinTrainBytes = 1 << 20

// Sample is one observed transfer: Bytes moved in Duration.
type Sample struct {
	Bytes    int64
	Duration time.Duration
}

// rate returns the sample's bytes/second, or 0 if it is unusable.
func (s Sample) rate() float64 {
	if s.Bytes <= 0 || s.Duration <= 0 {
		return 0
	}
	return float64(s.Bytes) / s.Duration.Seconds()
}

// Estimator consumes transfer samples and answers the current upload
// capacity estimate in bytes/second, 0 while still warming up.
type Estimator interface {
	Observe(s Sample)
	Estimate() float64
}

// DefaultWindow is the sliding-window length (samples) used when a
// constructor is given a non-positive window.
const DefaultWindow = 32

// DefaultPercentile is History's default window percentile.
const DefaultPercentile = 0.9

// DefaultAlpha is History's default EWMA smoothing weight for a new
// window percentile.
const DefaultAlpha = 0.25

// minSamples is how many samples an estimator wants before answering;
// a single flush timing is too noisy to steer allocation.
const minSamples = 3

// window is a fixed-size ring of sample rates.
type window struct {
	rates []float64
	next  int
	full  bool
}

func newWindow(n int) window {
	if n <= 0 {
		n = DefaultWindow
	}
	return window{rates: make([]float64, n)}
}

func (w *window) push(r float64) {
	w.rates[w.next] = r
	w.next++
	if w.next == len(w.rates) {
		w.next, w.full = 0, true
	}
}

func (w *window) len() int {
	if w.full {
		return len(w.rates)
	}
	return w.next
}

// snapshot appends the live rates to buf.
func (w *window) snapshot(buf []float64) []float64 {
	return append(buf, w.rates[:w.len()]...)
}

// History estimates capacity as an EWMA-smoothed percentile of the
// sample-rate window: the percentile discards the slow tail (flushes
// that lost the link to cross-traffic) without chasing the single
// fastest outlier, and the EWMA keeps the answer from jumping when one
// sample rotates out of the window. Create with NewHistory.
type History struct {
	mu   sync.Mutex
	win  window
	pct  float64
	a    float64
	ewma float64
	seen int
	buf  []float64
}

var _ Estimator = (*History)(nil)

// NewHistory returns a History over the last `win` samples (DefaultWindow
// if <= 0) answering the pct percentile (DefaultPercentile if outside
// (0, 1]).
func NewHistory(win int, pct float64) *History {
	if pct <= 0 || pct > 1 {
		pct = DefaultPercentile
	}
	return &History{win: newWindow(win), pct: pct, a: DefaultAlpha}
}

// Observe implements Estimator.
func (h *History) Observe(s Sample) {
	r := s.rate()
	if r <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.win.push(r)
	h.seen++
	h.buf = h.win.snapshot(h.buf[:0])
	sort.Float64s(h.buf)
	idx := int(h.pct*float64(len(h.buf))) - 1
	if idx < 0 {
		idx = 0
	}
	p := h.buf[idx]
	if h.ewma == 0 {
		h.ewma = p
		return
	}
	h.ewma += h.a * (p - h.ewma)
}

// Estimate implements Estimator.
func (h *History) Estimate() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen < minSamples {
		return 0
	}
	return h.ewma
}

// Probe is the packet-train estimator: capacity is the fastest train
// in the window. A train that was timed cleanly (no scheduling stall,
// no competing flush) drains at exactly the link rate, and every form
// of interference only makes trains *slower* — so the maximum is the
// best single observation of capacity. Create with NewProbe.
type Probe struct {
	mu   sync.Mutex
	win  window
	min  int64
	seen int
}

var _ Estimator = (*Probe)(nil)

// NewProbe returns a Probe over the last `win` qualifying samples
// (DefaultWindow if <= 0). Samples smaller than minBytes are ignored
// as too short to time (MinTrainBytes if <= 0).
func NewProbe(win int, minBytes int64) *Probe {
	if minBytes <= 0 {
		minBytes = MinTrainBytes
	}
	return &Probe{win: newWindow(win), min: minBytes}
}

// Observe implements Estimator.
func (p *Probe) Observe(s Sample) {
	if s.Bytes < p.min {
		return
	}
	r := s.rate()
	if r <= 0 {
		return
	}
	p.mu.Lock()
	p.win.push(r)
	p.seen++
	p.mu.Unlock()
}

// Estimate implements Estimator.
func (p *Probe) Estimate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen < minSamples {
		return 0
	}
	var max float64
	for _, r := range p.win.rates[:p.win.len()] {
		if r > max {
			max = r
		}
	}
	return max
}

// Clamp bounds an estimate to [min, max]; non-positive bounds are
// ignored, and a zero (warming-up) estimate passes through unchanged
// so callers can distinguish "unknown" from "slow".
func Clamp(est, min, max float64) float64 {
	if est <= 0 {
		return 0
	}
	if min > 0 && est < min {
		est = min
	}
	if max > 0 && est > max {
		est = max
	}
	return est
}
