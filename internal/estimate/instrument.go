package estimate

import "asymshare/internal/metrics"

// Estimator metric names (see DESIGN.md §7). Named under the
// fairshare_ prefix because the estimate exists to feed the fairshare
// allocator's capacity input.
const (
	MetricEstimateRate       = "fairshare_estimate_bytes_per_second"
	MetricEstimateSamples    = "fairshare_estimate_samples_total"
	MetricEstimateSampleRate = "fairshare_estimate_sample_rate"
)

// instrumented wraps an Estimator with sample/estimate metrics.
type instrumented struct {
	inner   Estimator
	rate    *metrics.Gauge
	samples *metrics.Counter
	last    *metrics.Gauge
}

// Instrument returns an Estimator that publishes its sample count,
// last raw sample rate, and current estimate into reg. With a nil
// registry or nil inner estimator the input is returned unchanged.
func Instrument(inner Estimator, reg *metrics.Registry) Estimator {
	if inner == nil || reg == nil {
		return inner
	}
	return &instrumented{
		inner:   inner,
		rate:    reg.Gauge(MetricEstimateRate, "Current upload capacity estimate."),
		samples: reg.Counter(MetricEstimateSamples, "Transfer samples fed to the capacity estimator."),
		last:    reg.Gauge(MetricEstimateSampleRate, "Rate of the last transfer sample observed."),
	}
}

// Observe implements Estimator.
func (i *instrumented) Observe(s Sample) {
	i.inner.Observe(s)
	i.samples.Inc()
	i.last.Set(s.rate())
	i.rate.Set(i.inner.Estimate())
}

// Estimate implements Estimator.
func (i *instrumented) Estimate() float64 { return i.inner.Estimate() }
