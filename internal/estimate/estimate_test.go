package estimate

import (
	"math"
	"sync"
	"testing"
	"time"

	"asymshare/internal/metrics"
)

// sampleAt builds a 1 MiB train timed at the given bytes/second.
func sampleAt(rate float64) Sample {
	const bytes = MinTrainBytes
	return Sample{Bytes: bytes, Duration: time.Duration(float64(bytes) / rate * float64(time.Second))}
}

func TestSampleRate(t *testing.T) {
	s := Sample{Bytes: 1 << 20, Duration: time.Second}
	if got := s.rate(); !within(got, 1<<20, 1e-9) {
		t.Errorf("rate = %v", got)
	}
	for _, bad := range []Sample{{Bytes: 0, Duration: time.Second}, {Bytes: -5, Duration: time.Second}, {Bytes: 100, Duration: 0}, {Bytes: 100, Duration: -time.Second}} {
		if bad.rate() != 0 {
			t.Errorf("rate(%+v) = %v, want 0", bad, bad.rate())
		}
	}
}

// within reports |got-want| <= tol*want.
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestHistoryWarmup(t *testing.T) {
	h := NewHistory(0, 0)
	if h.Estimate() != 0 {
		t.Error("estimate before any samples")
	}
	h.Observe(sampleAt(1e6))
	h.Observe(sampleAt(1e6))
	if h.Estimate() != 0 {
		t.Errorf("estimate with %d samples = %v, want 0 until %d", 2, h.Estimate(), minSamples)
	}
	h.Observe(sampleAt(1e6))
	if got := h.Estimate(); !within(got, 1e6, 0.01) {
		t.Errorf("estimate = %v, want ~1e6", got)
	}
	// Unusable samples are ignored, not counted toward warm-up.
	h2 := NewHistory(0, 0)
	for i := 0; i < 10; i++ {
		h2.Observe(Sample{Bytes: 0, Duration: time.Second})
	}
	if h2.Estimate() != 0 {
		t.Error("zero-byte samples produced an estimate")
	}
}

// TestHistoryConvergesAndResists: steady samples converge to the true
// rate; a minority of slow cross-traffic dips barely move the
// percentile estimate.
func TestHistoryConverges(t *testing.T) {
	const link = 4e6
	h := NewHistory(0, 0)
	for i := 0; i < 2*DefaultWindow; i++ {
		h.Observe(sampleAt(link))
	}
	if got := h.Estimate(); !within(got, link, 0.01) {
		t.Errorf("steady-state estimate = %v, want ~%v", got, link)
	}
	// 1 dip in 8: the 90th percentile still reads the link rate.
	for i := 0; i < 2*DefaultWindow; i++ {
		if i%8 == 0 {
			h.Observe(sampleAt(link / 10))
		} else {
			h.Observe(sampleAt(link))
		}
	}
	if got := h.Estimate(); !within(got, link, 0.05) {
		t.Errorf("estimate with dips = %v, want within 5%% of %v", got, link)
	}
	// A real capacity change is tracked, not pinned to history.
	for i := 0; i < 4*DefaultWindow; i++ {
		h.Observe(sampleAt(link / 2))
	}
	if got := h.Estimate(); !within(got, link/2, 0.05) {
		t.Errorf("estimate after capacity drop = %v, want ~%v", got, link/2)
	}
}

func TestProbeWarmupAndMax(t *testing.T) {
	p := NewProbe(0, 0)
	if p.Estimate() != 0 {
		t.Error("estimate before any samples")
	}
	// Short probes are ignored entirely.
	for i := 0; i < 10; i++ {
		p.Observe(Sample{Bytes: 64 << 10, Duration: time.Millisecond})
	}
	if p.Estimate() != 0 {
		t.Error("sub-train probes produced an estimate")
	}
	p.Observe(sampleAt(1e6))
	p.Observe(sampleAt(3e6))
	p.Observe(sampleAt(2e6))
	if got := p.Estimate(); !within(got, 3e6, 0.01) {
		t.Errorf("estimate = %v, want the window max 3e6", got)
	}
	// The max rotates out of the window eventually.
	for i := 0; i < DefaultWindow; i++ {
		p.Observe(sampleAt(1.5e6))
	}
	if got := p.Estimate(); !within(got, 1.5e6, 0.01) {
		t.Errorf("estimate after rotation = %v, want 1.5e6", got)
	}
}

func TestProbeCustomMinBytes(t *testing.T) {
	p := NewProbe(4, 1000)
	p.Observe(Sample{Bytes: 999, Duration: time.Second})
	p.Observe(Sample{Bytes: 1000, Duration: time.Second})
	p.Observe(Sample{Bytes: 1000, Duration: time.Second})
	if p.Estimate() != 0 {
		t.Error("sub-minimum sample counted toward warm-up")
	}
	p.Observe(Sample{Bytes: 2000, Duration: time.Second})
	if got := p.Estimate(); !within(got, 2000, 1e-9) {
		t.Errorf("estimate = %v", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ est, min, max, want float64 }{
		{0, 10, 100, 0},     // warming up passes through
		{-5, 10, 100, 0},    // nonsense reads as unknown
		{5, 10, 100, 10},    // below floor
		{500, 10, 100, 100}, // above ceiling
		{50, 10, 100, 50},   // in range
		{50, 0, 0, 50},      // no bounds
		{500, 0, 100, 100},  // ceiling only
	}
	for _, c := range cases {
		if got := Clamp(c.est, c.min, c.max); got != c.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", c.est, c.min, c.max, got, c.want)
		}
	}
}

func TestEstimatorsConcurrent(t *testing.T) {
	for _, e := range []Estimator{NewHistory(0, 0), NewProbe(0, 0)} {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					e.Observe(sampleAt(1e6))
					_ = e.Estimate()
				}
			}()
		}
		wg.Wait()
		if got := e.Estimate(); !within(got, 1e6, 0.01) {
			t.Errorf("%T concurrent estimate = %v", e, got)
		}
	}
}

func TestInstrument(t *testing.T) {
	if Instrument(nil, metrics.NewRegistry()) != nil {
		t.Error("instrumenting nil estimator invented one")
	}
	h := NewHistory(0, 0)
	if got := Instrument(h, nil); got != Estimator(h) {
		t.Error("nil registry did not pass estimator through")
	}
	reg := metrics.NewRegistry()
	e := Instrument(h, reg)
	for i := 0; i < minSamples; i++ {
		e.Observe(sampleAt(2e6))
	}
	if got := e.Estimate(); !within(got, 2e6, 0.01) {
		t.Errorf("instrumented estimate = %v", got)
	}
	snap := reg.Snapshot()
	byName := map[string]float64{}
	for _, f := range snap.Families {
		if len(f.Series) == 1 {
			byName[f.Name] = f.Series[0].Value
		}
	}
	if byName[MetricEstimateSamples] != minSamples {
		t.Errorf("%s = %v, want %d", MetricEstimateSamples, byName[MetricEstimateSamples], minSamples)
	}
	if !within(byName[MetricEstimateRate], 2e6, 0.01) || !within(byName[MetricEstimateSampleRate], 2e6, 0.01) {
		t.Errorf("estimate gauges = %v / %v", byName[MetricEstimateRate], byName[MetricEstimateSampleRate])
	}
}
