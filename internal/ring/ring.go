// Package ring implements PAST-style consistent-hashing placement
// (Sec. II cites PAST-over-Pastry as the canonical way "to route
// content requests to the appropriate storage nodes"): peers and
// file-ids hash onto one circle, and a generation is stored on the r
// distinct peers that follow its point clockwise. Placement is a pure
// function of the membership set, so any party that knows the peers
// can recompute where every chunk lives — no lookup protocol needed.
//
// Virtual nodes smooth the load: each member appears at several points
// so that the expected share of the keyspace per member concentrates
// around 1/n.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-member vnode count.
const DefaultVirtualNodes = 64

// ErrBadRing is returned for invalid construction parameters.
var ErrBadRing = errors.New("ring: invalid parameters")

type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hashing ring.
type Ring struct {
	points  []point
	members []string
}

// New builds a ring over the given distinct member addresses. vnodes
// <= 0 means DefaultVirtualNodes.
func New(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: no members", ErrBadRing)
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{
		points:  make([]point, 0, len(members)*vnodes),
		members: make([]string, 0, len(members)),
	}
	for _, m := range members {
		if m == "" || seen[m] {
			return nil, fmt.Errorf("%w: empty or duplicate member %q", ErrBadRing, m)
		}
		seen[m] = true
		r.members = append(r.members, m)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashString(m, v), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	sort.Strings(r.members)
	return r, nil
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Place returns the `replicas` distinct members responsible for the
// given file-id, clockwise from its point. replicas is capped at the
// member count.
func (r *Ring) Place(fileID uint64, replicas int) []string {
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(r.members) {
		replicas = len(r.members)
	}
	h := hashID(fileID)
	// First point clockwise of (or at) h.
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, replicas)
	taken := make(map[string]bool, replicas)
	for i := 0; len(out) < replicas && i < len(r.points); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if taken[p.member] {
			continue
		}
		taken[p.member] = true
		out = append(out, p.member)
	}
	return out
}

func hashString(member string, vnode int) uint64 {
	h := sha256.New()
	h.Write([]byte(member))
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], uint32(vnode))
	h.Write(v[:])
	return binary.BigEndian.Uint64(h.Sum(nil))
}

func hashID(fileID uint64) uint64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], fileID)
	sum := sha256.Sum256(b[:])
	return binary.BigEndian.Uint64(sum[:])
}
