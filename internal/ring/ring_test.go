package ring

import (
	"errors"
	"fmt"
	"testing"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("peer%02d:7070", i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); !errors.Is(err, ErrBadRing) {
		t.Errorf("empty members error = %v", err)
	}
	if _, err := New([]string{"a", "a"}, 0); !errors.Is(err, ErrBadRing) {
		t.Errorf("duplicate member error = %v", err)
	}
	if _, err := New([]string{""}, 0); !errors.Is(err, ErrBadRing) {
		t.Errorf("empty member error = %v", err)
	}
}

func TestPlaceDeterministicDistinct(t *testing.T) {
	r, err := New(members(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 8 {
		t.Errorf("Size = %d", r.Size())
	}
	for fileID := uint64(0); fileID < 100; fileID++ {
		a := r.Place(fileID, 3)
		b := r.Place(fileID, 3)
		if len(a) != 3 {
			t.Fatalf("Place returned %d members", len(a))
		}
		seen := map[string]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("placement not deterministic")
			}
			if seen[a[i]] {
				t.Fatal("duplicate member in placement")
			}
			seen[a[i]] = true
		}
	}
}

func TestPlaceReplicaClamping(t *testing.T) {
	r, err := New(members(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Place(1, 10); len(got) != 3 {
		t.Errorf("over-replication = %d members", len(got))
	}
	if got := r.Place(1, 0); len(got) != 1 {
		t.Errorf("replicas=0 = %d members", len(got))
	}
}

func TestLoadBalance(t *testing.T) {
	// With vnodes, responsibility for many file-ids spreads roughly
	// evenly across members.
	r, err := New(members(10), 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const files = 5000
	for fileID := uint64(0); fileID < files; fileID++ {
		for _, m := range r.Place(fileID, 2) {
			counts[m]++
		}
	}
	expect := float64(files*2) / 10
	for m, c := range counts {
		if float64(c) < 0.6*expect || float64(c) > 1.4*expect {
			t.Errorf("member %s holds %d placements, expectation %.0f", m, c, expect)
		}
	}
}

func TestMembershipChangeMovesFewKeys(t *testing.T) {
	// The consistent-hashing property: adding one member relocates only
	// ~1/(n+1) of primary responsibilities.
	before, err := New(members(10), 128)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(append(members(10), "newcomer:7070"), 128)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const files = 4000
	for fileID := uint64(0); fileID < files; fileID++ {
		if before.Place(fileID, 1)[0] != after.Place(fileID, 1)[0] {
			moved++
		}
	}
	frac := float64(moved) / files
	if frac > 0.2 {
		t.Errorf("membership change moved %.1f%% of keys, want ~9%%", frac*100)
	}
	if frac < 0.02 {
		t.Errorf("membership change moved only %.1f%%: newcomer underloaded", frac*100)
	}
}

func TestMembersCopy(t *testing.T) {
	r, err := New(members(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Members()
	got[0] = "mutated"
	if r.Members()[0] == "mutated" {
		t.Error("Members returned internal slice")
	}
}
