package ratelimit

// Concurrency contract test: SetRate (the allocator's once-per-second
// reassignment), WaitN (the serving goroutines) and Available (stats
// readers) may all run at once. Run with -race; `make ci` does.

import (
	"context"
	"sync"
	"testing"
	"time"

	"asymshare/internal/metrics"
)

func TestBucketConcurrentSetRateWaitAvailable(t *testing.T) {
	b := NewBucket(1<<20, 64<<10)
	reg := metrics.NewRegistry()
	b.SetMetrics(
		reg.Histogram("ratelimit_wait_seconds", "", metrics.UnitSeconds),
		reg.Counter("ratelimit_throttle_events_total", ""),
	)

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()

	var wg sync.WaitGroup
	// Allocator: continuously reassigns rates, including zero (the
	// withholding case) so the refund path is exercised too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rates := []float64{0, 1 << 10, 1 << 20, 1 << 24}
		for i := 0; ctx.Err() == nil; i++ {
			b.SetRate(rates[i%len(rates)])
			time.Sleep(time.Millisecond)
		}
	}()
	// Serving streams: repeated shaped sends.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if err := b.WaitN(ctx, 4<<10); err != nil && ctx.Err() == nil {
					t.Errorf("WaitN: %v", err)
					return
				}
			}
		}()
	}
	// Stats readers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				_ = b.Available()
				_ = b.Rate()
			}
		}()
	}
	wg.Wait()

	// The bucket must still be functional after the storm.
	b.SetRate(1 << 30)
	ok, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := b.WaitN(ok, 1024); err != nil {
		t.Fatalf("bucket wedged after concurrent use: %v", err)
	}
}

func TestWaitNCancellationKeepsDebtAtPositiveRate(t *testing.T) {
	// Documented refund semantics: cancellation during a positive-rate
	// wait leaves the reservation consumed.
	b := NewBucket(1024, 1024) // 1 KiB/s, bucket starts full
	ctx, cancel := context.WithCancel(context.Background())
	if err := b.WaitN(ctx, 1024); err != nil { // drains the bucket
		t.Fatal(err)
	}
	cancel() // already-cancelled context for the second reservation
	if err := b.WaitN(ctx, 1024); err == nil {
		t.Fatal("WaitN succeeded with cancelled context and empty bucket")
	}
	if avail := b.Available(); avail > -512 {
		t.Fatalf("debt was refunded at positive rate: available = %g, want <= -512", avail)
	}
}

func TestWaitNCancellationRefundsAtZeroRate(t *testing.T) {
	b := NewBucket(0, 1024)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	if err := b.WaitN(ctx, 1024); err != nil { // burst covers it instantly
		t.Fatal(err)
	}
	// Second wait can never be satisfied at zero rate; it must keep
	// re-checking (refunding each time) until the deadline.
	if err := b.WaitN(ctx, 1024); err == nil {
		t.Fatal("WaitN returned nil at zero rate")
	}
	// The abandoned reservation must have been refunded: the bucket sits
	// at (or just above, via no refill at rate 0) zero, not at -1024.
	if avail := b.Available(); avail < -1 {
		t.Fatalf("zero-rate cancellation left debt: available = %g", avail)
	}
}
