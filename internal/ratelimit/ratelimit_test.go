package ratelimit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestBucketStartsFull(t *testing.T) {
	clock := newFakeClock()
	b := newBucketWithClock(100, 50, clock.Now)
	if got := b.Available(); got != 50 {
		t.Errorf("Available = %v, want 50", got)
	}
	wait, err := b.take(50)
	if err != nil || wait != 0 {
		t.Errorf("take(50) = %v, %v", wait, err)
	}
}

func TestBucketRefills(t *testing.T) {
	clock := newFakeClock()
	b := newBucketWithClock(100, 100, clock.Now)
	if _, err := b.take(100); err != nil {
		t.Fatal(err)
	}
	if got := b.Available(); got != 0 {
		t.Fatalf("Available after drain = %v", got)
	}
	clock.Advance(500 * time.Millisecond)
	if got := b.Available(); got != 50 {
		t.Errorf("Available after 0.5s = %v, want 50", got)
	}
	clock.Advance(10 * time.Second)
	if got := b.Available(); got != 100 {
		t.Errorf("Available capped = %v, want 100 (burst)", got)
	}
}

func TestTakeComputesWait(t *testing.T) {
	clock := newFakeClock()
	b := newBucketWithClock(100, 100, clock.Now)
	if _, err := b.take(100); err != nil {
		t.Fatal(err)
	}
	wait, err := b.take(50)
	if err != nil {
		t.Fatal(err)
	}
	if wait != 500*time.Millisecond {
		t.Errorf("wait = %v, want 500ms", wait)
	}
}

func TestTakeBurstExceeded(t *testing.T) {
	b := NewBucket(100, 10)
	if _, err := b.take(11); !errors.Is(err, ErrBurstExceeded) {
		t.Errorf("error = %v, want ErrBurstExceeded", err)
	}
}

func TestSetRateKeepsTokens(t *testing.T) {
	clock := newFakeClock()
	b := newBucketWithClock(100, 100, clock.Now)
	if _, err := b.take(60); err != nil {
		t.Fatal(err)
	}
	b.SetRate(10)
	if got := b.Rate(); got != 10 {
		t.Errorf("Rate = %v", got)
	}
	if got := b.Available(); got != 40 {
		t.Errorf("Available after SetRate = %v, want 40", got)
	}
	clock.Advance(time.Second)
	if got := b.Available(); got != 50 {
		t.Errorf("Available after 1s at new rate = %v, want 50", got)
	}
	b.SetRate(-5)
	if got := b.Rate(); got != 0 {
		t.Errorf("negative rate clamped to %v, want 0", got)
	}
}

func TestZeroRateWait(t *testing.T) {
	clock := newFakeClock()
	b := newBucketWithClock(0, 100, clock.Now)
	if _, err := b.take(100); err != nil {
		t.Fatal(err)
	}
	wait, err := b.take(1)
	if err != nil {
		t.Fatal(err)
	}
	if wait < time.Minute {
		t.Errorf("zero-rate wait = %v, want a long backoff", wait)
	}
}

func TestWaitNImmediate(t *testing.T) {
	b := NewBucket(1000, 1000)
	ctx := context.Background()
	if err := b.WaitN(ctx, 500); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitN(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitN(ctx, -3); err != nil {
		t.Fatal(err)
	}
}

func TestWaitNBlocksAtRealRate(t *testing.T) {
	// 10 kB/s bucket, drained; sending 500 B must take ~50 ms.
	b := NewBucket(10000, 500)
	ctx := context.Background()
	if err := b.WaitN(ctx, 500); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := b.WaitN(ctx, 500); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond {
		t.Errorf("WaitN returned after %v, want >= ~50ms", elapsed)
	}
}

func TestWaitNCancellation(t *testing.T) {
	b := NewBucket(1, 10) // 1 B/s: the next 10 bytes take 10 s
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.WaitN(ctx, 10); err != nil {
		t.Fatal(err) // bucket starts full
	}
	err := b.WaitN(ctx, 10)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want DeadlineExceeded", err)
	}
}

func TestWaitNZeroRateThenRaise(t *testing.T) {
	b := NewBucket(0, 100)
	if err := b.WaitN(context.Background(), 100); err != nil {
		t.Fatal(err) // initial burst
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		done <- b.WaitN(ctx, 50)
	}()
	time.Sleep(30 * time.Millisecond)
	b.SetRate(1e6) // allocator assigns bandwidth
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("WaitN after rate raise = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Error("WaitN did not observe the raised rate")
	}
}

func TestWaitNBurstExceeded(t *testing.T) {
	b := NewBucket(100, 10)
	if err := b.WaitN(context.Background(), 11); !errors.Is(err, ErrBurstExceeded) {
		t.Errorf("error = %v, want ErrBurstExceeded", err)
	}
}

func TestConcurrentWaiters(t *testing.T) {
	b := NewBucket(1e6, 1000)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			errs <- b.WaitN(ctx, 100)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("concurrent WaitN: %v", err)
		}
	}
}
