// Package ratelimit provides a token-bucket shaper used by peers to
// hold each peer->user stream to the rate assigned by the fairshare
// allocator. Peer j "may choose to transmit to u at any rate up to its
// available upload capacity" (Sec. III-B); the bucket enforces the rate
// the allocator chose while allowing short bursts of one quantum.
package ratelimit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBurstExceeded is returned when a single request exceeds the bucket
// capacity and could therefore never be satisfied.
var ErrBurstExceeded = errors.New("ratelimit: request exceeds burst capacity")

// Bucket is a token bucket measured in bytes. The zero value is not
// usable; use NewBucket. Bucket is safe for concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

// NewBucket returns a bucket refilling at rate bytes/second with the
// given burst capacity. The bucket starts full.
func NewBucket(rate, burst float64) *Bucket {
	if burst <= 0 {
		burst = 1
	}
	b := &Bucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// newBucketWithClock is the test constructor.
func newBucketWithClock(rate, burst float64, clock func() time.Time) *Bucket {
	b := NewBucket(rate, burst)
	b.now = clock
	b.last = clock()
	return b
}

// SetRate changes the refill rate. Accumulated tokens are preserved,
// so a stream smoothly transitions when the allocator re-divides
// bandwidth (once per second in the paper's evaluation).
func (b *Bucket) SetRate(rate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if rate < 0 {
		rate = 0
	}
	b.rate = rate
}

// Rate returns the current refill rate.
func (b *Bucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// refillLocked accrues tokens since the last refill.
func (b *Bucket) refillLocked() {
	now := b.now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// take reserves n tokens, returning how long the caller must wait for
// the reservation to become valid (0 if tokens were available).
func (b *Bucket) take(n float64) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.burst {
		return 0, fmt.Errorf("%w: need %.0f, burst %.0f", ErrBurstExceeded, n, b.burst)
	}
	b.refillLocked()
	b.tokens -= n
	if b.tokens >= 0 {
		return 0, nil
	}
	if b.rate <= 0 {
		// Debt can never be repaid at zero rate; report an hour and let
		// the caller re-check (the allocator may raise the rate).
		return time.Hour, nil
	}
	wait := time.Duration(-b.tokens / b.rate * float64(time.Second))
	return wait, nil
}

// WaitN blocks until n bytes may be sent, or until ctx is done. A zero
// current rate does not fail — the call keeps waiting, re-checking
// periodically, because the allocator may assign bandwidth later.
func (b *Bucket) WaitN(ctx context.Context, n int) error {
	if n <= 0 {
		return nil
	}
	const recheck = 50 * time.Millisecond
	for {
		wait, err := b.take(float64(n))
		if err != nil {
			return err
		}
		if wait <= 0 {
			return nil
		}
		// At zero rate the token debt stays; return it and retry so a
		// later SetRate takes effect promptly.
		if wait > recheck && b.Rate() <= 0 {
			b.refund(float64(n))
			wait = recheck
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
			continue
		}
		return sleepCtx(ctx, wait)
	}
}

// refund returns tokens taken speculatively.
func (b *Bucket) refund(n float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Available returns the current token count (may be negative while a
// reservation is being waited out).
func (b *Bucket) Available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
