// Package ratelimit provides a token-bucket shaper used by peers to
// hold each peer->user stream to the rate assigned by the fairshare
// allocator. Peer j "may choose to transmit to u at any rate up to its
// available upload capacity" (Sec. III-B); the bucket enforces the rate
// the allocator chose while allowing short bursts of one quantum.
//
// # Refund semantics on WaitN cancellation
//
// WaitN reserves its tokens up front (the bucket may go negative) and
// then sleeps the debt off. If the context is cancelled during that
// sleep, the reservation is NOT refunded: the debt stays on the bucket
// and the next caller inherits it. This is deliberate — an abandoned
// send has already been granted its share of the shaped rate, and
// refunding on cancellation would let a caller that dials a short
// deadline repeatedly overshoot the allocator's assignment. The one
// exception is the zero-rate path: while the refill rate is zero the
// debt could never be repaid, so WaitN refunds the reservation before
// each re-check sleep and re-takes it on wake; a caller cancelled at
// zero rate therefore leaves the bucket clean.
package ratelimit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"asymshare/internal/metrics"
)

// ErrBurstExceeded is returned when a single request exceeds the bucket
// capacity and could therefore never be satisfied.
var ErrBurstExceeded = errors.New("ratelimit: request exceeds burst capacity")

// Bucket is a token bucket measured in bytes. The zero value is not
// usable; use NewBucket. Bucket is safe for concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests

	waitSeconds *metrics.Histogram // time WaitN callers spent blocked
	throttled   *metrics.Counter   // WaitN calls that had to block
}

// NewBucket returns a bucket refilling at rate bytes/second with the
// given burst capacity. The bucket starts full.
func NewBucket(rate, burst float64) *Bucket {
	if burst <= 0 {
		burst = 1
	}
	b := &Bucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// newBucketWithClock is the test constructor.
func newBucketWithClock(rate, burst float64, clock func() time.Time) *Bucket {
	b := NewBucket(rate, burst)
	b.now = clock
	b.last = clock()
	return b
}

// SetMetrics attaches optional instrumentation: wait receives the time
// each blocking WaitN spent throttled, throttled counts WaitN calls
// that had to block at all. Both may be nil (and typically are shared
// across all of one peer's stream buckets). SetMetrics is not
// synchronized with WaitN: call it once, right after NewBucket, before
// the bucket is visible to other goroutines.
func (b *Bucket) SetMetrics(wait *metrics.Histogram, throttled *metrics.Counter) {
	b.waitSeconds = wait
	b.throttled = throttled
}

// SetRate changes the refill rate. Accumulated tokens are preserved,
// so a stream smoothly transitions when the allocator re-divides
// bandwidth (once per second in the paper's evaluation).
func (b *Bucket) SetRate(rate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if rate < 0 {
		rate = 0
	}
	b.rate = rate
}

// Rate returns the current refill rate.
func (b *Bucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// refillLocked accrues tokens since the last refill.
func (b *Bucket) refillLocked() {
	now := b.now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// take reserves n tokens, returning how long the caller must wait for
// the reservation to become valid (0 if tokens were available).
func (b *Bucket) take(n float64) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.burst {
		return 0, fmt.Errorf("%w: need %.0f, burst %.0f", ErrBurstExceeded, n, b.burst)
	}
	b.refillLocked()
	b.tokens -= n
	if b.tokens >= 0 {
		return 0, nil
	}
	if b.rate <= 0 {
		// Debt can never be repaid at zero rate; report an hour and let
		// the caller re-check (the allocator may raise the rate).
		return time.Hour, nil
	}
	wait := time.Duration(-b.tokens / b.rate * float64(time.Second))
	return wait, nil
}

// WaitN blocks until n bytes may be sent, or until ctx is done. A zero
// current rate does not fail — the call keeps waiting, re-checking
// periodically, because the allocator may assign bandwidth later. See
// the package comment for what happens to the reservation when ctx is
// cancelled mid-wait.
func (b *Bucket) WaitN(ctx context.Context, n int) error {
	if n <= 0 {
		return nil
	}
	const recheck = 50 * time.Millisecond
	var blockedSince time.Time
	for {
		wait, err := b.take(float64(n))
		if err != nil {
			return err
		}
		if wait <= 0 {
			if !blockedSince.IsZero() {
				b.waitSeconds.ObserveSince(blockedSince)
			}
			return nil
		}
		if blockedSince.IsZero() {
			blockedSince = b.now()
			b.throttled.Inc()
		}
		// At zero rate the token debt stays; return it and retry so a
		// later SetRate takes effect promptly.
		if wait > recheck && b.Rate() <= 0 {
			b.refund(float64(n))
			wait = recheck
			if err := sleepCtx(ctx, wait); err != nil {
				b.waitSeconds.ObserveSince(blockedSince)
				return err
			}
			continue
		}
		err = sleepCtx(ctx, wait)
		b.waitSeconds.ObserveSince(blockedSince)
		return err
	}
}

// refund returns tokens taken speculatively.
func (b *Bucket) refund(n float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Available returns the current token count (may be negative while a
// reservation is being waited out).
func (b *Bucket) Available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
