package gossip

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"asymshare/internal/metrics"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

const testPayloadLen = 32

func mkMsgs(fileID uint64, ids ...uint64) []*rlnc.Message {
	out := make([]*rlnc.Message, len(ids))
	for i, id := range ids {
		payload := make([]byte, testPayloadLen)
		for j := range payload {
			payload[j] = byte(id + uint64(j))
		}
		out[i] = &rlnc.Message{FileID: fileID, MessageID: id, Payload: payload}
	}
	return out
}

// newTestEngine boots an engine on a real localhost listener.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Advertise = ln.Addr().String()
	if cfg.Store == nil {
		cfg.Store = store.NewMemory()
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(len(cfg.Advertise)) // deterministic per-addr
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestExchangeMovesOnlyMissing(t *testing.T) {
	ctx := context.Background()
	regA, regB := metrics.NewRegistry(), metrics.NewRegistry()
	a := newTestEngine(t, Config{Metrics: regA})
	b := newTestEngine(t, Config{Metrics: regB})
	const fileID = 7
	if err := a.Seed(fileID, 6, testPayloadLen, mkMsgs(fileID, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := b.Seed(fileID, 6, testPayloadLen, mkMsgs(fileID, 3, 4, 5, 6)); err != nil {
		t.Fatal(err)
	}

	moved, err := a.Exchange(ctx, b.Addr(), fileID)
	if err != nil {
		t.Fatal(err)
	}
	// A ships {1,2}, pulls {5,6}: exactly the symmetric difference.
	if moved != 4 {
		t.Fatalf("moved = %d, want 4", moved)
	}
	if got := a.cfg.Store.Count(fileID); got != 6 {
		t.Fatalf("initiator store count = %d, want 6", got)
	}
	if got := b.cfg.Store.Count(fileID); got != 6 {
		t.Fatalf("responder store count = %d, want 6", got)
	}

	// Fully synced: a second exchange moves nothing.
	moved, err = a.Exchange(ctx, b.Addr(), fileID)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("synced exchange moved %d messages", moved)
	}

	for name, reg := range map[string]*metrics.Registry{"a": regA, "b": regB} {
		if v := reg.Counter(MetricInnovative, "").Value(); v != 2 {
			t.Errorf("engine %s innovative = %d, want 2", name, v)
		}
		if v := reg.Counter(MetricDuplicate, "").Value(); v != 0 {
			t.Errorf("engine %s duplicate = %d, want 0", name, v)
		}
	}
}

func TestBudgetCapsOneExchange(t *testing.T) {
	ctx := context.Background()
	a := newTestEngine(t, Config{Budget: 3})
	b := newTestEngine(t, Config{Budget: 3})
	const fileID = 8
	ids := []uint64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	if err := a.Seed(fileID, 10, testPayloadLen, mkMsgs(fileID, ids...)); err != nil {
		t.Fatal(err)
	}
	moved, err := a.Exchange(ctx, b.Addr(), fileID)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 {
		t.Fatalf("budgeted exchange moved %d, want 3", moved)
	}
	if got := b.cfg.Store.Count(fileID); got != 3 {
		t.Fatalf("responder store count = %d, want 3", got)
	}
}

func TestAnnounceHookFiresOncePerGeneration(t *testing.T) {
	ctx := context.Background()
	var aCalls, bCalls atomic.Int64
	var bFileID atomic.Uint64
	a := newTestEngine(t, Config{Announce: func(uint64) { aCalls.Add(1) }})
	b := newTestEngine(t, Config{Announce: func(id uint64) { bCalls.Add(1); bFileID.Store(id) }})
	const fileID = 9
	if err := a.Seed(fileID, 4, testPayloadLen, mkMsgs(fileID, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if aCalls.Load() != 1 {
		t.Fatalf("seeder announce calls = %d, want 1", aCalls.Load())
	}
	if _, err := a.Exchange(ctx, b.Addr(), fileID); err != nil {
		t.Fatal(err)
	}
	// More data for the same generation: no re-announce.
	if err := a.Seed(fileID, 4, testPayloadLen, mkMsgs(fileID, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exchange(ctx, b.Addr(), fileID); err != nil {
		t.Fatal(err)
	}
	if bCalls.Load() != 1 {
		t.Fatalf("receiver announce calls = %d, want 1", bCalls.Load())
	}
	if bFileID.Load() != fileID {
		t.Fatalf("receiver announced file %d, want %d", bFileID.Load(), fileID)
	}
	if aCalls.Load() != 1 {
		t.Fatalf("seeder announce calls after reseed = %d, want 1", aCalls.Load())
	}
}

func TestRumorSpreadsToAllAndDies(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const (
		n      = 12
		fileID = 21
		k      = 8
	)
	engines := make([]*Engine, n)
	addrs := make([]string, n)
	contacts := func(int) []string { return addrs }
	reg := metrics.NewRegistry()
	for i := range engines {
		engines[i] = newTestEngine(t, Config{
			Contacts: contacts,
			MaxIdle:  2,
			Seed:     int64(i + 1),
			Metrics:  reg,
		})
		addrs[i] = engines[i].Addr()
	}
	var seedIDs []uint64
	for i := 0; i < k; i++ {
		seedIDs = append(seedIDs, uint64(100+i))
	}
	if err := engines[0].Seed(fileID, k, testPayloadLen, mkMsgs(fileID, seedIDs...)); err != nil {
		t.Fatal(err)
	}

	// Lockstep rounds until every store holds the full generation.
	covered := func() int {
		full := 0
		for _, e := range engines {
			if e.cfg.Store.Count(fileID) == k {
				full++
			}
		}
		return full
	}
	rounds := 0
	for ; rounds < 40 && covered() < n; rounds++ {
		for _, e := range engines {
			if _, err := e.Round(ctx); err != nil {
				t.Fatalf("round %d: %v", rounds, err)
			}
		}
	}
	if covered() < n {
		t.Fatalf("after %d rounds only %d/%d engines hold the full generation", rounds, covered(), n)
	}
	t.Logf("full coverage of %d engines in %d rounds", n, rounds)

	// Saturated: futile exchanges kill every rumor within MaxIdle+slack.
	for extra := 0; extra < 8; extra++ {
		for _, e := range engines {
			_, _ = e.Round(ctx)
		}
	}
	for i, e := range engines {
		if hot := e.HotRumors(); len(hot) != 0 {
			t.Errorf("engine %d still hot after saturation: %v", i, hot)
		}
	}
	if v := reg.Counter(MetricRounds, "").Value(); v == 0 {
		t.Error("gossip_rounds_total never incremented")
	}
}

// TestPrometheusExpositionRows pins the exposition format of the new
// gossip metrics — the rows dashboards scrape.
func TestPrometheusExpositionRows(t *testing.T) {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	a := newTestEngine(t, Config{Metrics: reg})
	b := newTestEngine(t, Config{Metrics: reg, Contacts: func(int) []string { return []string{} }})
	const fileID = 5
	if err := a.Seed(fileID, 2, testPayloadLen, mkMsgs(fileID, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exchange(ctx, b.Addr(), fileID); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exchange(ctx, b.Addr(), fileID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Round(ctx); err != nil { // hot rumor, zero contacts: counts the round
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, row := range []string{
		"# TYPE gossip_rounds_total counter",
		"gossip_rounds_total 1",
		"# TYPE gossip_innovative_messages_total counter",
		"gossip_innovative_messages_total 2",
		"# TYPE gossip_duplicate_messages_total counter",
		"gossip_duplicate_messages_total 0",
	} {
		if !strings.Contains(got, row) {
			t.Errorf("exposition missing row %q\n--- got ---\n%s", row, got)
		}
	}
}

func TestExchangeUnknownGeneration(t *testing.T) {
	a := newTestEngine(t, Config{})
	b := newTestEngine(t, Config{})
	if _, err := a.Exchange(context.Background(), b.Addr(), 404); err == nil {
		t.Fatal("exchange of an unseeded generation succeeded")
	}
}

// stallTransport blocks every dial until the context expires —
// modelling a blackholed partner (ISSUE 10 satellite: exchange rounds
// must carry deadlines of their own).
type stallTransport struct{}

func (stallTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func (stallTransport) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestExchangeBoundedByTimeoutOnStalledDial pins that Exchange bounds
// itself by ExchangeTimeout before dialing: a blackholed partner costs
// one timed-out exchange, not a round wedged for as long as the
// caller's (here unbounded) context lives.
func TestExchangeBoundedByTimeoutOnStalledDial(t *testing.T) {
	e := newTestEngine(t, Config{
		Transport:       stallTransport{},
		ExchangeTimeout: 100 * time.Millisecond,
	})
	const fileID = 9
	if err := e.Seed(fileID, 2, testPayloadLen, mkMsgs(fileID, 1, 2)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := e.Exchange(context.Background(), "10.255.255.1:1", fileID)
	if err == nil {
		t.Fatal("exchange with a blackholed partner succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("exchange took %v, want ~ExchangeTimeout", elapsed)
	}
}

// TestExchangeClampsRemoteIDLists pins the processing cap on
// remote-supplied id lists: a responder facing an oversized offer still
// answers within Budget and maxExchangeIDs instead of allocating
// proportionally to the attacker's list.
func TestExchangeClampsRemoteIDLists(t *testing.T) {
	huge := make([]uint64, maxExchangeIDs+5)
	for i := range huge {
		huge[i] = uint64(i)
	}
	if got := clampIDs(huge); len(got) != maxExchangeIDs {
		t.Fatalf("clampIDs kept %d ids, want %d", len(got), maxExchangeIDs)
	}
	small := []uint64{1, 2, 3}
	if got := clampIDs(small); len(got) != 3 {
		t.Fatalf("clampIDs truncated a small list to %d", len(got))
	}
}
