package gossip

// The wire protocol for one push/pull exchange, framed like every other
// protocol in the system (1-byte type + length + payload) on its own
// type range. The initiator offers its message-id set; the responder
// answers with the ids it wants and the ids it can offer back; verbatim
// message bytes then flow in both directions. Only ids absent from the
// other side's set ever transfer, so a fully-synced pair costs three
// small JSON frames and no data.
//
//	A -> B  Offer{fileID, k, payloadLen, ids}
//	B -> A  Want{want ⊆ A's ids, offer = B's ids \ A's ids}
//	A -> B  Data × len(want), then Pull{want ⊆ B's offer}
//	B -> A  Data × len(pull.want), then Done
//
// Counts are never trusted: each side reads Data frames until the
// terminating Pull/Done frame arrives.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"asymshare/internal/rlnc"
	"asymshare/internal/wire"
)

// Exchange frame types, in a range disjoint from the peer (1–17),
// tracker (64–67) and DHT (96–103) protocols.
const (
	typeOffer wire.Type = 112 + iota
	typeWant
	typeData
	typePull
	typeDone
)

type offerMsg struct {
	FileID     uint64   `json:"fileId"`
	K          int      `json:"k,omitempty"`
	PayloadLen int      `json:"payloadLen,omitempty"`
	IDs        []uint64 `json:"ids"`
}

type wantMsg struct {
	Want  []uint64 `json:"want,omitempty"`
	Offer []uint64 `json:"offer,omitempty"`
}

type pullMsg struct {
	Want []uint64 `json:"want,omitempty"`
}

func writeJSON(fw *wire.FrameWriter, t wire.Type, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return fw.WriteFrame(t, buf)
}

func readJSON(fr *wire.FrameReader, want wire.Type, v any) error {
	b, err := fr.Expect(want)
	if err != nil {
		return err
	}
	err = json.Unmarshal(b.Bytes(), v)
	b.Release()
	return err
}

// armConn bounds the connection by min(ctx deadline, ExchangeTimeout)
// and returns a stop func; until stopped, a watcher closes the conn if
// ctx is cancelled early, unwedging any blocked read.
func (e *Engine) armConn(ctx context.Context, conn net.Conn) func() {
	deadline := time.Now().Add(e.cfg.ExchangeTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// snapshotIDs returns the generation's id list (nil if unknown) plus
// its k/payloadLen hints; bounded only by the actual set size — offers
// are cheap, Budget applies to data transfer.
func (e *Engine) snapshotIDs(fileID uint64) (ids []uint64, k, payloadLen int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, ok := e.gens[fileID]
	if !ok {
		return nil, 0, 0
	}
	ids = make([]uint64, 0, len(g.ids))
	for id := range g.ids {
		ids = append(ids, id)
	}
	return ids, g.k, g.payloadLen
}

// missing returns up to budget ids from offered that the generation
// lacks.
func missing(offered []uint64, have map[uint64]struct{}, budget int) []uint64 {
	out := make([]uint64, 0, budget)
	for _, id := range offered {
		if _, ok := have[id]; ok {
			continue
		}
		out = append(out, id)
		if len(out) == budget {
			break
		}
	}
	return out
}

// surplus returns up to budget ids this side has that the remote's
// offered set lacks.
func surplus(have map[uint64]struct{}, offered []uint64, budget int) []uint64 {
	remote := make(map[uint64]struct{}, len(offered))
	for _, id := range offered {
		remote[id] = struct{}{}
	}
	out := make([]uint64, 0, budget)
	for id := range have {
		if _, ok := remote[id]; ok {
			continue
		}
		out = append(out, id)
		if len(out) == budget {
			break
		}
	}
	return out
}

// absorb validates and stores one received message, updating rumor
// state and metrics. Receiving anything new marks the generation hot:
// the receiver becomes a spreader.
func (e *Engine) absorb(msg *rlnc.Message, fileID uint64, k, payloadLen int) error {
	if msg.FileID != fileID {
		return fmt.Errorf("gossip: data frame for file %d inside exchange for %d", msg.FileID, fileID)
	}
	e.mu.Lock()
	g := e.genLocked(fileID, k, payloadLen)
	if g.payloadLen > 0 && len(msg.Payload) != g.payloadLen {
		e.mu.Unlock()
		return fmt.Errorf("gossip: payload length %d != generation's %d", len(msg.Payload), g.payloadLen)
	}
	if _, dup := g.ids[msg.MessageID]; dup {
		e.mu.Unlock()
		e.m.duplicate.Inc()
		return nil
	}
	e.mu.Unlock()

	// Store outside the lock; Put is the slow part.
	if err := e.cfg.Store.Put(msg); err != nil {
		return err
	}
	e.mu.Lock()
	g = e.genLocked(fileID, k, payloadLen)
	_, dup := g.ids[msg.MessageID]
	if !dup {
		g.ids[msg.MessageID] = struct{}{}
		g.hot = true
		g.idle = 0
	}
	announce := e.markAnnouncedLocked(g)
	e.mu.Unlock()
	if dup {
		e.m.duplicate.Inc()
		return nil
	}
	e.m.innovative.Inc()
	if announce != nil {
		announce(fileID)
	}
	return nil
}

// sendData ships the named stored messages as Data frames; ids the
// store no longer has are silently skipped (the terminator frame tells
// the reader when the stream ends, not a count). Each message is framed
// zero-copy — 16 header bytes into the writer arena, the stored payload
// handed to the vectored write untouched — and batches of frames share
// one writev (the writer auto-flushes as the queue grows).
func (e *Engine) sendData(fw *wire.FrameWriter, fileID uint64, ids []uint64) (int, error) {
	var hdr [rlnc.MessageHeaderBytes]byte
	sent := 0
	for _, id := range ids {
		msg, err := e.cfg.Store.Get(fileID, id)
		if err != nil {
			continue
		}
		msg.PutHeader(hdr[:])
		if err := fw.QueueSpan(typeData, hdr[:], msg.Payload); err != nil {
			return sent, err
		}
		sent++
	}
	return sent, fw.Flush()
}

// readData consumes Data frames until the terminator type arrives,
// absorbing each message; it returns the count absorbed innovatively
// plus the terminator's payload (copied out of the pooled frame).
func (e *Engine) readData(fr *wire.FrameReader, fileID uint64, k, payloadLen int, terminator wire.Type) (int, []byte, error) {
	got := 0
	for {
		t, b, err := fr.Next()
		if err != nil {
			return got, nil, err
		}
		switch t {
		case typeData:
			var msg rlnc.Message
			err := msg.UnmarshalBinary(b.Bytes())
			b.Release()
			if err != nil {
				return got, nil, err
			}
			if err := e.absorb(&msg, fileID, k, payloadLen); err != nil {
				return got, nil, err
			}
			got++
		case terminator:
			payload := append([]byte(nil), b.Bytes()...)
			b.Release()
			return got, payload, nil
		default:
			b.Release()
			return got, nil, fmt.Errorf("gossip: unexpected frame type %d", t)
		}
	}
}

// maxExchangeIDs caps how many remote-supplied message ids one
// exchange will even look at. Offers and want-queues are adversarial
// inputs (any contact can connect); without the cap a single huge id
// list would cost unbounded memory in the diff maps below long before
// Budget caps the data transfer.
const maxExchangeIDs = 1 << 16

// clampIDs truncates a remote id list to the processing cap.
func clampIDs(ids []uint64) []uint64 {
	if len(ids) > maxExchangeIDs {
		return ids[:maxExchangeIDs]
	}
	return ids
}

// Exchange runs one initiator-side exchange of fileID with the engine
// at addr, returning the number of messages that moved in either
// direction. The round's context is bounded by ExchangeTimeout before
// the dial: a blackholed partner must cost one timed-out exchange, not
// a round wedged for as long as the caller's context lives (armConn
// only bounds the connection once the dial has returned).
func (e *Engine) Exchange(ctx context.Context, addr string, fileID uint64) (int, error) {
	ids, k, payloadLen := e.snapshotIDs(fileID)
	if len(ids) == 0 {
		return 0, fmt.Errorf("gossip: nothing stored for file %d", fileID)
	}
	if e.cfg.ExchangeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.ExchangeTimeout)
		defer cancel()
	}
	conn, err := e.cfg.Transport.DialContext(ctx, addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	stop := e.armConn(ctx, conn)
	defer stop()
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)

	if err := writeJSON(fw, typeOffer, offerMsg{FileID: fileID, K: k, PayloadLen: payloadLen, IDs: ids}); err != nil {
		return 0, err
	}
	var want wantMsg
	if err := readJSON(fr, typeWant, &want); err != nil {
		return 0, err
	}
	if len(want.Want) > e.cfg.Budget {
		want.Want = want.Want[:e.cfg.Budget]
	}
	want.Offer = clampIDs(want.Offer)
	sent, err := e.sendData(fw, fileID, want.Want)
	if err != nil {
		return sent, err
	}
	e.mu.Lock()
	g := e.gens[fileID]
	var pull []uint64
	if g != nil {
		pull = missing(want.Offer, g.ids, e.cfg.Budget)
	}
	e.mu.Unlock()
	if err := writeJSON(fw, typePull, pullMsg{Want: pull}); err != nil {
		return sent, err
	}
	got, _, err := e.readData(fr, fileID, k, payloadLen, typeDone)
	return sent + got, err
}

// serveExchange handles one inbound exchange.
func (e *Engine) serveExchange(conn net.Conn) error {
	stop := e.armConn(e.ctx, conn)
	defer stop()
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)

	var offer offerMsg
	if err := readJSON(fr, typeOffer, &offer); err != nil {
		return err
	}
	if len(offer.IDs) == 0 {
		return fmt.Errorf("gossip: empty offer")
	}
	offer.IDs = clampIDs(offer.IDs)
	e.mu.Lock()
	g := e.genLocked(offer.FileID, offer.K, offer.PayloadLen)
	wantIDs := missing(offer.IDs, g.ids, e.cfg.Budget)
	offerBack := surplus(g.ids, offer.IDs, e.cfg.Budget)
	e.mu.Unlock()

	if err := writeJSON(fw, typeWant, wantMsg{Want: wantIDs, Offer: offerBack}); err != nil {
		return err
	}
	_, pullPayload, err := e.readData(fr, offer.FileID, offer.K, offer.PayloadLen, typePull)
	if err != nil {
		return err
	}
	var pull pullMsg
	if err := json.Unmarshal(pullPayload, &pull); err != nil {
		return err
	}
	if len(pull.Want) > e.cfg.Budget {
		pull.Want = pull.Want[:e.cfg.Budget]
	}
	if _, err := e.sendData(fw, offer.FileID, pull.Want); err != nil {
		return err
	}
	return fw.WriteFrame(typeDone, nil)
}
