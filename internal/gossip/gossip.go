// Package gossip disseminates encoded generations through rumor
// mongering instead of direct per-peer pushes. The home peer seeds a
// generation "hot" and each round pushes it to Fanout random contacts
// drawn from the DHT routing table; receivers turn around and spread it
// themselves, so coverage grows epidemically in O(log n) rounds while
// the home uplink only ever pays for Fanout exchanges per round — the
// asymmetric-channel constraint the paper's direct dissemination model
// strains against at swarm scale.
//
// Exchanges are innovation-aware: peers swap message-id sets first and
// only ship ids the other side lacks. Because every message of a
// generation is minted once by the owner under secret-keyed coefficient
// rows, distinct message-ids are w.h.p. linearly independent up to rank
// k — so "new id" is a rank-increase test that storage peers can run
// without ever holding the coding secret.
//
// A rumor dies locally after MaxIdle consecutive futile exchanges
// (nothing moved either direction), the classic coin-flip death of
// push/pull rumor mongering; the engine still answers inbound pulls for
// generations it has gone quiet about.
package gossip

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"asymshare/internal/metrics"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
	"asymshare/internal/transport"
)

// Defaults for the dissemination knobs.
const (
	DefaultFanout          = 2
	DefaultBudget          = 32
	DefaultMaxIdle         = 3
	DefaultExchangeTimeout = 10 * time.Second
)

// Exported metric names (see DESIGN.md §7).
const (
	MetricRounds     = "gossip_rounds_total"
	MetricInnovative = "gossip_innovative_messages_total"
	MetricDuplicate  = "gossip_duplicate_messages_total"
)

// Config configures an Engine.
type Config struct {
	// Advertise is the gossip listen address other engines dial.
	// Required for Start; an engine that only initiates may omit it.
	Advertise string

	// Transport carries exchanges; nil means real TCP.
	Transport transport.Transport

	// Store holds the generations this engine spreads and receives —
	// usually shared with the co-located storage peer, so gossiped
	// messages are immediately servable. Required.
	Store store.Store

	// Contacts returns up to n gossip addresses of other engines,
	// typically random picks from the co-located DHT node's routing
	// table. Required for Round.
	Contacts func(n int) []string

	// Announce, when set, is called once per generation the first time
	// this engine stores any of its messages — the hook where a storage
	// peer registers itself with discovery so fetchers can find what
	// gossip just delivered.
	Announce func(fileID uint64)

	// Fanout is the number of random partners contacted per hot rumor
	// per round; zero means DefaultFanout.
	Fanout int

	// Budget caps the messages shipped in each direction of one
	// exchange; zero means DefaultBudget.
	Budget int

	// MaxIdle is the number of consecutive futile exchanges after which
	// a rumor goes cold; zero means DefaultMaxIdle.
	MaxIdle int

	// ExchangeTimeout bounds one full exchange; zero means
	// DefaultExchangeTimeout.
	ExchangeTimeout time.Duration

	// RoundInterval, when positive, runs rounds on a background ticker
	// after Start. Zero leaves rounds caller-driven (tests, benchmarks).
	RoundInterval time.Duration

	// Seed seeds partner selection; zero uses a time-derived seed.
	Seed int64

	// Metrics, when set, receives gossip_rounds_total and the
	// innovative/duplicate message counters.
	Metrics *metrics.Registry
}

type engineMetrics struct {
	rounds     *metrics.Counter
	innovative *metrics.Counter
	duplicate  *metrics.Counter
}

func newEngineMetrics(reg *metrics.Registry) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		rounds:     reg.Counter(MetricRounds, "Gossip rounds driven with at least one hot rumor."),
		innovative: reg.Counter(MetricInnovative, "Messages received carrying a new message-id."),
		duplicate:  reg.Counter(MetricDuplicate, "Messages received whose id was already stored."),
	}
}

// genState is the per-generation rumor state.
type genState struct {
	k          int
	payloadLen int
	ids        map[uint64]struct{}
	hot        bool
	idle       int
	announced  bool
}

// Engine is one gossip participant.
type Engine struct {
	cfg Config
	m   engineMetrics

	mu   sync.Mutex
	gens map[uint64]*genState
	rng  *rand.Rand

	ln      net.Listener
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool
	closed  bool
}

// New creates an engine. It does not listen until Start.
func New(cfg Config) (*Engine, error) {
	if cfg.Store == nil {
		return nil, errors.New("gossip: store required")
	}
	if cfg.Transport == nil {
		cfg.Transport = transport.Default
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = DefaultMaxIdle
	}
	if cfg.ExchangeTimeout <= 0 {
		cfg.ExchangeTimeout = DefaultExchangeTimeout
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	e := &Engine{
		cfg:  cfg,
		m:    newEngineMetrics(cfg.Metrics),
		gens: make(map[uint64]*genState),
		rng:  rand.New(rand.NewSource(seed)),
	}
	e.ctx, e.cancel = context.WithCancel(context.Background())
	return e, nil
}

// Addr returns the engine's gossip address.
func (e *Engine) Addr() string { return e.cfg.Advertise }

// Start begins serving inbound exchanges on the advertise address and,
// when RoundInterval is set, driving background rounds.
func (e *Engine) Start() error {
	if e.cfg.Advertise == "" {
		return errors.New("gossip: advertise address required to start")
	}
	ln, err := e.cfg.Transport.Listen(e.cfg.Advertise)
	if err != nil {
		return err
	}
	return e.StartListener(ln)
}

// StartListener serves inbound exchanges on a pre-bound listener.
func (e *Engine) StartListener(ln net.Listener) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("gossip: engine closed")
	}
	if e.started {
		e.mu.Unlock()
		return errors.New("gossip: already started")
	}
	e.started = true
	e.ln = ln
	e.mu.Unlock()

	e.wg.Add(1)
	go e.acceptLoop(ln)
	if e.cfg.RoundInterval > 0 {
		e.wg.Add(1)
		go e.roundLoop()
	}
	return nil
}

// Close stops the listener and background rounds.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	ln := e.ln
	e.mu.Unlock()
	e.cancel()
	if ln != nil {
		ln.Close()
	}
	e.wg.Wait()
	return nil
}

func (e *Engine) acceptLoop(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer conn.Close()
			_ = e.serveExchange(conn)
		}()
	}
}

func (e *Engine) roundLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.RoundInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.ctx.Done():
			return
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(e.ctx, e.cfg.RoundInterval)
			_, _ = e.Round(ctx)
			cancel()
		}
	}
}

// Seed installs a generation's messages (the home peer's freshly minted
// batch) and marks its rumor hot. k is the generation's decode rank and
// payloadLen the packed payload size, both forwarded to receivers so
// they can validate incoming data before a manifest exists.
func (e *Engine) Seed(fileID uint64, k, payloadLen int, msgs []*rlnc.Message) error {
	if len(msgs) == 0 {
		return errors.New("gossip: seed with no messages")
	}
	for _, m := range msgs {
		if m.FileID != fileID {
			return fmt.Errorf("gossip: seed message file-id %d != %d", m.FileID, fileID)
		}
		if err := e.cfg.Store.Put(m); err != nil {
			return err
		}
	}
	e.mu.Lock()
	g := e.genLocked(fileID, k, payloadLen)
	for _, m := range msgs {
		g.ids[m.MessageID] = struct{}{}
	}
	g.hot = true
	g.idle = 0
	announce := e.markAnnouncedLocked(g)
	e.mu.Unlock()
	if announce != nil {
		announce(fileID)
	}
	return nil
}

// genLocked returns (creating if needed) the state for a generation;
// e.mu must be held. Existing store contents are absorbed so an engine
// restarted over a durable store resumes where it left off.
func (e *Engine) genLocked(fileID uint64, k, payloadLen int) *genState {
	g, ok := e.gens[fileID]
	if !ok {
		g = &genState{ids: make(map[uint64]struct{})}
		if msgs, err := e.cfg.Store.Messages(fileID); err == nil {
			for _, m := range msgs {
				g.ids[m.MessageID] = struct{}{}
				if g.payloadLen == 0 {
					g.payloadLen = len(m.Payload)
				}
			}
		}
		e.gens[fileID] = g
	}
	if k > g.k {
		g.k = k
	}
	if payloadLen > 0 && g.payloadLen == 0 {
		g.payloadLen = payloadLen
	}
	return g
}

// markAnnouncedLocked flips the announced flag and returns the hook to
// invoke (outside the lock), or nil.
func (e *Engine) markAnnouncedLocked(g *genState) func(uint64) {
	if g.announced || len(g.ids) == 0 || e.cfg.Announce == nil {
		return nil
	}
	g.announced = true
	return e.cfg.Announce
}

// HotRumors lists the generations this engine is still actively
// spreading.
func (e *Engine) HotRumors() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]uint64, 0, len(e.gens))
	for id, g := range e.gens {
		if g.hot {
			out = append(out, id)
		}
	}
	return out
}

// Round drives one gossip round: for every hot rumor, exchange with
// Fanout random contacts. It returns the number of messages that moved
// (both directions). Rumors with MaxIdle consecutive futile exchanges
// go cold.
func (e *Engine) Round(ctx context.Context) (int, error) {
	if e.cfg.Contacts == nil {
		return 0, errors.New("gossip: no contact source configured")
	}
	e.mu.Lock()
	hot := make([]uint64, 0, len(e.gens))
	for id, g := range e.gens {
		if g.hot {
			hot = append(hot, id)
		}
	}
	e.mu.Unlock()
	if len(hot) == 0 {
		return 0, nil
	}
	e.m.rounds.Inc()

	moved := 0
	var firstErr error
	for _, fileID := range hot {
		partners := e.pickPartners(e.cfg.Fanout)
		if len(partners) == 0 {
			continue
		}
		var wg sync.WaitGroup
		results := make([]int, len(partners))
		errs := make([]error, len(partners))
		for i, addr := range partners {
			wg.Add(1)
			go func(i int, addr string) {
				defer wg.Done()
				results[i], errs[i] = e.Exchange(ctx, addr, fileID)
			}(i, addr)
		}
		wg.Wait()
		genMoved := 0
		failed := 0
		for i := range partners {
			if errs[i] != nil {
				failed++
				if firstErr == nil {
					firstErr = errs[i]
				}
				continue
			}
			genMoved += results[i]
		}
		moved += genMoved
		// Failed exchanges (dead partners, partitions) say nothing about
		// novelty, so only an all-quiet round of completed exchanges
		// counts toward rumor death.
		if genMoved == 0 && failed < len(partners) {
			e.bumpIdle(fileID)
		} else if genMoved > 0 {
			e.resetIdle(fileID)
		}
	}
	return moved, firstErr
}

func (e *Engine) bumpIdle(fileID uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.gens[fileID]; ok && g.hot {
		g.idle++
		if g.idle >= e.cfg.MaxIdle {
			g.hot = false
		}
	}
}

func (e *Engine) resetIdle(fileID uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.gens[fileID]; ok {
		g.idle = 0
	}
}

// pickPartners selects up to n distinct partner addresses, excluding
// this engine itself. Candidates are shuffled with the engine's seeded
// RNG so fanout stays randomized even under a deterministic contact
// source.
func (e *Engine) pickPartners(n int) []string {
	cands := e.cfg.Contacts(n + 2)
	e.mu.Lock()
	e.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	e.mu.Unlock()
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, len(cands))
	for _, addr := range cands {
		if addr == "" || addr == e.cfg.Advertise {
			continue
		}
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		out = append(out, addr)
		if len(out) == n {
			break
		}
	}
	return out
}
