package wire

import (
	"bytes"
	"testing"
)

func TestPoolGetRelease(t *testing.T) {
	p := NewPool()
	sizes := []int{0, 1, 63, 64, 65, 4096, 64 << 10, MaxFrameSize}
	for _, n := range sizes {
		b := p.Get(n)
		if b.Len() != n || len(b.Bytes()) != n {
			t.Fatalf("Get(%d): Len = %d, Bytes = %d", n, b.Len(), len(b.Bytes()))
		}
		b.Release()
	}
	st := p.Stats()
	if st.Live != 0 {
		t.Errorf("Live = %d after all releases", st.Live)
	}
	if st.Gets != uint64(len(sizes)) || st.Releases != uint64(len(sizes)) {
		t.Errorf("stats = %+v", st)
	}
	if st.DoubleReleases != 0 {
		t.Errorf("DoubleReleases = %d", st.DoubleReleases)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool()
	b := p.Get(1024)
	b.Bytes()[0] = 7
	b.Release()
	c := p.Get(900) // same class (1024)
	st := p.Stats()
	if st.Hits != 1 {
		t.Errorf("Hits = %d, want 1 (buffer not recycled)", st.Hits)
	}
	if c.Len() != 900 {
		t.Errorf("recycled Len = %d", c.Len())
	}
	c.Release()
}

func TestPoolRetain(t *testing.T) {
	p := NewPool()
	b := p.Get(128)
	b.Retain()
	b.Release()
	if p.Live() != 1 {
		t.Fatalf("Live = %d with one reference outstanding", p.Live())
	}
	b.Release()
	if p.Live() != 0 {
		t.Fatalf("Live = %d after final release", p.Live())
	}
	st := p.Stats()
	if st.Retains != 1 || st.Releases != 2 || st.DoubleReleases != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPoolDoubleRelease(t *testing.T) {
	p := NewPool()
	b := p.Get(128)
	b.Release()
	b.Release() // bug: must be counted, never recycle the buffer twice
	st := p.Stats()
	if st.DoubleReleases != 1 {
		t.Errorf("DoubleReleases = %d, want 1", st.DoubleReleases)
	}
	if st.Live != 0 {
		t.Errorf("Live = %d, want 0", st.Live)
	}
	// The double-released buffer must not appear in the free list a
	// second time: two gets must yield two distinct buffers.
	x, y := p.Get(128), p.Get(128)
	if x == y {
		t.Fatal("pool handed out the same buffer twice")
	}
	x.Release()
	y.Release()
}

func TestPoolLeakAccounting(t *testing.T) {
	p := NewPool()
	bufs := make([]*Buf, 5)
	for i := range bufs {
		bufs[i] = p.Get(256)
	}
	for _, b := range bufs[:4] {
		b.Release()
	}
	if p.Live() != 1 {
		t.Fatalf("Live = %d, want 1 (the leaked buffer)", p.Live())
	}
	bufs[4].Release()
	if p.Live() != 0 {
		t.Fatalf("Live = %d after plugging the leak", p.Live())
	}
}

func TestPoolOversized(t *testing.T) {
	p := NewPool()
	n := (16 << 20) + 1 // past the largest class: heap-served
	b := p.Get(n)
	if b.Len() != n {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Release()
	st := p.Stats()
	if st.Discards != 1 {
		t.Errorf("Discards = %d, want 1 (oversized never pooled)", st.Discards)
	}
	if st.Live != 0 {
		t.Errorf("Live = %d", st.Live)
	}
}

func TestPoolClassBoundaries(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{16 << 20, numClasses - 1}, {(16 << 20) + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

// TestPooledWriteFrameByteIdentity pins that the pooled package-level
// WriteFrame produces exactly the historical wire bytes.
func TestPooledWriteFrameByteIdentity(t *testing.T) {
	payload := []byte("the quick brown fox")
	var got bytes.Buffer
	if err := WriteFrame(&got, TypeData, payload); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{byte(TypeData), 0, 0, 0, byte(len(payload))}, payload...)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("wire bytes = %x, want %x", got.Bytes(), want)
	}
}
