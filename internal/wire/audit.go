package wire

// Spot-check audit frames. The owner of a file challenges a storage
// peer to prove it still holds a random sample of the encoded messages
// it accepted during pre-dissemination. The challenge carries a
// per-challenge HMAC key derived (by the owner, from the per-file
// coding secret and a fresh nonce — see internal/auth.DeriveAuditKey)
// so the holder can answer but cannot precompute answers, and the owner
// verifies against the message digests it already carries in the
// manifest without re-downloading any payload.

import (
	"encoding/binary"
	"fmt"
)

// AuditNonceLen is the challenge nonce length in bytes.
const AuditNonceLen = 32

// AuditKeyLen is the per-challenge HMAC key length in bytes.
const AuditKeyLen = 32

// AuditMACLen is the per-message proof length in bytes.
const AuditMACLen = 32

// MaxAuditSample bounds how many messages one challenge may probe, so a
// hostile owner cannot turn an audit into an amplification attack on
// the holder and the response stays far below MaxFrameSize.
const MaxAuditSample = 4096

// AuditChallenge asks a peer to prove possession of a sample of stored
// messages of one file.
type AuditChallenge struct {
	FileID     uint64
	Nonce      []byte   // AuditNonceLen bytes, fresh per challenge
	Key        []byte   // AuditKeyLen bytes, derived from (secret, fileID, nonce)
	MessageIDs []uint64 // sampled message identifiers, at most MaxAuditSample
}

// Marshal serializes the challenge.
func (c *AuditChallenge) Marshal() []byte {
	out := make([]byte, 8+AuditNonceLen+AuditKeyLen+4+8*len(c.MessageIDs))
	binary.BigEndian.PutUint64(out, c.FileID)
	off := 8
	off += copy(out[off:], c.Nonce)
	off += copy(out[off:], c.Key)
	binary.BigEndian.PutUint32(out[off:], uint32(len(c.MessageIDs)))
	off += 4
	for _, id := range c.MessageIDs {
		binary.BigEndian.PutUint64(out[off:], id)
		off += 8
	}
	return out
}

// Unmarshal parses a challenge.
func (c *AuditChallenge) Unmarshal(b []byte) error {
	const fixed = 8 + AuditNonceLen + AuditKeyLen + 4
	if len(b) < fixed {
		return fmt.Errorf("%w: audit challenge of %d bytes", ErrBadFrame, len(b))
	}
	c.FileID = binary.BigEndian.Uint64(b)
	off := 8
	c.Nonce = append([]byte(nil), b[off:off+AuditNonceLen]...)
	off += AuditNonceLen
	c.Key = append([]byte(nil), b[off:off+AuditKeyLen]...)
	off += AuditKeyLen
	n := binary.BigEndian.Uint32(b[off:])
	off += 4
	if n == 0 || n > MaxAuditSample {
		return fmt.Errorf("%w: audit sample of %d messages", ErrBadFrame, n)
	}
	if len(b) != off+int(n)*8 {
		return fmt.Errorf("%w: audit challenge length %d for %d ids", ErrBadFrame, len(b), n)
	}
	c.MessageIDs = make([]uint64, n)
	for i := range c.MessageIDs {
		c.MessageIDs[i] = binary.BigEndian.Uint64(b[off:])
		off += 8
	}
	return nil
}

// AuditProof is the holder's answer for one sampled message. A missing
// message is reported with Present=false and no MAC — an honest holder
// admits gaps rather than guessing.
type AuditProof struct {
	MessageID uint64
	Present   bool
	MAC       []byte // AuditMACLen bytes when Present
}

// AuditResponse answers an AuditChallenge, one proof per sampled
// message in challenge order.
type AuditResponse struct {
	FileID uint64
	Proofs []AuditProof
}

// Marshal serializes the response.
func (r *AuditResponse) Marshal() []byte {
	size := 8 + 4
	for _, p := range r.Proofs {
		size += 8 + 1
		if p.Present {
			size += AuditMACLen
		}
	}
	out := make([]byte, size)
	binary.BigEndian.PutUint64(out, r.FileID)
	binary.BigEndian.PutUint32(out[8:], uint32(len(r.Proofs)))
	off := 12
	for _, p := range r.Proofs {
		binary.BigEndian.PutUint64(out[off:], p.MessageID)
		off += 8
		if p.Present {
			out[off] = 1
			off++
			off += copy(out[off:], p.MAC)
		} else {
			out[off] = 0
			off++
		}
	}
	return out
}

// Unmarshal parses a response.
func (r *AuditResponse) Unmarshal(b []byte) error {
	if len(b) < 12 {
		return fmt.Errorf("%w: audit response of %d bytes", ErrBadFrame, len(b))
	}
	r.FileID = binary.BigEndian.Uint64(b)
	n := binary.BigEndian.Uint32(b[8:])
	if n > MaxAuditSample {
		return fmt.Errorf("%w: audit response with %d proofs", ErrBadFrame, n)
	}
	off := 12
	r.Proofs = make([]AuditProof, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < off+9 {
			return fmt.Errorf("%w: truncated audit proof %d", ErrBadFrame, i)
		}
		p := AuditProof{MessageID: binary.BigEndian.Uint64(b[off:])}
		off += 8
		switch b[off] {
		case 0:
			off++
		case 1:
			off++
			if len(b) < off+AuditMACLen {
				return fmt.Errorf("%w: truncated audit MAC %d", ErrBadFrame, i)
			}
			p.Present = true
			p.MAC = append([]byte(nil), b[off:off+AuditMACLen]...)
			off += AuditMACLen
		default:
			return fmt.Errorf("%w: audit proof flag %d", ErrBadFrame, b[off])
		}
		r.Proofs = append(r.Proofs, p)
	}
	if off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes in audit response", ErrBadFrame, len(b)-off)
	}
	return nil
}
