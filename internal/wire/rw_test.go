package wire

// Differential coverage for the pooled framing hot path: FrameWriter
// must emit byte-identical streams to the legacy WriteFrame, and
// FrameReader must parse any stream into the same (type, payload,
// error-class) sequence ReadFrame produces. The suites run against a
// private pool and assert the teardown invariants — zero live buffers,
// zero double-releases — after every scenario.

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// checkPool fails the test if the pool leaked or double-released.
func checkPool(t *testing.T, p *Pool) {
	t.Helper()
	st := p.Stats()
	if st.Live != 0 {
		t.Errorf("pool leak: %d live buffers at teardown", st.Live)
	}
	if st.DoubleReleases != 0 {
		t.Errorf("%d double-releases at teardown", st.DoubleReleases)
	}
}

// randomFrames builds a deterministic mixed batch of frames.
func randomFrames(rng *rand.Rand, n int) []Frame {
	types := []Type{TypeData, TypeGet, TypeStop, TypePutOK, TypeGetMux, TypeStreamError}
	frames := make([]Frame, n)
	for i := range frames {
		var payload []byte
		switch rng.Intn(4) {
		case 0: // empty
		case 1:
			payload = make([]byte, 1+rng.Intn(64))
		case 2:
			payload = make([]byte, 1+rng.Intn(4096))
		default:
			payload = make([]byte, 1+rng.Intn(64<<10))
		}
		rng.Read(payload)
		frames[i] = Frame{Type: types[rng.Intn(len(types))], Payload: payload}
	}
	return frames
}

// TestFrameWriterByteIdentity writes the same frame batch through the
// legacy path and through every FrameWriter queueing mode, and requires
// bit-identical streams.
func TestFrameWriterByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	frames := randomFrames(rng, 64)

	var legacy bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&legacy, f.Type, f.Payload); err != nil {
			t.Fatal(err)
		}
	}

	pool := NewPool()
	var pooled bytes.Buffer
	fw := &FrameWriter{w: &pooled, pool: pool}
	for i, f := range frames {
		var err error
		switch i % 4 {
		case 0:
			err = fw.Queue(f.Type, f.Payload)
		case 1:
			// Split an arbitrary head off the payload, as the DATA
			// serve path does with the 16-byte message header.
			cut := len(f.Payload) / 3
			err = fw.QueueSpan(f.Type, f.Payload[:cut], f.Payload[cut:])
		case 2:
			b := pool.Get(len(f.Payload))
			copy(b.Bytes(), f.Payload)
			err = fw.QueueBuf(f.Type, b)
		default:
			err = fw.WriteFrame(f.Type, f.Payload)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), pooled.Bytes()) {
		t.Fatalf("streams diverge: legacy %d bytes, pooled %d bytes", legacy.Len(), pooled.Len())
	}
	checkPool(t, pool)
}

// TestFrameReaderMatchesReadFrame runs both readers over the same
// stream and requires the same frames in the same order.
func TestFrameReaderMatchesReadFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	frames := randomFrames(rng, 48)
	var stream bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&stream, f.Type, f.Payload); err != nil {
			t.Fatal(err)
		}
	}
	raw := stream.Bytes()

	pool := NewPool()
	fr := NewFrameReaderPool(bytes.NewReader(raw), pool)
	legacy := bytes.NewReader(raw)
	for i := range frames {
		want, wantErr := ReadFrame(legacy)
		ty, b, err := fr.Next()
		if wantErr != nil || err != nil {
			t.Fatalf("frame %d: legacy err %v, pooled err %v", i, wantErr, err)
		}
		if ty != want.Type || !bytes.Equal(b.Bytes(), want.Payload) {
			t.Fatalf("frame %d diverges: %s vs %s", i, ty, want.Type)
		}
		b.Release()
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Errorf("end-of-stream error = %v, want io.EOF", err)
	}
	checkPool(t, pool)
}

// TestFrameReaderErrorClasses pins the error taxonomy shared with
// ReadFrame: clean EOF, torn header, torn body, oversized length.
func TestFrameReaderErrorClasses(t *testing.T) {
	pool := NewPool()
	cases := []struct {
		name  string
		bytes []byte
		check func(error) bool
	}{
		{"clean EOF", nil, func(err error) bool { return err == io.EOF }},
		{"torn header", []byte{byte(TypeData), 0, 0}, func(err error) bool { return errors.Is(err, io.ErrUnexpectedEOF) }},
		{"torn body", []byte{byte(TypeData), 0, 0, 0, 10, 1, 2}, func(err error) bool { return errors.Is(err, io.ErrUnexpectedEOF) }},
		{"oversized", []byte{byte(TypeData), 0xFF, 0xFF, 0xFF, 0xFF}, func(err error) bool { return errors.Is(err, ErrFrameTooLarge) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The pooled reader.
			fr := NewFrameReaderPool(bytes.NewReader(tc.bytes), pool)
			_, _, err := fr.Next()
			if !tc.check(err) {
				t.Errorf("pooled error = %v", err)
			}
			// The legacy reader must agree on the class.
			_, lerr := ReadFrame(bytes.NewReader(tc.bytes))
			if tc.check(err) != tc.check(lerr) {
				t.Errorf("legacy error = %v disagrees with pooled %v", lerr, err)
			}
		})
	}
	checkPool(t, pool)
}

// TestFrameReaderLargeFrame covers payloads bigger than the reader's
// 64 KiB fill window, which take the direct io.ReadFull path.
func TestFrameReaderLargeFrame(t *testing.T) {
	pool := NewPool()
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(3)).Read(payload)
	var stream bytes.Buffer
	if err := WriteFrame(&stream, TypeData, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&stream, TypeStop, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReaderPool(&stream, pool)
	ty, b, err := fr.Next()
	if err != nil || ty != TypeData || !bytes.Equal(b.Bytes(), payload) {
		t.Fatalf("large frame: type %s err %v", ty, err)
	}
	b.Release()
	ty, b, err = fr.Next()
	if err != nil || ty != TypeStop || string(b.Bytes()) != "tail" {
		t.Fatalf("frame after large: type %s err %v", ty, err)
	}
	b.Release()
	checkPool(t, pool)
}

// TestFrameWriterAutoFlush verifies that queueing past the watermark
// pushes bytes out without an explicit Flush.
func TestFrameWriterAutoFlush(t *testing.T) {
	pool := NewPool()
	var out bytes.Buffer
	fw := &FrameWriter{w: &out, pool: pool}
	payload := make([]byte, 64<<10)
	for i := 0; i < 8; i++ { // 8 × 64 KiB > writerAutoFlush
		if err := fw.Queue(TypeData, payload); err != nil {
			t.Fatal(err)
		}
	}
	if out.Len() == 0 {
		t.Fatal("nothing flushed past the auto-flush watermark")
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := 8 * (5 + len(payload)); out.Len() != want {
		t.Fatalf("stream length = %d, want %d", out.Len(), want)
	}
	checkPool(t, pool)
}

// failWriter fails every write.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("broken pipe") }

// TestFrameWriterReleasesOwnedOnError: buffers handed over with
// QueueBuf must be released even when the flush fails.
func TestFrameWriterReleasesOwnedOnError(t *testing.T) {
	pool := NewPool()
	fw := &FrameWriter{w: failWriter{}, pool: pool}
	b := pool.Get(100 << 10) // big enough to take the vectored path
	if err := fw.QueueBuf(TypeData, b); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err == nil {
		t.Fatal("flush on broken writer succeeded")
	}
	// And the coalesced path.
	c := pool.Get(16)
	if err := fw.QueueBuf(TypeData, c); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err == nil {
		t.Fatal("flush on broken writer succeeded")
	}
	checkPool(t, pool)
}

// TestFrameWriterOversize mirrors the legacy MaxFrameSize refusal in
// every queueing mode.
func TestFrameWriterOversize(t *testing.T) {
	pool := NewPool()
	var out bytes.Buffer
	fw := &FrameWriter{w: &out, pool: pool}
	big := make([]byte, MaxFrameSize+1)
	if err := fw.Queue(TypeData, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("Queue error = %v", err)
	}
	if err := fw.QueueSpan(TypeData, big[:16], big[16:]); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("QueueSpan error = %v", err)
	}
	b := pool.Get(MaxFrameSize + 1)
	if err := fw.QueueBuf(TypeData, b); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("QueueBuf error = %v", err)
	}
	if err := fw.Flush(); err != nil || out.Len() != 0 {
		t.Errorf("refused frames still wrote %d bytes (err %v)", out.Len(), err)
	}
	checkPool(t, pool)
}

// TestFrameReaderExpect mirrors the package-level Expect contract.
func TestFrameReaderExpect(t *testing.T) {
	pool := NewPool()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeGet, (&Get{FileID: 1}).Marshal()); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReaderPool(&buf, pool)
	if _, err := fr.Expect(TypeStop); !errors.Is(err, ErrUnexpectedFrame) {
		t.Errorf("wrong type error = %v", err)
	}

	buf.Reset()
	SendError(&buf, CodeUnknownFile, "nope")
	fr = NewFrameReaderPool(&buf, pool)
	_, err := fr.Expect(TypeData)
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != CodeUnknownFile || remote.Reason != "nope" {
		t.Errorf("remote error = %v", err)
	}

	buf.Reset()
	if err := WriteFrame(&buf, TypePutOK, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	fr = NewFrameReaderPool(&buf, pool)
	b, err := fr.Expect(TypePutOK)
	if err != nil || string(b.Bytes()) != "ok" {
		t.Fatalf("Expect = %v, %v", b, err)
	}
	b.Release()
	checkPool(t, pool)
}

func TestStreamErrorRoundTrip(t *testing.T) {
	e := StreamError{FileID: 0xDEADBEEF42, Code: CodeUnknownFile, Reason: "file 7"}
	var got StreamError
	if err := got.Unmarshal(e.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip = %+v, want %+v", &got, &e)
	}
	if err := got.Unmarshal(make([]byte, 9)); err == nil {
		t.Error("short stream error accepted")
	}
	if e.Error() == "" {
		t.Error("empty error string")
	}
}
