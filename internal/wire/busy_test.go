package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestGetDeadlinePriorityRoundTrip pins the dual encoding of Get: the
// legacy 12-byte form when neither deadline nor priority is set, the
// extended 17-byte form otherwise, and both accepted by Unmarshal.
func TestGetDeadlinePriorityRoundTrip(t *testing.T) {
	cases := []Get{
		{FileID: 42, Limit: 7},
		{FileID: 42, Limit: 7, DeadlineMillis: 1500},
		{FileID: 42, Limit: 7, Priority: 9},
		{FileID: 1<<63 + 5, Limit: 0, DeadlineMillis: 1<<32 - 1, Priority: 255},
	}
	for _, g := range cases {
		b := g.Marshal()
		wantLen := 12
		if g.DeadlineMillis != 0 || g.Priority != 0 {
			wantLen = 17
		}
		if len(b) != wantLen {
			t.Fatalf("Get%+v marshaled to %d bytes, want %d", g, len(b), wantLen)
		}
		var got Get
		if err := got.Unmarshal(b); err != nil {
			t.Fatalf("Unmarshal(%x): %v", b, err)
		}
		if got != g {
			t.Fatalf("round trip: got %+v, want %+v", got, g)
		}
	}
}

// TestGetUnmarshalStaleFields pins that parsing a legacy 12-byte get
// into a reused struct clears any previous deadline/priority values.
func TestGetUnmarshalStaleFields(t *testing.T) {
	g := Get{DeadlineMillis: 99, Priority: 3}
	legacy := (&Get{FileID: 1, Limit: 2}).Marshal()
	if err := g.Unmarshal(legacy); err != nil {
		t.Fatal(err)
	}
	if g.DeadlineMillis != 0 || g.Priority != 0 {
		t.Fatalf("stale extension fields survived legacy parse: %+v", g)
	}
}

func TestGetUnmarshalRejectsOddSizes(t *testing.T) {
	for _, n := range []int{0, 11, 13, 16, 18} {
		var g Get
		if err := g.Unmarshal(make([]byte, n)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("Unmarshal of %d bytes: got %v, want ErrBadFrame", n, err)
		}
	}
}

func TestBusyRoundTrip(t *testing.T) {
	in := Busy{FileID: 7, Code: CodeBusy, RetryAfterMillis: 250, Reason: "shed: low standing"}
	var out Busy
	if err := out.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	// Empty reason is legal (the code alone is actionable).
	in = Busy{FileID: 0, Code: CodeExpired}
	if err := out.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestBusyUnmarshalRejectsShort(t *testing.T) {
	var b Busy
	if err := b.Unmarshal(make([]byte, 13)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short busy frame: got %v, want ErrBadFrame", err)
	}
}

// TestSendBusyReparses pins the reparse contract shared with SendError:
// whatever SendBusy puts on the wire must decode cleanly through both
// the legacy ReadFrame path and the pooled FrameReader, yielding the
// fields the sender supplied.
func TestSendBusyReparses(t *testing.T) {
	var buf bytes.Buffer
	if err := SendBusy(&buf, 99, CodeBusy, 500, "admission queue full"); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	f, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeBusy {
		t.Fatalf("got frame type %s, want BUSY", f.Type)
	}
	var legacy Busy
	if err := legacy.Unmarshal(f.Payload); err != nil {
		t.Fatalf("legacy reparse: %v", err)
	}

	pool := NewPool()
	fr := NewFrameReaderPool(bytes.NewReader(raw), pool)
	ty, b, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ty != TypeBusy {
		t.Fatalf("pooled reader got type %s, want BUSY", ty)
	}
	var pooled Busy
	if err := pooled.Unmarshal(b.Bytes()); err != nil {
		t.Fatalf("pooled reparse: %v", err)
	}
	b.Release()

	want := Busy{FileID: 99, Code: CodeBusy, RetryAfterMillis: 500, Reason: "admission queue full"}
	if legacy != want || pooled != want {
		t.Fatalf("reparse mismatch: legacy %+v, pooled %+v, want %+v", legacy, pooled, want)
	}
	if st := pool.Stats(); st.Live != 0 || st.DoubleReleases != 0 {
		t.Fatalf("pool leaked: %d live, %d double releases", st.Live, st.DoubleReleases)
	}
}

func TestBusyAsError(t *testing.T) {
	err := error(&Busy{FileID: 1, Code: CodeBusy, RetryAfterMillis: 100, Reason: "x"})
	var b *Busy
	if !errors.As(err, &b) || b.RetryAfterMillis != 100 {
		t.Fatalf("errors.As failed on %v", err)
	}
}
