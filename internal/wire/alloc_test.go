package wire

// The allocation proofs of ISSUE 8: testing.AllocsPerRun-enforced
// evidence that the wire hot path — frame read, frame write, and the
// full muxed DATA receive path into the decode pipeline — performs
// zero heap allocations per frame in steady state. These are the
// regression gates behind `make race-wire`; any change that
// reintroduces a per-frame allocation fails here, not in a profile
// three PRs later.

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"

	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

// allocGen builds a deterministic generation and its digest map.
func allocGen(t testing.TB, fileID uint64, k, pieceLen int, seed int64) (*rlnc.Encoder, map[uint64]rlnc.Digest) {
	t.Helper()
	p, err := rlnc.NewParams(gf.MustNew(gf.Bits8), k, pieceLen, k*pieceLen)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, p.DataLen)
	rand.New(rand.NewSource(seed)).Read(data)
	enc, err := rlnc.NewEncoder(p, fileID, []byte("alloc-test-secret"), data)
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[uint64]rlnc.Digest)
	for id := uint64(0); id < uint64(2*k); id++ {
		digests[id] = enc.Message(id).Digest()
	}
	return enc, digests
}

// TestFrameReadSteadyStateAllocs: a warmed FrameReader parses frames
// from a stream without allocating — every payload lands in a recycled
// pooled buffer.
func TestFrameReadSteadyStateAllocs(t *testing.T) {
	var stream bytes.Buffer
	payload := make([]byte, 4096)
	for i := 0; i < 64; i++ {
		if err := WriteFrame(&stream, TypeData, payload); err != nil {
			t.Fatal(err)
		}
	}
	pool := NewPool()
	br := bytes.NewReader(stream.Bytes())
	fr := NewFrameReaderPool(br, pool)
	cycle := func() {
		if _, err := br.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		for {
			ty, b, err := fr.Next()
			if err == io.EOF {
				return
			}
			if err != nil || ty != TypeData {
				t.Fatalf("frame: type %s err %v", ty, err)
			}
			b.Release()
		}
	}
	cycle() // warm the pool and the metrics counters
	if n := testing.AllocsPerRun(20, cycle); n != 0 {
		t.Fatalf("steady-state frame read allocates %v times per cycle of 64 frames, want 0", n)
	}
	checkPool(t, pool)
}

// TestFrameWriteSteadyStateAllocs: a warmed FrameWriter queues and
// flushes batches — contiguous-coalesced and vectored alike — without
// allocating.
func TestFrameWriteSteadyStateAllocs(t *testing.T) {
	pool := NewPool()
	fw := &FrameWriter{w: io.Discard, pool: pool}
	small := make([]byte, 512)
	big := make([]byte, 48<<10)
	var hdr [16]byte
	cycle := func() {
		// Coalesced batch: many control-sized frames, one Write.
		for i := 0; i < 8; i++ {
			if err := fw.Queue(TypeData, small); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		// Vectored batch: header spans + referenced payloads, one writev.
		for i := 0; i < 4; i++ {
			if err := fw.QueueSpan(TypeData, hdr[:], big); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm arena, vector and scratch capacity
	if n := testing.AllocsPerRun(20, cycle); n != 0 {
		t.Fatalf("steady-state frame write allocates %v times per cycle of 12 frames, want 0", n)
	}
	checkPool(t, pool)
}

// TestMuxedDataPathSteadyStateAllocs is the end-to-end receive proof:
// interleaved DATA frames for two generations are read from one
// stream, demultiplexed by the file-id in their headers, and fed to
// two decode pipelines via AddBytes — a complete decode of both
// generations with zero heap allocations once warm.
func TestMuxedDataPathSteadyStateAllocs(t *testing.T) {
	const k, pieceLen = 16, 512
	encA, digA := allocGen(t, 70, k, pieceLen, 5)
	encB, digB := allocGen(t, 71, k, pieceLen, 6)

	// Interleave the two streams frame by frame, as a muxed connection
	// would deliver them.
	var stream bytes.Buffer
	for id := uint64(0); id < uint64(k+4); id++ {
		for _, enc := range []*rlnc.Encoder{encA, encB} {
			buf, err := enc.Message(id).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteFrame(&stream, TypeData, buf); err != nil {
				t.Fatal(err)
			}
		}
	}

	newPipe := func(enc *rlnc.Encoder, dig map[uint64]rlnc.Digest) *rlnc.Pipeline {
		p, err := rlnc.NewPipeline(enc.Params(), enc.FileID(), []byte("alloc-test-secret"), dig,
			rlnc.PipelineConfig{Workers: 1, Verifiers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pipeA, pipeB := newPipe(encA, digA), newPipe(encB, digB)
	defer pipeA.Close()
	defer pipeB.Close()

	pool := NewPool()
	br := bytes.NewReader(stream.Bytes())
	fr := NewFrameReaderPool(br, pool)
	outA := make([]byte, encA.Params().DataLen)
	outB := make([]byte, encB.Params().DataLen)
	fidA := encA.FileID()
	cycle := func() {
		if _, err := br.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		for {
			ty, b, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil || ty != TypeData {
				t.Fatalf("frame: type %s err %v", ty, err)
			}
			target := pipeB
			if binary.BigEndian.Uint64(b.Bytes()) == fidA {
				target = pipeA
			}
			if _, err := target.AddBytes(b.Bytes()); err != nil {
				t.Fatal(err)
			}
			b.Release()
		}
		if err := pipeA.DecodeInto(outA); err != nil {
			t.Fatal(err)
		}
		if err := pipeB.DecodeInto(outB); err != nil {
			t.Fatal(err)
		}
		pipeA.Reset()
		pipeB.Reset()
	}
	cycle() // warm pools, hash state and pipeline arenas
	if n := testing.AllocsPerRun(10, cycle); n != 0 {
		t.Fatalf("steady-state muxed receive allocates %v times per double decode, want 0", n)
	}
	checkPool(t, pool)
}
