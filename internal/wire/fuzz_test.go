package wire

// Fuzzing of the handshake state machines against adversarial bytes.
// The frames a fuzzer can synthesize must never panic either side,
// must never authenticate (a valid signature over a fresh random
// nonce cannot be forged), and everything a confused responder writes
// back — including its SendError rejections — must itself be
// well-formed framing.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"asymshare/internal/auth"
)

// script feeds canned bytes to a handshake and captures its output.
type script struct {
	in  *bytes.Reader
	out bytes.Buffer
}

func (s *script) Read(p []byte) (int, error)  { return s.in.Read(p) }
func (s *script) Write(p []byte) (int, error) { return s.out.Write(p) }

func fuzzIdentity(f *testing.F) *auth.Identity {
	f.Helper()
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{7}, 32))
	if err != nil {
		f.Fatal(err)
	}
	return id
}

// checkWellFormedOutput verifies that out contains only complete,
// parseable frames: clean error paths must not emit torn frames.
func checkWellFormedOutput(t *testing.T, out []byte) {
	r := bytes.NewReader(out)
	for {
		if _, err := ReadFrame(r); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("handshake wrote a malformed frame: %v (output %x)", err, out)
			}
			return
		}
	}
}

func FuzzHandshakeResponder(f *testing.F) {
	id := fuzzIdentity(f)

	// Structural seeds: a plausible HELLO (and AUTH) prefix so the
	// fuzzer starts deep in the state machine rather than at frame 1.
	var hello bytes.Buffer
	h := Hello{Role: RoleUser, PubKey: id.Public(), Nonce: bytes.Repeat([]byte{9}, 32)}
	if err := WriteFrame(&hello, TypeHello, h.Marshal()); err != nil {
		f.Fatal(err)
	}
	f.Add(hello.Bytes())
	withAuth := bytes.NewBuffer(append([]byte(nil), hello.Bytes()...))
	a := AuthResponse{PubKey: id.Public(), Signature: bytes.Repeat([]byte{3}, 64)}
	if err := WriteFrame(withAuth, TypeAuthResponse, a.Marshal()); err != nil {
		f.Fatal(err)
	}
	f.Add(withAuth.Bytes())
	f.Add([]byte{})
	f.Add([]byte{byte(TypeHello), 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &script{in: bytes.NewReader(data)}
		key, _, err := ResponderHandshake(s, id, nil)
		if err == nil {
			t.Fatalf("fuzzed bytes authenticated as %x", key)
		}
		if key != nil {
			t.Fatal("failed handshake still returned a key")
		}
		checkWellFormedOutput(t, s.out.Bytes())
	})
}

func FuzzHandshakeInitiator(f *testing.F) {
	id := fuzzIdentity(f)

	// A plausible CHALLENGE reply (wrong signature, right shape).
	var chal bytes.Buffer
	ch := Challenge{
		PubKey:    id.Public(),
		Signature: bytes.Repeat([]byte{5}, 64),
		Nonce:     bytes.Repeat([]byte{6}, 32),
	}
	if err := WriteFrame(&chal, TypeChallenge, ch.Marshal()); err != nil {
		f.Fatal(err)
	}
	f.Add(chal.Bytes())
	f.Add([]byte{})
	f.Add([]byte{byte(TypeError), 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &script{in: bytes.NewReader(data)}
		key, err := InitiatorHandshake(s, id, RoleUser, nil)
		if err == nil {
			t.Fatalf("fuzzed responder authenticated as %x", key)
		}
		if key != nil {
			t.Fatal("failed handshake still returned a key")
		}
		checkWellFormedOutput(t, s.out.Bytes())
	})
}
