package wire

// Fuzzing of the handshake state machines against adversarial bytes.
// The frames a fuzzer can synthesize must never panic either side,
// must never authenticate (a valid signature over a fresh random
// nonce cannot be forged), and everything a confused responder writes
// back — including its SendError rejections — must itself be
// well-formed framing.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"asymshare/internal/auth"
)

// script feeds canned bytes to a handshake and captures its output.
type script struct {
	in  *bytes.Reader
	out bytes.Buffer
}

func (s *script) Read(p []byte) (int, error)  { return s.in.Read(p) }
func (s *script) Write(p []byte) (int, error) { return s.out.Write(p) }

func fuzzIdentity(f *testing.F) *auth.Identity {
	f.Helper()
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{7}, 32))
	if err != nil {
		f.Fatal(err)
	}
	return id
}

// checkWellFormedOutput verifies that out contains only complete,
// parseable frames: clean error paths must not emit torn frames.
func checkWellFormedOutput(t *testing.T, out []byte) {
	r := bytes.NewReader(out)
	for {
		if _, err := ReadFrame(r); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("handshake wrote a malformed frame: %v (output %x)", err, out)
			}
			return
		}
	}
}

func FuzzHandshakeResponder(f *testing.F) {
	id := fuzzIdentity(f)

	// Structural seeds: a plausible HELLO (and AUTH) prefix so the
	// fuzzer starts deep in the state machine rather than at frame 1.
	var hello bytes.Buffer
	h := Hello{Role: RoleUser, PubKey: id.Public(), Nonce: bytes.Repeat([]byte{9}, 32)}
	if err := WriteFrame(&hello, TypeHello, h.Marshal()); err != nil {
		f.Fatal(err)
	}
	f.Add(hello.Bytes())
	withAuth := bytes.NewBuffer(append([]byte(nil), hello.Bytes()...))
	a := AuthResponse{PubKey: id.Public(), Signature: bytes.Repeat([]byte{3}, 64)}
	if err := WriteFrame(withAuth, TypeAuthResponse, a.Marshal()); err != nil {
		f.Fatal(err)
	}
	f.Add(withAuth.Bytes())
	f.Add([]byte{})
	f.Add([]byte{byte(TypeHello), 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &script{in: bytes.NewReader(data)}
		key, _, err := ResponderHandshake(s, id, nil)
		if err == nil {
			t.Fatalf("fuzzed bytes authenticated as %x", key)
		}
		if key != nil {
			t.Fatal("failed handshake still returned a key")
		}
		checkWellFormedOutput(t, s.out.Bytes())
	})
}

func FuzzHandshakeInitiator(f *testing.F) {
	id := fuzzIdentity(f)

	// A plausible CHALLENGE reply (wrong signature, right shape).
	var chal bytes.Buffer
	ch := Challenge{
		PubKey:    id.Public(),
		Signature: bytes.Repeat([]byte{5}, 64),
		Nonce:     bytes.Repeat([]byte{6}, 32),
	}
	if err := WriteFrame(&chal, TypeChallenge, ch.Marshal()); err != nil {
		f.Fatal(err)
	}
	f.Add(chal.Bytes())
	f.Add([]byte{})
	f.Add([]byte{byte(TypeError), 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &script{in: bytes.NewReader(data)}
		key, err := InitiatorHandshake(s, id, RoleUser, nil)
		if err == nil {
			t.Fatalf("fuzzed responder authenticated as %x", key)
		}
		if key != nil {
			t.Fatal("failed handshake still returned a key")
		}
		checkWellFormedOutput(t, s.out.Bytes())
	})
}

// frameErrClass buckets a read error into the taxonomy both readers
// share: clean end-of-stream, torn frame, oversized length. Anything
// else is its own class by message.
func frameErrClass(err error) string {
	switch {
	case err == nil:
		return "nil"
	case err == io.EOF:
		return "eof"
	case errors.Is(err, io.ErrUnexpectedEOF):
		return "torn"
	case errors.Is(err, ErrFrameTooLarge):
		return "oversize"
	default:
		return "other: " + err.Error()
	}
}

// fuzzSeedMux builds an interleaved muxed DATA stream: frames for two
// file IDs alternating, each payload led by its 8-byte big-endian
// stream id — the exact shape a multiplexed connection carries.
func fuzzSeedMux() []byte {
	var buf bytes.Buffer
	for i := 0; i < 4; i++ {
		for _, fid := range []byte{0xAA, 0xBB} {
			payload := append([]byte{0, 0, 0, 0, 0, 0, 0, fid}, bytes.Repeat([]byte{fid ^ byte(i)}, 24)...)
			WriteFrame(&buf, TypeData, payload)
		}
	}
	WriteFrame(&buf, TypeStop, []byte{0, 0, 0, 0, 0, 0, 0, 0xAA})
	WriteFrame(&buf, TypeStreamError, (&StreamError{FileID: 0xBB, Code: CodeUnknownFile, Reason: "x"}).Marshal())
	return buf.Bytes()
}

// fuzzSeedOverload builds the overload-control exchange: an extended
// GET_MUX carrying deadline and priority, a shed answered with BUSY /
// RETRY_AFTER, and a deadline-expired drop — the frames ISSUE 10 adds
// to the protocol.
func fuzzSeedOverload() []byte {
	var buf bytes.Buffer
	WriteFrame(&buf, TypeGetMux, (&Get{FileID: 0xAA, DeadlineMillis: 1500, Priority: 3}).Marshal())
	WriteFrame(&buf, TypeGetMux, (&Get{FileID: 0xBB, Limit: 7}).Marshal()) // legacy 12-byte form
	WriteFrame(&buf, TypeBusy, (&Busy{FileID: 0xBB, Code: CodeBusy, RetryAfterMillis: 250, Reason: "shed"}).Marshal())
	WriteFrame(&buf, TypeBusy, (&Busy{FileID: 0xAA, Code: CodeExpired, Reason: "deadline passed"}).Marshal())
	return buf.Bytes()
}

// FuzzFrameReader is the differential fuzzer of ISSUE 8: any byte
// stream, parsed by the pooled FrameReader and the legacy ReadFrame,
// must yield the identical (type, payload, error-class) sequence — and
// the reader's pool must come out of every input, malformed or not,
// with zero live buffers and zero double-releases.
func FuzzFrameReader(f *testing.F) {
	f.Add(fuzzSeedMux())
	f.Add(fuzzSeedOverload())
	f.Add([]byte{byte(TypeBusy), 0, 0, 0, 4, 1, 2, 3, 4}) // busy frame too short to parse
	f.Add([]byte{})                                       // clean EOF
	f.Add([]byte{byte(TypeData), 0, 0})                   // torn header
	f.Add([]byte{byte(TypeData), 0, 0, 0, 8, 1})          // torn body
	f.Add([]byte{byte(TypeGet), 0xFF, 0xFF, 0xFF, 0xFF})  // oversized length
	torn := fuzzSeedMux()
	f.Add(torn[:len(torn)-7]) // valid interleaving ending in a torn frame
	var big bytes.Buffer
	WriteFrame(&big, TypeData, make([]byte, 66<<10)) // larger than the fill window
	WriteFrame(&big, TypeStop, nil)
	f.Add(big.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		pool := NewPool()
		fr := NewFrameReaderPool(bytes.NewReader(data), pool)
		legacy := bytes.NewReader(data)
		for i := 0; ; i++ {
			want, wantErr := ReadFrame(legacy)
			ty, b, err := fr.Next()
			if wc, gc := frameErrClass(wantErr), frameErrClass(err); wc != gc {
				t.Fatalf("frame %d: legacy error class %q, pooled %q (legacy err %v, pooled err %v)",
					i, wc, gc, wantErr, err)
			}
			if wantErr != nil {
				break
			}
			if ty != want.Type {
				t.Fatalf("frame %d: type %s vs legacy %s", i, ty, want.Type)
			}
			if !bytes.Equal(b.Bytes(), want.Payload) {
				t.Fatalf("frame %d: payload diverges (%d vs %d bytes)", i, b.Len(), len(want.Payload))
			}
			b.Release()
		}
		st := pool.Stats()
		if st.Live != 0 {
			t.Fatalf("pool leak: %d live buffers after input %x", st.Live, data)
		}
		if st.DoubleReleases != 0 {
			t.Fatalf("%d double-releases after input %x", st.DoubleReleases, data)
		}
	})
}
