package wire

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestContractProposeRoundTrip(t *testing.T) {
	p := ContractPropose{
		ContractID: 0x1122334455667788,
		FileID:     0xdeadbeef,
		Messages:   64,
		Bytes:      64 * 1040,
		TTLSeconds: 600,
	}
	var got ContractPropose
	if err := got.Unmarshal(p.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: got %+v want %+v", got, p)
	}
}

func TestContractGrantRoundTrip(t *testing.T) {
	g := ContractGrant{
		ContractID:    7,
		ExpiresUnix:   1754600000,
		UsedBytes:     1 << 20,
		CapacityBytes: 8 << 20,
	}
	var got ContractGrant
	if err := got.Unmarshal(g.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Errorf("round trip: got %+v want %+v", got, g)
	}
}

func TestContractRenewReleaseRoundTrip(t *testing.T) {
	r := ContractRenew{ContractID: 9, TTLSeconds: 120}
	var gotR ContractRenew
	if err := gotR.Unmarshal(r.Marshal()); err != nil {
		t.Fatal(err)
	}
	if gotR != r {
		t.Errorf("renew round trip: got %+v want %+v", gotR, r)
	}
	rel := ContractRelease{ContractID: 9}
	var gotRel ContractRelease
	if err := gotRel.Unmarshal(rel.Marshal()); err != nil {
		t.Fatal(err)
	}
	if gotRel != rel {
		t.Errorf("release round trip: got %+v want %+v", gotRel, rel)
	}
}

func TestContractInfoRoundTrip(t *testing.T) {
	info := ContractInfo{
		CapacityBytes: 1 << 30,
		UsedBytes:     3 << 20,
		Contracts: []ContractEntry{
			{ContractID: 1, FileID: 42, Messages: 16, Bytes: 1 << 20, ExpiresUnix: 1754600000},
			{ContractID: 2, FileID: 43, Messages: 16, Bytes: 2 << 20, ExpiresUnix: 1754600600},
		},
	}
	blob, err := info.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got ContractInfo
	if err := got.Unmarshal(blob); err != nil {
		t.Fatal(err)
	}
	if got.CapacityBytes != info.CapacityBytes || got.UsedBytes != info.UsedBytes ||
		len(got.Contracts) != 2 || got.Contracts[1] != info.Contracts[1] {
		t.Errorf("round trip: got %+v", got)
	}
}

func TestContractPayloadsRejectMalformed(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"propose", (&ContractPropose{}).Unmarshal(make([]byte, 31))},
		{"grant", (&ContractGrant{}).Unmarshal(make([]byte, 33))},
		{"renew", (&ContractRenew{}).Unmarshal(make([]byte, 11))},
		{"release", (&ContractRelease{}).Unmarshal(make([]byte, 9))},
		{"info", (&ContractInfo{}).Unmarshal([]byte("{"))},
	}
	for _, c := range cases {
		if !errors.Is(c.err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", c.name, c.err)
		}
	}
}

// TestContractOverCapacitySurfacesAsRemoteError pins the SendError
// contract for the capacity-rejection path: a peer refusing a contract
// it cannot honor answers with CodeOverCapacity, and the proposing
// owner surfaces it as a typed *RemoteError it can route on (try the
// next candidate), never a hang or a bare EOF.
func TestContractOverCapacitySurfacesAsRemoteError(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		_ = SendError(a, CodeOverCapacity, "over advertised capacity")
		a.Close()
	}()
	_ = b.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err := Expect(b, TypeContractGrant)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if remote.Code != CodeOverCapacity || remote.Reason != "over advertised capacity" {
		t.Errorf("remote = %+v", remote)
	}
}

func TestContractTypeStrings(t *testing.T) {
	names := map[Type]string{
		TypeContractPropose: "CONTRACT_PROPOSE",
		TypeContractGrant:   "CONTRACT_GRANT",
		TypeContractRenew:   "CONTRACT_RENEW",
		TypeContractRelease: "CONTRACT_RELEASE",
		TypeContractList:    "CONTRACT_LIST",
		TypeContractInfo:    "CONTRACT_INFO",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("type %d string = %q, want %q", ty, got, want)
		}
	}
}
