package wire

// FrameWriter is the batched, vectored replacement for the legacy
// WriteFrame path. Frames are queued — header bytes land in a reused
// arena, payload slices are referenced, never copied — and a Flush
// pushes the whole batch to the connection in one call: a single
// contiguous write for small batches (one syscall, no writev setup
// cost) or a net.Buffers vectored write for large ones (writev on TCP,
// so a 64 KiB DATA payload goes from the store's memory to the socket
// with zero intermediate copies). Steady state allocates nothing.
//
// Ownership (DESIGN.md §13): plain Queue/QueueSpan payloads must stay
// valid until Flush returns; QueueBuf transfers ownership of a pooled
// *Buf to the writer, which releases it after the flush — success or
// not.

import (
	"fmt"
	"io"
	"net"
)

const (
	// writerAutoFlush is the queued-byte watermark past which Queue*
	// flushes on its own, bounding arena growth and write latency.
	writerAutoFlush = 256 << 10

	// writerCoalesce is the batch size up to which Flush copies the
	// queue into one contiguous buffer instead of issuing a vectored
	// write — small control frames cost one Write, not one per part.
	writerCoalesce = 8 << 10
)

// FrameWriter queues frames for one connection. Not safe for
// concurrent use; connections with multiple writing goroutines guard
// it with a mutex.
type FrameWriter struct {
	w    io.Writer
	pool *Pool

	arena   []byte      // header + copied-head bytes, reset per flush
	vecs    net.Buffers // queued spans, in write order
	owned   []*Buf      // pooled buffers released after flush
	metaT   []Type      // per-frame type, for metrics on success
	metaN   []int       // per-frame payload length
	queued  int         // total queued bytes
	scratch []byte      // coalesce buffer, reused
}

// NewFrameWriter returns a writer over w using DefaultPool for owned
// buffers it may be handed.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, pool: DefaultPool}
}

// header appends a 5-byte frame header to the arena and returns it.
func (fw *FrameWriter) header(t Type, n int) []byte {
	off := len(fw.arena)
	fw.arena = append(fw.arena, byte(t), byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return fw.arena[off : off+5]
}

func (fw *FrameWriter) push(t Type, n int, spans ...[]byte) error {
	for _, s := range spans {
		if len(s) > 0 {
			fw.vecs = append(fw.vecs, s)
		}
	}
	fw.metaT = append(fw.metaT, t)
	fw.metaN = append(fw.metaN, n)
	fw.queued += 5 + n
	if fw.queued >= writerAutoFlush {
		return fw.Flush()
	}
	return nil
}

// Queue adds one frame. payload is referenced, not copied: it must stay
// valid (and unmodified) until Flush returns.
func (fw *FrameWriter) Queue(t Type, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	return fw.push(t, len(payload), fw.header(t, len(payload)), payload)
}

// QueueSpan adds one frame whose payload is head followed by body. head
// (small, typically a message header) is copied into the writer's
// arena — contiguous with the frame header, so the pair costs one span;
// body is referenced like Queue's payload. This is how a stored message
// is framed without marshaling: 16 bytes copied, the payload untouched.
func (fw *FrameWriter) QueueSpan(t Type, head, body []byte) error {
	n := len(head) + len(body)
	if n > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	off := len(fw.arena)
	fw.arena = append(fw.arena, byte(t), byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	fw.arena = append(fw.arena, head...)
	return fw.push(t, n, fw.arena[off:len(fw.arena)], body)
}

// QueueBuf adds one frame whose payload is a pooled buffer, taking
// ownership: the writer releases it after the next flush whether or not
// the write succeeds.
func (fw *FrameWriter) QueueBuf(t Type, b *Buf) error {
	if b.Len() > MaxFrameSize {
		b.Release()
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, b.Len())
	}
	fw.owned = append(fw.owned, b)
	return fw.push(t, b.Len(), fw.header(t, b.Len()), b.Bytes())
}

// WriteFrame queues one frame and flushes: the unbatched compatibility
// call, byte-identical on the wire to the package-level WriteFrame.
func (fw *FrameWriter) WriteFrame(t Type, payload []byte) error {
	if err := fw.Queue(t, payload); err != nil {
		return err
	}
	return fw.Flush()
}

// Queued reports the bytes currently queued and unflushed.
func (fw *FrameWriter) Queued() int { return fw.queued }

// Flush writes every queued frame. Owned buffers are released and the
// queue reset regardless of the outcome (a failed connection write is
// fatal to the stream; nothing is retried).
func (fw *FrameWriter) Flush() error {
	if len(fw.metaT) == 0 {
		return nil
	}
	var err error
	if fw.queued <= writerCoalesce {
		if cap(fw.scratch) < fw.queued {
			fw.scratch = make([]byte, 0, writerCoalesce)
		}
		out := fw.scratch[:0]
		for _, v := range fw.vecs {
			out = append(out, v...)
		}
		fw.scratch = out[:0]
		_, err = fw.w.Write(out)
	} else {
		// WriteTo consumes the receiver slice header (and may reslice
		// entries on partial writes): save the full header first so the
		// backing array keeps its base for reuse. The call must go
		// through the field, not a stack copy — a local net.Buffers
		// escapes into the writev call and costs one allocation per
		// flush.
		full := fw.vecs
		_, err = fw.vecs.WriteTo(fw.w)
		fw.vecs = full
	}
	if err == nil {
		for i, t := range fw.metaT {
			recordFrameSent(t, fw.metaN[i])
		}
	} else {
		err = fmt.Errorf("wire: write %s: %w", fw.metaT[0], err)
	}
	for _, b := range fw.owned {
		b.Release()
	}
	fw.owned = fw.owned[:0]
	fw.arena = fw.arena[:0]
	fw.vecs = fw.vecs[:0]
	fw.metaT = fw.metaT[:0]
	fw.metaN = fw.metaN[:0]
	fw.queued = 0
	return err
}
