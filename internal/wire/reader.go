package wire

// FrameReader is the pooled, allocation-free replacement for the
// legacy ReadFrame loop. It buffers the underlying stream in one fixed
// window, parses length-prefixed frames out of it, and hands each
// payload out in a reference-counted *Buf drawn from its Pool — the
// caller owns the buffer and must Release it (or hand ownership on;
// see DESIGN.md §13). Frame boundaries, size limits and error classes
// match ReadFrame exactly, which the differential fuzzer pins.

import (
	"encoding/binary"
	"fmt"
	"io"
)

// frameReaderWindow is the fill buffer size: big enough to batch many
// small control frames per read syscall, small enough to sit in L2.
const frameReaderWindow = 64 << 10

// FrameReader reads frames from one stream. Not safe for concurrent
// use; a connection has exactly one reader.
type FrameReader struct {
	r    io.Reader
	pool *Pool
	buf  []byte
	lo   int // next unread byte in buf
	hi   int // end of buffered bytes
}

// NewFrameReader returns a reader over r drawing payload buffers from
// DefaultPool.
func NewFrameReader(r io.Reader) *FrameReader {
	return NewFrameReaderPool(r, DefaultPool)
}

// NewFrameReaderPool is NewFrameReader with an explicit pool (tests use
// private pools for leak accounting).
func NewFrameReaderPool(r io.Reader, pool *Pool) *FrameReader {
	return &FrameReader{r: r, pool: pool, buf: make([]byte, frameReaderWindow)}
}

// fill buffers at least need bytes, compacting the window first. A
// clean end-of-stream with nothing buffered returns io.EOF; a torn
// prefix returns io.ErrUnexpectedEOF — the same classes ReadFrame's
// header read yields.
func (fr *FrameReader) fill(need int) error {
	for fr.hi-fr.lo < need {
		if fr.lo > 0 {
			copy(fr.buf, fr.buf[fr.lo:fr.hi])
			fr.hi -= fr.lo
			fr.lo = 0
		}
		n, err := fr.r.Read(fr.buf[fr.hi:])
		fr.hi += n
		if fr.hi-fr.lo >= need {
			return nil
		}
		if err != nil {
			if err == io.EOF {
				if fr.hi == fr.lo {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// Next reads one frame. The returned buffer holds the payload; the
// caller owns its single reference. On error no buffer is returned and
// nothing needs releasing.
func (fr *FrameReader) Next() (Type, *Buf, error) {
	if err := fr.fill(5); err != nil {
		return 0, nil, err
	}
	t := Type(fr.buf[fr.lo])
	n := int(binary.BigEndian.Uint32(fr.buf[fr.lo+1:]))
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	fr.lo += 5
	b := fr.pool.Get(n)
	have := fr.hi - fr.lo
	if have > n {
		have = n
	}
	copy(b.data[:have], fr.buf[fr.lo:fr.lo+have])
	fr.lo += have
	if have < n {
		if _, err := io.ReadFull(fr.r, b.data[have:n]); err != nil {
			b.Release()
			if err == io.EOF && have > 0 {
				// Part of the body was consumed from the buffered window,
				// so a clean end-of-stream here is a torn frame: legacy
				// ReadFrame's single ReadFull would have read those bytes
				// itself and returned ErrUnexpectedEOF. With no body
				// bytes consumed, EOF passes through — the class legacy
				// yields when the stream ends exactly at the header.
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("wire: short frame body: %w", err)
		}
	}
	recordFrameRecv(t, n)
	return t, b, nil
}

// Expect reads one frame and verifies its type, translating TypeError
// frames into *RemoteError exactly like the package-level Expect. The
// returned buffer follows Next's ownership rule.
func (fr *FrameReader) Expect(want Type) (*Buf, error) {
	t, b, err := fr.Next()
	if err != nil {
		return nil, err
	}
	if t == TypeError {
		var e ErrorMsg
		uerr := e.Unmarshal(b.Bytes())
		b.Release()
		if uerr == nil {
			return nil, &RemoteError{Code: e.Code, Reason: e.Reason}
		}
		return nil, fmt.Errorf("%w: undecodable remote error", ErrBadFrame)
	}
	if t != want {
		b.Release()
		return nil, fmt.Errorf("%w: got %s, want %s", ErrUnexpectedFrame, t, want)
	}
	return b, nil
}
