package wire

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func sampleChallenge() AuditChallenge {
	return AuditChallenge{
		FileID:     0xdeadbeef,
		Nonce:      bytes.Repeat([]byte{1}, AuditNonceLen),
		Key:        bytes.Repeat([]byte{2}, AuditKeyLen),
		MessageIDs: []uint64{3, 1, 4, 1<<60 + 5},
	}
}

func TestAuditChallengeRoundTrip(t *testing.T) {
	c := sampleChallenge()
	var got AuditChallenge
	if err := got.Unmarshal(c.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got.FileID != c.FileID || !bytes.Equal(got.Nonce, c.Nonce) || !bytes.Equal(got.Key, c.Key) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if len(got.MessageIDs) != len(c.MessageIDs) {
		t.Fatalf("message ids = %v", got.MessageIDs)
	}
	for i, id := range c.MessageIDs {
		if got.MessageIDs[i] != id {
			t.Errorf("id %d = %d, want %d", i, got.MessageIDs[i], id)
		}
	}
}

func TestAuditChallengeRejectsMalformed(t *testing.T) {
	c := sampleChallenge()
	blob := c.Marshal()
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": blob[:len(blob)-3],
		"trailing":  append(append([]byte(nil), blob...), 9),
	}
	// A zero-sample challenge is meaningless.
	zero := sampleChallenge()
	zero.MessageIDs = nil
	cases["no sample"] = zero.Marshal()
	// An oversized sample must be refused before allocation.
	big := sampleChallenge()
	big.MessageIDs = make([]uint64, MaxAuditSample+1)
	cases["oversized"] = big.Marshal()
	for name, b := range cases {
		var got AuditChallenge
		if err := got.Unmarshal(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestAuditResponseRoundTrip(t *testing.T) {
	r := AuditResponse{
		FileID: 7,
		Proofs: []AuditProof{
			{MessageID: 1, Present: true, MAC: bytes.Repeat([]byte{9}, AuditMACLen)},
			{MessageID: 2},
			{MessageID: 3, Present: true, MAC: bytes.Repeat([]byte{8}, AuditMACLen)},
		},
	}
	var got AuditResponse
	if err := got.Unmarshal(r.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got.FileID != r.FileID || len(got.Proofs) != len(r.Proofs) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i, p := range r.Proofs {
		g := got.Proofs[i]
		if g.MessageID != p.MessageID || g.Present != p.Present || !bytes.Equal(g.MAC, p.MAC) {
			t.Errorf("proof %d = %+v, want %+v", i, g, p)
		}
	}
}

func TestAuditResponseRejectsMalformed(t *testing.T) {
	r := AuditResponse{
		FileID: 7,
		Proofs: []AuditProof{{MessageID: 1, Present: true, MAC: bytes.Repeat([]byte{9}, AuditMACLen)}},
	}
	blob := r.Marshal()
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": blob[:len(blob)-1],
		"trailing":  append(append([]byte(nil), blob...), 1),
	}
	bad := append([]byte(nil), blob...)
	bad[12+8] = 7 // invalid presence flag
	cases["bad flag"] = bad
	for name, b := range cases {
		var got AuditResponse
		if err := got.Unmarshal(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

// TestSendErrorSurfacesAsRemoteError pins the SendError/Expect
// contract: the receiving side gets a typed *RemoteError carrying the
// code and reason, never a hang or a bare EOF.
func TestSendErrorSurfacesAsRemoteError(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		_ = SendError(a, CodeBadRequest, "malformed audit challenge")
		a.Close()
	}()
	_ = b.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err := Expect(b, TypeAuditResponse)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if remote.Code != CodeBadRequest || remote.Reason != "malformed audit challenge" {
		t.Errorf("remote = %+v", remote)
	}
}

// TestSendErrorReportsWriteFailure pins the documented best-effort
// contract: a dead transport makes SendError return the write error
// instead of pretending the frame was delivered.
func TestSendErrorReportsWriteFailure(t *testing.T) {
	a, b := net.Pipe()
	a.Close()
	b.Close()
	if err := SendError(a, CodeInternal, "x"); err == nil {
		t.Error("SendError on closed conn returned nil")
	}
}
