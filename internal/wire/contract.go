package wire

// Storage-contract frames. Dissemination alone is fire-and-forget: a
// peer that accepted a batch has made no promise to keep it. A contract
// turns the batch into an explicit obligation — the owner proposes
// (contract-id, file-id, message count, byte size, term), the peer
// accepts only if the obligation fits inside its advertised capacity,
// and the owner renews the term for as long as it wants the replica
// alive. A peer over capacity answers with CodeOverCapacity instead of
// silently evicting later, so the owner can place the replica somewhere
// it will actually survive (see internal/contract for the accounting
// and internal/repair for the daemon that acts on it).

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// ContractPropose asks a peer to accept a storage obligation for one
// generation (file-id): Messages encoded messages totalling Bytes
// payload bytes, kept for TTLSeconds.
type ContractPropose struct {
	ContractID uint64
	FileID     uint64
	Messages   uint32
	Bytes      uint64
	TTLSeconds uint32
}

// Marshal serializes the proposal.
func (p *ContractPropose) Marshal() []byte {
	out := make([]byte, 32)
	binary.BigEndian.PutUint64(out, p.ContractID)
	binary.BigEndian.PutUint64(out[8:], p.FileID)
	binary.BigEndian.PutUint32(out[16:], p.Messages)
	binary.BigEndian.PutUint64(out[20:], p.Bytes)
	binary.BigEndian.PutUint32(out[28:], p.TTLSeconds)
	return out
}

// Unmarshal parses a proposal.
func (p *ContractPropose) Unmarshal(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("%w: contract proposal of %d bytes", ErrBadFrame, len(b))
	}
	p.ContractID = binary.BigEndian.Uint64(b)
	p.FileID = binary.BigEndian.Uint64(b[8:])
	p.Messages = binary.BigEndian.Uint32(b[16:])
	p.Bytes = binary.BigEndian.Uint64(b[20:])
	p.TTLSeconds = binary.BigEndian.Uint32(b[28:])
	return nil
}

// ContractGrant acknowledges a propose, renew or release. ExpiresUnix
// is the obligation's new expiry (0 after a release); UsedBytes and
// CapacityBytes report the peer's book afterwards so the owner can
// steer further placement without an extra CONTRACT_LIST round-trip
// (CapacityBytes 0 means unlimited).
type ContractGrant struct {
	ContractID    uint64
	ExpiresUnix   int64
	UsedBytes     uint64
	CapacityBytes uint64
}

// Marshal serializes the grant.
func (g *ContractGrant) Marshal() []byte {
	out := make([]byte, 32)
	binary.BigEndian.PutUint64(out, g.ContractID)
	binary.BigEndian.PutUint64(out[8:], uint64(g.ExpiresUnix))
	binary.BigEndian.PutUint64(out[16:], g.UsedBytes)
	binary.BigEndian.PutUint64(out[24:], g.CapacityBytes)
	return out
}

// Unmarshal parses a grant.
func (g *ContractGrant) Unmarshal(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("%w: contract grant of %d bytes", ErrBadFrame, len(b))
	}
	g.ContractID = binary.BigEndian.Uint64(b)
	g.ExpiresUnix = int64(binary.BigEndian.Uint64(b[8:]))
	g.UsedBytes = binary.BigEndian.Uint64(b[16:])
	g.CapacityBytes = binary.BigEndian.Uint64(b[24:])
	return nil
}

// ContractRenew extends an accepted obligation by TTLSeconds from now.
type ContractRenew struct {
	ContractID uint64
	TTLSeconds uint32
}

// Marshal serializes the renewal.
func (r *ContractRenew) Marshal() []byte {
	out := make([]byte, 12)
	binary.BigEndian.PutUint64(out, r.ContractID)
	binary.BigEndian.PutUint32(out[8:], r.TTLSeconds)
	return out
}

// Unmarshal parses a renewal.
func (r *ContractRenew) Unmarshal(b []byte) error {
	if len(b) != 12 {
		return fmt.Errorf("%w: contract renew of %d bytes", ErrBadFrame, len(b))
	}
	r.ContractID = binary.BigEndian.Uint64(b)
	r.TTLSeconds = binary.BigEndian.Uint32(b[8:])
	return nil
}

// ContractRelease ends an obligation early, freeing the peer's
// capacity.
type ContractRelease struct {
	ContractID uint64
}

// Marshal serializes the release.
func (r *ContractRelease) Marshal() []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, r.ContractID)
	return out
}

// Unmarshal parses a release.
func (r *ContractRelease) Unmarshal(b []byte) error {
	if len(b) != 8 {
		return fmt.Errorf("%w: contract release of %d bytes", ErrBadFrame, len(b))
	}
	r.ContractID = binary.BigEndian.Uint64(b)
	return nil
}

// ContractInfo answers a CONTRACT_LIST request: the peer's aggregate
// book plus the requesting owner's own obligations (a peer never leaks
// another owner's contracts).
type ContractInfo struct {
	CapacityBytes uint64          `json:"capacityBytes"`
	UsedBytes     uint64          `json:"usedBytes"`
	Contracts     []ContractEntry `json:"contracts,omitempty"`
}

// ContractEntry describes one obligation.
type ContractEntry struct {
	ContractID  uint64 `json:"contractId"`
	FileID      uint64 `json:"fileId"`
	Messages    uint32 `json:"messages"`
	Bytes       uint64 `json:"bytes"`
	ExpiresUnix int64  `json:"expiresUnix"`
}

// Marshal serializes the info as JSON (low-rate control traffic).
func (i *ContractInfo) Marshal() ([]byte, error) {
	return json.Marshal(i)
}

// Unmarshal parses an info response.
func (i *ContractInfo) Unmarshal(b []byte) error {
	if err := json.Unmarshal(b, i); err != nil {
		return fmt.Errorf("%w: contract info: %v", ErrBadFrame, err)
	}
	return nil
}
