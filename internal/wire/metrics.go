package wire

// Optional frame-level instrumentation: per-frame-type counters for
// frames and bytes in each direction. The hot path is one atomic
// pointer load plus two counter adds per frame; counters are created
// lazily per frame type (the first frame of a type pays one registry
// lookup, every later frame is allocation-free).

import (
	"sync/atomic"

	"asymshare/internal/metrics"
)

// Exported metric names (part of the observability contract).
const (
	MetricFramesSent    = "wire_frames_sent_total"
	MetricFramesRecv    = "wire_frames_received_total"
	MetricBytesSent     = "wire_bytes_sent_total"
	MetricBytesReceived = "wire_bytes_received_total"
)

// frameHeaderLen is the framing overhead counted into byte totals.
const frameHeaderLen = 5

type wireMetrics struct {
	reg       *metrics.Registry
	sent      [256]atomic.Pointer[metrics.Counter]
	sentBytes [256]atomic.Pointer[metrics.Counter]
	recv      [256]atomic.Pointer[metrics.Counter]
	recvBytes [256]atomic.Pointer[metrics.Counter]
}

var instr atomic.Pointer[wireMetrics]

// Instrument routes frame counters for the whole process into reg:
// wire_frames_{sent,received}_total and wire_bytes_{sent,received}_total,
// labelled by frame type. Passing nil disables instrumentation. Frame
// traffic is process-global (every connection shares one TCP stack),
// so unlike the per-node registries of peer/client this hook is
// package-level.
func Instrument(reg *metrics.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	m := &wireMetrics{reg: reg}
	// Eager-create the protocol's own frame types so the families and
	// their common series are visible from the very first scrape.
	for t := TypeHello; t <= TypeAuditResponse; t++ {
		m.counter(&m.sent, MetricFramesSent, t)
		m.counter(&m.sentBytes, MetricBytesSent, t)
		m.counter(&m.recv, MetricFramesRecv, t)
		m.counter(&m.recvBytes, MetricBytesReceived, t)
	}
	instr.Store(m)
}

// counter returns the cached per-type counter, creating it on first
// use. Races create the same registry series, so both sides cache the
// identical pointer.
func (m *wireMetrics) counter(arr *[256]atomic.Pointer[metrics.Counter], name string, t Type) *metrics.Counter {
	if c := arr[t].Load(); c != nil {
		return c
	}
	c := m.reg.Counter(name, helpFor(name), metrics.L("type", t.String()))
	arr[t].Store(c)
	return c
}

func helpFor(name string) string {
	switch name {
	case MetricFramesSent:
		return "Frames written, by frame type."
	case MetricFramesRecv:
		return "Frames read, by frame type."
	case MetricBytesSent:
		return "Bytes written including framing overhead, by frame type."
	default:
		return "Bytes read including framing overhead, by frame type."
	}
}

// recordFrameSent counts one outbound frame.
func recordFrameSent(t Type, payloadLen int) {
	m := instr.Load()
	if m == nil {
		return
	}
	m.counter(&m.sent, MetricFramesSent, t).Inc()
	m.counter(&m.sentBytes, MetricBytesSent, t).Add(uint64(payloadLen + frameHeaderLen))
}

// recordFrameRecv counts one inbound frame.
func recordFrameRecv(t Type, payloadLen int) {
	m := instr.Load()
	if m == nil {
		return
	}
	m.counter(&m.recv, MetricFramesRecv, t).Inc()
	m.counter(&m.recvBytes, MetricBytesReceived, t).Add(uint64(payloadLen + frameHeaderLen))
}
