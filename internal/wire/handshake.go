package wire

// Mutual challenge-response handshake (Fig. 4(b), transmissions 1-2,
// run in both directions):
//
//	initiator -> responder: HELLO     {role, pubI, nonceI}
//	responder -> initiator: CHALLENGE {pubR, sig_R(nonceI), nonceR}
//	initiator -> responder: AUTH      {pubI, sig_I(nonceR)}
//	responder -> initiator: AUTH_OK
//
// Each side verifies the other's signature and checks the key against
// its trust set before any content flows.

import (
	"bytes"
	"crypto/ed25519"
	"fmt"
	"io"

	"asymshare/internal/auth"
)

// InitiatorHandshake authenticates to a responder and verifies it in
// turn. trusted, if non-nil, restricts which responder keys are
// acceptable. It returns the responder's public key.
func InitiatorHandshake(rw io.ReadWriter, id *auth.Identity, role Role, trusted *auth.TrustSet) (ed25519.PublicKey, error) {
	nonce, err := auth.NewChallenge()
	if err != nil {
		return nil, err
	}
	hello := Hello{Role: role, PubKey: id.Public(), Nonce: nonce}
	if err := WriteFrame(rw, TypeHello, hello.Marshal()); err != nil {
		return nil, err
	}

	f, err := Expect(rw, TypeChallenge)
	if err != nil {
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	var ch Challenge
	if err := ch.Unmarshal(f.Payload); err != nil {
		return nil, err
	}
	responderKey := ed25519.PublicKey(ch.PubKey)
	if trusted != nil {
		if err := trusted.Check(responderKey, nonce, ch.Signature); err != nil {
			return nil, fmt.Errorf("wire: responder authentication: %w", err)
		}
	} else if err := auth.Verify(responderKey, nonce, ch.Signature); err != nil {
		return nil, fmt.Errorf("wire: responder authentication: %w", err)
	}

	sig, err := id.Respond(ch.Nonce)
	if err != nil {
		return nil, err
	}
	resp := AuthResponse{PubKey: id.Public(), Signature: sig}
	if err := WriteFrame(rw, TypeAuthResponse, resp.Marshal()); err != nil {
		return nil, err
	}
	if _, err := Expect(rw, TypeAuthOK); err != nil {
		return nil, fmt.Errorf("wire: handshake not accepted: %w", err)
	}
	return responderKey, nil
}

// ResponderHandshake runs the responder side. trusted, if non-nil,
// restricts which initiator keys are served. It returns the verified
// initiator key and its announced role.
func ResponderHandshake(rw io.ReadWriter, id *auth.Identity, trusted *auth.TrustSet) (ed25519.PublicKey, Role, error) {
	f, err := Expect(rw, TypeHello)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: handshake: %w", err)
	}
	var hello Hello
	if err := hello.Unmarshal(f.Payload); err != nil {
		SendError(rw, CodeBadRequest, "malformed hello")
		return nil, 0, err
	}

	sig, err := id.Respond(hello.Nonce)
	if err != nil {
		SendError(rw, CodeBadRequest, "malformed nonce")
		return nil, 0, err
	}
	nonce, err := auth.NewChallenge()
	if err != nil {
		return nil, 0, err
	}
	ch := Challenge{PubKey: id.Public(), Signature: sig, Nonce: nonce}
	if err := WriteFrame(rw, TypeChallenge, ch.Marshal()); err != nil {
		return nil, 0, err
	}

	f, err = Expect(rw, TypeAuthResponse)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: handshake: %w", err)
	}
	var resp AuthResponse
	if err := resp.Unmarshal(f.Payload); err != nil {
		SendError(rw, CodeBadRequest, "malformed auth response")
		return nil, 0, err
	}
	if !bytes.Equal(resp.PubKey, hello.PubKey) {
		SendError(rw, CodeAuthFailed, "key mismatch between hello and auth")
		return nil, 0, fmt.Errorf("%w: hello/auth key mismatch", ErrBadFrame)
	}
	initiatorKey := ed25519.PublicKey(resp.PubKey)
	if trusted != nil {
		if err := trusted.Check(initiatorKey, nonce, resp.Signature); err != nil {
			SendError(rw, CodeAuthFailed, "authentication failed")
			return nil, 0, fmt.Errorf("wire: initiator authentication: %w", err)
		}
	} else if err := auth.Verify(initiatorKey, nonce, resp.Signature); err != nil {
		SendError(rw, CodeAuthFailed, "authentication failed")
		return nil, 0, fmt.Errorf("wire: initiator authentication: %w", err)
	}
	if err := WriteFrame(rw, TypeAuthOK, nil); err != nil {
		return nil, 0, err
	}
	return initiatorKey, hello.Role, nil
}
