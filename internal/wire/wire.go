// Package wire defines the length-prefixed binary framing spoken
// between users and peers, covering the full time-line of Fig. 4(b):
// mutual challenge-response authentication (1, 2), content requests
// (3), message delivery (4), stop-transmission (5) and the periodic
// informational feedback a user sends its own peer.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Type identifies a frame.
type Type uint8

// Frame types.
const (
	TypeHello           Type = iota + 1 // connection opener: role + public key
	TypeChallenge                       // authentication nonce
	TypeAuthResponse                    // signature over the nonce
	TypeAuthOK                          // authentication accepted
	TypePut                             // upload one encoded message for storage
	TypePutOK                           // storage acknowledged
	TypeGet                             // request streaming of a file's messages
	TypeData                            // one encoded message
	TypeStop                            // stop transmission (paper's message "5")
	TypeFeedback                        // informational update to the user's own peer
	TypeError                           // terminal error with reason
	TypeBye                             // orderly close
	TypePatch                           // apply a delta message to a stored message
	TypeList                            // request the peer's stored file inventory
	TypeFileList                        // inventory response
	TypeAuditChallenge                  // keyed spot-check over sampled stored messages
	TypeAuditResponse                   // per-message possession proofs
	TypeContractPropose                 // owner offers a storage obligation
	TypeContractGrant                   // peer accepted (or renewed/released) an obligation
	TypeContractRenew                   // owner extends an obligation's term
	TypeContractRelease                 // owner releases an obligation early
	TypeContractList                    // request the peer's obligation book
	TypeContractInfo                    // obligation book response
	TypeGetMux                          // multiplexed get: failures scoped to the stream, not the conn
	TypeStreamError                     // terminal error for one multiplexed stream
	TypeBusy                            // load shed: request refused or preempted, retry after a delay
)

func (t Type) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeChallenge:
		return "CHALLENGE"
	case TypeAuthResponse:
		return "AUTH"
	case TypeAuthOK:
		return "AUTH_OK"
	case TypePut:
		return "PUT"
	case TypePutOK:
		return "PUT_OK"
	case TypeGet:
		return "GET"
	case TypeData:
		return "DATA"
	case TypeStop:
		return "STOP"
	case TypeFeedback:
		return "FEEDBACK"
	case TypeError:
		return "ERROR"
	case TypeBye:
		return "BYE"
	case TypePatch:
		return "PATCH"
	case TypeList:
		return "LIST"
	case TypeFileList:
		return "FILE_LIST"
	case TypeAuditChallenge:
		return "AUDIT_CHALLENGE"
	case TypeAuditResponse:
		return "AUDIT_RESPONSE"
	case TypeContractPropose:
		return "CONTRACT_PROPOSE"
	case TypeContractGrant:
		return "CONTRACT_GRANT"
	case TypeContractRenew:
		return "CONTRACT_RENEW"
	case TypeContractRelease:
		return "CONTRACT_RELEASE"
	case TypeContractList:
		return "CONTRACT_LIST"
	case TypeContractInfo:
		return "CONTRACT_INFO"
	case TypeGetMux:
		return "GET_MUX"
	case TypeStreamError:
		return "STREAM_ERROR"
	case TypeBusy:
		return "BUSY"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// MaxFrameSize bounds a frame payload; anything larger aborts the
// connection rather than ballooning memory.
const MaxFrameSize = 8 << 20

var (
	// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

	// ErrBadFrame is returned for malformed frame payloads.
	ErrBadFrame = errors.New("wire: malformed frame")

	// ErrUnexpectedFrame is returned when the protocol state machine
	// receives a frame type it cannot handle.
	ErrUnexpectedFrame = errors.New("wire: unexpected frame type")
)

// Frame is one protocol unit.
type Frame struct {
	Type    Type
	Payload []byte
}

// WriteFrame writes a frame: 1-byte type, 4-byte big-endian payload
// length, payload. It is the legacy single-frame compatibility wrapper
// around the batched FrameWriter path: one contiguous Write per frame,
// byte-identical on the wire, with the staging buffer drawn from
// DefaultPool so even legacy call sites stopped allocating per frame.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	b := DefaultPool.Get(5 + len(payload))
	buf := b.Bytes()
	buf[0] = byte(t)
	binary.BigEndian.PutUint32(buf[1:], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	b.Release()
	if err != nil {
		return fmt.Errorf("wire: write %s: %w", t, err)
	}
	recordFrameSent(t, len(payload))
	return nil
}

// ReadFrame reads one frame from r. It is the legacy compatibility
// path: the payload is freshly allocated and owned by the caller
// forever, so it cannot be pooled. Hot paths use FrameReader, which
// returns pooled reference-counted buffers instead.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: short frame body: %w", err)
	}
	recordFrameRecv(Type(hdr[0]), len(payload))
	return Frame{Type: Type(hdr[0]), Payload: payload}, nil
}

// Expect reads one frame and verifies its type, translating TypeError
// frames into Go errors.
func Expect(r io.Reader, want Type) (Frame, error) {
	f, err := ReadFrame(r)
	if err != nil {
		return Frame{}, err
	}
	if f.Type == TypeError {
		var e ErrorMsg
		if uerr := e.Unmarshal(f.Payload); uerr == nil {
			return Frame{}, &RemoteError{Code: e.Code, Reason: e.Reason}
		}
		return Frame{}, fmt.Errorf("%w: undecodable remote error", ErrBadFrame)
	}
	if f.Type != want {
		return Frame{}, fmt.Errorf("%w: got %s, want %s", ErrUnexpectedFrame, f.Type, want)
	}
	return f, nil
}

// Role distinguishes the two ends of a connection.
type Role uint8

// Connection roles.
const (
	RoleUser Role = iota + 1 // a remote user downloading or disseminating
	RolePeer                 // another storage peer
)

// Hello opens a connection: the initiator announces its role and key
// and challenges the responder with a fresh nonce (mutual
// authentication, as the paper recommends against MITM/IP-spoofing).
type Hello struct {
	Role   Role
	PubKey []byte // Ed25519 public key, 32 bytes
	Nonce  []byte // initiator's challenge to the responder, 32 bytes
}

// Marshal serializes the hello.
func (h *Hello) Marshal() []byte {
	out := make([]byte, 0, 1+len(h.PubKey)+len(h.Nonce))
	out = append(out, byte(h.Role))
	out = append(out, h.PubKey...)
	return append(out, h.Nonce...)
}

// Unmarshal parses a hello.
func (h *Hello) Unmarshal(b []byte) error {
	if len(b) != 1+32+32 {
		return fmt.Errorf("%w: hello of %d bytes", ErrBadFrame, len(b))
	}
	h.Role = Role(b[0])
	if h.Role != RoleUser && h.Role != RolePeer {
		return fmt.Errorf("%w: unknown role %d", ErrBadFrame, b[0])
	}
	h.PubKey = append([]byte(nil), b[1:33]...)
	h.Nonce = append([]byte(nil), b[33:]...)
	return nil
}

// Challenge is the responder's reply to a Hello: it proves possession
// of its own key by signing the initiator's nonce, and counter-
// challenges with a nonce of its own.
type Challenge struct {
	PubKey    []byte // responder's key, 32 bytes
	Signature []byte // over the initiator's nonce, 64 bytes
	Nonce     []byte // responder's challenge, 32 bytes
}

// Marshal serializes the challenge.
func (c *Challenge) Marshal() []byte {
	out := make([]byte, 0, len(c.PubKey)+len(c.Signature)+len(c.Nonce))
	out = append(out, c.PubKey...)
	out = append(out, c.Signature...)
	return append(out, c.Nonce...)
}

// Unmarshal parses the challenge.
func (c *Challenge) Unmarshal(b []byte) error {
	if len(b) != 32+64+32 {
		return fmt.Errorf("%w: challenge of %d bytes", ErrBadFrame, len(b))
	}
	c.PubKey = append([]byte(nil), b[:32]...)
	c.Signature = append([]byte(nil), b[32:96]...)
	c.Nonce = append([]byte(nil), b[96:]...)
	return nil
}

// AuthResponse carries the responder's key and challenge signature.
type AuthResponse struct {
	PubKey    []byte // 32 bytes
	Signature []byte // 64 bytes
}

// Marshal serializes the response.
func (a *AuthResponse) Marshal() []byte {
	out := make([]byte, 0, len(a.PubKey)+len(a.Signature))
	out = append(out, a.PubKey...)
	return append(out, a.Signature...)
}

// Unmarshal parses the response.
func (a *AuthResponse) Unmarshal(b []byte) error {
	if len(b) != 32+64 {
		return fmt.Errorf("%w: auth response of %d bytes", ErrBadFrame, len(b))
	}
	a.PubKey = append([]byte(nil), b[:32]...)
	a.Signature = append([]byte(nil), b[32:]...)
	return nil
}

// Get requests the messages of one file. Limit caps how many messages
// the peer should send (0 means "all you have").
//
// DeadlineMillis and Priority propagate the requester's urgency to the
// serving peer. DeadlineMillis is the *remaining* time budget at send
// (relative, so no clock synchronization is needed; the peer anchors it
// to its own clock on receipt); 0 means no deadline. A peer drops work
// whose deadline has already passed instead of serving dead bytes.
// Priority breaks admission ties under overload: a higher-priority
// request may preempt a lower-priority stream.
//
// Interop: both fields ride an extended 17-byte encoding, and only
// when both are zero does Marshal emit the legacy 12-byte form. A
// pre-extension peer's strict Unmarshal rejects the 17-byte form as a
// connection-level bad-frame error rather than ignoring the new
// fields, so a nonzero deadline or priority requires every addressed
// peer to be upgraded. Deploy order therefore matters: upgrade peers
// first, then let clients start setting deadlines/priorities (there is
// no capability negotiation in the handshake yet).
type Get struct {
	FileID         uint64
	Limit          uint32
	DeadlineMillis uint32 // remaining budget in ms; 0 = no deadline
	Priority       uint8  // 0 = normal; higher wins admission ties
}

// Marshal serializes the request.
func (g *Get) Marshal() []byte {
	if g.DeadlineMillis == 0 && g.Priority == 0 {
		out := make([]byte, 12)
		binary.BigEndian.PutUint64(out, g.FileID)
		binary.BigEndian.PutUint32(out[8:], g.Limit)
		return out
	}
	out := make([]byte, 17)
	binary.BigEndian.PutUint64(out, g.FileID)
	binary.BigEndian.PutUint32(out[8:], g.Limit)
	binary.BigEndian.PutUint32(out[12:], g.DeadlineMillis)
	out[16] = g.Priority
	return out
}

// Unmarshal parses the request, accepting both the legacy 12-byte and
// the extended 17-byte encodings.
func (g *Get) Unmarshal(b []byte) error {
	if len(b) != 12 && len(b) != 17 {
		return fmt.Errorf("%w: get of %d bytes", ErrBadFrame, len(b))
	}
	g.FileID = binary.BigEndian.Uint64(b)
	g.Limit = binary.BigEndian.Uint32(b[8:])
	g.DeadlineMillis = 0
	g.Priority = 0
	if len(b) == 17 {
		g.DeadlineMillis = binary.BigEndian.Uint32(b[12:])
		g.Priority = b[16]
	}
	return nil
}

// Stop asks the peer to cease streaming a file (the user has decoded).
type Stop struct {
	FileID uint64
}

// Marshal serializes the stop.
func (s *Stop) Marshal() []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, s.FileID)
	return out
}

// Unmarshal parses the stop.
func (s *Stop) Unmarshal(b []byte) error {
	if len(b) != 8 {
		return fmt.Errorf("%w: stop of %d bytes", ErrBadFrame, len(b))
	}
	s.FileID = binary.BigEndian.Uint64(b)
	return nil
}

// Feedback is the periodic informational update a user sends to its own
// peer so the peer "can make informed decisions on dividing its upload
// capacity among other users" (Sec. III-B). Entries report how many
// bytes the user received from each serving peer, keyed by key
// fingerprint.
type Feedback struct {
	Entries []FeedbackEntry `json:"entries"`
}

// FeedbackEntry is one per-peer receipt report. Bytes credits service
// received; Debit penalizes a peer the owner has caught failing keyed
// retention audits (internal/audit), so the owner's peer stops
// rewarding counterparts that discard stored data.
type FeedbackEntry struct {
	PeerFingerprint string `json:"peer"`
	Bytes           uint64 `json:"bytes"`
	Debit           uint64 `json:"debit,omitempty"`
}

// Marshal serializes the feedback as JSON (it is low-rate control
// traffic).
func (f *Feedback) Marshal() ([]byte, error) {
	return json.Marshal(f)
}

// Unmarshal parses feedback.
func (f *Feedback) Unmarshal(b []byte) error {
	if err := json.Unmarshal(b, f); err != nil {
		return fmt.Errorf("%w: feedback: %v", ErrBadFrame, err)
	}
	return nil
}

// FileList is the response to a LIST request: the peer's stored
// inventory, without payloads (identifiers and counts only — a peer
// cannot leak content it cannot itself decode, but the listing helps
// owners audit replication).
type FileList struct {
	Files []FileEntry `json:"files"`
}

// FileEntry describes one stored generation.
type FileEntry struct {
	FileID   uint64 `json:"fileId"`
	Messages int    `json:"messages"`
}

// Marshal serializes the list as JSON (low-rate control traffic).
func (l *FileList) Marshal() ([]byte, error) {
	return json.Marshal(l)
}

// Unmarshal parses a list.
func (l *FileList) Unmarshal(b []byte) error {
	if err := json.Unmarshal(b, l); err != nil {
		return fmt.Errorf("%w: file list: %v", ErrBadFrame, err)
	}
	return nil
}

// Error codes carried in ErrorMsg.
const (
	CodeAuthFailed      uint16 = 1
	CodeUnknownFile     uint16 = 2
	CodeBadRequest      uint16 = 3
	CodeInternal        uint16 = 4
	CodeNotPermitted    uint16 = 5
	CodeOverCapacity    uint16 = 6 // contract would exceed the peer's advertised capacity
	CodeUnknownContract uint16 = 7 // renew/release of an obligation the peer does not hold
	CodeBusy            uint16 = 8 // admission refused or stream preempted under overload
	CodeExpired         uint16 = 9 // the request's deadline passed before it could be served
)

// ErrorMsg is a terminal protocol error.
type ErrorMsg struct {
	Code   uint16
	Reason string
}

// Marshal serializes the error.
func (e *ErrorMsg) Marshal() []byte {
	out := make([]byte, 2+len(e.Reason))
	binary.BigEndian.PutUint16(out, e.Code)
	copy(out[2:], e.Reason)
	return out
}

// Unmarshal parses the error.
func (e *ErrorMsg) Unmarshal(b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("%w: error frame of %d bytes", ErrBadFrame, len(b))
	}
	e.Code = binary.BigEndian.Uint16(b)
	e.Reason = string(b[2:])
	return nil
}

// StreamError is a terminal error for one multiplexed stream. Unlike
// ErrorMsg — which by contract kills the whole connection — a
// StreamError ends only the stream it names: the other generation
// streams sharing the connection keep flowing. Peers answer a failed
// GET_MUX with it, and a serving error mid-stream is reported the same
// way.
type StreamError struct {
	FileID uint64
	Code   uint16
	Reason string
}

// Marshal serializes the stream error.
func (e *StreamError) Marshal() []byte {
	out := make([]byte, 10+len(e.Reason))
	binary.BigEndian.PutUint64(out, e.FileID)
	binary.BigEndian.PutUint16(out[8:], e.Code)
	copy(out[10:], e.Reason)
	return out
}

// Unmarshal parses a stream error.
func (e *StreamError) Unmarshal(b []byte) error {
	if len(b) < 10 {
		return fmt.Errorf("%w: stream error frame of %d bytes", ErrBadFrame, len(b))
	}
	e.FileID = binary.BigEndian.Uint64(b)
	e.Code = binary.BigEndian.Uint16(b[8:])
	e.Reason = string(b[10:])
	return nil
}

// Error makes a StreamError usable as a Go error directly.
func (e *StreamError) Error() string {
	return fmt.Sprintf("wire: stream %d error %d: %s", e.FileID, e.Code, e.Reason)
}

// Busy is a typed load-shed refusal. Unlike ErrorMsg it is NOT
// terminal for the connection: the peer refused (or preempted) one
// piece of work and the requester should retry after at least
// RetryAfterMillis. FileID scopes the shed to one multiplexed stream;
// 0 means the whole request (legacy GET path). Code is CodeBusy for
// admission refusals and preemptions, CodeExpired when the request's
// own deadline passed before service.
type Busy struct {
	FileID           uint64
	Code             uint16
	RetryAfterMillis uint32 // minimum back-off hint; always > 0 for CodeBusy
	Reason           string
}

// Marshal serializes the busy frame.
func (b *Busy) Marshal() []byte {
	out := make([]byte, 14+len(b.Reason))
	binary.BigEndian.PutUint64(out, b.FileID)
	binary.BigEndian.PutUint16(out[8:], b.Code)
	binary.BigEndian.PutUint32(out[10:], b.RetryAfterMillis)
	copy(out[14:], b.Reason)
	return out
}

// Unmarshal parses a busy frame.
func (b *Busy) Unmarshal(p []byte) error {
	if len(p) < 14 {
		return fmt.Errorf("%w: busy frame of %d bytes", ErrBadFrame, len(p))
	}
	b.FileID = binary.BigEndian.Uint64(p)
	b.Code = binary.BigEndian.Uint16(p[8:])
	b.RetryAfterMillis = binary.BigEndian.Uint32(p[10:])
	b.Reason = string(p[14:])
	return nil
}

// Error makes a Busy frame usable as a Go error directly, so clients
// can match on *wire.Busy and honor RetryAfterMillis.
func (b *Busy) Error() string {
	return fmt.Sprintf("wire: busy (code %d, retry after %dms): %s", b.Code, b.RetryAfterMillis, b.Reason)
}

// SendBusy writes a Busy frame. Unlike SendError this does not doom
// the connection — the remote may keep other streams flowing and retry
// the shed one later — but the same reparse contract applies: the
// frame must always decode cleanly on a conforming reader (see
// TestSendBusyReparses).
func SendBusy(w io.Writer, fileID uint64, code uint16, retryAfterMillis uint32, reason string) error {
	msg := Busy{FileID: fileID, Code: code, RetryAfterMillis: retryAfterMillis, Reason: reason}
	return WriteFrame(w, TypeBusy, msg.Marshal())
}

// RemoteError is an error frame surfaced as a Go error.
type RemoteError struct {
	Code   uint16
	Reason string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error %d: %s", e.Code, e.Reason)
}

// SendError writes an ErrorMsg frame and returns the write error, if
// any.
//
// Contract: SendError is strictly best-effort. The sender MUST treat
// the protocol exchange as failed regardless of the return value and
// MUST close the connection afterwards — the frame only exists so a
// well-behaved remote can surface a typed *RemoteError instead of a
// bare EOF. Callers tearing a connection down may ignore the result;
// callers that keep the connection open (none today) must not, or a
// failed write would silently desynchronize the stream. On the reader
// side, Expect translates the frame into *RemoteError, so a malformed
// or oversized request is answered with a typed error rather than a
// hang (see TestAuditMalformedChallengeYieldsRemoteError).
func SendError(w io.Writer, code uint16, reason string) error {
	msg := ErrorMsg{Code: code, Reason: reason}
	return WriteFrame(w, TypeError, msg.Marshal())
}
