package wire

// Pooled, reference-counted frame buffers — the allocation story of the
// zero-copy hot path (DESIGN.md §13). A FrameReader hands every frame
// payload out in a *Buf drawn from a Pool; ownership transfers with the
// value, and whoever holds the last reference returns the memory to the
// pool with Release. The pool keeps per-size-class free lists so a
// steady-state connection reads and writes frames without touching the
// allocator at all, and it counts every get/retain/release so tests can
// assert two invariants at teardown: nothing leaked (Live == 0) and
// nothing was released twice (DoubleReleases == 0).

import (
	"fmt"
	"sync/atomic"
)

// Size classes are powers of two from minClassBytes up to
// maxClassBytes; a request is served from the smallest class that fits.
// maxClassBytes must cover a full coalesced frame (5-byte header +
// MaxFrameSize payload).
const (
	minClassShift = 6  // 64 B
	maxClassShift = 24 // 16 MiB > 5 + MaxFrameSize
	numClasses    = maxClassShift - minClassShift + 1

	// poolClassRetain bounds how many bytes each class keeps parked in
	// its free list; beyond it, released buffers fall to the GC (and
	// are counted as Discards, not leaks).
	poolClassRetain = 4 << 20
)

// Buf is one pooled frame buffer. The bytes are valid until the last
// reference is released; Release must be called exactly once per
// reference (the initial get counts as one). Buf values must not be
// copied.
type Buf struct {
	pool *Pool
	data []byte // class-sized backing array
	n    int    // logical length
	refs atomic.Int32
}

// Bytes returns the buffer's logical contents. The slice aliases pooled
// memory: it is valid only until the final Release.
func (b *Buf) Bytes() []byte { return b.data[:b.n] }

// Len returns the logical length.
func (b *Buf) Len() int { return b.n }

// Retain adds a reference, so the buffer survives until a matching
// extra Release.
func (b *Buf) Retain() {
	b.refs.Add(1)
	b.pool.retains.Add(1)
}

// Release drops one reference; the last one returns the buffer to its
// pool. Releasing more times than retained is accounted as a
// double-release (and the buffer is not recycled again, so the pool
// never hands the same memory out twice).
func (b *Buf) Release() {
	switch left := b.refs.Add(-1); {
	case left > 0:
		b.pool.releases.Add(1)
	case left == 0:
		b.pool.releases.Add(1)
		b.pool.live.Add(-1)
		b.pool.put(b)
	default:
		b.pool.doubleReleases.Add(1)
	}
}

// PoolStats is a point-in-time snapshot of a pool's accounting.
type PoolStats struct {
	Gets           uint64 // buffers handed out
	Hits           uint64 // gets served from a free list
	Misses         uint64 // gets that had to allocate
	Retains        uint64 // extra references taken
	Releases       uint64 // references dropped (excluding double-releases)
	Discards       uint64 // final releases dropped to the GC (full free list or oversized)
	DoubleReleases uint64 // releases past the last reference — always a bug
	Live           int64  // buffers currently outstanding (gets minus final releases)
}

// Pool is a size-classed free list of frame buffers with leak and
// double-release accounting. The zero value is not usable; construct
// with NewPool. DefaultPool serves the package-level framing helpers.
type Pool struct {
	classes [numClasses]chan *Buf

	gets           atomic.Uint64
	hits           atomic.Uint64
	misses         atomic.Uint64
	retains        atomic.Uint64
	releases       atomic.Uint64
	discards       atomic.Uint64
	doubleReleases atomic.Uint64
	live           atomic.Int64
}

// DefaultPool backs the package-level FrameReader/FrameWriter
// constructors and the legacy WriteFrame wrapper.
var DefaultPool = NewPool()

// NewPool returns an empty pool. Pools are cheap: memory is only held
// after buffers flow through them.
func NewPool() *Pool {
	p := &Pool{}
	for i := range p.classes {
		size := 1 << (minClassShift + i)
		slots := poolClassRetain / size
		if slots < 4 {
			slots = 4
		}
		if slots > 1024 {
			slots = 1024
		}
		p.classes[i] = make(chan *Buf, slots)
	}
	return p
}

// classFor returns the free-list index for a request of n bytes, or -1
// when n exceeds the largest class (served unpooled).
func classFor(n int) int {
	for i := 0; i < numClasses; i++ {
		if n <= 1<<(minClassShift+i) {
			return i
		}
	}
	return -1
}

// Get returns a buffer with Len() == n and a single reference. n may be
// zero. Requests beyond the largest size class are served from the heap
// and dropped to the GC on release (counted, never pooled).
func (p *Pool) Get(n int) *Buf {
	if n < 0 {
		panic(fmt.Sprintf("wire: negative buffer size %d", n))
	}
	p.gets.Add(1)
	p.live.Add(1)
	class := classFor(n)
	if class >= 0 {
		select {
		case b := <-p.classes[class]:
			p.hits.Add(1)
			b.n = n
			b.refs.Store(1)
			return b
		default:
		}
	}
	p.misses.Add(1)
	size := n
	if class >= 0 {
		size = 1 << (minClassShift + class)
	}
	b := &Buf{pool: p, data: make([]byte, size), n: n}
	b.refs.Store(1)
	return b
}

// put parks a fully-released buffer for reuse, or lets it fall to the
// GC when its class list is full (or it was oversized).
func (p *Pool) put(b *Buf) {
	class := classFor(len(b.data))
	if class < 0 || len(b.data) != 1<<(minClassShift+class) {
		p.discards.Add(1)
		return
	}
	select {
	case p.classes[class] <- b:
	default:
		p.discards.Add(1)
	}
}

// Stats snapshots the pool's accounting counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Gets:           p.gets.Load(),
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		Retains:        p.retains.Load(),
		Releases:       p.releases.Load(),
		Discards:       p.discards.Load(),
		DoubleReleases: p.doubleReleases.Load(),
		Live:           p.live.Load(),
	}
}

// Live returns the number of buffers currently outstanding.
func (p *Pool) Live() int64 { return p.live.Load() }
