package wire

// Property-based robustness tests: every typed message round-trips for
// arbitrary field values, and the frame reader never panics on
// arbitrary byte soup.

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestGetRoundTripProperty(t *testing.T) {
	prop := func(fileID uint64, limit uint32) bool {
		g := Get{FileID: fileID, Limit: limit}
		var got Get
		return got.Unmarshal(g.Marshal()) == nil && got == g
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStopRoundTripProperty(t *testing.T) {
	prop := func(fileID uint64) bool {
		s := Stop{FileID: fileID}
		var got Stop
		return got.Unmarshal(s.Marshal()) == nil && got == s
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestErrorMsgRoundTripProperty(t *testing.T) {
	prop := func(code uint16, reason string) bool {
		e := ErrorMsg{Code: code, Reason: reason}
		var got ErrorMsg
		return got.Unmarshal(e.Marshal()) == nil && got == e
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(ty uint8, payload []byte) bool {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Type(ty), payload); err != nil {
			return false
		}
		f, err := ReadFrame(&buf)
		return err == nil && f.Type == Type(ty) && bytes.Equal(f.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadFrameNeverPanicsOnGarbage(t *testing.T) {
	prop := func(garbage []byte) bool {
		r := bytes.NewReader(garbage)
		for {
			_, err := ReadFrame(r)
			if err != nil {
				return true // any error is fine; panics are not
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalersNeverPanicOnGarbage(t *testing.T) {
	prop := func(garbage []byte) bool {
		var (
			h  Hello
			c  Challenge
			a  AuthResponse
			g  Get
			s  Stop
			fb Feedback
			e  ErrorMsg
		)
		// Only absence of panics matters.
		_ = h.Unmarshal(garbage)
		_ = c.Unmarshal(garbage)
		_ = a.Unmarshal(garbage)
		_ = g.Unmarshal(garbage)
		_ = s.Unmarshal(garbage)
		_ = fb.Unmarshal(garbage)
		_ = e.Unmarshal(garbage)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	for n := 0; n < 5; n++ {
		_, err := ReadFrame(bytes.NewReader(make([]byte, n)))
		if err == nil {
			t.Errorf("truncated header of %d bytes accepted", n)
		}
		if n == 0 && err != io.EOF {
			t.Errorf("empty reader error = %v, want io.EOF", err)
		}
	}
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeData, []byte("seed")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			frame, err := ReadFrame(r)
			if err != nil {
				return
			}
			// Parsed frames must re-serialize to the same byte count.
			var out bytes.Buffer
			if werr := WriteFrame(&out, frame.Type, frame.Payload); werr != nil {
				t.Fatalf("reserialize: %v", werr)
			}
			if out.Len() != 5+len(frame.Payload) {
				t.Fatalf("frame length %d", out.Len())
			}
		}
	})
}
