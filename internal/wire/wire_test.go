package wire

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"

	"asymshare/internal/auth"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := WriteFrame(&buf, TypeData, payload); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeData || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeAuthOK, nil); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeAuthOK || len(f.Payload) != 0 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeData, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize write error = %v", err)
	}
	// A forged oversize header must be rejected on read.
	buf.Write([]byte{byte(TypeData), 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize read error = %v", err)
	}
}

func TestReadFrameShortBody(t *testing.T) {
	buf := bytes.NewBuffer([]byte{byte(TypeData), 0, 0, 0, 10, 1, 2})
	if _, err := ReadFrame(buf); err == nil {
		t.Error("short body accepted")
	}
}

func TestExpect(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeGet, (&Get{FileID: 1}).Marshal()); err != nil {
		t.Fatal(err)
	}
	if _, err := Expect(&buf, TypeStop); !errors.Is(err, ErrUnexpectedFrame) {
		t.Errorf("wrong type error = %v", err)
	}

	buf.Reset()
	SendError(&buf, CodeUnknownFile, "nope")
	_, err := Expect(&buf, TypeData)
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != CodeUnknownFile || remote.Reason != "nope" {
		t.Errorf("remote error = %v", err)
	}
}

func TestTypeString(t *testing.T) {
	for ty := TypeHello; ty <= TypeBye; ty++ {
		if s := ty.String(); s == "" || s[0] == 'T' && s != "TYPE(0)" && len(s) > 8 && s[:5] == "TYPE(" {
			t.Errorf("missing name for type %d", ty)
		}
	}
	if got := Type(200).String(); got != "TYPE(200)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{1}, 32))
	if err != nil {
		t.Fatal(err)
	}
	nonce, err := auth.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	h := Hello{Role: RoleUser, PubKey: id.Public(), Nonce: nonce}
	var got Hello
	if err := got.Unmarshal(h.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got.Role != RoleUser || !bytes.Equal(got.PubKey, h.PubKey) || !bytes.Equal(got.Nonce, nonce) {
		t.Fatalf("round trip: %+v", got)
	}
	if err := got.Unmarshal([]byte{1, 2}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short hello error = %v", err)
	}
	bad := h.Marshal()
	bad[0] = 99
	if err := got.Unmarshal(bad); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad role error = %v", err)
	}
}

func TestChallengeAndAuthRoundTrip(t *testing.T) {
	c := Challenge{
		PubKey:    bytes.Repeat([]byte{2}, 32),
		Signature: bytes.Repeat([]byte{3}, 64),
		Nonce:     bytes.Repeat([]byte{4}, 32),
	}
	var gotC Challenge
	if err := gotC.Unmarshal(c.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC.Signature, c.Signature) || !bytes.Equal(gotC.Nonce, c.Nonce) {
		t.Fatal("challenge round trip mismatch")
	}
	if err := gotC.Unmarshal(make([]byte, 10)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short challenge error = %v", err)
	}

	a := AuthResponse{PubKey: c.PubKey, Signature: c.Signature}
	var gotA AuthResponse
	if err := gotA.Unmarshal(a.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA.PubKey, a.PubKey) {
		t.Fatal("auth round trip mismatch")
	}
	if err := gotA.Unmarshal(make([]byte, 5)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short auth error = %v", err)
	}
}

func TestGetStopFeedbackErrorRoundTrip(t *testing.T) {
	g := Get{FileID: 0xFEED, Limit: 7}
	var gotG Get
	if err := gotG.Unmarshal(g.Marshal()); err != nil || gotG != g {
		t.Fatalf("get round trip: %+v, %v", gotG, err)
	}
	if err := gotG.Unmarshal(make([]byte, 3)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short get error = %v", err)
	}

	s := Stop{FileID: 0xBEEF}
	var gotS Stop
	if err := gotS.Unmarshal(s.Marshal()); err != nil || gotS != s {
		t.Fatalf("stop round trip: %+v, %v", gotS, err)
	}
	if err := gotS.Unmarshal(make([]byte, 3)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short stop error = %v", err)
	}

	fb := Feedback{Entries: []FeedbackEntry{{PeerFingerprint: "abc", Bytes: 100}}}
	blob, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var gotF Feedback
	if err := gotF.Unmarshal(blob); err != nil {
		t.Fatal(err)
	}
	if len(gotF.Entries) != 1 || gotF.Entries[0].Bytes != 100 {
		t.Fatalf("feedback round trip: %+v", gotF)
	}
	if err := gotF.Unmarshal([]byte("{bad json")); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad feedback error = %v", err)
	}

	e := ErrorMsg{Code: CodeInternal, Reason: "boom"}
	var gotE ErrorMsg
	if err := gotE.Unmarshal(e.Marshal()); err != nil || gotE != e {
		t.Fatalf("error round trip: %+v, %v", gotE, err)
	}
	if err := gotE.Unmarshal([]byte{1}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short error frame error = %v", err)
	}
}

// handshakePair runs both handshake halves over an in-memory duplex
// connection and returns their results.
func handshakePair(t *testing.T, initiator, responder *auth.Identity,
	initiatorTrust, responderTrust *auth.TrustSet) (initErr, respErr error) {
	t.Helper()
	cConn, sConn := net.Pipe()
	defer sConn.Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := ResponderHandshake(sConn, responder, responderTrust)
		done <- err
	}()
	_, initErr = InitiatorHandshake(cConn, initiator, RoleUser, initiatorTrust)
	// Close the initiator side so an aborted handshake unblocks the
	// responder (net.Pipe is fully synchronous).
	cConn.Close()
	respErr = <-done
	return initErr, respErr
}

func TestHandshakeMutualSuccess(t *testing.T) {
	user, err := auth.IdentityFromSeed(bytes.Repeat([]byte{5}, 32))
	if err != nil {
		t.Fatal(err)
	}
	peer, err := auth.IdentityFromSeed(bytes.Repeat([]byte{6}, 32))
	if err != nil {
		t.Fatal(err)
	}
	initErr, respErr := handshakePair(t, user, peer,
		auth.NewTrustSet(peer.Public()), auth.NewTrustSet(user.Public()))
	if initErr != nil || respErr != nil {
		t.Fatalf("handshake failed: init=%v resp=%v", initErr, respErr)
	}
}

func TestHandshakeRejectsUntrustedInitiator(t *testing.T) {
	user, err := auth.IdentityFromSeed(bytes.Repeat([]byte{7}, 32))
	if err != nil {
		t.Fatal(err)
	}
	peer, err := auth.IdentityFromSeed(bytes.Repeat([]byte{8}, 32))
	if err != nil {
		t.Fatal(err)
	}
	other, err := auth.IdentityFromSeed(bytes.Repeat([]byte{9}, 32))
	if err != nil {
		t.Fatal(err)
	}
	initErr, respErr := handshakePair(t, user, peer,
		nil, auth.NewTrustSet(other.Public()))
	if respErr == nil {
		t.Error("responder accepted untrusted initiator")
	}
	if initErr == nil {
		t.Error("initiator did not observe rejection")
	}
}

func TestHandshakeRejectsUntrustedResponder(t *testing.T) {
	user, err := auth.IdentityFromSeed(bytes.Repeat([]byte{10}, 32))
	if err != nil {
		t.Fatal(err)
	}
	peer, err := auth.IdentityFromSeed(bytes.Repeat([]byte{11}, 32))
	if err != nil {
		t.Fatal(err)
	}
	other, err := auth.IdentityFromSeed(bytes.Repeat([]byte{12}, 32))
	if err != nil {
		t.Fatal(err)
	}
	initErr, _ := handshakePair(t, user, peer,
		auth.NewTrustSet(other.Public()), auth.NewTrustSet(user.Public()))
	if !errors.Is(initErr, auth.ErrUntrusted) {
		t.Errorf("initiator error = %v, want ErrUntrusted", initErr)
	}
}

func TestHandshakeKeyMismatch(t *testing.T) {
	// An initiator that HELLOs with one key but AUTHs with another must
	// be rejected even if both keys are individually trusted.
	user, err := auth.IdentityFromSeed(bytes.Repeat([]byte{13}, 32))
	if err != nil {
		t.Fatal(err)
	}
	imposter, err := auth.IdentityFromSeed(bytes.Repeat([]byte{14}, 32))
	if err != nil {
		t.Fatal(err)
	}
	peer, err := auth.IdentityFromSeed(bytes.Repeat([]byte{15}, 32))
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := ResponderHandshake(sConn, peer,
			auth.NewTrustSet(user.Public(), imposter.Public()))
		done <- err
	}()
	// Manual initiator: hello as user, auth as imposter.
	nonce, err := auth.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	hello := Hello{Role: RoleUser, PubKey: user.Public(), Nonce: nonce}
	if err := WriteFrame(cConn, TypeHello, hello.Marshal()); err != nil {
		t.Fatal(err)
	}
	f, err := Expect(cConn, TypeChallenge)
	if err != nil {
		t.Fatal(err)
	}
	var ch Challenge
	if err := ch.Unmarshal(f.Payload); err != nil {
		t.Fatal(err)
	}
	sig, err := imposter.Respond(ch.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	resp := AuthResponse{PubKey: imposter.Public(), Signature: sig}
	if err := WriteFrame(cConn, TypeAuthResponse, resp.Marshal()); err != nil {
		t.Fatal(err)
	}
	// net.Pipe writes are synchronous: read the responder's error frame
	// before collecting its result so SendError does not deadlock.
	if _, err := Expect(cConn, TypeAuthOK); err == nil {
		t.Error("initiator received AUTH_OK despite key mismatch")
	}
	if respErr := <-done; respErr == nil {
		t.Error("responder accepted hello/auth key mismatch")
	}
}

func TestFileListRoundTrip(t *testing.T) {
	l := FileList{Files: []FileEntry{{FileID: 7, Messages: 3}, {FileID: 9, Messages: 1}}}
	blob, err := l.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got FileList
	if err := got.Unmarshal(blob); err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != 2 || got.Files[0].FileID != 7 || got.Files[1].Messages != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if err := got.Unmarshal([]byte("{bad")); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad list error = %v", err)
	}
}

func TestRemoteErrorString(t *testing.T) {
	e := &RemoteError{Code: CodeUnknownFile, Reason: "gone"}
	if got := e.Error(); !strings.Contains(got, "gone") || !strings.Contains(got, "2") {
		t.Errorf("Error() = %q", got)
	}
}
