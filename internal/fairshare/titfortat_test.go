package fairshare

import "testing"

func TestTitForTatUnchokesTopContributors(t *testing.T) {
	l := NewLedger(0)
	l.Credit("big", 1000)
	l.Credit("mid", 100)
	l.Credit("small", 1)
	alloc := TitForTat{N: 2}.Allocate(NewRequest(600, []ID{"small", "mid", "big"}, l))
	if !almostEqual(alloc.Rate("big"), 300) || !almostEqual(alloc.Rate("mid"), 300) {
		t.Errorf("alloc = %v", alloc)
	}
	if alloc.Rate("small") != 0 {
		t.Errorf("choked peer got %v", alloc.Rate("small"))
	}
	if !almostEqual(alloc.Total(), 600) {
		t.Errorf("Total = %v", alloc.Total())
	}
}

func TestTitForTatBootstrapAndClamping(t *testing.T) {
	l := NewLedger(0)
	// No standings at all: still unchokes deterministically.
	alloc := TitForTat{N: 1}.Allocate(NewRequest(100, []ID{"b", "a"}, l))
	if !almostEqual(alloc.Total(), 100) {
		t.Errorf("bootstrap Total = %v", alloc.Total())
	}
	// N < 1 behaves as 1.
	alloc = TitForTat{N: 0}.Allocate(NewRequest(100, []ID{"a", "b"}, l))
	count := 0
	for _, g := range alloc {
		if g.Rate > 0 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("N=0 unchoked %d peers", count)
	}
	// N larger than the requester set serves everyone.
	alloc = TitForTat{N: 10}.Allocate(NewRequest(100, []ID{"a", "b"}, l))
	if !almostEqual(alloc.Rate("a"), 50) || !almostEqual(alloc.Rate("b"), 50) {
		t.Errorf("N>len alloc = %v", alloc)
	}
	// Edge cases: a grant per requester, all zero-rate.
	if got := (TitForTat{N: 2}).Allocate(NewRequest(0, []ID{"a"}, l)); len(got) != 1 || got.Total() != 0 {
		t.Errorf("zero capacity = %v", got)
	}
	if got := (TitForTat{N: 2}).Allocate(NewRequest(100, nil, l)); len(got) != 0 {
		t.Errorf("no requesters = %v", got)
	}
}

func TestTitForTatDeterministicTieBreak(t *testing.T) {
	l := NewLedger(0)
	l.Credit("x", 10)
	l.Credit("y", 10)
	a := TitForTat{N: 1}.Allocate(NewRequest(100, []ID{"y", "x"}, l))
	b := TitForTat{N: 1}.Allocate(NewRequest(100, []ID{"x", "y"}, l))
	for _, g := range a {
		if b.Rate(g.ID) != g.Rate {
			t.Errorf("tie-break not deterministic: %v vs %v", a, b)
		}
	}
}
