package fairshare

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"asymshare/internal/fsx"
	"asymshare/internal/metrics"
)

func TestLedgerRev(t *testing.T) {
	l := NewLedger(1)
	r0 := l.Rev()
	l.Credit("a", 5)
	if l.Rev() == r0 {
		t.Error("Credit did not bump revision")
	}
	r1 := l.Rev()
	l.Credit("a", -1) // ignored
	if l.Rev() != r1 {
		t.Error("ignored credit bumped revision")
	}
	l.Debit("a", 2)
	if l.Rev() == r1 {
		t.Error("Debit did not bump revision")
	}
	r2 := l.Rev()
	l.Decay(0.5)
	if l.Rev() == r2 {
		t.Error("Decay did not bump revision")
	}
}

func TestCheckpointerAlternatesSlotsNewestWins(t *testing.T) {
	efs := fsx.NewErrFS(1)
	if err := efs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	l := NewLedger(DefaultInitialCredit)
	c := NewCheckpointer(CheckpointConfig{Ledger: l, Path: "/d/ledger", FS: efs})

	l.Credit("alice", 100)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l.Credit("alice", 50)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if c.Gen() != 2 {
		t.Fatalf("Gen = %d", c.Gen())
	}
	got, rec, err := RecoverLedger(efs, "/d/ledger", DefaultInitialCredit)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Loaded || rec.Gen != 2 || rec.CorruptSlots != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if got.Received("alice") != l.Received("alice") {
		t.Fatalf("recovered standing = %v, want %v", got.Received("alice"), l.Received("alice"))
	}

	// Damage the newest slot: the previous generation still recovers.
	newest := c.slotPath(2)
	f, err := efs.OpenFile(newest, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("{not json"))
	f.Close()
	got, rec, err = RecoverLedger(efs, "/d/ledger", DefaultInitialCredit)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Loaded || rec.Gen != 1 || rec.CorruptSlots != 1 {
		t.Fatalf("recovery after damage = %+v", rec)
	}
	if got.Received("alice") != 100+DefaultInitialCredit {
		t.Fatalf("recovered standing = %v", got.Received("alice"))
	}

	// Both slots damaged: fresh ledger, no boot failure.
	f, _ = efs.OpenFile(c.slotPath(1), os.O_WRONLY|os.O_TRUNC, 0o644)
	f.Write([]byte("garbage"))
	f.Close()
	got, rec, err = RecoverLedger(efs, "/d/ledger", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Loaded || rec.CorruptSlots != 2 {
		t.Fatalf("recovery with both slots damaged = %+v", rec)
	}
	if got.Received("alice") != 0.5 {
		t.Fatalf("fresh ledger initial = %v", got.Received("alice"))
	}
}

func TestCheckpointerSkipsCleanLedger(t *testing.T) {
	efs := fsx.NewErrFS(2)
	efs.MkdirAll("/d", 0o755)
	reg := metrics.NewRegistry()
	l := NewLedger(DefaultInitialCredit)
	c := NewCheckpointer(CheckpointConfig{Ledger: l, Path: "/d/ledger", FS: efs, Metrics: reg})
	if err := c.Checkpoint(); err != nil { // first save always happens
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil { // clean: skipped
		t.Fatal(err)
	}
	if c.Gen() != 1 {
		t.Fatalf("clean checkpoint advanced generation to %d", c.Gen())
	}
	l.Credit("bob", 1)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if c.Gen() != 2 {
		t.Fatalf("dirty checkpoint did not advance: gen %d", c.Gen())
	}
	saves := counterValue(reg, MetricCheckpoints)
	if saves != 2 {
		t.Errorf("checkpoints_total = %v, want 2", saves)
	}
}

func counterValue(reg *metrics.Registry, name string) float64 {
	for _, fam := range reg.Snapshot().Families {
		if fam.Name == name {
			var sum float64
			for _, s := range fam.Series {
				sum += s.Value
			}
			return sum
		}
	}
	return 0
}

func TestCheckpointerRunFinalSave(t *testing.T) {
	efs := fsx.NewErrFS(3)
	efs.MkdirAll("/d", 0o755)
	l := NewLedger(DefaultInitialCredit)
	c := NewCheckpointer(CheckpointConfig{Ledger: l, Path: "/d/ledger", FS: efs, Interval: time.Hour})
	l.Credit("carol", 42)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { c.Run(ctx); close(done) }()
	cancel() // the interval never fires; the shutdown save must
	<-done
	got, rec, err := RecoverLedger(efs, "/d/ledger", DefaultInitialCredit)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Loaded {
		t.Fatal("shutdown checkpoint missing")
	}
	if got.Received("carol") != 42+DefaultInitialCredit {
		t.Fatalf("recovered standing = %v", got.Received("carol"))
	}
}

// TestCheckpointCrashSweep crashes the filesystem at every operation of
// a checkpoint cycle and asserts recovery always yields either the
// previous or the new generation — intact — and never fails.
func TestCheckpointCrashSweep(t *testing.T) {
	runOnce := func(efs *fsx.ErrFS) error {
		l := NewLedger(DefaultInitialCredit)
		c := NewCheckpointer(CheckpointConfig{Ledger: l, Path: "/d/ledger", FS: efs})
		l.Credit("a", 10)
		if err := c.Checkpoint(); err != nil {
			return err
		}
		l.Credit("a", 20)
		if err := c.Checkpoint(); err != nil {
			return err
		}
		l.Credit("a", 30)
		return c.Checkpoint()
	}
	clean := fsx.NewErrFS(1)
	clean.MkdirAll("/d", 0o755)
	if err := runOnce(clean); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()
	for n := 1; n <= total; n++ {
		label := fmt.Sprintf("crash@%d", n)
		efs := fsx.NewErrFS(int64(n))
		efs.MkdirAll("/d", 0o755)
		efs.CrashAtOp(efs.Ops() + n)
		runOnce(efs) // fails at some point; error content irrelevant
		efs.Reboot()
		got, rec, err := RecoverLedger(efs, "/d/ledger", DefaultInitialCredit)
		if err != nil {
			t.Fatalf("%s: recover: %v", label, err)
		}
		if rec.CorruptSlots != 0 {
			t.Fatalf("%s: crash produced corrupt slot: %+v", label, rec)
		}
		// Accumulate exactly as the ledger does: float addition is not
		// associative, so `60 + initial` is not bit-identical.
		v1 := DefaultInitialCredit + 10
		v2 := v1 + 20
		v3 := v2 + 30
		want := map[uint64]float64{0: DefaultInitialCredit, 1: v1, 2: v2, 3: v3}[rec.Gen]
		if got.Received("a") != want {
			t.Fatalf("%s: gen %d standing = %v, want %v", label, rec.Gen, got.Received("a"), want)
		}
	}
}

// TestCheckpointFaultSweep injects a one-shot I/O error at every
// operation and asserts the checkpoint either succeeds or fails with
// the injected error while the previous generation stays recoverable.
func TestCheckpointFaultSweep(t *testing.T) {
	clean := fsx.NewErrFS(1)
	clean.MkdirAll("/d", 0o755)
	l := NewLedger(DefaultInitialCredit)
	c := NewCheckpointer(CheckpointConfig{Ledger: l, Path: "/d/ledger", FS: clean})
	l.Credit("a", 10)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := clean.Ops()
	l.Credit("a", 20)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	perCheckpoint := clean.Ops() - base

	for n := 1; n <= perCheckpoint; n++ {
		efs := fsx.NewErrFS(int64(n))
		efs.MkdirAll("/d", 0o755)
		l := NewLedger(DefaultInitialCredit)
		c := NewCheckpointer(CheckpointConfig{Ledger: l, Path: "/d/ledger", FS: efs})
		l.Credit("a", 10)
		if err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		l.Credit("a", 20)
		efs.FailOp(efs.Ops()+n, fsx.ErrDiskIO)
		err := c.Checkpoint()
		if err != nil && !errors.Is(err, fsx.ErrDiskIO) {
			t.Fatalf("fault@%d: foreign error: %v", n, err)
		}
		got, rec, rerr := RecoverLedger(efs, "/d/ledger", DefaultInitialCredit)
		if rerr != nil {
			t.Fatalf("fault@%d: recover: %v", n, rerr)
		}
		if !rec.Loaded {
			t.Fatalf("fault@%d: lost every checkpoint: %+v", n, rec)
		}
		v1 := DefaultInitialCredit + 10
		v2 := v1 + 20
		g := got.Received("a")
		if g != v1 && g != v2 {
			t.Fatalf("fault@%d: standing = %v", n, g)
		}
		if err == nil && g != v2 {
			t.Fatalf("fault@%d: checkpoint acked but old standing %v recovered", n, g)
		}
		// A failed checkpoint retries cleanly once the fault clears.
		if err != nil {
			if err := c.Checkpoint(); err != nil {
				t.Fatalf("fault@%d: retry: %v", n, err)
			}
			got, _, _ := RecoverLedger(efs, "/d/ledger", DefaultInitialCredit)
			if got.Received("a") != v2 {
				t.Fatalf("fault@%d: retry did not persist", n)
			}
		}
	}
}
