package fairshare_test

import (
	"fmt"

	"asymshare/internal/fairshare"
)

// Example shows Eq. (2) in one step: a peer divides its upload among
// the users currently requesting, proportional to the bandwidth it has
// received from each of them.
func Example() {
	ledger := fairshare.NewLedger(fairshare.DefaultInitialCredit)
	ledger.Credit("alice", 300) // alice has served this peer 300 units
	ledger.Credit("bob", 100)

	alloc := fairshare.PairwiseProportional{}.Allocate(fairshare.NewRequest(
		1000,                           // this peer's upload capacity
		[]fairshare.ID{"alice", "bob"}, // who is requesting right now
		ledger,
	))
	fmt.Printf("alice: %.0f\nbob: %.0f\n", alloc.Rate("alice"), alloc.Rate("bob"))
	// Output:
	// alice: 750
	// bob: 250
}

// ExampleGlobalProportional demonstrates the vulnerability of the
// declared-capacity baseline (Eq. 3): inflating your declaration
// inflates your share.
func ExampleGlobalProportional() {
	honest := fairshare.GlobalProportional{
		DeclaredUpload: map[fairshare.ID]float64{"alice": 500, "bob": 500},
	}
	liar := fairshare.GlobalProportional{
		DeclaredUpload: map[fairshare.ID]float64{"alice": 500, "bob": 500000},
	}
	requesters := []fairshare.ID{"alice", "bob"}
	fmt.Printf("honest bob: %.0f\n", honest.Allocate(fairshare.NewRequest(1000, requesters, nil)).Rate("bob"))
	fmt.Printf("lying bob:  %.0f\n", liar.Allocate(fairshare.NewRequest(1000, requesters, nil)).Rate("bob"))
	// Output:
	// honest bob: 500
	// lying bob:  999
}
