package fairshare

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestLedgerJSONRoundTrip(t *testing.T) {
	l := NewLedger(0.25)
	l.Credit("alice", 100)
	l.Credit("bob", 7.5)

	var buf bytes.Buffer
	if err := l.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLedgerJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Received("alice"); !almostEqual(v, 100.25) {
		t.Errorf("alice = %v", v)
	}
	if v := got.Received("bob"); !almostEqual(v, 7.75) {
		t.Errorf("bob = %v", v)
	}
	// Unseen counterpart still gets the preserved initial credit.
	if v := got.Received("carol"); !almostEqual(v, 0.25) {
		t.Errorf("carol = %v", v)
	}
}

func TestLoadLedgerJSONErrors(t *testing.T) {
	if _, err := LoadLedgerJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := LoadLedgerJSON(strings.NewReader(`{"initial":0,"received":{"x":-5}}`)); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestLedgerFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.json")

	l := NewLedger(DefaultInitialCredit)
	l.Credit("peerA", 5000)
	if err := l.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLedgerFile(path, 99)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Received("peerA"); v < 5000 {
		t.Errorf("peerA = %v", v)
	}
	// Overwrite is atomic and repeatable.
	l.Credit("peerA", 1)
	if err := l.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadLedgerFileMissingGivesFresh(t *testing.T) {
	got, err := LoadLedgerFile(filepath.Join(t.TempDir(), "nope.json"), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Received("anyone"); v != 0.5 {
		t.Errorf("fresh ledger initial = %v", v)
	}
}

func TestSaveFileBadDir(t *testing.T) {
	l := NewLedger(0)
	if err := l.SaveFile("/nonexistent-dir-xyz/ledger.json"); err == nil {
		t.Error("save into missing directory succeeded")
	}
}
