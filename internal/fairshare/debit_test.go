package fairshare

import (
	"sync"
	"testing"
)

func TestLedgerDebitReducesStanding(t *testing.T) {
	l := NewLedger(0)
	l.Credit("p", 100)
	l.Debit("p", 30)
	if got := l.Received("p"); got != 70 {
		t.Errorf("Received = %v, want 70", got)
	}
}

func TestLedgerDebitClampsAtZero(t *testing.T) {
	l := NewLedger(0)
	l.Credit("p", 10)
	l.Debit("p", 1e9)
	if got := l.Received("p"); got != 0 {
		t.Errorf("Received = %v, want 0 after over-debit", got)
	}
	// Further credit starts from zero, not from a hidden negative balance.
	l.Credit("p", 5)
	if got := l.Received("p"); got != 5 {
		t.Errorf("Received after re-credit = %v, want 5", got)
	}
}

func TestLedgerDebitUnseenPinsToZero(t *testing.T) {
	l := NewLedger(DefaultInitialCredit)
	l.Debit("stranger", 1)
	if got := l.Received("stranger"); got != 0 {
		t.Errorf("Received = %v, want 0 (bootstrap credit revoked)", got)
	}
	if got := l.Received("other"); got != DefaultInitialCredit {
		t.Errorf("unrelated counterpart = %v, want initial credit", got)
	}
}

func TestLedgerDebitIgnoresNonPositive(t *testing.T) {
	l := NewLedger(0)
	l.Credit("p", 50)
	l.Debit("p", 0)
	l.Debit("p", -10)
	if got := l.Received("p"); got != 50 {
		t.Errorf("Received = %v, want 50", got)
	}
}

func TestLedgerDebitShrinksAllocation(t *testing.T) {
	l := NewLedger(0)
	l.Credit("honest", 100)
	l.Credit("cheat", 100)
	before := PairwiseProportional{}.Allocate(NewRequest(1000, []ID{"honest", "cheat"}, l))
	if before.Rate("cheat") != before.Rate("honest") {
		t.Fatalf("equal standings allocated unequally: %v", before)
	}
	l.Debit("cheat", 90)
	after := PairwiseProportional{}.Allocate(NewRequest(1000, []ID{"honest", "cheat"}, l))
	if after.Rate("cheat") >= after.Rate("honest")/5 {
		t.Errorf("debited peer still gets %v of honest %v", after.Rate("cheat"), after.Rate("honest"))
	}
}

func TestLedgerDebitConcurrent(t *testing.T) {
	l := NewLedger(0)
	l.Credit("p", 1000)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Debit("p", 1)
			}
		}()
	}
	wg.Wait()
	if got := l.Received("p"); got != 0 {
		t.Errorf("Received = %v, want 0 after 1000 concurrent debits", got)
	}
}
