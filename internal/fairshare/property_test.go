package fairshare

import (
	"math"
	"testing"
	"testing/quick"
)

// allPolicies returns every built-in policy over the given IDs, split
// into those that serve full capacity whenever requesters are present
// and those that may deliberately withhold.
func allPolicies(ids []ID) (serving, withholding []Allocator) {
	serving = []Allocator{
		PairwiseProportional{},
		GlobalProportional{DeclaredUpload: map[ID]float64{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}},
		EqualSplit{},
		TitForTat{N: 2},
		BiasedContribution{},
		BiasedContribution{Beta: 0.5},
		Classes{Weights: map[ServiceClass]float64{0: 1, 1: 4}},
	}
	withholding = []Allocator{
		Withhold{},
		Favor{Members: map[ID]bool{"a": true, "c": true}},
	}
	return serving, withholding
}

// checkGrants asserts the Allocator contract for one allocation:
// one grant per requester in request order, every rate non-negative
// and finite, total at most capacity — and exactly capacity for
// serving policies with requesters and capacity present.
func checkGrants(t *testing.T, req AllocRequest, g Grants, serves bool) bool {
	t.Helper()
	if len(g) != len(req.Requesters) {
		t.Errorf("got %d grants for %d requesters", len(g), len(req.Requesters))
		return false
	}
	var sum float64
	for i, e := range g {
		if e.ID != req.Requesters[i].ID {
			t.Errorf("grant %d is for %q, requester is %q", i, e.ID, req.Requesters[i].ID)
			return false
		}
		if e.Rate < 0 || math.IsNaN(e.Rate) || math.IsInf(e.Rate, 0) {
			t.Errorf("grant %d rate %v", i, e.Rate)
			return false
		}
		sum += e.Rate
	}
	if sum > req.Capacity+1e-6*math.Max(1, req.Capacity) {
		t.Errorf("granted %v of capacity %v", sum, req.Capacity)
		return false
	}
	if serves && req.Capacity > 0 && len(req.Requesters) > 0 {
		if math.Abs(sum-req.Capacity) > 1e-6*math.Max(1, req.Capacity) {
			t.Errorf("serving policy granted %v of capacity %v", sum, req.Capacity)
			return false
		}
	}
	return true
}

// TestAllocationConservationProperty drives every policy through
// randomized capacities, requester subsets, ledger states and
// per-requester context, asserting the Grants contract each time.
func TestAllocationConservationProperty(t *testing.T) {
	ids := []ID{"a", "b", "c", "d", "e"}
	exact := NewLedger(DefaultInitialCredit)
	exact.Credit("a", 5)
	exact.Credit("c", 11)
	bounded := NewShardedLedger(DefaultInitialCredit, 2)
	for _, id := range ids {
		bounded.Credit(id, 3) // overflows the bound: tail in play
	}
	serving, withholding := allPolicies(ids)

	prop := func(capRaw uint16, mask, classBits uint8, takenRaw uint16, useBounded bool) bool {
		capacity := float64(capRaw)
		var reqs []Requester
		for i, id := range ids {
			if mask&(1<<i) == 0 {
				continue
			}
			reqs = append(reqs, Requester{
				ID:    id,
				Class: ServiceClass(classBits >> (uint(i) % 4) & 1),
				Taken: float64(takenRaw) * float64(i),
			})
		}
		var view LedgerView = exact
		if useBounded {
			view = bounded
		}
		req := AllocRequest{Capacity: capacity, Requesters: reqs, Ledger: view}
		for _, p := range serving {
			if !checkGrants(t, req, p.Allocate(req), true) {
				return false
			}
		}
		for _, p := range withholding {
			if !checkGrants(t, req, p.Allocate(req), false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDemandWaterFill asserts the water-filling contract: a requester
// never receives more than its demand, freed capacity re-divides, and
// conservation holds when total demand exceeds capacity.
func TestDemandWaterFill(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 100)
	l.Credit("b", 100)
	l.Credit("c", 200)
	// Proportional shares of 400 would be 100/100/200; a's demand cap
	// of 10 frees 90, re-divided 1:2 between b and c.
	req := AllocRequest{
		Capacity: 400,
		Requesters: []Requester{
			{ID: "a", Demand: 10},
			{ID: "b"},
			{ID: "c"},
		},
		Ledger: l,
	}
	g := PairwiseProportional{}.Allocate(req)
	if !almostEqual(g.Rate("a"), 10) {
		t.Errorf("capped requester got %v, want its demand 10", g.Rate("a"))
	}
	if !almostEqual(g.Rate("b"), 130) || !almostEqual(g.Rate("c"), 260) {
		t.Errorf("freed capacity not re-divided 1:2: %v", g)
	}
	if !almostEqual(g.Total(), 400) {
		t.Errorf("Total = %v", g.Total())
	}

	// Every requester capped below its share: the surplus goes unused
	// (total < capacity is allowed when demand binds).
	req2 := AllocRequest{
		Capacity:   1000,
		Requesters: []Requester{{ID: "a", Demand: 5}, {ID: "b", Demand: 7}},
		Ledger:     nil,
	}
	g2 := EqualSplit{}.Allocate(req2)
	if !almostEqual(g2.Rate("a"), 5) || !almostEqual(g2.Rate("b"), 7) {
		t.Errorf("demand caps not honored: %v", g2)
	}
}

// TestDemandWaterFillProperty randomizes demands and asserts the caps
// and the conservation bound hold for the proportional policies.
func TestDemandWaterFillProperty(t *testing.T) {
	ids := []ID{"a", "b", "c", "d"}
	l := NewLedger(DefaultInitialCredit)
	l.Credit("a", 2)
	l.Credit("b", 9)
	l.Credit("d", 1)
	prop := func(capRaw uint16, d0, d1, d2, d3 uint8) bool {
		capacity := float64(capRaw)
		demands := []float64{float64(d0), float64(d1), float64(d2), float64(d3)}
		reqs := make([]Requester, len(ids))
		var total float64
		for i, id := range ids {
			reqs[i] = Requester{ID: id, Demand: demands[i]}
			total += demands[i]
		}
		req := AllocRequest{Capacity: capacity, Requesters: reqs, Ledger: l}
		for _, p := range []Allocator{PairwiseProportional{}, EqualSplit{}, BiasedContribution{}} {
			g := p.Allocate(req)
			var sum float64
			for i, e := range g {
				if demands[i] > 0 && e.Rate > demands[i]+1e-9 {
					t.Errorf("grant %v exceeds demand %v", e.Rate, demands[i])
					return false
				}
				if e.Rate < 0 {
					return false
				}
				sum += e.Rate
			}
			if sum > capacity+1e-6*math.Max(1, capacity) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScratchReuseNoAlloc is the hot-path gate: with a warm Scratch
// buffer, PairwiseProportional (and the other proportional policies)
// allocate nothing per realloc tick.
func TestScratchReuseNoAlloc(t *testing.T) {
	l := NewLedger(DefaultInitialCredit)
	reqs := make([]Requester, 8)
	for i := range reqs {
		reqs[i] = Requester{ID: string(rune('a' + i))}
		l.Credit(reqs[i].ID, float64(i+1))
	}
	for _, tc := range []struct {
		name string
		p    Allocator
	}{
		{"eq2", PairwiseProportional{}},
		{"equal", EqualSplit{}},
		{"bci", BiasedContribution{}},
		{"classes", Classes{}},
		{"withhold", Withhold{}},
	} {
		scratch := make(Grants, 0, len(reqs))
		req := AllocRequest{Capacity: 1000, Requesters: reqs, Ledger: l, Scratch: scratch}
		if avg := testing.AllocsPerRun(200, func() {
			req.Scratch = req.Scratch[:0]
			req.Scratch = tc.p.Allocate(req)
		}); avg != 0 {
			t.Errorf("%s: %v allocs per tick with warm scratch, want 0", tc.name, avg)
		}
	}
}

// TestBiasedContributionIndex pins the BCI shape: pure contributors
// outrank pure consumers, and β biases giving over taking.
func TestBiasedContributionIndex(t *testing.T) {
	l := NewLedger(0)
	l.Credit("giver", 100)
	// "leech" gave nothing and took plenty.
	req := AllocRequest{
		Capacity: 100,
		Requesters: []Requester{
			{ID: "giver", Taken: 0},
			{ID: "leech", Taken: 1000},
		},
		Ledger: l,
	}
	g := BiasedContribution{}.Allocate(req)
	if g.Rate("giver") < 99 {
		t.Errorf("pure contributor got %v of 100", g.Rate("giver"))
	}
	if g.Rate("leech") > 1 {
		t.Errorf("pure consumer got %v of 100", g.Rate("leech"))
	}
	// A balanced peer (gave as much as it took) scores near 1 with any
	// β and splits roughly evenly with the pure giver.
	req.Requesters[1] = Requester{ID: "even", Taken: 80}
	l.Credit("even", 80)
	g = BiasedContribution{Beta: DefaultBCIBeta}.Allocate(req)
	ratio := g.Rate("even") / g.Rate("giver")
	if ratio < 0.5 || ratio > 1.01 {
		t.Errorf("balanced/giver ratio = %v, want within [0.5, 1]", ratio)
	}
}

// TestClassesWeighting pins differentiated service: same standing,
// premium class gets proportionally more; free riders starve in every
// class.
func TestClassesWeighting(t *testing.T) {
	l := NewLedger(0)
	l.Credit("basic", 100)
	l.Credit("premium", 100)
	cl := Classes{Weights: map[ServiceClass]float64{1: 3}}
	g := cl.Allocate(AllocRequest{
		Capacity: 400,
		Requesters: []Requester{
			{ID: "basic", Class: 0},
			{ID: "premium", Class: 1},
			{ID: "freerider", Class: 1},
		},
		Ledger: l,
	})
	if !almostEqual(g.Rate("basic"), 100) || !almostEqual(g.Rate("premium"), 300) {
		t.Errorf("class weighting off: %v", g)
	}
	if g.Rate("freerider") != 0 {
		t.Errorf("free rider got %v despite zero standing", g.Rate("freerider"))
	}
	// Bootstrap: nobody has standing — class weights alone divide.
	g = cl.Allocate(AllocRequest{
		Capacity:   400,
		Requesters: []Requester{{ID: "x", Class: 0}, {ID: "y", Class: 1}},
	})
	if !almostEqual(g.Rate("x"), 100) || !almostEqual(g.Rate("y"), 300) {
		t.Errorf("bootstrap class split: %v", g)
	}
}

// TestLegacyShim exercises the deprecated adapters both ways.
func TestLegacyShim(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 300)
	l.Credit("b", 100)
	// New-style policy through the old map call shape.
	m := AllocateMap(PairwiseProportional{}, 1000, []ID{"a", "b"}, l)
	if !almostEqual(m["a"], 750) || !almostEqual(m["b"], 250) {
		t.Errorf("AllocateMap = %v", m)
	}
	if !almostEqual(Sum(m), 1000) {
		t.Errorf("Sum = %v", Sum(m))
	}
	// Old-style policy through the new seam.
	old := legacyEqualSplit{}
	g := WrapLegacy(old).Allocate(NewRequest(100, []ID{"a", "b"}, l))
	if !almostEqual(g.Rate("a"), 50) || !almostEqual(g.Rate("b"), 50) {
		t.Errorf("WrapLegacy = %v", g)
	}
	// Non-*Ledger views degrade to an empty ledger rather than panic.
	g = WrapLegacy(old).Allocate(NewRequest(100, []ID{"a"}, NewShardedLedger(0, 8)))
	if !almostEqual(g.Total(), 100) {
		t.Errorf("WrapLegacy with bounded view = %v", g)
	}
}

// legacyEqualSplit is an old-signature allocator for shim tests.
type legacyEqualSplit struct{}

func (legacyEqualSplit) Allocate(capacity float64, requesters []ID, _ *Ledger) map[ID]float64 {
	out := make(map[ID]float64, len(requesters))
	if len(requesters) == 0 {
		return out
	}
	for _, id := range requesters {
		out[id] = capacity / float64(len(requesters))
	}
	return out
}

var _ LegacyAllocator = legacyEqualSplit{}

// TestPolicyName pins the CLI/metrics names.
func TestPolicyName(t *testing.T) {
	cases := map[string]Allocator{
		"eq2":       PairwiseProportional{},
		"eq3":       GlobalProportional{},
		"equal":     EqualSplit{},
		"withhold":  Withhold{},
		"favor":     Favor{},
		"titfortat": TitForTat{},
		"bci":       BiasedContribution{},
		"classes":   Classes{},
		"custom":    WrapLegacy(legacyEqualSplit{}),
	}
	for want, p := range cases {
		if got := PolicyName(p); got != want {
			t.Errorf("PolicyName(%T) = %q, want %q", p, got, want)
		}
	}
}
