package fairshare

// Allocation policies. Each policy answers one question for a single
// peer at a single time slot: given my upload capacity and the set of
// users currently requesting, how much do I give each of them?
//
// The seam is request/response: the caller builds an AllocRequest
// carrying the (possibly estimated) capacity, the requesters with
// per-requester context (service class, demand cap, bandwidth already
// taken), and a read-only LedgerView; the policy returns Grants — one
// typed Grant per requester, in request order. Policies never see a
// mutable ledger and callers never alias a policy-owned map: the
// Grants slice is the caller's (req.Scratch is reused when provided),
// so a realloc tick on the peer hot path runs without allocating.
//
// Honest peers run PairwiseProportional (Eq. 2). The other policies
// are the paper's baselines, the adversarial strategies of Sec. V, and
// two post-paper rules: the Biased Contribution Index (Awasthi &
// Singh) and class-weighted differentiated service (Zhang et al.).
// Theorem 1 guarantees an honest user's payoff no matter which of
// these the other peers run.

// LedgerView is the read-only standing a policy may consult: the
// cumulative bandwidth this peer has received from a counterpart.
// Both the exact pairwise Ledger and the bounded ShardedLedger
// implement it; policies must not assume either concrete type.
type LedgerView interface {
	// Received returns the cumulative amount received from a
	// counterpart (or the ledger's initial credit for strangers).
	Received(from ID) float64
}

// ServiceClass labels a requester's differentiated-service tier. Zero
// is the default (weight 1) class; higher classes carry whatever
// weight the Classes policy assigns them.
type ServiceClass uint8

// Requester is one requesting user plus the per-requester context a
// policy may weigh.
type Requester struct {
	// ID identifies the requester.
	ID ID

	// Class is the requester's service tier (used by Classes).
	Class ServiceClass

	// Demand caps the useful rate for this requester this tick, in
	// capacity units; 0 means unbounded. Capacity freed by a demand
	// cap is re-divided among the remaining requesters (water-fill).
	Demand float64

	// Taken is the cumulative bandwidth this peer has already granted
	// the requester (used by BiasedContribution). Callers that do not
	// track it leave it zero.
	Taken float64
}

// AllocRequest carries one allocation decision's inputs.
type AllocRequest struct {
	// Capacity is the upload capacity to divide — configured, or
	// replaced each tick by an online estimate (internal/estimate).
	Capacity float64

	// Requesters are the users requesting this tick.
	Requesters []Requester

	// Ledger is the read-only receipt standing. May be nil for
	// policies that do not consult it.
	Ledger LedgerView

	// Scratch, when non-nil, is reused as the backing array of the
	// returned Grants, so steady-state reallocation allocates nothing.
	Scratch Grants
}

// NewRequest builds an AllocRequest from bare requester IDs — the
// convenience constructor for tests and tools that carry no
// per-requester context.
func NewRequest(capacity float64, ids []ID, view LedgerView) AllocRequest {
	rs := make([]Requester, len(ids))
	for i, id := range ids {
		rs[i] = Requester{ID: id}
	}
	return AllocRequest{Capacity: capacity, Requesters: rs, Ledger: view}
}

// grants returns the output buffer for this request: the caller's
// scratch when provided, a fresh slice otherwise.
func (r AllocRequest) grants() Grants {
	if r.Scratch != nil {
		return r.Scratch[:0]
	}
	return make(Grants, 0, len(r.Requesters))
}

// zeroView is the LedgerView used when the request carries none.
type zeroView struct{}

func (zeroView) Received(ID) float64 { return 0 }

// view returns the request's ledger, or an all-zero view.
func (r AllocRequest) view() LedgerView {
	if r.Ledger == nil {
		return zeroView{}
	}
	return r.Ledger
}

// Grant is the bandwidth granted to one requester.
type Grant struct {
	ID   ID
	Rate float64
}

// Grants is an allocation: exactly one Grant per requester of the
// originating request, in request order (zero-rate entries included,
// so callers can range-align grants with requesters).
type Grants []Grant

// Total returns the total bandwidth granted — the successor of the
// old map-based Sum.
func (g Grants) Total() float64 {
	var s float64
	for _, e := range g {
		s += e.Rate
	}
	return s
}

// Rate returns the bandwidth granted to id (0 when absent). Linear
// scan: grant sets are small on any one peer's tick.
func (g Grants) Rate(id ID) float64 {
	for _, e := range g {
		if e.ID == id {
			return e.Rate
		}
	}
	return 0
}

// Map renders the grants as a fresh map — a convenience for tests and
// legacy call shapes, never an alias of policy-internal state.
func (g Grants) Map() map[ID]float64 {
	out := make(map[ID]float64, len(g))
	for _, e := range g {
		out[e.ID] = e.Rate
	}
	return out
}

// Allocator divides a peer's upload capacity among requesting users.
// Implementations must return one non-negative Grant per requester in
// request order, summing to at most req.Capacity — and to exactly
// req.Capacity when requesters are present and no Demand cap binds,
// unless the policy deliberately withholds bandwidth.
type Allocator interface {
	Allocate(req AllocRequest) Grants
}

// distributeWeights rescales out — whose Rate fields hold non-negative
// weights on entry, parallel to rs — into rates proportional to weight
// summing to capacity. Per-requester Demand caps are honored by
// water-filling: a requester whose proportional share exceeds its
// demand is frozen at the demand and the freed capacity re-divides
// among the rest. A non-positive total weight grants nothing (callers
// wanting an equal-split fallback preload equal weights). The
// no-demand fast path does not allocate.
func distributeWeights(capacity float64, rs []Requester, out Grants) Grants {
	var totalW float64
	demand := false
	for i := range out {
		if out[i].Rate < 0 {
			out[i].Rate = 0
		}
		totalW += out[i].Rate
		if rs[i].Demand > 0 {
			demand = true
		}
	}
	if capacity <= 0 || totalW <= 0 {
		for i := range out {
			out[i].Rate = 0
		}
		return out
	}
	if !demand {
		// Divide before multiplying: the ratio is <= 1, so the product
		// cannot overflow even at extreme capacities or weights.
		for i := range out {
			out[i].Rate = capacity * (out[i].Rate / totalW)
		}
		return out
	}
	// Water-fill. frozen[i] marks entries pinned at their demand cap.
	frozen := make([]bool, len(out))
	remaining, activeW := capacity, totalW
	for froze := true; froze; {
		froze = false
		for i := range out {
			if frozen[i] || out[i].Rate <= 0 {
				continue
			}
			d := rs[i].Demand
			if d <= 0 {
				continue
			}
			if share := remaining * (out[i].Rate / activeW); share >= d {
				frozen[i] = true
				remaining -= d
				activeW -= out[i].Rate
				froze = true
			}
		}
		if activeW <= 0 || remaining <= 0 {
			break
		}
	}
	for i := range out {
		switch {
		case frozen[i]:
			out[i].Rate = rs[i].Demand
		case activeW > 0 && remaining > 0:
			// activeW is maintained by subtraction, so rounding can push
			// a ratio epsilon past 1; clamp so the share never exceeds
			// the remaining capacity (or overflows).
			ratio := out[i].Rate / activeW
			if ratio > 1 {
				ratio = 1
			}
			out[i].Rate = remaining * ratio
		default:
			out[i].Rate = 0
		}
	}
	return out
}

// PairwiseProportional is the paper's proposed rule (Eq. 2): shares
// proportional to cumulative bandwidth received from each requester,
// measured locally.
type PairwiseProportional struct{}

var _ Allocator = PairwiseProportional{}

// Allocate implements Allocator.
func (PairwiseProportional) Allocate(req AllocRequest) Grants {
	out := req.grants()
	view := req.view()
	var total float64
	for _, r := range req.Requesters {
		total += view.Received(r.ID)
	}
	for _, r := range req.Requesters {
		w := 1.0
		if total > 0 {
			w = view.Received(r.ID)
		}
		// No requester has ever contributed and the initial credit is
		// zero: equal weights bootstrap the system.
		out = append(out, Grant{ID: r.ID, Rate: w})
	}
	return distributeWeights(req.Capacity, req.Requesters, out)
}

// GlobalProportional is the motivating rule of Sec. IV-B (Eq. 3,
// following Yang & de Veciana): shares proportional to each requester's
// *declared* upload capacity. It is fair only if declarations are
// honest — a peer gains by over-declaring, which is why the paper
// replaces it with local measurements.
type GlobalProportional struct {
	// DeclaredUpload maps each user to the upload capacity it claims to
	// contribute. Missing users count as zero.
	DeclaredUpload map[ID]float64
}

var _ Allocator = GlobalProportional{}

// Allocate implements Allocator.
func (g GlobalProportional) Allocate(req AllocRequest) Grants {
	out := req.grants()
	var total float64
	for _, r := range req.Requesters {
		total += g.DeclaredUpload[r.ID]
	}
	for _, r := range req.Requesters {
		w := 1.0
		if total > 0 {
			w = g.DeclaredUpload[r.ID]
		}
		out = append(out, Grant{ID: r.ID, Rate: w})
	}
	return distributeWeights(req.Capacity, req.Requesters, out)
}

// EqualSplit divides capacity evenly among requesters regardless of
// contribution — the "no accounting" baseline.
type EqualSplit struct{}

var _ Allocator = EqualSplit{}

// Allocate implements Allocator.
func (EqualSplit) Allocate(req AllocRequest) Grants {
	out := req.grants()
	for _, r := range req.Requesters {
		out = append(out, Grant{ID: r.ID, Rate: 1})
	}
	return distributeWeights(req.Capacity, req.Requesters, out)
}

// Withhold contributes nothing — the freeloading strategy. (A peer can
// equivalently freeload by reporting zero capacity; this policy models
// one that accepts storage but never serves.)
type Withhold struct{}

var _ Allocator = Withhold{}

// Allocate implements Allocator.
func (Withhold) Allocate(req AllocRequest) Grants {
	out := req.grants()
	for _, r := range req.Requesters {
		out = append(out, Grant{ID: r.ID})
	}
	return out
}

// Favor serves only a fixed coalition, splitting capacity evenly among
// requesting members (a colluding strategy from the resilience
// discussion of Sec. IV-C). Non-members get nothing.
type Favor struct {
	Members map[ID]bool
}

var _ Allocator = Favor{}

// Allocate implements Allocator.
func (f Favor) Allocate(req AllocRequest) Grants {
	out := req.grants()
	for _, r := range req.Requesters {
		w := 0.0
		if f.Members[r.ID] {
			w = 1
		}
		out = append(out, Grant{ID: r.ID, Rate: w})
	}
	return distributeWeights(req.Capacity, req.Requesters, out)
}
