package fairshare

// Allocation policies. Each policy answers one question for a single
// peer at a single time slot: given my upload capacity and the set of
// users currently requesting, how much do I give each of them?
//
// Honest peers run PairwiseProportional (Eq. 2). The other policies are
// the paper's baselines and the adversarial strategies evaluated in
// Sec. V: Theorem 1 guarantees an honest user's payoff no matter which
// of these the other peers run.

// Allocator divides a peer's upload capacity among requesting users.
// Implementations must return non-negative shares summing to at most
// capacity (exactly capacity when requesters is non-empty, unless the
// policy deliberately withholds bandwidth).
type Allocator interface {
	// Allocate returns the bandwidth granted to each requester. ledger
	// is the allocating peer's local receipt ledger.
	Allocate(capacity float64, requesters []ID, ledger *Ledger) map[ID]float64
}

// PairwiseProportional is the paper's proposed rule (Eq. 2): shares
// proportional to cumulative bandwidth received from each requester,
// measured locally.
type PairwiseProportional struct{}

var _ Allocator = PairwiseProportional{}

// Allocate implements Allocator.
func (PairwiseProportional) Allocate(capacity float64, requesters []ID, ledger *Ledger) map[ID]float64 {
	out := make(map[ID]float64, len(requesters))
	if capacity <= 0 || len(requesters) == 0 {
		return out
	}
	weights := make([]float64, len(requesters))
	var total float64
	for i, r := range requesters {
		weights[i] = ledger.Received(r)
		total += weights[i]
	}
	if total <= 0 {
		// No requester has ever contributed and the initial credit is
		// zero: an even split bootstraps the system.
		share := capacity / float64(len(requesters))
		for _, r := range requesters {
			out[r] = share
		}
		return out
	}
	for i, r := range requesters {
		out[r] = capacity * weights[i] / total
	}
	return out
}

// GlobalProportional is the motivating rule of Sec. IV-B (Eq. 3,
// following Yang & de Veciana): shares proportional to each requester's
// *declared* upload capacity. It is fair only if declarations are
// honest — a peer gains by over-declaring, which is why the paper
// replaces it with local measurements.
type GlobalProportional struct {
	// DeclaredUpload maps each user to the upload capacity it claims to
	// contribute. Missing users count as zero.
	DeclaredUpload map[ID]float64
}

var _ Allocator = GlobalProportional{}

// Allocate implements Allocator.
func (g GlobalProportional) Allocate(capacity float64, requesters []ID, _ *Ledger) map[ID]float64 {
	out := make(map[ID]float64, len(requesters))
	if capacity <= 0 || len(requesters) == 0 {
		return out
	}
	var total float64
	for _, r := range requesters {
		total += g.DeclaredUpload[r]
	}
	if total <= 0 {
		share := capacity / float64(len(requesters))
		for _, r := range requesters {
			out[r] = share
		}
		return out
	}
	for _, r := range requesters {
		out[r] = capacity * g.DeclaredUpload[r] / total
	}
	return out
}

// EqualSplit divides capacity evenly among requesters regardless of
// contribution — the "no accounting" baseline.
type EqualSplit struct{}

var _ Allocator = EqualSplit{}

// Allocate implements Allocator.
func (EqualSplit) Allocate(capacity float64, requesters []ID, _ *Ledger) map[ID]float64 {
	out := make(map[ID]float64, len(requesters))
	if capacity <= 0 || len(requesters) == 0 {
		return out
	}
	share := capacity / float64(len(requesters))
	for _, r := range requesters {
		out[r] = share
	}
	return out
}

// Withhold contributes nothing — the freeloading strategy. (A peer can
// equivalently freeload by reporting zero capacity; this policy models
// one that accepts storage but never serves.)
type Withhold struct{}

var _ Allocator = Withhold{}

// Allocate implements Allocator.
func (Withhold) Allocate(float64, []ID, *Ledger) map[ID]float64 {
	return map[ID]float64{}
}

// Favor serves only a fixed coalition, splitting capacity evenly among
// requesting members (a colluding strategy from the resilience
// discussion of Sec. IV-C). Non-members get nothing.
type Favor struct {
	Members map[ID]bool
}

var _ Allocator = Favor{}

// Allocate implements Allocator.
func (f Favor) Allocate(capacity float64, requesters []ID, _ *Ledger) map[ID]float64 {
	out := make(map[ID]float64, len(requesters))
	if capacity <= 0 {
		return out
	}
	var members []ID
	for _, r := range requesters {
		if f.Members[r] {
			members = append(members, r)
		}
	}
	if len(members) == 0 {
		return out
	}
	share := capacity / float64(len(members))
	for _, r := range members {
		out[r] = share
	}
	return out
}

// Sum returns the total bandwidth granted by an allocation.
func Sum(alloc map[ID]float64) float64 {
	var s float64
	for _, v := range alloc {
		s += v
	}
	return s
}
