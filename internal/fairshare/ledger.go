// Package fairshare implements the bandwidth allocation schemes of
// Section IV of the paper.
//
// The proposed rule (Eq. 2) has each peer i divide its upload capacity
// mu_i among the users requesting at slot t in proportion to the
// cumulative bandwidth peer i has *received* from each of them:
//
//	mu_ij(t) = mu_i * I_j(t) * R_i[j] / sum_{l: I_l(t)=1} R_i[l]
//
// where R_i[l] = sum_{k<t} mu_li(k) is peer i's local receipt ledger.
// Only local measurements are used — no declared values that a
// malicious peer could inflate — which is exactly the fix over the
// global proportional-fairness rule (Eq. 3) discussed in Sec. IV-B.
package fairshare

import (
	"sort"
	"sync"

	"asymshare/internal/metrics"
)

// ID identifies a peer/user pair. In the simulator IDs are synthetic
// names; in the real node they are public-key fingerprints.
type ID = string

// Book is the mutable receipt-ledger seam: everything a node needs to
// keep standing with its counterparts. Two implementations exist — the
// exact pairwise Ledger (O(peers ever seen) state, the paper's R_i),
// and the bounded ShardedLedger (top-K heavy hitters plus a decayed
// aggregate tail). The interface is sealed to this package via the
// unexported marshal/instrument methods, because checkpointing needs a
// stable serialized form per implementation.
type Book interface {
	LedgerView
	Credit(from ID, amount float64)
	Debit(from ID, amount float64)
	Decay(factor float64)
	Rev() uint64
	Snapshot() map[ID]float64
	Total() float64

	// marshal renders the book with an explicit checkpoint generation.
	marshal(gen uint64) ([]byte, error)
	// instrument attaches credit/debit metrics.
	instrument(reg *metrics.Registry)
}

// InstrumentBook attaches credit/debit metrics to either ledger kind.
// Safe with a nil registry or nil book; returns the book for chaining.
func InstrumentBook(b Book, reg *metrics.Registry) Book {
	if b != nil {
		b.instrument(reg)
	}
	return b
}

// DefaultInitialCredit is the "arbitrary small positive initial value"
// of Eq. (2) seeding every pairwise ledger entry so the system can
// bootstrap.
const DefaultInitialCredit = 1e-6

// Ledger is one peer's local record of bandwidth received from each
// counterpart. It is safe for concurrent use.
type Ledger struct {
	mu       sync.RWMutex
	received map[ID]float64
	initial  float64
	rev      uint64 // bumped on every mutation; checkpointing skips clean ledgers

	creditEvents  *metrics.Counter
	debitEvents   *metrics.Counter
	creditedUnits *metrics.Gauge
	debitedUnits  *metrics.Gauge
}

// Exported ledger metric names (see DESIGN.md §7).
const (
	MetricCreditEvents  = "fairshare_credit_events_total"
	MetricDebitEvents   = "fairshare_debit_events_total"
	MetricCreditedUnits = "fairshare_credited_units"
	MetricDebitedUnits  = "fairshare_debited_units"
)

// Instrument attaches credit/debit counters to the ledger. The unit
// gauges accumulate the raw amounts (bytes, in the real node), tracking
// the R_i[j] flow Eq. (2) divides by. Safe with a nil registry; returns
// the ledger for chaining.
func (l *Ledger) Instrument(reg *metrics.Registry) *Ledger {
	l.creditEvents = reg.Counter(MetricCreditEvents, "Ledger credit operations applied.")
	l.debitEvents = reg.Counter(MetricDebitEvents, "Ledger debit operations applied (audit penalties).")
	l.creditedUnits = reg.Gauge(MetricCreditedUnits, "Cumulative ledger units credited (bytes received).")
	l.debitedUnits = reg.Gauge(MetricDebitedUnits, "Cumulative ledger units debited (audit penalties).")
	return l
}

// instrument implements Book.
func (l *Ledger) instrument(reg *metrics.Registry) { l.Instrument(reg) }

var _ Book = (*Ledger)(nil)

// NewLedger returns a ledger whose unseen counterparts start with the
// given initial credit (use DefaultInitialCredit unless testing
// bootstrap behaviour).
func NewLedger(initial float64) *Ledger {
	if initial < 0 {
		initial = 0
	}
	return &Ledger{received: make(map[ID]float64), initial: initial}
}

// Credit records that `amount` bandwidth was received from a
// counterpart. Negative amounts are ignored.
func (l *Ledger) Credit(from ID, amount float64) {
	if amount <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.received[from]; !ok {
		l.received[from] = l.initial
	}
	l.received[from] += amount
	l.rev++
	l.creditEvents.Inc()
	l.creditedUnits.Add(amount)
}

// Debit removes `amount` standing from a counterpart, clamping the
// entry at zero — a peer can lose everything it earned but can never
// be driven into debt that would poison ratio-based allocators with
// negative weights. It is the slashing primitive behind audit
// penalties (internal/audit): a peer caught failing retention
// spot-checks forfeits credit and its allocation share collapses,
// exactly the free-riding deterrent of the contribution-index schemes.
// Negative and zero amounts are ignored. Debiting an unseen
// counterpart pins its entry to zero, revoking the initial bootstrap
// credit too.
func (l *Ledger) Debit(from ID, amount float64) {
	if amount <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.received[from]
	if !ok {
		v = l.initial
	}
	v -= amount
	if v < 0 {
		v = 0
	}
	l.received[from] = v
	l.rev++
	l.debitEvents.Inc()
	l.debitedUnits.Add(amount)
}

// Received returns the cumulative amount received from a counterpart,
// or the initial credit if it has never contributed.
func (l *Ledger) Received(from ID) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if v, ok := l.received[from]; ok {
		return v
	}
	return l.initial
}

// Decay multiplies every entry by factor in (0, 1], implementing the
// paper's future-work suggestion of "disproportionately weighing newer
// contributions over older ones" to speed up adaptation (Sec. V-A,
// Fig. 8(b) discussion).
func (l *Ledger) Decay(factor float64) {
	if factor >= 1 || factor < 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for id := range l.received {
		l.received[id] *= factor
	}
	l.rev++
}

// Rev returns a revision counter that changes whenever the ledger
// does. Persistence layers compare revisions to skip saving a ledger
// that has not moved since the last checkpoint.
func (l *Ledger) Rev() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.rev
}

// Snapshot returns a copy of the ledger contents.
func (l *Ledger) Snapshot() map[ID]float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[ID]float64, len(l.received))
	for id, v := range l.received {
		out[id] = v
	}
	return out
}

// Total returns the sum over all recorded counterparts.
func (l *Ledger) Total() float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var sum float64
	for _, v := range l.received {
		sum += v
	}
	return sum
}

// sortedIDs returns ids in deterministic order.
func sortedIDs(ids []ID) []ID {
	out := make([]ID, len(ids))
	copy(out, ids)
	sort.Strings(out)
	return out
}
