package fairshare

import (
	"time"

	"asymshare/internal/metrics"
)

// MetricAllocDuration times Allocate calls of an instrumented allocator.
const MetricAllocDuration = "fairshare_alloc_duration_seconds"

// timedAllocator wraps an Allocator and records how long each Allocate
// call takes. The paper's rule is O(requesters) per slot; the histogram
// makes allocation cost visible as swarms grow.
type timedAllocator struct {
	inner Allocator
	dur   *metrics.Histogram
}

// InstrumentAllocator returns an Allocator that records the duration of
// every Allocate call into reg. With a nil registry or nil inner
// allocator the input is returned unchanged.
func InstrumentAllocator(inner Allocator, reg *metrics.Registry) Allocator {
	if inner == nil || reg == nil {
		return inner
	}
	return timedAllocator{
		inner: inner,
		dur:   reg.Histogram(MetricAllocDuration, "Time spent computing one bandwidth allocation.", metrics.UnitSeconds),
	}
}

// Allocate implements Allocator.
func (t timedAllocator) Allocate(capacity float64, requesters []ID, ledger *Ledger) map[ID]float64 {
	start := time.Now()
	defer t.dur.ObserveSince(start)
	return t.inner.Allocate(capacity, requesters, ledger)
}
