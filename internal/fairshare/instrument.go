package fairshare

import (
	"time"

	"asymshare/internal/metrics"
)

// MetricAllocDuration times Allocate calls of an instrumented allocator.
const MetricAllocDuration = "fairshare_alloc_duration_seconds"

// Per-policy metric name fragments: the instrumented allocator exports
// fairshare_policy_<name>_allocs_total and
// fairshare_policy_<name>_granted_rate for its policy's PolicyName.
const (
	MetricPolicyPrefix      = "fairshare_policy_"
	metricPolicyAllocsSufx  = "_allocs_total"
	metricPolicyGrantedSufx = "_granted_rate"
)

// PolicyName returns the short CLI/metrics name of a built-in policy
// ("eq2", "eq3", "equal", "withhold", "favor", "titfortat", "bci",
// "classes"), or "custom" for anything else.
func PolicyName(a Allocator) string {
	switch a.(type) {
	case PairwiseProportional:
		return "eq2"
	case GlobalProportional:
		return "eq3"
	case EqualSplit:
		return "equal"
	case Withhold:
		return "withhold"
	case Favor:
		return "favor"
	case TitForTat:
		return "titfortat"
	case BiasedContribution:
		return "bci"
	case Classes:
		return "classes"
	case timedAllocator:
		return PolicyName(a.(timedAllocator).inner)
	default:
		return "custom"
	}
}

// timedAllocator wraps an Allocator and records how long each Allocate
// call takes plus per-policy grant totals. The paper's rule is
// O(requesters) per slot; the histogram makes allocation cost visible
// as swarms grow.
type timedAllocator struct {
	inner   Allocator
	dur     *metrics.Histogram
	allocs  *metrics.Counter
	granted *metrics.Gauge
}

// InstrumentAllocator returns an Allocator that records the duration of
// every Allocate call and per-policy grant totals into reg. With a nil
// registry or nil inner allocator the input is returned unchanged.
func InstrumentAllocator(inner Allocator, reg *metrics.Registry) Allocator {
	if inner == nil || reg == nil {
		return inner
	}
	name := PolicyName(inner)
	return timedAllocator{
		inner:   inner,
		dur:     reg.Histogram(MetricAllocDuration, "Time spent computing one bandwidth allocation.", metrics.UnitSeconds),
		allocs:  reg.Counter(MetricPolicyPrefix+name+metricPolicyAllocsSufx, "Allocation rounds computed by the active policy."),
		granted: reg.Gauge(MetricPolicyPrefix+name+metricPolicyGrantedSufx, "Total rate granted by the last allocation round."),
	}
}

// Allocate implements Allocator.
func (t timedAllocator) Allocate(req AllocRequest) Grants {
	start := time.Now()
	out := t.inner.Allocate(req)
	t.dur.ObserveSince(start)
	t.allocs.Inc()
	t.granted.Set(out.Total())
	return out
}
