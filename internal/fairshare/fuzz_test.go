package fairshare

import (
	"math"
	"testing"
)

// FuzzAllocate feeds arbitrary capacities, requester sets, demands and
// ledger states through every policy and asserts the Grants contract
// never breaks: one in-order grant per requester, finite non-negative
// rates, total within capacity.
func FuzzAllocate(f *testing.F) {
	f.Add(float64(100), uint8(3), uint16(0), uint16(50), int16(10), false)
	f.Add(float64(0), uint8(255), uint16(9), uint16(0), int16(-5), true)
	f.Add(math.MaxFloat64/4, uint8(1), uint16(65535), uint16(1), int16(0), false)
	f.Add(float64(1e9), uint8(170), uint16(7), uint16(12345), int16(100), true)

	ids := []ID{"a", "b", "c", "d", "e", "f", "g", "h"}

	f.Fuzz(func(t *testing.T, capacity float64, mask uint8, demandRaw, takenRaw uint16, creditRaw int16, bounded bool) {
		if math.IsNaN(capacity) || math.IsInf(capacity, 0) || capacity < 0 {
			return // the seam's precondition: a real, non-negative capacity
		}
		var book Book
		if bounded {
			book = NewShardedLedger(DefaultInitialCredit, 3)
		} else {
			book = NewLedger(DefaultInitialCredit)
		}
		for i, id := range ids {
			amt := float64(creditRaw) * float64(i+1)
			if amt > 0 {
				book.Credit(id, amt)
			} else if amt < 0 {
				book.Debit(id, -amt)
			}
		}
		var reqs []Requester
		for i, id := range ids {
			if mask&(1<<i) == 0 {
				continue
			}
			reqs = append(reqs, Requester{
				ID:     id,
				Class:  ServiceClass(i % 3),
				Demand: float64(demandRaw) * float64(i),
				Taken:  float64(takenRaw),
			})
		}
		req := AllocRequest{Capacity: capacity, Requesters: reqs, Ledger: book}
		policies := []Allocator{
			PairwiseProportional{},
			GlobalProportional{DeclaredUpload: map[ID]float64{"a": 2, "c": 5}},
			EqualSplit{},
			Withhold{},
			Favor{Members: map[ID]bool{"b": true, "d": true}},
			TitForTat{N: 3},
			BiasedContribution{Beta: 0.7},
			Classes{Weights: map[ServiceClass]float64{1: 2, 2: 0.5}},
		}
		for _, p := range policies {
			g := p.Allocate(req)
			if len(g) != len(reqs) {
				t.Fatalf("%T: %d grants for %d requesters", p, len(g), len(reqs))
			}
			var sum float64
			for i, e := range g {
				if e.ID != reqs[i].ID {
					t.Fatalf("%T: grant %d out of order: %q vs %q", p, i, e.ID, reqs[i].ID)
				}
				if e.Rate < 0 || math.IsNaN(e.Rate) || math.IsInf(e.Rate, 0) {
					t.Fatalf("%T: grant %d rate %v", p, i, e.Rate)
				}
				if d := reqs[i].Demand; d > 0 && e.Rate > d*(1+1e-9)+1e-9 {
					t.Fatalf("%T: grant %v exceeds demand %v", p, e.Rate, d)
				}
				sum += e.Rate
			}
			if sum > capacity*(1+1e-9)+1e-6 {
				t.Fatalf("%T: granted %v of capacity %v", p, sum, capacity)
			}
		}
	})
}
