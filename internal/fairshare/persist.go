package fairshare

// Ledger persistence. A peer's receipt ledger is the only state the
// allocation rule depends on; losing it on restart would zero every
// contributor's standing — Theorem 1's incentive and Corollary 1's
// fairness both assume R_i survives. Ledgers serialize to a small JSON
// document, and file saves are fully synced: temp file fsync, rename,
// parent-directory fsync, so a crash leaves either the old or the new
// ledger — never a torn one, and never a name pointing at nothing.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"

	"asymshare/internal/fsx"
)

// Ledger document versions. Version 0 (the field omitted) is the
// original exact pairwise form; version 2 adds the bounded ledger's
// bound and aggregate tail. Both remain readable forever.
const ledgerDocBounded = 2

// ledgerDoc is the serialized form. Gen is the checkpoint generation
// (see Checkpointer); plain SaveFile writes leave it zero. Bound,
// TailSum and TailN are meaningful only for version-2 (bounded)
// documents.
type ledgerDoc struct {
	V        int            `json:"v,omitempty"`
	Initial  float64        `json:"initial"`
	Received map[ID]float64 `json:"received"`
	Gen      uint64         `json:"gen,omitempty"`
	Bound    int            `json:"bound,omitempty"`
	TailSum  float64        `json:"tail_sum,omitempty"`
	TailN    uint64         `json:"tail_n,omitempty"`
}

// bookFromDoc rebuilds whichever ledger kind the document describes. A
// positive bound forces the bounded kind even for legacy pairwise
// documents (a node reconfigured with -ledger-bound migrates its
// checkpoint on first load).
func bookFromDoc(doc ledgerDoc, bound int) (Book, error) {
	if doc.V == ledgerDocBounded || bound > 0 {
		return shardedFromDoc(doc, bound)
	}
	if doc.V != 0 {
		return nil, fmt.Errorf("fairshare: load ledger: unknown version %d", doc.V)
	}
	return ledgerFromDoc(doc)
}

// doc snapshots the ledger into its serialized form.
func (l *Ledger) doc(gen uint64) ledgerDoc {
	l.mu.RLock()
	defer l.mu.RUnlock()
	doc := ledgerDoc{Initial: l.initial, Received: make(map[ID]float64, len(l.received)), Gen: gen}
	for id, v := range l.received {
		doc.Received[id] = v
	}
	return doc
}

// ledgerFromDoc validates and rebuilds an exact pairwise ledger.
func ledgerFromDoc(doc ledgerDoc) (*Ledger, error) {
	if doc.V != 0 {
		return nil, fmt.Errorf("fairshare: load ledger: version %d document needs a bounded ledger", doc.V)
	}
	l := NewLedger(doc.Initial)
	for id, v := range doc.Received {
		if v < 0 {
			return nil, fmt.Errorf("fairshare: load ledger: negative entry for %q", id)
		}
		l.received[id] = v
	}
	return l, nil
}

// SaveJSON writes the ledger state to w.
func (l *Ledger) SaveJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(l.doc(0)); err != nil {
		return fmt.Errorf("fairshare: save ledger: %w", err)
	}
	return nil
}

// LoadLedgerJSON reads a ledger previously written by SaveJSON.
func LoadLedgerJSON(r io.Reader) (*Ledger, error) {
	var doc ledgerDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("fairshare: load ledger: %w", err)
	}
	return ledgerFromDoc(doc)
}

// marshal renders the ledger with an explicit generation.
func (l *Ledger) marshal(gen uint64) ([]byte, error) {
	data, err := json.Marshal(l.doc(gen))
	if err != nil {
		return nil, fmt.Errorf("fairshare: save ledger: %w", err)
	}
	return append(data, '\n'), nil
}

// SaveFile durably persists the ledger to path on the real filesystem.
func (l *Ledger) SaveFile(path string) error {
	return l.SaveFileFS(fsx.OS, path)
}

// SaveFileFS durably persists the ledger to path through an fsx.FS.
func (l *Ledger) SaveFileFS(fsys fsx.FS, path string) error {
	data, err := l.marshal(0)
	if err != nil {
		return err
	}
	if err := fsx.WriteFileAtomic(fsys, path, data, 0o644); err != nil {
		return fmt.Errorf("fairshare: save ledger: %w", err)
	}
	return nil
}

// LoadLedgerFile reads a ledger from path on the real filesystem. A
// missing file yields a fresh ledger with the given initial credit
// (first boot).
func LoadLedgerFile(path string, initial float64) (*Ledger, error) {
	return LoadLedgerFileFS(fsx.OS, path, initial)
}

// LoadLedgerFileFS reads a ledger from path through an fsx.FS.
func LoadLedgerFileFS(fsys fsx.FS, path string, initial float64) (*Ledger, error) {
	data, err := fsx.ReadFile(fsys, path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return NewLedger(initial), nil
		}
		return nil, fmt.Errorf("fairshare: load ledger: %w", err)
	}
	doc, err := parseDoc(data)
	if err != nil {
		return nil, err
	}
	return ledgerFromDoc(doc)
}

// parseDoc unmarshals a serialized ledger document.
func parseDoc(data []byte) (ledgerDoc, error) {
	var doc ledgerDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return ledgerDoc{}, fmt.Errorf("fairshare: load ledger: %w", err)
	}
	return doc, nil
}

// isNotExistErr reports whether err means "file does not exist".
func isNotExistErr(err error) bool { return errors.Is(err, fs.ErrNotExist) }
