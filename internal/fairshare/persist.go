package fairshare

// Ledger persistence. A peer's receipt ledger is the only state the
// allocation rule depends on; losing it on restart would zero every
// contributor's standing. Ledgers serialize to a small JSON document.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ledgerDoc is the serialized form.
type ledgerDoc struct {
	Initial  float64        `json:"initial"`
	Received map[ID]float64 `json:"received"`
}

// SaveJSON writes the ledger state to w.
func (l *Ledger) SaveJSON(w io.Writer) error {
	l.mu.RLock()
	doc := ledgerDoc{Initial: l.initial, Received: make(map[ID]float64, len(l.received))}
	for id, v := range l.received {
		doc.Received[id] = v
	}
	l.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("fairshare: save ledger: %w", err)
	}
	return nil
}

// LoadLedgerJSON reads a ledger previously written by SaveJSON.
func LoadLedgerJSON(r io.Reader) (*Ledger, error) {
	var doc ledgerDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("fairshare: load ledger: %w", err)
	}
	l := NewLedger(doc.Initial)
	for id, v := range doc.Received {
		if v < 0 {
			return nil, fmt.Errorf("fairshare: load ledger: negative entry for %q", id)
		}
		l.received[id] = v
	}
	return l, nil
}

// SaveFile atomically persists the ledger to path.
func (l *Ledger) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "ledger-*")
	if err != nil {
		return fmt.Errorf("fairshare: save ledger: %w", err)
	}
	tmpName := tmp.Name()
	ok := false
	defer func() {
		if !ok {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err := l.SaveJSON(tmp); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fairshare: save ledger: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("fairshare: save ledger: %w", err)
	}
	ok = true
	return nil
}

// LoadLedgerFile reads a ledger from path. A missing file yields a
// fresh ledger with the given initial credit (first boot).
func LoadLedgerFile(path string, initial float64) (*Ledger, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return NewLedger(initial), nil
	}
	if err != nil {
		return nil, fmt.Errorf("fairshare: load ledger: %w", err)
	}
	defer f.Close()
	return LoadLedgerJSON(f)
}
