package fairshare

// Deprecated map-based allocation API, kept so out-of-tree callers of
// the pre-redesign seam keep compiling. New code builds an
// AllocRequest and consumes Grants directly.

// LegacyAllocator is the pre-redesign allocation interface.
//
// Deprecated: implement Allocator (AllocRequest/Grants) instead.
type LegacyAllocator interface {
	Allocate(capacity float64, requesters []ID, ledger *Ledger) map[ID]float64
}

// legacyAdapter bridges a LegacyAllocator onto the new seam.
type legacyAdapter struct{ inner LegacyAllocator }

// WrapLegacy adapts an old map-returning allocator to the Allocator
// interface. Per-requester context (Class, Demand, Taken) is invisible
// to the wrapped policy, and the request's LedgerView must be a
// *Ledger (any other view is presented to the legacy policy as an
// empty ledger).
//
// Deprecated: migrate the policy to Allocate(AllocRequest) Grants.
func WrapLegacy(inner LegacyAllocator) Allocator {
	return legacyAdapter{inner: inner}
}

// Allocate implements Allocator.
func (a legacyAdapter) Allocate(req AllocRequest) Grants {
	ledger, ok := req.Ledger.(*Ledger)
	if !ok || ledger == nil {
		ledger = NewLedger(0)
	}
	ids := make([]ID, len(req.Requesters))
	for i, r := range req.Requesters {
		ids[i] = r.ID
	}
	m := a.inner.Allocate(req.Capacity, ids, ledger)
	out := req.grants()
	for _, id := range ids {
		out = append(out, Grant{ID: id, Rate: m[id]})
	}
	return out
}

// AllocateMap runs a new-style policy through the old call shape and
// returns a fresh map — the one-line migration for call sites that
// still index shares by ID.
//
// Deprecated: build an AllocRequest and use Grants.
func AllocateMap(a Allocator, capacity float64, requesters []ID, view LedgerView) map[ID]float64 {
	return a.Allocate(NewRequest(capacity, requesters, view)).Map()
}

// Sum totals a map-shaped allocation.
//
// Deprecated: use Grants.Total.
func Sum(alloc map[ID]float64) float64 {
	var s float64
	for _, v := range alloc {
		s += v
	}
	return s
}
