package fairshare

// Post-paper allocation policies: the Biased Contribution Index of
// Awasthi & Singh and the class-weighted differentiated service of
// Zhang et al. (see PAPERS.md). Both ride the same AllocRequest seam
// as the paper's Eq. (2)/(3) rules.

// DefaultBCIBeta is the default bias of BiasedContribution toward
// bandwidth given over bandwidth taken.
const DefaultBCIBeta = 0.8

// BiasedContribution implements the Biased Contribution Index
// (Awasthi & Singh): each requester j is weighted by
//
//	bci_j = (β·recv_j + ε) / (β·recv_j + (1−β)·taken_j + ε)
//
// where recv_j is the bandwidth this peer received from j (the local
// ledger) and taken_j the bandwidth j has already taken from this peer
// (Requester.Taken). A pure contributor scores 1, a pure consumer
// decays toward ε/((1−β)·taken) ≈ 0, and β > 1/2 biases the index so
// giving bandwidth raises standing faster than taking lowers it —
// cheaper bookkeeping than a full pairwise ratio matrix because taken
// is a single per-requester scalar the peer already tracks.
type BiasedContribution struct {
	// Beta is the contribution bias in (0, 1); values outside the open
	// interval fall back to DefaultBCIBeta.
	Beta float64
}

var _ Allocator = BiasedContribution{}

// Allocate implements Allocator.
func (b BiasedContribution) Allocate(req AllocRequest) Grants {
	beta := b.Beta
	if beta <= 0 || beta >= 1 {
		beta = DefaultBCIBeta
	}
	const eps = DefaultInitialCredit
	out := req.grants()
	view := req.view()
	for _, r := range req.Requesters {
		recv, taken := view.Received(r.ID), r.Taken
		if taken < 0 {
			taken = 0
		}
		w := (beta*recv + eps) / (beta*recv + (1-beta)*taken + eps)
		out = append(out, Grant{ID: r.ID, Rate: w})
	}
	return distributeWeights(req.Capacity, req.Requesters, out)
}

// Classes implements differentiated service classes (Zhang et al.):
// each requester's weight is its class weight times its contribution
// standing, so a premium class receives proportionally more bandwidth
// at equal contribution while free riders still starve within every
// class.
type Classes struct {
	// Weights maps a ServiceClass to its multiplier. Classes absent
	// from the map (including the zero class) weigh 1; non-positive
	// weights exclude the class entirely.
	Weights map[ServiceClass]float64
}

var _ Allocator = Classes{}

// classWeight returns the multiplier for c.
func (cl Classes) classWeight(c ServiceClass) float64 {
	if w, ok := cl.Weights[c]; ok {
		return w
	}
	return 1
}

// Allocate implements Allocator.
func (cl Classes) Allocate(req AllocRequest) Grants {
	out := req.grants()
	view := req.view()
	var total float64
	for _, r := range req.Requesters {
		total += view.Received(r.ID)
	}
	for _, r := range req.Requesters {
		cw := cl.classWeight(r.Class)
		if cw < 0 {
			cw = 0
		}
		// Contribution standing scales within the class; the equal-
		// weight bootstrap mirrors PairwiseProportional when nobody
		// has contributed yet.
		w := cw
		if total > 0 {
			w = cw * view.Received(r.ID)
		}
		out = append(out, Grant{ID: r.ID, Rate: w})
	}
	return distributeWeights(req.Capacity, req.Requesters, out)
}
