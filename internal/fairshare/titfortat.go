package fairshare

import "sort"

// TitForTat is a BitTorrent-style baseline: the peer "unchokes" only
// its top-N contributors (by ledger standing) among current requesters
// and splits capacity evenly among them. The paper argues its system
// does not need such symmetric instantaneous reciprocation because
// contributions even out asymptotically (Sec. II-A); this policy exists
// so that claim can be measured — under tit-for-tat a low-rate or
// bursty contributor is frequently choked even though its long-run
// contribution is honest.
type TitForTat struct {
	// N is the unchoke slot count; values < 1 behave as 1.
	N int
}

var _ Allocator = TitForTat{}

// Allocate implements Allocator.
func (tt TitForTat) Allocate(capacity float64, requesters []ID, ledger *Ledger) map[ID]float64 {
	out := make(map[ID]float64, len(requesters))
	if capacity <= 0 || len(requesters) == 0 {
		return out
	}
	n := tt.N
	if n < 1 {
		n = 1
	}
	ranked := sortedIDs(requesters) // deterministic tie-break
	sort.SliceStable(ranked, func(i, j int) bool {
		return ledger.Received(ranked[i]) > ledger.Received(ranked[j])
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	// Unchoking the top n even at zero standing doubles as the
	// optimistic-unchoke bootstrap.
	unchoked := ranked[:n]
	share := capacity / float64(len(unchoked))
	for _, id := range unchoked {
		out[id] = share
	}
	return out
}
