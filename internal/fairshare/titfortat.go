package fairshare

import "sort"

// TitForTat is a BitTorrent-style baseline: the peer "unchokes" only
// its top-N contributors (by ledger standing) among current requesters
// and splits capacity evenly among them. The paper argues its system
// does not need such symmetric instantaneous reciprocation because
// contributions even out asymptotically (Sec. II-A); this policy exists
// so that claim can be measured — under tit-for-tat a low-rate or
// bursty contributor is frequently choked even though its long-run
// contribution is honest.
type TitForTat struct {
	// N is the unchoke slot count; values < 1 behave as 1.
	N int
}

var _ Allocator = TitForTat{}

// Allocate implements Allocator.
func (tt TitForTat) Allocate(req AllocRequest) Grants {
	out := req.grants()
	for _, r := range req.Requesters {
		out = append(out, Grant{ID: r.ID})
	}
	if req.Capacity <= 0 || len(out) == 0 {
		return out
	}
	n := tt.N
	if n < 1 {
		n = 1
	}
	if n > len(out) {
		n = len(out)
	}
	view := req.view()
	ranked := make([]int, len(out))
	for i := range ranked {
		ranked[i] = i
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		ra, rb := ranked[a], ranked[b]
		va, vb := view.Received(out[ra].ID), view.Received(out[rb].ID)
		if va != vb {
			return va > vb
		}
		return out[ra].ID < out[rb].ID // deterministic tie-break
	})
	// Unchoking the top n even at zero standing doubles as the
	// optimistic-unchoke bootstrap. distributeWeights splits capacity
	// evenly over the unchoked (weight 1) and water-fills any Demand
	// caps among them.
	for _, i := range ranked[:n] {
		out[i].Rate = 1
	}
	distributeWeights(req.Capacity, req.Requesters, out)
	return out
}
