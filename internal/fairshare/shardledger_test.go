package fairshare

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"asymshare/internal/fsx"
	"asymshare/internal/metrics"
)

func TestShardedLedgerBasics(t *testing.T) {
	l := NewShardedLedger(0.5, 64)
	if l.Bound() < 64 {
		t.Fatalf("Bound = %d, want >= 64", l.Bound())
	}
	if got := l.Received("stranger"); got != 0.5 {
		t.Errorf("stranger Received = %v, want initial 0.5", got)
	}
	l.Credit("a", 10)
	l.Credit("a", 5)
	if got := l.Received("a"); !almostEqual(got, 15.5) {
		t.Errorf("a Received = %v, want initial+15", got)
	}
	l.Debit("a", 100) // clamps at zero
	if got := l.Received("a"); got != 0 {
		t.Errorf("after over-debit Received = %v", got)
	}
	l.Credit("a", -3) // ignored
	l.Debit("a", -3)  // ignored
	if got := l.Received("a"); got != 0 {
		t.Errorf("negative amounts changed standing: %v", got)
	}
	// Debiting a stranger pins an entry so the penalty sticks.
	l.Debit("cheat", 0.2)
	if got := l.Received("cheat"); !almostEqual(got, 0.3) {
		t.Errorf("debited stranger Received = %v, want 0.3", got)
	}
}

func TestShardedLedgerRev(t *testing.T) {
	l := NewShardedLedger(0, 16)
	r0 := l.Rev()
	l.Credit("a", 1)
	if l.Rev() == r0 {
		t.Error("Credit did not bump revision")
	}
	r1 := l.Rev()
	l.Credit("a", -1)
	if l.Rev() != r1 {
		t.Error("ignored credit bumped revision")
	}
	l.Debit("a", 0.5)
	if l.Rev() == r1 {
		t.Error("Debit did not bump revision")
	}
	r2 := l.Rev()
	l.Decay(0.9)
	if l.Rev() == r2 {
		t.Error("Decay did not bump revision")
	}
}

// TestShardedLedgerBoundAndEviction floods the ledger with far more
// counterparts than its bound and checks memory stays capped, evicted
// mass lands in the tail, and Total is conserved exactly.
func TestShardedLedgerBoundAndEviction(t *testing.T) {
	const bound = 64
	l := NewShardedLedger(0, bound)
	var want float64
	for i := 0; i < 10*bound; i++ {
		amt := float64(i%7 + 1)
		l.Credit(ID(fmt.Sprintf("peer-%04d", i)), amt)
		want += amt
	}
	if n := l.Entries(); n > l.Bound() {
		t.Errorf("Entries = %d exceeds bound %d", n, l.Bound())
	}
	sum, n := l.Tail()
	if n == 0 || sum <= 0 {
		t.Errorf("no eviction after 10x-bound inserts: tail (%v, %d)", sum, n)
	}
	// Conservation is exact (pure additions commute), not approximate.
	if got := l.Total(); math.Abs(got-want) > 1e-6 {
		t.Errorf("Total = %v, want %v conserved across evictions", got, want)
	}
	// Untracked counterparts answer the initial credit — the tail is a
	// conservation reservoir, never an inheritable standing.
	if got := l.Received("never-seen"); got != 0 {
		t.Errorf("untracked Received = %v, want initial 0", got)
	}
	evicted := ID("peer-0000")
	if _, tracked := l.Snapshot()[evicted]; tracked {
		t.Skip("peer-0000 unexpectedly survived eviction")
	}
	if got := l.Received(evicted); got != 0 {
		t.Errorf("evicted Received = %v, want initial 0 (standing forfeited)", got)
	}
}

// TestShardedLedgerEvictsMinimum checks eviction picks the lowest
// standing: heavy contributors keep exact entries.
func TestShardedLedgerEvictsMinimum(t *testing.T) {
	// Bound 16 = one entry per shard; every same-shard insertion evicts.
	l := NewShardedLedger(0, 16)
	l.Credit("heavy", 1000)
	s := l.shardFor("heavy")
	// Find another ID in the same shard and credit less.
	var light ID
	for i := 0; ; i++ {
		id := ID(fmt.Sprintf("light-%d", i))
		if l.shardFor(id) == s && id != "heavy" {
			light = id
			break
		}
	}
	l.Credit(light, 1)
	if got := l.Received("heavy"); !almostEqual(got, 1000) {
		t.Errorf("heavy contributor evicted: Received = %v", got)
	}
	sum, n := l.Tail()
	if n != 1 || !almostEqual(sum, 1) {
		t.Errorf("tail = (%v, %d), want the light entry (1, 1)", sum, n)
	}
}

func TestShardedLedgerDecay(t *testing.T) {
	l := NewShardedLedger(0, 16)
	l.Credit("a", 100)
	// Force an eviction so the tail has mass.
	s := l.shardFor("a")
	for i := 0; ; i++ {
		id := ID(fmt.Sprintf("b-%d", i))
		if l.shardFor(id) == s {
			l.Credit(id, 10)
			break
		}
	}
	before := l.Total()
	l.Decay(0.5)
	if got := l.Total(); !almostEqual(got, before/2) {
		t.Errorf("Total after Decay(0.5) = %v, want %v", got, before/2)
	}
	if got := l.Received("a"); !almostEqual(got, 50) {
		t.Errorf("tracked entry after decay = %v, want 50", got)
	}
	l.Decay(1.5) // out of range: ignored
	l.Decay(-1)
	if got := l.Total(); !almostEqual(got, before/2) {
		t.Errorf("out-of-range Decay changed Total: %v", got)
	}
}

func TestShardedLedgerConcurrency(t *testing.T) {
	l := NewShardedLedger(DefaultInitialCredit, 128).Instrument(metrics.NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ID(fmt.Sprintf("w%d-p%d", w, i%50))
				l.Credit(id, 1)
				_ = l.Received(id)
				if i%100 == 0 {
					l.Debit(id, 0.5)
					l.Decay(0.99)
					_ = l.Total()
					_ = l.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Entries() > l.Bound() {
		t.Errorf("Entries %d exceeds bound %d after concurrent use", l.Entries(), l.Bound())
	}
}

// TestShardedCheckpointRoundtrip saves a bounded ledger through the
// Checkpointer and recovers it via RecoverBook: version-2 document,
// bound, entries and tail all survive.
func TestShardedCheckpointRoundtrip(t *testing.T) {
	efs := fsx.NewErrFS(1)
	if err := efs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	l := NewShardedLedger(0.25, 16)
	l.Credit("alice", 100)
	l.Credit("bob", 40)
	// Evict something so the tail is non-trivial.
	s := l.shardFor("alice")
	for i := 0; ; i++ {
		id := ID(fmt.Sprintf("x-%d", i))
		if l.shardFor(id) == s {
			l.Credit(id, 1)
			break
		}
	}
	c := NewCheckpointer(CheckpointConfig{Ledger: l, Path: "/d/ledger", FS: efs})
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	got, rec, err := RecoverBook(efs, "/d/ledger", 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Loaded || rec.Gen != 1 || rec.CorruptSlots != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	sl, ok := got.(*ShardedLedger)
	if !ok {
		t.Fatalf("recovered %T, want *ShardedLedger (kind preserved with bound=0)", got)
	}
	if sl.Bound() != l.Bound() {
		t.Errorf("recovered bound %d, want %d", sl.Bound(), l.Bound())
	}
	if !almostEqual(sl.Received("alice"), l.Received("alice")) {
		t.Errorf("alice = %v, want %v", sl.Received("alice"), l.Received("alice"))
	}
	wantSum, wantN := l.Tail()
	gotSum, gotN := sl.Tail()
	if !almostEqual(gotSum, wantSum) || gotN != wantN {
		t.Errorf("tail = (%v, %d), want (%v, %d)", gotSum, gotN, wantSum, wantN)
	}
	if !almostEqual(sl.Total(), l.Total()) {
		t.Errorf("Total = %v, want %v", sl.Total(), l.Total())
	}
}

// TestRecoverBookMigratesLegacyCheckpoint: a node reconfigured with a
// ledger bound loads its old exact-pairwise checkpoint into a bounded
// ledger without losing standing.
func TestRecoverBookMigratesLegacyCheckpoint(t *testing.T) {
	efs := fsx.NewErrFS(1)
	if err := efs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	old := NewLedger(DefaultInitialCredit)
	old.Credit("alice", 100)
	old.Credit("bob", 40)
	c := NewCheckpointer(CheckpointConfig{Ledger: old, Path: "/d/ledger", FS: efs})
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	got, rec, err := RecoverBook(efs, "/d/ledger", DefaultInitialCredit, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Loaded {
		t.Fatalf("recovery = %+v", rec)
	}
	sl, ok := got.(*ShardedLedger)
	if !ok {
		t.Fatalf("recovered %T, want migration to *ShardedLedger", got)
	}
	if !almostEqual(sl.Received("alice"), old.Received("alice")) ||
		!almostEqual(sl.Received("bob"), old.Received("bob")) {
		t.Errorf("standing lost in migration: alice %v bob %v", sl.Received("alice"), sl.Received("bob"))
	}
}

// TestRecoverLedgerRejectsBoundedCheckpoint: the legacy entry point
// cannot silently downgrade a bounded checkpoint (its tail would be
// dropped); it restarts fresh and flags the slot.
func TestRecoverLedgerRejectsBoundedCheckpoint(t *testing.T) {
	efs := fsx.NewErrFS(1)
	if err := efs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	l := NewShardedLedger(0, 16)
	l.Credit("alice", 100)
	c := NewCheckpointer(CheckpointConfig{Ledger: l, Path: "/d/ledger", FS: efs})
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	got, rec, err := RecoverLedger(efs, "/d/ledger", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Loaded || rec.CorruptSlots == 0 {
		t.Errorf("recovery = %+v, want fresh + flagged slot", rec)
	}
	if got.Received("alice") != 0.5 {
		t.Errorf("fresh ledger Received = %v, want initial", got.Received("alice"))
	}
}

// TestRecoverBookFirstBootKinds: no checkpoint on disk yields the kind
// the bound argument requests.
func TestRecoverBookFirstBootKinds(t *testing.T) {
	efs := fsx.NewErrFS(1)
	b, rec, err := RecoverBook(efs, "/none/ledger", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Loaded || rec.CorruptSlots != 0 {
		t.Errorf("first boot recovery = %+v", rec)
	}
	if _, ok := b.(*Ledger); !ok {
		t.Errorf("bound 0 first boot = %T, want *Ledger", b)
	}
	b, _, err = RecoverBook(efs, "/none/ledger", 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*ShardedLedger); !ok {
		t.Errorf("bounded first boot = %T, want *ShardedLedger", b)
	}
}

// BenchmarkLedgerRealloc proves the bounded-ledger acceptance claim: a
// 100k-distinct-requester workload holds memory at the bound and keeps
// a realloc tick O(active requesters) — compare the sharded ledger
// against the unbounded exact map at the same tick size.
func BenchmarkLedgerRealloc(b *testing.B) {
	const distinct = 100_000
	const active = 256 // requesters in one realloc tick
	ids := make([]ID, distinct)
	for i := range ids {
		ids[i] = ID(fmt.Sprintf("peer-%06d", i))
	}
	reqs := make([]Requester, active)
	for i := range reqs {
		reqs[i] = Requester{ID: ids[i*(distinct/active)]}
	}
	run := func(b *testing.B, book Book) {
		for _, id := range ids {
			book.Credit(id, 1)
		}
		p := PairwiseProportional{}
		req := AllocRequest{Capacity: 1e6, Requesters: reqs, Ledger: book, Scratch: make(Grants, 0, active)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.Scratch = p.Allocate(req)[:0]
		}
	}
	b.Run("exact", func(b *testing.B) { run(b, NewLedger(DefaultInitialCredit)) })
	b.Run("sharded", func(b *testing.B) {
		l := NewShardedLedger(DefaultInitialCredit, DefaultLedgerBound)
		run(b, l)
		if l.Entries() > l.Bound() {
			b.Fatalf("Entries %d exceeds bound %d", l.Entries(), l.Bound())
		}
	})
}
