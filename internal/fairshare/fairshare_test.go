package fairshare

import (
	"math"
	"sync"
	"testing"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestLedgerInitialCredit(t *testing.T) {
	l := NewLedger(0.5)
	if got := l.Received("alice"); got != 0.5 {
		t.Errorf("unseen Received = %v, want initial 0.5", got)
	}
	l.Credit("alice", 2)
	if got := l.Received("alice"); got != 2.5 {
		t.Errorf("Received = %v, want 2.5", got)
	}
	l.Credit("alice", -1) // ignored
	if got := l.Received("alice"); got != 2.5 {
		t.Errorf("Received after negative credit = %v", got)
	}
	if got := NewLedger(-3).Received("x"); got != 0 {
		t.Errorf("negative initial clamped: %v", got)
	}
}

func TestLedgerDecay(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 10)
	l.Credit("b", 4)
	l.Decay(0.5)
	if got := l.Received("a"); !almostEqual(got, 5) {
		t.Errorf("a after decay = %v", got)
	}
	if got := l.Received("b"); !almostEqual(got, 2) {
		t.Errorf("b after decay = %v", got)
	}
	l.Decay(1.5) // out of range: no-op
	if got := l.Received("a"); !almostEqual(got, 5) {
		t.Errorf("a after bad decay = %v", got)
	}
	if got := l.Total(); !almostEqual(got, 7) {
		t.Errorf("Total = %v", got)
	}
}

func TestLedgerSnapshotIsCopy(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 1)
	snap := l.Snapshot()
	snap["a"] = 99
	if got := l.Received("a"); got != 1 {
		t.Errorf("snapshot mutation leaked: %v", got)
	}
}

func TestLedgerConcurrency(t *testing.T) {
	l := NewLedger(DefaultInitialCredit)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Credit("x", 1)
				l.Received("x")
				l.Total()
			}
		}()
	}
	wg.Wait()
	want := 8000 + DefaultInitialCredit
	if got := l.Received("x"); !almostEqual(got, want) {
		t.Errorf("Received = %v, want %v", got, want)
	}
}

func TestPairwiseProportionalShares(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 300)
	l.Credit("b", 100)
	alloc := PairwiseProportional{}.Allocate(NewRequest(1000, []ID{"a", "b"}, l))
	if !almostEqual(alloc.Rate("a"), 750) || !almostEqual(alloc.Rate("b"), 250) {
		t.Errorf("alloc = %v", alloc)
	}
	if !almostEqual(alloc.Total(), 1000) {
		t.Errorf("Total = %v", alloc.Total())
	}
}

func TestPairwiseProportionalOnlyRequestersShare(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 100)
	l.Credit("b", 100)
	l.Credit("c", 800)
	// c is idle: a and b split everything.
	alloc := PairwiseProportional{}.Allocate(NewRequest(600, []ID{"a", "b"}, l))
	if !almostEqual(alloc.Rate("a"), 300) || !almostEqual(alloc.Rate("b"), 300) {
		t.Errorf("alloc = %v", alloc)
	}
	if _, ok := alloc.Map()["c"]; ok {
		t.Error("idle peer received bandwidth")
	}
}

func TestPairwiseProportionalBootstrap(t *testing.T) {
	// With zero ledger and zero initial credit the policy falls back to
	// an even split rather than dividing by zero.
	l := NewLedger(0)
	alloc := PairwiseProportional{}.Allocate(NewRequest(900, []ID{"a", "b", "c"}, l))
	for _, id := range []ID{"a", "b", "c"} {
		if !almostEqual(alloc.Rate(id), 300) {
			t.Errorf("bootstrap alloc[%s] = %v", id, alloc.Rate(id))
		}
	}
	// With the paper's small positive initial values the split is also
	// even, via the proportional path.
	l2 := NewLedger(DefaultInitialCredit)
	l2.Credit("a", 0) // touch nothing
	alloc2 := PairwiseProportional{}.Allocate(NewRequest(900, []ID{"a", "b", "c"}, l2))
	for _, id := range []ID{"a", "b", "c"} {
		if !almostEqual(alloc2.Rate(id), 300) {
			t.Errorf("seeded bootstrap alloc[%s] = %v", id, alloc2.Rate(id))
		}
	}
}

func TestPairwiseProportionalEdgeCases(t *testing.T) {
	l := NewLedger(0)
	// Zero capacity still answers one grant per requester — all zero.
	got := PairwiseProportional{}.Allocate(NewRequest(0, []ID{"a"}, l))
	if len(got) != 1 || got.Total() != 0 {
		t.Errorf("zero capacity alloc = %v", got)
	}
	if got := (PairwiseProportional{}).Allocate(NewRequest(100, nil, l)); len(got) != 0 {
		t.Errorf("no requesters alloc = %v", got)
	}
}

func TestGlobalProportionalUsesDeclarations(t *testing.T) {
	g := GlobalProportional{DeclaredUpload: map[ID]float64{"a": 100, "b": 300}}
	alloc := g.Allocate(NewRequest(800, []ID{"a", "b"}, nil))
	if !almostEqual(alloc.Rate("a"), 200) || !almostEqual(alloc.Rate("b"), 600) {
		t.Errorf("alloc = %v", alloc)
	}
	// The flaw the paper fixes: inflating your declaration inflates your
	// share, with no local check.
	g.DeclaredUpload["a"] = 1e9
	alloc = g.Allocate(NewRequest(800, []ID{"a", "b"}, nil))
	if alloc.Rate("a") < 799 {
		t.Errorf("over-declaring did not capture bandwidth: %v", alloc)
	}
}

func TestGlobalProportionalFallbacks(t *testing.T) {
	g := GlobalProportional{}
	alloc := g.Allocate(NewRequest(100, []ID{"a", "b"}, nil))
	if !almostEqual(alloc.Rate("a"), 50) || !almostEqual(alloc.Rate("b"), 50) {
		t.Errorf("zero declarations alloc = %v", alloc)
	}
	if got := g.Allocate(NewRequest(100, nil, nil)); len(got) != 0 {
		t.Errorf("no requesters = %v", got)
	}
}

func TestEqualSplit(t *testing.T) {
	alloc := EqualSplit{}.Allocate(NewRequest(90, []ID{"a", "b", "c"}, nil))
	for _, id := range []ID{"a", "b", "c"} {
		if !almostEqual(alloc.Rate(id), 30) {
			t.Errorf("alloc[%s] = %v", id, alloc.Rate(id))
		}
	}
}

func TestWithhold(t *testing.T) {
	alloc := Withhold{}.Allocate(NewRequest(1000, []ID{"a", "b"}, NewLedger(1)))
	if alloc.Total() != 0 {
		t.Errorf("withholding peer allocated %v", alloc)
	}
}

func TestFavorServesOnlyCoalition(t *testing.T) {
	f := Favor{Members: map[ID]bool{"a": true, "c": true}}
	alloc := f.Allocate(NewRequest(100, []ID{"a", "b", "c"}, nil))
	if !almostEqual(alloc.Rate("a"), 50) || !almostEqual(alloc.Rate("c"), 50) {
		t.Errorf("alloc = %v", alloc)
	}
	if alloc.Rate("b") != 0 {
		t.Errorf("non-member got %v", alloc.Rate("b"))
	}
	// No member requesting: nothing granted.
	if got := f.Allocate(NewRequest(100, []ID{"b"}, nil)); got.Total() != 0 {
		t.Errorf("alloc to non-members = %v", got)
	}
}

func TestSortedIDs(t *testing.T) {
	in := []ID{"c", "a", "b"}
	got := sortedIDs(in)
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("sortedIDs = %v", got)
	}
	if in[0] != "c" {
		t.Error("sortedIDs mutated its input")
	}
}
