package fairshare

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestLedgerInitialCredit(t *testing.T) {
	l := NewLedger(0.5)
	if got := l.Received("alice"); got != 0.5 {
		t.Errorf("unseen Received = %v, want initial 0.5", got)
	}
	l.Credit("alice", 2)
	if got := l.Received("alice"); got != 2.5 {
		t.Errorf("Received = %v, want 2.5", got)
	}
	l.Credit("alice", -1) // ignored
	if got := l.Received("alice"); got != 2.5 {
		t.Errorf("Received after negative credit = %v", got)
	}
	if got := NewLedger(-3).Received("x"); got != 0 {
		t.Errorf("negative initial clamped: %v", got)
	}
}

func TestLedgerDecay(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 10)
	l.Credit("b", 4)
	l.Decay(0.5)
	if got := l.Received("a"); !almostEqual(got, 5) {
		t.Errorf("a after decay = %v", got)
	}
	if got := l.Received("b"); !almostEqual(got, 2) {
		t.Errorf("b after decay = %v", got)
	}
	l.Decay(1.5) // out of range: no-op
	if got := l.Received("a"); !almostEqual(got, 5) {
		t.Errorf("a after bad decay = %v", got)
	}
	if got := l.Total(); !almostEqual(got, 7) {
		t.Errorf("Total = %v", got)
	}
}

func TestLedgerSnapshotIsCopy(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 1)
	snap := l.Snapshot()
	snap["a"] = 99
	if got := l.Received("a"); got != 1 {
		t.Errorf("snapshot mutation leaked: %v", got)
	}
}

func TestLedgerConcurrency(t *testing.T) {
	l := NewLedger(DefaultInitialCredit)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Credit("x", 1)
				l.Received("x")
				l.Total()
			}
		}()
	}
	wg.Wait()
	want := 8000 + DefaultInitialCredit
	if got := l.Received("x"); !almostEqual(got, want) {
		t.Errorf("Received = %v, want %v", got, want)
	}
}

func TestPairwiseProportionalShares(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 300)
	l.Credit("b", 100)
	alloc := PairwiseProportional{}.Allocate(1000, []ID{"a", "b"}, l)
	if !almostEqual(alloc["a"], 750) || !almostEqual(alloc["b"], 250) {
		t.Errorf("alloc = %v", alloc)
	}
	if !almostEqual(Sum(alloc), 1000) {
		t.Errorf("Sum = %v", Sum(alloc))
	}
}

func TestPairwiseProportionalOnlyRequestersShare(t *testing.T) {
	l := NewLedger(0)
	l.Credit("a", 100)
	l.Credit("b", 100)
	l.Credit("c", 800)
	// c is idle: a and b split everything.
	alloc := PairwiseProportional{}.Allocate(600, []ID{"a", "b"}, l)
	if !almostEqual(alloc["a"], 300) || !almostEqual(alloc["b"], 300) {
		t.Errorf("alloc = %v", alloc)
	}
	if _, ok := alloc["c"]; ok {
		t.Error("idle peer received bandwidth")
	}
}

func TestPairwiseProportionalBootstrap(t *testing.T) {
	// With zero ledger and zero initial credit the policy falls back to
	// an even split rather than dividing by zero.
	l := NewLedger(0)
	alloc := PairwiseProportional{}.Allocate(900, []ID{"a", "b", "c"}, l)
	for _, id := range []ID{"a", "b", "c"} {
		if !almostEqual(alloc[id], 300) {
			t.Errorf("bootstrap alloc[%s] = %v", id, alloc[id])
		}
	}
	// With the paper's small positive initial values the split is also
	// even, via the proportional path.
	l2 := NewLedger(DefaultInitialCredit)
	l2.Credit("a", 0) // touch nothing
	alloc2 := PairwiseProportional{}.Allocate(900, []ID{"a", "b", "c"}, l2)
	for _, id := range []ID{"a", "b", "c"} {
		if !almostEqual(alloc2[id], 300) {
			t.Errorf("seeded bootstrap alloc[%s] = %v", id, alloc2[id])
		}
	}
}

func TestPairwiseProportionalEdgeCases(t *testing.T) {
	l := NewLedger(0)
	if got := (PairwiseProportional{}).Allocate(0, []ID{"a"}, l); len(got) != 0 {
		t.Errorf("zero capacity alloc = %v", got)
	}
	if got := (PairwiseProportional{}).Allocate(100, nil, l); len(got) != 0 {
		t.Errorf("no requesters alloc = %v", got)
	}
}

func TestGlobalProportionalUsesDeclarations(t *testing.T) {
	g := GlobalProportional{DeclaredUpload: map[ID]float64{"a": 100, "b": 300}}
	alloc := g.Allocate(800, []ID{"a", "b"}, nil)
	if !almostEqual(alloc["a"], 200) || !almostEqual(alloc["b"], 600) {
		t.Errorf("alloc = %v", alloc)
	}
	// The flaw the paper fixes: inflating your declaration inflates your
	// share, with no local check.
	g.DeclaredUpload["a"] = 1e9
	alloc = g.Allocate(800, []ID{"a", "b"}, nil)
	if alloc["a"] < 799 {
		t.Errorf("over-declaring did not capture bandwidth: %v", alloc)
	}
}

func TestGlobalProportionalFallbacks(t *testing.T) {
	g := GlobalProportional{}
	alloc := g.Allocate(100, []ID{"a", "b"}, nil)
	if !almostEqual(alloc["a"], 50) || !almostEqual(alloc["b"], 50) {
		t.Errorf("zero declarations alloc = %v", alloc)
	}
	if got := g.Allocate(100, nil, nil); len(got) != 0 {
		t.Errorf("no requesters = %v", got)
	}
}

func TestEqualSplit(t *testing.T) {
	alloc := EqualSplit{}.Allocate(90, []ID{"a", "b", "c"}, nil)
	for _, id := range []ID{"a", "b", "c"} {
		if !almostEqual(alloc[id], 30) {
			t.Errorf("alloc[%s] = %v", id, alloc[id])
		}
	}
}

func TestWithhold(t *testing.T) {
	alloc := Withhold{}.Allocate(1000, []ID{"a", "b"}, NewLedger(1))
	if Sum(alloc) != 0 {
		t.Errorf("withholding peer allocated %v", alloc)
	}
}

func TestFavorServesOnlyCoalition(t *testing.T) {
	f := Favor{Members: map[ID]bool{"a": true, "c": true}}
	alloc := f.Allocate(100, []ID{"a", "b", "c"}, nil)
	if !almostEqual(alloc["a"], 50) || !almostEqual(alloc["c"], 50) {
		t.Errorf("alloc = %v", alloc)
	}
	if alloc["b"] != 0 {
		t.Errorf("non-member got %v", alloc["b"])
	}
	// No member requesting: nothing granted.
	if got := f.Allocate(100, []ID{"b"}, nil); Sum(got) != 0 {
		t.Errorf("alloc to non-members = %v", got)
	}
}

func TestAllocationConservationProperty(t *testing.T) {
	// For every policy that serves, shares are non-negative and sum to
	// at most capacity (and exactly capacity for the serving policies).
	ids := []ID{"a", "b", "c", "d", "e"}
	l := NewLedger(DefaultInitialCredit)
	l.Credit("a", 5)
	l.Credit("c", 11)
	serving := []Allocator{
		PairwiseProportional{},
		GlobalProportional{DeclaredUpload: map[ID]float64{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}},
		EqualSplit{},
	}
	prop := func(capRaw uint16, mask uint8) bool {
		capacity := float64(capRaw)
		var requesters []ID
		for i, id := range ids {
			if mask&(1<<i) != 0 {
				requesters = append(requesters, id)
			}
		}
		for _, policy := range serving {
			alloc := policy.Allocate(capacity, requesters, l)
			var sum float64
			for _, v := range alloc {
				if v < 0 {
					return false
				}
				sum += v
			}
			if sum > capacity+1e-6 {
				return false
			}
			if capacity > 0 && len(requesters) > 0 && !almostEqual(sum, capacity) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortedIDs(t *testing.T) {
	in := []ID{"c", "a", "b"}
	got := sortedIDs(in)
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("sortedIDs = %v", got)
	}
	if in[0] != "c" {
		t.Error("sortedIDs mutated its input")
	}
}
