package fairshare

// ShardedLedger is the bounded-memory receipt ledger. The exact
// pairwise Ledger is O(all peers ever seen) — fatal for a
// million-requester peer — so this implementation keeps only the top-K
// standings exactly (hash-sharded maps with a per-shard entry cap) and
// folds everything it evicts into a decayed aggregate tail, in the
// spirit of the space-saving heavy-hitter sketches.
//
// Eviction picks the shard's minimum entry — the counterpart with the
// least standing, i.e. the one whose exact value matters least to a
// proportional allocator — and folds it into the tail. The tail is a
// conservation reservoir, not a standing oracle: an untracked
// counterpart always reads the initial credit, exactly like a stranger
// to the exact Ledger, so a free rider can never inherit evicted
// standing (tail-mean fallbacks whitewash: anyone not worth tracking
// would read as an average contributor). The approximation therefore
// only costs the low end of the distribution: heavy contributors keep
// exact standing, an evicted light contributor forfeits its remainder
// to the aggregate and restarts from the initial credit, and total
// standing (Total = tracked + tail) is conserved exactly across
// evictions.
//
// Memory is bounded by Bound entries regardless of how many distinct
// requesters appear, and a realloc tick costs O(active requesters):
// each Received is one shard map lookup.

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"asymshare/internal/metrics"
)

// DefaultLedgerBound is the tracked-entry cap used when a caller asks
// for a bounded ledger without choosing a bound.
const DefaultLedgerBound = 4096

// ledgerShardCount is the number of hash shards. Power of two so the
// shard index is a mask.
const ledgerShardCount = 16

// Bounded-ledger metric names (see DESIGN.md §7).
const (
	MetricLedgerEvictions = "fairshare_ledger_evictions_total"
	MetricLedgerEntries   = "fairshare_ledger_entries"
	MetricLedgerTailSum   = "fairshare_ledger_tail_sum"
)

// ledgerShard is one lock-striped slice of the tracked entries.
type ledgerShard struct {
	mu       sync.RWMutex
	received map[ID]float64
}

// ShardedLedger implements Book with bounded memory. Safe for
// concurrent use.
type ShardedLedger struct {
	initial  float64
	bound    int
	perShard int
	shards   [ledgerShardCount]ledgerShard
	rev      atomic.Uint64

	tailMu  sync.Mutex
	tailSum float64 // total evicted standing (decays with Decay)
	tailN   uint64  // counterparts ever evicted

	creditEvents  *metrics.Counter
	debitEvents   *metrics.Counter
	creditedUnits *metrics.Gauge
	debitedUnits  *metrics.Gauge
	evictions     *metrics.Counter
	entries       *metrics.Gauge
	tailGauge     *metrics.Gauge
}

var _ Book = (*ShardedLedger)(nil)

// NewShardedLedger returns a bounded ledger tracking at most `bound`
// counterparts exactly (DefaultLedgerBound when bound <= 0), with the
// given initial credit for strangers.
func NewShardedLedger(initial float64, bound int) *ShardedLedger {
	if initial < 0 {
		initial = 0
	}
	if bound <= 0 {
		bound = DefaultLedgerBound
	}
	perShard := (bound + ledgerShardCount - 1) / ledgerShardCount
	if perShard < 1 {
		perShard = 1
	}
	l := &ShardedLedger{initial: initial, bound: perShard * ledgerShardCount, perShard: perShard}
	for i := range l.shards {
		l.shards[i].received = make(map[ID]float64)
	}
	return l
}

// Bound returns the maximum number of exactly-tracked counterparts.
func (l *ShardedLedger) Bound() int { return l.bound }

// shardFor hashes an ID onto its shard (FNV-1a).
func (l *ShardedLedger) shardFor(id ID) *ledgerShard {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &l.shards[h&(ledgerShardCount-1)]
}

// evictMinLocked folds the shard's minimum entry into the tail. The
// shard lock must be held. O(perShard), but runs only when an
// insertion overfills a shard — steady-state ticks over tracked
// requesters never evict.
func (l *ShardedLedger) evictMinLocked(s *ledgerShard) {
	var (
		minID ID
		minV  float64
		first = true
	)
	for id, v := range s.received {
		if first || v < minV || (v == minV && id < minID) {
			minID, minV, first = id, v, false
		}
	}
	if first {
		return
	}
	delete(s.received, minID)
	l.tailMu.Lock()
	l.tailSum += minV
	l.tailN++
	l.tailGauge.Set(l.tailSum)
	l.tailMu.Unlock()
	l.evictions.Inc()
	l.entries.Add(-1)
}

// upsertLocked inserts or replaces an entry, then evicts the shard
// minimum if the insertion overfilled it — the new entry competes with
// the incumbents, so a heavy contributor is never displaced by a
// light newcomer. The shard lock must be held.
func (l *ShardedLedger) upsertLocked(s *ledgerShard, id ID, v float64) {
	if _, ok := s.received[id]; !ok {
		l.entries.Add(1)
	}
	s.received[id] = v
	if len(s.received) > l.perShard {
		l.evictMinLocked(s)
	}
}

// Credit records that `amount` bandwidth was received from a
// counterpart. Negative amounts are ignored. A previously evicted (or
// never seen) counterpart re-enters at the initial credit plus the
// amount — its evicted remainder stays in the tail, forfeited.
func (l *ShardedLedger) Credit(from ID, amount float64) {
	if amount <= 0 {
		return
	}
	s := l.shardFor(from)
	s.mu.Lock()
	v, ok := s.received[from]
	if !ok {
		v = l.initial
	}
	l.upsertLocked(s, from, v+amount)
	s.mu.Unlock()
	l.rev.Add(1)
	l.creditEvents.Inc()
	l.creditedUnits.Add(amount)
}

// Debit removes `amount` standing from a counterpart, clamping at zero
// (see Ledger.Debit for the slashing rationale). Debiting an untracked
// counterpart pins a zero-or-positive entry so the penalty sticks.
func (l *ShardedLedger) Debit(from ID, amount float64) {
	if amount <= 0 {
		return
	}
	s := l.shardFor(from)
	s.mu.Lock()
	v, ok := s.received[from]
	if !ok {
		v = l.initial
	}
	v -= amount
	if v < 0 {
		v = 0
	}
	l.upsertLocked(s, from, v)
	s.mu.Unlock()
	l.rev.Add(1)
	l.debitEvents.Inc()
	l.debitedUnits.Add(amount)
}

// Received returns the standing of a counterpart: exact for tracked
// entries, the initial credit for everyone else — never the tail, so
// untracked requesters carry no inherited standing.
func (l *ShardedLedger) Received(from ID) float64 {
	s := l.shardFor(from)
	s.mu.RLock()
	v, ok := s.received[from]
	s.mu.RUnlock()
	if ok {
		return v
	}
	return l.initial
}

// Decay multiplies every tracked entry and the aggregate tail by
// factor in (0, 1] — same semantics as Ledger.Decay, extended to the
// evicted mass so untracked standing fades at the same rate.
func (l *ShardedLedger) Decay(factor float64) {
	if factor >= 1 || factor < 0 {
		return
	}
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for id := range s.received {
			s.received[id] *= factor
		}
		s.mu.Unlock()
	}
	l.tailMu.Lock()
	l.tailSum *= factor
	l.tailGauge.Set(l.tailSum)
	l.tailMu.Unlock()
	l.rev.Add(1)
}

// Rev implements Book.
func (l *ShardedLedger) Rev() uint64 { return l.rev.Load() }

// Snapshot returns a copy of the exactly-tracked entries. The tail is
// not expanded (its members are unknown by design); use Tail for the
// aggregate.
func (l *ShardedLedger) Snapshot() map[ID]float64 {
	out := make(map[ID]float64)
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.RLock()
		for id, v := range s.received {
			out[id] = v
		}
		s.mu.RUnlock()
	}
	return out
}

// Tail returns the aggregate standing and population of evicted
// counterparts.
func (l *ShardedLedger) Tail() (sum float64, n uint64) {
	l.tailMu.Lock()
	defer l.tailMu.Unlock()
	return l.tailSum, l.tailN
}

// Entries returns how many counterparts are tracked exactly.
func (l *ShardedLedger) Entries() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.RLock()
		n += len(s.received)
		s.mu.RUnlock()
	}
	return n
}

// Total returns tracked plus evicted standing — conserved exactly
// across evictions.
func (l *ShardedLedger) Total() float64 {
	var sum float64
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.RLock()
		for _, v := range s.received {
			sum += v
		}
		s.mu.RUnlock()
	}
	l.tailMu.Lock()
	sum += l.tailSum
	l.tailMu.Unlock()
	return sum
}

// Instrument attaches credit/debit/eviction metrics. Safe with a nil
// registry; returns the ledger for chaining.
func (l *ShardedLedger) Instrument(reg *metrics.Registry) *ShardedLedger {
	l.creditEvents = reg.Counter(MetricCreditEvents, "Ledger credit operations applied.")
	l.debitEvents = reg.Counter(MetricDebitEvents, "Ledger debit operations applied (audit penalties).")
	l.creditedUnits = reg.Gauge(MetricCreditedUnits, "Cumulative ledger units credited (bytes received).")
	l.debitedUnits = reg.Gauge(MetricDebitedUnits, "Cumulative ledger units debited (audit penalties).")
	l.evictions = reg.Counter(MetricLedgerEvictions, "Ledger entries evicted into the aggregate tail.")
	l.entries = reg.Gauge(MetricLedgerEntries, "Counterparts tracked exactly by the bounded ledger.")
	l.tailGauge = reg.Gauge(MetricLedgerTailSum, "Aggregate standing of evicted counterparts.")
	l.entries.Set(float64(l.Entries()))
	return l
}

// instrument implements Book.
func (l *ShardedLedger) instrument(reg *metrics.Registry) { l.Instrument(reg) }

// doc snapshots the ledger into its serialized form.
func (l *ShardedLedger) doc(gen uint64) ledgerDoc {
	d := ledgerDoc{
		V:        ledgerDocBounded,
		Initial:  l.initial,
		Received: l.Snapshot(),
		Gen:      gen,
		Bound:    l.bound,
	}
	l.tailMu.Lock()
	d.TailSum, d.TailN = l.tailSum, l.tailN
	l.tailMu.Unlock()
	return d
}

// marshal implements Book.
func (l *ShardedLedger) marshal(gen uint64) ([]byte, error) {
	data, err := json.Marshal(l.doc(gen))
	if err != nil {
		return nil, fmt.Errorf("fairshare: save ledger: %w", err)
	}
	return append(data, '\n'), nil
}

// shardedFromDoc validates and rebuilds a bounded ledger. The stored
// bound wins; `bound` is the caller's fallback for docs without one
// (legacy pairwise checkpoints migrated into a bounded ledger).
func shardedFromDoc(doc ledgerDoc, bound int) (*ShardedLedger, error) {
	if doc.Bound > 0 {
		bound = doc.Bound
	}
	if doc.TailSum < 0 {
		return nil, fmt.Errorf("fairshare: load ledger: negative tail sum")
	}
	l := NewShardedLedger(doc.Initial, bound)
	l.tailSum, l.tailN = doc.TailSum, doc.TailN
	for id, v := range doc.Received {
		if v < 0 {
			return nil, fmt.Errorf("fairshare: load ledger: negative entry for %q", id)
		}
		s := l.shardFor(id)
		l.upsertLocked(s, id, v)
	}
	return l, nil
}
