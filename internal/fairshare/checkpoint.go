package fairshare

// Periodic ledger checkpointing. The receipt ledger R_i is the node's
// incentive memory: Eq. (2) allocates upload bandwidth in proportion to
// it, so a peer that loses its ledger on a crash also forgets who
// earned standing with it — exactly the state Theorem 1's "cooperation
// is optimal" argument assumes persists. The Checkpointer bounds that
// loss to one checkpoint interval.
//
// Checkpoints alternate between two slots (`path` and `path.1`), each
// written with the full fsync discipline of SaveFileFS and stamped with
// a monotonically increasing generation. Recovery reads both slots and
// the newest parseable generation wins, so a crash mid-write — or bit
// rot in one slot — costs at most one interval of credits, never the
// whole ledger.

import (
	"context"
	"sync"
	"time"

	"asymshare/internal/fsx"
	"asymshare/internal/metrics"
)

// DefaultCheckpointInterval is how often a dirty ledger is saved when
// the caller does not choose an interval.
const DefaultCheckpointInterval = 10 * time.Second

// Checkpoint metric names (see DESIGN.md §7).
const (
	MetricCheckpoints          = "fairshare_checkpoints_total"
	MetricCheckpointErrors     = "fairshare_checkpoint_errors_total"
	MetricCheckpointDuration   = "fairshare_checkpoint_duration_seconds"
	MetricCheckpointGeneration = "fairshare_checkpoint_generation"
)

// CheckpointConfig configures a Checkpointer.
type CheckpointConfig struct {
	// Ledger is the book to persist — either ledger kind. Required.
	Ledger Book

	// Path is the primary slot; the secondary is Path + ".1".
	Path string

	// Interval between periodic saves; DefaultCheckpointInterval if
	// zero or negative.
	Interval time.Duration

	// FS is the filesystem seam; nil means fsx.OS.
	FS fsx.FS

	// Gen is the generation recovered from disk (see RecoverLedger);
	// the first checkpoint is stamped Gen+1.
	Gen uint64

	// Metrics receives checkpoint counters; nil disables.
	Metrics *metrics.Registry
}

// Checkpointer periodically saves a ledger with alternating dual-slot
// writes. Create with NewCheckpointer; drive with Run and/or Checkpoint.
type Checkpointer struct {
	ledger   Book
	path     string
	interval time.Duration
	fsys     fsx.FS

	mu       sync.Mutex
	gen      uint64 // generation of the last completed checkpoint
	savedRev uint64 // ledger revision at that checkpoint
	dirty    bool   // no checkpoint yet (savedRev unset)

	saves    *metrics.Counter
	errs     *metrics.Counter
	duration *metrics.Histogram
	genGauge *metrics.Gauge
}

// NewCheckpointer builds a Checkpointer; it does not start any
// goroutine.
func NewCheckpointer(cfg CheckpointConfig) *Checkpointer {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultCheckpointInterval
	}
	if cfg.FS == nil {
		cfg.FS = fsx.OS
	}
	return &Checkpointer{
		ledger:   cfg.Ledger,
		path:     cfg.Path,
		interval: cfg.Interval,
		fsys:     cfg.FS,
		gen:      cfg.Gen,
		dirty:    true,
		saves:    cfg.Metrics.Counter(MetricCheckpoints, "Ledger checkpoints written."),
		errs:     cfg.Metrics.Counter(MetricCheckpointErrors, "Ledger checkpoints that failed."),
		duration: cfg.Metrics.Histogram(MetricCheckpointDuration, "Time to write one ledger checkpoint.", metrics.UnitSeconds),
		genGauge: cfg.Metrics.Gauge(MetricCheckpointGeneration, "Generation of the newest ledger checkpoint."),
	}
}

// slotPath returns the file a given generation is written to.
func (c *Checkpointer) slotPath(gen uint64) string {
	if gen%2 == 0 {
		return c.path + ".1"
	}
	return c.path
}

// Checkpoint saves the ledger now if it changed since the last save.
// Safe for concurrent use; saves are serialized.
func (c *Checkpointer) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rev := c.ledger.Rev()
	if !c.dirty && rev == c.savedRev {
		return nil
	}
	start := time.Now()
	gen := c.gen + 1
	data, err := c.ledger.marshal(gen)
	if err != nil {
		c.errs.Inc()
		return err
	}
	if err := fsx.WriteFileAtomic(c.fsys, c.slotPath(gen), data, 0o644); err != nil {
		c.errs.Inc()
		return err
	}
	c.gen = gen
	c.savedRev = rev
	c.dirty = false
	c.saves.Inc()
	c.genGauge.Set(float64(gen))
	c.duration.ObserveSince(start)
	return nil
}

// Gen returns the generation of the last completed checkpoint.
func (c *Checkpointer) Gen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Run checkpoints on every interval tick until ctx is cancelled, then
// writes one final checkpoint so an orderly shutdown loses nothing.
// Errors are absorbed (and counted): a full disk must not stop the
// node, and the previous checkpoint slots remain intact.
func (c *Checkpointer) Run(ctx context.Context) {
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Checkpoint()
		case <-ctx.Done():
			c.Checkpoint()
			return
		}
	}
}

// LedgerRecovery describes what RecoverLedger found.
type LedgerRecovery struct {
	// Gen is the generation of the slot that won (0 if none loaded).
	Gen uint64

	// Loaded reports whether any slot was read successfully; false on
	// first boot or when every slot was damaged.
	Loaded bool

	// CorruptSlots counts slots that existed but would not parse.
	CorruptSlots int
}

// RecoverLedger loads the newest valid exact-pairwise checkpoint from
// the dual slots of path. Damage is absorbed: if both slots are
// corrupt the node restarts with a fresh ledger (initial credit only)
// rather than refusing to boot, and the damage is reported in
// LedgerRecovery.
func RecoverLedger(fsys fsx.FS, path string, initial float64) (*Ledger, LedgerRecovery, error) {
	b, rec, err := RecoverBook(fsys, path, initial, 0)
	if err != nil {
		return nil, rec, err
	}
	l, ok := b.(*Ledger)
	if !ok {
		// A bounded (version-2) checkpoint on disk: counted as corrupt
		// for this legacy entry point, fresh ledger wins.
		rec = LedgerRecovery{CorruptSlots: rec.CorruptSlots + 1}
		return NewLedger(initial), rec, nil
	}
	return l, rec, nil
}

// RecoverBook loads the newest valid checkpoint from the dual slots of
// path, rebuilding whichever ledger kind the document (or the bound
// argument) calls for. A positive bound requests the bounded kind: a
// fresh ShardedLedger on first boot, and migration of any legacy
// pairwise checkpoint found on disk. bound <= 0 preserves the
// checkpoint's own kind, defaulting to the exact pairwise ledger on
// first boot. Damage is absorbed as in RecoverLedger.
func RecoverBook(fsys fsx.FS, path string, initial float64, bound int) (Book, LedgerRecovery, error) {
	if fsys == nil {
		fsys = fsx.OS
	}
	var (
		best    Book
		rec     LedgerRecovery
		bestGen uint64
	)
	for _, slot := range []string{path, path + ".1"} {
		data, err := fsx.ReadFile(fsys, slot)
		if err != nil {
			// Missing slots are normal (first boot, or only one
			// generation ever written); other read errors count as
			// corrupt but do not block recovery of the sibling slot.
			if !isNotExistErr(err) {
				rec.CorruptSlots++
			}
			continue
		}
		doc, err := parseDoc(data)
		if err != nil {
			rec.CorruptSlots++
			continue
		}
		b, err := bookFromDoc(doc, bound)
		if err != nil {
			rec.CorruptSlots++
			continue
		}
		if best == nil || doc.Gen > bestGen {
			best, bestGen = b, doc.Gen
		}
	}
	if best == nil {
		if bound > 0 {
			return NewShardedLedger(initial, bound), rec, nil
		}
		return NewLedger(initial), rec, nil
	}
	rec.Gen = bestGen
	rec.Loaded = true
	return best, rec, nil
}
