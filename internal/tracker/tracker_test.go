package tracker

import (
	"context"
	"testing"
	"time"
)

func startServer(t *testing.T, maxTTL time.Duration) *Server {
	t.Helper()
	s := NewServer(maxTTL)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAnnounceAndLookup(t *testing.T) {
	s := startServer(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	addr := s.Addr().String()

	if err := Announce(ctx, addr, 42, "peerA:7070", 0); err != nil {
		t.Fatal(err)
	}
	if err := Announce(ctx, addr, 42, "peerB:7070", 0); err != nil {
		t.Fatal(err)
	}
	if err := Announce(ctx, addr, 43, "peerC:7070", 0); err != nil {
		t.Fatal(err)
	}

	got, err := Lookup(ctx, addr, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "peerA:7070" || got[1] != "peerB:7070" {
		t.Fatalf("Lookup(42) = %v", got)
	}
	got, err = Lookup(ctx, addr, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Lookup(99) = %v, want empty", got)
	}
	if s.FileCount() != 2 {
		t.Errorf("FileCount = %d", s.FileCount())
	}
}

func TestAnnounceRefreshIsIdempotent(t *testing.T) {
	s := startServer(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	addr := s.Addr().String()
	for i := 0; i < 3; i++ {
		if err := Announce(ctx, addr, 1, "p:1", 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Lookup(ctx, addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Lookup = %v", got)
	}
}

func TestExpiry(t *testing.T) {
	s := NewServer(time.Hour)
	// Direct (no network) with a fake clock.
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return now }
	s.announce(announceMsg{FileID: 7, Addr: "p:1", TTLSec: 60})
	s.announce(announceMsg{FileID: 7, Addr: "p:2"}) // maxTTL (1h)
	if got := s.Lookup(7); len(got) != 2 {
		t.Fatalf("Lookup = %v", got)
	}
	now = now.Add(2 * time.Minute)
	if got := s.Lookup(7); len(got) != 1 || got[0] != "p:2" {
		t.Fatalf("after short TTL expiry: %v", got)
	}
	now = now.Add(2 * time.Hour)
	if got := s.Lookup(7); len(got) != 0 {
		t.Fatalf("after full expiry: %v", got)
	}
	if s.FileCount() != 0 {
		t.Errorf("FileCount = %d after expiry", s.FileCount())
	}
}

func TestTTLCappedByServer(t *testing.T) {
	s := NewServer(time.Minute)
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return now }
	s.announce(announceMsg{FileID: 1, Addr: "p:1", TTLSec: 3600}) // wants 1h
	now = now.Add(2 * time.Minute)                                // > server max
	if got := s.Lookup(1); len(got) != 0 {
		t.Fatalf("entry outlived server cap: %v", got)
	}
}

func TestLookupBadAddress(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := Lookup(ctx, "127.0.0.1:1", 1); err == nil {
		t.Error("lookup against closed port succeeded")
	}
	if err := Announce(ctx, "127.0.0.1:1", 1, "p", 0); err == nil {
		t.Error("announce against closed port succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := startServer(t, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Error("Start after Close succeeded")
	}
}

func TestConcurrentAnnounces(t *testing.T) {
	s := startServer(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	addr := s.Addr().String()
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			errCh <- Announce(ctx, addr, uint64(g%4), "peer:"+string(rune('a'+g)), 0)
		}(g)
	}
	for i := 0; i < 16; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if s.FileCount() != 4 {
		t.Errorf("FileCount = %d, want 4", s.FileCount())
	}
}
