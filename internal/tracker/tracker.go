// Package tracker implements the out-of-band content-location service
// the paper assumes (Sec. II: "services like BitTorrent assume some
// out-of-band mechanisms to locate content"). Owners announce which
// peers hold messages of a file-id; users look the set up before
// fetching. The tracker is soft-state: announcements expire unless
// refreshed, so departed peers age out.
//
// The protocol is three JSON-over-frame messages on the asymshare wire
// framing: ANNOUNCE {fileID, addr, ttl}, LOOKUP {fileID} and ADDRS
// {addrs}. The tracker is discovery-only — it never sees message
// payloads, digests or secrets.
package tracker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"asymshare/internal/metrics"
	"asymshare/internal/transport"
	"asymshare/internal/wire"
)

// Frame types carried over the wire framing, in a range disjoint from
// the peer protocol.
const (
	typeAnnounce wire.Type = 64 + iota
	typeLookup
	typeAddrs
	typeOK
)

// DefaultTTL is how long an announcement lives without refresh.
const DefaultTTL = 10 * time.Minute

// ErrBadRequest is returned for malformed tracker messages.
var ErrBadRequest = errors.New("tracker: malformed request")

type announceMsg struct {
	FileID uint64 `json:"fileId"`
	Addr   string `json:"addr"`
	TTLSec int    `json:"ttlSec,omitempty"`
}

type lookupMsg struct {
	FileID uint64 `json:"fileId"`
}

type addrsMsg struct {
	Addrs []string `json:"addrs"`
}

type entry struct {
	addr    string
	expires time.Time
}

// Exported tracker metric names (see DESIGN.md §7).
const (
	MetricAnnounces = "tracker_announces_total"
	MetricLookups   = "tracker_lookups_total"
)

// Server is a tracker instance.
type Server struct {
	maxTTL time.Duration
	now    func() time.Time
	tr     transport.Transport

	announces *metrics.Counter
	lookups   *metrics.Counter

	mu     sync.Mutex
	files  map[uint64]map[string]entry
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// NewServer returns a tracker. maxTTL caps client-requested TTLs; zero
// means DefaultTTL.
func NewServer(maxTTL time.Duration) *Server {
	if maxTTL <= 0 {
		maxTTL = DefaultTTL
	}
	s := &Server{
		maxTTL: maxTTL,
		now:    time.Now,
		files:  make(map[uint64]map[string]entry),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s
}

// Instrument attaches announce/lookup counters. Call before Start; a
// nil registry leaves the server uninstrumented.
func (s *Server) Instrument(reg *metrics.Registry) {
	s.announces = reg.Counter(MetricAnnounces, "Announce requests accepted.")
	s.lookups = reg.Counter(MetricLookups, "Lookup requests served.")
}

// SetTransport swaps the listener transport (nil keeps real TCP).
// Call before Start; tests attach an in-memory netsim host here.
func (s *Server) SetTransport(tr transport.Transport) { s.tr = tr }

// Start listens and serves.
func (s *Server) Start(addr string) error {
	tr := s.tr
	if tr == nil {
		tr = transport.Default
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("tracker: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("tracker: closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listen address, or nil before Start.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the tracker and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	// Abort reads when the server closes.
	stop := make(chan struct{})
	defer close(stop)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-s.ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch frame.Type {
		case typeAnnounce:
			var msg announceMsg
			if err := json.Unmarshal(frame.Payload, &msg); err != nil || msg.Addr == "" {
				wire.SendError(conn, wire.CodeBadRequest, "malformed announce")
				return
			}
			s.announce(msg)
			s.announces.Inc()
			if err := wire.WriteFrame(conn, typeOK, nil); err != nil {
				return
			}
		case typeLookup:
			var msg lookupMsg
			if err := json.Unmarshal(frame.Payload, &msg); err != nil {
				wire.SendError(conn, wire.CodeBadRequest, "malformed lookup")
				return
			}
			blob, err := json.Marshal(addrsMsg{Addrs: s.Lookup(msg.FileID)})
			if err != nil {
				return
			}
			s.lookups.Inc()
			if err := wire.WriteFrame(conn, typeAddrs, blob); err != nil {
				return
			}
		case wire.TypeBye:
			return
		default:
			wire.SendError(conn, wire.CodeBadRequest, "unexpected frame "+frame.Type.String())
			return
		}
	}
}

func (s *Server) announce(msg announceMsg) {
	ttl := s.maxTTL
	if msg.TTLSec > 0 {
		if requested := time.Duration(msg.TTLSec) * time.Second; requested < ttl {
			ttl = requested
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.files[msg.FileID]
	if !ok {
		m = make(map[string]entry)
		s.files[msg.FileID] = m
	}
	m[msg.Addr] = entry{addr: msg.Addr, expires: s.now().Add(ttl)}
}

// Lookup returns the live peer addresses for a file-id, sorted.
func (s *Server) Lookup(fileID uint64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.files[fileID]
	now := s.now()
	out := make([]string, 0, len(m))
	for addr, e := range m {
		if e.expires.Before(now) {
			delete(m, addr)
			continue
		}
		out = append(out, addr)
	}
	if len(m) == 0 {
		delete(s.files, fileID)
	}
	sort.Strings(out)
	return out
}

// FileCount returns the number of file-ids with live announcements.
func (s *Server) FileCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// Announce registers addr as holding messages of fileID with the given
// tracker over real TCP. A zero ttl requests the tracker's maximum.
func Announce(ctx context.Context, trackerAddr string, fileID uint64, peerAddr string, ttl time.Duration) error {
	return AnnounceVia(ctx, transport.Default, trackerAddr, fileID, peerAddr, ttl)
}

// AnnounceVia is Announce over an explicit transport.
func AnnounceVia(ctx context.Context, tr transport.Transport, trackerAddr string, fileID uint64, peerAddr string, ttl time.Duration) error {
	conn, err := dial(ctx, tr, trackerAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	msg := announceMsg{FileID: fileID, Addr: peerAddr, TTLSec: int(ttl / time.Second)}
	blob, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, typeAnnounce, blob); err != nil {
		return err
	}
	if _, err := wire.Expect(conn, typeOK); err != nil {
		return fmt.Errorf("tracker: announce: %w", err)
	}
	return wire.WriteFrame(conn, wire.TypeBye, nil)
}

// Lookup queries a tracker for the peers holding fileID over real
// TCP.
func Lookup(ctx context.Context, trackerAddr string, fileID uint64) ([]string, error) {
	return LookupVia(ctx, transport.Default, trackerAddr, fileID)
}

// LookupVia is Lookup over an explicit transport.
func LookupVia(ctx context.Context, tr transport.Transport, trackerAddr string, fileID uint64) ([]string, error) {
	conn, err := dial(ctx, tr, trackerAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	blob, err := json.Marshal(lookupMsg{FileID: fileID})
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, typeLookup, blob); err != nil {
		return nil, err
	}
	frame, err := wire.Expect(conn, typeAddrs)
	if err != nil {
		return nil, fmt.Errorf("tracker: lookup: %w", err)
	}
	var msg addrsMsg
	if err := json.Unmarshal(frame.Payload, &msg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	_ = wire.WriteFrame(conn, wire.TypeBye, nil)
	return msg.Addrs, nil
}

func dial(ctx context.Context, tr transport.Transport, addr string) (net.Conn, error) {
	if tr == nil {
		tr = transport.Default
	}
	conn, err := tr.DialContext(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("tracker: dial %s: %w", addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	return conn, nil
}

var _ io.Closer = (*Server)(nil)
