package gf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func allFields(t *testing.T) []Field {
	t.Helper()
	fields := make([]Field, 0, 4)
	for _, bits := range Widths() {
		f, err := New(bits)
		if err != nil {
			t.Fatalf("New(%d): %v", bits, err)
		}
		fields = append(fields, f)
	}
	return fields
}

func TestNewUnsupported(t *testing.T) {
	for _, bits := range []uint{0, 1, 2, 3, 5, 7, 12, 24, 64} {
		if _, err := New(bits); !errors.Is(err, ErrUnsupportedBits) {
			t.Errorf("New(%d) error = %v, want ErrUnsupportedBits", bits, err)
		}
	}
}

func TestNewReturnsSharedInstance(t *testing.T) {
	a, err := New(Bits8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Bits8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("New(8) returned distinct instances, want shared")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(5) did not panic")
		}
	}()
	MustNew(5)
}

func TestFieldMetadata(t *testing.T) {
	for _, f := range allFields(t) {
		if got := f.Order(); got != uint64(1)<<f.Bits() {
			t.Errorf("GF(2^%d).Order() = %d", f.Bits(), got)
		}
		if got := f.Mask(); uint64(got) != f.Order()-1 {
			t.Errorf("GF(2^%d).Mask() = %#x", f.Bits(), got)
		}
	}
}

// sampleElements returns a deterministic mix of structured and random
// non-trivial elements of the field.
func sampleElements(f Field, n int) []uint32 {
	rng := rand.New(rand.NewSource(int64(f.Bits())))
	out := []uint32{0, 1, 2, f.Mask(), f.Mask() >> 1, 3}
	for len(out) < n {
		out = append(out, rng.Uint32()&f.Mask())
	}
	return out[:n]
}

func TestAddIsXorAndSelfInverse(t *testing.T) {
	for _, f := range allFields(t) {
		for _, a := range sampleElements(f, 50) {
			for _, b := range sampleElements(f, 20) {
				s := f.Add(a, b)
				if s != (a^b)&f.Mask() {
					t.Fatalf("GF(2^%d): Add(%#x,%#x) = %#x", f.Bits(), a, b, s)
				}
				if f.Add(s, b) != a {
					t.Fatalf("GF(2^%d): addition is not self-inverse", f.Bits())
				}
			}
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for _, f := range allFields(t) {
		for _, a := range sampleElements(f, 100) {
			if got := f.Mul(a, 1); got != a {
				t.Fatalf("GF(2^%d): %#x * 1 = %#x", f.Bits(), a, got)
			}
			if got := f.Mul(a, 0); got != 0 {
				t.Fatalf("GF(2^%d): %#x * 0 = %#x", f.Bits(), a, got)
			}
			if got := f.Mul(0, a); got != 0 {
				t.Fatalf("GF(2^%d): 0 * %#x = %#x", f.Bits(), a, got)
			}
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	for _, f := range allFields(t) {
		elems := sampleElements(f, 25)
		for _, a := range elems {
			for _, b := range elems {
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("GF(2^%d): mul not commutative at %#x,%#x", f.Bits(), a, b)
				}
			}
		}
		small := elems[:12]
		for _, a := range small {
			for _, b := range small {
				for _, c := range small {
					if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
						t.Fatalf("GF(2^%d): mul not associative at %#x,%#x,%#x", f.Bits(), a, b, c)
					}
					left := f.Mul(a, f.Add(b, c))
					right := f.Add(f.Mul(a, b), f.Mul(a, c))
					if left != right {
						t.Fatalf("GF(2^%d): not distributive at %#x,%#x,%#x", f.Bits(), a, b, c)
					}
				}
			}
		}
	}
}

func TestMulExhaustiveGF16AgainstPolyMulMod(t *testing.T) {
	f := MustNew(Bits4)
	const m = uint64(0x13)
	for a := uint32(0); a < 16; a++ {
		for b := uint32(0); b < 16; b++ {
			want := uint32(polyMulMod(uint64(a), uint64(b), m))
			if got := f.Mul(a, b); got != want {
				t.Fatalf("GF(16): %#x * %#x = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestMulGF256AgainstPolyMulMod(t *testing.T) {
	f := MustNew(Bits8)
	const m = uint64(0x11D)
	for a := uint32(0); a < 256; a++ {
		for b := uint32(0); b < 256; b += 7 {
			want := uint32(polyMulMod(uint64(a), uint64(b), m))
			if got := f.Mul(a, b); got != want {
				t.Fatalf("GF(256): %#x * %#x = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestMulLargeFieldsAgainstPolyMulMod(t *testing.T) {
	cases := []struct {
		bits uint
		m    uint64
	}{
		{Bits16, uint64(1)<<16 | poly16&0xFFFF},
		{Bits32, uint64(1)<<32 | poly32},
	}
	for _, tc := range cases {
		f := MustNew(tc.bits)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 3000; i++ {
			a := rng.Uint32() & f.Mask()
			b := rng.Uint32() & f.Mask()
			want := uint32(polyMulMod(uint64(a), uint64(b), tc.m))
			if got := f.Mul(a, b); got != want {
				t.Fatalf("GF(2^%d): %#x * %#x = %#x, want %#x", tc.bits, a, b, got, want)
			}
		}
	}
}

func TestInvAndDiv(t *testing.T) {
	for _, f := range allFields(t) {
		if _, err := f.Inv(0); !errors.Is(err, ErrDivideByZero) {
			t.Errorf("GF(2^%d): Inv(0) error = %v", f.Bits(), err)
		}
		if _, err := f.Div(5&f.Mask(), 0); !errors.Is(err, ErrDivideByZero) {
			t.Errorf("GF(2^%d): Div(_, 0) error = %v", f.Bits(), err)
		}
		for _, a := range sampleElements(f, 200) {
			if a == 0 {
				if q, err := f.Div(0, 3); err != nil || q != 0 {
					t.Fatalf("GF(2^%d): Div(0,3) = %#x, %v", f.Bits(), q, err)
				}
				continue
			}
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("GF(2^%d): Inv(%#x): %v", f.Bits(), a, err)
			}
			if got := f.Mul(a, inv); got != 1 {
				t.Fatalf("GF(2^%d): %#x * inv = %#x, want 1", f.Bits(), a, got)
			}
			for _, b := range sampleElements(f, 10) {
				q, err := f.Div(b, a)
				if err != nil {
					t.Fatal(err)
				}
				if f.Mul(q, a) != b {
					t.Fatalf("GF(2^%d): Div inconsistent with Mul", f.Bits())
				}
			}
		}
	}
}

func TestInvExhaustiveSmallFields(t *testing.T) {
	for _, bits := range []uint{Bits4, Bits8} {
		f := MustNew(bits)
		for a := uint32(1); a < uint32(f.Order()); a++ {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatal(err)
			}
			if f.Mul(a, inv) != 1 {
				t.Fatalf("GF(2^%d): Inv(%#x) wrong", bits, a)
			}
		}
	}
}

func TestExp(t *testing.T) {
	for _, f := range allFields(t) {
		if got := f.Exp(0, 0); got != 1 {
			t.Errorf("GF(2^%d): 0^0 = %#x, want 1", f.Bits(), got)
		}
		if got := f.Exp(0, 5); got != 0 {
			t.Errorf("GF(2^%d): 0^5 = %#x, want 0", f.Bits(), got)
		}
		for _, a := range sampleElements(f, 20) {
			if a == 0 {
				continue
			}
			// a^(q-1) == 1 (Lagrange).
			if got := f.Exp(a, f.Order()-1); got != 1 {
				t.Fatalf("GF(2^%d): %#x^(q-1) = %#x, want 1", f.Bits(), a, got)
			}
			// Repeated-multiplication cross-check for small exponents.
			want := uint32(1)
			for e := uint64(0); e < 16; e++ {
				if got := f.Exp(a, e); got != want {
					t.Fatalf("GF(2^%d): %#x^%d = %#x, want %#x", f.Bits(), a, e, got, want)
				}
				want = f.Mul(want, a)
			}
		}
	}
}

func TestExpMatchesGenericForTableFields(t *testing.T) {
	for _, bits := range []uint{Bits4, Bits8, Bits16} {
		f := MustNew(bits)
		rng := rand.New(rand.NewSource(int64(bits)))
		for i := 0; i < 300; i++ {
			a := rng.Uint32() & f.Mask()
			n := rng.Uint64()
			if got, want := f.Exp(a, n), expGeneric(f, a, n); got != want {
				t.Fatalf("GF(2^%d): Exp(%#x, %d) = %#x, want %#x", bits, a, n, got, want)
			}
		}
	}
}

func TestMulInverseProperty(t *testing.T) {
	f := MustNew(Bits32)
	prop := func(a, b uint32) bool {
		if a == 0 {
			a = 1
		}
		p := f.Mul(a, b)
		q, err := f.Div(p, a)
		return err == nil && q == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFrobeniusIsAdditive(t *testing.T) {
	// In characteristic 2, squaring is a field automorphism:
	// (a+b)^2 == a^2 + b^2.
	for _, f := range allFields(t) {
		prop := func(a, b uint32) bool {
			a &= f.Mask()
			b &= f.Mask()
			lhs := f.Mul(f.Add(a, b), f.Add(a, b))
			rhs := f.Add(f.Mul(a, a), f.Mul(b, b))
			return lhs == rhs
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("GF(2^%d): %v", f.Bits(), err)
		}
	}
}

func TestNoZeroDivisors(t *testing.T) {
	for _, f := range allFields(t) {
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 1000; i++ {
			a := rng.Uint32()&f.Mask() | 1
			b := rng.Uint32()&f.Mask() | 1
			if f.Mul(a, b) == 0 {
				t.Fatalf("GF(2^%d): zero divisor %#x * %#x", f.Bits(), a, b)
			}
		}
	}
}
