package gf

// Log/antilog table implementation for GF(2^p) with p <= 16. The tables
// are built from a primitive polynomial, so alpha = x = 2 generates the
// multiplicative group and
//
//	exp[i]  = alpha^i            for 0 <= i < 2*(q-1)
//	log[a]  = discrete log of a  for 1 <= a < q
//
// The exp table is doubled so products exp[log a + log b] need no modular
// reduction.

import "fmt"

type tableField struct {
	bits uint
	mask uint32
	q    uint32
	exp  []uint32
	log  []uint32
}

var _ Field = (*tableField)(nil)

// newTableField builds the tables for GF(2^bits) defined by the given
// primitive polynomial (with the leading x^bits term included in poly's
// bit pattern at position bits). It returns an error if the polynomial
// does not generate the full multiplicative group, which would indicate
// a non-primitive polynomial.
func newTableField(bits uint, poly uint64) (*tableField, error) {
	if bits == 0 || bits > 16 {
		return nil, fmt.Errorf("%w: %d bits for table field", ErrUnsupportedBits, bits)
	}
	q := uint32(1) << bits
	f := &tableField{
		bits: bits,
		mask: q - 1,
		q:    q,
		exp:  make([]uint32, 2*(q-1)),
		log:  make([]uint32, q),
	}
	reduced := uint32(poly) & f.mask // poly with leading term stripped
	x := uint32(1)
	for i := uint32(0); i < q-1; i++ {
		f.exp[i] = x
		if x != 1 && f.log[x] != 0 {
			return nil, fmt.Errorf("gf: polynomial %#x is not primitive for GF(2^%d)", poly, bits)
		}
		f.log[x] = i
		// Multiply by alpha = x, reducing modulo the polynomial.
		carry := x & (q >> 1)
		x = (x << 1) & f.mask
		if carry != 0 {
			x ^= reduced
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x does not cycle back to 1 in GF(2^%d)", poly, bits)
	}
	copy(f.exp[q-1:], f.exp[:q-1])
	return f, nil
}

func (f *tableField) Bits() uint    { return f.bits }
func (f *tableField) Order() uint64 { return uint64(f.q) }
func (f *tableField) Mask() uint32  { return f.mask }

func (f *tableField) Add(a, b uint32) uint32 { return (a ^ b) & f.mask }

func (f *tableField) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a&f.mask]+f.log[b&f.mask]]
}

func (f *tableField) Inv(a uint32) (uint32, error) {
	a &= f.mask
	if a == 0 {
		return 0, ErrDivideByZero
	}
	return f.exp[(f.q-1)-f.log[a]], nil
}

func (f *tableField) Div(a, b uint32) (uint32, error) {
	b &= f.mask
	if b == 0 {
		return 0, ErrDivideByZero
	}
	a &= f.mask
	if a == 0 {
		return 0, nil
	}
	return f.exp[f.log[a]+(f.q-1)-f.log[b]], nil
}

func (f *tableField) Exp(a uint32, n uint64) uint32 {
	a &= f.mask
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	// alpha^(log a * n mod (q-1)); reduce the exponent in uint64 space.
	e := (uint64(f.log[a]) * (n % uint64(f.q-1))) % uint64(f.q-1)
	return f.exp[e]
}

func (f *tableField) AddScaledSlice(dst, src []byte, c uint32) {
	c &= f.mask
	if len(dst) != len(src) {
		panic("gf: AddScaledSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	switch f.bits {
	case Bits4:
		f.addScaled4(dst, src, c)
	case Bits8:
		f.addScaled8(dst, src, c)
	case Bits16:
		f.addScaled16(dst, src, c)
	default:
		panic("gf: unreachable table width")
	}
}

func (f *tableField) ScaleSlice(dst []byte, c uint32) {
	c &= f.mask
	if c == 1 {
		return
	}
	if c == 0 {
		clear(dst)
		return
	}
	switch f.bits {
	case Bits4:
		row := f.packedNibbleTable(c)
		for i, b := range dst {
			dst[i] = row[b]
		}
	case Bits8:
		lc := f.log[c]
		for i, b := range dst {
			if b != 0 {
				dst[i] = byte(f.exp[lc+f.log[b]])
			}
		}
	case Bits16:
		lc := f.log[c]
		for i := 0; i+1 < len(dst); i += 2 {
			s := uint32(dst[i]) | uint32(dst[i+1])<<8
			if s == 0 {
				continue
			}
			p := f.exp[lc+f.log[s]]
			dst[i] = byte(p)
			dst[i+1] = byte(p >> 8)
		}
	}
}

// packedNibbleTable returns a 256-entry table mapping a packed byte
// (two GF(16) symbols) to the packed byte of both symbols multiplied
// by c.
func (f *tableField) packedNibbleTable(c uint32) [256]byte {
	var nib [16]byte
	lc := f.log[c]
	for s := uint32(1); s < 16; s++ {
		nib[s] = byte(f.exp[lc+f.log[s]])
	}
	var row [256]byte
	for b := 0; b < 256; b++ {
		row[b] = nib[b&0xF] | nib[b>>4]<<4
	}
	return row
}

func (f *tableField) addScaled4(dst, src []byte, c uint32) {
	row := f.packedNibbleTable(c)
	for i, b := range src {
		dst[i] ^= row[b]
	}
}

func (f *tableField) addScaled8(dst, src []byte, c uint32) {
	// A flat 256-entry product row turns the inner loop into a single
	// table lookup + xor per byte.
	var row [256]byte
	lc := f.log[c]
	for s := uint32(1); s < 256; s++ {
		row[s] = byte(f.exp[lc+f.log[s]])
	}
	for i, b := range src {
		dst[i] ^= row[b]
	}
}

func (f *tableField) addScaled16(dst, src []byte, c uint32) {
	lc := f.log[c]
	for i := 0; i+1 < len(src); i += 2 {
		s := uint32(src[i]) | uint32(src[i+1])<<8
		if s == 0 {
			continue
		}
		p := f.exp[lc+f.log[s]]
		dst[i] ^= byte(p)
		dst[i+1] ^= byte(p >> 8)
	}
}
