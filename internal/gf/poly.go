package gf

// Polynomial arithmetic over GF(2), with polynomials represented as
// uint64 bit vectors (bit i is the coefficient of x^i). These routines
// back the GF(2^32) implementation and the irreducibility checks in the
// test suite; they favour clarity over speed since they never sit on the
// encode/decode hot path.

import "math/bits"

// polyDegree returns the degree of p, or -1 for the zero polynomial.
func polyDegree(p uint64) int {
	if p == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(p)
}

// polyMul returns the carry-less product of a and b. The inputs must be
// small enough that the product fits in 64 bits (deg a + deg b < 64).
func polyMul(a, b uint64) uint64 {
	var r uint64
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		a <<= 1
		b >>= 1
	}
	return r
}

// polyMod returns a mod m for a non-zero modulus m.
func polyMod(a, m uint64) uint64 {
	dm := polyDegree(m)
	for {
		da := polyDegree(a)
		if da < dm {
			return a
		}
		a ^= m << uint(da-dm)
	}
}

// polyMulMod returns (a * b) mod m, keeping intermediate values reduced
// so the computation never overflows for deg m <= 32.
func polyMulMod(a, b, m uint64) uint64 {
	a = polyMod(a, m)
	b = polyMod(b, m)
	var r uint64
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		b >>= 1
		a <<= 1
		if polyDegree(a) >= polyDegree(m) {
			a ^= m
		}
	}
	return r
}

// polyGCD returns the greatest common divisor of a and b.
func polyGCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, polyMod(a, b)
	}
	return a
}

// polyInvMod returns the inverse of a modulo m using the extended
// Euclidean algorithm, and reports whether the inverse exists (it does
// whenever gcd(a, m) == 1 and a mod m != 0).
func polyInvMod(a, m uint64) (uint64, bool) {
	a = polyMod(a, m)
	if a == 0 {
		return 0, false
	}
	// Invariants: r0 = t0*a (mod m), r1 = t1*a (mod m).
	r0, r1 := m, a
	var t0, t1 uint64 = 0, 1
	for r1 != 0 {
		dq := polyDegree(r0) - polyDegree(r1)
		if dq < 0 {
			r0, r1 = r1, r0
			t0, t1 = t1, t0
			continue
		}
		r0 ^= r1 << uint(dq)
		t0 ^= t1 << uint(dq)
	}
	if r0 != 1 {
		return 0, false
	}
	return polyMod(t0, m), true
}

// polyIrreducible reports whether the degree-d polynomial m (including
// its leading term) is irreducible over GF(2), using the standard
// Rabin test: x^(2^d) == x (mod m) and gcd(x^(2^(d/p)) - x, m) == 1
// for every prime p dividing d.
func polyIrreducible(m uint64) bool {
	d := polyDegree(m)
	if d <= 0 {
		return false
	}
	if d == 1 {
		return true
	}
	// x^(2^k) mod m is computed by k successive squarings of x.
	xPow2k := func(k int) uint64 {
		p := uint64(2) // x
		for i := 0; i < k; i++ {
			p = polyMulMod(p, p, m)
		}
		return p
	}
	if xPow2k(d) != 2 {
		return false
	}
	for _, prime := range primeFactors(d) {
		sub := xPow2k(d / prime)
		if polyGCD(sub^2, m) != 1 {
			return false
		}
	}
	return true
}

// primeFactors returns the distinct prime factors of n in ascending
// order. n is a field degree, so it is tiny.
func primeFactors(n int) []int {
	var factors []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			factors = append(factors, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	return factors
}
