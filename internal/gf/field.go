// Package gf implements arithmetic over the binary extension fields
// GF(2^4), GF(2^8), GF(2^16) and GF(2^32) used by the random linear
// coding layer of asymshare.
//
// The package exposes two levels of API:
//
//   - element arithmetic through the Field interface (Add, Mul, Inv, ...),
//     where elements are uint32 values whose top bits beyond the field
//     width are zero; and
//   - packed-slice arithmetic (AddScaledSlice, ScaleSlice) which operates
//     on symbol vectors packed into byte slices. Packed vectors are the
//     representation used for encoded message payloads, so these routines
//     are the hot path of encoding and decoding.
//
// Fields with p <= 16 use discrete log/antilog tables built from a
// primitive polynomial; GF(2^32) uses carry-less shift-and-xor
// multiplication with per-constant window tables for the slice routines.
package gf

import (
	"errors"
	"fmt"
	"sync"
)

// Supported field widths, in bits per symbol.
const (
	Bits4  = 4
	Bits8  = 8
	Bits16 = 16
	Bits32 = 32
)

var (
	// ErrDivideByZero is returned when computing the inverse of, or
	// dividing by, the zero element.
	ErrDivideByZero = errors.New("gf: divide by zero")

	// ErrUnsupportedBits is returned by New for widths other than
	// 4, 8, 16 or 32.
	ErrUnsupportedBits = errors.New("gf: unsupported field width")
)

// Field is arithmetic over GF(2^p). Implementations are immutable and
// safe for concurrent use.
type Field interface {
	// Bits returns the symbol width p.
	Bits() uint

	// Order returns the field size q = 2^p.
	Order() uint64

	// Mask returns the p-bit element mask (q - 1).
	Mask() uint32

	// Add returns a + b. In characteristic 2 addition is XOR and is its
	// own inverse, so Add doubles as subtraction.
	Add(a, b uint32) uint32

	// Mul returns the field product a * b.
	Mul(a, b uint32) uint32

	// Inv returns the multiplicative inverse of a. It returns
	// ErrDivideByZero if a is zero.
	Inv(a uint32) (uint32, error)

	// Div returns a / b, or ErrDivideByZero if b is zero.
	Div(a, b uint32) (uint32, error)

	// Exp returns a raised to the power n (with a^0 == 1, 0^n == 0 for
	// n > 0).
	Exp(a uint32, n uint64) uint32

	// AddScaledSlice computes dst[i] += c * src[i] symbol-wise over
	// packed vectors. dst and src must have equal length, a whole number
	// of symbols, and must not overlap unless they are the same slice
	// with c == 0.
	AddScaledSlice(dst, src []byte, c uint32)

	// ScaleSlice computes dst[i] = c * dst[i] symbol-wise in place.
	ScaleSlice(dst []byte, c uint32)
}

// Primitive polynomials used for each supported width. The value is the
// polynomial with the implicit leading x^p term removed; all are
// primitive, so x (= 2) generates the multiplicative group.
const (
	poly4  = 0x13      // x^4 + x + 1
	poly8  = 0x11D     // x^8 + x^4 + x^3 + x^2 + 1
	poly16 = 0x1100B   // x^16 + x^12 + x^3 + x + 1
	poly32 = 0x0400007 // x^32 + x^22 + x^2 + x + 1
)

type lazyField struct {
	once  sync.Once
	field Field
	err   error
}

// Field construction is deterministic but table construction for
// GF(2^16) costs a few hundred microseconds, so instances are built
// once on first use and shared.
var _fields = map[uint]*lazyField{
	Bits4:  {},
	Bits8:  {},
	Bits16: {},
	Bits32: {},
}

// New returns the shared Field instance for the given symbol width.
// Supported widths are 4, 8, 16 and 32 bits.
func New(bits uint) (Field, error) {
	lf, ok := _fields[bits]
	if !ok {
		return nil, fmt.Errorf("%w: %d bits", ErrUnsupportedBits, bits)
	}
	lf.once.Do(func() {
		switch bits {
		case Bits4:
			lf.field, lf.err = newTableField(Bits4, poly4)
		case Bits8:
			lf.field, lf.err = newTableField(Bits8, poly8)
		case Bits16:
			lf.field, lf.err = newTableField(Bits16, poly16)
		case Bits32:
			lf.field = newGF32()
		}
	})
	return lf.field, lf.err
}

// MustNew is like New but panics on error. It is intended for
// initializing package-level configuration with known-good widths.
func MustNew(bits uint) Field {
	f, err := New(bits)
	if err != nil {
		panic(err)
	}
	return f
}

// Widths lists the supported symbol widths in ascending order.
func Widths() []uint {
	return []uint{Bits4, Bits8, Bits16, Bits32}
}

// expByMask is shared square-and-multiply exponentiation used by field
// implementations.
func expGeneric(f Field, a uint32, n uint64) uint32 {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	var result uint32 = 1
	base := a
	for n > 0 {
		if n&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		n >>= 1
	}
	return result
}
