package gf

// GF(2^32) implementation. Log/antilog tables are infeasible at this
// size, so element products use carry-less shift-and-xor multiplication
// reduced by the primitive polynomial x^32 + x^22 + x^2 + x + 1, and the
// packed-slice routines amortize that cost with per-constant 4-bit
// window tables (eight tables of sixteen entries per call).

import "encoding/binary"

type gf32Field struct{}

var _ Field = gf32Field{}

func newGF32() Field { return gf32Field{} }

func (gf32Field) Bits() uint    { return Bits32 }
func (gf32Field) Order() uint64 { return 1 << 32 }
func (gf32Field) Mask() uint32  { return 0xFFFFFFFF }

func (gf32Field) Add(a, b uint32) uint32 { return a ^ b }

func (gf32Field) Mul(a, b uint32) uint32 { return gf32Mul(a, b) }

func gf32Mul(a, b uint32) uint32 {
	var r uint32
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		b >>= 1
		carry := a & 0x80000000
		a <<= 1
		if carry != 0 {
			a ^= poly32
		}
	}
	return r
}

func (f gf32Field) Inv(a uint32) (uint32, error) {
	if a == 0 {
		return 0, ErrDivideByZero
	}
	// Extended Euclid over GF(2)[x] against the full modulus
	// x^32 + (reduced part).
	const modulus = uint64(1)<<32 | poly32
	inv, ok := polyInvMod(uint64(a), modulus)
	if !ok {
		// Unreachable for a non-zero element of a field defined by an
		// irreducible polynomial.
		return 0, ErrDivideByZero
	}
	return uint32(inv), nil
}

func (f gf32Field) Div(a, b uint32) (uint32, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return gf32Mul(a, bi), nil
}

func (f gf32Field) Exp(a uint32, n uint64) uint32 {
	return expGeneric(f, a, n)
}

// windowTables builds the eight 16-entry tables t[w][n] = c * (n << 4w)
// that let a 32-bit symbol be multiplied by c with eight lookups.
func gf32WindowTables(c uint32) [8][16]uint32 {
	var t [8][16]uint32
	// t[0][n] = c*n for nibble n; each later window is the previous one
	// multiplied by x^4 (i.e. shifted up one nibble in the field).
	for n := uint32(1); n < 16; n++ {
		t[0][n] = gf32Mul(c, n)
	}
	for w := 1; w < 8; w++ {
		for n := 1; n < 16; n++ {
			t[w][n] = gf32Mul(t[w-1][n], 0x10)
		}
	}
	return t
}

func (f gf32Field) AddScaledSlice(dst, src []byte, c uint32) {
	if len(dst) != len(src) {
		panic("gf: AddScaledSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	t := gf32WindowTables(c)
	for i := 0; i+3 < len(src); i += 4 {
		s := binary.LittleEndian.Uint32(src[i:])
		if s == 0 {
			continue
		}
		p := t[0][s&0xF] ^ t[1][(s>>4)&0xF] ^ t[2][(s>>8)&0xF] ^ t[3][(s>>12)&0xF] ^
			t[4][(s>>16)&0xF] ^ t[5][(s>>20)&0xF] ^ t[6][(s>>24)&0xF] ^ t[7][s>>28]
		binary.LittleEndian.PutUint32(dst[i:], binary.LittleEndian.Uint32(dst[i:])^p)
	}
}

func (f gf32Field) ScaleSlice(dst []byte, c uint32) {
	if c == 1 {
		return
	}
	if c == 0 {
		clear(dst)
		return
	}
	t := gf32WindowTables(c)
	for i := 0; i+3 < len(dst); i += 4 {
		s := binary.LittleEndian.Uint32(dst[i:])
		if s == 0 {
			continue
		}
		p := t[0][s&0xF] ^ t[1][(s>>4)&0xF] ^ t[2][(s>>8)&0xF] ^ t[3][(s>>12)&0xF] ^
			t[4][(s>>16)&0xF] ^ t[5][(s>>20)&0xF] ^ t[6][(s>>24)&0xF] ^ t[7][s>>28]
		binary.LittleEndian.PutUint32(dst[i:], p)
	}
}
