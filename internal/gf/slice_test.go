package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomVec(rng *rand.Rand, n int) []byte {
	v := make([]byte, n)
	rng.Read(v)
	return v
}

func TestVecBytesSymbols(t *testing.T) {
	tests := []struct {
		bits  uint
		m     int
		bytes int
	}{
		{Bits4, 1, 1},
		{Bits4, 2, 1},
		{Bits4, 3, 2},
		{Bits8, 5, 5},
		{Bits16, 5, 10},
		{Bits32, 5, 20},
	}
	for _, tt := range tests {
		if got := VecBytes(tt.bits, tt.m); got != tt.bytes {
			t.Errorf("VecBytes(%d, %d) = %d, want %d", tt.bits, tt.m, got, tt.bytes)
		}
	}
	for _, bits := range Widths() {
		for m := 2; m < 40; m += 2 {
			n := VecBytes(bits, m)
			if got := VecSymbols(bits, n); got != m {
				t.Errorf("VecSymbols(%d, %d) = %d, want %d", bits, n, got, m)
			}
		}
	}
}

func TestGetSetSymRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bits := range Widths() {
		f := MustNew(bits)
		const m = 17
		vec := make([]byte, VecBytes(bits, m+1)) // even symbol count for p=4
		want := make([]uint32, m)
		for i := range want {
			want[i] = rng.Uint32() & f.Mask()
			SetSym(bits, vec, i, want[i])
		}
		for i := range want {
			if got := GetSym(bits, vec, i); got != want[i] {
				t.Fatalf("GF(2^%d): sym %d = %#x, want %#x", bits, i, got, want[i])
			}
		}
	}
}

func TestSetSymDoesNotDisturbNeighbors(t *testing.T) {
	vec := make([]byte, 2)
	SetSym(Bits4, vec, 0, 0xA)
	SetSym(Bits4, vec, 1, 0x5)
	SetSym(Bits4, vec, 2, 0xF)
	if GetSym(Bits4, vec, 0) != 0xA || GetSym(Bits4, vec, 1) != 0x5 || GetSym(Bits4, vec, 2) != 0xF {
		t.Fatalf("nibble packing disturbed neighbors: % x", vec)
	}
	SetSym(Bits4, vec, 1, 0x0)
	if GetSym(Bits4, vec, 0) != 0xA || GetSym(Bits4, vec, 2) != 0xF {
		t.Fatalf("overwrite disturbed neighbors: % x", vec)
	}
}

// addScaledRef is a symbol-at-a-time reference implementation.
func addScaledRef(f Field, dst, src []byte, c uint32) {
	m := VecSymbols(f.Bits(), len(src))
	for i := 0; i < m; i++ {
		s := GetSym(f.Bits(), src, i)
		d := GetSym(f.Bits(), dst, i)
		SetSym(f.Bits(), dst, i, f.Add(d, f.Mul(c, s)))
	}
}

func TestAddScaledSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, f := range allFields(t) {
		for trial := 0; trial < 30; trial++ {
			n := VecBytes(f.Bits(), 64)
			src := randomVec(rng, n)
			dst := randomVec(rng, n)
			c := rng.Uint32() & f.Mask()

			want := bytes.Clone(dst)
			addScaledRef(f, want, src, c)

			got := bytes.Clone(dst)
			f.AddScaledSlice(got, src, c)

			if !bytes.Equal(got, want) {
				t.Fatalf("GF(2^%d) c=%#x:\n got %x\nwant %x", f.Bits(), c, got, want)
			}
		}
	}
}

func TestAddScaledSliceSpecialConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, f := range allFields(t) {
		n := VecBytes(f.Bits(), 32)
		src := randomVec(rng, n)
		dst := randomVec(rng, n)

		// c = 0 leaves dst untouched.
		got := bytes.Clone(dst)
		f.AddScaledSlice(got, src, 0)
		if !bytes.Equal(got, dst) {
			t.Errorf("GF(2^%d): AddScaledSlice with c=0 modified dst", f.Bits())
		}

		// c = 1 is a plain XOR.
		got = bytes.Clone(dst)
		f.AddScaledSlice(got, src, 1)
		want := bytes.Clone(dst)
		AddSlice(want, src)
		if !bytes.Equal(got, want) {
			t.Errorf("GF(2^%d): AddScaledSlice with c=1 != XOR", f.Bits())
		}

		// Applying the same scaled addition twice cancels out.
		c := rng.Uint32()&f.Mask() | 1
		got = bytes.Clone(dst)
		f.AddScaledSlice(got, src, c)
		f.AddScaledSlice(got, src, c)
		if !bytes.Equal(got, dst) {
			t.Errorf("GF(2^%d): double AddScaledSlice did not cancel", f.Bits())
		}
	}
}

func TestScaleSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, f := range allFields(t) {
		for trial := 0; trial < 20; trial++ {
			n := VecBytes(f.Bits(), 48)
			vec := randomVec(rng, n)
			c := rng.Uint32() & f.Mask()

			want := make([]byte, n)
			f.AddScaledSlice(want, vec, c) // 0 + c*vec

			got := bytes.Clone(vec)
			f.ScaleSlice(got, c)

			if !bytes.Equal(got, want) {
				t.Fatalf("GF(2^%d) c=%#x: ScaleSlice mismatch", f.Bits(), c)
			}
		}
	}
}

func TestScaleSliceInverseRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, f := range allFields(t) {
		n := VecBytes(f.Bits(), 40)
		vec := randomVec(rng, n)
		c := rng.Uint32()&f.Mask() | 1
		inv, err := f.Inv(c)
		if err != nil {
			t.Fatal(err)
		}
		got := bytes.Clone(vec)
		f.ScaleSlice(got, c)
		f.ScaleSlice(got, inv)
		if !bytes.Equal(got, vec) {
			t.Fatalf("GF(2^%d): scaling by c then c^-1 did not restore", f.Bits())
		}
	}
}

func TestAddScaledSliceLengthMismatchPanics(t *testing.T) {
	for _, f := range allFields(t) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GF(2^%d): no panic on length mismatch", f.Bits())
				}
			}()
			f.AddScaledSlice(make([]byte, 8), make([]byte, 4), 1)
		}()
	}
}

func TestIsZeroSlice(t *testing.T) {
	if !IsZeroSlice(nil) || !IsZeroSlice(make([]byte, 10)) {
		t.Error("IsZeroSlice false negatives")
	}
	v := make([]byte, 10)
	v[9] = 1
	if IsZeroSlice(v) {
		t.Error("IsZeroSlice missed non-zero byte")
	}
}

func TestAddSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddSlice did not panic on mismatched lengths")
		}
	}()
	AddSlice(make([]byte, 3), make([]byte, 4))
}

func BenchmarkAddScaledSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range Widths() {
		f := MustNew(bits)
		for _, symbols := range []int{1 << 10, 1 << 15} {
			n := VecBytes(bits, symbols)
			src := randomVec(rng, n)
			dst := randomVec(rng, n)
			c := rng.Uint32()&f.Mask() | 1
			name := benchName(bits, symbols)
			b.Run(name, func(b *testing.B) {
				b.SetBytes(int64(n))
				for i := 0; i < b.N; i++ {
					f.AddScaledSlice(dst, src, c)
				}
			})
		}
	}
}

func benchName(bits uint, symbols int) string {
	return "GF2_" + itoa(int(bits)) + "/m=" + itoa(symbols)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, bits := range Widths() {
		f := MustNew(bits)
		xs := make([]uint32, 1024)
		for i := range xs {
			xs[i] = rng.Uint32()&f.Mask() | 1
		}
		b.Run("GF2_"+itoa(int(bits)), func(b *testing.B) {
			var acc uint32 = 1
			for i := 0; i < b.N; i++ {
				acc = f.Mul(acc|1, xs[i%len(xs)])
			}
			_ = acc
		})
	}
}
