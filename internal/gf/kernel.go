package gf

// Region kernels: bulk mul-accumulate over packed symbol vectors using
// per-constant split product tables, processed a 64-bit word at a time.
//
// The table layout follows the classic split-table construction: a
// product c*s over GF(2^p) is linear in s, so it decomposes over any
// split of s's bits. For p=8 a low/high *nibble* pair of 16-entry
// tables covers every byte (c*s = lo[s&0xF] ^ hi[s>>4]); for p=16 a
// low/high *byte* pair of 256-entry tables covers every symbol. The
// one-shot entry points (MulAddSlice, MulSlice, MulAddWords, MulWords)
// build the small tables on the stack per call; MulTable amortizes the
// build across many regions — the decode pipeline initializes one table
// per elimination factor and reuses it for every payload segment.
//
// All kernels are exact: they produce bit-identical results to the
// per-symbol GetSym/SetSym reference path.

import "encoding/binary"

// mulFn returns a closure computing c*s for table building, plus ok
// when f is a log/antilog table field (p <= 16).
func kernelTables(f Field) (*tableField, bool) {
	tf, ok := f.(*tableField)
	return tf, ok
}

// MulAddSlice computes dst[i] ^= c*src[i] over packed symbol vectors,
// like Field.AddScaledSlice, but word-at-a-time with per-constant split
// tables. dst and src must have equal length and must not overlap.
// Fields without table kernels (p=32) fall back to f.AddScaledSlice.
func MulAddSlice(f Field, dst, src []byte, c uint32) {
	c &= f.Mask()
	if len(dst) != len(src) {
		panic("gf: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	tf, ok := kernelTables(f)
	if !ok {
		f.AddScaledSlice(dst, src, c)
		return
	}
	switch tf.bits {
	case Bits4:
		var lo, hi [16]byte
		tf.pairNibbleTablesInto(&lo, &hi, c)
		if haveVecP8 {
			n := mulAddVecP8(&lo, &hi, dst, src)
			mulAddNibbleTail(&lo, &hi, dst[n:], src[n:])
			return
		}
		var row [256]byte
		expandNibbleRow(&row, &lo, &hi)
		mulAddBytes(&row, dst, src)
	case Bits8:
		var lo, hi [16]byte
		tf.nibbleTablesInto(&lo, &hi, c)
		if haveVecP8 {
			n := mulAddVecP8(&lo, &hi, dst, src)
			mulAddNibbleTail(&lo, &hi, dst[n:], src[n:])
			return
		}
		mulAddNibbleSplit(&lo, &hi, dst, src)
	case Bits16:
		var lo, hi [256]uint16
		tf.byteTablesInto(&lo, &hi, c)
		mulAddByteSplit(&lo, &hi, dst, src)
	default:
		f.AddScaledSlice(dst, src, c)
	}
}

// MulSlice computes dst[i] = c*dst[i] in place, like Field.ScaleSlice,
// using the same split-table word kernels.
func MulSlice(f Field, dst []byte, c uint32) {
	c &= f.Mask()
	if c == 1 {
		return
	}
	if c == 0 {
		clear(dst)
		return
	}
	tf, ok := kernelTables(f)
	if !ok {
		f.ScaleSlice(dst, c)
		return
	}
	switch tf.bits {
	case Bits4:
		var lo, hi [16]byte
		tf.pairNibbleTablesInto(&lo, &hi, c)
		mulNibbleInPlace(&lo, &hi, dst)
	case Bits8:
		var lo, hi [16]byte
		tf.nibbleTablesInto(&lo, &hi, c)
		mulNibbleInPlace(&lo, &hi, dst)
	case Bits16:
		var lo, hi [256]uint16
		tf.byteTablesInto(&lo, &hi, c)
		mulByteSplit(&lo, &hi, dst)
	default:
		f.ScaleSlice(dst, c)
	}
}

// MulAddWords computes dst[i] ^= c*src[i] over unpacked coefficient
// rows (one symbol per uint32), replacing per-element Mul loops in the
// matrix code. Values must already be reduced to the field mask.
func MulAddWords(f Field, dst, src []uint32, c uint32) {
	c &= f.Mask()
	if len(dst) != len(src) {
		panic("gf: MulAddWords length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	tf, ok := kernelTables(f)
	if !ok {
		for i, s := range src {
			if s != 0 {
				dst[i] ^= f.Mul(s, c)
			}
		}
		return
	}
	switch tf.bits {
	case Bits4:
		var nib [16]uint32
		tf.nibbleRowInto(&nib, c)
		for i, s := range src {
			dst[i] ^= nib[s&0xF]
		}
	case Bits8:
		var lo, hi [16]byte
		tf.nibbleTablesInto(&lo, &hi, c)
		for i, s := range src {
			dst[i] ^= uint32(lo[s&0xF] ^ hi[(s>>4)&0xF])
		}
	default: // Bits16
		var lo, hi [256]uint16
		tf.byteTablesInto(&lo, &hi, c)
		for i, s := range src {
			dst[i] ^= uint32(lo[s&0xFF] ^ hi[(s>>8)&0xFF])
		}
	}
}

// MulWords computes dst[i] = c*dst[i] over unpacked coefficient rows.
func MulWords(f Field, dst []uint32, c uint32) {
	c &= f.Mask()
	if c == 1 {
		return
	}
	if c == 0 {
		clear(dst)
		return
	}
	tf, ok := kernelTables(f)
	if !ok {
		for i, s := range dst {
			if s != 0 {
				dst[i] = f.Mul(s, c)
			}
		}
		return
	}
	switch tf.bits {
	case Bits4:
		var nib [16]uint32
		tf.nibbleRowInto(&nib, c)
		for i, s := range dst {
			dst[i] = nib[s&0xF]
		}
	case Bits8:
		var lo, hi [16]byte
		tf.nibbleTablesInto(&lo, &hi, c)
		for i, s := range dst {
			dst[i] = uint32(lo[s&0xF] ^ hi[(s>>4)&0xF])
		}
	default: // Bits16
		var lo, hi [256]uint16
		tf.byteTablesInto(&lo, &hi, c)
		for i, s := range dst {
			dst[i] = uint32(lo[s&0xFF] ^ hi[(s>>8)&0xFF])
		}
	}
}

// --- table builders (on tableField so they can reach exp/log) ---

// nibbleTablesInto fills the low/high nibble split tables for p=8:
// c*b == lo[b&0xF] ^ hi[b>>4] for every byte b.
func (f *tableField) nibbleTablesInto(lo, hi *[16]byte, c uint32) {
	lc := f.log[c]
	for s := uint32(1); s < 16; s++ {
		lo[s] = byte(f.exp[lc+f.log[s]])
		hi[s] = byte(f.exp[lc+f.log[s<<4]])
	}
}

// byteTablesInto fills the low/high byte split tables for p=16:
// c*s == lo[s&0xFF] ^ hi[s>>8] for every 16-bit symbol s.
func (f *tableField) byteTablesInto(lo, hi *[256]uint16, c uint32) {
	lc := f.log[c]
	for s := uint32(1); s < 256; s++ {
		lo[s] = uint16(f.exp[lc+f.log[s]])
		hi[s] = uint16(f.exp[lc+f.log[s<<8]])
	}
}

// nibbleRowInto fills the 16-entry product row for p=4 symbols.
func (f *tableField) nibbleRowInto(nib *[16]uint32, c uint32) {
	lc := f.log[c]
	for s := uint32(1); s < 16; s++ {
		nib[s] = f.exp[lc+f.log[s]]
	}
}

// pairNibbleTablesInto fills split tables for p=4 packed pairs so the
// p=8 nibble kernels apply unchanged: lo maps the low symbol of a
// packed byte to its product, hi maps the high symbol to its product
// shifted back into the high nibble, and c*b == lo[b&0xF] ^ hi[b>>4].
func (f *tableField) pairNibbleTablesInto(lo, hi *[16]byte, c uint32) {
	lc := f.log[c]
	for s := uint32(1); s < 16; s++ {
		p := byte(f.exp[lc+f.log[s]])
		lo[s] = p
		hi[s] = p << 4
	}
}

func expandNibbleRow(row *[256]byte, lo, hi *[16]byte) {
	for b := 0; b < 256; b++ {
		row[b] = lo[b&0xF] ^ hi[b>>4]
	}
}

// mulAddNibbleTail finishes the sub-vector remainder byte-wise.
func mulAddNibbleTail(lo, hi *[16]byte, dst, src []byte) {
	for i := range src {
		b := src[i]
		dst[i] ^= lo[b&0xF] ^ hi[b>>4]
	}
}

// mulNibbleInPlace scales a byte-packed vector (p=4 pairs or p=8) in
// place through split tables: vector bulk when available, 256-entry
// row otherwise.
func mulNibbleInPlace(lo, hi *[16]byte, dst []byte) {
	if haveVecP8 {
		n := mulVecP8(lo, hi, dst)
		for i := n; i < len(dst); i++ {
			b := dst[i]
			dst[i] = lo[b&0xF] ^ hi[b>>4]
		}
		return
	}
	var row [256]byte
	expandNibbleRow(&row, lo, hi)
	mulBytes(&row, dst)
}

// --- word kernels ---

// mulAddNibbleSplit is the p=8 MulAddSlice core: 16 nibble lookups per
// 64-bit word, no 256-entry expansion (the build cost would dominate
// small regions).
func mulAddNibbleSplit(lo, hi *[16]byte, dst, src []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		if s == 0 {
			continue
		}
		p := uint64(lo[s&0xF]^hi[s>>4&0xF]) |
			uint64(lo[s>>8&0xF]^hi[s>>12&0xF])<<8 |
			uint64(lo[s>>16&0xF]^hi[s>>20&0xF])<<16 |
			uint64(lo[s>>24&0xF]^hi[s>>28&0xF])<<24 |
			uint64(lo[s>>32&0xF]^hi[s>>36&0xF])<<32 |
			uint64(lo[s>>40&0xF]^hi[s>>44&0xF])<<40 |
			uint64(lo[s>>48&0xF]^hi[s>>52&0xF])<<48 |
			uint64(lo[s>>56&0xF]^hi[s>>60])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i < len(src); i++ {
		b := src[i]
		dst[i] ^= lo[b&0xF] ^ hi[b>>4]
	}
}

// mulAddByteSplit is the p=16 MulAddSlice core: 8 byte-table lookups
// per 64-bit word (4 symbols).
func mulAddByteSplit(lo, hi *[256]uint16, dst, src []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		if s == 0 {
			continue
		}
		p := uint64(lo[s&0xFF]^hi[s>>8&0xFF]) |
			uint64(lo[s>>16&0xFF]^hi[s>>24&0xFF])<<16 |
			uint64(lo[s>>32&0xFF]^hi[s>>40&0xFF])<<32 |
			uint64(lo[s>>48&0xFF]^hi[s>>56])<<48
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i+1 < len(src); i += 2 {
		s := uint32(src[i]) | uint32(src[i+1])<<8
		if s == 0 {
			continue
		}
		p := lo[s&0xFF] ^ hi[s>>8]
		dst[i] ^= byte(p)
		dst[i+1] ^= byte(p >> 8)
	}
}

// mulByteSplit scales a p=16 vector in place.
func mulByteSplit(lo, hi *[256]uint16, dst []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(dst[i:])
		p := uint64(lo[s&0xFF]^hi[s>>8&0xFF]) |
			uint64(lo[s>>16&0xFF]^hi[s>>24&0xFF])<<16 |
			uint64(lo[s>>32&0xFF]^hi[s>>40&0xFF])<<32 |
			uint64(lo[s>>48&0xFF]^hi[s>>56])<<48
		binary.LittleEndian.PutUint64(dst[i:], p)
	}
	for i := n; i+1 < len(dst); i += 2 {
		s := uint32(dst[i]) | uint32(dst[i+1])<<8
		p := lo[s&0xFF] ^ hi[s>>8]
		dst[i] = byte(p)
		dst[i+1] = byte(p >> 8)
	}
}

// mulAddBytes applies a full 256-entry product row: dst[i] ^= row[src[i]],
// 8 lookups per word. Used for p=4 packed pairs and p=8 expanded rows.
func mulAddBytes(row *[256]byte, dst, src []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		if s == 0 {
			continue
		}
		p := uint64(row[s&0xFF]) |
			uint64(row[s>>8&0xFF])<<8 |
			uint64(row[s>>16&0xFF])<<16 |
			uint64(row[s>>24&0xFF])<<24 |
			uint64(row[s>>32&0xFF])<<32 |
			uint64(row[s>>40&0xFF])<<40 |
			uint64(row[s>>48&0xFF])<<48 |
			uint64(row[s>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= row[src[i]]
	}
}

// mulBytes scales in place through a 256-entry product row.
func mulBytes(row *[256]byte, dst []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(dst[i:])
		p := uint64(row[s&0xFF]) |
			uint64(row[s>>8&0xFF])<<8 |
			uint64(row[s>>16&0xFF])<<16 |
			uint64(row[s>>24&0xFF])<<24 |
			uint64(row[s>>32&0xFF])<<32 |
			uint64(row[s>>40&0xFF])<<40 |
			uint64(row[s>>48&0xFF])<<48 |
			uint64(row[s>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], p)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = row[dst[i]]
	}
}

// MulTable is a reusable per-constant product table. Init builds the
// split tables once; MulAdd/Mul then run the word kernels with zero
// per-call setup. The zero value is a table for c=0 (MulAdd is a
// no-op). A MulTable is plain data: value assignment copies it, and it
// is safe for concurrent *readers* after Init returns.
type MulTable struct {
	f    Field
	bits uint
	c    uint32

	lo8    [16]byte    // p=4/p=8 low-nibble split (PSHUFB mask on amd64)
	hi8    [16]byte    // p=4/p=8 high-nibble split
	row8   [256]byte   // p=4/p=8 expanded byte row for the scalar path
	lo16   [256]uint16 // p=16 low-byte split
	hi16   [256]uint16 // p=16 high-byte split
	kernel bool        // table kernels available (p <= 16)
}

// Init (re)builds the table for constant c over f.
func (t *MulTable) Init(f Field, c uint32) {
	c &= f.Mask()
	t.f = f
	t.c = c
	tf, ok := kernelTables(f)
	t.bits = f.Bits()
	t.kernel = ok
	if !ok || c == 0 {
		return
	}
	switch tf.bits {
	case Bits4:
		tf.pairNibbleTablesInto(&t.lo8, &t.hi8, c)
		expandNibbleRow(&t.row8, &t.lo8, &t.hi8)
	case Bits8:
		tf.nibbleTablesInto(&t.lo8, &t.hi8, c)
		expandNibbleRow(&t.row8, &t.lo8, &t.hi8)
	case Bits16:
		tf.byteTablesInto(&t.lo16, &t.hi16, c)
	default:
		t.kernel = false
	}
}

// C returns the constant the table was built for.
func (t *MulTable) C() uint32 { return t.c }

// MulAdd computes dst[i] ^= c*src[i] using the prebuilt table.
func (t *MulTable) MulAdd(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulTable.MulAdd length mismatch")
	}
	switch {
	case t.c == 0:
	case t.c == 1:
		AddSlice(dst, src)
	case !t.kernel:
		t.f.AddScaledSlice(dst, src, t.c)
	case t.bits == Bits16:
		mulAddByteSplit(&t.lo16, &t.hi16, dst, src)
	case haveVecP8:
		n := mulAddVecP8(&t.lo8, &t.hi8, dst, src)
		mulAddNibbleTail(&t.lo8, &t.hi8, dst[n:], src[n:])
	default:
		mulAddBytes(&t.row8, dst, src)
	}
}

// Mul scales dst in place by the table's constant.
func (t *MulTable) Mul(dst []byte) {
	switch {
	case t.c == 1:
	case t.c == 0:
		clear(dst)
	case !t.kernel:
		t.f.ScaleSlice(dst, t.c)
	case t.bits == Bits16:
		mulByteSplit(&t.lo16, &t.hi16, dst)
	case haveVecP8:
		n := mulVecP8(&t.lo8, &t.hi8, dst)
		for i := n; i < len(dst); i++ {
			dst[i] = t.row8[dst[i]]
		}
	default:
		mulBytes(&t.row8, dst)
	}
}

// AccumSlices is the fused multi-source kernel behind the decode
// pipeline: dst[i] = scale * (dst[i] ^ Σ_j c_j*srcs[j][i]), with one
// prebuilt table per source. The accumulator stays in a register across
// sources, so dst is loaded and stored once per 64-bit word regardless
// of how many rows are folded in. scale may be nil (no normalization).
// All tables must be built over the same field; every src must be at
// least as long as dst.
func AccumSlices(dst []byte, srcs [][]byte, tabs []MulTable, scale *MulTable) {
	if len(srcs) != len(tabs) {
		panic("gf: AccumSlices srcs/tabs length mismatch")
	}
	for i := range srcs {
		if len(srcs[i]) < len(dst) {
			panic("gf: AccumSlices short source")
		}
	}
	if len(tabs) == 0 {
		if scale != nil {
			scale.Mul(dst)
		}
		return
	}
	bits := tabs[0].bits
	kernel := tabs[0].kernel
	for i := range tabs {
		if tabs[i].bits != bits {
			panic("gf: AccumSlices mixed field widths")
		}
	}
	if !kernel {
		// No table kernels for this width: fold sources one at a time
		// through the field's own path.
		f := tabs[0].f
		for i := range tabs {
			f.AddScaledSlice(dst, srcs[i][:len(dst)], tabs[i].c)
		}
		if scale != nil {
			scale.Mul(dst)
		}
		return
	}
	if bits == Bits16 {
		accumByteSplit(dst, srcs, tabs, scale)
		return
	}
	accumBytes(dst, srcs, tabs, scale)
}

// accumBytes fuses 256-entry byte rows (p=4 packed pairs, p=8).
func accumBytes(dst []byte, srcs [][]byte, tabs []MulTable, scale *MulTable) {
	n := len(dst) &^ 7
	for w := 0; w < n; w += 8 {
		acc := binary.LittleEndian.Uint64(dst[w:])
		for j := range tabs {
			s := binary.LittleEndian.Uint64(srcs[j][w:])
			if s == 0 || tabs[j].c == 0 {
				continue
			}
			if tabs[j].c == 1 {
				acc ^= s
				continue
			}
			row := &tabs[j].row8
			acc ^= uint64(row[s&0xFF]) |
				uint64(row[s>>8&0xFF])<<8 |
				uint64(row[s>>16&0xFF])<<16 |
				uint64(row[s>>24&0xFF])<<24 |
				uint64(row[s>>32&0xFF])<<32 |
				uint64(row[s>>40&0xFF])<<40 |
				uint64(row[s>>48&0xFF])<<48 |
				uint64(row[s>>56])<<56
		}
		if scale != nil && scale.c != 1 {
			row := &scale.row8
			acc = uint64(row[acc&0xFF]) |
				uint64(row[acc>>8&0xFF])<<8 |
				uint64(row[acc>>16&0xFF])<<16 |
				uint64(row[acc>>24&0xFF])<<24 |
				uint64(row[acc>>32&0xFF])<<32 |
				uint64(row[acc>>40&0xFF])<<40 |
				uint64(row[acc>>48&0xFF])<<48 |
				uint64(row[acc>>56])<<56
		}
		binary.LittleEndian.PutUint64(dst[w:], acc)
	}
	for i := n; i < len(dst); i++ {
		b := dst[i]
		for j := range tabs {
			switch tabs[j].c {
			case 0:
			case 1:
				b ^= srcs[j][i]
			default:
				b ^= tabs[j].row8[srcs[j][i]]
			}
		}
		if scale != nil && scale.c != 1 {
			b = scale.row8[b]
		}
		dst[i] = b
	}
}

// accumByteSplit fuses p=16 low/high byte split tables.
func accumByteSplit(dst []byte, srcs [][]byte, tabs []MulTable, scale *MulTable) {
	n := len(dst) &^ 7
	for w := 0; w < n; w += 8 {
		acc := binary.LittleEndian.Uint64(dst[w:])
		for j := range tabs {
			s := binary.LittleEndian.Uint64(srcs[j][w:])
			if s == 0 || tabs[j].c == 0 {
				continue
			}
			if tabs[j].c == 1 {
				acc ^= s
				continue
			}
			lo, hi := &tabs[j].lo16, &tabs[j].hi16
			acc ^= uint64(lo[s&0xFF]^hi[s>>8&0xFF]) |
				uint64(lo[s>>16&0xFF]^hi[s>>24&0xFF])<<16 |
				uint64(lo[s>>32&0xFF]^hi[s>>40&0xFF])<<32 |
				uint64(lo[s>>48&0xFF]^hi[s>>56])<<48
		}
		if scale != nil && scale.c > 1 {
			lo, hi := &scale.lo16, &scale.hi16
			acc = uint64(lo[acc&0xFF]^hi[acc>>8&0xFF]) |
				uint64(lo[acc>>16&0xFF]^hi[acc>>24&0xFF])<<16 |
				uint64(lo[acc>>32&0xFF]^hi[acc>>40&0xFF])<<32 |
				uint64(lo[acc>>48&0xFF]^hi[acc>>56])<<48
		}
		binary.LittleEndian.PutUint64(dst[w:], acc)
	}
	for i := n; i+1 < len(dst); i += 2 {
		s := uint32(dst[i]) | uint32(dst[i+1])<<8
		for j := range tabs {
			v := uint32(srcs[j][i]) | uint32(srcs[j][i+1])<<8
			switch tabs[j].c {
			case 0:
			case 1:
				s ^= v
			default:
				if v != 0 {
					s ^= uint32(tabs[j].lo16[v&0xFF] ^ tabs[j].hi16[v>>8])
				}
			}
		}
		if scale != nil && scale.c > 1 && s != 0 {
			s = uint32(scale.lo16[s&0xFF] ^ scale.hi16[s>>8])
		}
		dst[i] = byte(s)
		dst[i+1] = byte(s >> 8)
	}
}
