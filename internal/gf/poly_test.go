package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolyDegree(t *testing.T) {
	tests := []struct {
		p    uint64
		want int
	}{
		{0, -1},
		{1, 0},
		{2, 1},
		{3, 1},
		{0x13, 4},
		{1 << 32, 32},
		{1 << 63, 63},
	}
	for _, tt := range tests {
		if got := polyDegree(tt.p); got != tt.want {
			t.Errorf("polyDegree(%#x) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestPolyMulBasics(t *testing.T) {
	tests := []struct {
		a, b, want uint64
	}{
		{0, 5, 0},
		{1, 5, 5},
		{2, 2, 4}, // x * x = x^2
		{3, 3, 5}, // (x+1)^2 = x^2+1
		{0x13, 1, 0x13},
		{6, 5, 0x1E}, // (x^2+x)(x^2+1) = x^4+x^3+x^2+x
	}
	for _, tt := range tests {
		if got := polyMul(tt.a, tt.b); got != tt.want {
			t.Errorf("polyMul(%#x, %#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPolyMulCommutativeDistributive(t *testing.T) {
	comm := func(a, b uint32) bool {
		return polyMul(uint64(a), uint64(b)) == polyMul(uint64(b), uint64(a))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("polyMul not commutative: %v", err)
	}
	dist := func(a, b, c uint16) bool {
		ab := polyMul(uint64(a), uint64(c)) ^ polyMul(uint64(b), uint64(c))
		return polyMul(uint64(a)^uint64(b), uint64(c)) == ab
	}
	if err := quick.Check(dist, nil); err != nil {
		t.Errorf("polyMul not distributive: %v", err)
	}
}

func TestPolyModInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.Uint64()
		m := rng.Uint64()>>32 | 1<<31 // degree-31 modulus
		r := polyMod(a, m)
		if polyDegree(r) >= polyDegree(m) {
			t.Fatalf("polyMod(%#x, %#x) = %#x has degree >= modulus", a, m, r)
		}
	}
}

func TestPolyIrreducibleKnownValues(t *testing.T) {
	irreducible := []uint64{
		0x7,            // x^2+x+1
		0xB,            // x^3+x+1
		0x13,           // x^4+x+1
		0x11D,          // GF(2^8) polynomial
		0x1100B,        // GF(2^16) polynomial
		1<<32 | poly32, // GF(2^32) polynomial
	}
	for _, p := range irreducible {
		if !polyIrreducible(p) {
			t.Errorf("polyIrreducible(%#x) = false, want true", p)
		}
	}
	reducible := []uint64{
		0x5,         // x^2+1 = (x+1)^2
		0xF,         // x^3+x^2+x+1 = (x+1)(x^2+1)
		0x6,         // x^2+x = x(x+1)
		0x100,       // x^8
		0x11B ^ 0x2, // x^8+x^4+x^3+1 = (x+1)(...)
	}
	for _, p := range reducible {
		if polyIrreducible(p) {
			t.Errorf("polyIrreducible(%#x) = true, want false", p)
		}
	}
}

func TestPolyIrreducibleCountsDegree4(t *testing.T) {
	// There are exactly 3 irreducible polynomials of degree 4 over GF(2).
	count := 0
	for p := uint64(1 << 4); p < 1<<5; p++ {
		if polyIrreducible(p) {
			count++
		}
	}
	if count != 3 {
		t.Errorf("found %d irreducible degree-4 polynomials, want 3", count)
	}
}

func TestPolyInvMod(t *testing.T) {
	const m = uint64(0x11D) // GF(2^8) modulus
	for a := uint64(1); a < 256; a++ {
		inv, ok := polyInvMod(a, m)
		if !ok {
			t.Fatalf("polyInvMod(%#x) failed", a)
		}
		if got := polyMulMod(a, inv, m); got != 1 {
			t.Fatalf("a * a^-1 = %#x for a=%#x, want 1", got, a)
		}
	}
	if _, ok := polyInvMod(0, m); ok {
		t.Error("polyInvMod(0) succeeded, want failure")
	}
}

func TestPolyGCD(t *testing.T) {
	tests := []struct {
		a, b, want uint64
	}{
		{0, 7, 7},
		{7, 0, 7},
		{6, 3, 3},       // x^2+x = x(x+1), gcd with x+1
		{0x5, 0x3, 0x3}, // (x+1)^2 and x+1
		{0x13, 0xB, 1},  // two distinct irreducibles
	}
	for _, tt := range tests {
		if got := polyGCD(tt.a, tt.b); got != tt.want {
			t.Errorf("polyGCD(%#x, %#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPrimeFactors(t *testing.T) {
	tests := []struct {
		n    int
		want []int
	}{
		{2, []int{2}},
		{4, []int{2}},
		{8, []int{2}},
		{12, []int{2, 3}},
		{16, []int{2}},
		{30, []int{2, 3, 5}},
		{32, []int{2}},
	}
	for _, tt := range tests {
		got := primeFactors(tt.n)
		if len(got) != len(tt.want) {
			t.Errorf("primeFactors(%d) = %v, want %v", tt.n, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("primeFactors(%d) = %v, want %v", tt.n, got, tt.want)
				break
			}
		}
	}
}
