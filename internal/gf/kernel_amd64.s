// AVX2 nibble-split GF multiply kernels. The low/high nibble product
// tables (16 bytes each) are exactly PSHUFB shuffle masks: broadcast
// each table into both ymm lanes and one shuffle per nibble half
// computes c*s for 32 packed symbols at once.

#include "textflag.h"

// func mulAddAsmP8(lo, hi *[16]byte, dst, src *byte, n int)
// dst[i] ^= lo[src[i]&0xF] ^ hi[src[i]>>4] for i < n.
// Requires AVX2; n must be a positive multiple of 32.
TEXT ·mulAddAsmP8(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), DX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	VMOVDQU nibMask<>(SB), Y6

loop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VPXOR   (DI), Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, DX
	JNE     loop
	VZEROUPPER
	RET

// func mulAsmP8(lo, hi *[16]byte, dst *byte, n int)
// dst[i] = lo[dst[i]&0xF] ^ hi[dst[i]>>4] for i < n.
// Requires AVX2; n must be a positive multiple of 32.
TEXT ·mulAsmP8(SB), NOSPLIT, $0-32
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ n+24(FP), DX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	VMOVDQU nibMask<>(SB), Y6

scaleloop:
	VMOVDQU (DI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, DI
	SUBQ    $32, DX
	JNE     scaleloop
	VZEROUPPER
	RET

// func cpuidex(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

DATA nibMask<>+0(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA nibMask<>+8(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA nibMask<>+16(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA nibMask<>+24(SB)/8, $0x0F0F0F0F0F0F0F0F
GLOBL nibMask<>(SB), RODATA, $32
