//go:build !amd64

package gf

// Non-amd64 fallbacks: no vector kernels, the pure-Go word kernels in
// kernel.go carry the load.

const haveVecP8 = false

func mulAddVecP8(lo, hi *[16]byte, dst, src []byte) int { return 0 }
func mulVecP8(lo, hi *[16]byte, dst []byte) int         { return 0 }
