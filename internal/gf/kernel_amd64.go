package gf

// AVX2 dispatch for the nibble-split kernels (see kernel_amd64.s).

func mulAddAsmP8(lo, hi *[16]byte, dst, src *byte, n int)
func mulAsmP8(lo, hi *[16]byte, dst *byte, n int)
func cpuidex(op, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// haveVecP8 reports whether the AVX2 nibble kernels may be used: the
// CPU must support AVX2 and the OS must have enabled ymm state.
var haveVecP8 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave = 1 << 27
	const avx = 1 << 28
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv0(); eax&0x6 != 0x6 { // xmm+ymm state enabled
		return false
	}
	const avx2 = 1 << 5
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&avx2 != 0
}

// mulAddVecP8 runs the AVX2 kernel over the 32-byte-aligned bulk and
// returns the number of bytes handled; the caller finishes the tail.
func mulAddVecP8(lo, hi *[16]byte, dst, src []byte) int {
	n := len(src) &^ 31
	if n > 0 {
		mulAddAsmP8(lo, hi, &dst[0], &src[0], n)
	}
	return n
}

func mulVecP8(lo, hi *[16]byte, dst []byte) int {
	n := len(dst) &^ 31
	if n > 0 {
		mulAsmP8(lo, hi, &dst[0], n)
	}
	return n
}
