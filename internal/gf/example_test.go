package gf_test

import (
	"fmt"

	"asymshare/internal/gf"
)

// Example exercises basic field arithmetic over GF(2^8).
func Example() {
	f := gf.MustNew(gf.Bits8)
	a, b := uint32(0x53), uint32(0xCA)
	p := f.Mul(a, b)
	inv, err := f.Inv(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("a*b = %#x\n", p)
	fmt.Printf("(a*b)/b == a: %v\n", f.Mul(p, inv) == a)
	fmt.Printf("a + a = %d (characteristic 2)\n", f.Add(a, a))
	// Output:
	// a*b = 0x8f
	// (a*b)/b == a: true
	// a + a = 0 (characteristic 2)
}

// ExampleField_AddScaledSlice shows the packed-vector hot path used by
// the encoder: dst += c * src, symbol-wise.
func ExampleField_AddScaledSlice() {
	f := gf.MustNew(gf.Bits8)
	dst := []byte{0, 0, 0, 0}
	src := []byte{1, 2, 3, 4}
	f.AddScaledSlice(dst, src, 2) // dst = 2*src over GF(256)
	fmt.Println(dst)
	// Applying the same scaled addition again cancels (characteristic 2).
	f.AddScaledSlice(dst, src, 2)
	fmt.Println(dst)
	// Output:
	// [2 4 6 8]
	// [0 0 0 0]
}
