package gf

// Packed symbol vector helpers. Vectors pack m symbols of p bits into
// ceil(m*p/8) bytes:
//
//	p = 4:   two symbols per byte, low nibble first;
//	p = 8:   one symbol per byte;
//	p = 16:  little-endian 16-bit words;
//	p = 32:  little-endian 32-bit words.

import (
	"encoding/binary"
	"fmt"
)

// VecBytes returns the number of bytes needed to pack m symbols of the
// given width.
func VecBytes(bits uint, m int) int {
	return (m*int(bits) + 7) / 8
}

// VecSymbols returns the number of whole symbols packed in n bytes.
func VecSymbols(bits uint, n int) int {
	return n * 8 / int(bits)
}

// GetSym extracts symbol i from a packed vector.
func GetSym(bits uint, vec []byte, i int) uint32 {
	switch bits {
	case Bits4:
		b := vec[i/2]
		if i%2 == 0 {
			return uint32(b & 0xF)
		}
		return uint32(b >> 4)
	case Bits8:
		return uint32(vec[i])
	case Bits16:
		return uint32(binary.LittleEndian.Uint16(vec[2*i:]))
	case Bits32:
		return binary.LittleEndian.Uint32(vec[4*i:])
	default:
		panic(fmt.Sprintf("gf: GetSym unsupported width %d", bits))
	}
}

// SetSym stores symbol value v at index i in a packed vector.
func SetSym(bits uint, vec []byte, i int, v uint32) {
	switch bits {
	case Bits4:
		if i%2 == 0 {
			vec[i/2] = vec[i/2]&0xF0 | byte(v&0xF)
		} else {
			vec[i/2] = vec[i/2]&0x0F | byte(v&0xF)<<4
		}
	case Bits8:
		vec[i] = byte(v)
	case Bits16:
		binary.LittleEndian.PutUint16(vec[2*i:], uint16(v))
	case Bits32:
		binary.LittleEndian.PutUint32(vec[4*i:], v)
	default:
		panic(fmt.Sprintf("gf: SetSym unsupported width %d", bits))
	}
}

// AddSlice computes dst[i] += src[i] symbol-wise, which in
// characteristic 2 is a plain XOR independent of symbol width. The
// bulk of the work runs 64 bits at a time.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: AddSlice length mismatch")
	}
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// IsZeroSlice reports whether every symbol in the packed vector is zero.
func IsZeroSlice(vec []byte) bool {
	for _, b := range vec {
		if b != 0 {
			return false
		}
	}
	return true
}
