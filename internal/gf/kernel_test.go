package gf

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// mulAddSliceRef is the per-symbol reference the word kernels must
// match bit-for-bit: dst[i] ^= c*src[i] via GetSym/SetSym.
func mulAddSliceRef(f Field, dst, src []byte, c uint32) {
	bits := f.Bits()
	for i := 0; i < VecSymbols(bits, len(src)); i++ {
		s := GetSym(bits, src, i)
		d := GetSym(bits, dst, i)
		SetSym(bits, dst, i, d^f.Mul(s, c))
	}
}

func mulSliceRef(f Field, dst []byte, c uint32) {
	bits := f.Bits()
	for i := 0; i < VecSymbols(bits, len(dst)); i++ {
		SetSym(bits, dst, i, f.Mul(GetSym(bits, dst, i), c))
	}
}

func randVec(rng *rand.Rand, n int) []byte {
	v := make([]byte, n)
	rng.Read(v)
	return v
}

// vecLens exercises the 8-byte word path, the sub-word tail, and the
// empty slice for each width (lengths are in bytes and must hold whole
// symbols for every width under test).
func vecLens(bits uint) []int {
	switch bits {
	case Bits16:
		return []int{0, 2, 6, 8, 10, 64, 258, 1024}
	default:
		return []int{0, 1, 3, 7, 8, 9, 64, 255, 1024}
	}
}

func TestMulAddSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []uint{Bits4, Bits8, Bits16, Bits32} {
		f := MustNew(bits)
		for _, n := range vecLens(bits) {
			if bits == Bits32 && n%4 != 0 {
				continue
			}
			for trial := 0; trial < 8; trial++ {
				c := uint32(rng.Int63()) & f.Mask()
				src := randVec(rng, n)
				dst := randVec(rng, n)
				want := bytes.Clone(dst)
				mulAddSliceRef(f, want, src, c)
				MulAddSlice(f, dst, src, c)
				if !bytes.Equal(dst, want) {
					t.Fatalf("GF(2^%d) n=%d c=%#x: MulAddSlice diverges from reference", bits, n, c)
				}
			}
		}
	}
}

func TestMulSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, bits := range []uint{Bits4, Bits8, Bits16, Bits32} {
		f := MustNew(bits)
		for _, n := range vecLens(bits) {
			if bits == Bits32 && n%4 != 0 {
				continue
			}
			for trial := 0; trial < 8; trial++ {
				c := uint32(rng.Int63()) & f.Mask()
				dst := randVec(rng, n)
				want := bytes.Clone(dst)
				mulSliceRef(f, want, c)
				MulSlice(f, dst, c)
				if !bytes.Equal(dst, want) {
					t.Fatalf("GF(2^%d) n=%d c=%#x: MulSlice diverges from reference", bits, n, c)
				}
			}
		}
	}
}

func TestMulTableMatchesOneShotKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bits := range []uint{Bits4, Bits8, Bits16, Bits32} {
		f := MustNew(bits)
		var tab MulTable
		for trial := 0; trial < 16; trial++ {
			c := uint32(rng.Int63()) & f.Mask()
			tab.Init(f, c)
			if tab.C() != c {
				t.Fatalf("GF(2^%d): C()=%#x want %#x", bits, tab.C(), c)
			}
			n := 128
			src := randVec(rng, n)
			dst := randVec(rng, n)
			want := bytes.Clone(dst)
			mulAddSliceRef(f, want, src, c)
			tab.MulAdd(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("GF(2^%d) c=%#x: MulTable.MulAdd diverges", bits, c)
			}
			want = bytes.Clone(dst)
			mulSliceRef(f, want, c)
			tab.Mul(dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("GF(2^%d) c=%#x: MulTable.Mul diverges", bits, c)
			}
		}
	}
}

func TestAccumSlicesMatchesSequentialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, bits := range []uint{Bits4, Bits8, Bits16, Bits32} {
		f := MustNew(bits)
		for _, nsrc := range []int{0, 1, 2, 3, 7, 16} {
			for _, n := range []int{8, 24, 130, 1024} {
				if bits == Bits32 && n%4 != 0 {
					continue
				}
				srcs := make([][]byte, nsrc)
				tabs := make([]MulTable, nsrc)
				dst := randVec(rng, n)
				want := bytes.Clone(dst)
				for j := 0; j < nsrc; j++ {
					srcs[j] = randVec(rng, n)
					// Include the special constants 0 and 1 sometimes.
					c := uint32(rng.Int63()) & f.Mask()
					if j%5 == 3 {
						c = uint32(j % 2)
					}
					tabs[j].Init(f, c)
					mulAddSliceRef(f, want, srcs[j], c)
				}
				scaleC := uint32(rng.Int63()) & f.Mask()
				var scale MulTable
				scale.Init(f, scaleC)
				mulSliceRef(f, want, scaleC)
				AccumSlices(dst, srcs, tabs, &scale)
				if !bytes.Equal(dst, want) {
					t.Fatalf("GF(2^%d) nsrc=%d n=%d: AccumSlices diverges from sequential fold", bits, nsrc, n)
				}
			}
		}
	}
}

func TestAccumSlicesNilScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := MustNew(Bits8)
	dst := randVec(rng, 100)
	src := randVec(rng, 100)
	want := bytes.Clone(dst)
	var tab MulTable
	tab.Init(f, 0x5B)
	mulAddSliceRef(f, want, src, 0x5B)
	AccumSlices(dst, [][]byte{src}, []MulTable{tab}, nil)
	if !bytes.Equal(dst, want) {
		t.Fatal("AccumSlices with nil scale diverges")
	}
}

func TestMulAddWordsMatchesMulLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, bits := range []uint{Bits4, Bits8, Bits16, Bits32} {
		f := MustNew(bits)
		for _, n := range []int{0, 1, 5, 64, 129} {
			for trial := 0; trial < 8; trial++ {
				c := uint32(rng.Int63()) & f.Mask()
				src := make([]uint32, n)
				dst := make([]uint32, n)
				want := make([]uint32, n)
				for i := range src {
					src[i] = uint32(rng.Int63()) & f.Mask()
					dst[i] = uint32(rng.Int63()) & f.Mask()
					want[i] = dst[i] ^ f.Mul(src[i], c)
				}
				MulAddWords(f, dst, src, c)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("GF(2^%d) c=%#x i=%d: MulAddWords %#x want %#x", bits, c, i, dst[i], want[i])
					}
				}
				scaled := make([]uint32, n)
				copy(scaled, want)
				MulWords(f, scaled, c)
				for i := range scaled {
					if w := f.Mul(want[i], c); scaled[i] != w {
						t.Fatalf("GF(2^%d) c=%#x i=%d: MulWords %#x want %#x", bits, c, i, scaled[i], w)
					}
				}
			}
		}
	}
}

// BenchmarkMulAddSlice compares the split-table word kernels against
// the per-symbol reference and the field's own byte-at-a-time path —
// the speedup the decode pipeline is built on.
func BenchmarkMulAddSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, bits := range []uint{Bits8, Bits16} {
		f := MustNew(bits)
		for _, n := range []int{4096, 16384} {
			src := randVec(rng, n)
			dst := randVec(rng, n)
			c := uint32(0xA7) & f.Mask()
			b.Run(fmt.Sprintf("kernel/p%d/%dB", bits, n), func(b *testing.B) {
				b.SetBytes(int64(n))
				for i := 0; i < b.N; i++ {
					MulAddSlice(f, dst, src, c)
				}
			})
			b.Run(fmt.Sprintf("table/p%d/%dB", bits, n), func(b *testing.B) {
				var tab MulTable
				tab.Init(f, c)
				b.SetBytes(int64(n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tab.MulAdd(dst, src)
				}
			})
			b.Run(fmt.Sprintf("field/p%d/%dB", bits, n), func(b *testing.B) {
				b.SetBytes(int64(n))
				for i := 0; i < b.N; i++ {
					f.AddScaledSlice(dst, src, c)
				}
			})
			b.Run(fmt.Sprintf("persym/p%d/%dB", bits, n), func(b *testing.B) {
				b.SetBytes(int64(n))
				for i := 0; i < b.N; i++ {
					mulAddSliceRef(f, dst, src, c)
				}
			})
		}
	}
}

// BenchmarkAccumSlices measures the fused multi-source kernel at the
// shape the pipeline uses it: fold r source rows into one destination
// segment with a single load/store of dst per word.
func BenchmarkAccumSlices(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	f := MustNew(Bits8)
	const n = 16384
	for _, nsrc := range []int{8, 32, 64} {
		srcs := make([][]byte, nsrc)
		tabs := make([]MulTable, nsrc)
		for j := range srcs {
			srcs[j] = randVec(rng, n)
			tabs[j].Init(f, uint32(rng.Int63())&f.Mask()|1)
		}
		dst := randVec(rng, n)
		b.Run(fmt.Sprintf("fused/r%d", nsrc), func(b *testing.B) {
			b.SetBytes(int64(n * nsrc))
			for i := 0; i < b.N; i++ {
				AccumSlices(dst, srcs, tabs, nil)
			}
		})
		b.Run(fmt.Sprintf("perrow/r%d", nsrc), func(b *testing.B) {
			b.SetBytes(int64(n * nsrc))
			for i := 0; i < b.N; i++ {
				for j := range srcs {
					tabs[j].MulAdd(dst, srcs[j])
				}
			}
		})
	}
}
