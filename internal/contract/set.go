package contract

// Set is the owner side of the contract subsystem: which peer holds
// which batch rank of which generation, under which contract id, until
// when. The repair daemon (internal/repair) recomputes the per-chunk
// rank-margin watermark from this state alone, so with a journal path
// the set survives kill -9 mid-repair: Add/Renew/Drop are fsynced
// before they return, and OpenSet replays the longest valid prefix,
// truncating torn tails — the same recovery policy as the peer-side
// Book and the disk store.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"asymshare/internal/fsx"
)

// Holding is one owner-side contract record: peer `Peer` (fingerprint,
// dialable at Addr) holds the batch of rank Rank for chunk Chunk under
// contract ContractID until Expires.
type Holding struct {
	ContractID uint64
	Addr       string
	Peer       string // key fingerprint, the ledger identity to credit
	Chunk      int
	Rank       int
	Messages   int
	Bytes      int64
	Expires    time.Time
}

// Expired reports whether the holding's contract term has lapsed.
func (h Holding) Expired(now time.Time) bool { return !h.Expires.After(now) }

// Set tracks the owner's holdings, optionally journaled.
type Set struct {
	mu       sync.Mutex
	holdings map[uint64]Holding
	j        *journal
	closed   bool
}

// NewSet returns an in-memory set.
func NewSet() *Set {
	s, _, err := OpenSet(nil, "")
	if err != nil {
		panic(err) // unreachable: the memory-only path cannot fail
	}
	return s
}

// OpenSet opens a holdings set, replaying the journal at path when
// non-empty. fsys nil means the real OS.
func OpenSet(fsys fsx.FS, path string) (*Set, Recovery, error) {
	s := &Set{holdings: make(map[uint64]Holding)}
	var rec Recovery
	if path != "" {
		j, r, err := openJournal(fsys, path, s.replay)
		if err != nil {
			return nil, r, err
		}
		s.j = j
		rec = r
	}
	rec.Active = len(s.holdings)
	return s, rec, nil
}

// Set record opcodes (a separate journal from the Book's, so the
// overlapping numbers are harmless).
const (
	opHoldingAdd   = 1
	opHoldingRenew = 2
	opHoldingDrop  = 3
)

// encodeHolding renders an add record: op(1) id(8) chunk(4) rank(4)
// messages(4) bytes(8) expires(8) addrLen(2) addr peerLen(2) peer.
func encodeHolding(h Holding) []byte {
	out := make([]byte, 41+len(h.Addr)+len(h.Peer))
	out[0] = opHoldingAdd
	binary.BigEndian.PutUint64(out[1:], h.ContractID)
	binary.BigEndian.PutUint32(out[9:], uint32(h.Chunk))
	binary.BigEndian.PutUint32(out[13:], uint32(h.Rank))
	binary.BigEndian.PutUint32(out[17:], uint32(h.Messages))
	binary.BigEndian.PutUint64(out[21:], uint64(h.Bytes))
	binary.BigEndian.PutUint64(out[29:], uint64(h.Expires.Unix()))
	binary.BigEndian.PutUint16(out[37:], uint16(len(h.Addr)))
	off := 39 + copy(out[39:], h.Addr)
	binary.BigEndian.PutUint16(out[off:], uint16(len(h.Peer)))
	copy(out[off+2:], h.Peer)
	return out
}

func decodeHolding(payload []byte) (Holding, bool) {
	if len(payload) < 41 {
		return Holding{}, false
	}
	addrLen := int(binary.BigEndian.Uint16(payload[37:]))
	if len(payload) < 41+addrLen {
		return Holding{}, false
	}
	peerOff := 39 + addrLen
	peerLen := int(binary.BigEndian.Uint16(payload[peerOff:]))
	if len(payload) != 41+addrLen+peerLen {
		return Holding{}, false
	}
	return Holding{
		ContractID: binary.BigEndian.Uint64(payload[1:]),
		Chunk:      int(binary.BigEndian.Uint32(payload[9:])),
		Rank:       int(binary.BigEndian.Uint32(payload[13:])),
		Messages:   int(binary.BigEndian.Uint32(payload[17:])),
		Bytes:      int64(binary.BigEndian.Uint64(payload[21:])),
		Expires:    time.Unix(int64(binary.BigEndian.Uint64(payload[29:])), 0),
		Addr:       string(payload[39 : 39+addrLen]),
		Peer:       string(payload[peerOff+2:]),
	}, true
}

// replay applies one journal record during OpenSet.
func (s *Set) replay(payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case opHoldingAdd:
		if h, ok := decodeHolding(payload); ok {
			s.holdings[h.ContractID] = h
		}
	case opHoldingRenew:
		if len(payload) != 17 {
			return
		}
		id := binary.BigEndian.Uint64(payload[1:])
		if h, ok := s.holdings[id]; ok {
			h.Expires = time.Unix(int64(binary.BigEndian.Uint64(payload[9:])), 0)
			s.holdings[id] = h
		}
	case opHoldingDrop:
		if len(payload) != 9 {
			return
		}
		delete(s.holdings, binary.BigEndian.Uint64(payload[1:]))
	}
}

// Add records (or replaces) a holding.
func (s *Set) Add(h Holding) error {
	if h.ContractID == 0 || h.Addr == "" {
		return fmt.Errorf("%w: holding needs a contract id and address", ErrBadContract)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.j != nil {
		if err := s.j.append(encodeHolding(h)); err != nil {
			return err
		}
	}
	s.holdings[h.ContractID] = h
	return nil
}

// Renew records a holding's new expiry.
func (s *Set) Renew(id uint64, expires time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	h, ok := s.holdings[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknown, id)
	}
	if s.j != nil {
		rec := make([]byte, 17)
		rec[0] = opHoldingRenew
		binary.BigEndian.PutUint64(rec[1:], id)
		binary.BigEndian.PutUint64(rec[9:], uint64(expires.Unix()))
		if err := s.j.append(rec); err != nil {
			return err
		}
	}
	h.Expires = expires
	s.holdings[id] = h
	return nil
}

// Drop forgets a holding (lost, expired, or released).
func (s *Set) Drop(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.holdings[id]; !ok {
		return nil
	}
	if s.j != nil {
		rec := make([]byte, 9)
		rec[0] = opHoldingDrop
		binary.BigEndian.PutUint64(rec[1:], id)
		if err := s.j.append(rec); err != nil {
			return err
		}
	}
	delete(s.holdings, id)
	return nil
}

// Holdings returns every holding sorted by contract id.
func (s *Set) Holdings() []Holding {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Holding, 0, len(s.holdings))
	for _, h := range s.holdings {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ContractID < out[j].ContractID })
	return out
}

// ForChunk returns the holdings of one chunk sorted by contract id.
func (s *Set) ForChunk(chunk int) []Holding {
	all := s.Holdings()
	out := all[:0]
	for _, h := range all {
		if h.Chunk == chunk {
			out = append(out, h)
		}
	}
	return out
}

// Has reports whether addr already holds a batch of the given chunk.
func (s *Set) Has(addr string, chunk int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.holdings {
		if h.Addr == addr && h.Chunk == chunk {
			return true
		}
	}
	return false
}

// MaxRank returns the highest batch rank recorded for a chunk, or -1.
// Fresh repair batches must be minted past every rank ever used so a
// replacement peer's coefficients are not simply a copy of a dead
// peer's (see repair.NextRank, which also consults manifest digests).
func (s *Set) MaxRank(chunk int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := -1
	for _, h := range s.holdings {
		if h.Chunk == chunk && h.Rank > max {
			max = h.Rank
		}
	}
	return max
}

// Close releases the journal handle.
func (s *Set) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.j.close()
}
