// Package contract implements the storage-contract subsystem: explicit,
// durable obligations layered over the fire-and-forget dissemination of
// Sec. III-A. A storage peer advertises a capacity it can actually
// honor and keeps a Book of accepted obligations — a contract proposal
// that would push the book past capacity is refused up front
// (ErrOverCapacity → wire.CodeOverCapacity) instead of being silently
// evicted later. The owner keeps the mirror image, a Set of holdings:
// which peer holds which batch rank of which generation, under which
// contract, until when. Both sides journal every mutation through
// internal/fsx with the same CRC-framed append-only format as the disk
// store, so obligations survive kill -9 on either end and the repair
// daemon (internal/repair) can recompute the rank-margin watermark from
// recovered state alone.
package contract

import (
	"errors"
	"time"
)

var (
	// ErrOverCapacity is returned when accepting an obligation would
	// exceed the peer's advertised capacity.
	ErrOverCapacity = errors.New("contract: over advertised capacity")

	// ErrUnknown is returned for operations on a contract id the book
	// does not hold.
	ErrUnknown = errors.New("contract: unknown contract")

	// ErrNotOwner is returned when a principal other than the contract's
	// owner tries to renew, release or re-propose it.
	ErrNotOwner = errors.New("contract: not the contract owner")

	// ErrBadContract is returned for proposals missing required fields.
	ErrBadContract = errors.New("contract: invalid contract")

	// ErrClosed is returned by operations on a closed book or set.
	ErrClosed = errors.New("contract: closed")
)

// Contract is one storage obligation: the holder promises to keep
// Messages encoded messages (Bytes payload bytes) of generation FileID
// for the Owner until Expires.
type Contract struct {
	ID       uint64
	FileID   uint64
	Owner    string // owner key fingerprint
	Messages int
	Bytes    int64
	Expires  time.Time
}

// Expired reports whether the obligation's term has lapsed.
func (c Contract) Expired(now time.Time) bool {
	return !c.Expires.After(now)
}

// validate checks the fields every accepted contract must carry.
func (c Contract) validate() error {
	if c.ID == 0 {
		return errors.New("contract: zero contract id")
	}
	if c.Owner == "" {
		return errors.New("contract: missing owner")
	}
	if c.Messages <= 0 || c.Bytes <= 0 {
		return errors.New("contract: non-positive size")
	}
	return nil
}

// Recovery describes what opening a journaled Book or Set found on
// disk.
type Recovery struct {
	// Records is how many journal records replayed cleanly.
	Records int

	// Active is how many contracts/holdings were live after replay.
	Active int

	// Truncated reports whether a torn or corrupt tail was cut off
	// (the journal was truncated back to its last valid record).
	Truncated bool
}
