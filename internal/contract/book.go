package contract

// Book is the storage-peer side of the contract subsystem: the set of
// obligations this peer has accepted, with capacity accounting. Accept
// is where the eviction gap closes — a proposal that would push the
// obligated bytes past the advertised capacity is refused with
// ErrOverCapacity while the owner is still on the line, instead of
// being silently dropped under pressure later. With a journal path the
// book is durable: every accept/renew/release is CRC-framed, appended
// and fsynced before it is acknowledged, and OpenBook replays the
// journal (truncating torn tails) so a kill -9 never forgets an
// acknowledged obligation.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"asymshare/internal/fsx"
	"asymshare/internal/metrics"
)

// Book record opcodes.
const (
	opAccept  = 1
	opRenew   = 2
	opRelease = 3
)

// BookConfig configures a Book.
type BookConfig struct {
	// Capacity is the advertised contract capacity in payload bytes.
	// Zero or negative means unlimited.
	Capacity int64

	// Path, when set, makes the book durable: obligations are journaled
	// there and recovered by OpenBook. Empty keeps the book in memory.
	Path string

	// FS is the filesystem the journal goes through; nil means the real
	// OS. Tests inject fsx.ErrFS to crash the book deterministically.
	FS fsx.FS

	// Clock overrides time.Now for expiry decisions (tests).
	Clock func() time.Time

	// Metrics, when set, receives the contract_* instrument families.
	Metrics *metrics.Registry
}

// Book tracks accepted obligations and enforces capacity.
type Book struct {
	mu          sync.Mutex
	capacity    int64
	clock       func() time.Time
	obligations map[uint64]Contract
	used        int64
	j           *journal
	closed      bool
	m           bookMetrics
}

// NewBook returns an in-memory book with the given capacity (zero or
// negative means unlimited).
func NewBook(capacity int64) *Book {
	b, _, err := OpenBook(BookConfig{Capacity: capacity})
	if err != nil {
		// Unreachable: the memory-only path cannot fail.
		panic(err)
	}
	return b
}

// OpenBook opens a book, replaying the journal at cfg.Path when set.
// Obligations whose term lapsed while the peer was down are replayed
// and then dropped by the usual lazy expiry, so recovery reports them
// in Recovery.Records but not in the live accounting.
func OpenBook(cfg BookConfig) (*Book, Recovery, error) {
	b := &Book{
		capacity:    cfg.Capacity,
		clock:       cfg.Clock,
		obligations: make(map[uint64]Contract),
		m:           newBookMetrics(cfg.Metrics),
	}
	if b.clock == nil {
		b.clock = time.Now
	}
	if b.capacity < 0 {
		b.capacity = 0
	}
	var rec Recovery
	if cfg.Path != "" {
		j, r, err := openJournal(cfg.FS, cfg.Path, b.replay)
		if err != nil {
			return nil, r, err
		}
		b.j = j
		rec = r
	}
	b.expireLocked(b.clock())
	rec.Active = len(b.obligations)
	b.m.capacity.Set(float64(b.capacity))
	b.publishLocked()
	return b, rec, nil
}

// replay applies one journal record during OpenBook. Invalid records
// in a valid CRC frame are impossible short of a code change; they are
// skipped rather than fatal so an old journal never bricks the peer.
func (b *Book) replay(payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case opAccept:
		c, ok := decodeAccept(payload)
		if !ok {
			return
		}
		b.used -= b.obligations[c.ID].Bytes // replace-on-replay
		b.obligations[c.ID] = c
		b.used += c.Bytes
	case opRenew:
		if len(payload) != 17 {
			return
		}
		id := binary.BigEndian.Uint64(payload[1:])
		c, ok := b.obligations[id]
		if !ok {
			return
		}
		c.Expires = time.Unix(int64(binary.BigEndian.Uint64(payload[9:])), 0)
		b.obligations[id] = c
	case opRelease:
		if len(payload) != 9 {
			return
		}
		id := binary.BigEndian.Uint64(payload[1:])
		if c, ok := b.obligations[id]; ok {
			b.used -= c.Bytes
			delete(b.obligations, id)
		}
	}
}

// encodeAccept renders an accept record:
// op(1) id(8) fileID(8) messages(4) bytes(8) expires(8) ownerLen(2) owner.
func encodeAccept(c Contract) []byte {
	out := make([]byte, 39+len(c.Owner))
	out[0] = opAccept
	binary.BigEndian.PutUint64(out[1:], c.ID)
	binary.BigEndian.PutUint64(out[9:], c.FileID)
	binary.BigEndian.PutUint32(out[17:], uint32(c.Messages))
	binary.BigEndian.PutUint64(out[21:], uint64(c.Bytes))
	binary.BigEndian.PutUint64(out[29:], uint64(c.Expires.Unix()))
	binary.BigEndian.PutUint16(out[37:], uint16(len(c.Owner)))
	copy(out[39:], c.Owner)
	return out
}

func decodeAccept(payload []byte) (Contract, bool) {
	if len(payload) < 39 {
		return Contract{}, false
	}
	ownerLen := int(binary.BigEndian.Uint16(payload[37:]))
	if len(payload) != 39+ownerLen {
		return Contract{}, false
	}
	return Contract{
		ID:       binary.BigEndian.Uint64(payload[1:]),
		FileID:   binary.BigEndian.Uint64(payload[9:]),
		Messages: int(binary.BigEndian.Uint32(payload[17:])),
		Bytes:    int64(binary.BigEndian.Uint64(payload[21:])),
		Expires:  time.Unix(int64(binary.BigEndian.Uint64(payload[29:])), 0),
		Owner:    string(payload[39:]),
	}, true
}

// Accept admits an obligation if it fits. Re-proposing an id the book
// already holds is idempotent for the same owner (the obligation is
// replaced, its bytes re-counted) and ErrNotOwner for anyone else.
func (b *Book) Accept(c Contract) error {
	if err := c.validate(); err != nil {
		b.m.invalid.Inc()
		return fmt.Errorf("%w: %v", ErrBadContract, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	now := b.clock()
	b.expireLocked(now)
	if c.Expired(now) {
		b.m.invalid.Inc()
		return fmt.Errorf("%w: already expired", ErrBadContract)
	}
	replaced := int64(0)
	if old, ok := b.obligations[c.ID]; ok {
		if old.Owner != c.Owner {
			b.m.notOwner.Inc()
			return fmt.Errorf("%w: contract %d", ErrNotOwner, c.ID)
		}
		replaced = old.Bytes
	}
	if b.capacity > 0 && b.used-replaced+c.Bytes > b.capacity {
		b.m.overCap.Inc()
		return fmt.Errorf("%w: %d obligated + %d proposed > %d capacity",
			ErrOverCapacity, b.used-replaced, c.Bytes, b.capacity)
	}
	if b.j != nil {
		if err := b.j.append(encodeAccept(c)); err != nil {
			return err
		}
	}
	b.used += c.Bytes - replaced
	b.obligations[c.ID] = c
	b.m.accepted.Inc()
	b.publishLocked()
	return nil
}

// Renew extends an obligation to the new expiry. Only the contract's
// owner may renew.
func (b *Book) Renew(id uint64, owner string, expires time.Time) (Contract, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return Contract{}, ErrClosed
	}
	b.expireLocked(b.clock())
	c, ok := b.obligations[id]
	if !ok {
		return Contract{}, fmt.Errorf("%w: %d", ErrUnknown, id)
	}
	if c.Owner != owner {
		b.m.notOwner.Inc()
		return Contract{}, fmt.Errorf("%w: contract %d", ErrNotOwner, id)
	}
	if b.j != nil {
		rec := make([]byte, 17)
		rec[0] = opRenew
		binary.BigEndian.PutUint64(rec[1:], id)
		binary.BigEndian.PutUint64(rec[9:], uint64(expires.Unix()))
		if err := b.j.append(rec); err != nil {
			return Contract{}, err
		}
	}
	c.Expires = expires
	b.obligations[id] = c
	b.m.renewed.Inc()
	return c, nil
}

// Release ends an obligation early, freeing its capacity. Only the
// contract's owner may release.
func (b *Book) Release(id uint64, owner string) (Contract, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return Contract{}, ErrClosed
	}
	b.expireLocked(b.clock())
	c, ok := b.obligations[id]
	if !ok {
		return Contract{}, fmt.Errorf("%w: %d", ErrUnknown, id)
	}
	if c.Owner != owner {
		b.m.notOwner.Inc()
		return Contract{}, fmt.Errorf("%w: contract %d", ErrNotOwner, id)
	}
	if b.j != nil {
		rec := make([]byte, 9)
		rec[0] = opRelease
		binary.BigEndian.PutUint64(rec[1:], id)
		if err := b.j.append(rec); err != nil {
			return Contract{}, err
		}
	}
	b.used -= c.Bytes
	delete(b.obligations, id)
	b.m.released.Inc()
	b.publishLocked()
	return c, nil
}

// expireLocked drops lapsed obligations. Expiry is lazy and purely
// in-memory — the journal keeps the accept records, and replay plus
// the same lazy sweep reproduces the exact live set after a restart.
func (b *Book) expireLocked(now time.Time) {
	dropped := 0
	for id, c := range b.obligations {
		if c.Expired(now) {
			b.used -= c.Bytes
			delete(b.obligations, id)
			dropped++
		}
	}
	if dropped > 0 {
		b.m.expired.Add(uint64(dropped))
		b.publishLocked()
	}
}

// publishLocked refreshes the book gauges.
func (b *Book) publishLocked() {
	b.m.active.Set(float64(len(b.obligations)))
	b.m.obligated.Set(float64(b.used))
}

// Used returns the currently obligated payload bytes.
func (b *Book) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.clock())
	return b.used
}

// Capacity returns the advertised capacity (0 = unlimited).
func (b *Book) Capacity() int64 { return b.capacity }

// Get returns one obligation.
func (b *Book) Get(id uint64) (Contract, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.clock())
	c, ok := b.obligations[id]
	return c, ok
}

// Contracts returns the live obligations sorted by id.
func (b *Book) Contracts() []Contract {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.clock())
	out := make([]Contract, 0, len(b.obligations))
	for _, c := range b.obligations {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ContractsOf returns the live obligations of one owner, sorted by id.
func (b *Book) ContractsOf(owner string) []Contract {
	all := b.Contracts()
	out := all[:0]
	for _, c := range all {
		if c.Owner == owner {
			out = append(out, c)
		}
	}
	return out
}

// Close releases the journal handle. Further mutations fail with
// ErrClosed.
func (b *Book) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	return b.j.close()
}
