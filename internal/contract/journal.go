package contract

// Append-only contract journal, shared by the peer-side Book and the
// owner-side Set. The format mirrors internal/store's message journals
// — magic header, then CRC-32C (Castagnoli) length-prefixed records —
// but records are opaque payloads interpreted by the caller, so both
// sides can journal their own record shapes through one recovery
// policy: replay the longest valid prefix, truncate a torn or corrupt
// tail in place, and append from there. Every append is fsynced before
// it returns: obligations are low-rate control state, and an
// acknowledged contract must never be lost to a kill -9.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"asymshare/internal/fsx"
)

const (
	journalMagic   = "ASC1"
	journalVersion = 1
	jHeaderLen     = 8
	jRecordHdrLen  = 8 // u32 payload length, u32 CRC

	// maxJournalRecord bounds one record payload; contract records are
	// tiny, so anything larger is corruption, not data.
	maxJournalRecord = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errJournalCorrupt classifies an unreadable header — unlike a torn
// tail this means the file was never a contract journal.
var errJournalCorrupt = errors.New("contract: corrupt journal")

// journal is an open, fsync-on-append record log.
type journal struct {
	fsys fsx.FS
	f    fsx.File
	path string
}

// journalCRC computes the record CRC over the length field and the
// payload, skipping the CRC field itself.
func journalCRC(length []byte, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, length)
	return crc32.Update(crc, castagnoli, payload)
}

// openJournal opens (or creates) the journal at path, replays every
// valid record into the replay callback, truncates any torn or corrupt
// tail, and leaves the file positioned for appending.
func openJournal(fsys fsx.FS, path string, replay func(payload []byte)) (*journal, Recovery, error) {
	if fsys == nil {
		fsys = fsx.OS
	}
	var rec Recovery
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, rec, fmt.Errorf("contract: mkdir %s: %w", dir, err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("contract: open journal %s: %w", path, err)
	}
	j := &journal{fsys: fsys, f: f, path: path}

	size, err := j.size()
	if err != nil {
		f.Close()
		return nil, rec, err
	}
	if size == 0 {
		// Fresh journal: write and persist the header so a crash right
		// after creation still leaves a parseable file.
		hdr := make([]byte, jHeaderLen)
		copy(hdr, journalMagic)
		binary.BigEndian.PutUint32(hdr[4:], journalVersion)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("contract: write journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("contract: sync journal header: %w", err)
		}
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("contract: sync journal dir: %w", err)
		}
		return j, rec, nil
	}

	valid, n, truncated, err := j.scan(size, replay)
	if err != nil {
		f.Close()
		return nil, rec, err
	}
	rec.Records = n
	rec.Truncated = truncated
	if truncated {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("contract: truncate torn tail: %w", err)
		}
		if valid < jHeaderLen {
			// The crash tore the header itself: rewrite it so the next
			// open parses a well-formed (empty) journal.
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				f.Close()
				return nil, rec, fmt.Errorf("contract: seek after header reset: %w", err)
			}
			hdr := make([]byte, jHeaderLen)
			copy(hdr, journalMagic)
			binary.BigEndian.PutUint32(hdr[4:], journalVersion)
			if _, err := f.Write(hdr); err != nil {
				f.Close()
				return nil, rec, fmt.Errorf("contract: rewrite journal header: %w", err)
			}
			valid = jHeaderLen
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("contract: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, rec, fmt.Errorf("contract: seek journal end: %w", err)
	}
	return j, rec, nil
}

// size stats the open journal file.
func (j *journal) size() (int64, error) {
	info, err := j.fsys.Stat(j.path)
	if err != nil {
		return 0, fmt.Errorf("contract: stat journal: %w", err)
	}
	return info.Size(), nil
}

// scan replays records from the start, returning the byte offset of
// the last valid record's end, the record count, and whether a tail
// must be truncated. A journal whose header cannot be parsed — a
// partially-written 4-byte file, say — is treated as a fully torn tail
// and reset rather than refused: losing a contract journal must not
// brick the peer.
func (j *journal) scan(size int64, replay func([]byte)) (valid int64, n int, truncated bool, err error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, false, fmt.Errorf("contract: seek journal: %w", err)
	}
	hdr := make([]byte, jHeaderLen)
	if size < jHeaderLen {
		return 0, 0, true, nil
	}
	if _, err := io.ReadFull(j.f, hdr); err != nil {
		return 0, 0, true, nil
	}
	if string(hdr[:4]) != journalMagic || binary.BigEndian.Uint32(hdr[4:]) != journalVersion {
		return 0, 0, false, fmt.Errorf("%w: bad magic in %s", errJournalCorrupt, j.path)
	}
	valid = jHeaderLen
	remaining := size - jHeaderLen
	var rhdr [jRecordHdrLen]byte
	for remaining >= jRecordHdrLen {
		if _, err := io.ReadFull(j.f, rhdr[:]); err != nil {
			return valid, n, true, nil
		}
		payloadLen := binary.BigEndian.Uint32(rhdr[:4])
		recLen := int64(jRecordHdrLen) + int64(payloadLen)
		if payloadLen > maxJournalRecord || recLen > remaining {
			return valid, n, true, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			return valid, n, true, nil
		}
		if journalCRC(rhdr[:4], payload) != binary.BigEndian.Uint32(rhdr[4:]) {
			return valid, n, true, nil
		}
		replay(payload)
		valid += recLen
		remaining -= recLen
		n++
	}
	return valid, n, remaining != 0, nil
}

// append frames, writes and fsyncs one record.
func (j *journal) append(payload []byte) error {
	if len(payload) > maxJournalRecord {
		return fmt.Errorf("contract: journal record of %d bytes", len(payload))
	}
	buf := make([]byte, jRecordHdrLen+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[jRecordHdrLen:], payload)
	binary.BigEndian.PutUint32(buf[4:], journalCRC(buf[:4], payload))
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("contract: append journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("contract: sync journal: %w", err)
	}
	return nil
}

// close releases the file handle.
func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
