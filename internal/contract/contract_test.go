package contract

import (
	"errors"
	"testing"
	"time"
)

// fixedClock returns a settable clock for deterministic expiry tests.
type fixedClock struct{ now time.Time }

func (c *fixedClock) Now() time.Time { return c.now }

func testContract(id uint64, bytes int64, expires time.Time) Contract {
	return Contract{
		ID:       id,
		FileID:   100 + id,
		Owner:    "owner-a",
		Messages: 8,
		Bytes:    bytes,
		Expires:  expires,
	}
}

func TestBookAcceptAndCapacity(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_000_000, 0)}
	b, _, err := OpenBook(BookConfig{Capacity: 1000, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	exp := clk.now.Add(time.Hour)
	if err := b.Accept(testContract(1, 600, exp)); err != nil {
		t.Fatalf("accept 1: %v", err)
	}
	if err := b.Accept(testContract(2, 300, exp)); err != nil {
		t.Fatalf("accept 2: %v", err)
	}
	// 900/1000 used: a 200-byte obligation must be refused.
	err = b.Accept(testContract(3, 200, exp))
	if !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("accept over capacity: err = %v, want ErrOverCapacity", err)
	}
	if got := b.Used(); got != 900 {
		t.Errorf("used = %d, want 900", got)
	}
	// Releasing 1 frees room for 3.
	if _, err := b.Release(1, "owner-a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(testContract(3, 200, exp)); err != nil {
		t.Errorf("accept after release: %v", err)
	}
}

func TestBookOwnershipEnforced(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_000_000, 0)}
	b, _, err := OpenBook(BookConfig{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	exp := clk.now.Add(time.Hour)
	if err := b.Accept(testContract(1, 100, exp)); err != nil {
		t.Fatal(err)
	}
	// A different principal cannot renew, release, or re-propose.
	if _, err := b.Renew(1, "owner-b", exp.Add(time.Hour)); !errors.Is(err, ErrNotOwner) {
		t.Errorf("renew by stranger: err = %v, want ErrNotOwner", err)
	}
	if _, err := b.Release(1, "owner-b"); !errors.Is(err, ErrNotOwner) {
		t.Errorf("release by stranger: err = %v, want ErrNotOwner", err)
	}
	c := testContract(1, 100, exp)
	c.Owner = "owner-b"
	if err := b.Accept(c); !errors.Is(err, ErrNotOwner) {
		t.Errorf("re-propose by stranger: err = %v, want ErrNotOwner", err)
	}
	// Unknown ids are typed too.
	if _, err := b.Renew(99, "owner-a", exp); !errors.Is(err, ErrUnknown) {
		t.Errorf("renew unknown: err = %v, want ErrUnknown", err)
	}
}

func TestBookLazyExpiryFreesCapacity(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_000_000, 0)}
	b, _, err := OpenBook(BookConfig{Capacity: 500, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(testContract(1, 500, clk.now.Add(time.Minute))); err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(testContract(2, 500, clk.now.Add(time.Hour))); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("accept while full: err = %v", err)
	}
	// After contract 1 lapses, its capacity is reclaimed lazily.
	clk.now = clk.now.Add(2 * time.Minute)
	if err := b.Accept(testContract(2, 500, clk.now.Add(time.Hour))); err != nil {
		t.Errorf("accept after expiry: %v", err)
	}
	if got := len(b.Contracts()); got != 1 {
		t.Errorf("contracts = %d, want 1", got)
	}
	if _, ok := b.Get(1); ok {
		t.Error("expired contract still visible")
	}
}

func TestBookIdempotentReProposal(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_000_000, 0)}
	b, _, err := OpenBook(BookConfig{Capacity: 1000, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	exp := clk.now.Add(time.Hour)
	if err := b.Accept(testContract(1, 600, exp)); err != nil {
		t.Fatal(err)
	}
	// Re-proposing the same id replaces the obligation without double
	// counting the bytes.
	if err := b.Accept(testContract(1, 700, exp)); err != nil {
		t.Fatalf("re-propose: %v", err)
	}
	if got := b.Used(); got != 700 {
		t.Errorf("used = %d, want 700", got)
	}
}

func TestBookRejectsInvalid(t *testing.T) {
	b := NewBook(0)
	defer b.Close()
	now := time.Now()
	cases := []Contract{
		{ID: 0, Owner: "a", Messages: 1, Bytes: 1, Expires: now.Add(time.Hour)},
		{ID: 1, Owner: "", Messages: 1, Bytes: 1, Expires: now.Add(time.Hour)},
		{ID: 1, Owner: "a", Messages: 0, Bytes: 1, Expires: now.Add(time.Hour)},
		{ID: 1, Owner: "a", Messages: 1, Bytes: 0, Expires: now.Add(time.Hour)},
		{ID: 1, Owner: "a", Messages: 1, Bytes: 1, Expires: now.Add(-time.Hour)},
	}
	for i, c := range cases {
		if err := b.Accept(c); !errors.Is(err, ErrBadContract) {
			t.Errorf("case %d: err = %v, want ErrBadContract", i, err)
		}
	}
}

func TestSetAddDropRenewAndRanks(t *testing.T) {
	s := NewSet()
	defer s.Close()
	exp := time.Now().Add(time.Hour)
	for i, rank := range []int{0, 1, 4} {
		err := s.Add(Holding{
			ContractID: uint64(i + 1), Addr: "a", Peer: "fp", Chunk: 0,
			Rank: rank, Messages: 4, Bytes: 400, Expires: exp,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MaxRank(0); got != 4 {
		t.Errorf("MaxRank(0) = %d, want 4", got)
	}
	if got := s.MaxRank(1); got != -1 {
		t.Errorf("MaxRank(1) = %d, want -1", got)
	}
	if !s.Has("a", 0) || s.Has("b", 0) || s.Has("a", 1) {
		t.Error("Has() misreports holdings")
	}
	if err := s.Drop(3); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxRank(0); got != 1 {
		t.Errorf("MaxRank after drop = %d, want 1", got)
	}
	newExp := exp.Add(time.Hour)
	if err := s.Renew(1, newExp); err != nil {
		t.Fatal(err)
	}
	if got := s.Holdings()[0].Expires.Unix(); got != newExp.Unix() {
		t.Errorf("renewed expiry = %d, want %d", got, newExp.Unix())
	}
	if err := s.Renew(99, newExp); !errors.Is(err, ErrUnknown) {
		t.Errorf("renew unknown holding: err = %v", err)
	}
}
