package contract

import (
	"errors"
	"os"
	"testing"
	"time"

	"asymshare/internal/fsx"
)

// TestBookJournalRecovery pins the durability contract: every accept,
// renew and release that returned nil survives a hard crash, expired
// obligations are swept on recovery, and capacity accounting is exact
// after replay.
func TestBookJournalRecovery(t *testing.T) {
	efs := fsx.NewErrFS(7)
	clk := &fixedClock{now: time.Unix(1_000_000, 0)}
	cfg := BookConfig{Capacity: 2000, Path: "peer/contracts.j", FS: efs, Clock: clk.Now}

	b, rec, err := OpenBook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 || rec.Truncated {
		t.Fatalf("fresh recovery = %+v", rec)
	}
	exp := clk.now.Add(time.Hour)
	short := clk.now.Add(time.Minute)
	if err := b.Accept(testContract(1, 500, exp)); err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(testContract(2, 400, exp)); err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(testContract(3, 300, short)); err != nil { // will lapse
		t.Fatal(err)
	}
	if _, err := b.Renew(2, "owner-a", exp.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Release(1, "owner-a"); err != nil {
		t.Fatal(err)
	}

	// kill -9: no Close, handles die, only fsynced bytes survive.
	efs.Reboot()
	clk.now = clk.now.Add(30 * time.Minute) // contract 3 lapsed meanwhile

	b2, rec2, err := OpenBook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Records != 5 {
		t.Errorf("recovered records = %d, want 5", rec2.Records)
	}
	live := b2.Contracts()
	if len(live) != 1 || live[0].ID != 2 {
		t.Fatalf("recovered contracts = %+v, want only id 2", live)
	}
	if got := live[0].Expires.Unix(); got != exp.Add(time.Hour).Unix() {
		t.Errorf("recovered expiry = %d, want the renewed one %d", got, exp.Add(time.Hour).Unix())
	}
	if got := b2.Used(); got != 400 {
		t.Errorf("recovered used = %d, want 400", got)
	}
}

// TestBookJournalTornTail crashes the filesystem at every op of a
// fixed workload and verifies the invariant that matters: an accept
// that returned nil is never lost, and recovery never errors — a torn
// tail is truncated, not fatal.
func TestBookJournalTornTail(t *testing.T) {
	clkNow := time.Unix(1_000_000, 0)
	exp := clkNow.Add(time.Hour)
	workload := func(b *Book) int {
		acked := 0
		for i := uint64(1); i <= 6; i++ {
			if err := b.Accept(testContract(i, 100, exp)); err != nil {
				break
			}
			acked++
		}
		return acked
	}
	// Baseline run to count ops.
	base := fsx.NewErrFS(1)
	clk := &fixedClock{now: clkNow}
	b, _, err := OpenBook(BookConfig{Path: "c.j", FS: base, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	workload(b)
	totalOps := base.Ops()

	for crashAt := 1; crashAt <= totalOps; crashAt++ {
		efs := fsx.NewErrFS(int64(crashAt))
		efs.CrashAtOp(crashAt)
		clk := &fixedClock{now: clkNow}
		cfg := BookConfig{Path: "c.j", FS: efs, Clock: clk.Now}
		b, _, err := OpenBook(cfg)
		acked := 0
		if err == nil {
			acked = workload(b)
		}
		efs.Reboot()
		b2, _, err := OpenBook(cfg)
		if err != nil {
			t.Fatalf("crash@%d: recovery failed: %v", crashAt, err)
		}
		if got := len(b2.Contracts()); got < acked {
			t.Errorf("crash@%d: recovered %d contracts, acked %d", crashAt, got, acked)
		}
		b2.Close()
	}
}

// TestSetJournalRecovery mirrors the Book test for the owner side:
// holdings recorded before a kill -9 — including renews and drops —
// replay exactly, so the repair daemon can recompute watermarks from
// recovered state.
func TestSetJournalRecovery(t *testing.T) {
	efs := fsx.NewErrFS(11)
	exp := time.Unix(2_000_000, 0)

	s, _, err := OpenSet(efs, "owner/holdings.j")
	if err != nil {
		t.Fatal(err)
	}
	adds := []Holding{
		{ContractID: 1, Addr: "p1:1", Peer: "fp1", Chunk: 0, Rank: 0, Messages: 4, Bytes: 400, Expires: exp},
		{ContractID: 2, Addr: "p2:1", Peer: "fp2", Chunk: 0, Rank: 1, Messages: 4, Bytes: 400, Expires: exp},
		{ContractID: 3, Addr: "p1:1", Peer: "fp1", Chunk: 1, Rank: 0, Messages: 4, Bytes: 400, Expires: exp},
	}
	for _, h := range adds {
		if err := s.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Renew(2, exp.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop(3); err != nil {
		t.Fatal(err)
	}

	efs.Reboot()

	s2, rec, err := OpenSet(efs, "owner/holdings.j")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 5 || rec.Active != 2 {
		t.Errorf("recovery = %+v, want 5 records / 2 active", rec)
	}
	hs := s2.Holdings()
	if len(hs) != 2 || hs[0].ContractID != 1 || hs[1].ContractID != 2 {
		t.Fatalf("recovered holdings = %+v", hs)
	}
	if hs[1].Expires.Unix() != exp.Add(time.Hour).Unix() {
		t.Errorf("renewed expiry lost: %d", hs[1].Expires.Unix())
	}
	if hs[0].Addr != "p1:1" || hs[0].Peer != "fp1" {
		t.Errorf("holding fields corrupted: %+v", hs[0])
	}
}

// TestJournalGarbageHeaderResets pins the recovery policy for a file
// that was never a valid journal: refuse (typed error) rather than
// misinterpret — but a short torn header is reset, not fatal.
func TestJournalGarbageHeaderResets(t *testing.T) {
	efs := fsx.NewErrFS(3)
	f, err := efs.OpenFile("bad.j", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("NOTAJOURNAL!")); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()
	if _, _, err := OpenBook(BookConfig{Path: "bad.j", FS: efs}); !errors.Is(err, errJournalCorrupt) {
		t.Errorf("garbage header: err = %v, want errJournalCorrupt", err)
	}

	// A 3-byte torn header (crash during creation) is swept instead.
	g, err := efs.OpenFile("torn.j", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("AS")); err != nil {
		t.Fatal(err)
	}
	g.Sync()
	g.Close()
	b, rec, err := OpenBook(BookConfig{Path: "torn.j", FS: efs})
	if err != nil {
		t.Fatalf("torn header: %v", err)
	}
	if !rec.Truncated {
		t.Error("torn header not reported as truncated")
	}
	b.Close()
}
