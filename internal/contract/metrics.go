package contract

import "asymshare/internal/metrics"

// Metric names exported by the contract subsystem (see DESIGN.md §7).
const (
	MetricAccepted      = "contract_accepted_total"
	MetricRejected      = "contract_rejected_total"
	MetricRenewed       = "contract_renewed_total"
	MetricReleased      = "contract_released_total"
	MetricExpired       = "contract_expired_total"
	MetricActive        = "contract_active"
	MetricObligatedByte = "contract_obligated_bytes"
	MetricCapacityBytes = "contract_capacity_bytes"
)

// bookMetrics are the instruments of one obligation book. All fields
// are nil-safe: an uninstrumented book records nothing.
type bookMetrics struct {
	accepted  *metrics.Counter
	overCap   *metrics.Counter
	notOwner  *metrics.Counter
	invalid   *metrics.Counter
	renewed   *metrics.Counter
	released  *metrics.Counter
	expired   *metrics.Counter
	active    *metrics.Gauge
	obligated *metrics.Gauge
	capacity  *metrics.Gauge
}

func newBookMetrics(reg *metrics.Registry) bookMetrics {
	return bookMetrics{
		accepted: reg.Counter(MetricAccepted, "Storage obligations accepted into the book."),
		overCap: reg.Counter(MetricRejected, "Storage obligations refused.",
			metrics.L("reason", "over_capacity")),
		notOwner: reg.Counter(MetricRejected, "Storage obligations refused.",
			metrics.L("reason", "not_owner")),
		invalid: reg.Counter(MetricRejected, "Storage obligations refused.",
			metrics.L("reason", "invalid")),
		renewed:   reg.Counter(MetricRenewed, "Obligation terms extended by their owner."),
		released:  reg.Counter(MetricReleased, "Obligations released early by their owner."),
		expired:   reg.Counter(MetricExpired, "Obligations dropped because their term lapsed."),
		active:    reg.Gauge(MetricActive, "Obligations currently held."),
		obligated: reg.Gauge(MetricObligatedByte, "Payload bytes currently under obligation."),
		capacity:  reg.Gauge(MetricCapacityBytes, "Advertised contract capacity in bytes (0 = unlimited)."),
	}
}
