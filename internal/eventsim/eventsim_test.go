package eventsim

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"asymshare/internal/sim"
	"asymshare/internal/trace"
)

func saturated(uploads []float64, duration float64) Config {
	cfg := Config{Duration: duration, Seed: 1}
	for i, u := range uploads {
		cfg.Peers = append(cfg.Peers, PeerConfig{
			Name:       fmt.Sprintf("p%d", i),
			UploadKbps: u,
			Demand:     trace.Always{},
		})
	}
	return cfg
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Duration: 10}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no peers error = %v", err)
	}
	cfg := saturated([]float64{100}, 0)
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero duration error = %v", err)
	}
	cfg = saturated([]float64{100, 100}, 10)
	cfg.Peers[1].Name = "p0"
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("duplicate name error = %v", err)
	}
	cfg = saturated([]float64{100}, 10)
	cfg.Peers[0].Demand = nil
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil demand error = %v", err)
	}
}

func TestConservation(t *testing.T) {
	res, err := Run(saturated([]float64{100, 300, 700}, 500))
	if err != nil {
		t.Fatal(err)
	}
	var sent, received float64
	for i := range res.Names {
		sent += res.SentKbits[i]
		received += res.ReceivedKbits[i]
	}
	if math.Abs(sent-received) > 1e-6 {
		t.Fatalf("sent %v != received %v", sent, received)
	}
	// Saturated peers transmit at close to full line rate.
	for i, u := range []float64{100, 300, 700} {
		rate := res.SentKbits[i] / res.Duration
		if rate < 0.9*u {
			t.Errorf("peer %d sent at %v kbps, capacity %v", i, rate, u)
		}
	}
}

func TestSaturatedConvergesToOwnUploadEventDriven(t *testing.T) {
	// The stochastic, message-granular model must find the same fixed
	// point as the fluid model: download -> own upload.
	uploads := []float64{128, 256, 1024}
	res, err := Run(saturated(uploads, 4000))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range uploads {
		got := res.MeanRateKbps(i)
		if math.Abs(got-u)/u > 0.12 {
			t.Errorf("peer %d: event-driven steady rate %v, want ~%v", i, got, u)
		}
	}
}

func TestCrossValidationAgainstFluidSim(t *testing.T) {
	// Same scenario in both simulators; steady-state rates must agree
	// within a modest tolerance.
	uploads := []float64{200, 500, 800, 1100}

	evRes, err := Run(saturated(uploads, 4000))
	if err != nil {
		t.Fatal(err)
	}

	fluidCfg := sim.Config{Slots: 4000}
	for i, u := range uploads {
		fluidCfg.Peers = append(fluidCfg.Peers, sim.PeerConfig{
			Name:   fmt.Sprintf("p%d", i),
			Upload: trace.Const(u),
			Demand: trace.Always{},
		})
	}
	fluidRes, err := sim.Run(fluidCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range uploads {
		ev := evRes.MeanRateKbps(i)
		fl := fluidRes.MeanDownload(i, 3000, 4000)
		if math.Abs(ev-fl)/fl > 0.15 {
			t.Errorf("peer %d: event %v vs fluid %v kbps disagree", i, ev, fl)
		}
	}
}

func TestFreeloaderStarvedEventDriven(t *testing.T) {
	cfg := Config{Duration: 3000, Seed: 2}
	cfg.Peers = []PeerConfig{
		{Name: "free", UploadKbps: 0, Demand: trace.Always{}},
		{Name: "a", UploadKbps: 500, Demand: trace.Always{}},
		{Name: "b", UploadKbps: 500, Demand: trace.Always{}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	free := res.MeanRateKbps(0)
	honest := res.MeanRateKbps(1)
	if free > 0.05*honest {
		t.Errorf("freeloader %v vs honest %v kbps", free, honest)
	}
}

func TestIdleDemandGetsNothing(t *testing.T) {
	cfg := Config{Duration: 500, Seed: 3}
	cfg.Peers = []PeerConfig{
		{Name: "idle", UploadKbps: 500, Demand: trace.Never{}},
		{Name: "busy", UploadKbps: 500, Demand: trace.Always{}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReceivedKbits[0] != 0 {
		t.Errorf("idle user received %v", res.ReceivedKbits[0])
	}
	// The busy user absorbs both peers' capacity.
	busy := res.MeanRateKbps(1)
	if busy < 0.9*1000 {
		t.Errorf("busy user rate %v, want ~1000", busy)
	}
}

func TestMessageSizeQuantizationEffect(t *testing.T) {
	// Very large messages make allocation lumpy but the long-run rates
	// must still land near the fixed point (Sec. III-D's reason to
	// avoid huge m: quantization errors dilute fairness).
	uploads := []float64{256, 512}
	small, err := Run(Config{
		Duration: 4000, Seed: 4, MessageKbits: 64,
		Peers: saturated(uploads, 1).Peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(Config{
		Duration: 4000, Seed: 4, MessageKbits: 4096,
		Peers: saturated(uploads, 1).Peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range uploads {
		if got := small.MeanRateKbps(i); math.Abs(got-u)/u > 0.12 {
			t.Errorf("small messages, peer %d: %v, want ~%v", i, got, u)
		}
		if got := large.MeanRateKbps(i); math.Abs(got-u)/u > 0.35 {
			t.Errorf("large messages, peer %d: %v, want within 35%% of %v", i, got, u)
		}
	}
}
