// Package eventsim is a message-granular, event-driven simulator that
// cross-validates the fluid (per-slot) model in internal/sim. Where
// the fluid simulator divides each peer's capacity fractionally every
// second, eventsim transmits whole encoded messages one at a time: at
// each completion the peer picks the requester with the smallest
// served/weight virtual time, weights being its receipt-ledger entries
// — weighted-fair-queueing, the deterministic message-granular
// counterpart of Eq. 2. (A naive random pick proportional to ledger
// weights has Pólya-urn reinforcement dynamics and can absorb into
// degenerate fixed points where self-service dies out; WFQ keeps the
// long-run service exactly proportional, like the fluid model.)
//
// If the paper's fixed point is robust to the modeling choice — and
// Sec. IV's analysis says it should be, since only long-run averages
// matter — both simulators must converge to the same allocation. The
// tests and the cross-validation benchmark check exactly that.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"asymshare/internal/fairshare"
	"asymshare/internal/trace"
)

// ErrBadConfig is returned for invalid configurations.
var ErrBadConfig = errors.New("eventsim: invalid configuration")

// PeerConfig describes one peer/user pair.
type PeerConfig struct {
	// Name identifies the peer; must be unique and non-empty.
	Name string

	// UploadKbps is the peer's line rate in kilobits/second.
	UploadKbps float64

	// Demand gates when the user wants data (queried at integer
	// seconds, like the fluid simulator).
	Demand trace.Demand

	// DropsStored models a storage free-rider: the peer accepted its
	// pre-dissemination batches but silently discarded them, so every
	// retention audit of it fails. It still uploads — and earns ledger
	// credit — like any other peer; only audits reveal the loss.
	DropsStored bool
}

// Config describes a run.
type Config struct {
	Peers []PeerConfig

	// Duration is the simulated time horizon in seconds.
	Duration float64

	// MessageKbits is the size of one encoded message in kilobits;
	// zero means 256 (a 32 KiB message).
	MessageKbits float64

	// InitialCredit seeds the ledgers; zero means the fairshare
	// default.
	InitialCredit float64

	// Seed drives the weighted recipient draws.
	Seed int64

	// AuditEpochSec > 0 enables keyed retention audits (the simulated
	// counterpart of internal/audit): every epoch each user audits
	// every other peer's stored batches and debits its local ledger
	// entry for any peer that fails, exactly as audit verdicts feed
	// fairshare.Ledger.Debit in the real system. Zero disables audits.
	AuditEpochSec float64

	// AuditPenaltyKbits is the ledger debit per failed audit; zero
	// means eight messages' worth — the default spot-check sample,
	// fully missing.
	AuditPenaltyKbits float64

	// LedgerBound, when positive, gives every peer a bounded
	// fairshare.ShardedLedger tracking at most this many counterparts
	// exactly; zero keeps exact pairwise ledgers.
	LedgerBound int
}

// Result holds the long-run outcome.
type Result struct {
	Names []string

	// ReceivedKbits[i] is the total traffic user i received.
	ReceivedKbits []float64

	// SentKbits[i] is the total traffic peer i transmitted.
	SentKbits []float64

	// Duration is the simulated horizon (seconds).
	Duration float64

	// WindowRate[i][w] is user i's average download rate (kbps) in
	// consecutive windows of WindowSec.
	WindowRate [][]float64
	WindowSec  float64

	// AuditFailures[i] counts failed retention audits of peer i,
	// summed over all auditing users. Zero everywhere when audits are
	// disabled or every peer is honest.
	AuditFailures []int

	// AuditDebitsKbits[i] is the total ledger debit assessed against
	// peer i across all auditors.
	AuditDebitsKbits []float64

	// PairKbits[i][j] is the traffic user i received from peer j.
	// Self-allocation (i == j) is permitted — a peer may spend its own
	// upload on its own user — so PairKbits separates that from the
	// aggregation benefit of everyone else's bandwidth.
	PairKbits [][]float64
}

// FromOthersKbits returns user i's total traffic received from peers
// other than itself — the gain the system exists to provide, and the
// quantity audits take away from free-riders.
func (r *Result) FromOthersKbits(i int) float64 {
	var sum float64
	for j, v := range r.PairKbits[i] {
		if j != i {
			sum += v
		}
	}
	return sum
}

// MeanRateKbps returns user i's average download rate over the run's
// second half (steady state).
func (r *Result) MeanRateKbps(i int) float64 {
	half := len(r.WindowRate[i]) / 2
	if len(r.WindowRate[i]) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.WindowRate[i][half:] {
		sum += v
	}
	return sum / float64(len(r.WindowRate[i])-half)
}

// event is one peer's transmission completion.
type event struct {
	at   float64
	peer int
	seq  int // heap tie-break
}

type eventQueue []event

func (q eventQueue) Len() int      { return len(q) }
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run executes the event simulation.
func Run(cfg Config) (*Result, error) {
	n := len(cfg.Peers)
	if n == 0 {
		return nil, fmt.Errorf("%w: no peers", ErrBadConfig)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: duration %v", ErrBadConfig, cfg.Duration)
	}
	msgKbits := cfg.MessageKbits
	if msgKbits <= 0 {
		msgKbits = 256
	}
	initial := cfg.InitialCredit
	if initial == 0 {
		initial = fairshare.DefaultInitialCredit
	}
	seen := make(map[string]bool, n)
	for i, p := range cfg.Peers {
		if p.Name == "" || seen[p.Name] {
			return nil, fmt.Errorf("%w: peer %d name %q", ErrBadConfig, i, p.Name)
		}
		seen[p.Name] = true
		if p.Demand == nil {
			return nil, fmt.Errorf("%w: peer %q has no demand", ErrBadConfig, p.Name)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	ledgers := make([]fairshare.Book, n)
	for i := range ledgers {
		if cfg.LedgerBound > 0 {
			ledgers[i] = fairshare.NewShardedLedger(initial, cfg.LedgerBound)
		} else {
			ledgers[i] = fairshare.NewLedger(initial)
		}
	}

	const windowSec = 10.0
	windows := int(cfg.Duration/windowSec) + 1
	res := &Result{
		Names:         make([]string, n),
		ReceivedKbits: make([]float64, n),
		SentKbits:     make([]float64, n),
		Duration:      cfg.Duration,
		WindowRate:    make([][]float64, n),
		WindowSec:     windowSec,
	}
	res.AuditFailures = make([]int, n)
	res.AuditDebitsKbits = make([]float64, n)
	res.PairKbits = make([][]float64, n)
	for i, p := range cfg.Peers {
		res.Names[i] = p.Name
		res.WindowRate[i] = make([]float64, windows)
		res.PairKbits[i] = make([]float64, n)
	}

	// Retention audits: each epoch, every user spot-checks every other
	// peer. An honest peer proves possession and nothing happens; a
	// dropper fails everywhere and every auditor debits it locally.
	penaltyKbits := cfg.AuditPenaltyKbits
	if penaltyKbits <= 0 {
		penaltyKbits = 8 * msgKbits
	}
	auditRound := func() {
		for p := 0; p < n; p++ {
			if !cfg.Peers[p].DropsStored {
				continue
			}
			for u := 0; u < n; u++ {
				if u == p {
					continue
				}
				ledgers[u].Debit(cfg.Peers[p].Name, penaltyKbits)
				res.AuditFailures[p]++
				res.AuditDebitsKbits[p] += penaltyKbits
			}
		}
	}
	nextAudit := cfg.AuditEpochSec

	wanting := func(user int, now float64) bool {
		return cfg.Peers[user].Demand.Requests(int(now))
	}

	// served[peer][user] tracks kbits peer has sent each user, the
	// "work" coordinate of the WFQ virtual time.
	served := make([][]float64, n)
	for i := range served {
		served[i] = make([]float64, n)
	}

	// pickRecipient selects the requesting user with the smallest
	// served/weight ratio under the peer's current ledger weights —
	// long-run service proportional to weights, exactly Eq. 2.
	pickRecipient := func(peer int, now float64) (int, bool) {
		best := -1
		var bestKey float64
		for u := 0; u < n; u++ {
			if !wanting(u, now) {
				continue
			}
			w := ledgers[peer].Received(cfg.Peers[u].Name)
			if w <= 0 {
				continue
			}
			key := served[peer][u] / w
			if best < 0 || key < bestKey {
				best = u
				bestKey = key
			}
		}
		if best >= 0 {
			return best, true
		}
		// No requester with positive weight: round-robin the requesters
		// (bootstrap with zero initial credit).
		var req []int
		for u := 0; u < n; u++ {
			if wanting(u, now) {
				req = append(req, u)
			}
		}
		if len(req) == 0 {
			return 0, false
		}
		least := req[0]
		for _, u := range req[1:] {
			if served[peer][u] < served[peer][least] {
				least = u
			}
		}
		return least, true
	}

	// Bootstrap: every peer with capacity schedules its first
	// completion.
	var q eventQueue
	seq := 0
	for i, p := range cfg.Peers {
		if p.UploadKbps <= 0 {
			continue
		}
		heap.Push(&q, event{at: msgKbits / p.UploadKbps * rng.Float64(), peer: i, seq: seq})
		seq++
	}

	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		if e.at > cfg.Duration {
			break
		}
		for cfg.AuditEpochSec > 0 && nextAudit <= e.at {
			auditRound()
			nextAudit += cfg.AuditEpochSec
		}
		peer := e.peer
		rate := cfg.Peers[peer].UploadKbps
		// Deliver the message that just completed, if someone wants it.
		if user, ok := pickRecipient(peer, e.at); ok {
			served[peer][user] += msgKbits
			res.ReceivedKbits[user] += msgKbits
			res.SentKbits[peer] += msgKbits
			res.PairKbits[user][peer] += msgKbits
			w := int(e.at / windowSec)
			if w < windows {
				res.WindowRate[user][w] += msgKbits / windowSec
			}
			ledgers[user].Credit(cfg.Peers[peer].Name, msgKbits)
			heap.Push(&q, event{at: e.at + msgKbits/rate, peer: peer, seq: seq})
		} else {
			// Idle: poll again shortly (next second boundary).
			next := float64(int(e.at)) + 1
			heap.Push(&q, event{at: next, peer: peer, seq: seq})
		}
		seq++
	}
	return res, nil
}
