package eventsim

import (
	"testing"

	"asymshare/internal/trace"
)

// auditNet is a symmetric always-on network of 3 honest peers plus one
// that silently dropped everything it agreed to store.
func auditNet(dropper bool, epochSec float64) Config {
	return Config{
		Peers: []PeerConfig{
			{Name: "a", UploadKbps: 1000, Demand: trace.Always{}},
			{Name: "b", UploadKbps: 1000, Demand: trace.Always{}},
			{Name: "c", UploadKbps: 1000, Demand: trace.Always{}},
			{Name: "leech", UploadKbps: 1000, Demand: trace.Always{}, DropsStored: dropper},
		},
		Duration:      600,
		InitialCredit: 1,
		Seed:          3,
		AuditEpochSec: epochSec,
	}
}

// TestAuditCollapsesDropperAllocation is the free-rider scenario from
// the issue: a chunk-dropping peer keeps uploading (so it keeps
// earning receipt credit), but periodic retention audits debit it in
// every other user's ledger faster than it can re-earn, and its
// allocation from the rest of the network collapses — while the honest
// peers are unaffected. The dropper keeps only what it can grant
// itself from its own upload, i.e. it loses exactly the aggregation
// benefit the system exists to provide.
func TestAuditCollapsesDropperAllocation(t *testing.T) {
	// Baseline: audits off. The dropper is indistinguishable from an
	// honest uploader and draws a full share from the others.
	base, err := Run(auditNet(true, 0))
	if err != nil {
		t.Fatal(err)
	}
	baseHonest := base.FromOthersKbits(0)
	baseLeech := base.FromOthersKbits(3)
	if baseLeech < 0.8*baseHonest {
		t.Fatalf("without audits the dropper should blend in: honest %.0f vs leech %.0f",
			baseHonest, baseLeech)
	}
	for i := range base.AuditFailures {
		if base.AuditFailures[i] != 0 {
			t.Fatalf("audits disabled but failures recorded: %v", base.AuditFailures)
		}
	}

	// Audits on: every 5 simulated seconds each user spot-checks the
	// others; the dropper fails all of them.
	audited, err := Run(auditNet(true, 5))
	if err != nil {
		t.Fatal(err)
	}
	honest := audited.FromOthersKbits(0)
	leech := audited.FromOthersKbits(3)
	if leech > 0.3*honest {
		t.Errorf("dropper allocation did not collapse: honest %.0f vs leech %.0f kbits from others",
			honest, leech)
	}
	if audited.AuditFailures[3] == 0 || audited.AuditDebitsKbits[3] == 0 {
		t.Errorf("dropper audit failures unrecorded: %v / %v",
			audited.AuditFailures, audited.AuditDebitsKbits)
	}
	// Honest peers are unaffected where it matters: the traffic they
	// grant each other. Once the dropper's weight is slashed, each
	// honest peer's WFQ redistributes the dropper's former share among
	// the remaining honest requesters, so honest-to-honest traffic
	// rises above baseline. (Total from-others drops only because the
	// dropper withdraws its upload into self-service — bandwidth that
	// in reality was phantom: it no longer holds the data it would be
	// serving.)
	honestPair := func(r *Result, i int) float64 {
		var sum float64
		for j := 0; j < 3; j++ {
			if j != i {
				sum += r.PairKbits[i][j]
			}
		}
		return sum
	}
	for i := 0; i < 3; i++ {
		if audited.AuditFailures[i] != 0 {
			t.Errorf("honest peer %s failed audits: %v", audited.Names[i], audited.AuditFailures)
		}
		if got, want := honestPair(audited, i), honestPair(base, i); got < want {
			t.Errorf("honest peer %s harmed by audits: %.0f honest-to-honest kbits vs baseline %.0f",
				audited.Names[i], got, want)
		}
	}
}

// TestAuditHonestNetworkUnaffected: with audits enabled and everyone
// honest, no failures, no debits, and the allocation matches the
// audit-free run exactly.
func TestAuditHonestNetworkUnaffected(t *testing.T) {
	base, err := Run(auditNet(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	audited, err := Run(auditNet(false, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range audited.Names {
		if audited.AuditFailures[i] != 0 || audited.AuditDebitsKbits[i] != 0 {
			t.Errorf("honest peer %s penalized: %v / %v",
				audited.Names[i], audited.AuditFailures, audited.AuditDebitsKbits)
		}
		if audited.ReceivedKbits[i] != base.ReceivedKbits[i] {
			t.Errorf("peer %s received %v with audits vs %v without",
				audited.Names[i], audited.ReceivedKbits[i], base.ReceivedKbits[i])
		}
	}
}
