package netsim

// Determinism regression: the replayability contract says every
// fault sequence replays byte-identically from its seed. Two runs of
// the same scripted scenario with the same seed must produce
// identical event logs; a different seed must produce a different
// fault sequence.

import (
	"context"
	"io"
	"net"
	"testing"
	"time"
)

// runScriptedScenario drives a fixed sequence of dials and transfers
// through a lossy, jittery link, partitioning and healing midway, and
// returns the fabric's event-log dump.
func runScriptedScenario(t *testing.T, seed int64) string {
	t.Helper()
	f := NewFabric(seed)
	f.SetLink("cli", "srv", LinkPolicy{
		Latency:  200 * time.Microsecond,
		Jitter:   300 * time.Microsecond,
		DropProb: 0.5,
	})
	f.SetLink("srv", "cli", LinkPolicy{Latency: 200 * time.Microsecond})
	srv := f.Host("srv")
	ln, err := srv.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4)
				if _, err := io.ReadFull(c, buf); err != nil {
					return
				}
				_, _ = c.Write(buf)
			}(conn)
		}
	}()

	cli := f.Host("cli")
	for i := 0; i < 30; i++ {
		if i == 15 {
			f.Partition("island", "srv")
		}
		if i == 20 {
			f.Heal()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		conn, err := cli.DialContext(ctx, ln.Addr().String())
		if err != nil {
			cancel()
			continue // dropped or partitioned: logged by the fabric
		}
		if _, err := conn.Write([]byte("ping")); err == nil {
			buf := make([]byte, 4)
			_, _ = io.ReadFull(conn, buf)
		}
		conn.Close()
		cancel()
	}
	return f.Events().Dump()
}

func TestSameSeedReplaysIdentically(t *testing.T) {
	first := runScriptedScenario(t, 42)
	second := runScriptedScenario(t, 42)
	if first != second {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := runScriptedScenario(t, 42)
	b := runScriptedScenario(t, 43)
	if a == b {
		t.Fatal("different seeds produced identical fault sequences")
	}
}
