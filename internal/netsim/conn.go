package netsim

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"asymshare/internal/ratelimit"
)

// ErrSevered is the error surfaced by reads and writes on a
// connection the fabric cut mid-stream (scheduled cut or partition) —
// the in-memory analogue of a TCP reset.
var ErrSevered = errors.New("netsim: connection reset by link fault")

// ErrDropped is returned by dials the link model refused.
var ErrDropped = errors.New("netsim: connection dropped by link model")

// simAddr is a fabric address.
type simAddr struct{ hostport string }

func (a simAddr) Network() string { return "netsim" }
func (a simAddr) String() string  { return a.hostport }

// segment is one delivered write, visible to the reader at readyAt.
type segment struct {
	data    []byte
	readyAt time.Time
}

// endpoint is the receiving half of one connection direction.
type endpoint struct {
	mu           sync.Mutex
	wake         chan struct{} // closed-and-replaced to broadcast changes
	queue        []segment
	leftover     []byte
	readDeadline time.Time
	eof          bool  // remote closed orderly: EOF once drained
	closed       bool  // local close
	severed      error // link fault: immediate error, queued data lost
}

func newEndpoint() *endpoint {
	return &endpoint{wake: make(chan struct{})}
}

func (e *endpoint) signalLocked() {
	close(e.wake)
	e.wake = make(chan struct{})
}

func (e *endpoint) enqueue(data []byte, readyAt time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.eof || e.severed != nil {
		return // receiver gone; bytes vanish like on a dead socket
	}
	e.queue = append(e.queue, segment{data: data, readyAt: readyAt})
	e.signalLocked()
}

func (e *endpoint) setEOF() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.eof = true
	e.signalLocked()
}

func (e *endpoint) closeLocal() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	e.signalLocked()
}

func (e *endpoint) sever(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.severed == nil {
		e.severed = err
	}
	e.signalLocked()
}

func (e *endpoint) setReadDeadline(t time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.readDeadline = t
	e.signalLocked()
}

// read implements the blocking receive: leftover bytes first, then
// queued segments once their delivery time arrives, honoring the read
// deadline, local close, link sever and remote EOF.
func (e *endpoint) read(b []byte) (int, error) {
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return 0, net.ErrClosed
		}
		if len(e.leftover) > 0 {
			n := copy(b, e.leftover)
			e.leftover = e.leftover[n:]
			e.mu.Unlock()
			return n, nil
		}
		if e.severed != nil {
			err := e.severed
			e.mu.Unlock()
			return 0, err
		}
		now := time.Now()
		wait := time.Duration(-1)
		if len(e.queue) > 0 {
			seg := e.queue[0]
			if w := seg.readyAt.Sub(now); w <= 0 {
				e.queue = e.queue[1:]
				e.leftover = seg.data
				e.mu.Unlock()
				continue
			} else {
				wait = w
			}
		} else if e.eof {
			e.mu.Unlock()
			return 0, io.EOF
		}
		if !e.readDeadline.IsZero() {
			dl := e.readDeadline.Sub(now)
			if dl <= 0 {
				e.mu.Unlock()
				return 0, os.ErrDeadlineExceeded
			}
			if wait < 0 || dl < wait {
				wait = dl
			}
		}
		wake := e.wake
		e.mu.Unlock()
		if wait >= 0 {
			timer := time.NewTimer(wait)
			select {
			case <-wake:
			case <-timer.C:
			}
			timer.Stop()
		} else {
			<-wake
		}
	}
}

// Conn is one side of a fabric connection. It implements net.Conn.
type Conn struct {
	fabric  *Fabric
	key     dirKey // write direction: local host -> remote host
	ordinal int64  // dial ordinal on the originating link
	local   simAddr
	remote  simAddr
	in      *endpoint
	out     *endpoint
	pair    *pair

	ctx    context.Context
	cancel context.CancelFunc

	wmu           sync.Mutex // serializes writes
	rng           *rand.Rand // per-direction, guarded by wmu
	bucket        *ratelimit.Bucket
	sent          int64
	writeDeadline time.Time

	closeOnce sync.Once
}

// pair ties the two sides of a connection so partitions can sever
// both at once.
type pair struct {
	key  dirKey // the dial link that created the pair
	a, b *Conn
}

func (p *pair) sever(err error) {
	p.a.in.sever(err)
	p.b.in.sever(err)
	p.a.cancel()
	p.b.cancel()
}

func (c *Conn) Read(b []byte) (int, error) { return c.in.read(b) }
func (c *Conn) LocalAddr() net.Addr        { return c.local }
func (c *Conn) RemoteAddr() net.Addr       { return c.remote }
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.in.setReadDeadline(t)
	return nil
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.writeDeadline = t
	return nil
}

func (c *Conn) SetDeadline(t time.Time) error {
	c.in.setReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// Close tears down this side: local reads fail immediately, the
// remote sees EOF once it has drained in-flight segments.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.cancel()
		c.in.closeLocal()
		c.out.setEOF()
		c.fabric.removePair(c.pair)
	})
	return nil
}

// Write shapes, delays and delivers b toward the remote endpoint,
// splitting large writes into segments so bandwidth caps smooth the
// stream instead of stalling it.
func (c *Conn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > segmentSize {
			n = segmentSize
		}
		if err := c.writeSegment(b[:n]); err != nil {
			return total, err
		}
		total += n
		b = b[n:]
	}
	return total, nil
}

// writeSegment applies the live link model to one segment: partition
// and blackhole state, token-bucket shaping, scheduled cuts, and
// latency+jitter delivery. Callers hold wmu.
func (c *Conn) writeSegment(seg []byte) error {
	if err := c.ctx.Err(); err != nil {
		if c.in.severedErr() != nil {
			return c.in.severedErr()
		}
		return net.ErrClosed
	}
	f := c.fabric
	pol, crossing, blackholed := f.linkStatus(c.key)
	if crossing {
		f.events.add(c.key.String(), "conn#%d severed: partition", c.ordinal)
		c.pair.sever(ErrSevered)
		return ErrSevered
	}
	if blackholed {
		return nil // swallowed: the sender cannot tell
	}
	if pol.BytesPerSec > 0 {
		if c.bucket == nil {
			c.bucket = ratelimit.NewBucket(pol.BytesPerSec, pol.burst())
		} else if c.bucket.Rate() != pol.BytesPerSec {
			c.bucket.SetRate(pol.BytesPerSec)
		}
		wctx := c.ctx
		if !c.writeDeadline.IsZero() {
			var cancel context.CancelFunc
			wctx, cancel = context.WithDeadline(c.ctx, c.writeDeadline)
			defer cancel()
		}
		if err := c.bucket.WaitN(wctx, len(seg)); err != nil {
			if c.ctx.Err() != nil {
				return net.ErrClosed
			}
			return os.ErrDeadlineExceeded
		}
	}
	if pol.cuts(c.ordinal) && c.sent+int64(len(seg)) > pol.CutAfterBytes {
		f.events.add(c.key.String(), "conn#%d cut after %d bytes", c.ordinal, c.sent)
		c.pair.sever(ErrSevered)
		return ErrSevered
	}
	c.sent += int64(len(seg))
	data := append([]byte(nil), seg...)
	c.out.enqueue(data, time.Now().Add(pol.delay(c.rng)))
	return nil
}

func (e *endpoint) severedErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.severed
}

var _ net.Conn = (*Conn)(nil)
