// Package netsim is an in-memory network fabric implementing the
// transport.Transport seam with a programmable per-link fault model:
// one-way latency plus jitter, asymmetric token-bucket bandwidth
// caps, probabilistic dial drops, scheduled mid-stream cuts, named
// partitions and blackholes. All randomness flows from a single seed
// through per-link, per-dial RNGs, so a failure sequence replays
// identically from its seed regardless of goroutine scheduling — the
// EventLog captures every fault-model decision for comparison.
//
// The fabric exists to drive the real peer/client/tracker protocol
// stack through adversity deterministically under go test -race; see
// internal/netsim/harness for the end-to-end chaos suite.
package netsim

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"asymshare/internal/transport"
)

// Fabric is one simulated network. Hosts are named; addresses are
// "host:port" strings, so listener addresses round-trip through the
// tracker and manifests exactly like real TCP addresses.
type Fabric struct {
	seed   int64
	events *EventLog

	mu            sync.Mutex
	listeners     map[string]*listener
	nextPort      map[string]int
	policies      map[dirKey]LinkPolicy
	defaultPolicy LinkPolicy
	partition     map[string]string
	blackhole     map[string]bool
	dialSeq       map[dirKey]int64
	pairs         map[*pair]struct{}
}

// NewFabric creates a fabric whose every fault-model decision derives
// from seed.
func NewFabric(seed int64) *Fabric {
	return &Fabric{
		seed:      seed,
		events:    newEventLog(),
		listeners: make(map[string]*listener),
		nextPort:  make(map[string]int),
		policies:  make(map[dirKey]LinkPolicy),
		partition: make(map[string]string),
		blackhole: make(map[string]bool),
		dialSeq:   make(map[dirKey]int64),
		pairs:     make(map[*pair]struct{}),
	}
}

// Seed returns the fabric's seed, for printing on test failure so the
// run can be replayed.
func (f *Fabric) Seed() int64 { return f.seed }

// Events returns the fabric's fault-model event log.
func (f *Fabric) Events() *EventLog { return f.events }

// SetLink sets the policy for src→dst traffic (directional; call
// twice or use SetDuplex for both ways).
func (f *Fabric) SetLink(src, dst string, p LinkPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policies[dirKey{src, dst}] = p
}

// SetDuplex sets the same policy on both directions of a host pair.
func (f *Fabric) SetDuplex(a, b string, p LinkPolicy) {
	f.SetLink(a, b, p)
	f.SetLink(b, a, p)
}

// SetDefaultPolicy sets the policy used for links with no explicit
// SetLink entry.
func (f *Fabric) SetDefaultPolicy(p LinkPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.defaultPolicy = p
}

// Partition moves hosts into the named partition. Hosts in different
// partitions (the unnamed default universe counts as one) cannot dial
// each other, and existing connections crossing the new boundary are
// severed with ErrSevered.
func (f *Fabric) Partition(name string, hosts ...string) {
	f.mu.Lock()
	for _, h := range hosts {
		f.partition[h] = name
	}
	victims := f.crossingPairsLocked()
	f.mu.Unlock()
	f.events.add("fabric", "partition %q: %v", name, hosts)
	for _, p := range victims {
		f.events.add(p.key.String(), "conn severed: partition")
		p.sever(ErrSevered)
	}
}

// Heal returns the given hosts (all hosts when called with none) to
// the default universe, re-enabling connectivity.
func (f *Fabric) Heal(hosts ...string) {
	f.mu.Lock()
	if len(hosts) == 0 {
		f.partition = make(map[string]string)
	} else {
		for _, h := range hosts {
			delete(f.partition, h)
		}
	}
	f.mu.Unlock()
	f.events.add("fabric", "heal: %v", hosts)
}

// Blackhole makes the hosts silently lose all traffic: dials to or
// from them block until the dial context expires, established
// connections stall (writes are swallowed, reads starve). The TCP
// analogue of a dead middlebox, as opposed to Partition's hard reset.
func (f *Fabric) Blackhole(hosts ...string) {
	f.mu.Lock()
	for _, h := range hosts {
		f.blackhole[h] = true
	}
	f.mu.Unlock()
	f.events.add("fabric", "blackhole: %v", hosts)
}

// Restore lifts Blackhole from the hosts.
func (f *Fabric) Restore(hosts ...string) {
	f.mu.Lock()
	for _, h := range hosts {
		delete(f.blackhole, h)
	}
	f.mu.Unlock()
	f.events.add("fabric", "restore: %v", hosts)
}

// Host returns a named attachment point implementing
// transport.Transport: Listen binds ports on the host, DialContext
// originates connections subject to the host's link policies.
func (f *Fabric) Host(name string) *Host {
	return &Host{f: f, name: name}
}

// policyLocked returns the directional policy, falling back to the
// fabric default. Callers hold f.mu.
func (f *Fabric) policyLocked(k dirKey) LinkPolicy {
	if p, ok := f.policies[k]; ok {
		return p
	}
	return f.defaultPolicy
}

// crossingLocked reports whether a and b are in different partitions.
func (f *Fabric) crossingLocked(a, b string) bool {
	return f.partition[a] != f.partition[b]
}

// linkStatus snapshots the live fault state of one direction.
func (f *Fabric) linkStatus(k dirKey) (pol LinkPolicy, crossing, blackholed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.policyLocked(k), f.crossingLocked(k.src, k.dst),
		f.blackhole[k.src] || f.blackhole[k.dst]
}

func (f *Fabric) crossingPairsLocked() []*pair {
	var out []*pair
	for p := range f.pairs {
		if f.crossingLocked(p.key.src, p.key.dst) {
			out = append(out, p)
		}
	}
	return out
}

func (f *Fabric) removePair(p *pair) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.pairs, p)
}

// allocPortLocked assigns the next ephemeral port for a host.
func (f *Fabric) allocPortLocked(host string) int {
	f.nextPort[host]++
	return 40000 + f.nextPort[host]
}

// connect builds a connection pair for a dial on link key with the
// given ordinal. Per-direction RNGs derive from (seed, link, ordinal)
// so jitter and cut decisions replay from the seed.
func (f *Fabric) connect(key dirKey, ordinal int64, remoteAddr string) (cli, srv *Conn) {
	f.mu.Lock()
	localAddr := fmt.Sprintf("%s:%d", key.src, f.allocPortLocked(key.src))
	f.mu.Unlock()

	eCli, eSrv := newEndpoint(), newEndpoint()
	rev := dirKey{src: key.dst, dst: key.src}
	cliCtx, cliCancel := context.WithCancel(context.Background())
	srvCtx, srvCancel := context.WithCancel(context.Background())
	cli = &Conn{
		fabric: f, key: key, ordinal: ordinal,
		local: simAddr{localAddr}, remote: simAddr{remoteAddr},
		in: eCli, out: eSrv,
		ctx: cliCtx, cancel: cliCancel,
		rng: newLinkRand(f.seed, key, ordinal, "data"),
	}
	srv = &Conn{
		fabric: f, key: rev, ordinal: ordinal,
		local: simAddr{remoteAddr}, remote: simAddr{localAddr},
		in: eSrv, out: eCli,
		ctx: srvCtx, cancel: srvCancel,
		rng: newLinkRand(f.seed, rev, ordinal, "data"),
	}
	p := &pair{key: key, a: cli, b: srv}
	cli.pair, srv.pair = p, p
	f.mu.Lock()
	f.pairs[p] = struct{}{}
	f.mu.Unlock()
	return cli, srv
}

// Host is one attachment point on the fabric.
type Host struct {
	f    *Fabric
	name string
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Listen binds addr on this host. addr may be ":0" (ephemeral port on
// this host), ":port", or "host:port" where host matches the Host.
func (h *Host) Listen(addr string) (net.Listener, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %s: %w", addr, err)
	}
	if host == "" {
		host = h.name
	}
	if host != h.name {
		return nil, fmt.Errorf("netsim: listen %s: host %q is not %q", addr, host, h.name)
	}
	h.f.mu.Lock()
	if port == "0" {
		port = fmt.Sprintf("%d", h.f.allocPortLocked(host))
	}
	hostport := net.JoinHostPort(host, port)
	if _, taken := h.f.listeners[hostport]; taken {
		h.f.mu.Unlock()
		return nil, fmt.Errorf("netsim: listen %s: address in use", hostport)
	}
	ln := &listener{
		f:        h.f,
		hostport: hostport,
		backlog:  make(chan *Conn, 64),
		done:     make(chan struct{}),
	}
	h.f.listeners[hostport] = ln
	h.f.mu.Unlock()
	h.f.events.add(host, "listen %s", hostport)
	return ln, nil
}

// DialContext opens a connection to addr ("host:port"), applying the
// src→dst link policy: partition refusal, blackhole stall,
// probabilistic drop, then propagation delay.
func (h *Host) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	f := h.f
	dstHost, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, err)
	}
	key := dirKey{src: h.name, dst: dstHost}
	link := key.String()

	f.mu.Lock()
	f.dialSeq[key]++
	seq := f.dialSeq[key]
	pol := f.policyLocked(key)
	crossing := f.crossingLocked(h.name, dstHost)
	blackholed := f.blackhole[h.name] || f.blackhole[dstHost]
	f.mu.Unlock()

	if crossing {
		f.events.add(link, "dial#%d refused: partition", seq)
		return nil, fmt.Errorf("netsim: dial %s: network partitioned", addr)
	}
	if blackholed {
		f.events.add(link, "dial#%d blackholed", seq)
		<-ctx.Done()
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ctx.Err())
	}
	dialRng := newLinkRand(f.seed, key, seq, "dial")
	if pol.DropProb > 0 && dialRng.Float64() < pol.DropProb {
		f.events.add(link, "dial#%d dropped", seq)
		if err := sleepCtx(ctx, pol.Latency); err != nil {
			return nil, fmt.Errorf("netsim: dial %s: %w", addr, err)
		}
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ErrDropped)
	}
	if d := pol.delay(dialRng); d > 0 {
		if err := sleepCtx(ctx, d); err != nil {
			return nil, fmt.Errorf("netsim: dial %s: %w", addr, err)
		}
	}

	f.mu.Lock()
	ln := f.listeners[addr]
	f.mu.Unlock()
	if ln == nil {
		f.events.add(link, "dial#%d refused: no listener", seq)
		return nil, fmt.Errorf("netsim: dial %s: connection refused", addr)
	}
	cli, srv := f.connect(key, seq, addr)
	select {
	case ln.backlog <- srv:
		f.events.add(link, "dial#%d ok", seq)
		return cli, nil
	case <-ln.done:
		cli.Close()
		f.events.add(link, "dial#%d refused: listener closed", seq)
		return nil, fmt.Errorf("netsim: dial %s: connection refused", addr)
	case <-ctx.Done():
		cli.Close()
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ctx.Err())
	}
}

// listener accepts fabric connections for one host:port.
type listener struct {
	f        *Fabric
	hostport string
	backlog  chan *Conn
	done     chan struct{}
	once     sync.Once
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.f.mu.Lock()
		delete(l.f.listeners, l.hostport)
		l.f.mu.Unlock()
	})
	return nil
}

func (l *listener) Addr() net.Addr { return simAddr{l.hostport} }

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

var _ transport.Transport = (*Host)(nil)
var _ net.Listener = (*listener)(nil)
