package netsim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func dialCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// echoOnce accepts one connection and echoes everything back.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
}

func TestPipeRoundTrip(t *testing.T) {
	f := NewFabric(1)
	srv := f.Host("srv")
	ln, err := srv.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)

	conn, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("asymshare"), 1000)
	go func() {
		if _, err := conn.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo mismatch")
	}
	if conn.LocalAddr().Network() != "netsim" || conn.RemoteAddr().String() != ln.Addr().String() {
		t.Fatalf("addrs: local=%v remote=%v", conn.LocalAddr(), conn.RemoteAddr())
	}
}

func TestCloseGivesEOFThenErrClosed(t *testing.T) {
	f := NewFabric(1)
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	if _, err := cli.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	// Remote drains in-flight bytes, then sees EOF.
	buf := make([]byte, 3)
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("read after remote close = %v, want EOF", err)
	}
	// Local reads fail with net.ErrClosed.
	if _, err := cli.Read(buf); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read after local close = %v, want net.ErrClosed", err)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	f := NewFabric(1)
	const lat = 30 * time.Millisecond
	f.SetLink("cli", "srv", LinkPolicy{Latency: lat})
	f.SetLink("srv", "cli", LinkPolicy{Latency: lat})
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	start := time.Now()
	conn, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// Dial + one round trip crosses the link three times.
	if elapsed := time.Since(start); elapsed < 3*lat {
		t.Fatalf("round trip took %v, want >= %v", elapsed, 3*lat)
	}
}

func TestBandwidthCapShapesTransfer(t *testing.T) {
	f := NewFabric(1)
	// 64 KiB burst + 100 KiB/s: 160 KiB should need ~1s for the
	// post-burst remainder.
	f.SetLink("cli", "srv", LinkPolicy{BytesPerSec: 100 << 10})
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	var got int
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		n, _ := io.Copy(io.Discard, conn)
		got = int(n)
	}()
	conn, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 160<<10)
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	conn.Close()
	<-done
	if got != len(payload) {
		t.Fatalf("received %d of %d bytes", got, len(payload))
	}
	// (160-64) KiB over 100 KiB/s ≈ 0.96s; allow generous slack
	// downward for timer coarseness but catch an unshaped fast path.
	if elapsed < 500*time.Millisecond {
		t.Fatalf("160 KiB over a 100 KiB/s link took only %v", elapsed)
	}
}

func TestReadDeadline(t *testing.T) {
	f := NewFabric(1)
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _, _ = ln.Accept() }() // accept, never write
	conn, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
	// Clearing the deadline lets reads block again (and close unblocks).
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		conn.Close()
	}()
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read after close = %v", err)
	}
}

func TestPartitionRefusesDialsAndSeversConns(t *testing.T) {
	f := NewFabric(1)
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	conn, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	f.Partition("island", "srv")
	// Existing connection is reset.
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, ErrSevered) {
		t.Fatalf("read across partition = %v, want ErrSevered", err)
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write across partition succeeded")
	}
	// New dials are refused.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := f.Host("cli").DialContext(ctx, ln.Addr().String()); err == nil {
		t.Fatal("dial across partition succeeded")
	}
	// Healing restores connectivity.
	f.Heal()
	c2, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
	if f.Events().Count("partition") == 0 {
		t.Fatal("partition events not logged")
	}
}

func TestBlackholeStallsUntilRestore(t *testing.T) {
	f := NewFabric(1)
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	conn, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	f.Blackhole("srv")
	// Writes are swallowed, reads starve until the deadline.
	if _, err := conn.Write([]byte("lost")); err != nil {
		t.Fatalf("blackholed write = %v, want silent success", err)
	}
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 4)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read = %v, want deadline exceeded", err)
	}
	// Dials block until their context gives up.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := f.Host("cli").DialContext(ctx, ln.Addr().String()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackholed dial = %v, want deadline exceeded", err)
	}
	// After restore, fresh traffic flows (swallowed bytes stay lost).
	f.Restore("srv")
	conn.SetReadDeadline(time.Time{})
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("post-restore echo = %q", buf)
	}
}

func TestDropProbRefusesRoughlyHalf(t *testing.T) {
	f := NewFabric(7)
	f.SetLink("cli", "srv", LinkPolicy{DropProb: 0.5})
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	cli := f.Host("cli")
	drops := 0
	for i := 0; i < 100; i++ {
		conn, err := cli.DialContext(dialCtx(t), ln.Addr().String())
		if err != nil {
			if !errors.Is(err, ErrDropped) {
				t.Fatalf("dial %d: %v", i, err)
			}
			drops++
			continue
		}
		conn.Close()
	}
	if drops < 25 || drops > 75 {
		t.Fatalf("dropped %d of 100 dials at p=0.5", drops)
	}
	if got := f.Events().Count("dropped"); got != drops {
		t.Fatalf("logged %d drops, observed %d", got, drops)
	}
}

func TestCutAfterBytesSeversMidStream(t *testing.T) {
	f := NewFabric(1)
	f.SetLink("srv", "cli", LinkPolicy{CutAfterBytes: 1000, CutConns: 1})
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = conn.Write(make([]byte, 10_000))
			}()
		}
	}()
	// First connection is cut after ~1000 bytes.
	conn, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(io.Discard, conn)
	conn.Close()
	if !errors.Is(err, ErrSevered) {
		t.Fatalf("read on cut conn = %v (after %d bytes), want ErrSevered", err, n)
	}
	if n >= 10_000 {
		t.Fatalf("received %d bytes despite cut", n)
	}
	// Second connection (beyond CutConns) survives.
	conn2, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	n2, err := io.Copy(io.Discard, conn2)
	if err != nil || n2 != 10_000 {
		t.Fatalf("retry read = %d bytes, err %v", n2, err)
	}
	if f.Events().Count("cut") != 1 {
		t.Fatalf("cut events = %d, want 1", f.Events().Count("cut"))
	}
}

func TestListenValidation(t *testing.T) {
	f := NewFabric(1)
	h := f.Host("a")
	if _, err := h.Listen("b:0"); err == nil {
		t.Fatal("foreign host accepted")
	}
	if _, err := h.Listen("garbage"); err == nil {
		t.Fatal("unparseable address accepted")
	}
	ln, err := h.Listen("a:7777")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen("a:7777"); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	ln.Close()
	if _, err := h.Listen("a:7777"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	// Dialing an address nobody listens on is refused.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := f.Host("cli").DialContext(ctx, "a:1"); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestConcurrentConnsAreIsolated(t *testing.T) {
	f := NewFabric(3)
	ln, err := f.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := f.Host("cli").DialContext(dialCtx(t), ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			msg := bytes.Repeat([]byte{byte(i)}, 2048)
			go conn.Write(msg)
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(conn, got); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("conn %d: cross-talk detected", i)
			}
		}(i)
	}
	wg.Wait()
}
