package netsim

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// LinkPolicy models one direction of a host-to-host link. The zero
// value is an ideal link: no latency, unlimited bandwidth, no faults.
// Policies are directional — SetLink(a, b, p) shapes only a→b traffic
// — so asymmetric up/down capacity is expressed by giving the two
// directions different BytesPerSec.
type LinkPolicy struct {
	// Latency is the one-way propagation delay added to every
	// segment.
	Latency time.Duration

	// Jitter adds a uniform [0, Jitter) draw per segment on top of
	// Latency, from the connection's seeded RNG.
	Jitter time.Duration

	// BytesPerSec caps throughput in this direction via a token
	// bucket. Zero or negative means unlimited.
	BytesPerSec float64

	// Burst is the token-bucket capacity in bytes; zero means 64 KiB
	// (always at least one shaping segment).
	Burst float64

	// DropProb is the probability that a new dial over this link is
	// refused, drawn once per dial from the link's seeded RNG.
	DropProb float64

	// CutAfterBytes severs a connection once this many bytes have
	// crossed it in this direction — a scheduled mid-stream drop.
	// Zero means never.
	CutAfterBytes int64

	// CutConns limits CutAfterBytes to the first CutConns connections
	// dialed over the link (by dial ordinal), so a retry can succeed
	// where the original attempt was cut. Zero cuts every connection.
	CutConns int64
}

// defaultBurst is the shaping bucket capacity when Burst is zero.
const defaultBurst = 64 << 10

// segmentSize is the maximum bytes shaped and delivered as one unit;
// larger writes are split so bandwidth caps smooth rather than stall.
const segmentSize = 16 << 10

// dirKey identifies one direction of a host pair.
type dirKey struct{ src, dst string }

func (k dirKey) String() string { return k.src + "->" + k.dst }

// linkSeed derives a deterministic RNG seed for a (fabric seed, link,
// ordinal, salt) tuple. Every dial and every connection direction gets
// its own RNG, so decisions replay identically regardless of how
// goroutines interleave across links.
func linkSeed(seed int64, k dirKey, ordinal int64, salt string) int64 {
	h := fnv.New64a()
	h.Write([]byte(k.src))
	h.Write([]byte{0})
	h.Write([]byte(k.dst))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	const mix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	return seed ^ int64(h.Sum64()) ^ (ordinal * mix)
}

func newLinkRand(seed int64, k dirKey, ordinal int64, salt string) *rand.Rand {
	return rand.New(rand.NewSource(linkSeed(seed, k, ordinal, salt)))
}

// delay returns Latency plus one jitter draw from rng.
func (p LinkPolicy) delay(rng *rand.Rand) time.Duration {
	d := p.Latency
	if p.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(p.Jitter)))
	}
	return d
}

// burst returns the effective shaping bucket capacity.
func (p LinkPolicy) burst() float64 {
	if p.Burst > 0 {
		return p.Burst
	}
	return defaultBurst
}

// cuts reports whether a connection with the given dial ordinal is
// subject to CutAfterBytes in this direction.
func (p LinkPolicy) cuts(ordinal int64) bool {
	if p.CutAfterBytes <= 0 {
		return false
	}
	return p.CutConns == 0 || ordinal <= p.CutConns
}
