package netsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EventLog records the fabric's fault-model decisions — listens, dial
// outcomes (ok / dropped / refused / blackholed), mid-stream cuts and
// topology operations — grouped per directed link. Within one link the
// sequence is deterministic for a given fabric seed and scenario, and
// Dump orders links lexicographically, so two runs of the same
// scenario from the same seed produce byte-identical dumps regardless
// of goroutine interleaving across links.
type EventLog struct {
	mu      sync.Mutex
	perLink map[string][]string
}

func newEventLog() *EventLog {
	return &EventLog{perLink: make(map[string][]string)}
}

func (l *EventLog) add(link, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.perLink[link] = append(l.perLink[link], fmt.Sprintf(format, args...))
}

// Dump renders the full log, one "link | event" line per entry, links
// sorted, events in occurrence order within each link.
func (l *EventLog) Dump() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	links := make([]string, 0, len(l.perLink))
	for k := range l.perLink {
		links = append(links, k)
	}
	sort.Strings(links)
	var b strings.Builder
	for _, link := range links {
		for i, ev := range l.perLink[link] {
			fmt.Fprintf(&b, "%s | #%d %s\n", link, i+1, ev)
		}
	}
	return b.String()
}

// Count returns how many logged events contain substr.
func (l *EventLog) Count(substr string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, evs := range l.perLink {
		for _, ev := range evs {
			if strings.Contains(ev, substr) {
				n++
			}
		}
	}
	return n
}
