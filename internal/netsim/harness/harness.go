// Package harness boots a full asymshare deployment — tracker, the
// owner's home peer, N storage peers and any number of user clients —
// entirely in-process over a netsim fabric. Chaos tests use it to
// drive the real protocol stack (wire framing, mutual handshakes,
// rlnc streams, audits, the fairness ledger) through latency, loss,
// partitions and blackholes, with every fault sequence replayable
// from the fabric seed.
package harness

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"os"
	"strconv"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/client"
	"asymshare/internal/fairshare"
	"asymshare/internal/fsx"
	"asymshare/internal/gf"
	"asymshare/internal/netsim"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
	"asymshare/internal/tracker"
)

// Host names used by the cluster. Storage peers are "peer0",
// "peer1", … and user clients typically dial from HostUser.
const (
	HostTracker = "tracker"
	HostHome    = "home"
	HostUser    = "user"
)

// Seed returns the fabric seed for a test: NETSIM_SEED when set (so a
// logged failure replays exactly), otherwise the fallback. The chosen
// seed is logged either way — a failing run prints the line to rerun.
func Seed(t *testing.T, fallback int64) int64 {
	t.Helper()
	seed := fallback
	if env := os.Getenv("NETSIM_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad NETSIM_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("netsim seed %d (replay with NETSIM_SEED=%d)", seed, seed)
	return seed
}

// Peer is one storage peer in the cluster.
type Peer struct {
	Host  string
	ID    *auth.Identity
	Node  *peer.Node
	Store *store.Memory
	Addr  string

	// Digests is the peer's storage obligation from the last
	// SeedGeneration call — the audit target set.
	Digests map[uint64]rlnc.Digest
}

// Cluster is a booted in-process deployment.
type Cluster struct {
	Fabric  *netsim.Fabric
	Tracker *tracker.Server
	Owner   *auth.Identity
	Home    *peer.Node // the owner's own peer; holds the fairness ledger
	Peers   []*Peer

	TrackerAddr string
	HomeAddr    string

	t *testing.T
}

func testIdentity(t *testing.T, b byte) *auth.Identity {
	t.Helper()
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{b}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// Secret is the deterministic per-file coding secret the harness uses.
func Secret() []byte {
	s := make([]byte, rlnc.SecretLen)
	for i := range s {
		s[i] = byte(i + 1)
	}
	return s
}

// Start boots a tracker, the owner's home peer and n storage peers
// over a fresh fabric with the given seed. All nodes are cleaned up
// with the test.
func Start(t *testing.T, seed int64, n int) *Cluster {
	t.Helper()
	f := netsim.NewFabric(seed)
	c := &Cluster{Fabric: f, Owner: testIdentity(t, 199), t: t}

	c.Tracker = tracker.NewServer(0)
	c.Tracker.SetTransport(f.Host(HostTracker))
	if err := c.Tracker.Start(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Tracker.Close() })
	c.TrackerAddr = c.Tracker.Addr().String()

	home, err := peer.New(peer.Config{
		Identity:  testIdentity(t, 200),
		Store:     store.NewMemory(),
		Owner:     c.Owner.Public(),
		Ledger:    fairshare.NewLedger(0),
		Transport: f.Host(HostHome),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Start(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { home.Close() })
	c.Home = home
	c.HomeAddr = home.Addr().String()

	for i := 0; i < n; i++ {
		host := "peer" + strconv.Itoa(i)
		st := store.NewMemory()
		id := testIdentity(t, byte(1+i))
		node, err := peer.New(peer.Config{
			Identity:  id,
			Store:     st,
			Transport: f.Host(host),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		c.Peers = append(c.Peers, &Peer{
			Host: host, ID: id, Node: node, Store: st,
			Addr: node.Addr().String(),
		})
	}
	return c
}

// DurablePeer is a storage peer whose state survives crashes: its
// message store is a journaled store.Disk and its receipt ledger
// checkpoints to the same filesystem — an fsx.ErrFS, so tests can
// power-cut the peer's disk deterministically and reboot it.
type DurablePeer struct {
	Host         string
	ID           *auth.Identity
	Owner        ed25519.PublicKey
	FS           *fsx.ErrFS
	Dir          string // store directory on FS
	LedgerPath   string // ledger checkpoint path on FS
	ContractPath string // contract journal path on FS

	// Capacity is the advertised contract capacity in bytes (0 =
	// unlimited). Set it before StartDurablePeer boots the node — or
	// between Restart calls to simulate an operator reconfiguring.
	Capacity int64

	Node  *peer.Node
	Store *store.Disk
	Addr  string
}

// StartDurablePeer boots a storage peer on the cluster fabric whose
// store and ledger live on the given ErrFS. owner, if non-nil, may
// send the peer ledger feedback. Restart reboots it after a crash.
func (c *Cluster) StartDurablePeer(efs *fsx.ErrFS, host string, keyByte byte, owner ed25519.PublicKey) *DurablePeer {
	c.t.Helper()
	p := &DurablePeer{
		Host:         host,
		ID:           testIdentity(c.t, keyByte),
		Owner:        owner,
		FS:           efs,
		Dir:          "/" + host + "/store",
		LedgerPath:   "/" + host + "/ledger",
		ContractPath: "/" + host + "/contracts.j",
	}
	if err := efs.MkdirAll(p.Dir, 0o755); err != nil {
		c.t.Fatal(err)
	}
	if err := p.boot(c); err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() { p.Node.Close() })
	return p
}

// boot (re)opens the journaled store and starts a node on the peer's
// fabric host. The periodic checkpoint timer is effectively disabled
// so tests control durability points via Node.CheckpointNow.
func (p *DurablePeer) boot(c *Cluster) error {
	st, err := store.OpenDiskWith(p.Dir, store.DiskOptions{FS: p.FS})
	if err != nil {
		return err
	}
	node, err := peer.New(peer.Config{
		Identity:           p.ID,
		Store:              st,
		Owner:              p.Owner,
		LedgerPath:         p.LedgerPath,
		CheckpointInterval: time.Hour,
		CapacityBytes:      p.Capacity,
		ContractPath:       p.ContractPath,
		FS:                 p.FS,
		Transport:          c.Fabric.Host(p.Host),
	})
	if err != nil {
		return err
	}
	if err := node.Start(":0"); err != nil {
		return err
	}
	p.Store, p.Node, p.Addr = st, node, node.Addr().String()
	return nil
}

// Restart simulates the machine coming back after a power cut: the
// dead node is discarded, the filesystem reboots, the store recovers
// its journals and the ledger its newest checkpoint, and a fresh node
// listens on the same fabric host.
func (p *DurablePeer) Restart(c *Cluster) error {
	c.t.Helper()
	p.Node.Close()
	p.Store.Close()
	p.FS.Reboot()
	return p.boot(c)
}

// Client returns a client dialing from the given fabric host.
// opts.Transport is overwritten with that host.
func (c *Cluster) Client(host string, id *auth.Identity, opts client.Options) *client.Client {
	c.t.Helper()
	opts.Transport = c.Fabric.Host(host)
	cl, err := client.NewWith(id, nil, opts)
	if err != nil {
		c.t.Fatal(err)
	}
	return cl
}

// UserClient returns a client for the owner identity on HostUser.
func (c *Cluster) UserClient(opts client.Options) *client.Client {
	return c.Client(HostUser, c.Owner, opts)
}

// Generation describes one disseminated rlnc generation.
type Generation struct {
	FileID  uint64
	Params  rlnc.Params
	Secret  []byte
	Data    []byte
	Digests map[uint64]rlnc.Digest // every message, across all peers
}

// SeedGeneration encodes dataLen bytes into one generation of k pieces
// and disseminates perPeer encoded messages to every storage peer over
// the fabric, announcing each holder to the tracker. The owner client
// uploads from HostUser.
func (c *Cluster) SeedGeneration(ctx context.Context, fileID uint64, k, pieceLen, dataLen, perPeer int) *Generation {
	c.t.Helper()
	params, err := rlnc.NewParams(gf.MustNew(gf.Bits8), k, pieceLen, dataLen)
	if err != nil {
		c.t.Fatal(err)
	}
	data := bytes.Repeat([]byte("asymmetric channel "), dataLen/19+1)[:dataLen]
	enc, err := rlnc.NewEncoder(params, fileID, Secret(), data)
	if err != nil {
		c.t.Fatal(err)
	}
	gen := &Generation{
		FileID:  fileID,
		Params:  params,
		Secret:  Secret(),
		Data:    data,
		Digests: make(map[uint64]rlnc.Digest),
	}
	owner := c.UserClient(client.Options{})
	for i, p := range c.Peers {
		batch, err := enc.BatchForPeer(i, perPeer)
		if err != nil {
			c.t.Fatal(err)
		}
		if err := owner.Disseminate(ctx, p.Addr, batch); err != nil {
			c.t.Fatalf("disseminate to %s: %v", p.Host, err)
		}
		p.Digests = make(map[uint64]rlnc.Digest, len(batch))
		for _, msg := range batch {
			p.Digests[msg.MessageID] = msg.Digest()
			gen.Digests[msg.MessageID] = msg.Digest()
		}
		if err := tracker.AnnounceVia(ctx, c.Fabric.Host(HostUser), c.TrackerAddr,
			fileID, p.Addr, time.Minute); err != nil {
			c.t.Fatalf("announce %s: %v", p.Host, err)
		}
	}
	return gen
}

// Lookup asks the tracker which peers hold fileID, dialing from host.
func (c *Cluster) Lookup(ctx context.Context, host string, fileID uint64) []string {
	c.t.Helper()
	addrs, err := tracker.LookupVia(ctx, c.Fabric.Host(host), c.TrackerAddr, fileID)
	if err != nil {
		c.t.Fatalf("lookup from %s: %v", host, err)
	}
	return addrs
}
