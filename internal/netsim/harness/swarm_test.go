package harness

// Trackerless-scale scenarios: rumor gossip disseminates a file across
// large swarms, the tracker dies mid-run, and a cold client still
// fetches byte-identical plaintext — and keyed audits still debit —
// through DHT discovery alone.

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/audit"
	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/core"
	"asymshare/internal/dht"
	"asymshare/internal/discovery"
	"asymshare/internal/gf"
	"asymshare/internal/netsim"
	"asymshare/internal/rlnc"
)

// swarmPlan keeps generations tiny: GF(2^8), 64-symbol payloads,
// 512-byte chunks (k = 8).
func swarmPlan() chunk.Plan {
	return chunk.Plan{FieldBits: gf.Bits8, M: 64, ChunkSize: 512}
}

// disseminate shares data from the home's gossip engine and drives
// lockstep rounds until at least wantCoverage peers hold every
// generation in full (or maxRounds elapse). Returns the share result
// and the number of rounds driven.
func disseminate(t *testing.T, ctx context.Context, s *Swarm, data []byte,
	wantCoverage, maxRounds int) (*core.ShareResult, int) {
	t.Helper()
	sys, err := core.NewSystem(s.Owner, nil, core.WithPlan(swarmPlan()),
		core.WithClientOptions(client.Options{Transport: s.Fabric.Host(HostHome)}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ShareFileGossip(ctx, "swarm.bin", data, s.HomeGossip, s.HomeAddr)
	if err != nil {
		t.Fatal(err)
	}
	var fileIDs []uint64
	k := 0
	for _, info := range res.Handle.Manifest.Chunks {
		fileIDs = append(fileIDs, info.FileID)
		k = info.K
	}
	rounds := 0
	for ; rounds < maxRounds && s.Coverage(fileIDs, k) < wantCoverage; rounds++ {
		s.GossipRound(ctx)
	}
	cov := s.Coverage(fileIDs, k)
	if cov < wantCoverage {
		t.Fatalf("after %d rounds coverage is %d/%d peers (want >= %d)",
			rounds, cov, len(s.Peers), wantCoverage)
	}
	t.Logf("gossip covered %d/%d peers in %d rounds", cov, len(s.Peers), rounds)
	return res, rounds
}

// coldFetch resolves every chunk through the user's failover chain and
// fetches with a fresh client.
func coldFetch(t *testing.T, ctx context.Context, s *Swarm, disc discovery.Discovery,
	res *core.ShareResult) []byte {
	t.Helper()
	remote, err := core.NewSystem(indexIdentity(t, 1_000_000), nil, core.WithPlan(swarmPlan()),
		core.WithClientOptions(client.Options{Transport: s.Fabric.Host(HostUser)}))
	if err != nil {
		t.Fatal(err)
	}
	data, stats, err := remote.FetchFileVia(ctx, disc, &res.Handle.Manifest, res.Secret)
	if err != nil {
		t.Fatalf("trackerless fetch: %v", err)
	}
	if stats.Innovative == 0 {
		t.Fatal("fetch recorded no innovative messages")
	}
	return data
}

// TestSwarmTrackerlessThousandPeers is the scale acceptance scenario:
// a 1024-peer swarm on scaled-down links, gossip dissemination from
// the home, the tracker killed mid-run, then a cold client fetch and
// keyed audits that debit the home ledger — all via DHT discovery.
func TestSwarmTrackerlessThousandPeers(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-peer swarm scenario skipped in -short")
	}
	seed := Seed(t, 4242)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	s := StartSwarm(t, seed, SwarmConfig{
		N:       1024,
		Fanout:  3,
		MaxIdle: 8,
		Policy:  &netsim.LinkPolicy{Latency: 100 * time.Microsecond},
	})

	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 1000) // 2 generations, k=8 each
	rng.Read(data)

	// Dissemination: ≥ 95% of 1024 peers hold every generation in full.
	res, _ := disseminate(t, ctx, s, data, 973, 60)
	s.WaitAnnounces()

	// The user's DHT node joins through a swarm peer (not the home) —
	// then the tracker dies for good.
	userNode := s.UserDHT(ctx, s.Peers[17].DHT.Addr())
	disc := s.UserFailover(userNode)
	s.KillTracker()

	got := coldFetch(t, ctx, s, disc, res)
	if !bytes.Equal(got, data) {
		t.Fatal("trackerless fetch is not byte-identical")
	}

	// Keyed audits against DHT-discovered holders. The audit targets
	// come out of discovery, not the test's own bookkeeping.
	info := res.Handle.Manifest.Chunks[0]
	addrs, err := disc.Lookup(ctx, info.FileID)
	if err != nil {
		t.Fatalf("post-kill audit lookup: %v", err)
	}
	byAddr := make(map[string]*SwarmPeer, len(s.Peers))
	for _, p := range s.Peers {
		byAddr[p.Addr] = p
	}
	var targets []*SwarmPeer
	for _, a := range addrs {
		if p, ok := byAddr[a]; ok && p.Store.Count(info.FileID) == info.K {
			targets = append(targets, p)
		}
		if len(targets) == 3 {
			break
		}
	}
	if len(targets) < 2 {
		t.Fatalf("discovery yielded %d auditable peers from %v", len(targets), addrs)
	}

	cl := s.Client(HostUser, s.Owner, client.Options{DialTimeout: 2 * time.Second})
	credits := make(map[string]uint64, len(targets))
	for _, p := range targets {
		credits[p.ID.Fingerprint()] = 1000
	}
	if err := cl.SendFeedback(ctx, s.HomeAddr, credits); err != nil {
		t.Fatal(err)
	}
	a, err := audit.New(audit.Config{
		Prober:            cl,
		Secret:            res.Secret,
		Ledger:            s.Home.Ledger(),
		PenaltyPerMessage: 10,
		SampleSize:        2,
		Timeout:           500 * time.Millisecond,
		MaxRetries:        -1,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[uint64]rlnc.Digest, len(info.Digests))
	for id, d := range info.Digests {
		digests[id] = d
	}
	for _, p := range targets {
		if err := a.Add(audit.Target{Addr: p.Addr, FileID: info.FileID, Digests: digests}); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range a.AuditOnce(ctx) {
		if v.Outcome != audit.Pass {
			t.Fatalf("audit %d of DHT-discovered peer failed: %+v", i, v)
		}
	}

	// A holder goes dark: the audit escalates to a Timeout verdict and
	// debits its standing on the home ledger.
	victim := targets[0]
	before := s.Home.Ledger().Received(victim.ID.Fingerprint())
	s.Fabric.Blackhole(victim.Host)
	v := a.AuditOnce(ctx)[0]
	if v.Outcome != audit.Timeout {
		t.Fatalf("blackholed holder verdict = %+v, want Timeout", v)
	}
	after := s.Home.Ledger().Received(victim.ID.Fingerprint())
	if after >= before {
		t.Fatalf("standing did not drop: %v -> %v", before, after)
	}
}

// TestSwarmSmoke is the CI-sized variant (make swarm-smoke): 128 peers
// with latency-scaled links, gossip dissemination, tracker killed,
// trackerless fetch byte-identical.
func TestSwarmSmoke(t *testing.T) {
	seed := Seed(t, 77)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	s := StartSwarm(t, seed, SwarmConfig{
		N:      128,
		Fanout: 3,
		Policy: &netsim.LinkPolicy{Latency: 200 * time.Microsecond},
	})
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 1000)
	rng.Read(data)

	res, _ := disseminate(t, ctx, s, data, 122, 40) // ≥ 95%
	s.WaitAnnounces()

	userNode := s.UserDHT(ctx, s.Peers[3].DHT.Addr())
	disc := s.UserFailover(userNode)
	s.KillTracker()

	got := coldFetch(t, ctx, s, disc, res)
	if !bytes.Equal(got, data) {
		t.Fatal("trackerless fetch is not byte-identical")
	}
}

// TestDiscoveryFailoverNetsim drives the Failover chain through real
// netsim faults in both directions: a dead DHT path falls back to the
// tracker, and a blackholed tracker falls through to the DHT — each
// within the caller's context budget, with retriable classification
// doing the routing.
func TestDiscoveryFailoverNetsim(t *testing.T) {
	seed := Seed(t, 55)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	s := StartSwarm(t, seed, SwarmConfig{N: 8, Fanout: 3})
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 600)
	rng.Read(data)
	res, _ := disseminate(t, ctx, s, data, 8, 30)
	s.WaitAnnounces()
	fileID := res.Handle.Manifest.Chunks[0].FileID

	// Mirror the records on the tracker, as a bootstrap seed would.
	trk, err := discovery.NewTracker(s.TrackerAddr, s.Fabric.Host(HostUser))
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range res.Handle.Manifest.Chunks {
		if err := trk.Announce(ctx, info.FileID, s.HomeAddr, time.Minute); err != nil {
			t.Fatal(err)
		}
	}

	// Direction 1: the user's DHT node never joined the swarm, so the
	// primary mechanism answers ErrNotFound — retriable — and the
	// chain falls back to the tracker.
	lonelyNode, err := dht.New(dht.Config{
		Advertise:  "user:lonely-dht",
		Transport:  s.Fabric.Host(HostUser),
		RPCTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lonelyNode.Close() })
	lonely, err := discovery.NewDHT(lonelyNode, discovery.DHTOptions{ReannounceInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lonely.Lookup(ctx, fileID); !errors.Is(err, discovery.ErrNotFound) || !discovery.Retriable(err) {
		t.Fatalf("unjoined DHT lookup = %v, want retriable ErrNotFound", err)
	}
	chain1, err := discovery.NewFailover(lonely, trk)
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := chain1.Lookup(ctx, fileID)
	if err != nil || len(addrs) == 0 {
		t.Fatalf("DHT-dead failover lookup = %v, %v; want tracker's answer", addrs, err)
	}

	// Direction 2: the tracker host is blackholed; its lookups burn the
	// per-call budget (a retriable net/context error), then the joined
	// DHT answers — all well inside the caller's deadline.
	userNode := s.UserDHT(ctx, s.Peers[2].DHT.Addr())
	userDHT, err := discovery.NewDHT(userNode, discovery.DHTOptions{ReannounceInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	trk.SetTimeout(time.Second)
	s.Fabric.Blackhole(HostTracker)
	lctx, lcancel := context.WithTimeout(ctx, 3*time.Second)
	defer lcancel()
	if _, err := trk.Lookup(lctx, fileID); err == nil || !discovery.Retriable(err) {
		t.Fatalf("blackholed tracker lookup = %v, want a retriable error", err)
	}
	chain2, err := discovery.NewFailover(trk, userDHT)
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithTimeout(ctx, 5*time.Second)
	defer fcancel()
	start := time.Now()
	addrs, err = chain2.Lookup(fctx, fileID)
	if err != nil || len(addrs) == 0 {
		t.Fatalf("tracker-dead failover lookup = %v, %v; want DHT's answer", addrs, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("failover took %v, leaked past the context budget", elapsed)
	}

	// Fatal classification end-to-end: a malformed announce aborts the
	// chain instead of burning budget on the fallback.
	s.Fabric.Restore(HostTracker)
	if err := trk.Announce(ctx, fileID, "", time.Minute); !errors.Is(err, discovery.ErrBadRecord) || discovery.Retriable(err) {
		t.Fatalf("empty-addr announce = %v, want fatal ErrBadRecord", err)
	}
}
