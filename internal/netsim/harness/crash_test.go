package harness

// Crash-recovery scenario: a storage peer's machine power-cuts in the
// middle of a dissemination, reboots, and rejoins the network with
// everything it acknowledged intact — the stored messages pass a keyed
// spot-check audit byte-for-byte, and the Eq. (2) receipt standings it
// had checkpointed survive. The disk is an fsx.ErrFS, so the power cut
// lands at a deterministic filesystem operation and replays exactly.

import (
	"bytes"
	"testing"

	"asymshare/internal/audit"
	"asymshare/internal/client"
	"asymshare/internal/fsx"
	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

func TestPeerCrashMidDisseminationRecovers(t *testing.T) {
	seed := Seed(t, 11)
	ctx := testCtx(t)
	c := Start(t, seed, 1) // one memory peer: the counterpart earning standing
	efs := fsx.NewErrFS(seed)
	dp := c.StartDurablePeer(efs, "durable", 42, c.Owner.Public())

	// Encode one generation; batch A carries full rank (k messages with
	// an invertible coefficient matrix), so the durable peer alone can
	// serve a complete decode after it recovers.
	const fileID, k = 46, 8
	params, err := rlnc.NewParams(gf.MustNew(gf.Bits8), k, 256, 2048)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := rlnc.NewEncoder(params, fileID, Secret(), gen46Data())
	if err != nil {
		t.Fatal(err)
	}
	batchA, err := enc.BatchForPeer(0, k)
	if err != nil {
		t.Fatal(err)
	}
	batchB, err := enc.BatchForPeer(1, k)
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[uint64]rlnc.Digest) // everything ever sent
	ackedDigests := make(map[uint64]rlnc.Digest)
	for _, m := range batchA {
		digests[m.MessageID] = m.Digest()
		ackedDigests[m.MessageID] = m.Digest()
	}
	for _, m := range batchB {
		digests[m.MessageID] = m.Digest()
	}

	// Batch A lands fully: every PUT was acked, and the peer acks only
	// after the journal append is fsynced.
	cl := c.UserClient(client.Options{})
	if err := cl.Disseminate(ctx, dp.Addr, batchA); err != nil {
		t.Fatalf("disseminate batch A: %v", err)
	}

	// The peer's user reports receipts from the other peer; the standing
	// is checkpointed — the periodic tick, made explicit.
	counterpart := c.Peers[0].ID.Fingerprint()
	if err := cl.SendFeedback(ctx, dp.Addr, map[string]uint64{counterpart: 800}); err != nil {
		t.Fatal(err)
	}
	wantStanding := dp.Node.Ledger().Received(counterpart)
	if err := dp.Node.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	// Power-cut the disk a few filesystem operations into batch B's
	// journal appends. The peer drops the connection on the failed PUT,
	// so dissemination errors out part-way.
	efs.CrashAtOp(efs.Ops() + 3)
	if err := cl.Disseminate(ctx, dp.Addr, batchB); err == nil {
		t.Fatal("dissemination succeeded past a dead disk")
	}
	if !efs.Crashed() {
		t.Fatal("crash point never fired")
	}

	// Reboot. Journal recovery must keep every acked message and never
	// quarantine on a pure power cut — a torn tail is truncated in place.
	if err := dp.Restart(c); err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	rec := dp.Store.Recovery()
	if rec.QuarantinedFiles != 0 {
		t.Fatalf("power cut quarantined files: %+v", rec)
	}
	for id, want := range ackedDigests {
		msg, err := dp.Store.Get(fileID, id)
		if err != nil {
			t.Fatalf("acked message %d lost in crash: %v", id, err)
		}
		if msg.Digest() != want {
			t.Fatalf("acked message %d corrupted in crash", id)
		}
	}

	// The recovered peer passes a keyed spot-check audit over the acked
	// digest set.
	a, err := audit.New(audit.Config{
		Prober:            cl,
		Secret:            Secret(),
		Ledger:            c.Home.Ledger(),
		PenaltyPerMessage: 10,
		SampleSize:        4,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(audit.Target{Addr: dp.Addr, FileID: fileID, Digests: ackedDigests}); err != nil {
		t.Fatal(err)
	}
	if v := a.AuditOnce(ctx)[0]; v.Outcome != audit.Pass {
		t.Fatalf("post-crash audit verdict = %+v", v)
	}

	// The checkpointed standing survived the crash exactly.
	lrec := dp.Node.LedgerRecovery()
	if !lrec.Loaded || lrec.CorruptSlots != 0 {
		t.Fatalf("ledger recovery = %+v", lrec)
	}
	if got := dp.Node.Ledger().Received(counterpart); got != wantStanding {
		t.Fatalf("post-crash standing = %v, want %v", got, wantStanding)
	}

	// And the peer still serves a full decode on its own. Any batch B
	// messages acked before the cut also survived, so the union digest
	// set verifies every stored message.
	data, stats, err := cl.FetchGeneration(ctx, []string{dp.Addr}, params, fileID, Secret(), digests)
	if err != nil {
		t.Fatalf("fetch from recovered peer: %v", err)
	}
	if !bytes.Equal(data, gen46Data()) {
		t.Fatal("decoded bytes differ from original")
	}
	if stats.Rejected != 0 {
		t.Fatalf("recovered peer served %d messages failing digest check", stats.Rejected)
	}
}

// gen46Data is the deterministic payload for the crash scenario.
func gen46Data() []byte {
	return bytes.Repeat([]byte("asymmetric channel "), 2048/19+1)[:2048]
}
