package harness

// High-bandwidth scenario for the parallel decode path: eight peers
// behind low-latency, rate-capped links jointly serve a 1 MiB
// generation. The paper's core claim is that parallel downloads fill
// the user's wide download pipe beyond any single peer's upload
// capacity; this test pins that end to end by bounding the fetch
// wall-clock against the fabric's link-limited optimum.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"asymshare/internal/client"
	"asymshare/internal/netsim"
)

func TestHighBandwidthFetchApproachesLinkOptimum(t *testing.T) {
	seed := Seed(t, 2026)
	ctx := testCtx(t)
	const (
		peers     = 8
		k         = 32
		pieceLen  = 32 << 10 // 32 KiB chunks over GF(2^8): 1 MiB generation
		perPeer   = 8
		peerRate  = 512 << 10 // bytes/sec upload per peer
		linkDelay = 300 * time.Microsecond
	)
	c := Start(t, seed, peers)
	gen := c.SeedGeneration(ctx, 77, k, pieceLen, k*pieceLen, perPeer)

	// Shape the serving links only after seeding so dissemination runs
	// at fabric speed. Every peer uploads at most peerRate; the user's
	// aggregate download is peers*peerRate — the asymmetric-channel
	// setting where only parallelism can fill the downlink.
	for _, p := range c.Peers {
		c.Fabric.SetLink(p.Host, HostUser, netsim.LinkPolicy{
			Latency:     linkDelay,
			BytesPerSec: peerRate,
			Burst:       pieceLen, // >= netsim's 16 KiB shaping segment
		})
		c.Fabric.SetLink(HostUser, p.Host, netsim.LinkPolicy{Latency: linkDelay})
	}

	addrs := c.Lookup(ctx, HostUser, gen.FileID)
	if len(addrs) != peers {
		t.Fatalf("tracker returned %d peers, want %d", len(addrs), peers)
	}
	cl := c.UserClient(client.Options{})
	data, stats, err := cl.Fetch(ctx, client.FetchRequest{
		Peers:   addrs,
		Params:  gen.Params,
		FileID:  gen.FileID,
		Secret:  gen.Secret,
		Digests: gen.Digests,
	})
	if err != nil {
		t.Fatalf("high-bandwidth fetch: %v", err)
	}
	if !bytes.Equal(data, gen.Data) {
		t.Fatal("decoded bytes differ from original")
	}

	// Link-limited optimum: k messages' worth of wire bytes through the
	// aggregate download rate. The factor covers handshake round trips,
	// the q/(q-1) redundancy overhead, and scheduling slop; the
	// additive second absorbs -race and loaded-CI noise. A client that
	// serialized on one peer's uplink would alone need ~peers times the
	// optimum, so the bound still proves parallel draw.
	wireBytes := float64(k * (gen.Params.ChunkBytes() + 16))
	optimum := time.Duration(wireBytes / (peers * peerRate) * float64(time.Second))
	bound := 3*optimum + time.Second
	if stats.Elapsed > bound {
		t.Fatalf("fetch took %v, want <= %v (link-limited optimum %v)",
			stats.Elapsed, bound, optimum)
	}
	// The decode must actually have drawn from many peers: each holds
	// only perPeer messages, so at least k/perPeer uplinks contributed.
	if got := len(stats.BytesFrom); got < k/perPeer {
		t.Fatalf("only %d peers contributed bytes, want >= %d", got, k/perPeer)
	}
	if stats.Innovative != k {
		t.Errorf("innovative = %d, want %d", stats.Innovative, k)
	}
	t.Log(fmt.Sprintf("fetched %d bytes in %v (optimum %v, bound %v, %d peers)",
		len(data), stats.Elapsed, optimum, bound, len(stats.BytesFrom)))
}

// TestFetchRequestSequentialEngineMatches runs the same fetch through
// the sequential decode engine (DecodeWorkers < 0) and the default
// pipeline, pinning that the engine choice is invisible in the result.
func TestFetchRequestSequentialEngineMatches(t *testing.T) {
	seed := Seed(t, 31)
	ctx := testCtx(t)
	c := Start(t, seed, 3)
	gen := c.SeedGeneration(ctx, 9, 8, 512, 4096, 4)
	addrs := c.Lookup(ctx, HostUser, gen.FileID)
	cl := c.UserClient(client.Options{})

	req := client.FetchRequest{
		Peers:   addrs,
		Params:  gen.Params,
		FileID:  gen.FileID,
		Secret:  gen.Secret,
		Digests: gen.Digests,
	}
	req.DecodeWorkers = -1
	seqData, seqStats, err := cl.Fetch(ctx, req)
	if err != nil {
		t.Fatalf("sequential-engine fetch: %v", err)
	}
	req.DecodeWorkers = 2
	pipeData, pipeStats, err := cl.Fetch(ctx, req)
	if err != nil {
		t.Fatalf("pipeline-engine fetch: %v", err)
	}
	if !bytes.Equal(seqData, pipeData) || !bytes.Equal(seqData, gen.Data) {
		t.Fatal("engines disagree on decoded bytes")
	}
	if seqStats.Innovative != gen.Params.K || pipeStats.Innovative != gen.Params.K {
		t.Errorf("innovative: sequential %d, pipeline %d, want %d",
			seqStats.Innovative, pipeStats.Innovative, gen.Params.K)
	}
}
