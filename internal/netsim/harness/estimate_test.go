package harness

// Capacity-estimation scenario: a storage peer with no configured
// upload capacity sits behind an asymmetric rate-capped netsim link
// and serves a generation twice. Its online estimator must discover
// the link cap from flush timings alone — the paper's allocation rule
// divides *measured* capacity, so an estimate that misses the real
// link rate misallocates every requester downstream. The acceptance
// bound is 15%: tight enough to catch shaped-throughput feedback or
// burst-buffer inflation, loose enough for scheduler noise under
// -race on CI.

import (
	"bytes"
	"testing"
	"time"

	"asymshare/internal/client"
	"asymshare/internal/estimate"
	"asymshare/internal/netsim"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

func TestEstimatorConvergesToLinkRate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second shaped transfer")
	}
	seed := Seed(t, 4101)
	ctx := testCtx(t)
	const (
		k        = 64
		pieceLen = 64 << 10 // 4 MiB generation
		perPeer  = 64       // a full batch: decodable from this one peer
		peerRate = 4 << 20  // bytes/sec uplink cap
		// Each fetch serves the generation in one burst — one sample
		// train — and the estimator answers only after three samples.
		fetches = 3
	)
	c := Start(t, seed, 0)

	// Boot the serving peer by hand: estimator, no configured capacity.
	est := estimate.NewHistory(0, 0)
	st := store.NewMemory()
	node, err := peer.New(peer.Config{
		Identity:  testIdentity(t, 1),
		Store:     st,
		Estimator: est,
		Transport: c.Fabric.Host("peer0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	c.Peers = append(c.Peers, &Peer{Host: "peer0", Node: node, Store: st, Addr: node.Addr().String()})

	gen := c.SeedGeneration(ctx, 41, k, pieceLen, k*pieceLen, perPeer)
	if est.Estimate() != 0 {
		t.Fatalf("estimate = %v before any capped serving", est.Estimate())
	}

	// Cap the serving direction only — the asymmetric channel. Burst
	// stays well under one sample train so token credit cannot inflate
	// the timing past the acceptance bound.
	c.Fabric.SetLink("peer0", HostUser, netsim.LinkPolicy{
		Latency:     300 * time.Microsecond,
		BytesPerSec: peerRate,
		Burst:       32 << 10,
	})
	c.Fabric.SetLink(HostUser, "peer0", netsim.LinkPolicy{Latency: 300 * time.Microsecond})

	cl := c.UserClient(client.Options{})
	for i := 0; i < fetches; i++ {
		data, _, err := cl.Fetch(ctx, client.FetchRequest{
			Peers:   []string{node.Addr().String()},
			Params:  gen.Params,
			FileID:  gen.FileID,
			Secret:  gen.Secret,
			Digests: gen.Digests,
		})
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if !bytes.Equal(data, gen.Data) {
			t.Fatal("decoded bytes differ from original")
		}
	}

	got := est.Estimate()
	if got == 0 {
		t.Fatal("estimator still warming up after 8 MiB of shaped serving")
	}
	if ratio := got / peerRate; ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("estimate %.0f B/s vs link cap %d B/s (ratio %.3f), want within 15%%",
			got, int(peerRate), ratio)
	}
	t.Logf("estimate %.0f B/s vs link cap %d B/s (%.1f%% off)",
		got, int(peerRate), 100*(got/peerRate-1))
}
