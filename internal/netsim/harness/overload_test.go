package harness

// Overload-resilience scenarios (make overload-smoke, DESIGN.md §15).
//
// Flash crowd: sixteen clients with exponentially spaced fairness
// standings storm one storage peer whose admission bound holds four
// streams — 4x offered load. The shaped uplink must stay ≥90% utilized
// across the whole crowd (refused clients honor RETRY_AFTER and win a
// slot later, so capacity is never parked), every client must finish
// byte-identical, the peer must have shed somebody, and the shed
// ordering must have protected the top-standing quartile completely.
//
// Hedge/breaker differential: a manifest fetch with one peer blackholed
// must stay within 2x the no-fault baseline while the peer's circuit
// breaker opens; after the fault heals, a half-open probe must close
// the breaker again. A separate scenario wedges one peer's uplink to a
// trickle mid-chunk and requires the stall hedge to re-issue the chunk
// on the next-healthiest peer.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/core"
	"asymshare/internal/gf"
	"asymshare/internal/metrics"
	"asymshare/internal/netsim"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

func TestFlashCrowdShedsFreeRidersAndKeepsGoodput(t *testing.T) {
	seed := Seed(t, 41)
	ctx := testCtx(t)
	const (
		crowd      = 16
		maxStreams = 4 // 4x offered load
		capBps     = 256 << 10
		k          = 16
		pieceLen   = 2048
	)
	c := Start(t, seed, 0)

	// The hot peer is built by hand: shaped uplink, bounded admission,
	// a small stream burst so the token buckets cannot hide the cap,
	// and a fast realloc tick so handoffs re-divide capacity promptly.
	hotID := testIdentity(t, 77)
	hot, err := peer.New(peer.Config{
		Identity:          hotID,
		Store:             store.NewMemory(),
		UploadBytesPerSec: capBps,
		StreamBurst:       4096,
		MaxStreams:        maxStreams,
		ReallocInterval:   50 * time.Millisecond,
		Transport:         c.Fabric.Host("hot"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hot.Start(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hot.Close() })
	c.Peers = append(c.Peers, &Peer{Host: "hot", ID: hotID, Node: hot,
		Addr: hot.Addr().String()})

	gen := c.SeedGeneration(ctx, 0xF1A5, k, pieceLen, k*pieceLen, k)

	// Standings spaced x2 apart — comfortably past the 1.1 preemption
	// margin — so the shed order is fully determined: client i outranks
	// everyone below it.
	ids := make([]*auth.Identity, crowd)
	fps := make([]string, crowd)
	for i := range ids {
		ids[i] = testIdentity(t, byte(100+i))
		fps[i] = auth.Fingerprint(ids[i].Public())
		hot.Ledger().Credit(fps[i], float64(uint64(1)<<i))
	}

	reg := metrics.NewRegistry()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		received uint64
		fetchErr = make([]error, crowd)
	)
	start := time.Now()
	for i := 0; i < crowd; i++ {
		cl := c.Client("u"+fmt.Sprint(i), ids[i], client.Options{})
		cl.Instrument(reg)
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			data, stats, err := cl.Fetch(ctx, client.FetchRequest{
				Peers:   []string{hot.Addr().String()},
				Params:  gen.Params,
				FileID:  gen.FileID,
				Secret:  gen.Secret,
				Digests: gen.Digests,
			})
			if err != nil {
				fetchErr[i] = err
				return
			}
			if !bytes.Equal(data, gen.Data) {
				fetchErr[i] = fmt.Errorf("client %d decoded different bytes", i)
				return
			}
			mu.Lock()
			for _, b := range stats.BytesFrom {
				received += b
			}
			mu.Unlock()
		}(i, cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range fetchErr {
		if err != nil {
			t.Fatalf("client %d (standing 2^%d): %v", i, i, err)
		}
	}

	// Utilization: everything that crossed the shaped uplink, over the
	// whole crowd's wall clock — handoff gaps between a shed and the
	// next RETRY_AFTER knock are the only way to lose it.
	goodput := float64(received) / elapsed.Seconds()
	if min := 0.9 * capBps; goodput < min {
		t.Errorf("goodput %.0f B/s over %v, want >= %.0f (90%% of the %d B/s cap)",
			goodput, elapsed, min, capBps)
	}

	st := hot.OverloadStats()
	if st.Sheds == 0 {
		t.Fatal("4x offered load produced zero sheds; admission control inert")
	}
	// Shed ordering: the top-standing quartile is never the victim —
	// the weakest active stream always outranks nobody above it.
	for i := crowd - crowd/4; i < crowd; i++ {
		if n := st.ShedsByClient[fps[i]]; n != 0 {
			t.Errorf("top-quartile client %d shed %d times, want 0", i, n)
		}
	}
	// And the clients saw the BUSY frames as typed sheds, not failures.
	if v := reg.Counter(client.MetricShedsObserved, "").Value(); v == 0 {
		t.Error("clients observed no BUSY sheds despite peer-side sheds")
	}
	t.Logf("crowd of %d done in %v: goodput %.0f B/s (cap %d), sheds %d (preempts %d)",
		crowd, elapsed, goodput, capBps, st.Sheds, st.Preempts)
}

// shareOverloadFile shares a multi-chunk file over the cluster's peers
// and returns the original bytes, the fetch handle, and the coding
// secret.
func shareOverloadFile(t *testing.T, ctx context.Context, c *Cluster,
	plan chunk.Plan, size int) ([]byte, *core.Handle, []byte) {
	t.Helper()
	sys, err := core.NewSystem(c.Owner, nil, core.WithPlan(plan),
		core.WithClientOptions(client.Options{Transport: c.Fabric.Host(HostUser)}))
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("overload resilience "), size/20+1)[:size]
	addrs := make([]string, len(c.Peers))
	for i, p := range c.Peers {
		addrs[i] = p.Addr
	}
	res, err := sys.ShareFile(ctx, "overload.bin", data, addrs)
	if err != nil {
		t.Fatal(err)
	}
	return data, &res.Handle, res.Secret
}

func TestHedgedFetchSurvivesBlackholedPeerWithinTwiceBaseline(t *testing.T) {
	seed := Seed(t, 43)
	ctx := testCtx(t)
	const (
		peers    = 3
		linkRate = 128 << 10
		size     = 192 << 10 // 12 chunks of 16 KiB
	)
	c := Start(t, seed, peers)
	plan := chunk.Plan{FieldBits: gf.Bits8, M: 1024, ChunkSize: 16 << 10}
	data, h, secret := shareOverloadFile(t, ctx, c, plan, size)

	// Shape only the serving direction, after seeding, for both user
	// hosts, so baseline and faulted runs see identical links.
	for _, p := range c.Peers {
		for _, u := range []string{"ub", "uf"} {
			c.Fabric.SetLink(p.Host, u, netsim.LinkPolicy{
				BytesPerSec: linkRate,
				Burst:       16 << 10, // >= netsim's shaping segment
			})
		}
	}

	opts := client.Options{
		Hedge:            true,
		DialTimeout:      100 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  300 * time.Millisecond,
	}
	base := c.Client("ub", testIdentity(t, 150), opts)
	got, baseStats, err := base.FetchFile(ctx, h.Peers, &h.Manifest, secret)
	if err != nil {
		t.Fatalf("baseline hedged fetch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("baseline decode differs from original")
	}
	baseline := baseStats.Elapsed

	// Fault: peer0 vanishes. The dial fails within DialTimeout, the
	// breaker opens, and the remaining two peers carry the manifest.
	reg := metrics.NewRegistry()
	faulted := c.Client("uf", testIdentity(t, 151), opts)
	faulted.Instrument(reg)
	c.Fabric.Blackhole(c.Peers[0].Host)
	got, faultStats, err := faulted.FetchFile(ctx, h.Peers, &h.Manifest, secret)
	if err != nil {
		t.Fatalf("faulted hedged fetch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("faulted decode differs from original")
	}
	// The 2x differential bound of ISSUE 10, plus a sub-second additive
	// term absorbing -race and loaded-CI noise (the throughput test's
	// idiom): losing one of three uplinks costs 1.5x in theory, and the
	// quarantined dial costs one DialTimeout, not a wedged fetch.
	bound := 2*baseline + 750*time.Millisecond
	if faultStats.Elapsed > bound {
		t.Errorf("faulted fetch took %v, want <= %v (baseline %v)",
			faultStats.Elapsed, bound, baseline)
	}
	if s := faulted.PeerHealth(c.Peers[0].Addr); s.Breaker != "open" {
		t.Fatalf("breaker %q after blackholed dial, want open", s.Breaker)
	}
	if v := reg.Counter(client.MetricBreakerOpens, "").Value(); v < 1 {
		t.Fatalf("breaker_opens_total = %d, want >= 1", v)
	}

	// Heal, wait out the cooldown, refetch with the same client: a
	// half-open probe rides along a healthy primary and the success
	// closes the breaker.
	c.Fabric.Restore(c.Peers[0].Host)
	time.Sleep(opts.BreakerCooldown + 100*time.Millisecond)
	got, _, err = faulted.FetchFile(ctx, h.Peers, &h.Manifest, secret)
	if err != nil {
		t.Fatalf("recovery fetch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recovery decode differs from original")
	}
	if s := faulted.PeerHealth(c.Peers[0].Addr); s.Breaker != "closed" {
		t.Fatalf("breaker %q after successful probe, want closed", s.Breaker)
	}
	if v := reg.Counter(client.MetricBreakerProbes, "").Value(); v < 1 {
		t.Errorf("breaker_probes_total = %d, want >= 1", v)
	}
	if v := reg.Counter(client.MetricBreakerRecoveries, "").Value(); v < 1 {
		t.Errorf("breaker_recoveries_total = %d, want >= 1", v)
	}
	if v := reg.Gauge(client.MetricBreakerOpenCurrent, "").Value(); v != 0 {
		t.Errorf("breaker_open_current = %v after recovery, want 0", v)
	}
	t.Logf("baseline %v, faulted %v (bound %v), breaker open->probe->closed",
		baseline, faultStats.Elapsed, bound)
}

func TestHedgeReissuesStalledChunkOnNextPeer(t *testing.T) {
	seed := Seed(t, 47)
	ctx := testCtx(t)
	c := Start(t, seed, 3)
	// 64 KiB chunks of 4 KiB pieces: each chunk far outsizes the
	// stalled link's burst, so the wedge always bites mid-chunk.
	plan := chunk.Plan{FieldBits: gf.Bits8, M: 4096, ChunkSize: 64 << 10}
	data, h, secret := shareOverloadFile(t, ctx, c, plan, 192<<10)

	// peer0's uplink to this user wedges to a trickle after one burst:
	// the session dials and handshakes fine, the first chunk starts
	// there (a fresh health ladder preserves peer order), delivers one
	// burst worth of frames, and then starves.
	c.Fabric.SetLink(c.Peers[0].Host, "u2", netsim.LinkPolicy{
		BytesPerSec: 50,
		Burst:       16 << 10,
	})

	reg := metrics.NewRegistry()
	cl := c.Client("u2", testIdentity(t, 152), client.Options{
		Hedge:      true,
		HedgeDelay: 150 * time.Millisecond,
	})
	cl.Instrument(reg)
	got, stats, err := cl.FetchFile(ctx, h.Peers, &h.Manifest, secret)
	if err != nil {
		t.Fatalf("hedged fetch with a stalled peer: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode differs from original")
	}
	if v := reg.Counter(client.MetricHedgeLaunched, "").Value(); v < 1 {
		t.Fatalf("hedge_launched_total = %d, want >= 1 (stalled chunk never re-issued)", v)
	}
	t.Logf("fetched %d bytes in %v despite a 50 B/s peer; hedges launched: %d",
		len(got), stats.Elapsed, reg.Counter(client.MetricHedgeLaunched, "").Value())
}
