package harness

// Churn-repair scenario (make churn-smoke): 30% of the storage peers
// holding a file vanish permanently — killed and blackholed, the
// netsim analogue of a machine leaving the swarm for good — and the
// proactive repair daemon restores the replica target on spare peers
// without the owner in the loop. The file stays fetchable
// byte-identical from a cold client, the repair traffic stays within
// 3x the minimum replacement bytes, and both sides of the contract
// state survive a power cut: a replacement peer reboots with its
// obligations in the journaled book, and the owner's holdings set
// replays to the exact watermark.

import (
	"bytes"
	"context"
	"sort"
	"testing"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/contract"
	"asymshare/internal/core"
	"asymshare/internal/fsx"
	"asymshare/internal/gf"
	"asymshare/internal/repair"
)

func TestChurnRepairKeepsFileFetchable(t *testing.T) {
	seed := Seed(t, 29)
	ctx := testCtx(t)

	// 10 storage peers: 9 in-memory plus one durable spare whose book
	// and store live on a crashable filesystem.
	c := Start(t, seed, 9)
	pefs := fsx.NewErrFS(seed + 1)
	dp := c.StartDurablePeer(pefs, "durable", 60, c.Owner.Public())

	plan := chunk.Plan{FieldBits: gf.Bits8, M: 128, ChunkSize: 1024}
	data := bytes.Repeat([]byte("churned swarm "), 3000/14+1)[:3000]
	sys, err := core.NewSystem(c.Owner, nil, core.WithPlan(plan),
		core.WithClientOptions(client.Options{Transport: c.Fabric.Host(HostUser)}))
	if err != nil {
		t.Fatal(err)
	}

	// Share to 5 holders (replica target R = 5), then upgrade every
	// placement into a contract recorded in a journaled holdings set.
	const target = 5
	holders := make([]string, target)
	for i := range holders {
		holders[i] = c.Peers[i].Addr
	}
	res, err := sys.ShareFile(ctx, "churn.bin", data, holders)
	if err != nil {
		t.Fatal(err)
	}
	chunks := len(res.Handle.Manifest.Chunks)
	if chunks < 2 {
		t.Fatalf("want a multi-chunk share, got %d chunks", chunks)
	}

	oefs := fsx.NewErrFS(seed + 2)
	if err := oefs.MkdirAll("/owner", 0o755); err != nil {
		t.Fatal(err)
	}
	set, _, err := contract.OpenSet(oefs, "/owner/contracts.j")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sys.NegotiateContracts(ctx, &res.Handle, set, time.Hour); err != nil || n != target*chunks {
		t.Fatalf("NegotiateContracts = %d, %v; want %d contracts", n, err, target*chunks)
	}

	// The daemon draws replacements from a fixed spare pool and
	// persists the handle (fresh digests) to the owner's disk before
	// every replacement upload.
	const handlePath = "/owner/handle.json"
	if err := core.SaveHandleFileFS(oefs, handlePath, &res.Handle); err != nil {
		t.Fatal(err)
	}
	spares := []string{dp.Addr, c.Peers[5].Addr, c.Peers[6].Addr}
	d, err := sys.NewRepairDaemon(&res.Handle, res.Secret, data, set, repair.Config{
		Target:       target,
		TTL:          time.Hour,
		Peers:        func(context.Context, int) []string { return spares },
		ProbeTimeout: 500 * time.Millisecond,
		Seed:         seed,
		OwnPeerAddr:  c.HomeAddr,
		Persist: func() error {
			return core.SaveHandleFileFS(oefs, handlePath, &res.Handle)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Permanent churn: 3 of the 10 storage peers (30%) — all of them
	// holders — are killed and blackholed, so probes time out instead
	// of failing fast.
	for _, i := range []int{1, 2, 3} {
		c.Peers[i].Node.Close()
		c.Fabric.Blackhole(c.Peers[i].Host)
	}

	rep, err := d.RunOnce(ctx)
	if err != nil {
		t.Fatalf("repair round: %v", err)
	}
	if rep.Dead != 3*chunks {
		t.Errorf("dead holdings = %d, want %d", rep.Dead, 3*chunks)
	}
	if rep.Replacements != 3*chunks {
		t.Errorf("replacements = %d, want %d", rep.Replacements, 3*chunks)
	}
	if rep.MinWatermark != float64(target) {
		t.Errorf("min watermark after repair = %v, want %d", rep.MinWatermark, target)
	}

	// Repair traffic budget: at most 3x the minimum replacement bytes
	// (one full-rank batch per lost replica per chunk).
	var minBytes int64
	for _, info := range res.Handle.Manifest.Chunks {
		params, err := info.Params(plan)
		if err != nil {
			t.Fatal(err)
		}
		minBytes += 3 * int64(info.K) * int64(params.MessageBytes())
	}
	if rep.Bytes <= 0 || rep.Bytes > 3*minBytes {
		t.Errorf("repair bytes = %d, want in (0, %d] (3x minimum)", rep.Bytes, 3*minBytes)
	}

	// Steady state: a second round finds nothing to do.
	rep2, err := d.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Dead != 0 || rep2.Replacements != 0 || rep2.Failed != 0 {
		t.Errorf("second round not quiescent: %+v", rep2)
	}

	// Cold fetch from a fresh host using only the (persisted) handle
	// and the live holder set: byte-identical.
	fetchHandle := liveHandle(t, &res.Handle, set)
	cold, err := core.NewSystem(c.Owner, nil, core.WithPlan(plan),
		core.WithClientOptions(client.Options{Transport: c.Fabric.Host("cold")}))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := cold.FetchFile(ctx, fetchHandle, res.Secret)
	if err != nil {
		t.Fatalf("cold fetch after churn: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cold fetch differs from original after churn repair")
	}

	// Peer-side kill -9: the durable replacement power-cuts and
	// reboots with its contract book, obligations, and batches intact.
	if err := dp.Restart(c); err != nil {
		t.Fatalf("restart durable replacement: %v", err)
	}
	brec := dp.Node.ContractRecovery()
	if brec.Active != chunks {
		t.Fatalf("recovered book = %+v, want %d active contracts", brec, chunks)
	}
	got2, _, err := cold.FetchFile(ctx, fetchHandle, res.Secret)
	if err != nil {
		t.Fatalf("fetch after replacement reboot: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("fetch differs after replacement peer reboot")
	}

	// Owner-side kill -9: the holdings journal and handle file replay
	// to the exact post-repair state — the recovered daemon sees the
	// watermark at target without touching the network.
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	oefs.Reboot()
	set2, orec, err := contract.OpenSet(oefs, "/owner/contracts.j")
	if err != nil {
		t.Fatalf("reopen holdings journal: %v", err)
	}
	defer set2.Close()
	if orec.Active != target*chunks {
		t.Fatalf("owner recovery = %+v, want %d active holdings", orec, target*chunks)
	}
	h2, err := core.LoadHandleFileFS(oefs, handlePath)
	if err != nil {
		t.Fatalf("reload handle: %v", err)
	}
	d2, err := sys.NewRepairDaemon(h2, res.Secret, data, set2, repair.Config{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i, w := range d2.Watermarks() {
		if w != float64(target) {
			t.Errorf("recovered watermark[%d] = %v, want %d", i, w, target)
		}
	}
}

// liveHandle rebuilds a fetch handle whose peer list is the current
// live holder set recorded in the holdings journal.
func liveHandle(t *testing.T, h *core.Handle, set *contract.Set) *core.Handle {
	t.Helper()
	seen := make(map[string]bool)
	var addrs []string
	for _, hd := range set.Holdings() {
		if !seen[hd.Addr] {
			seen[hd.Addr] = true
			addrs = append(addrs, hd.Addr)
		}
	}
	sort.Strings(addrs)
	if len(addrs) == 0 {
		t.Fatal("no live holders in the contract set")
	}
	return &core.Handle{Manifest: h.Manifest, Peers: addrs}
}
