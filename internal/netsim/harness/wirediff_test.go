package harness

// ISSUE 8 satellite 2: the pooled/muxed wire hot path must be
// observationally identical to the legacy ReadFrame/WriteFrame path —
// same decoded bytes — under deterministic chaos on the netsim fabric:
// mid-stream connection cuts, per-link latency and asymmetric rate
// caps. On top of byte identity, every scenario asserts the
// wire.DefaultPool teardown invariants: all pooled frame buffers
// released (no leaks) and no double-releases, even on the failure
// paths the chaos forces.

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"asymshare/internal/client"
	"asymshare/internal/netsim"
	"asymshare/internal/rlnc"
	"asymshare/internal/wire"
)

// poolBaseline snapshots DefaultPool before a scenario. The harness
// shares one process-wide pool across tests, so the invariants are
// asserted as deltas against the snapshot.
func poolBaseline() wire.PoolStats { return wire.DefaultPool.Stats() }

// checkDefaultPool waits for in-flight server goroutines to release
// their buffers (stream teardown races the fetch returning) and then
// asserts the delta invariants: no net live buffers, no new
// double-releases.
func checkDefaultPool(t *testing.T, before wire.PoolStats) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := wire.DefaultPool.Stats()
		if st.Live <= before.Live && st.DoubleReleases == before.DoubleReleases {
			return
		}
		if time.Now().After(deadline) {
			if st.Live > before.Live {
				t.Errorf("pool leak: %d live buffers at teardown (was %d)", st.Live, before.Live)
			}
			if st.DoubleReleases != before.DoubleReleases {
				t.Errorf("%d double-releases during scenario",
					st.DoubleReleases-before.DoubleReleases)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWireDifferentialChaos fetches the same generation twice — once
// over the legacy wire path, once over the pooled one — while the
// fabric injects latency, an asymmetric rate cap, and a mid-stream cut
// on one peer. Both fetches must succeed (the two surviving peers
// jointly decode) and produce byte-identical output.
func TestWireDifferentialChaos(t *testing.T) {
	seed := Seed(t, 7788)
	ctx := testCtx(t)
	before := poolBaseline()
	c := Start(t, seed, 3)
	// 3 peers x 4 messages, k=8: any two peers jointly decode, so the
	// cut peer is survivable without redials.
	gen := c.SeedGeneration(ctx, 61, 8, 512, 4096, 4)

	c.Fabric.SetLink("peer0", HostUser, netsim.LinkPolicy{Latency: 2 * time.Millisecond})
	c.Fabric.SetLink("peer1", HostUser, netsim.LinkPolicy{BytesPerSec: 512 << 10})
	c.Fabric.SetLink("peer2", HostUser, netsim.LinkPolicy{CutAfterBytes: 1200})

	addrs := c.Lookup(ctx, HostUser, gen.FileID)
	if len(addrs) != 3 {
		t.Fatalf("tracker returned %d peers, want 3", len(addrs))
	}

	fetch := func(opts client.Options) []byte {
		t.Helper()
		opts.PeerRetries = -1 // fixed dial sequence: same faults hit both paths
		cl := c.UserClient(opts)
		data, _, err := cl.FetchGeneration(ctx, addrs, gen.Params, gen.FileID, gen.Secret, gen.Digests)
		if err != nil {
			t.Fatalf("fetch (legacy=%v) under chaos: %v", opts.LegacyWire, err)
		}
		return data
	}

	legacy := fetch(client.Options{LegacyWire: true})
	pooled := fetch(client.Options{})

	if !bytes.Equal(legacy, gen.Data) {
		t.Fatal("legacy path decoded bytes differ from original")
	}
	if !bytes.Equal(pooled, legacy) {
		t.Fatal("pooled path output diverges from legacy path")
	}
	checkDefaultPool(t, before)
}

// TestWireMuxDifferentialChaos runs the multiplexed session path under
// the same chaos: one PeerSession per peer feeds a shared pipeline,
// peer2's session is severed mid-stream, and the survivors complete
// the decode. The result must match a legacy-path fetch byte for byte,
// and the severed session must not leak pooled buffers.
func TestWireMuxDifferentialChaos(t *testing.T) {
	seed := Seed(t, 9911)
	ctx := testCtx(t)
	before := poolBaseline()
	c := Start(t, seed, 3)
	gen := c.SeedGeneration(ctx, 62, 8, 512, 4096, 4)

	c.Fabric.SetLink("peer0", HostUser, netsim.LinkPolicy{Latency: 2 * time.Millisecond})
	c.Fabric.SetLink("peer1", HostUser, netsim.LinkPolicy{BytesPerSec: 512 << 10})
	c.Fabric.SetLink("peer2", HostUser, netsim.LinkPolicy{CutAfterBytes: 1200})

	addrs := c.Lookup(ctx, HostUser, gen.FileID)

	// Reference result over the legacy wire path.
	legacyClient := c.UserClient(client.Options{LegacyWire: true, PeerRetries: -1})
	want, _, err := legacyClient.FetchGeneration(ctx, addrs, gen.Params, gen.FileID, gen.Secret, gen.Digests)
	if err != nil {
		t.Fatalf("legacy reference fetch: %v", err)
	}

	// Muxed fetch: every peer streams into one pipeline over its own
	// session; the first session to fill the rank cancels the rest.
	cl := c.UserClient(client.Options{})
	pipe, err := rlnc.NewPipeline(gen.Params, gen.FileID, gen.Secret, gen.Digests, rlnc.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	fetchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, addr := range addrs {
		s, err := cl.NewPeerSession(ctx, addr)
		if err != nil {
			t.Fatalf("session to %s: %v", addr, err)
		}
		defer s.Close()
		wg.Add(1)
		go func(s *client.PeerSession) {
			defer wg.Done()
			// The severed session errors; survivors finish. Either way
			// the pipeline arbitrates, so per-session errors are not
			// fatal here.
			_ = s.Fetch(fetchCtx, gen.FileID, pipe, nil)
			if pipe.Done() {
				cancel()
			}
		}(s)
	}
	wg.Wait()
	if !pipe.Done() {
		t.Fatalf("muxed fetch rank %d < k=%d after all sessions returned", pipe.Rank(), gen.Params.K)
	}
	got, err := pipe.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("muxed path output diverges from legacy path")
	}
	if !bytes.Equal(got, gen.Data) {
		t.Fatal("muxed path decoded bytes differ from original")
	}
	checkDefaultPool(t, before)
}

// TestWireDifferentialReplays pins determinism for the pooled path:
// the same fabric seed must reproduce the identical event log across
// two pooled-path runs, exactly as the legacy path always has.
func TestWireDifferentialReplays(t *testing.T) {
	seed := Seed(t, 7788)
	run := func() ([]byte, string) {
		ctx := testCtx(t)
		c := Start(t, seed, 3)
		gen := c.SeedGeneration(ctx, 63, 8, 512, 4096, 4)
		c.Fabric.SetLink("peer2", HostUser, netsim.LinkPolicy{CutAfterBytes: 1200})
		addrs := c.Lookup(ctx, HostUser, gen.FileID)
		cl := c.UserClient(client.Options{PeerRetries: -1})
		data, _, err := cl.FetchGeneration(ctx, addrs, gen.Params, gen.FileID, gen.Secret, gen.Digests)
		if err != nil {
			t.Fatalf("pooled fetch: %v", err)
		}
		return data, c.Fabric.Events().Dump()
	}
	d1, e1 := run()
	d2, e2 := run()
	if !bytes.Equal(d1, d2) {
		t.Fatal("same seed decoded different bytes")
	}
	if e1 != e2 {
		t.Fatalf("same seed %d diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", seed, e1, e2)
	}
}
