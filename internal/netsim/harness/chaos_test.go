package harness

// End-to-end chaos tests: the real protocol stack — wire framing,
// mutual handshakes, rlnc streams, audits, the fairness ledger —
// driven through deterministic fault injection on a netsim fabric.
// Every test logs its fabric seed; rerun any failure exactly with
// NETSIM_SEED=<seed> go test ./internal/netsim/harness/...

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"asymshare/internal/audit"
	"asymshare/internal/client"
	"asymshare/internal/fairshare"
	"asymshare/internal/netsim"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// runPartitionFetch is one full scenario: seed a generation across
// three peers (any two suffice to decode), sever the third peer's
// serving direction mid-stream — the deterministic equivalent of a
// partition landing while its DATA stream is in flight — and fetch.
// Returns the decoded bytes and the fabric's event-log dump.
func runPartitionFetch(t *testing.T, seed int64) ([]byte, string, *Generation) {
	t.Helper()
	ctx := testCtx(t)
	c := Start(t, seed, 3)
	// 3 peers x 4 messages, k=8: any two peers jointly decode.
	gen := c.SeedGeneration(ctx, 42, 8, 512, 4096, 4)

	// A scripted burst of lossy probe dials ties the event log to the
	// fabric seed: the drop pattern is drawn from the per-dial RNGs, so
	// different seeds produce different logs while the same seed
	// replays exactly. The loop is serial, so dial ordinals are fixed.
	c.Fabric.SetLink(HostUser, "peer0", netsim.LinkPolicy{DropProb: 0.4})
	user := c.Fabric.Host(HostUser)
	for i := 0; i < 8; i++ {
		if conn, err := user.DialContext(ctx, c.Peers[0].Addr); err == nil {
			conn.Close()
		}
	}
	c.Fabric.SetLink(HostUser, "peer0", netsim.LinkPolicy{})

	// Survivor streams take a few ms; the victim's link severs after
	// ~2 DATA frames, long before the decode can complete without it.
	c.Fabric.SetLink("peer0", HostUser, netsim.LinkPolicy{Latency: 2 * time.Millisecond})
	c.Fabric.SetLink("peer1", HostUser, netsim.LinkPolicy{Latency: 2 * time.Millisecond})
	c.Fabric.SetLink("peer2", HostUser, netsim.LinkPolicy{CutAfterBytes: 1200})

	addrs := c.Lookup(ctx, HostUser, gen.FileID)
	if len(addrs) != 3 {
		t.Fatalf("tracker returned %d peers, want 3", len(addrs))
	}
	// No redials: the dial sequence stays fixed, so the event log is
	// byte-identical across replays of the same seed.
	cl := c.UserClient(client.Options{PeerRetries: -1})
	data, stats, err := cl.FetchGeneration(ctx, addrs, gen.Params, gen.FileID, gen.Secret, gen.Digests)
	if err != nil {
		t.Fatalf("fetch with partitioned peer: %v", err)
	}
	if stats.Innovative < gen.Params.K {
		t.Fatalf("decode completed with rank %d < k=%d", stats.Innovative, gen.Params.K)
	}
	return data, c.Fabric.Events().Dump(), gen
}

func TestFetchSurvivesMidStreamPeerLoss(t *testing.T) {
	seed := Seed(t, 1234)
	data, events, gen := runPartitionFetch(t, seed)
	if !bytes.Equal(data, gen.Data) {
		t.Fatal("decoded bytes differ from original")
	}
	if !strings.Contains(events, "cut after") {
		t.Fatalf("victim link was never cut; events:\n%s", events)
	}
}

// TestPartitionedFetchReplaysFromSeed is the determinism acceptance
// test: the same seed reproduces the identical fault sequence and
// event log; a different seed produces a run that still decodes.
func TestPartitionedFetchReplaysFromSeed(t *testing.T) {
	seed := Seed(t, 1234)
	_, first, _ := runPartitionFetch(t, seed)
	_, second, _ := runPartitionFetch(t, seed)
	if first != second {
		t.Fatalf("same seed %d diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			seed, first, second)
	}
	_, other, _ := runPartitionFetch(t, seed+1)
	if other == first {
		t.Fatal("different seeds produced identical event logs")
	}
}

// TestFetchRetriesAfterMidStreamCut pins the failover fix. Both peers
// are required to decode (k=8, 4 messages each) and peer1's first
// serving connection is severed mid-stream; only a redial can finish.
//
// Before the fix, client.fetchFromPeer treated any EOF as an orderly
// end-of-stream: the severed connection returned nil, no retry
// happened, and FetchGeneration failed with ErrIncomplete at rank < k.
// With abrupt closes classified as retriable (errPeerAborted) and
// Options.PeerRetries redialing, the second connection survives
// (CutConns bounds the cut to the first fetch attempt) and the decode
// completes.
func TestFetchRetriesAfterMidStreamCut(t *testing.T) {
	seed := Seed(t, 99)
	ctx := testCtx(t)
	c := Start(t, seed, 2)
	gen := c.SeedGeneration(ctx, 43, 8, 512, 4096, 4)

	// Ordinal 1 on user->peer1 was the dissemination conn (closed);
	// ordinal 2 is the first fetch attempt — cut mid-stream; ordinal 3,
	// the retry, is allowed through.
	c.Fabric.SetLink("peer1", HostUser, netsim.LinkPolicy{CutAfterBytes: 1200, CutConns: 2})

	cl := c.UserClient(client.Options{RetryBackoff: 20 * time.Millisecond})
	addrs := c.Lookup(ctx, HostUser, gen.FileID)
	data, _, err := cl.FetchGeneration(ctx, addrs, gen.Params, gen.FileID, gen.Secret, gen.Digests)
	if err != nil {
		t.Fatalf("fetch did not fail over to a redial: %v", err)
	}
	if !bytes.Equal(data, gen.Data) {
		t.Fatal("decoded bytes differ from original")
	}
	if n := c.Fabric.Events().Count("cut after"); n != 1 {
		t.Fatalf("expected exactly one mid-stream cut, saw %d", n)
	}

	// The same scenario without retries reproduces the pre-fix
	// behaviour and must fail: rank stalls below k.
	c2 := Start(t, seed, 2)
	gen2 := c2.SeedGeneration(ctx, 43, 8, 512, 4096, 4)
	c2.Fabric.SetLink("peer1", HostUser, netsim.LinkPolicy{CutAfterBytes: 1200, CutConns: 2})
	noRetry := c2.UserClient(client.Options{PeerRetries: -1})
	_, _, err = noRetry.FetchGeneration(ctx, c2.Lookup(ctx, HostUser, gen2.FileID),
		gen2.Params, gen2.FileID, gen2.Secret, gen2.Digests)
	if !errors.Is(err, client.ErrIncomplete) {
		t.Fatalf("retry-less fetch after cut = %v, want ErrIncomplete", err)
	}
}

// TestAuditEscalatesAndDebitsBlackholedPeer: a peer that goes dark
// past the audit timeout accrues Timeout verdicts with escalating
// sample sizes, and the penalties land in the owner's fairness ledger
// while honest peers' standings are untouched. When the peer comes
// back, it passes again and the escalation resets.
func TestAuditEscalatesAndDebitsBlackholedPeer(t *testing.T) {
	const (
		startCredit = 1000.0
		perMessage  = 10.0
	)
	seed := Seed(t, 7)
	ctx := testCtx(t)
	c := Start(t, seed, 3)
	c.SeedGeneration(ctx, 44, 8, 256, 2048, 8)

	cl := c.UserClient(client.Options{DialTimeout: 2 * time.Second})
	credits := make(map[string]uint64, len(c.Peers))
	for _, p := range c.Peers {
		credits[p.ID.Fingerprint()] = uint64(startCredit)
	}
	if err := cl.SendFeedback(ctx, c.HomeAddr, credits); err != nil {
		t.Fatal(err)
	}

	a, err := audit.New(audit.Config{
		Prober:            cl,
		Secret:            Secret(),
		Ledger:            c.Home.Ledger(),
		PenaltyPerMessage: perMessage,
		SampleSize:        2,
		Timeout:           300 * time.Millisecond,
		MaxRetries:        -1,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Peers {
		if err := a.Add(audit.Target{Addr: p.Addr, FileID: 44, Digests: p.Digests}); err != nil {
			t.Fatal(err)
		}
	}

	// Round 0: everyone answers, fingerprints are learned.
	for i, v := range a.AuditOnce(ctx) {
		if v.Outcome != audit.Pass {
			t.Fatalf("pre-fault verdict %d = %+v", i, v)
		}
	}

	victim := c.Peers[2]
	c.Fabric.Blackhole(victim.Host)
	lastSampled, lastStanding := 0, startCredit
	for round := 1; round <= 3; round++ {
		verdicts := a.AuditOnce(ctx)
		v := verdicts[2]
		if v.Outcome != audit.Timeout {
			t.Fatalf("round %d: blackholed peer verdict = %+v", round, v)
		}
		if v.Tally.Sampled < lastSampled {
			t.Fatalf("round %d: sample shrank %d -> %d under escalation",
				round, lastSampled, v.Tally.Sampled)
		}
		if round > 1 && v.Tally.Sampled <= lastSampled {
			t.Fatalf("round %d: sample did not escalate past %d", round, lastSampled)
		}
		lastSampled = v.Tally.Sampled
		standing := c.Home.Ledger().Received(victim.ID.Fingerprint())
		if standing >= lastStanding {
			t.Fatalf("round %d: standing %v did not drop below %v", round, standing, lastStanding)
		}
		lastStanding = standing
		for i, hv := range verdicts[:2] {
			if hv.Outcome != audit.Pass {
				t.Fatalf("round %d: honest peer %d verdict = %+v", round, i, hv)
			}
		}
	}
	for _, h := range a.Health() {
		if h.Addr == victim.Addr && h.ConsecutiveFails != 3 {
			t.Fatalf("victim ConsecutiveFails = %d, want 3", h.ConsecutiveFails)
		}
	}
	for _, p := range c.Peers[:2] {
		if got := c.Home.Ledger().Received(p.ID.Fingerprint()); got != startCredit {
			t.Fatalf("honest peer %s standing = %v, want %v", p.Host, got, startCredit)
		}
	}

	// The peer comes back: it proves its holdings and escalation resets.
	c.Fabric.Restore(victim.Host)
	if v := a.AuditOnce(ctx)[2]; v.Outcome != audit.Pass {
		t.Fatalf("post-restore verdict = %+v", v)
	}
	for _, h := range a.Health() {
		if h.Addr == victim.Addr && h.ConsecutiveFails != 0 {
			t.Fatalf("post-restore ConsecutiveFails = %d, want 0", h.ConsecutiveFails)
		}
	}
}

// TestGrantsReconvergeAfterPartitionHeals follows Eq. (2) standings
// through a partition's life cycle. Receipts credit serving peers in
// the owner's ledger; while peer1 is partitioned only peer0 can serve
// (the fetch still completes — failover), so peer0's grant pulls
// ahead. After the heal, service from peer1 resumes, its receipts
// land, and the pairwise-proportional grants re-converge.
func TestGrantsReconvergeAfterPartitionHeals(t *testing.T) {
	const cap = 90.0
	seed := Seed(t, 5)
	ctx := testCtx(t)
	c := Start(t, seed, 2)
	// Each peer holds a full rank on its own: either can serve the
	// generation alone.
	gen := c.SeedGeneration(ctx, 45, 8, 256, 2048, 8)

	fp0 := c.Peers[0].ID.Fingerprint()
	fp1 := c.Peers[1].ID.Fingerprint()
	requesters := []fairshare.ID{fp0, fp1}
	ledger := c.Home.Ledger()
	shares := func() map[fairshare.ID]float64 {
		return fairshare.PairwiseProportional{}.Allocate(fairshare.NewRequest(cap, requesters, ledger)).Map()
	}
	cl := c.UserClient(client.Options{RetryBackoff: 20 * time.Millisecond})
	// fetchAndCredit fetches from the given peers and reports a fixed
	// receipt for every peer that actually served bytes.
	fetchAndCredit := func(addrs []string) {
		t.Helper()
		_, stats, err := cl.FetchGeneration(ctx, addrs, gen.Params, gen.FileID, gen.Secret, gen.Digests)
		if err != nil {
			t.Fatalf("fetch from %v: %v", addrs, err)
		}
		receipts := make(map[string]uint64)
		for fp := range stats.BytesFrom {
			receipts[fp] = 500
		}
		if err := cl.SendFeedback(ctx, c.HomeAddr, receipts); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: both peers serve; equal standings, equal grants.
	seedCredits := map[string]uint64{fp0: 1000, fp1: 1000}
	if err := cl.SendFeedback(ctx, c.HomeAddr, seedCredits); err != nil {
		t.Fatal(err)
	}
	before := shares()
	if before[fp0] != before[fp1] {
		t.Fatalf("pre-partition grants unequal: %v vs %v", before[fp0], before[fp1])
	}

	// Phase 2: peer1 partitioned. The fetch fails over to peer0 and
	// completes; only peer0 earns receipts, so its grant pulls ahead.
	c.Fabric.Partition("island", c.Peers[1].Host)
	fetchAndCredit(c.Lookup(ctx, HostUser, gen.FileID))
	if got := ledger.Received(fp1); got != 1000 {
		t.Fatalf("partitioned peer earned receipts: %v", got)
	}
	during := shares()
	if during[fp0] <= during[fp1] {
		t.Fatalf("grants did not skew to the serving peer: %v vs %v", during[fp0], during[fp1])
	}

	// Phase 3: heal. peer1 serves the next download alone; its
	// receipts land and the grants re-converge.
	c.Fabric.Heal()
	fetchAndCredit([]string{c.Peers[1].Addr})
	after := shares()
	if after[fp0] != after[fp1] {
		t.Fatalf("grants did not re-converge after heal: %v vs %v", after[fp0], after[fp1])
	}
	if ledger.Received(fp1) != ledger.Received(fp0) {
		t.Fatalf("standings diverged after heal: %v vs %v",
			ledger.Received(fp0), ledger.Received(fp1))
	}
}
