package harness

// Tracker resilience under chaos: heavy connection-drop rates on the
// client side, and a -race stress of announce/lookup/expiry with 32
// concurrent peers over the fabric.

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"asymshare/internal/netsim"
	"asymshare/internal/tracker"
)

func startTracker(t *testing.T, f *netsim.Fabric) (*tracker.Server, string) {
	t.Helper()
	srv := tracker.NewServer(0)
	srv.SetTransport(f.Host(HostTracker))
	if err := srv.Start(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

// TestTrackerSurvivesHeavyConnectionDrops drives announces and lookups
// through a link refusing half of all dials. Every operation succeeds
// within a bounded retry budget and the registry ends up complete.
func TestTrackerSurvivesHeavyConnectionDrops(t *testing.T) {
	seed := Seed(t, 11)
	f := netsim.NewFabric(seed)
	f.SetLink(HostUser, HostTracker, netsim.LinkPolicy{DropProb: 0.5})
	srv, addr := startTracker(t, f)
	user := f.Host(HostUser)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	retry := func(what string, op func() error) {
		t.Helper()
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			if err = op(); err == nil {
				return
			}
		}
		t.Fatalf("%s still failing after 20 attempts: %v", what, err)
	}

	const files, holders = 4, 10
	for fid := uint64(0); fid < files; fid++ {
		for h := 0; h < holders; h++ {
			peerAddr := "peer" + strconv.Itoa(h) + ":40001"
			retry("announce", func() error {
				return tracker.AnnounceVia(ctx, user, addr, fid, peerAddr, time.Minute)
			})
		}
	}
	for fid := uint64(0); fid < files; fid++ {
		var got []string
		retry("lookup", func() error {
			var err error
			got, err = tracker.LookupVia(ctx, user, addr, fid)
			return err
		})
		if len(got) != holders {
			t.Fatalf("file %d: lookup returned %d holders, want %d", fid, len(got), holders)
		}
	}
	if n := srv.FileCount(); n != files {
		t.Fatalf("tracker tracks %d files, want %d", n, files)
	}
	dropped := f.Events().Count("dropped")
	if dropped == 0 {
		t.Fatal("drop policy never fired; the test exercised nothing")
	}
	t.Logf("survived %d dropped dials", dropped)
}

// TestTrackerStressAnnounceLookupExpiry hammers one tracker with 32
// peers announcing and looking up concurrently over the fabric (run
// under -race via `make chaos`), then verifies soft-state expiry
// empties the registry.
func TestTrackerStressAnnounceLookupExpiry(t *testing.T) {
	seed := Seed(t, 13)
	f := netsim.NewFabric(seed)
	srv, addr := startTracker(t, f)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const peers, rounds, files = 32, 8, 4
	var wg sync.WaitGroup
	errc := make(chan error, peers)
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			host := f.Host("peer" + strconv.Itoa(i))
			peerAddr := host.Name() + ":40001"
			fid := uint64(i % files)
			for r := 0; r < rounds; r++ {
				if err := tracker.AnnounceVia(ctx, host, addr, fid, peerAddr, time.Second); err != nil {
					errc <- err
					return
				}
				if _, err := tracker.LookupVia(ctx, host, addr, fid); err != nil {
					errc <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for fid := uint64(0); fid < files; fid++ {
		got, err := tracker.LookupVia(ctx, f.Host(HostUser), addr, fid)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != peers/files {
			t.Fatalf("file %d: %d holders, want %d", fid, len(got), peers/files)
		}
	}

	// Announcements carried a 1s TTL; past it the soft state ages out.
	time.Sleep(1100 * time.Millisecond)
	for fid := uint64(0); fid < files; fid++ {
		got, err := tracker.LookupVia(ctx, f.Host(HostUser), addr, fid)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("file %d: %d holders survived expiry", fid, len(got))
		}
	}
	if n := srv.FileCount(); n != 0 {
		t.Fatalf("registry still tracks %d files after expiry", n)
	}
}
