package harness

// Swarm extends the harness to trackerless scale: every storage peer
// carries a DHT node and a gossip engine besides its serving node, the
// home seeds generations into its own engine instead of pushing batches
// peer-by-peer, and rumor rounds spread them across hundreds or
// thousands of peers. The tracker still boots — as the optional
// bootstrap seed a Failover chain demotes it to — and tests kill it
// mid-run to prove fetches and audits survive on DHT discovery alone.

import (
	"context"
	"encoding/binary"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/client"
	"asymshare/internal/dht"
	"asymshare/internal/discovery"
	"asymshare/internal/fairshare"
	"asymshare/internal/gossip"
	"asymshare/internal/metrics"
	"asymshare/internal/netsim"
	"asymshare/internal/peer"
	"asymshare/internal/store"
	"asymshare/internal/tracker"
)

// SwarmConfig sizes and tunes a swarm.
type SwarmConfig struct {
	// N is the number of storage peers (hosts "s0".."sN-1").
	N int

	// Fanout/Budget/MaxIdle tune every gossip engine (zero = package
	// defaults).
	Fanout, Budget, MaxIdle int

	// TableCap bounds every DHT routing table (zero = package default).
	TableCap int

	// RPCTimeout caps one DHT RPC; zero means 2s (tight for netsim).
	RPCTimeout time.Duration

	// JoinWorkers bounds concurrent DHT joins at boot; zero means 64.
	JoinWorkers int

	// Policy, when set, becomes the fabric's default link policy —
	// scaled-down links for large swarms.
	Policy *netsim.LinkPolicy

	// Metrics, when set, instruments the home's DHT node and gossip
	// engine.
	Metrics *metrics.Registry
}

// SwarmPeer is one swarm member: serving node, DHT node, gossip engine
// over one shared store.
type SwarmPeer struct {
	Host   string
	ID     *auth.Identity
	Node   *peer.Node
	Store  *store.Memory
	DHT    *dht.Node
	Gossip *gossip.Engine
	Addr   string // peer-protocol (serving) address
}

// Swarm is a booted trackerless-scale deployment.
type Swarm struct {
	Fabric      *netsim.Fabric
	Tracker     *tracker.Server
	TrackerAddr string

	Owner      *auth.Identity
	Home       *peer.Node
	HomeStore  *store.Memory
	HomeDHT    *dht.Node
	HomeGossip *gossip.Engine
	HomeAddr   string

	Peers []*SwarmPeer

	cfg        SwarmConfig
	announceWG sync.WaitGroup
	t          *testing.T
}

// indexIdentity derives a deterministic identity from a peer index —
// testIdentity's single byte only reaches 255 peers.
func indexIdentity(t *testing.T, i int) *auth.Identity {
	t.Helper()
	seed := make([]byte, 32)
	binary.BigEndian.PutUint32(seed, uint32(i)+1)
	seed[31] = 0x5a
	id, err := auth.IdentityFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// startSwarmDHT boots one DHT node on host serving RPCs, carrying the
// co-located serve/gossip addresses in its contact records.
func startSwarmDHT(t *testing.T, f *netsim.Fabric, host string, cfg SwarmConfig,
	serveAddr, gossipAddr string, reg *metrics.Registry) *dht.Node {
	t.Helper()
	tr := f.Host(host)
	ln, err := tr.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	rpcTimeout := cfg.RPCTimeout
	if rpcTimeout <= 0 {
		rpcTimeout = 2 * time.Second
	}
	n, err := dht.New(dht.Config{
		Advertise:  ln.Addr().String(),
		Transport:  tr,
		ServeAddr:  serveAddr,
		GossipAddr: gossipAddr,
		TableCap:   cfg.TableCap,
		RPCTimeout: rpcTimeout,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// startSwarmGossip boots one gossip engine on host over st, picking
// partners from the DHT node's routing table and announcing freshly
// received generations under the co-located serve address (off the
// exchange's critical path; WaitAnnounces drains the registrations).
func (s *Swarm) startSwarmGossip(t *testing.T, host string, ln net.Listener, st *store.Memory,
	node *dht.Node, serveAddr string, seed int64, reg *metrics.Registry) *gossip.Engine {
	t.Helper()
	eng, err := gossip.New(gossip.Config{
		Advertise: ln.Addr().String(),
		Transport: s.Fabric.Host(host),
		Store:     st,
		Fanout:    s.cfg.Fanout,
		Budget:    s.cfg.Budget,
		MaxIdle:   s.cfg.MaxIdle,
		Seed:      seed,
		Metrics:   reg,
		Contacts:  contactsFromDHT(node),
		Announce:  s.announceHook(node, serveAddr),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// StartSwarm boots a tracker, the home (peer + DHT bootstrap + gossip
// engine) and cfg.N storage peers, then joins every DHT node through
// the home. All nodes are cleaned up with the test.
func StartSwarm(t *testing.T, seed int64, cfg SwarmConfig) *Swarm {
	t.Helper()
	f := netsim.NewFabric(seed)
	if cfg.Policy != nil {
		f.SetDefaultPolicy(*cfg.Policy)
	}
	s := &Swarm{Fabric: f, Owner: testIdentity(t, 199), cfg: cfg, t: t}

	s.Tracker = tracker.NewServer(0)
	s.Tracker.SetTransport(f.Host(HostTracker))
	if err := s.Tracker.Start(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Tracker.Close() })
	s.TrackerAddr = s.Tracker.Addr().String()

	s.HomeStore = store.NewMemory()
	home, err := peer.New(peer.Config{
		Identity:  testIdentity(t, 200),
		Store:     s.HomeStore,
		Owner:     s.Owner.Public(),
		Ledger:    fairshare.NewLedger(0),
		Transport: f.Host(HostHome),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Start(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { home.Close() })
	s.Home = home
	s.HomeAddr = home.Addr().String()

	// Gossip listeners bind before DHT nodes so the engine's address can
	// ride in the node's contact records from the start.
	homeGossipLn, err := f.Host(HostHome).Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	s.HomeDHT = startSwarmDHT(t, f, HostHome, cfg, s.HomeAddr, homeGossipLn.Addr().String(), cfg.Metrics)
	s.HomeGossip = s.startSwarmGossip(t, HostHome, homeGossipLn, s.HomeStore, s.HomeDHT, s.HomeAddr, seed+1, cfg.Metrics)

	s.Peers = make([]*SwarmPeer, cfg.N)
	for i := 0; i < cfg.N; i++ {
		host := "s" + strconv.Itoa(i)
		st := store.NewMemory()
		id := indexIdentity(t, i)
		node, err := peer.New(peer.Config{Identity: id, Store: st, Transport: f.Host(host)})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		p := &SwarmPeer{Host: host, ID: id, Node: node, Store: st, Addr: node.Addr().String()}
		s.Peers[i] = p
	}
	for i, p := range s.Peers {
		gossipLn, err := f.Host(p.Host).Listen(":0")
		if err != nil {
			t.Fatal(err)
		}
		p.DHT = startSwarmDHT(t, f, p.Host, cfg, p.Addr, gossipLn.Addr().String(), nil)
		p.Gossip = s.startSwarmGossip(t, p.Host, gossipLn, p.Store, p.DHT, p.Addr, seed+100+int64(i), nil)
	}

	s.joinAll()
	return s
}

func contactsFromDHT(node *dht.Node) func(int) []string {
	return func(n int) []string {
		cs := node.RandomContacts(n)
		out := make([]string, 0, len(cs))
		for _, c := range cs {
			if c.Gossip != "" {
				out = append(out, c.Gossip)
			}
		}
		return out
	}
}

func (s *Swarm) announceHook(node *dht.Node, serveAddr string) func(uint64) {
	return func(fileID uint64) {
		s.announceWG.Add(1)
		go func() {
			defer s.announceWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			_ = node.Announce(ctx, dht.KeyFromFileID(fileID), serveAddr, 10*time.Minute)
		}()
	}
}

// joinAll joins every peer's DHT node through the home bootstrap with a
// bounded worker pool.
func (s *Swarm) joinAll() {
	s.t.Helper()
	workers := s.cfg.JoinWorkers
	if workers <= 0 {
		workers = 64
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errs := make(chan error, len(s.Peers))
	for _, p := range s.Peers {
		wg.Add(1)
		sem <- struct{}{}
		go func(p *SwarmPeer) {
			defer wg.Done()
			defer func() { <-sem }()
			// The bootstrap absorbs N concurrent joins at boot; a few
			// retries ride out the initial stampede on slow machines.
			var lastErr error
			for attempt := 0; attempt < 4; attempt++ {
				if lastErr = p.DHT.Join(ctx, s.HomeDHT.Addr()); lastErr == nil {
					return
				}
				select {
				case <-ctx.Done():
					errs <- lastErr
					return
				case <-time.After(time.Duration(100<<attempt) * time.Millisecond):
				}
			}
			errs <- lastErr
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		s.t.Fatalf("dht join: %v", err)
	}

	// A bucket-refresh wave after the join storm: join-time tables only
	// hold whatever each node happened to observe on its own way in, so
	// late joiners are known by few others and gossip can strand them
	// (rumors go cold before a low-in-degree peer is ever contacted).
	// Refresh lookups spread every node through the swarm's tables —
	// the lockstep stand-in for the production RefreshInterval loop.
	for _, p := range s.Peers {
		wg.Add(1)
		sem <- struct{}{}
		go func(p *SwarmPeer) {
			defer wg.Done()
			defer func() { <-sem }()
			p.DHT.Refresh(ctx)
		}(p)
	}
	wg.Wait()
}

// WaitAnnounces blocks until every in-flight DHT self-registration
// triggered by gossip deliveries has landed.
func (s *Swarm) WaitAnnounces() { s.announceWG.Wait() }

// GossipRound drives one lockstep round on the home engine and every
// peer engine (bounded pool) and reports how many messages moved.
func (s *Swarm) GossipRound(ctx context.Context) int {
	s.t.Helper()
	engines := make([]*gossip.Engine, 0, len(s.Peers)+1)
	engines = append(engines, s.HomeGossip)
	for _, p := range s.Peers {
		engines = append(engines, p.Gossip)
	}
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	var mu sync.Mutex
	moved := 0
	for _, e := range engines {
		wg.Add(1)
		sem <- struct{}{}
		go func(e *gossip.Engine) {
			defer wg.Done()
			defer func() { <-sem }()
			n, _ := e.Round(ctx)
			mu.Lock()
			moved += n
			mu.Unlock()
		}(e)
	}
	wg.Wait()
	return moved
}

// Coverage counts the peers whose stores hold at least k messages of
// every listed generation.
func (s *Swarm) Coverage(fileIDs []uint64, k int) int {
	full := 0
	for _, p := range s.Peers {
		ok := true
		for _, id := range fileIDs {
			if p.Store.Count(id) < k {
				ok = false
				break
			}
		}
		if ok {
			full++
		}
	}
	return full
}

// UserDHT boots a client-only DHT node dialing from HostUser, joined
// through the given bootstrap address.
func (s *Swarm) UserDHT(ctx context.Context, bootstrap string) *dht.Node {
	s.t.Helper()
	rpcTimeout := s.cfg.RPCTimeout
	if rpcTimeout <= 0 {
		rpcTimeout = 2 * time.Second
	}
	n, err := dht.New(dht.Config{
		Advertise:  "user:dht-client",
		Transport:  s.Fabric.Host(HostUser),
		TableCap:   s.cfg.TableCap,
		RPCTimeout: rpcTimeout,
	})
	if err != nil {
		s.t.Fatal(err)
	}
	s.t.Cleanup(func() { n.Close() })
	if err := n.Join(ctx, bootstrap); err != nil {
		s.t.Fatalf("user dht join: %v", err)
	}
	return n
}

// UserFailover builds the user's discovery chain: DHT primary, tracker
// bootstrap seed as fallback, both dialing from HostUser.
func (s *Swarm) UserFailover(node *dht.Node) *discovery.Failover {
	s.t.Helper()
	d, err := discovery.NewDHT(node, discovery.DHTOptions{ReannounceInterval: -1})
	if err != nil {
		s.t.Fatal(err)
	}
	trk, err := discovery.NewTracker(s.TrackerAddr, s.Fabric.Host(HostUser))
	if err != nil {
		s.t.Fatal(err)
	}
	f, err := discovery.NewFailover(d, trk)
	if err != nil {
		s.t.Fatal(err)
	}
	s.t.Cleanup(func() { f.Close() })
	return f
}

// Client returns a client dialing from the given fabric host.
// opts.Transport is overwritten with that host.
func (s *Swarm) Client(host string, id *auth.Identity, opts client.Options) *client.Client {
	s.t.Helper()
	opts.Transport = s.Fabric.Host(host)
	cl, err := client.NewWith(id, nil, opts)
	if err != nil {
		s.t.Fatal(err)
	}
	return cl
}

// KillTracker shuts the tracker down and blackholes its host — the
// trackerless-mode fault every swarm scenario injects.
func (s *Swarm) KillTracker() {
	s.Tracker.Close()
	s.Fabric.Blackhole(HostTracker)
}
