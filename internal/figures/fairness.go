package figures

// Generators for the fairness/incentive experiments of Sec. V-A
// (Figs. 5-8). Each builds the exact simulator configuration the paper
// describes, runs it, and returns smoothed download-rate series ("our
// graphs were smoothed with a running average of 10 seconds").

import (
	"fmt"

	"asymshare/internal/sim"
	"asymshare/internal/trace"
)

// SmoothWindow is the paper's 10-second running-average window.
const SmoothWindow = 10

// fromResult converts selected peers' download series into a Figure.
func fromResult(res *sim.Result, id, title string, step int) *Figure {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "time (s)",
		YLabel: "download rate (kbps)",
	}
	for i, name := range res.Names {
		smooth := sim.RunningAverage(res.Download[i], SmoothWindow)
		fig.Series = append(fig.Series, Series{Label: name, Points: downsample(smooth, step)})
	}
	return fig
}

// Fig5a reproduces Figure 5(a): ten saturated users whose peers upload
// at 100..1000 kbps; every download rate converges to its own peer's
// upload capacity. slots <= 0 means the paper's 3600 s.
func Fig5a(slots int) (*Figure, *sim.Result, error) {
	if slots <= 0 {
		slots = 3600
	}
	cfg := sim.Config{Slots: slots}
	for i := 0; i < 10; i++ {
		cfg.Peers = append(cfg.Peers, sim.PeerConfig{
			Name:   fmt.Sprintf("UL=%dkbps", 100*(i+1)),
			Upload: trace.Const(float64(100 * (i + 1))),
			Demand: trace.Always{},
		})
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return fromResult(res, "fig5a", "10 saturated users converge to own upload rate", slots/360+1), res, nil
}

// Fig5b reproduces Figure 5(b): three peers at 128/256/1024 kbps — the
// dominant peer violates the non-dominant condition of [16], yet
// fairness holds because self-allocation is permitted.
func Fig5b(slots int) (*Figure, *sim.Result, error) {
	if slots <= 0 {
		slots = 3600
	}
	cfg := sim.Config{Slots: slots}
	for _, u := range []float64{128, 256, 1024} {
		cfg.Peers = append(cfg.Peers, sim.PeerConfig{
			Name:   fmt.Sprintf("UL=%.0fkbps", u),
			Upload: trace.Const(u),
			Demand: trace.Always{},
		})
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return fromResult(res, "fig5b", "fairness with a dominating peer (128/256/1024)", slots/360+1), res, nil
}

// HomeVideoOptions scales the 24-hour experiments of Figs. 6 and 7.
type HomeVideoOptions struct {
	// SlotsPerHour sets the time resolution; zero means 3600 (real
	// seconds). Use a smaller value for quick runs.
	SlotsPerHour int

	// Seed drives the random choice of 12 active hours per user.
	Seed int64

	// Peer1StartHour delays peer 1's *contribution* until this hour
	// (Fig. 7 uses 3); zero reproduces Fig. 6.
	Peer1StartHour int
}

// HomeVideo reproduces Figures 6 and 7: three peers with uploads
// 256/512/1024 kbps whose users stream home videos during 12 randomly
// chosen one-hour blocks of a 24-hour day. The returned gains hold the
// average extra download each user enjoyed over its single-user
// (isolated) rate while requesting.
func HomeVideo(opts HomeVideoOptions) (*Figure, *sim.Result, []float64, error) {
	sph := opts.SlotsPerHour
	if sph <= 0 {
		sph = 3600
	}
	uploads := []float64{256, 512, 1024}
	cfg := sim.Config{Slots: 24 * sph}
	for i, u := range uploads {
		duty, err := trace.NewRandomDutyCycle(12, sph, 24, opts.Seed+int64(i)*101)
		if err != nil {
			return nil, nil, nil, err
		}
		var upload trace.Schedule = trace.Const(u)
		if i == 1 && opts.Peer1StartHour > 0 {
			upload = trace.StartingAt{Start: opts.Peer1StartHour * sph, Inner: trace.Const(u)}
		}
		cfg.Peers = append(cfg.Peers, sim.PeerConfig{
			Name:   fmt.Sprintf("peer%d-%.0fkbps", i, u),
			Upload: upload,
			Demand: duty,
		})
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	id, title := "fig6", "3-peer home-video day, 12h random duty cycles"
	if opts.Peer1StartHour > 0 {
		id, title = "fig7", fmt.Sprintf("home-video day, peer 1 contributes after hour %d", opts.Peer1StartHour)
	}
	gains := make([]float64, len(uploads))
	for i, u := range uploads {
		rate := res.MeanDownloadWhileRequesting(i, 0, cfg.Slots)
		gains[i] = rate - u
	}
	return fromResult(res, id, title, sph/12+1), res, gains, nil
}

// Fig8a reproduces Figure 8(a): peers 0 and 1 request nothing until
// t = 1000 s. Peer 0 contributes its 1024 kbps from t = 0, peer 1 only
// from t = 1000; the other eight peers contribute and request
// throughout. Peer 0's banked credit buys it a visibly better rate than
// peer 1 once both start downloading.
func Fig8a(slots int) (*Figure, *sim.Result, error) {
	if slots <= 0 {
		slots = 3500
	}
	const joinAt = 1000
	cfg := sim.Config{
		Slots: slots,
		Peers: []sim.PeerConfig{
			{
				Name:   "peer0-contributes-from-0",
				Upload: trace.Const(1024),
				Demand: trace.After{Start: joinAt, Inner: trace.Always{}},
			},
			{
				Name:   "peer1-contributes-from-1000",
				Upload: trace.StartingAt{Start: joinAt, Inner: trace.Const(1024)},
				Demand: trace.After{Start: joinAt, Inner: trace.Always{}},
			},
		},
	}
	for i := 0; i < 8; i++ {
		cfg.Peers = append(cfg.Peers, sim.PeerConfig{
			Name:   fmt.Sprintf("other%d", i),
			Upload: trace.Const(1024),
			Demand: trace.Always{},
		})
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return fromResult(res, "fig8a", "incentive for contributing while idle", slots/350+1), res, nil
}

// Fig8bOptions configures the capacity-drop experiment.
type Fig8bOptions struct {
	// Slots defaults to the paper's 10000 s.
	Slots int

	// LedgerDecay, if in (0,1), enables the decaying-ledger variant —
	// the ablation for the paper's "slow dynamics" remark.
	LedgerDecay float64
}

// Fig8b reproduces Figure 8(b): ten peers at 1024 kbps, all saturated;
// peer 0's upload drops to 512 kbps at t = 1000 and recovers at
// t = 3000. Its download follows, while the others redistribute the
// lost service among themselves.
func Fig8b(opts Fig8bOptions) (*Figure, *sim.Result, error) {
	slots := opts.Slots
	if slots <= 0 {
		slots = 10000
	}
	cfg := sim.Config{Slots: slots, LedgerDecay: opts.LedgerDecay}
	for i := 0; i < 10; i++ {
		var upload trace.Schedule = trace.Const(1024)
		name := fmt.Sprintf("peer%d", i)
		if i == 0 {
			upload = trace.Steps{
				{From: 0, Rate: 1024},
				{From: 1000, Rate: 512},
				{From: 3000, Rate: 1024},
			}
			name = "peer0-drops"
		}
		cfg.Peers = append(cfg.Peers, sim.PeerConfig{
			Name:   name,
			Upload: upload,
			Demand: trace.Always{},
		})
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return fromResult(res, "fig8b", "one peer's upload drops 1024->512->1024", slots/500+1), res, nil
}
