package figures

import "testing"

func TestLiarAblation(t *testing.T) {
	res, err := LiarAblation(1200)
	if err != nil {
		t.Fatal(err)
	}
	// Under Eq. (3) the liar's inflated declaration captures nearly all
	// of the honest peers' bandwidth; under Eq. (2) it gets ~nothing.
	if res.LiarRateEq3 < 500 {
		t.Errorf("liar under Eq.3 = %v, expected to capture most of 1024", res.LiarRateEq3)
	}
	if res.LiarRateEq2 > 0.05*res.HonestRateEq2 {
		t.Errorf("liar under Eq.2 = %v vs honest %v, expected starvation",
			res.LiarRateEq2, res.HonestRateEq2)
	}
	if res.HonestRateEq2 < 480 {
		t.Errorf("honest under Eq.2 = %v, want ~512", res.HonestRateEq2)
	}
}

func TestTitForTatAblation(t *testing.T) {
	res, err := TitForTatAblation(3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.JainEq2 < 0.99 {
		t.Errorf("Eq.2 Jain = %v, want ~1", res.JainEq2)
	}
	if res.JainTFT > 0.8 {
		t.Errorf("TFT Jain = %v, expected clearly unfair", res.JainTFT)
	}
	if len(res.DownloadsTFT) != len(res.Uploads) {
		t.Fatalf("result shape: %v vs %v", res.DownloadsTFT, res.Uploads)
	}
}

func TestDecayAblation(t *testing.T) {
	res, err := DecayAblation(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decay != 0.995 {
		t.Errorf("default decay = %v", res.Decay)
	}
	if res.RateDecayed >= res.RateCumulative {
		t.Errorf("decayed %v not adapting faster than cumulative %v",
			res.RateDecayed, res.RateCumulative)
	}
}

func TestRobustness(t *testing.T) {
	tbl, err := Robustness(RobustnessOptions{K: 8, KPrimes: []int{2, 4, 8}, MaxPeers: 5, Trials: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With full batches (k'=k) a single peer always suffices (batch
	// invertibility guarantee).
	if got := tbl.Cells[2][0]; got != 1 {
		t.Errorf("k'=k single peer success = %v, want 1", got)
	}
	// With k'=2 of k=8, fewer than 4 peers can never decode.
	for a := 1; a <= 3; a++ {
		if got := tbl.Cells[0][a-1]; got != 0 {
			t.Errorf("k'=2, %d peers success = %v, want 0", a, got)
		}
	}
	// With enough peers, success probability is high (w.h.p. over GF(2^8)).
	if got := tbl.Cells[0][4]; got < 0.9 {
		t.Errorf("k'=2, 5 peers success = %v, want ~1", got)
	}
	if got := tbl.Cells[1][2]; got < 0.9 {
		t.Errorf("k'=4, 3 peers success = %v, want ~1", got)
	}
	// Success is monotone in reachable peers for each row.
	for i := range tbl.Cells {
		for a := 1; a < len(tbl.Cells[i]); a++ {
			if tbl.Cells[i][a] < tbl.Cells[i][a-1] {
				t.Errorf("row %d not monotone: %v", i, tbl.Cells[i])
			}
		}
	}
}

func TestRobustnessValidation(t *testing.T) {
	if _, err := Robustness(RobustnessOptions{K: 4, KPrimes: []int{5}}); err == nil {
		t.Error("k' > k accepted")
	}
	if _, err := Robustness(RobustnessOptions{K: 4, KPrimes: []int{0}}); err == nil {
		t.Error("k' = 0 accepted")
	}
}

func TestChurnFairnessHolds(t *testing.T) {
	// Even with short exponential sessions the pairwise rule returns
	// each peer roughly what it contributed while online.
	tbl, err := ChurnSweep(12000, 6, []float64{200, 1600}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tbl.Rows {
		jain, minRatio := tbl.Cells[i][0], tbl.Cells[i][1]
		if jain < 0.98 {
			t.Errorf("session %s: Jain = %v", r, jain)
		}
		if minRatio < 0.9 {
			t.Errorf("session %s: min download/upload ratio = %v", r, minRatio)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	res, err := Churn(0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanSessionSlots != 1000 {
		t.Errorf("defaults: %+v", res)
	}
}

func TestQuantizationFairnessDegradesWithMessageSize(t *testing.T) {
	tbl, err := Quantization(3000, []float64{64, 16384}, 9)
	if err != nil {
		t.Fatal(err)
	}
	small, large := tbl.Cells[0][0], tbl.Cells[1][0]
	if small > 0.1 {
		t.Errorf("small-message fairness error = %v, want < 0.1", small)
	}
	if large <= small {
		t.Errorf("large messages error %v not worse than small %v (Sec. III-D claim)", large, small)
	}
}
