package figures

// Tables I and II of the paper: the number of messages k needed to
// encode 1 MB of data as a function of field size q and message length
// m, and the measured time to decode (== encode) that megabyte.

import (
	"fmt"
	"math/rand"
	"time"

	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

// TableFieldBits are the field widths of the tables' rows.
var TableFieldBits = []uint{gf.Bits4, gf.Bits8, gf.Bits16, gf.Bits32}

// TableMessageLens are the message lengths (symbols) of the columns.
var TableMessageLens = []int{1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18}

// TableDataBytes is the payload the tables encode: 1 MB.
const TableDataBytes = 1 << 20

// Table1 computes the k grid analytically: k = b / (m * p) for b bits
// of data.
func Table1() *Table {
	t := &Table{
		ID:       "table1",
		Title:    "messages k required to encode 1MB",
		RowLabel: "q",
		ColLabel: "m",
		Format:   "%.0f",
	}
	for _, bits := range TableFieldBits {
		t.Rows = append(t.Rows, fmt.Sprintf("GF(2^%d)", bits))
	}
	for _, m := range TableMessageLens {
		t.Cols = append(t.Cols, fmt.Sprintf("2^%d", log2(m)))
	}
	t.Cells = make([][]float64, len(t.Rows))
	for i, bits := range TableFieldBits {
		t.Cells[i] = make([]float64, len(TableMessageLens))
		for j, m := range TableMessageLens {
			params, err := rlnc.ParamsForSize(gf.MustNew(bits), TableDataBytes, m)
			if err != nil {
				panic(err) // static grid, cannot fail
			}
			t.Cells[i][j] = float64(params.K)
		}
	}
	return t
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Table2Options scales the measurement.
type Table2Options struct {
	// DataBytes is the generation size; zero means the paper's 1 MB.
	DataBytes int

	// Seed drives the random payload and message-ids.
	Seed int64
}

// Table2 measures decode time across the (q, m) grid: for each cell it
// encodes DataBytes of random data into k messages and times the
// incremental Gaussian decode, exactly the computation a user performs
// at download time. Encoding and decoding are the same computation up
// to the matrix inverse (Sec. V-B), so one number characterizes both.
func Table2(opts Table2Options) (*Table, error) {
	dataBytes := opts.DataBytes
	if dataBytes <= 0 {
		dataBytes = TableDataBytes
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	data := make([]byte, dataBytes)
	rng.Read(data)
	secret := make([]byte, rlnc.SecretLen)
	rng.Read(secret)

	t := &Table{
		ID:       "table2",
		Title:    fmt.Sprintf("decode time (s) for %d bytes", dataBytes),
		RowLabel: "q",
		ColLabel: "m",
		Format:   "%.4f",
	}
	for _, bits := range TableFieldBits {
		t.Rows = append(t.Rows, fmt.Sprintf("GF(2^%d)", bits))
	}
	for _, m := range TableMessageLens {
		t.Cols = append(t.Cols, fmt.Sprintf("2^%d", log2(m)))
	}
	t.Cells = make([][]float64, len(t.Rows))
	for i, bits := range TableFieldBits {
		t.Cells[i] = make([]float64, len(TableMessageLens))
		for j, m := range TableMessageLens {
			secs, err := MeasureDecode(gf.MustNew(bits), m, data, secret)
			if err != nil {
				return nil, fmt.Errorf("cell GF(2^%d) m=%d: %w", bits, m, err)
			}
			t.Cells[i][j] = secs
		}
	}
	return t, nil
}

// MeasureDecode encodes data into one generation with the given field
// and message length, then times a full decode from k fresh messages.
// It returns the decode wall time in seconds.
func MeasureDecode(field gf.Field, m int, data, secret []byte) (float64, error) {
	params, err := rlnc.ParamsForSize(field, len(data), m)
	if err != nil {
		return 0, err
	}
	enc, err := rlnc.NewEncoder(params, 1, secret, data)
	if err != nil {
		return 0, err
	}
	msgs := make([]*rlnc.Message, 0, 2*params.K)
	for id := uint64(0); id < uint64(2*params.K); id++ {
		msgs = append(msgs, enc.Message(id))
	}
	dec, err := rlnc.NewDecoder(params, 1, secret, nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for _, msg := range msgs {
		if dec.Done() {
			break
		}
		if _, err := dec.Add(msg); err != nil {
			return 0, err
		}
	}
	if _, err := dec.Decode(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}
