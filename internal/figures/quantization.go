package figures

// Quantization: Sec. III-D argues against very large message sizes m
// because they "dilute our notion of fairness ... by introducing
// quantization errors when nodes divide up their upload bandwidth
// amongst requesting users". The message-granular simulator makes this
// measurable: fairness error versus message size.

import (
	"fmt"
	"math"

	"asymshare/internal/eventsim"
	"asymshare/internal/trace"
)

// Quantization runs the saturated heterogeneous scenario in the
// event-driven simulator across message sizes and reports, for each,
// the worst relative deviation of a user's steady-state rate from its
// upload capacity (the Eq. 2 fixed point). duration <= 0 means 4000 s.
func Quantization(duration float64, messageKbits []float64, seed int64) (*Table, error) {
	if duration <= 0 {
		duration = 4000
	}
	if len(messageKbits) == 0 {
		messageKbits = []float64{64, 256, 1024, 4096, 16384}
	}
	uploads := []float64{128, 256, 512, 1024}

	t := &Table{
		ID:       "quantization",
		Title:    "fairness error vs message size (event-driven, saturated 128/256/512/1024)",
		RowLabel: "message (kbit)",
		ColLabel: "metric",
		Cols:     []string{"worst_dev_frac"},
		Format:   "%.4f",
	}
	for _, mk := range messageKbits {
		cfg := eventsim.Config{Duration: duration, MessageKbits: mk, Seed: seed}
		for i, u := range uploads {
			cfg.Peers = append(cfg.Peers, eventsim.PeerConfig{
				Name:       fmt.Sprintf("p%d", i),
				UploadKbps: u,
				Demand:     trace.Always{},
			})
		}
		res, err := eventsim.Run(cfg)
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for i, u := range uploads {
			dev := math.Abs(res.MeanRateKbps(i)-u) / u
			if dev > worst {
				worst = dev
			}
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%.0f", mk))
		t.Cells = append(t.Cells, []float64{worst})
	}
	return t, nil
}
