// Package figures defines one generator per table and figure of the
// paper's evaluation (Sec. V plus the motivating Fig. 1), so that the
// cmd/paperfig CLI and the benchmark harness reproduce exactly the same
// series. Each generator returns plain data (Figure or Table) that can
// be printed as TSV and compared against the published plots.
package figures

import (
	"fmt"
	"io"
	"strconv"
)

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproducible plot: several series over a shared axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteTSV emits the figure as tab-separated columns: x followed by
// one column per series (rows are aligned by sample index; series of
// different lengths are padded with blanks).
func (f *Figure) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n# x=%s y=%s\n", f.ID, f.Title, f.XLabel, f.YLabel); err != nil {
		return err
	}
	header := "x"
	for _, s := range f.Series {
		header += "\t" + s.Label
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	rows := 0
	for _, s := range f.Series {
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	for i := 0; i < rows; i++ {
		line := ""
		for si, s := range f.Series {
			if i < len(s.Points) {
				if si == 0 {
					line += formatFloat(s.Points[i].X)
				}
				line += "\t" + formatFloat(s.Points[i].Y)
			} else {
				line += "\t"
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Table is a reproducible 2-D grid keyed by row and column headers.
type Table struct {
	ID       string
	Title    string
	RowLabel string
	ColLabel string
	Rows     []string
	Cols     []string
	Cells    [][]float64
	// Format is the printf verb for cells, e.g. "%.0f" or "%.3f".
	Format string
}

// Write emits the table as aligned TSV.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s (rows: %s, cols: %s)\n", t.ID, t.Title, t.RowLabel, t.ColLabel); err != nil {
		return err
	}
	header := t.RowLabel
	for _, c := range t.Cols {
		header += "\t" + c
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	format := t.Format
	if format == "" {
		format = "%g"
	}
	for i, r := range t.Rows {
		line := r
		for j := range t.Cols {
			line += "\t" + fmt.Sprintf(format, t.Cells[i][j])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// downsample reduces a per-slot series to one averaged point every
// `step` slots, which keeps the TSV output plottable.
func downsample(series []float64, step int) []Point {
	if step <= 0 {
		step = 1
	}
	out := make([]Point, 0, len(series)/step+1)
	for start := 0; start < len(series); start += step {
		end := start + step
		if end > len(series) {
			end = len(series)
		}
		var sum float64
		for _, v := range series[start:end] {
			sum += v
		}
		out = append(out, Point{
			X: float64(start+end) / 2,
			Y: sum / float64(end-start),
		})
	}
	return out
}
