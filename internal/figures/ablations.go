package figures

// Ablation experiments beyond the paper's published figures, each
// probing one design decision Sec. IV argues for:
//
//   - LiarAblation: Eq. (2)'s local measurement versus Eq. (3)'s
//     declared capacities when a peer lies (Sec. IV-B's motivation);
//   - TitForTatAblation: asymptotic pairwise fairness versus
//     BitTorrent-style instantaneous reciprocation (Sec. II-A);
//   - DecayAblation: cumulative versus decaying ledgers on the
//     Fig. 8(b) capacity drop (the paper's "slow dynamics" remark).

import (
	"fmt"

	"asymshare/internal/fairshare"
	"asymshare/internal/sim"
	"asymshare/internal/trace"
)

// LiarAblationResult compares a lying free-rider's take under the two
// allocation rules.
type LiarAblationResult struct {
	// LiarRateEq3 is the liar's mean download under global
	// proportional fairness with declared (inflated) capacities.
	LiarRateEq3 float64

	// LiarRateEq2 is the liar's mean download under the paper's
	// pairwise-proportional rule.
	LiarRateEq2 float64

	// HonestRateEq2 is an honest peer's mean download under Eq. (2).
	HonestRateEq2 float64
}

// LiarAblation runs three saturated peers where one contributes nothing
// but declares a huge capacity. slots <= 0 means 1500.
func LiarAblation(slots int) (*LiarAblationResult, error) {
	if slots <= 0 {
		slots = 1500
	}
	runWith := func(policy func() fairshare.Allocator) (*sim.Result, error) {
		cfg := sim.Config{Slots: slots}
		specs := []struct {
			name   string
			upload float64
		}{
			{"liar", 0}, {"h0", 512}, {"h1", 512},
		}
		for _, sp := range specs {
			cfg.Peers = append(cfg.Peers, sim.PeerConfig{
				Name:   sp.name,
				Upload: trace.Const(sp.upload),
				Demand: trace.Always{},
				Policy: policy(),
			})
		}
		return sim.Run(cfg)
	}

	declared := map[fairshare.ID]float64{"liar": 1e6, "h0": 512, "h1": 512}
	eq3, err := runWith(func() fairshare.Allocator {
		return fairshare.GlobalProportional{DeclaredUpload: declared}
	})
	if err != nil {
		return nil, err
	}
	eq2, err := runWith(func() fairshare.Allocator {
		return fairshare.PairwiseProportional{}
	})
	if err != nil {
		return nil, err
	}
	warm := slots / 3
	return &LiarAblationResult{
		LiarRateEq3:   eq3.MeanDownload(0, warm, slots),
		LiarRateEq2:   eq2.MeanDownload(0, warm, slots),
		HonestRateEq2: eq2.MeanDownload(1, warm, slots),
	}, nil
}

// TitForTatAblationResult compares fairness (Jain index of
// download/upload ratios) under Eq. (2) and top-N tit-for-tat.
type TitForTatAblationResult struct {
	JainEq2 float64
	JainTFT float64

	// DownloadsTFT are the per-peer steady-state downloads under
	// tit-for-tat, showing the winner-take-all lock-in.
	DownloadsTFT []float64
	Uploads      []float64
}

// TitForTatAblation runs a saturated heterogeneous network under both
// rules. slots <= 0 means 4000.
func TitForTatAblation(slots int) (*TitForTatAblationResult, error) {
	if slots <= 0 {
		slots = 4000
	}
	uploads := []float64{100, 300, 600, 1000}
	runWith := func(policy fairshare.Allocator) (*sim.Result, error) {
		cfg := sim.Config{Slots: slots}
		for i, u := range uploads {
			cfg.Peers = append(cfg.Peers, sim.PeerConfig{
				Name:   fmt.Sprintf("p%d", i),
				Upload: trace.Const(u),
				Demand: trace.Always{},
				Policy: policy,
			})
		}
		return sim.Run(cfg)
	}
	eq2, err := runWith(nil)
	if err != nil {
		return nil, err
	}
	tft, err := runWith(fairshare.TitForTat{N: 2})
	if err != nil {
		return nil, err
	}
	warm := 3 * slots / 4
	res := &TitForTatAblationResult{
		JainEq2: sim.JainIndex(eq2.NormalizedDownloads(warm, slots)),
		JainTFT: sim.JainIndex(tft.NormalizedDownloads(warm, slots)),
		Uploads: uploads,
	}
	for i := range uploads {
		res.DownloadsTFT = append(res.DownloadsTFT, tft.MeanDownload(i, warm, slots))
	}
	return res, nil
}

// DecayAblationResult compares adaptation speed after the Fig. 8(b)
// drop under cumulative and decaying ledgers.
type DecayAblationResult struct {
	// RateCumulative and RateDecayed are the degraded peer's mean
	// download in the window shortly after the drop; lower means the
	// system adapted (penalized the reduced contribution) faster.
	RateCumulative float64
	RateDecayed    float64

	// Decay is the per-slot factor used for the decayed run.
	Decay float64
}

// DecayAblation runs the capacity-drop scenario twice. slots <= 0 means
// 2400; decay <= 0 or >= 1 means 0.995.
func DecayAblation(slots int, decay float64) (*DecayAblationResult, error) {
	if slots <= 0 {
		slots = 2400
	}
	if decay <= 0 || decay >= 1 {
		decay = 0.995
	}
	run := func(d float64) (*sim.Result, error) {
		cfg := sim.Config{Slots: slots, LedgerDecay: d}
		for i := 0; i < 6; i++ {
			var upload trace.Schedule = trace.Const(1024)
			if i == 0 {
				upload = trace.Steps{{From: 0, Rate: 1024}, {From: slots / 2, Rate: 256}}
			}
			cfg.Peers = append(cfg.Peers, sim.PeerConfig{
				Name:   fmt.Sprintf("p%d", i),
				Upload: upload,
				Demand: trace.Always{},
			})
		}
		return sim.Run(cfg)
	}
	cumulative, err := run(0)
	if err != nil {
		return nil, err
	}
	decayed, err := run(decay)
	if err != nil {
		return nil, err
	}
	from := slots/2 + slots/12
	to := slots/2 + slots/6
	return &DecayAblationResult{
		RateCumulative: cumulative.MeanDownload(0, from, to),
		RateDecayed:    decayed.MeanDownload(0, from, to),
		Decay:          decay,
	}, nil
}
