package figures

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"asymshare/internal/gf"
)

func TestFig1CurvesAndHeadline(t *testing.T) {
	fig := Fig1()
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Times scale linearly with size and inversely with rate.
	if got := TransmissionSeconds(1, 8000); got != 1 {
		t.Errorf("1MB @ 8000kbps = %v s", got)
	}
	if got := TransmissionSeconds(10, 28); math.Abs(got-2857.14) > 1 {
		t.Errorf("10MB @ dialup = %v s", got)
	}
	up, down := Fig1Headline()
	// The paper quotes ~9 hours upload vs ~45 minutes download for the
	// 1-hour MPEG-2 video on a cable modem.
	if up < 8 || up > 10 {
		t.Errorf("upload hours = %v, want ~9", up)
	}
	if down < 0.6 || down > 0.9 {
		t.Errorf("download hours = %v, want ~0.75", down)
	}
}

func TestFigureWriteTSV(t *testing.T) {
	fig := &Figure{
		ID: "test", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{1, 2}, {3, 4}}},
			{Label: "b", Points: []Point{{1, 5}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x\ta\tb") {
		t.Errorf("missing header: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // 2 comments + header + 2 rows
		t.Errorf("lines = %d: %q", len(lines), out)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	// Spot-check the corners of Table I.
	want := map[[2]int]float64{
		{0, 0}: 256, // GF(2^4), m=2^13
		{0, 5}: 8,   // GF(2^4), m=2^18
		{3, 0}: 32,  // GF(2^32), m=2^13
		{3, 5}: 1,   // GF(2^32), m=2^18
		{1, 2}: 32,  // GF(2^8), m=2^15
		{2, 3}: 8,   // GF(2^16), m=2^16
	}
	for pos, k := range want {
		if got := tbl.Cells[pos[0]][pos[1]]; got != k {
			t.Errorf("cell %v = %v, want %v", pos, got, k)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GF(2^32)") {
		t.Error("table output missing row labels")
	}
}

func TestTable2SmallGrid(t *testing.T) {
	// Run the decode-timing grid at 64 KiB so the test stays quick; all
	// cells must be positive and the k=1-ish cells near-instant.
	tbl, err := Table2(Table2Options{DataBytes: 64 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Cells {
		for j, v := range row {
			if v <= 0 {
				t.Errorf("cell (%d,%d) = %v, want > 0", i, j, v)
			}
		}
	}
	// Larger fields decode 1 MB faster than GF(2^4) at the same m
	// (fewer, cheaper eliminations) — the core finding of Sec. V-B.
	if tbl.Cells[0][0] < tbl.Cells[3][0] {
		t.Errorf("GF(2^4) %.4fs should be slower than GF(2^32) %.4fs at m=2^13",
			tbl.Cells[0][0], tbl.Cells[3][0])
	}
}

func TestMeasureDecodeErrors(t *testing.T) {
	f := gf.MustNew(gf.Bits4)
	if _, err := MeasureDecode(f, 3, make([]byte, 10), []byte("s")); err == nil {
		t.Error("unaligned m accepted")
	}
}

func TestFig5aConvergence(t *testing.T) {
	fig, res, err := Fig5a(1200)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 10 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Final smoothed points approach each peer's upload rate.
	for i := 0; i < 10; i++ {
		want := float64(100 * (i + 1))
		got := res.MeanDownload(i, 1000, 1200)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("peer %d final rate %v, want ~%v", i, got, want)
		}
	}
}

func TestFig5bDominantPeer(t *testing.T) {
	_, res, err := Fig5b(2400)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{128, 256, 1024} {
		got := res.MeanDownload(i, 2000, 2400)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("peer %d rate %v, want ~%v", i, got, want)
		}
	}
}

func TestHomeVideoGainsPositive(t *testing.T) {
	fig, res, gains, err := HomeVideo(HomeVideoOptions{SlotsPerHour: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig6" {
		t.Errorf("figure id = %s", fig.ID)
	}
	if res.Slots() != 24*300 {
		t.Errorf("slots = %d", res.Slots())
	}
	// Cooperation must benefit every user: download while requesting
	// exceeds the isolated upload rate (the shaded gains of Fig. 6).
	for i, g := range gains {
		if g <= 0 {
			t.Errorf("peer %d gain = %v, want > 0", i, g)
		}
	}
}

func TestHomeVideoLateContributorPenalized(t *testing.T) {
	// Fig. 7: peer 1 contributes only after hour 3; its total gain is
	// smaller than in the Fig. 6 run with identical demand.
	base, _, gainsBase, err := HomeVideo(HomeVideoOptions{SlotsPerHour: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	late, _, gainsLate, err := HomeVideo(HomeVideoOptions{SlotsPerHour: 300, Seed: 7, Peer1StartHour: 3})
	if err != nil {
		t.Fatal(err)
	}
	if late.ID != "fig7" || base.ID != "fig6" {
		t.Errorf("ids = %s, %s", base.ID, late.ID)
	}
	if gainsLate[1] >= gainsBase[1] {
		t.Errorf("late contributor gain %v not below baseline %v", gainsLate[1], gainsBase[1])
	}
}

func TestFig8aSaverAdvantage(t *testing.T) {
	_, res, err := Fig8a(1600)
	if err != nil {
		t.Fatal(err)
	}
	saver := res.MeanDownload(0, 1000, 1200)
	late := res.MeanDownload(1, 1000, 1200)
	if saver <= 1.08*late {
		t.Errorf("saver %v vs late %v: no clear advantage", saver, late)
	}
	// Before t=1000 the others enjoy the saver's idle bandwidth.
	other := res.MeanDownload(2, 500, 1000)
	if other <= 1024 {
		t.Errorf("other peers rate %v, want > 1024", other)
	}
}

func TestFig8bDropAndRecovery(t *testing.T) {
	_, res, err := Fig8b(Fig8bOptions{Slots: 4000})
	if err != nil {
		t.Fatal(err)
	}
	before := res.MeanDownload(0, 800, 1000)
	during := res.MeanDownload(0, 2800, 3000)
	after := res.MeanDownload(0, 3800, 4000)
	if during >= 0.9*before {
		t.Errorf("drop not visible: before %v during %v", before, during)
	}
	if after <= during {
		t.Errorf("no recovery: during %v after %v", during, after)
	}
}

func TestFig8bDecayAblation(t *testing.T) {
	// With ledger decay the during-drop rate is pulled down (adapts)
	// faster than the cumulative default.
	_, cumulative, err := Fig8b(Fig8bOptions{Slots: 2000})
	if err != nil {
		t.Fatal(err)
	}
	_, decayed, err := Fig8b(Fig8bOptions{Slots: 2000, LedgerDecay: 0.995})
	if err != nil {
		t.Fatal(err)
	}
	c := cumulative.MeanDownload(0, 1200, 1500)
	d := decayed.MeanDownload(0, 1200, 1500)
	if d >= c {
		t.Errorf("decayed %v not adapting faster than cumulative %v", d, c)
	}
}

func TestDownsample(t *testing.T) {
	pts := downsample([]float64{1, 2, 3, 4, 5, 6}, 2)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Y != 1.5 || pts[2].Y != 5.5 {
		t.Errorf("downsample = %v", pts)
	}
	if got := downsample([]float64{1, 2, 3}, 0); len(got) != 3 {
		t.Errorf("step 0 should behave like 1: %v", got)
	}
}
