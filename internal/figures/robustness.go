package figures

// Robustness: the paper claims "geographic data robustness" — data is
// redundantly available from various sources, and any k innovative
// messages reconstruct the file regardless of which peers are
// reachable. This experiment measures decode success probability as a
// function of how many storage peers are reachable when each peer
// stores only k' <= k messages (the partial-storage mode of
// Sec. III-D), making the redundancy/availability trade-off concrete.

import (
	"fmt"
	"math/rand"

	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

// RobustnessOptions configures the sweep.
type RobustnessOptions struct {
	// K is the generation size; zero means 16.
	K int

	// KPrimes are the per-peer storage levels to test; nil means
	// {K/4, K/2, K}.
	KPrimes []int

	// MaxPeers is the largest reachable-peer count; zero means
	// 2*K/min(KPrimes) capped at 8.
	MaxPeers int

	// Trials per cell; zero means 50.
	Trials int

	// FieldBits selects the coefficient field; zero means GF(2^8).
	FieldBits uint

	Seed int64
}

// Robustness runs the sweep and returns a table of decode success
// fractions: rows are per-peer storage k', columns are reachable peer
// counts.
func Robustness(opts RobustnessOptions) (*Table, error) {
	k := opts.K
	if k <= 0 {
		k = 16
	}
	kPrimes := opts.KPrimes
	if len(kPrimes) == 0 {
		kPrimes = []int{k / 4, k / 2, k}
	}
	for _, kp := range kPrimes {
		if kp <= 0 || kp > k {
			return nil, fmt.Errorf("%w: k'=%d with k=%d", rlnc.ErrBadParams, kp, k)
		}
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 50
	}
	fieldBits := opts.FieldBits
	if fieldBits == 0 {
		fieldBits = gf.Bits8
	}
	field, err := gf.New(fieldBits)
	if err != nil {
		return nil, err
	}
	maxPeers := opts.MaxPeers
	if maxPeers <= 0 {
		minKP := kPrimes[0]
		for _, kp := range kPrimes[1:] {
			if kp < minKP {
				minKP = kp
			}
		}
		maxPeers = 2 * k / minKP
		if maxPeers > 8 {
			maxPeers = 8
		}
	}

	const m = 8 // tiny payloads: we only care about rank behaviour
	params, err := rlnc.NewParams(field, k, m, k*gf.VecBytes(field.Bits(), m))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	secret := make([]byte, rlnc.SecretLen)
	rng.Read(secret)
	data := make([]byte, params.DataLen)
	rng.Read(data)

	t := &Table{
		ID:       "robustness",
		Title:    fmt.Sprintf("decode success probability, k=%d over GF(2^%d)", k, fieldBits),
		RowLabel: "k'/peer",
		ColLabel: "reachable peers",
		Format:   "%.2f",
	}
	for _, kp := range kPrimes {
		t.Rows = append(t.Rows, fmt.Sprintf("%d", kp))
	}
	for a := 1; a <= maxPeers; a++ {
		t.Cols = append(t.Cols, fmt.Sprintf("%d", a))
	}
	t.Cells = make([][]float64, len(kPrimes))

	for i, kp := range kPrimes {
		t.Cells[i] = make([]float64, maxPeers)
		for a := 1; a <= maxPeers; a++ {
			success := 0
			for trial := 0; trial < trials; trial++ {
				// A fresh file-id per trial re-randomizes every
				// coefficient row.
				fileID := uint64(i*1000000+a*10000+trial) + 1
				enc, err := rlnc.NewEncoder(params, fileID, secret, data)
				if err != nil {
					return nil, err
				}
				dec, err := rlnc.NewDecoder(params, fileID, secret, nil)
				if err != nil {
					return nil, err
				}
				for p := 0; p < a && !dec.Done(); p++ {
					batch, err := enc.BatchForPeer(p, kp)
					if err != nil {
						return nil, err
					}
					for _, msg := range batch {
						if _, err := dec.Add(msg); err != nil {
							return nil, err
						}
					}
				}
				if dec.Done() {
					success++
				}
			}
			t.Cells[i][a-1] = float64(success) / float64(trials)
		}
	}
	return t, nil
}
