package figures

// Churn: the "dynamic real-time environment" dimension of the paper's
// future work (Sec. VI-A), probed in the simulator. Peers alternate
// online sessions (contributing + requesting) and offline gaps; the
// experiment measures how well the paper's asymptotic fairness holds
// as sessions shrink — the trade-off between fairness and "quick
// adaptation to changes in the networking environment" the paper
// anticipates.

import (
	"fmt"

	"asymshare/internal/sim"
	"asymshare/internal/trace"
)

// ChurnResult reports fairness under one session-length setting.
type ChurnResult struct {
	// MeanSessionSlots is the configured mean online-session length.
	MeanSessionSlots float64

	// Jain is Jain's index over per-peer (download while online) /
	// (upload while online) ratios — 1.0 means everyone got back
	// exactly what they gave despite churn.
	Jain float64

	// MinNormalized is the worst peer's download/upload ratio; the
	// incentive story survives churn as long as this stays near (or
	// above) 1.
	MinNormalized float64
}

// Churn runs n peers with exponential on/off sessions and measures
// fairness. slots <= 0 means 20000; peers <= 0 means 8.
func Churn(slots, peers int, meanSession float64, seed int64) (*ChurnResult, error) {
	if slots <= 0 {
		slots = 20000
	}
	if peers <= 0 {
		peers = 8
	}
	if meanSession <= 0 {
		meanSession = 1000
	}
	cfg := sim.Config{Slots: slots}
	for i := 0; i < peers; i++ {
		sessions, err := trace.NewRandomSessions(slots, meanSession, meanSession/2, seed+int64(i)*31)
		if err != nil {
			return nil, err
		}
		cfg.Peers = append(cfg.Peers, sim.PeerConfig{
			Name:   fmt.Sprintf("p%d", i),
			Upload: trace.Gate{Capacity: 512, On: sessions},
			Demand: sessions,
		})
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	warm := slots / 5
	norm := res.NormalizedDownloads(warm, slots)
	minNorm := norm[0]
	for _, v := range norm[1:] {
		if v < minNorm {
			minNorm = v
		}
	}
	return &ChurnResult{
		MeanSessionSlots: meanSession,
		Jain:             sim.JainIndex(norm),
		MinNormalized:    minNorm,
	}, nil
}

// ChurnSweep evaluates fairness across several session lengths and
// returns a table (rows: session length, cols: Jain and min ratio).
func ChurnSweep(slots, peers int, sessions []float64, seed int64) (*Table, error) {
	if len(sessions) == 0 {
		sessions = []float64{100, 400, 1600, 6400}
	}
	t := &Table{
		ID:       "churn",
		Title:    "fairness under churn (exponential on/off sessions)",
		RowLabel: "mean session (s)",
		ColLabel: "metric",
		Cols:     []string{"jain", "min_ratio"},
		Format:   "%.3f",
	}
	for _, s := range sessions {
		res, err := Churn(slots, peers, s, seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%.0f", s))
		t.Cells = append(t.Cells, []float64{res.Jain, res.MinNormalized})
	}
	return t, nil
}
