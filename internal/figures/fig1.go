package figures

import "math"

// Link speeds from Fig. 1 of the paper, in kbps.
const (
	DialupUploadKbps   = 28
	DialupDownloadKbps = 56
	CableUploadKbps    = 256
	CableDownloadKbps  = 3000
)

// TransmissionSeconds returns the time to move sizeMB megabytes over a
// rate of `kbps` kilobits per second (1 MB = 8000 kbit, matching the
// paper's decimal axes).
func TransmissionSeconds(sizeMB, kbps float64) float64 {
	if kbps <= 0 {
		return math.Inf(1)
	}
	return sizeMB * 8000 / kbps
}

// Fig1 reproduces Figure 1: transmission time versus size for typical
// asymmetric links, on log-spaced sizes from 1 MB to 100 GB. The
// headline gap — ~9 hours versus ~45 minutes for a 1-hour MPEG-2 video
// (~1 GB) on a cable modem — falls directly out of these curves.
func Fig1() *Figure {
	lines := []struct {
		label string
		kbps  float64
	}{
		{"dialup-upload@28kbps", DialupUploadKbps},
		{"dialup-download@56kbps", DialupDownloadKbps},
		{"cable-upload@256kbps", CableUploadKbps},
		{"cable-download@3Mbps", CableDownloadKbps},
	}
	fig := &Figure{
		ID:     "fig1",
		Title:  "Transmission time vs size over asymmetric links",
		XLabel: "size (MB)",
		YLabel: "time (s)",
	}
	// 1 MB .. 100 GB, 10 points per decade.
	var sizes []float64
	for exp := 0.0; exp <= 5.0; exp += 0.1 {
		sizes = append(sizes, math.Pow(10, exp))
	}
	for _, ln := range lines {
		s := Series{Label: ln.label, Points: make([]Point, 0, len(sizes))}
		for _, sz := range sizes {
			s.Points = append(s.Points, Point{X: sz, Y: TransmissionSeconds(sz, ln.kbps)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig1Headline returns the paper's motivating comparison: the hours to
// upload versus download a 1-hour TV-resolution MPEG-2 home video
// (~1 GB) over a cable modem.
func Fig1Headline() (uploadHours, downloadHours float64) {
	const videoMB = 1000
	return TransmissionSeconds(videoMB, CableUploadKbps) / 3600,
		TransmissionSeconds(videoMB, CableDownloadKbps) / 3600
}
