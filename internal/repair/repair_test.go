package repair

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/contract"
	"asymshare/internal/fsx"
	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
	"asymshare/internal/wire"
)

func testPlan() chunk.Plan {
	return chunk.Plan{FieldBits: gf.Bits8, M: 128, ChunkSize: 1024}
}

func testData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	return data
}

// fakeSwarm is an in-process stand-in for client.Client + a fleet of
// peer.Nodes: it stores disseminated messages per address, answers
// keyed audits honestly from those stores, and grants contracts with
// optional per-peer capacity limits. Kill an address to simulate churn.
type fakeSwarm struct {
	mu        sync.Mutex
	clock     func() time.Time
	stores    map[string]store.Store
	dead      map[string]bool
	capacity  map[string]int64 // 0 = unlimited
	used      map[string]int64
	contracts map[string]map[uint64]int64 // addr -> contract id -> bytes
	expiries  map[uint64]time.Time
	upBytes   int64
	credits   map[string]uint64
	debits    map[string]uint64
}

func newFakeSwarm(clock func() time.Time) *fakeSwarm {
	return &fakeSwarm{
		clock:     clock,
		stores:    make(map[string]store.Store),
		dead:      make(map[string]bool),
		capacity:  make(map[string]int64),
		used:      make(map[string]int64),
		contracts: make(map[string]map[uint64]int64),
		expiries:  make(map[uint64]time.Time),
		credits:   make(map[string]uint64),
		debits:    make(map[string]uint64),
	}
}

func (f *fakeSwarm) addPeer(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores[addr] = store.NewMemory()
	f.contracts[addr] = make(map[uint64]int64)
}

func (f *fakeSwarm) kill(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead[addr] = true
}

func (f *fakeSwarm) Disseminate(_ context.Context, addr string, msgs []*rlnc.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[addr] {
		return errors.New("dial: connection refused")
	}
	st, ok := f.stores[addr]
	if !ok {
		return errors.New("no such peer")
	}
	for _, m := range msgs {
		if err := st.Put(m); err != nil {
			return err
		}
		f.upBytes += int64(len(m.Payload) + messageOverhead)
	}
	return nil
}

func (f *fakeSwarm) Audit(_ context.Context, addr string, ch wire.AuditChallenge) (*wire.AuditResponse, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[addr] {
		return nil, "", errors.New("dial: connection refused")
	}
	st, ok := f.stores[addr]
	if !ok {
		return nil, "", errors.New("no such peer")
	}
	resp := &wire.AuditResponse{FileID: ch.FileID}
	for _, id := range ch.MessageIDs {
		proof := wire.AuditProof{MessageID: id}
		if msg, err := st.Get(ch.FileID, id); err == nil {
			d := msg.Digest()
			proof.Present = true
			proof.MAC = auth.AuditMAC(ch.Key, ch.FileID, id, d[:])
		}
		resp.Proofs = append(resp.Proofs, proof)
	}
	return resp, "fp-" + addr, nil
}

func (f *fakeSwarm) ProposeContract(_ context.Context, addr string, p wire.ContractPropose) (wire.ContractGrant, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[addr] {
		return wire.ContractGrant{}, "", errors.New("dial: connection refused")
	}
	book, ok := f.contracts[addr]
	if !ok {
		return wire.ContractGrant{}, "", errors.New("no such peer")
	}
	if cap := f.capacity[addr]; cap > 0 && f.used[addr]+int64(p.Bytes) > cap {
		return wire.ContractGrant{}, "", &wire.RemoteError{
			Code: wire.CodeOverCapacity, Reason: "over advertised capacity"}
	}
	book[p.ContractID] = int64(p.Bytes)
	f.used[addr] += int64(p.Bytes)
	exp := f.clock().Add(time.Duration(p.TTLSeconds) * time.Second)
	f.expiries[p.ContractID] = exp
	return wire.ContractGrant{ContractID: p.ContractID, ExpiresUnix: exp.Unix()}, "fp-" + addr, nil
}

func (f *fakeSwarm) RenewContract(_ context.Context, addr string, r wire.ContractRenew) (wire.ContractGrant, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[addr] {
		return wire.ContractGrant{}, errors.New("dial: connection refused")
	}
	book := f.contracts[addr]
	if _, ok := book[r.ContractID]; !ok {
		return wire.ContractGrant{}, &wire.RemoteError{
			Code: wire.CodeUnknownContract, Reason: "unknown contract"}
	}
	exp := f.clock().Add(time.Duration(r.TTLSeconds) * time.Second)
	f.expiries[r.ContractID] = exp
	return wire.ContractGrant{ContractID: r.ContractID, ExpiresUnix: exp.Unix()}, nil
}

func (f *fakeSwarm) ReleaseContract(_ context.Context, addr string, r wire.ContractRelease) (wire.ContractGrant, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[addr] {
		return wire.ContractGrant{}, errors.New("dial: connection refused")
	}
	if book := f.contracts[addr]; book != nil {
		f.used[addr] -= book[r.ContractID]
		delete(book, r.ContractID)
	}
	return wire.ContractGrant{ContractID: r.ContractID}, nil
}

func (f *fakeSwarm) SendFeedback(_ context.Context, _ string, received map[string]uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, v := range received {
		f.credits[k] += v
	}
	return nil
}

func (f *fakeSwarm) SendAuditVerdicts(_ context.Context, _ string, debits map[string]uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, v := range debits {
		f.debits[k] += v
	}
	return nil
}

// fixture builds a share, seeds `holders` peers (one batch rank each,
// all chunks) into the swarm, and records the matching holdings.
type fixture struct {
	data    []byte
	share   *chunk.Share
	swarm   *fakeSwarm
	set     *contract.Set
	eng     *Engine
	nextID  uint64
	holders []string
}

func newFixture(t *testing.T, dataLen, holders int, clock func() time.Time, expires time.Time) *fixture {
	t.Helper()
	data := testData(dataLen)
	share, err := chunk.BuildShare("f", data, testPlan(), 100, []byte("test-secret"))
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{
		data:  data,
		share: share,
		swarm: newFakeSwarm(clock),
		set:   contract.NewSet(),
	}
	fx.eng = &Engine{Manifest: &share.Manifest, Secret: share.Secret, Uploader: fx.swarm}
	pieces := chunk.Split(data, share.Manifest.Plan.ChunkSize)
	for r := 0; r < holders; r++ {
		addr := string(rune('a'+r)) + ":1"
		fx.swarm.addPeer(addr)
		fx.holders = append(fx.holders, addr)
		for ci := range share.Manifest.Chunks {
			fx.nextID++
			batch, err := fx.eng.Mint(Task{Addr: addr, Chunk: ci, Rank: r, Fresh: true}, pieces[ci])
			if err != nil {
				t.Fatal(err)
			}
			if err := fx.swarm.Disseminate(context.Background(), addr, batch); err != nil {
				t.Fatal(err)
			}
			var bytes int64
			for _, m := range batch {
				bytes += int64(len(m.Payload) + messageOverhead)
			}
			err = fx.set.Add(contract.Holding{
				ContractID: fx.nextID,
				Addr:       addr,
				Peer:       "fp-" + addr,
				Chunk:      ci,
				Rank:       r,
				Messages:   len(batch),
				Bytes:      bytes,
				Expires:    expires,
			})
			if err != nil {
				t.Fatal(err)
			}
			fx.swarm.mu.Lock()
			fx.swarm.contracts[addr][fx.nextID] = bytes
			fx.swarm.expiries[fx.nextID] = expires
			fx.swarm.mu.Unlock()
		}
	}
	fx.swarm.mu.Lock()
	fx.swarm.upBytes = 0 // seeding is not repair traffic
	fx.swarm.mu.Unlock()
	return fx
}

func (fx *fixture) daemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	cfg.Manifest = &fx.share.Manifest
	cfg.Secret = fx.share.Secret
	cfg.Data = fx.data
	cfg.Contracts = fx.set
	cfg.Client = fx.swarm
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEngineMintFreshIsDeterministicAndRecordsDigests(t *testing.T) {
	data := testData(1024)
	share, err := chunk.BuildShare("f", data, testPlan(), 7, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Manifest: &share.Manifest, Secret: share.Secret}
	pieces := chunk.Split(data, share.Manifest.Plan.ChunkSize)

	batch, err := eng.Mint(Task{Chunk: 0, Rank: 3, Fresh: true}, pieces[0])
	if err != nil {
		t.Fatal(err)
	}
	k := share.Manifest.Chunks[0].K
	if len(batch) != k {
		t.Fatalf("minted %d messages, want k=%d", len(batch), k)
	}
	digests := digestsForRank(share.Manifest.Chunks[0].Digests, 3)
	if len(digests) != k {
		t.Fatalf("recorded %d fresh digests, want %d", len(digests), k)
	}
	for _, m := range batch {
		if digests[m.MessageID] != m.Digest() {
			t.Fatalf("digest mismatch for message %d", m.MessageID)
		}
	}
	// Determinism: re-minting the same rank yields the same batch, so a
	// crashed repair can be replayed without new manifest state.
	again, err := eng.Mint(Task{Chunk: 0, Rank: 3}, pieces[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if again[i].MessageID != batch[i].MessageID || again[i].Digest() != batch[i].Digest() {
			t.Fatalf("re-mint diverged at message %d", i)
		}
	}
	if got := maxMintedRank(share.Manifest.Chunks[0].Digests); got != 3 {
		t.Fatalf("maxMintedRank = %d, want 3", got)
	}
}

// TestDaemonLifecycle pins satellite requirements: clean Start/Close
// under -race with no goroutine leak, Close idempotent, Start-after-
// Close refused.
func TestDaemonLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	fx := newFixture(t, 1024, 2, time.Now, time.Now().Add(time.Hour))
	d := fx.daemon(t, Config{Target: 2, Interval: 5 * time.Millisecond})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Error("second Start did not error")
	}
	// Let a few ticker rounds race against Close.
	time.Sleep(25 * time.Millisecond)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if err := d.Start(); err == nil {
		t.Error("Start after Close did not error")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestDaemonReplacesDeadPeer is the core proactive-repair flow: a
// churned holder is detected by the liveness probe, its holding
// dropped, and a fresh batch at a never-used rank is negotiated onto a
// replacement peer — restoring the watermark before decodability is
// ever threatened.
func TestDaemonReplacesDeadPeer(t *testing.T) {
	now := time.Unix(3_000_000, 0)
	clock := func() time.Time { return now }
	fx := newFixture(t, 2048, 3, clock, now.Add(time.Hour))
	spare := "spare:1"
	fx.swarm.addPeer(spare)
	d := fx.daemon(t, Config{
		Target:      3,
		TTL:         time.Hour,
		Clock:       clock,
		OwnPeerAddr: "own:1",
		Peers:       func(context.Context, int) []string { return []string{spare} },
	})

	fx.swarm.kill(fx.holders[1])
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	chunks := len(fx.share.Manifest.Chunks)
	if rep.Dead != chunks {
		t.Errorf("dead = %d, want %d (one holding per chunk)", rep.Dead, chunks)
	}
	if rep.Replacements != chunks {
		t.Errorf("replacements = %d, want %d", rep.Replacements, chunks)
	}
	if rep.MinWatermark != 3.0 {
		t.Errorf("min watermark = %v, want 3.0 after repair", rep.MinWatermark)
	}
	for ci := range fx.share.Manifest.Chunks {
		var onSpare *contract.Holding
		for _, h := range fx.set.ForChunk(ci) {
			if h.Addr == fx.holders[1] {
				t.Errorf("chunk %d: dead holding survived", ci)
			}
			if h.Addr == spare {
				hh := h
				onSpare = &hh
			}
		}
		if onSpare == nil {
			t.Fatalf("chunk %d: no replacement holding", ci)
		}
		// Fresh rank: strictly past every seeded rank (0..2).
		if onSpare.Rank != 3 {
			t.Errorf("chunk %d: replacement rank = %d, want 3", ci, onSpare.Rank)
		}
		// The replacement batch is stored and its digests are pinned in
		// the manifest, so a cold fetch will authenticate it.
		info := fx.share.Manifest.Chunks[ci]
		if got := fx.swarm.stores[spare].Count(info.FileID); got != info.K {
			t.Errorf("chunk %d: spare stores %d messages, want %d", ci, got, info.K)
		}
		if got := len(digestsForRank(info.Digests, onSpare.Rank)); got != info.K {
			t.Errorf("chunk %d: %d fresh digests in manifest, want %d", ci, got, info.K)
		}
	}
	// Honored obligations were credited; the dead peer earned nothing.
	if fx.swarm.credits["fp-"+fx.holders[0]] == 0 || fx.swarm.credits["fp-"+fx.holders[2]] == 0 {
		t.Error("surviving holders not credited")
	}
	if fx.swarm.credits["fp-"+fx.holders[1]] != 0 {
		t.Error("dead holder credited")
	}
}

// TestDaemonDropsFailedAudit: a holder that answers but cannot prove
// retention (forged payload) is treated like a lost replica and debited.
func TestDaemonDropsFailedAudit(t *testing.T) {
	now := time.Unix(3_000_000, 0)
	clock := func() time.Time { return now }
	fx := newFixture(t, 1024, 2, clock, now.Add(time.Hour))
	spare := "spare:1"
	fx.swarm.addPeer(spare)

	// Forge every message the second holder stores.
	bad := fx.holders[1]
	info := fx.share.Manifest.Chunks[0]
	msgs, err := fx.swarm.stores[bad].Messages(info.FileID)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		forged := *m
		forged.Payload = append([]byte(nil), m.Payload...)
		forged.Payload[0] ^= 0xff
		if err := fx.swarm.stores[bad].Put(&forged); err != nil {
			t.Fatal(err)
		}
	}

	d := fx.daemon(t, Config{
		Target:      2,
		TTL:         time.Hour,
		Clock:       clock,
		OwnPeerAddr: "own:1",
		Peers:       func(context.Context, int) []string { return []string{spare} },
	})
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Errorf("failed = %d, want 1", rep.Failed)
	}
	if rep.Replacements != 1 {
		t.Errorf("replacements = %d, want 1", rep.Replacements)
	}
	if fx.set.Has(bad, 0) {
		t.Error("failed holder still holds the chunk")
	}
	if fx.swarm.debits["fp-"+bad] == 0 {
		t.Error("failed holder not debited")
	}
}

// TestDaemonRenewsExpiring: healthy contracts inside the RenewAhead
// window are extended rather than replaced.
func TestDaemonRenewsExpiring(t *testing.T) {
	now := time.Unix(3_000_000, 0)
	clock := func() time.Time { return now }
	fx := newFixture(t, 1024, 2, clock, now.Add(time.Minute))
	d := fx.daemon(t, Config{
		Target:     2,
		TTL:        time.Hour,
		RenewAhead: 10 * time.Minute,
		Clock:      clock,
	})
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Renewed != 2 {
		t.Errorf("renewed = %d, want 2", rep.Renewed)
	}
	if rep.Replacements != 0 {
		t.Errorf("replacements = %d, want 0", rep.Replacements)
	}
	for _, h := range fx.set.Holdings() {
		if h.Expires.Sub(now) < 30*time.Minute {
			t.Errorf("holding %d not renewed: expires %v", h.ContractID, h.Expires)
		}
	}
}

// TestDaemonSkipsOverCapacityCandidate: a refusal (typed over-capacity
// wire error) moves placement to the next candidate instead of failing
// the round.
func TestDaemonSkipsOverCapacityCandidate(t *testing.T) {
	now := time.Unix(3_000_000, 0)
	clock := func() time.Time { return now }
	fx := newFixture(t, 1024, 2, clock, now.Add(time.Hour))
	full, roomy := "full:1", "roomy:1"
	fx.swarm.addPeer(full)
	fx.swarm.addPeer(roomy)
	fx.swarm.mu.Lock()
	fx.swarm.capacity[full] = 1 // can't hold a batch
	fx.swarm.mu.Unlock()

	fx.swarm.kill(fx.holders[0])
	d := fx.daemon(t, Config{
		Target: 2,
		TTL:    time.Hour,
		Clock:  clock,
		Peers:  func(context.Context, int) []string { return []string{full, roomy} },
	})
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replacements != 1 {
		t.Fatalf("replacements = %d, want 1", rep.Replacements)
	}
	if rep.Errors == 0 {
		t.Error("over-capacity refusal not counted as an error")
	}
	if !fx.set.Has(roomy, 0) {
		t.Error("replacement did not land on the peer with room")
	}
	if fx.set.Has(full, 0) {
		t.Error("replacement landed on the full peer")
	}
}

// TestDaemonWatermarkAfterJournalRecovery pins the crash-recovery
// requirement: holdings journaled before a kill -9 replay into a fresh
// Set, and the daemon recomputes the exact rank-margin watermark from
// that recovered state alone — no network traffic, no owner handholding.
func TestDaemonWatermarkAfterJournalRecovery(t *testing.T) {
	now := time.Unix(3_000_000, 0)
	clock := func() time.Time { return now }
	efs := fsx.NewErrFS(5)

	data := testData(2048)
	share, err := chunk.BuildShare("f", data, testPlan(), 100, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	k := share.Manifest.Chunks[0].K

	set, _, err := contract.OpenSet(efs, "owner/holdings.j")
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 0: two live holdings. Chunk 1: one live, one already lapsed
	// by recovery time, plus one dropped before the crash.
	live := now.Add(time.Hour)
	lapsed := now.Add(-time.Minute)
	holdings := []contract.Holding{
		{ContractID: 1, Addr: "a:1", Chunk: 0, Rank: 0, Messages: k, Expires: live},
		{ContractID: 2, Addr: "b:1", Chunk: 0, Rank: 1, Messages: k, Expires: live},
		{ContractID: 3, Addr: "a:1", Chunk: 1, Rank: 0, Messages: k, Expires: live},
		{ContractID: 4, Addr: "b:1", Chunk: 1, Rank: 1, Messages: k, Expires: lapsed},
		{ContractID: 5, Addr: "c:1", Chunk: 1, Rank: 2, Messages: k, Expires: live},
	}
	for _, h := range holdings {
		if err := set.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Drop(5); err != nil {
		t.Fatal(err)
	}

	efs.Reboot() // kill -9: no Close, only fsynced bytes survive

	recovered, rec, err := contract.OpenSet(efs, "owner/holdings.j")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 6 || rec.Active != 4 {
		t.Fatalf("recovery = %+v, want 6 records / 4 active", rec)
	}
	d, err := New(Config{
		Manifest:  &share.Manifest,
		Secret:    share.Secret,
		Data:      data,
		Contracts: recovered,
		Client:    newFakeSwarm(clock),
		Clock:     clock,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	marks := d.Watermarks()
	if len(marks) != 2 {
		t.Fatalf("got %d watermarks, want 2", len(marks))
	}
	if marks[0] != 2.0 {
		t.Errorf("chunk 0 watermark = %v, want 2.0", marks[0])
	}
	// Contract 4 lapsed and contract 5 was dropped pre-crash: only one
	// replica survives recovery.
	if marks[1] != 1.0 {
		t.Errorf("chunk 1 watermark = %v, want 1.0", marks[1])
	}
}

// TestDaemonExpiredHoldingsReplaced: contract expiry alone (no churn,
// no audit failure) triggers replacement.
func TestDaemonExpiredHoldingsReplaced(t *testing.T) {
	now := time.Unix(3_000_000, 0)
	clock := func() time.Time { return now }
	fx := newFixture(t, 1024, 2, clock, now.Add(-time.Minute)) // already lapsed
	spare1, spare2 := "s1:1", "s2:1"
	fx.swarm.addPeer(spare1)
	fx.swarm.addPeer(spare2)
	d := fx.daemon(t, Config{
		Target: 2,
		TTL:    time.Hour,
		Clock:  clock,
		Peers:  func(context.Context, int) []string { return []string{spare1, spare2} },
	})
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired != 2 {
		t.Errorf("expired = %d, want 2", rep.Expired)
	}
	if rep.Replacements != 2 {
		t.Errorf("replacements = %d, want 2", rep.Replacements)
	}
	if rep.MinWatermark != 2.0 {
		t.Errorf("min watermark = %v, want 2.0", rep.MinWatermark)
	}
}
