// Package repair contains the shared re-encode + re-disseminate engine
// and the proactive repair daemon. The engine is the single code path
// for both reactive repair (core.RepairFailed, after a failed keyed
// audit) and proactive repair (the Daemon, before decodability is
// threatened): given the original data and a list of (peer, chunk,
// rank) tasks it re-mints deterministic RLNC batches and uploads them.
// Because every message is a pure function of (file-id, message-id,
// secret), repair needs no inter-peer transfer and no decode — the
// owner regenerates any batch at will, the paper's "geographic data
// robustness" made operational.
package repair

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"asymshare/internal/chunk"
	"asymshare/internal/rlnc"
)

// batchStride mirrors the encoder's per-rank message-id stride: batch
// rank r mints ids in [r·2^32, (r+1)·2^32), so a chunk's digest map
// partitions by id/stride into per-batch obligations.
const batchStride = uint64(1) << 32

// messageOverhead is the serialized header size of one rlnc.Message,
// counted alongside the payload in repair-traffic accounting.
const messageOverhead = 16

// Uploader is the slice of the client the engine needs.
type Uploader interface {
	Disseminate(ctx context.Context, addr string, msgs []*rlnc.Message) error
}

// Task names one batch to re-mint: the batch of rank Rank for chunk
// Chunk, destined for Addr. Count caps the batch size (0 means the
// chunk's full k). Fresh marks a batch minted at a never-used rank —
// its message digests are new and must be recorded in the manifest, or
// fetch authentication would reject the replacement replica.
type Task struct {
	Addr  string
	Chunk int
	Rank  int
	Count int
	Fresh bool
}

// Result tallies one engine run.
type Result struct {
	// Messages is how many messages were uploaded.
	Messages int

	// Bytes is the wire volume uploaded (payload + header).
	Bytes int64

	// DigestsAdded is how many fresh message digests were recorded
	// into the manifest (the caller should re-persist the handle when
	// this is non-zero).
	DigestsAdded int
}

// Engine re-mints and re-disseminates encoded batches against one
// manifest. The manifest is mutated when Fresh tasks mint new digests;
// a mutex serializes those writes so the daemon and reactive callers
// can share one engine.
type Engine struct {
	Manifest *chunk.Manifest
	Secret   []byte
	Uploader Uploader

	mu sync.Mutex // guards Manifest digest writes
}

// Mint regenerates the messages of one task from the chunk's original
// piece. Fresh digests are recorded into the manifest before the batch
// is returned: recording-before-upload is the crash-safe order, since
// an orphan digest is harmless but an uploaded batch without digests
// is unfetchable.
func (e *Engine) Mint(t Task, piece []byte) ([]*rlnc.Message, error) {
	if t.Chunk < 0 || t.Chunk >= len(e.Manifest.Chunks) {
		return nil, fmt.Errorf("repair: chunk index %d out of range", t.Chunk)
	}
	info := e.Manifest.Chunks[t.Chunk]
	params, err := info.Params(e.Manifest.Plan)
	if err != nil {
		return nil, err
	}
	enc, err := rlnc.NewEncoder(params, info.FileID, e.Secret, piece)
	if err != nil {
		return nil, err
	}
	count := t.Count
	if count <= 0 || count > params.K {
		count = params.K
	}
	batch, err := enc.BatchForPeer(t.Rank, count)
	if err != nil {
		return nil, fmt.Errorf("repair: batch rank %d chunk %d: %w", t.Rank, t.Chunk, err)
	}
	if t.Fresh {
		e.mu.Lock()
		for _, msg := range batch {
			info.Digests[msg.MessageID] = msg.Digest()
		}
		e.mu.Unlock()
	}
	return batch, nil
}

// Rebuild runs a set of tasks: mint every batch, then upload them
// grouped per destination address (one connection per peer). Tasks for
// unknown chunk indexes are an error; a failed upload aborts with the
// partial Result so callers can report what landed.
func (e *Engine) Rebuild(ctx context.Context, data []byte, tasks []Task) (Result, error) {
	var res Result
	if len(tasks) == 0 {
		return res, nil
	}
	if int64(len(data)) != e.Manifest.TotalSize {
		return res, fmt.Errorf("repair: data is %d bytes, manifest says %d",
			len(data), e.Manifest.TotalSize)
	}
	pieces := chunk.Split(data, e.Manifest.Plan.ChunkSize)
	byAddr := make(map[string][]*rlnc.Message)
	fresh := make(map[string]int)
	for _, t := range tasks {
		if t.Chunk < 0 || t.Chunk >= len(pieces) {
			return res, fmt.Errorf("repair: chunk index %d out of range", t.Chunk)
		}
		batch, err := e.Mint(t, pieces[t.Chunk])
		if err != nil {
			return res, err
		}
		byAddr[t.Addr] = append(byAddr[t.Addr], batch...)
		if t.Fresh {
			fresh[t.Addr] += len(batch)
		}
	}
	addrs := make([]string, 0, len(byAddr))
	for addr := range byAddr {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		msgs := byAddr[addr]
		if err := e.Uploader.Disseminate(ctx, addr, msgs); err != nil {
			return res, fmt.Errorf("repair: disseminate to %s: %w", addr, err)
		}
		res.Messages += len(msgs)
		res.DigestsAdded += fresh[addr]
		for _, m := range msgs {
			res.Bytes += int64(len(m.Payload) + messageOverhead)
		}
	}
	return res, nil
}

// digestsForRank returns the subset of a chunk's digests minted for
// batch rank r.
func digestsForRank(all map[uint64]rlnc.Digest, rank int) map[uint64]rlnc.Digest {
	out := make(map[uint64]rlnc.Digest)
	for id, d := range all {
		if id/batchStride == uint64(rank) {
			out[id] = d
		}
	}
	return out
}

// maxMintedRank returns the highest batch rank any digest of the chunk
// was ever minted at, or -1 for none.
func maxMintedRank(digests map[uint64]rlnc.Digest) int {
	max := -1
	for id := range digests {
		if r := int(id / batchStride); r > max {
			max = r
		}
	}
	return max
}
