package repair

// The proactive repair daemon. Each round it sweeps the owner's
// contract holdings (internal/contract.Set) and acts on the three
// churn signals the subsystem produces: keyed audit verdicts (PR 1's
// internal/audit — a holder that cannot prove retention has lost the
// data), liveness (a holder that cannot be reached at all has left the
// swarm; discovery supplies replacement candidates), and contract
// expiry (an obligation nobody renewed is not a replica). From the
// surviving holdings it computes a rank-margin watermark per chunk —
// surviving innovative coefficients over k — and when a chunk's full
// replicas fall below the target R it negotiates contracts with fresh
// peers and re-disseminates newly minted batches at never-used ranks,
// BEFORE decodability is threatened: the watermark triggers at margin
// < R while the file is still decodable at margin ≥ 1.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"sync"
	"time"

	"asymshare/internal/audit"
	"asymshare/internal/chunk"
	"asymshare/internal/contract"
	"asymshare/internal/metrics"
	"asymshare/internal/wire"
)

// Defaults for Config fields left zero.
const (
	DefaultInterval   = 30 * time.Second
	DefaultTTL        = 10 * time.Minute
	DefaultSample     = 4
	DefaultCandidates = 4 // extra replacement candidates requested per needy chunk
)

// Client is the slice of the owner's network client the daemon needs:
// batch upload, keyed audit probes, contract negotiation and ledger
// feedback. *client.Client implements it.
type Client interface {
	Uploader
	audit.Prober
	ProposeContract(ctx context.Context, addr string, p wire.ContractPropose) (wire.ContractGrant, string, error)
	RenewContract(ctx context.Context, addr string, r wire.ContractRenew) (wire.ContractGrant, error)
	ReleaseContract(ctx context.Context, addr string, r wire.ContractRelease) (wire.ContractGrant, error)
	SendFeedback(ctx context.Context, ownPeerAddr string, received map[string]uint64) error
	SendAuditVerdicts(ctx context.Context, ownPeerAddr string, debits map[string]uint64) error
}

// PeerSource returns up to n replacement-candidate addresses — in
// production a discovery lookup (DHT contacts, gossip fanout), in
// tests a fixed pool. It may return fewer, including none.
type PeerSource func(ctx context.Context, n int) []string

// Config configures a Daemon.
type Config struct {
	// Manifest is the owner's share manifest. Required. The daemon
	// mutates chunk digest maps when it mints fresh batches.
	Manifest *chunk.Manifest

	// Secret is the coding secret (batch derivation + audit keys).
	// Required.
	Secret []byte

	// Data is the original file content, the re-encode source.
	// Required, and must match the manifest's TotalSize.
	Data []byte

	// Contracts is the owner's holdings set. Required. Journal it
	// (contract.OpenSet with a path) to survive kill -9 mid-repair.
	Contracts *contract.Set

	// Client performs the network operations. Required.
	Client Client

	// Peers supplies replacement candidates. Required for repair to
	// place anything; nil confines the daemon to watermark tracking.
	Peers PeerSource

	// Target is the per-generation replica target R: repair triggers
	// when a chunk's live full replicas drop below it. Zero means 1.
	Target int

	// TTL is the contract term for new and renewed contracts; zero
	// means DefaultTTL.
	TTL time.Duration

	// RenewAhead renews contracts expiring within this window; zero
	// means TTL/2.
	RenewAhead time.Duration

	// Interval is the round period for Start; zero means
	// DefaultInterval.
	Interval time.Duration

	// Sample is the per-holding audit sample size; zero means
	// DefaultSample.
	Sample int

	// ProbeTimeout bounds one audit probe; zero means the audit
	// default.
	ProbeTimeout time.Duration

	// OwnPeerAddr, when set, receives ledger feedback each round:
	// credits for holders that proved retention (honored obligations)
	// and debits for holders that failed, so contract behaviour feeds
	// the Eq. (2) allocator.
	OwnPeerAddr string

	// Persist, when set, is called after fresh digests were recorded
	// into the manifest and before the batches are uploaded — the
	// handle-persistence hook (core.SaveHandleFile) that keeps
	// replacement replicas fetchable across an owner crash.
	Persist func() error

	// Seed makes contract-id generation and audit sampling
	// deterministic; zero seeds from time.
	Seed int64

	// Clock overrides time.Now (tests).
	Clock func() time.Time

	// Logger receives round events; nil discards them.
	Logger *slog.Logger

	// Metrics, when set, receives the repair_* instrument families.
	Metrics *metrics.Registry
}

// Report tallies one repair round.
type Report struct {
	Probed       int // holdings probed
	Passed       int // proved retention
	Failed       int // answered but failed the keyed audit
	Dead         int // unreachable (liveness failure)
	Expired      int // dropped because the contract lapsed
	Renewed      int // contracts extended
	RenewFailed  int // renewals refused or unreachable
	Replacements int // fresh batches placed on new peers
	Messages     int // messages uploaded
	Bytes        int64
	Watermarks   []float64 // per-chunk margin, units of k
	MinWatermark float64
	Errors       int // non-fatal errors absorbed this round
}

// Daemon runs proactive repair rounds.
type Daemon struct {
	cfg    Config
	eng    *Engine
	pieces [][]byte
	log    *slog.Logger
	clock  func() time.Time
	m      daemonMetrics

	runMu sync.Mutex // serializes rounds (ticker vs explicit RunOnce)
	rng   *rand.Rand // guarded by runMu

	mu      sync.Mutex
	last    Report
	started bool
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New validates the configuration and creates a daemon (not running).
func New(cfg Config) (*Daemon, error) {
	if cfg.Manifest == nil {
		return nil, errors.New("repair: config requires a manifest")
	}
	if len(cfg.Secret) == 0 {
		return nil, errors.New("repair: config requires the coding secret")
	}
	if cfg.Contracts == nil {
		return nil, errors.New("repair: config requires a contract set")
	}
	if cfg.Client == nil {
		return nil, errors.New("repair: config requires a client")
	}
	if int64(len(cfg.Data)) != cfg.Manifest.TotalSize {
		return nil, fmt.Errorf("repair: data is %d bytes, manifest says %d",
			len(cfg.Data), cfg.Manifest.TotalSize)
	}
	if cfg.Target <= 0 {
		cfg.Target = 1
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.RenewAhead <= 0 {
		cfg.RenewAhead = cfg.TTL / 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Sample <= 0 {
		cfg.Sample = DefaultSample
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	d := &Daemon{
		cfg:    cfg,
		eng:    &Engine{Manifest: cfg.Manifest, Secret: cfg.Secret, Uploader: cfg.Client},
		pieces: chunk.Split(cfg.Data, cfg.Manifest.Plan.ChunkSize),
		log:    cfg.Logger,
		clock:  cfg.Clock,
		rng:    rand.New(rand.NewSource(seed)),
		m:      newDaemonMetrics(cfg.Metrics),
	}
	if d.log == nil {
		d.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if d.clock == nil {
		d.clock = time.Now
	}
	d.ctx, d.cancel = context.WithCancel(context.Background())
	return d, nil
}

// Start launches the periodic repair loop. It runs one round per
// Interval until Close.
func (d *Daemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("repair: daemon closed")
	}
	if d.started {
		return errors.New("repair: daemon already started")
	}
	d.started = true
	d.wg.Add(1)
	go d.loop()
	return nil
}

// Close stops the loop and waits for any in-flight round to finish.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.cancel()
	d.wg.Wait()
	return nil
}

func (d *Daemon) loop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-ticker.C:
			if _, err := d.RunOnce(d.ctx); err != nil && d.ctx.Err() == nil {
				d.log.Warn("repair round failed", "err", err)
			}
		}
	}
}

// LastReport returns the most recent round's report.
func (d *Daemon) LastReport() Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Watermarks recomputes the per-chunk rank-margin watermark from the
// contract set alone — no network traffic. It is what recovery uses to
// re-assess health from a replayed (post-crash) holdings journal.
func (d *Daemon) Watermarks() []float64 {
	return watermarks(d.cfg.Manifest, d.cfg.Contracts, d.clock(), nil)
}

// watermarks computes, per chunk, surviving innovative coefficients
// over k: live (unexpired, not known-dead) holdings each contribute
// min(messages, k). A margin of 1.0 means exactly decodable from
// contracted replicas; the daemon aims for Target.
func watermarks(m *chunk.Manifest, set *contract.Set, now time.Time, dead map[uint64]bool) []float64 {
	out := make([]float64, len(m.Chunks))
	for i, info := range m.Chunks {
		surviving := 0
		for _, h := range set.ForChunk(i) {
			if h.Expired(now) || dead[h.ContractID] {
				continue
			}
			n := h.Messages
			if n > info.K {
				n = info.K
			}
			surviving += n
		}
		if info.K > 0 {
			out[i] = float64(surviving) / float64(info.K)
		}
	}
	return out
}

// RunOnce executes one repair round: expire, probe, renew, compute
// watermarks, replace, report. Non-fatal per-peer errors (a refused
// contract, an unreachable candidate) are absorbed and counted; the
// returned error is reserved for systemic failures (a bad manifest, a
// dead journal).
func (d *Daemon) RunOnce(ctx context.Context) (Report, error) {
	d.runMu.Lock()
	defer d.runMu.Unlock()
	var rep Report
	now := d.clock()
	set := d.cfg.Contracts

	// 1. Contract expiry: a lapsed obligation is not a replica.
	for _, h := range set.Holdings() {
		if h.Expired(now) {
			if err := set.Drop(h.ContractID); err != nil {
				return rep, err
			}
			rep.Expired++
		}
	}
	d.m.expired.Add(uint64(rep.Expired))

	// 2. Keyed audit + liveness probe of every surviving holding.
	failed := make(map[uint64]bool) // contract-id -> lost (dead or failed)
	deadAddr := make(map[string]bool)
	debits := make(map[string]uint64)
	credits := make(map[string]uint64)
	holdings := set.Holdings()
	if len(holdings) > 0 {
		verdicts, probed, err := d.probe(ctx, holdings)
		if err != nil {
			return rep, err
		}
		for i, v := range verdicts {
			h := probed[i]
			rep.Probed++
			switch v.Outcome {
			case audit.Pass:
				rep.Passed++
				d.m.probePass.Inc()
				// An honored obligation earns its keep: credit the
				// holder's standing with the owner's peer.
				credits[h.Peer] += uint64(h.Bytes)
			case audit.Fail:
				rep.Failed++
				d.m.probeFail.Inc()
				failed[h.ContractID] = true
				if v.Penalty > 0 && h.Peer != "" {
					debits[h.Peer] += uint64(math.Round(v.Penalty))
				}
			default: // Timeout: unreachable — churned, partitioned, dead
				rep.Dead++
				d.m.probeDead.Inc()
				failed[h.ContractID] = true
				deadAddr[h.Addr] = true
			}
		}
	}
	// Drop lost holdings so the watermark reflects reality and the
	// replacement pass below refills them.
	for id := range failed {
		if err := set.Drop(id); err != nil {
			return rep, err
		}
	}

	// 3. Renew healthy contracts nearing expiry.
	for _, h := range set.Holdings() {
		if h.Expires.Sub(now) >= d.cfg.RenewAhead {
			continue
		}
		grant, err := d.cfg.Client.RenewContract(ctx, h.Addr, wire.ContractRenew{
			ContractID: h.ContractID,
			TTLSeconds: ttlSeconds(d.cfg.TTL),
		})
		if err != nil {
			// A holder that refuses (or cannot answer) a renewal is no
			// longer a replica; drop it and let replacement refill.
			rep.RenewFailed++
			rep.Errors++
			d.m.errors.Inc()
			deadAddr[h.Addr] = true
			if err := set.Drop(h.ContractID); err != nil {
				return rep, err
			}
			continue
		}
		if err := set.Renew(h.ContractID, time.Unix(grant.ExpiresUnix, 0)); err != nil {
			return rep, err
		}
		rep.Renewed++
		d.m.renewals.Inc()
	}

	// 4. Rank-margin watermark per chunk, then replacement for every
	// chunk whose live replica count is below target.
	if err := d.replace(ctx, &rep, now, deadAddr); err != nil {
		return rep, err
	}

	// 5. Feedback: honored obligations credit, failed ones debit.
	if d.cfg.OwnPeerAddr != "" {
		if len(credits) > 0 {
			if err := d.cfg.Client.SendFeedback(ctx, d.cfg.OwnPeerAddr, credits); err != nil {
				rep.Errors++
				d.m.errors.Inc()
				d.log.Warn("contract feedback failed", "err", err)
			}
		}
		if len(debits) > 0 {
			if err := d.cfg.Client.SendAuditVerdicts(ctx, d.cfg.OwnPeerAddr, debits); err != nil {
				rep.Errors++
				d.m.errors.Inc()
				d.log.Warn("contract debit feedback failed", "err", err)
			}
		}
	}

	rep.Watermarks = watermarks(d.cfg.Manifest, set, now, nil)
	rep.MinWatermark = math.Inf(1)
	for i, w := range rep.Watermarks {
		d.m.watermarkGauge(i).Set(w)
		if w < rep.MinWatermark {
			rep.MinWatermark = w
		}
	}
	if len(rep.Watermarks) == 0 {
		rep.MinWatermark = 0
	}
	d.m.minMargin.Set(rep.MinWatermark)
	d.m.rounds.Inc()
	d.m.messages.Add(uint64(rep.Messages))
	d.m.bytes.Add(uint64(rep.Bytes))

	d.mu.Lock()
	d.last = rep
	d.mu.Unlock()
	d.log.Debug("repair round",
		"probed", rep.Probed, "passed", rep.Passed, "failed", rep.Failed, "dead", rep.Dead,
		"renewed", rep.Renewed, "replacements", rep.Replacements,
		"min_watermark", rep.MinWatermark)
	return rep, nil
}

// probe runs one keyed audit per holding (PR 1 machinery) and returns
// verdicts aligned with the probed holdings.
func (d *Daemon) probe(ctx context.Context, holdings []contract.Holding) ([]audit.Verdict, []contract.Holding, error) {
	a, err := audit.New(audit.Config{
		Prober:     d.cfg.Client,
		Secret:     d.cfg.Secret,
		SampleSize: d.cfg.Sample,
		Timeout:    d.cfg.ProbeTimeout,
		MaxRetries: -1, // the daemon re-probes every round; fail fast
		Seed:       d.rng.Int63(),
		Logger:     d.log,
	})
	if err != nil {
		return nil, nil, err
	}
	probed := make([]contract.Holding, 0, len(holdings))
	for _, h := range holdings {
		if h.Chunk < 0 || h.Chunk >= len(d.cfg.Manifest.Chunks) {
			continue
		}
		info := d.cfg.Manifest.Chunks[h.Chunk]
		digests := digestsForRank(info.Digests, h.Rank)
		if len(digests) == 0 {
			continue
		}
		params, err := info.Params(d.cfg.Manifest.Plan)
		if err != nil {
			return nil, nil, err
		}
		err = a.Add(audit.Target{
			Addr:         h.Addr,
			Peer:         h.Peer,
			FileID:       info.FileID,
			Digests:      digests,
			MessageBytes: params.MessageBytes(),
		})
		if err != nil {
			return nil, nil, err
		}
		probed = append(probed, h)
	}
	return a.AuditOnce(ctx), probed, nil
}

// replace negotiates contracts with fresh peers and uploads newly
// minted batches for every chunk below the replica target.
func (d *Daemon) replace(ctx context.Context, rep *Report, now time.Time, deadAddr map[string]bool) error {
	if d.cfg.Peers == nil {
		return nil
	}
	set := d.cfg.Contracts
	var persistNeeded bool
	for i, info := range d.cfg.Manifest.Chunks {
		live := 0
		holders := make(map[string]bool)
		for _, h := range set.ForChunk(i) {
			if h.Expired(now) {
				continue
			}
			live++
			holders[h.Addr] = true
		}
		need := d.cfg.Target - live
		if need <= 0 {
			continue
		}
		candidates := d.cfg.Peers(ctx, need+DefaultCandidates)
		for _, addr := range candidates {
			if need <= 0 {
				break
			}
			if holders[addr] || deadAddr[addr] {
				continue
			}
			placed, err := d.placeReplica(ctx, i, info, addr, now, &persistNeeded, rep)
			if err != nil {
				return err
			}
			if placed {
				holders[addr] = true
				need--
			} else {
				deadAddr[addr] = true
			}
		}
		if need > 0 {
			d.log.Warn("replica target unmet", "chunk", i, "missing", need)
		}
	}
	_ = persistNeeded
	return nil
}

// placeReplica negotiates one contract with addr for chunk i and
// uploads a fresh batch under it. Returns false (with no error) when
// the candidate refused or was unreachable — the caller tries the
// next one.
func (d *Daemon) placeReplica(ctx context.Context, i int, info chunk.ChunkInfo, addr string,
	now time.Time, persistNeeded *bool, rep *Report) (bool, error) {
	params, err := info.Params(d.cfg.Manifest.Plan)
	if err != nil {
		return false, err
	}
	bytes := int64(params.K) * int64(params.MessageBytes())
	id := d.newContractID()
	grant, fp, err := d.cfg.Client.ProposeContract(ctx, addr, wire.ContractPropose{
		ContractID: id,
		FileID:     info.FileID,
		Messages:   uint32(params.K),
		Bytes:      uint64(bytes),
		TTLSeconds: ttlSeconds(d.cfg.TTL),
	})
	if err != nil {
		// CodeOverCapacity, CodeNotPermitted, or an unreachable
		// candidate: all mean "place it elsewhere".
		rep.Errors++
		d.m.errors.Inc()
		d.log.Debug("contract refused", "addr", addr, "chunk", i, "err", err)
		return false, nil
	}

	// Mint past every rank ever used for this chunk, so the new batch
	// is innovative relative to both live and dead replicas.
	rank := maxMintedRank(info.Digests)
	if r := d.cfg.Contracts.MaxRank(i); r > rank {
		rank = r
	}
	rank++
	batch, err := d.eng.Mint(Task{Addr: addr, Chunk: i, Rank: rank, Fresh: true}, d.pieces[i])
	if err != nil {
		return false, err
	}
	// Crash-safe order: digests are in the manifest — persist the
	// handle BEFORE uploading, or a crash would leave the replica
	// stored but unfetchable (its digests unknown to authentication).
	if d.cfg.Persist != nil {
		if err := d.cfg.Persist(); err != nil {
			return false, fmt.Errorf("repair: persist handle: %w", err)
		}
	}
	*persistNeeded = false
	if err := d.cfg.Client.Disseminate(ctx, addr, batch); err != nil {
		rep.Errors++
		d.m.errors.Inc()
		d.log.Debug("replacement upload failed", "addr", addr, "chunk", i, "err", err)
		return false, nil
	}
	expires := time.Unix(grant.ExpiresUnix, 0)
	if grant.ExpiresUnix == 0 {
		expires = now.Add(d.cfg.TTL)
	}
	if err := d.cfg.Contracts.Add(contract.Holding{
		ContractID: id,
		Addr:       addr,
		Peer:       fp,
		Chunk:      i,
		Rank:       rank,
		Messages:   len(batch),
		Bytes:      bytes,
		Expires:    expires,
	}); err != nil {
		return false, err
	}
	rep.Replacements++
	d.m.replaced.Inc()
	rep.Messages += len(batch)
	for _, m := range batch {
		rep.Bytes += int64(len(m.Payload) + messageOverhead)
	}
	return true, nil
}

// newContractID draws a fresh non-zero contract id.
func (d *Daemon) newContractID() uint64 {
	for {
		if id := d.rng.Uint64(); id != 0 {
			return id
		}
	}
}

// ttlSeconds converts a duration to whole wire seconds, minimum 1.
func ttlSeconds(d time.Duration) uint32 {
	s := int64(d / time.Second)
	if s < 1 {
		s = 1
	}
	if s > math.MaxUint32 {
		s = math.MaxUint32
	}
	return uint32(s)
}
