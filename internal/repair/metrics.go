package repair

import "asymshare/internal/metrics"

// Metric names exported by the repair daemon (see DESIGN.md §7).
const (
	MetricRounds       = "repair_rounds_total"
	MetricProbes       = "repair_probes_total"
	MetricExpired      = "repair_expired_total"
	MetricRenewals     = "repair_renewals_total"
	MetricReplacements = "repair_replacements_total"
	MetricMessages     = "repair_messages_total"
	MetricBytes        = "repair_bytes_total"
	MetricErrors       = "repair_errors_total"
	MetricWatermark    = "repair_watermark"
	MetricWatermarkMin = "repair_watermark_min"
)

// daemonMetrics are the instruments of one repair daemon; all nil-safe.
type daemonMetrics struct {
	reg       *metrics.Registry
	rounds    *metrics.Counter
	probePass *metrics.Counter
	probeFail *metrics.Counter
	probeDead *metrics.Counter
	expired   *metrics.Counter
	renewals  *metrics.Counter
	replaced  *metrics.Counter
	messages  *metrics.Counter
	bytes     *metrics.Counter
	errors    *metrics.Counter
	minMargin *metrics.Gauge
	marks     map[int]*metrics.Gauge
}

func newDaemonMetrics(reg *metrics.Registry) daemonMetrics {
	return daemonMetrics{
		reg:    reg,
		rounds: reg.Counter(MetricRounds, "Repair rounds completed."),
		probePass: reg.Counter(MetricProbes, "Contract liveness/retention probes.",
			metrics.L("outcome", "pass")),
		probeFail: reg.Counter(MetricProbes, "Contract liveness/retention probes.",
			metrics.L("outcome", "fail")),
		probeDead: reg.Counter(MetricProbes, "Contract liveness/retention probes.",
			metrics.L("outcome", "dead")),
		expired:   reg.Counter(MetricExpired, "Holdings dropped because their contract lapsed."),
		renewals:  reg.Counter(MetricRenewals, "Contracts renewed ahead of expiry."),
		replaced:  reg.Counter(MetricReplacements, "Fresh batches placed on replacement peers."),
		messages:  reg.Counter(MetricMessages, "Messages uploaded by repair."),
		bytes:     reg.Counter(MetricBytes, "Bytes uploaded by repair (payload + header)."),
		errors:    reg.Counter(MetricErrors, "Repair round errors (negotiation, upload, feedback)."),
		minMargin: reg.Gauge(MetricWatermarkMin, "Lowest per-chunk rank-margin watermark, in units of k."),
		marks:     make(map[int]*metrics.Gauge),
	}
}

// watermarkGauge lazily creates the per-chunk watermark gauge.
func (m *daemonMetrics) watermarkGauge(chunk int) *metrics.Gauge {
	if m.reg == nil {
		return nil
	}
	if g, ok := m.marks[chunk]; ok {
		return g
	}
	g := m.reg.Gauge(MetricWatermark,
		"Per-chunk rank-margin watermark: surviving innovative coefficients / k.",
		metrics.L("chunk", fmt0(chunk)))
	m.marks[chunk] = g
	return g
}

// fmt0 formats a small non-negative int without fmt (hot-path-free
// label construction, mirroring the metrics package's style).
func fmt0(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
