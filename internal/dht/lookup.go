package dht

// Client-side RPCs and the iterative lookup procedure.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"asymshare/internal/wire"
)

// rpc performs one request/response exchange with a remote node over
// the node's transport. The caller's context governs the exchange
// end-to-end: its deadline bounds dial, write and read (capped at the
// node's RPCTimeout when the context carries no tighter deadline), and
// its cancellation severs an in-flight exchange immediately — a
// blackholed or partitioned peer can wedge one RPC for at most the
// remaining context budget, never the fixed timeout.
func (n *Node) rpc(ctx context.Context, addr string, reqType wire.Type, req any,
	respType wire.Type) ([]byte, error) {
	n.m.rpcCounter(reqType).Inc()
	rpcCtx, cancel := context.WithTimeout(ctx, n.rpcTimeout) // deadline = min(ctx, now+RPCTimeout)
	defer cancel()
	conn, err := n.tr.DialContext(rpcCtx, addr)
	if err != nil {
		return nil, fmt.Errorf("dht: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if deadline, ok := rpcCtx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	// Deadlines cover the timeout path; cancellation needs a watcher to
	// unblock reads when the caller gives up early.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-rpcCtx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, reqType, blob); err != nil {
		return nil, err
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		if ctxErr := rpcCtx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return nil, fmt.Errorf("dht: rpc to %s: %w", addr, err)
	}
	if frame.Type != respType {
		return nil, fmt.Errorf("%w: got %s, want %s", wire.ErrUnexpectedFrame, frame.Type, respType)
	}
	return frame.Payload, nil
}

// Ping checks liveness and introduces this node to addr.
func (n *Node) Ping(ctx context.Context, addr string) error {
	_, err := n.rpc(ctx, addr, typePing, findNodeReq{rpcHeader: n.header()}, typePong)
	return err
}

// findNodeRPC queries one node for contacts close to target.
func (n *Node) findNodeRPC(ctx context.Context, c parsedContact, target ID) ([]parsedContact, error) {
	payload, err := n.rpc(ctx, c.addr, typeFindNode,
		findNodeReq{rpcHeader: n.header(), Target: target.String()}, typeNodes)
	if err != nil {
		n.table.remove(c.id)
		return nil, err
	}
	var resp nodesResp
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, err
	}
	return n.absorb(resp.Contacts), nil
}

// findValueRPC queries one node for a key's values (or closer nodes).
func (n *Node) findValueRPC(ctx context.Context, c parsedContact, key ID) ([]string, []parsedContact, error) {
	payload, err := n.rpc(ctx, c.addr, typeFindValue,
		findValueReq{rpcHeader: n.header(), Key: key.String()}, typeValues)
	if err != nil {
		n.table.remove(c.id)
		return nil, nil, err
	}
	var resp valuesResp
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, nil, err
	}
	return resp.Values, n.absorb(resp.Contacts), nil
}

// storeRPC stores a value on one node.
func (n *Node) storeRPC(ctx context.Context, c parsedContact, key ID, value string, ttl time.Duration) error {
	_, err := n.rpc(ctx, c.addr, typeStore, storeReq{
		rpcHeader: n.header(),
		Key:       key.String(),
		Value:     value,
		TTLSec:    int(ttl / time.Second),
	}, typeStored)
	if err != nil {
		n.table.remove(c.id)
	}
	return err
}

// absorb parses remote contacts into the routing table.
func (n *Node) absorb(cs []Contact) []parsedContact {
	out := make([]parsedContact, 0, len(cs))
	for _, c := range cs {
		p, err := c.parse()
		if err != nil || p.id == n.id {
			continue
		}
		n.table.observe(p)
		out = append(out, p)
	}
	return out
}

// Join bootstraps the node into the network through one known address.
func (n *Node) Join(ctx context.Context, bootstrapAddr string) error {
	boot := parsedContact{id: NodeIDFromAddr(bootstrapAddr), addr: bootstrapAddr}
	n.table.observe(boot)
	if err := n.Ping(ctx, bootstrapAddr); err != nil {
		n.table.remove(boot.id)
		return fmt.Errorf("dht: join: %w", err)
	}
	// Locate ourselves: populates the table with our neighbourhood.
	_, _, _, err := n.iterativeFind(ctx, n.id, false)
	return err
}

// lookupState tracks an iterative lookup's shortlist.
type lookupState struct {
	target  ID
	queried map[ID]bool
	short   []parsedContact
}

func (s *lookupState) add(cs []parsedContact) {
	seen := make(map[ID]bool, len(s.short))
	for _, c := range s.short {
		seen[c.id] = true
	}
	for _, c := range cs {
		if !seen[c.id] {
			s.short = append(s.short, c)
			seen[c.id] = true
		}
	}
	sort.Slice(s.short, func(i, j int) bool {
		if s.short[i].id == s.short[j].id {
			return false
		}
		return lessDistance(s.target, s.short[i].id, s.short[j].id)
	})
	if len(s.short) > 2*K {
		s.short = s.short[:2*K]
	}
}

func (s *lookupState) nextBatch() []parsedContact {
	out := make([]parsedContact, 0, Alpha)
	for _, c := range s.short {
		if len(out) == Alpha {
			break
		}
		if !s.queried[c.id] {
			out = append(out, c)
			s.queried[c.id] = true
		}
	}
	return out
}

// iterativeFind runs the Kademlia lookup. With wantValue it returns
// the first values found; otherwise it converges on the K closest
// contacts to target, returned as the shortlist. The shortlist — not
// the routing table, which a TableCap may have thinned — is the
// authoritative closest-set for replica placement. The returned hop
// count is the number of Alpha-parallel query rounds issued.
func (n *Node) iterativeFind(ctx context.Context, target ID, wantValue bool) ([]string, []parsedContact, int, error) {
	state := &lookupState{target: target, queried: make(map[ID]bool)}
	state.add(n.table.closest(target, K))
	hops := 0

	closest := func() []parsedContact {
		if len(state.short) > K {
			return state.short[:K]
		}
		return state.short
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, closest(), hops, err
		}
		batch := state.nextBatch()
		if len(batch) == 0 {
			if wantValue {
				return nil, closest(), hops, ErrNotFound
			}
			return nil, closest(), hops, nil
		}
		hops++
		type result struct {
			values   []string
			contacts []parsedContact
		}
		results := make(chan result, len(batch))
		for _, c := range batch {
			go func(c parsedContact) {
				var res result
				if wantValue {
					res.values, res.contacts, _ = n.findValueRPC(ctx, c, target)
				} else {
					res.contacts, _ = n.findNodeRPC(ctx, c, target)
				}
				results <- res
			}(c)
		}
		var values []string
		for range batch {
			res := <-results
			values = append(values, res.values...)
			state.add(res.contacts)
		}
		if wantValue && len(values) > 0 {
			return dedupe(values), closest(), hops, nil
		}
	}
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Announce replicates key -> value on the K nodes closest to key
// (including this node if it is among them). A zero ttl uses the
// node's maximum.
func (n *Node) Announce(ctx context.Context, key ID, value string, ttl time.Duration) error {
	if ttl <= 0 {
		ttl = n.maxTTL
	}
	_, targets, _, err := n.iterativeFind(ctx, key, false)
	if err != nil {
		return err
	}
	// Count ourselves as a candidate replica only if we can serve.
	all := append([]parsedContact{}, targets...)
	if n.Serving() {
		all = append(all, parsedContact{id: n.id, addr: n.advertise})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].id == all[j].id {
			return false
		}
		return lessDistance(key, all[i].id, all[j].id)
	})
	if len(all) > K {
		all = all[:K]
	}
	stored := 0
	for _, c := range all {
		if c.id == n.id {
			n.storeLocal(key, value, int(ttl/time.Second))
			stored++
			continue
		}
		if err := n.storeRPC(ctx, c, key, value, ttl); err == nil {
			stored++
		}
	}
	if stored == 0 {
		return fmt.Errorf("dht: announce stored on 0 replicas")
	}
	return nil
}

// LookupResult carries a lookup's values and its cost.
type LookupResult struct {
	Values []string

	// Hops is the number of Alpha-parallel query rounds the iterative
	// lookup issued; 0 means the value was resolved locally.
	Hops int
}

// Lookup resolves a key to its values via iterative search, checking
// the local store first.
func (n *Node) Lookup(ctx context.Context, key ID) ([]string, error) {
	res, err := n.LookupStats(ctx, key)
	return res.Values, err
}

// LookupStats is Lookup with cost accounting, feeding the
// dht_lookup_hops histogram.
func (n *Node) LookupStats(ctx context.Context, key ID) (LookupResult, error) {
	if local := n.loadLocal(key); len(local) > 0 {
		n.m.lookupHops.Observe(0)
		return LookupResult{Values: dedupe(local)}, nil
	}
	values, _, hops, err := n.iterativeFind(ctx, key, true)
	n.m.lookupHops.Observe(uint64(hops))
	if err != nil {
		return LookupResult{Hops: hops}, err
	}
	return LookupResult{Values: values, Hops: hops}, nil
}
