// Package dht implements a Kademlia-style distributed hash table for
// decentralized content location — the role Chord/Pastry/Tapestry play
// in the paper's related work (Sec. II): mapping a file-id to the
// addresses of the peers storing its messages, with no central tracker.
//
// Design notes (documented simplifications versus full Kademlia):
//
//   - node and key identifiers are 256-bit SHA-256 values compared by
//     XOR distance;
//   - the routing table is a capacity-bounded contact set rather than
//     per-prefix k-buckets: closest-to-self contacts are retained, which
//     preserves lookup convergence for the network sizes a bandwidth
//     co-op realistically has (tens to hundreds of peers);
//   - values are soft-state (TTL) strings, replicated on the K nodes
//     closest to the key, exactly like tracker announcements.
//
// RPCs run over short-lived TCP connections using the asymshare wire
// framing with JSON payloads: PING, FIND_NODE, STORE and FIND_VALUE.
package dht

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// IDLen is the identifier length in bytes.
const IDLen = 32

// ID is a 256-bit DHT identifier.
type ID [IDLen]byte

// NodeIDFromAddr derives a node's identifier from its advertised
// address.
func NodeIDFromAddr(addr string) ID {
	return sha256.Sum256([]byte("node:" + addr))
}

// KeyFromFileID derives the DHT key for a generation's file-id.
func KeyFromFileID(fileID uint64) ID {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], fileID)
	h := sha256.New()
	h.Write([]byte("file:"))
	h.Write(b[:])
	var id ID
	h.Sum(id[:0])
	return id
}

// String returns the hex form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ParseID parses a hex identifier.
func ParseID(s string) (ID, error) {
	var id ID
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != IDLen {
		return id, fmt.Errorf("dht: bad id %q", s)
	}
	copy(id[:], raw)
	return id, nil
}

// xorDistance returns the XOR metric between two identifiers.
func xorDistance(a, b ID) ID {
	var d ID
	for i := range d {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// lessDistance reports whether a is strictly closer to target than b.
func lessDistance(target, a, b ID) bool {
	da := xorDistance(target, a)
	db := xorDistance(target, b)
	return bytes.Compare(da[:], db[:]) < 0
}

// Contact is a known node. Beyond the DHT RPC address, a contact may
// carry the node's sibling service addresses: Serve is the peer
// protocol endpoint (what gets announced for fetches) and Gossip the
// rumor-dissemination endpoint, so a gossip engine can pick random
// partners straight out of the routing table without a second lookup.
type Contact struct {
	ID     string `json:"id"` // hex
	Addr   string `json:"addr"`
	Serve  string `json:"serve,omitempty"`
	Gossip string `json:"gossip,omitempty"`
}

// parsedContact pairs the decoded identifier with the addresses.
type parsedContact struct {
	id     ID
	addr   string
	serve  string
	gossip string
}

func (c Contact) parse() (parsedContact, error) {
	id, err := ParseID(c.ID)
	if err != nil {
		return parsedContact{}, err
	}
	if c.Addr == "" {
		return parsedContact{}, fmt.Errorf("dht: contact without address")
	}
	return parsedContact{id: id, addr: c.Addr, serve: c.Serve, gossip: c.Gossip}, nil
}

func (p parsedContact) wire() Contact {
	return Contact{ID: p.id.String(), Addr: p.addr, Serve: p.serve, Gossip: p.gossip}
}
