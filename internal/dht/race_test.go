package dht

// Concurrency coverage for the routing table and the Alpha-parallel
// lookup path, meant to run under -race (make race-dht). The seeded
// package had none; the gossip engine now drives RandomContacts from
// many goroutines while RPC handlers observe senders concurrently.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func raceContact(t *testing.T, i int) parsedContact {
	t.Helper()
	c, err := Contact{
		ID:   NodeIDFromAddr(fmt.Sprintf("race-%d", i)).String(),
		Addr: fmt.Sprintf("10.0.0.%d:7", i%250+1),
	}.parse()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTableConcurrentObserveClosestRandom(t *testing.T) {
	tb := newTable(NodeIDFromAddr("self"), 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch i % 4 {
				case 0:
					tb.observe(raceContact(t, g*1000+i))
				case 1:
					tb.closest(NodeIDFromAddr(fmt.Sprintf("t%d", i)), K)
				case 2:
					tb.random(5)
				case 3:
					tb.remove(raceContact(t, g*1000+i-3).id)
				}
			}
		}(g)
	}
	wg.Wait()
	if tb.size() > 64 {
		t.Fatalf("table exceeded its cap: %d", tb.size())
	}
}

// startTCPNode boots a serving node on a real localhost listener.
func startTCPNode(t *testing.T) *Node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestConcurrentLookupsAndAnnounces(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const nodes = 6
	net_ := make([]*Node, nodes)
	for i := range net_ {
		net_[i] = startTCPNode(t)
	}
	for i := 1; i < nodes; i++ {
		if err := net_[i].Join(ctx, net_[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent announces and lookups of overlapping keys from every
	// node, racing against table refreshes.
	var wg sync.WaitGroup
	errs := make(chan error, nodes*3)
	for i, n := range net_ {
		wg.Add(3)
		go func(i int, n *Node) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				key := KeyFromFileID(uint64(k % 3))
				if err := n.Announce(ctx, key, fmt.Sprintf("peer-%d-%d:1", i, k), time.Minute); err != nil {
					errs <- fmt.Errorf("announce node %d key %d: %w", i, k, err)
					return
				}
			}
		}(i, n)
		go func(i int, n *Node) {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				// Keys may not be announced yet; ErrNotFound is fine, a
				// data race is not.
				_, _ = n.Lookup(ctx, KeyFromFileID(uint64(k%3)))
			}
		}(i, n)
		go func(i int, n *Node) {
			defer wg.Done()
			n.Refresh(ctx)
			n.RandomContacts(4)
		}(i, n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the storm every node resolves every key.
	for k := 0; k < 3; k++ {
		vals, err := net_[nodes-1].Lookup(ctx, KeyFromFileID(uint64(k)))
		if err != nil {
			t.Fatalf("post-storm lookup key %d: %v", k, err)
		}
		if len(vals) == 0 {
			t.Fatalf("post-storm lookup key %d returned no values", k)
		}
	}
}
