package dht

import (
	"math/bits"
	"math/rand"
	"sort"
	"sync"
)

// table is a bounded routing table that keeps contacts spread across
// XOR-distance bands: when full, it evicts from the most-populated
// band. Evicting the globally farthest contact instead would collapse
// the table into a self-neighbourhood — greedy routing then stalls
// mid-ring and capped-table lookups dead-end. Per-band eviction
// preserves Kademlia's invariant (contacts at every distance scale,
// crowded far bands trimmed first) with a single capacity knob
// instead of per-prefix k-buckets.
type table struct {
	self ID
	cap  int

	mu       sync.Mutex
	contacts map[ID]parsedContact
}

func newTable(self ID, capacity int) *table {
	if capacity <= 0 {
		capacity = 128
	}
	return &table{self: self, cap: capacity, contacts: make(map[ID]parsedContact)}
}

// bucketIndex is the position of the highest set bit of the XOR
// distance between self and id: 0 for the farthest half of the ID
// space, growing as contacts get closer. Uniformly distributed swarms
// put ~half their nodes in band 0, a quarter in band 1, and so on —
// so the crowded bands are always the far ones.
func bucketIndex(self, id ID) int {
	d := xorDistance(self, id)
	for i, b := range d {
		if b != 0 {
			return i*8 + bits.LeadingZeros8(b)
		}
	}
	return IDLen*8 - 1
}

// observe records a live contact (any node we heard from or about).
func (t *table) observe(c parsedContact) {
	if c.id == t.self {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.contacts[c.id]; ok {
		t.contacts[c.id] = c // refresh address
		return
	}
	t.contacts[c.id] = c
	if len(t.contacts) <= t.cap {
		return
	}
	// Evict from the most-populated distance band (ties to the
	// farther band), dropping its farthest-from-self member.
	counts := make(map[int]int)
	for id := range t.contacts {
		counts[bucketIndex(t.self, id)]++
	}
	crowded, best := -1, 0
	for b, n := range counts {
		if n > best || (n == best && (crowded == -1 || b < crowded)) {
			crowded, best = b, n
		}
	}
	var worst ID
	first := true
	for id := range t.contacts {
		if bucketIndex(t.self, id) != crowded {
			continue
		}
		if first || lessDistance(t.self, worst, id) {
			worst = id
			first = false
		}
	}
	delete(t.contacts, worst)
}

// remove drops a dead contact.
func (t *table) remove(id ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.contacts, id)
}

// closest returns up to k known contacts nearest to target.
func (t *table) closest(target ID, k int) []parsedContact {
	t.mu.Lock()
	out := make([]parsedContact, 0, len(t.contacts))
	for _, c := range t.contacts {
		out = append(out, c)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].id == out[j].id {
			return false
		}
		return lessDistance(target, out[i].id, out[j].id)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// random returns up to k contacts drawn uniformly without replacement.
func (t *table) random(k int) []parsedContact {
	t.mu.Lock()
	all := make([]parsedContact, 0, len(t.contacts))
	for _, c := range t.contacts {
		all = append(all, c)
	}
	t.mu.Unlock()
	// Map iteration order is already randomized, but not uniformly;
	// shuffle for an unbiased sample.
	rand.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// size returns the contact count.
func (t *table) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.contacts)
}
