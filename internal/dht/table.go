package dht

import (
	"sort"
	"sync"
)

// table is the simplified routing table: a bounded set of contacts,
// evicting the contact farthest from self when full. See the package
// comment for the trade-off versus per-prefix k-buckets.
type table struct {
	self ID
	cap  int

	mu       sync.Mutex
	contacts map[ID]parsedContact
}

func newTable(self ID, capacity int) *table {
	if capacity <= 0 {
		capacity = 128
	}
	return &table{self: self, cap: capacity, contacts: make(map[ID]parsedContact)}
}

// observe records a live contact (any node we heard from or about).
func (t *table) observe(c parsedContact) {
	if c.id == t.self {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.contacts[c.id]; ok {
		t.contacts[c.id] = c // refresh address
		return
	}
	t.contacts[c.id] = c
	if len(t.contacts) <= t.cap {
		return
	}
	// Evict the contact farthest from self.
	var worst ID
	first := true
	for id := range t.contacts {
		if first || lessDistance(t.self, worst, id) {
			worst = id
			first = false
		}
	}
	delete(t.contacts, worst)
}

// remove drops a dead contact.
func (t *table) remove(id ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.contacts, id)
}

// closest returns up to k known contacts nearest to target.
func (t *table) closest(target ID, k int) []parsedContact {
	t.mu.Lock()
	out := make([]parsedContact, 0, len(t.contacts))
	for _, c := range t.contacts {
		out = append(out, c)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].id == out[j].id {
			return false
		}
		return lessDistance(target, out[i].id, out[j].id)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// size returns the contact count.
func (t *table) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.contacts)
}
