package dht

// Exposition rows for the DHT instruments — pins the series names and
// label sets dashboards scrape (DESIGN.md §7).

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"asymshare/internal/metrics"
)

func startMeteredNode(t *testing.T, reg *metrics.Registry) *Node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Advertise: ln.Addr().String(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestPrometheusExpositionRows(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reg := metrics.NewRegistry()
	a := startMeteredNode(t, reg)
	b := startMeteredNode(t, nil)
	if err := a.Join(ctx, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Ping(ctx, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Announce(ctx, KeyFromFileID(1), "peer:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Lookup(ctx, KeyFromFileID(1)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, row := range []string{
		"# TYPE dht_rpcs_total counter",
		`dht_rpcs_total{type="ping"}`,
		`dht_rpcs_total{type="find_node"}`,
		`dht_rpcs_total{type="store"} 1`,
		"# TYPE dht_lookup_hops histogram",
		"dht_lookup_hops_count 1",
	} {
		if !strings.Contains(got, row) {
			t.Errorf("exposition missing row %q\n--- got ---\n%s", row, got)
		}
	}
}
