package dht

// RPC budget tests: a wedged remote must cost the caller at most its
// own context budget, never the node's full RPCTimeout — otherwise a
// netsim latency or partition fault can stall an Alpha-parallel lookup
// far past its deadline.

import (
	"context"
	"net"
	"testing"
	"time"
)

// stallListener accepts connections and never answers — the
// application-dead remote that exposes missing deadline plumbing.
func stallListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, say nothing
		}
	}()
	return ln
}

func TestRPCHonorsCallerDeadline(t *testing.T) {
	ln := stallListener(t)
	n, err := NewNode("127.0.0.1:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := n.Ping(ctx, ln.Addr().String()); err == nil {
		t.Fatal("ping of a stalled remote succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("ping against 150ms budget took %v (fixed rpcTimeout leaked through)", elapsed)
	}
}

func TestRPCHonorsCallerCancellation(t *testing.T) {
	ln := stallListener(t)
	n, err := NewNode("127.0.0.1:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// No deadline at all: only cancellation can unwedge the read.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() { errc <- n.Ping(ctx, ln.Addr().String()) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled ping succeeded")
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("cancellation took %v to unwedge the RPC", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation never unwedged the RPC (pre-fix behaviour: blocks the full rpcTimeout)")
	}
}

func TestLookupBoundedByContextUnderStalls(t *testing.T) {
	// A shortlist full of stalling contacts: the whole iterative lookup
	// must return once the context budget is spent, not 3s per wave.
	stall := stallListener(t)
	n, err := New(Config{Advertise: "127.0.0.1:1", RPCTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 6; i++ {
		c, err := Contact{ID: NodeIDFromAddr(string(rune('a' + i))).String(), Addr: stall.Addr().String()}.parse()
		if err != nil {
			t.Fatal(err)
		}
		n.table.observe(c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := n.Lookup(ctx, KeyFromFileID(7)); err == nil {
		t.Fatal("lookup across stalled contacts succeeded")
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("lookup with a 200ms budget took %v", elapsed)
	}
}
