package dht

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// startNode binds a loopback port, creates a node advertising it, and
// starts serving.
func startNode(t *testing.T) *Node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// buildNetwork boots count nodes, all joined through the first.
func buildNetwork(t *testing.T, count int) []*Node {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	nodes := make([]*Node, count)
	for i := range nodes {
		nodes[i] = startNode(t)
	}
	for i := 1; i < count; i++ {
		if err := nodes[i].Join(ctx, nodes[0].Addr()); err != nil {
			t.Fatalf("node %d join: %v", i, err)
		}
	}
	return nodes
}

func TestIDHelpers(t *testing.T) {
	a := NodeIDFromAddr("host:1")
	b := NodeIDFromAddr("host:2")
	if a == b {
		t.Fatal("distinct addresses produced identical ids")
	}
	if a != NodeIDFromAddr("host:1") {
		t.Fatal("id derivation not deterministic")
	}
	parsed, err := ParseID(a.String())
	if err != nil || parsed != a {
		t.Fatalf("ParseID round trip: %v", err)
	}
	if _, err := ParseID("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseID("abcd"); err == nil {
		t.Error("short id accepted")
	}
	if xorDistance(a, a) != (ID{}) {
		t.Error("self distance not zero")
	}
	if !lessDistance(a, a, b) {
		t.Error("a not closest to itself")
	}
}

func TestContactParse(t *testing.T) {
	good := Contact{ID: NodeIDFromAddr("x:1").String(), Addr: "x:1"}
	if _, err := good.parse(); err != nil {
		t.Fatal(err)
	}
	if _, err := (Contact{ID: "bad", Addr: "x"}).parse(); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := (Contact{ID: good.ID}).parse(); err == nil {
		t.Error("missing addr accepted")
	}
}

func TestTableObserveClosestEvict(t *testing.T) {
	self := NodeIDFromAddr("self:0")
	tb := newTable(self, 4)
	for i := 0; i < 10; i++ {
		addr := fmt.Sprintf("n%d:1", i)
		tb.observe(parsedContact{id: NodeIDFromAddr(addr), addr: addr})
	}
	if tb.size() != 4 {
		t.Fatalf("table size = %d, want cap 4", tb.size())
	}
	// Self is never stored.
	tb.observe(parsedContact{id: self, addr: "self:0"})
	if tb.size() != 4 {
		t.Error("self was stored")
	}
	// closest returns sorted-by-distance contacts.
	target := NodeIDFromAddr("t:9")
	cs := tb.closest(target, 3)
	for i := 1; i < len(cs); i++ {
		if lessDistance(target, cs[i].id, cs[i-1].id) {
			t.Fatal("closest not sorted")
		}
	}
}

func TestJoinPopulatesTables(t *testing.T) {
	nodes := buildNetwork(t, 8)
	for i, n := range nodes {
		if n.TableSize() == 0 {
			t.Errorf("node %d knows nobody", i)
		}
	}
}

func TestAnnounceAndLookupAcrossNetwork(t *testing.T) {
	nodes := buildNetwork(t, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	key := KeyFromFileID(12345)
	if err := nodes[3].Announce(ctx, key, "peerA:7070", 0); err != nil {
		t.Fatal(err)
	}
	if err := nodes[7].Announce(ctx, key, "peerB:7070", 0); err != nil {
		t.Fatal(err)
	}

	// Every node can resolve the key, regardless of where it announced.
	for i, n := range nodes {
		got, err := n.Lookup(ctx, key)
		if err != nil {
			t.Fatalf("node %d lookup: %v", i, err)
		}
		if len(got) != 2 || got[0] != "peerA:7070" || got[1] != "peerB:7070" {
			t.Fatalf("node %d lookup = %v", i, got)
		}
	}
}

// TestCappedTableAnnouncePlacement pins the replica-placement fix:
// with tight TableCaps, Announce must place replicas on the lookup's
// converged shortlist (the true K closest), not on whatever survived
// in the announcer's thinned table — otherwise readers, whose
// iterative lookups do converge globally, miss every replica.
func TestCappedTableAnnouncePlacement(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const n = 40
	nodes := make([]*Node, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node, err := New(Config{Advertise: ln.Addr().String(), TableCap: 6})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.StartListener(ln); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(ctx, nodes[0].Addr()); err != nil {
			t.Fatalf("node %d join: %v", i, err)
		}
	}
	// One bucket-refresh wave so every table reflects the full swarm,
	// not its join-time snapshot.
	for _, node := range nodes {
		node.Refresh(ctx)
	}

	key := KeyFromFileID(777)
	if err := nodes[1].Announce(ctx, key, "peerX:7070", 0); err != nil {
		t.Fatal(err)
	}
	for i, node := range nodes {
		got, err := node.Lookup(ctx, key)
		if err != nil {
			t.Fatalf("node %d lookup with capped tables: %v", i, err)
		}
		if len(got) != 1 || got[0] != "peerX:7070" {
			t.Fatalf("node %d lookup = %v", i, got)
		}
	}
}

// TestTableEvictionKeepsDistanceBands pins the capped table's spread:
// eviction trims the crowded far bands but never empties them, so a
// saturated table still spans multiple distance scales (the property
// greedy routing needs to make progress across the ring).
func TestTableEvictionKeepsDistanceBands(t *testing.T) {
	self := NodeIDFromAddr("self:0")
	tb := newTable(self, 8)
	for i := 0; i < 500; i++ {
		addr := fmt.Sprintf("n%d:1", i)
		tb.observe(parsedContact{id: NodeIDFromAddr(addr), addr: addr})
	}
	if tb.size() != 8 {
		t.Fatalf("table size = %d, want cap 8", tb.size())
	}
	bands := make(map[int]int)
	for _, c := range tb.closest(self, 8) {
		bands[bucketIndex(self, c.id)]++
	}
	if len(bands) < 3 {
		t.Fatalf("capped table collapsed to %d distance bands: %v", len(bands), bands)
	}
	for band, count := range bands {
		if count > 4 {
			t.Fatalf("band %d hoards %d of 8 slots: %v", band, count, bands)
		}
	}
}

func TestLookupUnknownKey(t *testing.T) {
	nodes := buildNetwork(t, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_, err := nodes[2].Lookup(ctx, KeyFromFileID(999999))
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown key error = %v, want ErrNotFound", err)
	}
}

func TestLookupSurvivesReplicaFailures(t *testing.T) {
	nodes := buildNetwork(t, 12)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	key := KeyFromFileID(777)
	if err := nodes[1].Announce(ctx, key, "peerZ:7070", 0); err != nil {
		t.Fatal(err)
	}
	// Kill a third of the network (values live on K=8 replicas, so a
	// few must survive).
	for i := 2; i < 6; i++ {
		nodes[i].Close()
	}
	got, err := nodes[11].Lookup(ctx, key)
	if err != nil {
		t.Fatalf("lookup after failures: %v", err)
	}
	if len(got) != 1 || got[0] != "peerZ:7070" {
		t.Fatalf("lookup = %v", got)
	}
}

func TestValueExpiry(t *testing.T) {
	n, err := NewNode("local:1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	n.now = func() time.Time { return now }
	key := KeyFromFileID(5)
	n.storeLocal(key, "v1", 60)   // 1 minute
	n.storeLocal(key, "v2", 7200) // capped at 1 hour
	if got := n.loadLocal(key); len(got) != 2 {
		t.Fatalf("loadLocal = %v", got)
	}
	now = now.Add(2 * time.Minute)
	if got := n.loadLocal(key); len(got) != 1 || got[0] != "v2" {
		t.Fatalf("after short expiry = %v", got)
	}
	now = now.Add(2 * time.Hour)
	if got := n.loadLocal(key); len(got) != 0 {
		t.Fatalf("after cap expiry = %v", got)
	}
}

func TestJoinDeadBootstrap(t *testing.T) {
	n := startNode(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := n.Join(ctx, "127.0.0.1:1"); err == nil {
		t.Error("join via dead bootstrap succeeded")
	}
	if n.TableSize() != 0 {
		t.Error("dead bootstrap left in table")
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode("", 0); err == nil {
		t.Error("empty advertise accepted")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	n := startNode(t)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	// A 12-node network with one announced key: steady-state resolve
	// latency including the iterative routing.
	nodes := make([]*Node, 12)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		n, err := NewNode(ln.Addr().String(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := n.StartListener(ln); err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	ctx := context.Background()
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Join(ctx, nodes[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	key := KeyFromFileID(42)
	if err := nodes[1].Announce(ctx, key, "peer:1", 0); err != nil {
		b.Fatal(err)
	}
	// Benchmark from a node that is NOT a replica-local hit if
	// possible; worst case it is, which only makes the number better.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[11].Lookup(ctx, key); err != nil {
			b.Fatal(err)
		}
	}
}
