package dht

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"asymshare/internal/metrics"
	"asymshare/internal/transport"
	"asymshare/internal/wire"
)

// RPC frame types, in a range disjoint from the peer and tracker
// protocols.
const (
	typePing wire.Type = 96 + iota
	typePong
	typeFindNode
	typeNodes
	typeStore
	typeStored
	typeFindValue
	typeValues
)

// Protocol constants.
const (
	// K is the replication factor: values live on the K nodes closest
	// to their key, and FIND_NODE returns up to K contacts.
	K = 8

	// Alpha is the lookup parallelism.
	Alpha = 3

	// DefaultTTL bounds value lifetime without refresh.
	DefaultTTL = 10 * time.Minute

	// DefaultRPCTimeout caps one RPC exchange when the caller's context
	// carries no tighter deadline. The caller's deadline always wins:
	// the effective per-RPC bound is min(ctx deadline, this).
	DefaultRPCTimeout = 3 * time.Second

	// DefaultMaxValuesPerKey bounds the replica value set one node keeps
	// per key. In large swarms every storage peer announces itself under
	// the same file key; without a cap the K closest nodes would
	// accumulate the whole swarm. Newer announcements evict the
	// soonest-expiring values.
	DefaultMaxValuesPerKey = 64
)

// ErrNotFound is returned by Lookup when no value is reachable.
var ErrNotFound = errors.New("dht: value not found")

// Exported metric names (see DESIGN.md §7).
const (
	MetricRPCs       = "dht_rpcs_total"
	MetricLookupHops = "dht_lookup_hops"
)

// Every request carries the sender's contact so receivers learn the
// network passively.
type rpcHeader struct {
	FromID     string `json:"fromId"`
	FromAddr   string `json:"fromAddr"`
	FromServe  string `json:"fromServe,omitempty"`
	FromGossip string `json:"fromGossip,omitempty"`
}

type findNodeReq struct {
	rpcHeader
	Target string `json:"target"`
}

type nodesResp struct {
	Contacts []Contact `json:"contacts"`
}

type storeReq struct {
	rpcHeader
	Key    string `json:"key"`
	Value  string `json:"value"`
	TTLSec int    `json:"ttlSec,omitempty"`
}

type findValueReq struct {
	rpcHeader
	Key string `json:"key"`
}

type valuesResp struct {
	Values   []string  `json:"values,omitempty"`
	Contacts []Contact `json:"contacts,omitempty"`
}

type storedValue struct {
	expires time.Time
}

// Config configures a Node.
type Config struct {
	// Advertise is the RPC address other nodes dial, and the node-id
	// seed. Required.
	Advertise string

	// MaxTTL caps stored value lifetimes; zero means DefaultTTL.
	MaxTTL time.Duration

	// Transport carries the node's RPCs; nil means real TCP
	// (transport.Default). Tests attach an in-memory netsim host here so
	// the DHT runs identically on TCP and inside the simulator.
	Transport transport.Transport

	// ServeAddr, when set, rides along in this node's contact records:
	// the peer-protocol address of the co-located storage peer.
	ServeAddr string

	// GossipAddr, when set, rides along in contact records: the
	// co-located gossip engine's address, letting other engines pick
	// random partners out of their routing tables.
	GossipAddr string

	// TableCap bounds the routing table; zero means 128.
	TableCap int

	// RPCTimeout caps one RPC when the caller's context has no tighter
	// deadline; zero means DefaultRPCTimeout.
	RPCTimeout time.Duration

	// RefreshInterval, when positive, runs a background table refresh
	// (a lookup of the node's own id plus a random id) at this period,
	// keeping buckets populated as the swarm churns.
	RefreshInterval time.Duration

	// MaxValuesPerKey bounds the replica set kept per key; zero means
	// DefaultMaxValuesPerKey.
	MaxValuesPerKey int

	// Metrics, when set, receives dht_rpcs_total (by RPC type) and the
	// dht_lookup_hops histogram. Nil disables instrumentation.
	Metrics *metrics.Registry
}

// nodeMetrics holds the node's instrument handles; the zero value
// (every field nil) records nothing.
type nodeMetrics struct {
	rpcPing      *metrics.Counter
	rpcFindNode  *metrics.Counter
	rpcStore     *metrics.Counter
	rpcFindValue *metrics.Counter
	lookupHops   *metrics.Histogram
}

func newNodeMetrics(reg *metrics.Registry) nodeMetrics {
	if reg == nil {
		return nodeMetrics{}
	}
	const help = "DHT RPCs issued, by type."
	return nodeMetrics{
		rpcPing:      reg.Counter(MetricRPCs, help, metrics.L("type", "ping")),
		rpcFindNode:  reg.Counter(MetricRPCs, help, metrics.L("type", "find_node")),
		rpcStore:     reg.Counter(MetricRPCs, help, metrics.L("type", "store")),
		rpcFindValue: reg.Counter(MetricRPCs, help, metrics.L("type", "find_value")),
		lookupHops:   reg.Histogram(MetricLookupHops, "Iterative lookup round count.", metrics.UnitNone),
	}
}

func (m *nodeMetrics) rpcCounter(t wire.Type) *metrics.Counter {
	switch t {
	case typePing:
		return m.rpcPing
	case typeFindNode:
		return m.rpcFindNode
	case typeStore:
		return m.rpcStore
	case typeFindValue:
		return m.rpcFindValue
	}
	return nil
}

// Node is one DHT participant.
type Node struct {
	id         ID
	advertise  string
	serveAddr  string
	gossipAddr string
	table      *table
	maxTTL     time.Duration
	maxValues  int
	rpcTimeout time.Duration
	refresh    time.Duration
	tr         transport.Transport
	m          nodeMetrics
	now        func() time.Time

	mu      sync.Mutex
	values  map[ID]map[string]storedValue // key -> value -> expiry
	ln      net.Listener
	serving bool
	closed  bool
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
}

// NewNode creates a node that will advertise the given address to
// other nodes (usually the listen address). maxTTL caps stored value
// lifetimes; zero means DefaultTTL.
func NewNode(advertise string, maxTTL time.Duration) (*Node, error) {
	return New(Config{Advertise: advertise, MaxTTL: maxTTL})
}

// New creates a node from a full configuration.
func New(cfg Config) (*Node, error) {
	if cfg.Advertise == "" {
		return nil, errors.New("dht: advertise address required")
	}
	if cfg.MaxTTL <= 0 {
		cfg.MaxTTL = DefaultTTL
	}
	if cfg.Transport == nil {
		cfg.Transport = transport.Default
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = DefaultRPCTimeout
	}
	if cfg.MaxValuesPerKey <= 0 {
		cfg.MaxValuesPerKey = DefaultMaxValuesPerKey
	}
	n := &Node{
		id:         NodeIDFromAddr(cfg.Advertise),
		advertise:  cfg.Advertise,
		serveAddr:  cfg.ServeAddr,
		gossipAddr: cfg.GossipAddr,
		table:      newTable(NodeIDFromAddr(cfg.Advertise), cfg.TableCap),
		maxTTL:     cfg.MaxTTL,
		maxValues:  cfg.MaxValuesPerKey,
		rpcTimeout: cfg.RPCTimeout,
		refresh:    cfg.RefreshInterval,
		tr:         cfg.Transport,
		m:          newNodeMetrics(cfg.Metrics),
		now:        time.Now,
	}
	n.values = make(map[ID]map[string]storedValue)
	n.ctx, n.cancel = context.WithCancel(context.Background())
	return n, nil
}

// StartListener starts serving on a pre-bound listener whose address
// matches the advertised one (used with ":0" binds: bind first, then
// New with the real address).
func (n *Node) StartListener(ln net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("dht: node closed")
	}
	n.ln = ln
	n.serving = true
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop()
	if n.refresh > 0 {
		n.wg.Add(1)
		go n.refreshLoop()
	}
	return nil
}

// Serving reports whether the node accepts RPCs (a client-only node —
// one that never started a listener — must not count itself as a
// value replica, since nobody could read from it).
func (n *Node) Serving() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.serving
}

// Start listens on the advertised address via the node's transport and
// serves.
func (n *Node) Start() error {
	ln, err := n.tr.Listen(n.advertise)
	if err != nil {
		return fmt.Errorf("dht: listen: %w", err)
	}
	return n.StartListener(ln)
}

// ID returns the node identifier.
func (n *Node) ID() ID { return n.id }

// Addr returns the advertised address.
func (n *Node) Addr() string { return n.advertise }

// TableSize reports how many contacts the node knows.
func (n *Node) TableSize() int { return n.table.size() }

// RandomContacts returns up to count uniformly random routing-table
// contacts — the random partner source for rumor gossip. Because node
// ids are address hashes, the table's closest-to-self neighbourhood is
// itself a near-uniform sample of the swarm.
func (n *Node) RandomContacts(count int) []Contact {
	return wireContacts(n.table.random(count))
}

// Close stops the node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ln := n.ln
	n.mu.Unlock()
	n.cancel()
	if ln != nil {
		ln.Close()
	}
	n.wg.Wait()
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			_ = conn.SetDeadline(n.now().Add(n.rpcTimeout))
			n.handle(conn)
		}()
	}
}

// refreshLoop periodically re-runs the self lookup (repopulating the
// neighbourhood) and a random-target lookup (discovering far buckets),
// so the table tracks the live swarm instead of its join-time snapshot.
func (n *Node) refreshLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.refresh)
	defer ticker.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-ticker.C:
			n.Refresh(n.ctx)
		}
	}
}

// Refresh runs one table refresh round immediately.
func (n *Node) Refresh(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, 4*n.rpcTimeout)
	defer cancel()
	_, _, _, _ = n.iterativeFind(ctx, n.id, false)
	random := NodeIDFromAddr(fmt.Sprintf("refresh:%s:%d", n.advertise, n.now().UnixNano()))
	_, _, _, _ = n.iterativeFind(ctx, random, false)
}

func (n *Node) header() rpcHeader {
	return rpcHeader{
		FromID:     n.id.String(),
		FromAddr:   n.advertise,
		FromServe:  n.serveAddr,
		FromGossip: n.gossipAddr,
	}
}

func (n *Node) observeSender(h rpcHeader) {
	c, err := Contact{ID: h.FromID, Addr: h.FromAddr, Serve: h.FromServe, Gossip: h.FromGossip}.parse()
	if err == nil {
		n.table.observe(c)
	}
}

func (n *Node) handle(conn net.Conn) {
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		return
	}
	switch frame.Type {
	case typePing:
		var req findNodeReq // header only
		if json.Unmarshal(frame.Payload, &req) == nil {
			n.observeSender(req.rpcHeader)
		}
		_ = wire.WriteFrame(conn, typePong, nil)
	case typeFindNode:
		var req findNodeReq
		if err := json.Unmarshal(frame.Payload, &req); err != nil {
			return
		}
		n.observeSender(req.rpcHeader)
		target, err := ParseID(req.Target)
		if err != nil {
			return
		}
		n.reply(conn, typeNodes, nodesResp{Contacts: wireContacts(n.table.closest(target, K))})
	case typeStore:
		var req storeReq
		if err := json.Unmarshal(frame.Payload, &req); err != nil {
			return
		}
		n.observeSender(req.rpcHeader)
		key, err := ParseID(req.Key)
		if err != nil || req.Value == "" {
			return
		}
		n.storeLocal(key, req.Value, req.TTLSec)
		_ = wire.WriteFrame(conn, typeStored, nil)
	case typeFindValue:
		var req findValueReq
		if err := json.Unmarshal(frame.Payload, &req); err != nil {
			return
		}
		n.observeSender(req.rpcHeader)
		key, err := ParseID(req.Key)
		if err != nil {
			return
		}
		resp := valuesResp{Values: n.loadLocal(key)}
		if len(resp.Values) == 0 {
			resp.Contacts = wireContacts(n.table.closest(key, K))
		}
		n.reply(conn, typeValues, resp)
	}
}

func (n *Node) reply(conn net.Conn, t wire.Type, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		return
	}
	_ = wire.WriteFrame(conn, t, blob)
}

func wireContacts(cs []parsedContact) []Contact {
	out := make([]Contact, len(cs))
	for i, c := range cs {
		out[i] = c.wire()
	}
	return out
}

func (n *Node) storeLocal(key ID, value string, ttlSec int) {
	ttl := n.maxTTL
	if ttlSec > 0 {
		if req := time.Duration(ttlSec) * time.Second; req < ttl {
			ttl = req
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.values[key]
	if !ok {
		m = make(map[string]storedValue)
		n.values[key] = m
	}
	m[value] = storedValue{expires: n.now().Add(ttl)}
	// Keep the replica set bounded: evict the soonest-expiring values
	// (the stalest announcements) so fresh announcers stay resolvable.
	for len(m) > n.maxValues {
		var victim string
		var victimExp time.Time
		first := true
		for v, sv := range m {
			if v == value {
				continue // never evict the value just announced
			}
			if first || sv.expires.Before(victimExp) {
				victim, victimExp = v, sv.expires
				first = false
			}
		}
		if first {
			break
		}
		delete(m, victim)
	}
}

func (n *Node) loadLocal(key ID) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.values[key]
	now := n.now()
	out := make([]string, 0, len(m))
	for v, sv := range m {
		if sv.expires.Before(now) {
			delete(m, v)
			continue
		}
		out = append(out, v)
	}
	if len(m) == 0 {
		delete(n.values, key)
	}
	return out
}
