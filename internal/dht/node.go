package dht

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"asymshare/internal/wire"
)

// RPC frame types, in a range disjoint from the peer and tracker
// protocols.
const (
	typePing wire.Type = 96 + iota
	typePong
	typeFindNode
	typeNodes
	typeStore
	typeStored
	typeFindValue
	typeValues
)

// Protocol constants.
const (
	// K is the replication factor: values live on the K nodes closest
	// to their key, and FIND_NODE returns up to K contacts.
	K = 8

	// Alpha is the lookup parallelism.
	Alpha = 3

	// DefaultTTL bounds value lifetime without refresh.
	DefaultTTL = 10 * time.Minute

	rpcTimeout = 3 * time.Second
)

// ErrNotFound is returned by Lookup when no value is reachable.
var ErrNotFound = errors.New("dht: value not found")

// Every request carries the sender's contact so receivers learn the
// network passively.
type rpcHeader struct {
	FromID   string `json:"fromId"`
	FromAddr string `json:"fromAddr"`
}

type findNodeReq struct {
	rpcHeader
	Target string `json:"target"`
}

type nodesResp struct {
	Contacts []Contact `json:"contacts"`
}

type storeReq struct {
	rpcHeader
	Key    string `json:"key"`
	Value  string `json:"value"`
	TTLSec int    `json:"ttlSec,omitempty"`
}

type findValueReq struct {
	rpcHeader
	Key string `json:"key"`
}

type valuesResp struct {
	Values   []string  `json:"values,omitempty"`
	Contacts []Contact `json:"contacts,omitempty"`
}

type storedValue struct {
	expires time.Time
}

// Node is one DHT participant.
type Node struct {
	id        ID
	advertise string
	table     *table
	maxTTL    time.Duration
	now       func() time.Time

	mu      sync.Mutex
	values  map[ID]map[string]storedValue // key -> value -> expiry
	ln      net.Listener
	serving bool
	closed  bool
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
}

// NewNode creates a node that will advertise the given address to
// other nodes (usually the listen address). maxTTL caps stored value
// lifetimes; zero means DefaultTTL.
func NewNode(advertise string, maxTTL time.Duration) (*Node, error) {
	if advertise == "" {
		return nil, errors.New("dht: advertise address required")
	}
	if maxTTL <= 0 {
		maxTTL = DefaultTTL
	}
	n := &Node{
		id:        NodeIDFromAddr(advertise),
		advertise: advertise,
		table:     newTable(NodeIDFromAddr(advertise), 0),
		maxTTL:    maxTTL,
		now:       time.Now,
		values:    make(map[ID]map[string]storedValue),
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	return n, nil
}

// StartListener starts serving on a pre-bound listener whose address
// matches the advertised one (used with "127.0.0.1:0" binds: bind
// first, then NewNode with the real address).
func (n *Node) StartListener(ln net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("dht: node closed")
	}
	n.ln = ln
	n.serving = true
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop()
	return nil
}

// Serving reports whether the node accepts RPCs (a client-only node —
// one that never started a listener — must not count itself as a
// value replica, since nobody could read from it).
func (n *Node) Serving() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.serving
}

// Start listens on the advertised address and serves.
func (n *Node) Start() error {
	ln, err := net.Listen("tcp", n.advertise)
	if err != nil {
		return fmt.Errorf("dht: listen: %w", err)
	}
	return n.StartListener(ln)
}

// ID returns the node identifier.
func (n *Node) ID() ID { return n.id }

// Addr returns the advertised address.
func (n *Node) Addr() string { return n.advertise }

// TableSize reports how many contacts the node knows.
func (n *Node) TableSize() int { return n.table.size() }

// Close stops the node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ln := n.ln
	n.mu.Unlock()
	n.cancel()
	if ln != nil {
		ln.Close()
	}
	n.wg.Wait()
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			_ = conn.SetDeadline(n.now().Add(rpcTimeout))
			n.handle(conn)
		}()
	}
}

func (n *Node) header() rpcHeader {
	return rpcHeader{FromID: n.id.String(), FromAddr: n.advertise}
}

func (n *Node) observeSender(h rpcHeader) {
	c, err := Contact{ID: h.FromID, Addr: h.FromAddr}.parse()
	if err == nil {
		n.table.observe(c)
	}
}

func (n *Node) handle(conn net.Conn) {
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		return
	}
	switch frame.Type {
	case typePing:
		var req findNodeReq // header only
		if json.Unmarshal(frame.Payload, &req) == nil {
			n.observeSender(req.rpcHeader)
		}
		_ = wire.WriteFrame(conn, typePong, nil)
	case typeFindNode:
		var req findNodeReq
		if err := json.Unmarshal(frame.Payload, &req); err != nil {
			return
		}
		n.observeSender(req.rpcHeader)
		target, err := ParseID(req.Target)
		if err != nil {
			return
		}
		n.reply(conn, typeNodes, nodesResp{Contacts: wireContacts(n.table.closest(target, K))})
	case typeStore:
		var req storeReq
		if err := json.Unmarshal(frame.Payload, &req); err != nil {
			return
		}
		n.observeSender(req.rpcHeader)
		key, err := ParseID(req.Key)
		if err != nil || req.Value == "" {
			return
		}
		n.storeLocal(key, req.Value, req.TTLSec)
		_ = wire.WriteFrame(conn, typeStored, nil)
	case typeFindValue:
		var req findValueReq
		if err := json.Unmarshal(frame.Payload, &req); err != nil {
			return
		}
		n.observeSender(req.rpcHeader)
		key, err := ParseID(req.Key)
		if err != nil {
			return
		}
		resp := valuesResp{Values: n.loadLocal(key)}
		if len(resp.Values) == 0 {
			resp.Contacts = wireContacts(n.table.closest(key, K))
		}
		n.reply(conn, typeValues, resp)
	}
}

func (n *Node) reply(conn net.Conn, t wire.Type, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		return
	}
	_ = wire.WriteFrame(conn, t, blob)
}

func wireContacts(cs []parsedContact) []Contact {
	out := make([]Contact, len(cs))
	for i, c := range cs {
		out[i] = c.wire()
	}
	return out
}

func (n *Node) storeLocal(key ID, value string, ttlSec int) {
	ttl := n.maxTTL
	if ttlSec > 0 {
		if req := time.Duration(ttlSec) * time.Second; req < ttl {
			ttl = req
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.values[key]
	if !ok {
		m = make(map[string]storedValue)
		n.values[key] = m
	}
	m[value] = storedValue{expires: n.now().Add(ttl)}
}

func (n *Node) loadLocal(key ID) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.values[key]
	now := n.now()
	out := make([]string, 0, len(m))
	for v, sv := range m {
		if sv.expires.Before(now) {
			delete(m, v)
			continue
		}
		out = append(out, v)
	}
	if len(m) == 0 {
		delete(n.values, key)
	}
	return out
}
