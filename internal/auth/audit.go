package auth

// Keyed spot-check primitives for storage auditing. The owner of a file
// holds the per-file coding secret; a storage peer holds only opaque
// encoded messages. To verify a peer still retains what it accepted, the
// owner derives a fresh per-challenge key from (secret, file-id, nonce)
// and sends it with the challenge. The holder answers with an HMAC over
// each sampled message's digest under that key. Because the key depends
// on a nonce drawn fresh for every challenge, answers cannot be
// precomputed and answers from one challenge (or one owner) are useless
// for any other; because the key is derived one-way from the secret,
// revealing it leaks nothing about the coding key. The owner verifies
// against the message digests it already carries in the manifest
// (Sec. III-C), so no payload is re-downloaded.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// AuditKeyLen is the length of a derived audit key in bytes.
const AuditKeyLen = sha256.Size

// AuditMACLen is the length of an audit response MAC in bytes.
const AuditMACLen = sha256.Size

// Domain-separation labels; v1 of the audit construction.
const (
	auditKeyLabel = "asymshare-audit-key-v1:"
	auditMACLabel = "asymshare-audit-mac-v1:"
)

// DeriveAuditKey derives the per-challenge audit key from the owner's
// coding secret, the audited file and a fresh nonce:
//
//	K = HMAC-SHA256(secret, label || fileID || nonce)
//
// Only the owner can derive K (it requires the secret); the holder
// receives K inside the challenge and cannot use it beyond answering
// that one challenge, since every challenge carries a new nonce.
func DeriveAuditKey(secret []byte, fileID uint64, nonce []byte) ([]byte, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("%w: empty audit secret", ErrBadKey)
	}
	if len(nonce) != ChallengeLen {
		return nil, fmt.Errorf("%w: audit nonce must be %d bytes", ErrBadKey, ChallengeLen)
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(auditKeyLabel))
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], fileID)
	mac.Write(id[:])
	mac.Write(nonce)
	return mac.Sum(nil), nil
}

// AuditMAC computes the holder's answer for one sampled message: an
// HMAC under the per-challenge key over the message coordinates and its
// content digest. The holder recomputes digest from the bytes it
// actually stores; the owner recomputes it from the manifest. Both
// sides therefore agree exactly when the holder still has the message
// the owner disseminated.
func AuditMAC(key []byte, fileID, messageID uint64, digest []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(auditMACLabel))
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:], fileID)
	binary.BigEndian.PutUint64(hdr[8:], messageID)
	mac.Write(hdr[:])
	mac.Write(digest)
	return mac.Sum(nil)
}

// VerifyAuditMAC reports whether got is the correct audit answer, in
// constant time.
func VerifyAuditMAC(key []byte, fileID, messageID uint64, digest, got []byte) bool {
	want := AuditMAC(key, fileID, messageID, digest)
	return hmac.Equal(want, got)
}
