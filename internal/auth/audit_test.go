package auth

import (
	"bytes"
	"testing"
)

func TestDeriveAuditKeyDeterministic(t *testing.T) {
	secret := bytes.Repeat([]byte{7}, 16)
	nonce := bytes.Repeat([]byte{3}, ChallengeLen)
	k1, err := DeriveAuditKey(secret, 42, nonce)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := DeriveAuditKey(secret, 42, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k2) {
		t.Error("same inputs derived different keys")
	}
	if len(k1) != AuditKeyLen {
		t.Errorf("key length = %d, want %d", len(k1), AuditKeyLen)
	}
}

func TestDeriveAuditKeyVariesWithInputs(t *testing.T) {
	secret := bytes.Repeat([]byte{7}, 16)
	nonce := bytes.Repeat([]byte{3}, ChallengeLen)
	base, err := DeriveAuditKey(secret, 42, nonce)
	if err != nil {
		t.Fatal(err)
	}
	otherNonce := bytes.Repeat([]byte{4}, ChallengeLen)
	variants := [][]byte{}
	if k, err := DeriveAuditKey(secret, 43, nonce); err == nil {
		variants = append(variants, k)
	}
	if k, err := DeriveAuditKey(secret, 42, otherNonce); err == nil {
		variants = append(variants, k)
	}
	if k, err := DeriveAuditKey(bytes.Repeat([]byte{8}, 16), 42, nonce); err == nil {
		variants = append(variants, k)
	}
	if len(variants) != 3 {
		t.Fatal("variant derivations failed")
	}
	for i, v := range variants {
		if bytes.Equal(base, v) {
			t.Errorf("variant %d collided with base key", i)
		}
	}
}

func TestDeriveAuditKeyRejectsBadInputs(t *testing.T) {
	nonce := make([]byte, ChallengeLen)
	if _, err := DeriveAuditKey(nil, 1, nonce); err == nil {
		t.Error("empty secret accepted")
	}
	if _, err := DeriveAuditKey([]byte("secret"), 1, []byte("short")); err == nil {
		t.Error("short nonce accepted")
	}
}

func TestAuditMACRoundTrip(t *testing.T) {
	secret := bytes.Repeat([]byte{9}, 16)
	nonce := bytes.Repeat([]byte{1}, ChallengeLen)
	key, err := DeriveAuditKey(secret, 7, nonce)
	if err != nil {
		t.Fatal(err)
	}
	digest := bytes.Repeat([]byte{5}, 16)
	mac := AuditMAC(key, 7, 3, digest)
	if len(mac) != AuditMACLen {
		t.Errorf("mac length = %d, want %d", len(mac), AuditMACLen)
	}
	if !VerifyAuditMAC(key, 7, 3, digest, mac) {
		t.Error("valid MAC rejected")
	}
	// Any coordinate change must invalidate the MAC.
	if VerifyAuditMAC(key, 8, 3, digest, mac) {
		t.Error("MAC verified under wrong file id")
	}
	if VerifyAuditMAC(key, 7, 4, digest, mac) {
		t.Error("MAC verified under wrong message id")
	}
	otherDigest := bytes.Repeat([]byte{6}, 16)
	if VerifyAuditMAC(key, 7, 3, otherDigest, mac) {
		t.Error("MAC verified under wrong digest")
	}
	otherKey, _ := DeriveAuditKey(secret, 7, bytes.Repeat([]byte{2}, ChallengeLen))
	if VerifyAuditMAC(otherKey, 7, 3, digest, mac) {
		t.Error("MAC verified under wrong key")
	}
}
