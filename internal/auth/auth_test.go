package auth

import (
	"bytes"
	"errors"
	"testing"
)

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func TestIdentityFromSeedDeterministic(t *testing.T) {
	a, err := IdentityFromSeed(seed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := IdentityFromSeed(seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Public(), b.Public()) {
		t.Error("same seed produced different keys")
	}
	c, err := IdentityFromSeed(seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Public(), c.Public()) {
		t.Error("different seeds produced identical keys")
	}
	if _, err := IdentityFromSeed([]byte("short")); !errors.Is(err, ErrBadKey) {
		t.Errorf("short seed error = %v", err)
	}
}

func TestChallengeResponseRoundTrip(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	challenge, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := id.Respond(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(id.Public(), challenge, resp); err != nil {
		t.Fatalf("valid response rejected: %v", err)
	}
}

func TestVerifyRejectsWrongKeyChallengeOrResponse(t *testing.T) {
	alice, err := IdentityFromSeed(seed(3))
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := IdentityFromSeed(seed(4))
	if err != nil {
		t.Fatal(err)
	}
	challenge, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := alice.Respond(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(mallory.Public(), challenge, resp); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong key error = %v", err)
	}
	other, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(alice.Public(), other, resp); !errors.Is(err, ErrBadSignature) {
		t.Errorf("replayed response error = %v", err)
	}
	tampered := bytes.Clone(resp)
	tampered[0] ^= 1
	if err := Verify(alice.Public(), challenge, tampered); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered response error = %v", err)
	}
	if err := Verify(alice.Public()[:5], challenge, resp); !errors.Is(err, ErrBadKey) {
		t.Errorf("short key error = %v", err)
	}
}

func TestRespondValidatesChallengeLength(t *testing.T) {
	id, err := IdentityFromSeed(seed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := id.Respond([]byte("too short")); !errors.Is(err, ErrBadKey) {
		t.Errorf("short challenge error = %v", err)
	}
}

func TestTrustSet(t *testing.T) {
	alice, err := IdentityFromSeed(seed(6))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := IdentityFromSeed(seed(7))
	if err != nil {
		t.Fatal(err)
	}
	eve, err := IdentityFromSeed(seed(8))
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustSet(alice.Public(), bob.Public())
	if ts.Len() != 2 {
		t.Errorf("Len = %d", ts.Len())
	}
	if !ts.Contains(alice.Public()) || ts.Contains(eve.Public()) {
		t.Error("Contains wrong")
	}
	challenge, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := alice.Respond(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Check(alice.Public(), challenge, resp); err != nil {
		t.Errorf("trusted key rejected: %v", err)
	}
	evResp, err := eve.Respond(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Check(eve.Public(), challenge, evResp); !errors.Is(err, ErrUntrusted) {
		t.Errorf("untrusted key error = %v", err)
	}
	// Trusted key but signature by someone else.
	if err := ts.Check(alice.Public(), challenge, evResp); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged response error = %v", err)
	}
	ts.Add(eve.Public())
	if !ts.Contains(eve.Public()) {
		t.Error("Add did not insert")
	}
}

func TestFingerprint(t *testing.T) {
	id, err := IdentityFromSeed(seed(9))
	if err != nil {
		t.Fatal(err)
	}
	fp := id.Fingerprint()
	if len(fp) != 16 {
		t.Errorf("fingerprint %q has length %d, want 16 hex chars", fp, len(fp))
	}
	if got := Fingerprint(nil); got != "invalid" {
		t.Errorf("nil key fingerprint = %q", got)
	}
}

func TestChallengesAreUnique(t *testing.T) {
	a, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("two challenges identical")
	}
}
