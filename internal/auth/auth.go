// Package auth implements the public-key challenge-response
// authentication of Fig. 4(b) (transmissions "1" and "2"): before a
// peer serves messages, the requesting user proves possession of the
// private key matching a public key the peer trusts. The paper suggests
// running the exchange in both directions to defeat man-in-the-middle
// and IP-spoofing attacks; Handshake below does exactly that.
//
// Ed25519 fills the paper's unspecified "classic public-key challenge
// response system" slot; any signature scheme would do.
package auth

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
)

// ChallengeLen is the nonce length in bytes.
const ChallengeLen = 32

var (
	// ErrBadSignature is returned when a challenge response does not
	// verify under the claimed public key.
	ErrBadSignature = errors.New("auth: signature verification failed")

	// ErrUntrusted is returned when the counterparty's key is not in
	// the verifier's trust set.
	ErrUntrusted = errors.New("auth: peer key not trusted")

	// ErrBadKey is returned for malformed key material.
	ErrBadKey = errors.New("auth: malformed key")
)

// Identity is a long-term signing identity.
type Identity struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity generates a fresh identity.
func NewIdentity() (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("auth: generate identity: %w", err)
	}
	return &Identity{pub: pub, priv: priv}, nil
}

// IdentityFromSeed derives a deterministic identity from a 32-byte
// seed. Intended for tests and reproducible examples.
func IdentityFromSeed(seed []byte) (*Identity, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("%w: seed must be %d bytes", ErrBadKey, ed25519.SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub, ok := priv.Public().(ed25519.PublicKey)
	if !ok {
		return nil, ErrBadKey
	}
	return &Identity{pub: pub, priv: priv}, nil
}

// Public returns the identity's public key.
func (id *Identity) Public() ed25519.PublicKey { return id.pub }

// Fingerprint returns a short printable key identifier.
func (id *Identity) Fingerprint() string { return Fingerprint(id.pub) }

// Fingerprint returns a short printable identifier for a public key.
func Fingerprint(pub ed25519.PublicKey) string {
	if len(pub) < 8 {
		return "invalid"
	}
	return fmt.Sprintf("%x", []byte(pub[:8]))
}

// NewChallenge draws a random nonce.
func NewChallenge() ([]byte, error) {
	c := make([]byte, ChallengeLen)
	if _, err := rand.Read(c); err != nil {
		return nil, fmt.Errorf("auth: challenge: %w", err)
	}
	return c, nil
}

// contextLabel domain-separates challenge signatures from any other use
// of the identity key.
const contextLabel = "asymshare-challenge-v1:"

// Respond signs a challenge received from a verifier.
func (id *Identity) Respond(challenge []byte) ([]byte, error) {
	if len(challenge) != ChallengeLen {
		return nil, fmt.Errorf("%w: challenge must be %d bytes", ErrBadKey, ChallengeLen)
	}
	msg := append([]byte(contextLabel), challenge...)
	return ed25519.Sign(id.priv, msg), nil
}

// Verify checks a challenge response against a public key.
func Verify(pub ed25519.PublicKey, challenge, response []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: public key must be %d bytes", ErrBadKey, ed25519.PublicKeySize)
	}
	msg := append([]byte(contextLabel), challenge...)
	if !ed25519.Verify(pub, msg, response) {
		return ErrBadSignature
	}
	return nil
}

// TrustSet is a fixed collection of public keys a peer will serve.
type TrustSet struct {
	keys map[string]ed25519.PublicKey
}

// NewTrustSet builds a trust set from public keys.
func NewTrustSet(keys ...ed25519.PublicKey) *TrustSet {
	t := &TrustSet{keys: make(map[string]ed25519.PublicKey, len(keys))}
	for _, k := range keys {
		t.Add(k)
	}
	return t
}

// Add inserts a key into the set.
func (t *TrustSet) Add(pub ed25519.PublicKey) {
	t.keys[string(pub)] = pub
}

// Contains reports whether the key is trusted.
func (t *TrustSet) Contains(pub ed25519.PublicKey) bool {
	_, ok := t.keys[string(pub)]
	return ok
}

// Len returns the number of trusted keys.
func (t *TrustSet) Len() int { return len(t.keys) }

// Check verifies that pub is trusted and that response signs challenge
// under it — the full verifier side of one handshake direction.
func (t *TrustSet) Check(pub ed25519.PublicKey, challenge, response []byte) error {
	if !t.Contains(pub) {
		return fmt.Errorf("%w: %s", ErrUntrusted, Fingerprint(pub))
	}
	return Verify(pub, challenge, response)
}
