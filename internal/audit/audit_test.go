package audit

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/fairshare"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
	"asymshare/internal/wire"
)

// mkMessages stores n messages for fileID and returns their digests —
// the owner-side view of the obligation.
func mkMessages(t *testing.T, st store.Store, fileID uint64, n int) map[uint64]rlnc.Digest {
	t.Helper()
	digests := make(map[uint64]rlnc.Digest, n)
	for i := 0; i < n; i++ {
		msg := &rlnc.Message{FileID: fileID, MessageID: uint64(i), Payload: []byte{byte(i), byte(fileID)}}
		if err := st.Put(msg); err != nil {
			t.Fatal(err)
		}
		digests[uint64(i)] = msg.Digest()
	}
	return digests
}

// storeProber answers challenges honestly from per-address stores —
// the in-process stand-in for client.Client + peer.Node.
type storeProber struct {
	stores map[string]store.Store
	calls  int
}

func (p *storeProber) Audit(_ context.Context, addr string, ch wire.AuditChallenge) (*wire.AuditResponse, string, error) {
	p.calls++
	st, ok := p.stores[addr]
	if !ok {
		return nil, "", errors.New("no such peer")
	}
	resp := &wire.AuditResponse{FileID: ch.FileID}
	for _, id := range ch.MessageIDs {
		proof := wire.AuditProof{MessageID: id}
		if msg, err := st.Get(ch.FileID, id); err == nil {
			d := msg.Digest()
			proof.Present = true
			proof.MAC = auth.AuditMAC(ch.Key, ch.FileID, id, d[:])
		}
		resp.Proofs = append(resp.Proofs, proof)
	}
	return resp, "fp-" + addr, nil
}

func TestBuildChallengeSamplesDistinctIDs(t *testing.T) {
	st := store.NewMemory()
	digests := mkMessages(t, st, 5, 20)
	target := Target{Addr: "a", FileID: 5, Digests: digests}
	rng := rand.New(rand.NewSource(1))
	ch, err := BuildChallenge(rng, []byte("secret"), &target, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.MessageIDs) != 8 {
		t.Fatalf("sampled %d ids, want 8", len(ch.MessageIDs))
	}
	seen := make(map[uint64]bool)
	for _, id := range ch.MessageIDs {
		if seen[id] {
			t.Errorf("duplicate sampled id %d", id)
		}
		seen[id] = true
		if _, ok := digests[id]; !ok {
			t.Errorf("sampled id %d outside obligation", id)
		}
	}
	// The key must be the canonical derivation for (secret, file, nonce).
	want, err := auth.DeriveAuditKey([]byte("secret"), 5, ch.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ch.Key, want) {
		t.Error("challenge key is not DeriveAuditKey(secret, fileID, nonce)")
	}
}

func TestBuildChallengeCapsAtObligation(t *testing.T) {
	st := store.NewMemory()
	target := Target{Addr: "a", FileID: 1, Digests: mkMessages(t, st, 1, 3)}
	ch, err := BuildChallenge(rand.New(rand.NewSource(2)), []byte("s"), &target, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.MessageIDs) != 3 {
		t.Errorf("sampled %d, want all 3", len(ch.MessageIDs))
	}
}

func TestVerifyResponseOutcomes(t *testing.T) {
	st := store.NewMemory()
	digests := mkMessages(t, st, 7, 4)
	target := Target{Addr: "a", FileID: 7, Digests: digests}
	ch, err := BuildChallenge(rand.New(rand.NewSource(3)), []byte("s"), &target, 4)
	if err != nil {
		t.Fatal(err)
	}
	honest := func() *wire.AuditResponse {
		resp := &wire.AuditResponse{FileID: 7}
		for _, id := range ch.MessageIDs {
			msg, err := st.Get(7, id)
			if err != nil {
				t.Fatal(err)
			}
			d := msg.Digest()
			resp.Proofs = append(resp.Proofs, wire.AuditProof{
				MessageID: id, Present: true, MAC: auth.AuditMAC(ch.Key, 7, id, d[:]),
			})
		}
		return resp
	}

	if tally := VerifyResponse(ch, honest(), digests); !tally.Passed() || tally.Proven != 4 {
		t.Errorf("honest response: %+v", tally)
	}

	// One admitted-missing message fails the audit.
	gapped := honest()
	gapped.Proofs[1] = wire.AuditProof{MessageID: gapped.Proofs[1].MessageID}
	if tally := VerifyResponse(ch, gapped, digests); tally.Passed() || tally.Missing != 1 || tally.Proven != 3 {
		t.Errorf("gapped response: %+v", tally)
	}

	// A bad MAC counts as forged.
	forged := honest()
	forged.Proofs[0].MAC = bytes.Repeat([]byte{0xFF}, wire.AuditMACLen)
	if tally := VerifyResponse(ch, forged, digests); tally.Passed() || tally.Forged != 1 {
		t.Errorf("forged response: %+v", tally)
	}

	// Unanswered ids count as missing; unchallenged answers as forged.
	short := &wire.AuditResponse{FileID: 7, Proofs: honest().Proofs[:2]}
	if tally := VerifyResponse(ch, short, digests); tally.Missing != 2 || tally.Proven != 2 {
		t.Errorf("short response: %+v", tally)
	}
	alien := honest()
	alien.Proofs[3].MessageID = 999999
	if tally := VerifyResponse(ch, alien, digests); tally.Forged != 1 || tally.Missing != 1 {
		t.Errorf("alien response: %+v", tally)
	}

	// A response for the wrong file proves nothing.
	wrong := honest()
	wrong.FileID = 8
	if tally := VerifyResponse(ch, wrong, digests); tally.Proven != 0 || tally.Missing != 4 {
		t.Errorf("wrong-file response: %+v", tally)
	}
}

func TestAuditorHonestPeerPasses(t *testing.T) {
	st := store.NewMemory()
	digests := mkMessages(t, st, 1, 16)
	ledger := fairshare.NewLedger(0)
	ledger.Credit("fp-alpha", 1000)
	a, err := New(Config{
		Prober: &storeProber{stores: map[string]store.Store{"alpha": st}},
		Secret: []byte("s"),
		Ledger: ledger,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Target{Addr: "alpha", FileID: 1, Digests: digests, MessageBytes: 100}); err != nil {
		t.Fatal(err)
	}
	verdicts := a.AuditOnce(context.Background())
	if len(verdicts) != 1 || verdicts[0].Outcome != Pass {
		t.Fatalf("verdicts = %+v", verdicts)
	}
	if verdicts[0].Peer != "fp-alpha" {
		t.Errorf("peer identity = %q, want learned fp-alpha", verdicts[0].Peer)
	}
	if got := ledger.Received("fp-alpha"); got != 1000 {
		t.Errorf("honest peer debited: %v", got)
	}
	stats := a.Stats()
	if stats.Passed != 1 || stats.Failed != 0 || stats.Timeouts != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.MessagesProven != int64(stats.MessagesProbed) || stats.BytesProven != stats.MessagesProven*100 {
		t.Errorf("proof accounting: %+v", stats)
	}
}

func TestAuditorDropperDebitedAndEscalated(t *testing.T) {
	honest := store.NewMemory()
	digests := mkMessages(t, honest, 1, 64)
	dropper := store.NewMemory() // holds nothing
	ledger := fairshare.NewLedger(0)
	ledger.Credit("fp-bad", 1e6)
	a, err := New(Config{
		Prober:     &storeProber{stores: map[string]store.Store{"bad": dropper}},
		Secret:     []byte("s"),
		Ledger:     ledger,
		SampleSize: 4,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Target{Addr: "bad", FileID: 1, Digests: digests, MessageBytes: 1000}); err != nil {
		t.Fatal(err)
	}

	v1 := a.AuditOnce(context.Background())[0]
	if v1.Outcome != Fail || v1.Tally.Missing != 4 {
		t.Fatalf("first verdict = %+v", v1)
	}
	if v1.Penalty != 4*1000 {
		t.Errorf("penalty = %v, want 4000", v1.Penalty)
	}
	if got := ledger.Received("fp-bad"); got != 1e6-4000 {
		t.Errorf("ledger after first fail = %v", got)
	}

	// Escalation: the second audit probes twice the sample.
	v2 := a.AuditOnce(context.Background())[0]
	if v2.Tally.Sampled != 8 {
		t.Errorf("escalated sample = %d, want 8", v2.Tally.Sampled)
	}
	health := a.Health()
	if len(health) != 1 || health[0].ConsecutiveFails != 2 || health[0].Failed != 2 {
		t.Errorf("health = %+v", health)
	}
}

func TestAuditorEscalationResetsOnPass(t *testing.T) {
	st := store.NewMemory()
	digests := mkMessages(t, st, 1, 64)
	prober := &storeProber{stores: map[string]store.Store{"p": store.NewMemory()}}
	a, err := New(Config{Prober: prober, Secret: []byte("s"), SampleSize: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Target{Addr: "p", FileID: 1, Digests: digests}); err != nil {
		t.Fatal(err)
	}
	if v := a.AuditOnce(context.Background())[0]; v.Outcome != Fail {
		t.Fatalf("empty store passed: %+v", v)
	}
	// The peer "recovers" (repair re-disseminated): escalated probe passes.
	prober.stores["p"] = st
	v := a.AuditOnce(context.Background())[0]
	if v.Outcome != Pass || v.Tally.Sampled != 8 {
		t.Fatalf("recovery verdict = %+v", v)
	}
	// Next round is back to the routine sample.
	v = a.AuditOnce(context.Background())[0]
	if v.Tally.Sampled != 4 {
		t.Errorf("post-recovery sample = %d, want 4", v.Tally.Sampled)
	}
	if h := a.Health(); h[0].ConsecutiveFails != 0 || h[0].LastOutcome != Pass {
		t.Errorf("health = %+v", h[0])
	}
}

// deadProber never answers within the attempt timeout.
type deadProber struct{ calls int }

func (p *deadProber) Audit(ctx context.Context, _ string, _ wire.AuditChallenge) (*wire.AuditResponse, string, error) {
	p.calls++
	<-ctx.Done()
	return nil, "", ctx.Err()
}

func TestAuditorTimeoutRetriesWithBackoffThenPenalizes(t *testing.T) {
	st := store.NewMemory()
	digests := mkMessages(t, st, 1, 8)
	ledger := fairshare.NewLedger(0)
	ledger.Credit("fp-dead", 500)
	prober := &deadProber{}
	a, err := New(Config{
		Prober:            prober,
		Secret:            []byte("s"),
		Ledger:            ledger,
		Timeout:           20 * time.Millisecond,
		Backoff:           5 * time.Millisecond,
		MaxRetries:        2,
		SampleSize:        4,
		PenaltyPerMessage: 50,
		Seed:              13,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := Target{Addr: "dead", Peer: "fp-dead", FileID: 1, Digests: digests}
	if err := a.Add(target); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	v := a.AuditOnce(context.Background())[0]
	if v.Outcome != Timeout {
		t.Fatalf("verdict = %+v", v)
	}
	if v.Attempts != 3 || prober.calls != 3 {
		t.Errorf("attempts = %d (probe calls %d), want 3", v.Attempts, prober.calls)
	}
	// Backoff between attempts: at least 5ms + 10ms beyond the timeouts.
	if elapsed := time.Since(start); elapsed < 3*20*time.Millisecond+15*time.Millisecond {
		t.Errorf("retries too fast: %v", elapsed)
	}
	// The whole sample is penalized: no response proved anything.
	if v.Penalty != 4*50 {
		t.Errorf("penalty = %v, want 200", v.Penalty)
	}
	if got := ledger.Received("fp-dead"); got != 300 {
		t.Errorf("ledger = %v, want 300", got)
	}
	if s := a.Stats(); s.Timeouts != 1 || s.ChallengesSent != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAuditorRunSchedulesAndStops(t *testing.T) {
	st := store.NewMemory()
	digests := mkMessages(t, st, 1, 8)
	verdicts := make(chan Verdict, 64)
	a, err := New(Config{
		Prober:   &storeProber{stores: map[string]store.Store{"p": st}},
		Secret:   []byte("s"),
		Interval: 10 * time.Millisecond,
		OnVerdict: func(v Verdict) {
			select {
			case verdicts <- v:
			default:
			}
		},
		Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Target{Addr: "p", FileID: 1, Digests: digests}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		a.Run(ctx)
		close(done)
	}()
	// At least two scheduled audits complete.
	for i := 0; i < 2; i++ {
		select {
		case v := <-verdicts:
			if v.Outcome != Pass {
				t.Errorf("scheduled verdict %d = %+v", i, v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("scheduled audit never ran")
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Secret: []byte("s")}); !errors.Is(err, ErrBadConfig) {
		t.Error("missing prober accepted")
	}
	if _, err := New(Config{Prober: &deadProber{}}); !errors.Is(err, ErrBadConfig) {
		t.Error("missing secret accepted")
	}
	a, err := New(Config{Prober: &deadProber{}, Secret: []byte("s")})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Target{FileID: 1}); !errors.Is(err, ErrBadTarget) {
		t.Error("target without address accepted")
	}
	if err := a.Add(Target{Addr: "a", FileID: 1}); !errors.Is(err, ErrBadTarget) {
		t.Error("target without digests accepted")
	}
}
