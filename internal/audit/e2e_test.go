package audit_test

// End-to-end acceptance: over real peer/client TCP connections, a peer
// that drops its stored messages fails audits, is debited in the
// owner's peer ledger (via the FEEDBACK wire path), and receives a
// measurably smaller pairwise-proportional allocation than honest
// peers in the same run — while a fully honest network passes every
// audit with zero debits.

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"asymshare/internal/audit"
	"asymshare/internal/auth"
	"asymshare/internal/client"
	"asymshare/internal/fairshare"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

const (
	e2eFileID  = 77
	e2eCredit  = 1000.0
	e2ePenalty = 100.0
)

func e2eIdentity(t *testing.T, b byte) *auth.Identity {
	t.Helper()
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{b}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func e2eSecret() []byte {
	s := make([]byte, rlnc.SecretLen)
	for i := range s {
		s[i] = byte(i + 1)
	}
	return s
}

type e2ePeer struct {
	node    *peer.Node
	store   *store.Memory
	digests map[uint64]rlnc.Digest // this peer's obligation
	fp      string
}

// e2eNetwork boots a home peer (the owner's own, holding the ledger)
// plus n storage peers, disseminates one generation batch to each over
// real connections, and returns the lot.
func e2eNetwork(t *testing.T, ctx context.Context, owner *auth.Identity, c *client.Client, n int) (*peer.Node, []*e2ePeer, int) {
	t.Helper()
	home, err := peer.New(peer.Config{
		Identity: e2eIdentity(t, 200),
		Store:    store.NewMemory(),
		Owner:    owner.Public(),
		Ledger:   fairshare.NewLedger(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { home.Close() })

	params, err := rlnc.NewParams(gf.MustNew(gf.Bits8), 8, 64, 500)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("asymshare"), 56)[:500]
	enc, err := rlnc.NewEncoder(params, e2eFileID, e2eSecret(), data)
	if err != nil {
		t.Fatal(err)
	}

	msgBytes := 0
	peers := make([]*e2ePeer, n)
	for i := range peers {
		st := store.NewMemory()
		id := e2eIdentity(t, byte(201+i))
		node, err := peer.New(peer.Config{
			Identity: id,
			Store:    st,
			Trusted:  auth.NewTrustSet(owner.Public()),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })

		batch, err := enc.BatchForPeer(i, params.K)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Disseminate(ctx, node.Addr().String(), batch); err != nil {
			t.Fatal(err)
		}
		digests := make(map[uint64]rlnc.Digest, len(batch))
		for _, msg := range batch {
			digests[msg.MessageID] = msg.Digest()
			buf, err := msg.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			msgBytes = len(buf)
		}
		peers[i] = &e2ePeer{node: node, store: st, digests: digests, fp: id.Fingerprint()}
	}
	return home, peers, msgBytes
}

// e2eAudit runs one synchronous audit round against every storage peer
// and relays the verdict debits to the home peer over the wire.
func e2eAudit(t *testing.T, ctx context.Context, c *client.Client, home *peer.Node, peers []*e2ePeer) (*audit.Auditor, []audit.Verdict) {
	t.Helper()
	a, err := audit.New(audit.Config{
		Prober:            c,
		Secret:            e2eSecret(),
		PenaltyPerMessage: e2ePenalty,
		SampleSize:        8,
		Timeout:           5 * time.Second,
		Seed:              21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		err := a.Add(audit.Target{
			Addr:    p.node.Addr().String(),
			FileID:  e2eFileID,
			Digests: p.digests,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	verdicts := a.AuditOnce(ctx)
	debits := make(map[string]uint64)
	for _, v := range verdicts {
		if v.Penalty > 0 {
			debits[v.Peer] += uint64(math.Round(v.Penalty))
		}
	}
	if err := c.SendAuditVerdicts(ctx, home.Addr().String(), debits); err != nil {
		t.Fatal(err)
	}
	return a, verdicts
}

func e2eAllocate(home *peer.Node, peers []*e2ePeer) map[fairshare.ID]float64 {
	requesters := make([]fairshare.ID, len(peers))
	for i, p := range peers {
		requesters[i] = p.fp
	}
	return fairshare.PairwiseProportional{}.Allocate(fairshare.NewRequest(90, requesters, home.Ledger())).Map()
}

func TestE2EDroppingPeerFailsAuditsAndLosesAllocation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	owner := e2eIdentity(t, 199)
	c, err := client.New(owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	home, peers, _ := e2eNetwork(t, ctx, owner, c, 3)

	// Every peer starts with equal earned credit, reported over the
	// wire the same way receipt feedback normally is.
	credits := make(map[string]uint64, len(peers))
	for _, p := range peers {
		credits[p.fp] = uint64(e2eCredit)
	}
	if err := c.SendFeedback(ctx, home.Addr().String(), credits); err != nil {
		t.Fatal(err)
	}

	// Peer 2 silently discards everything it promised to store.
	dropper := peers[2]
	if err := dropper.store.Drop(e2eFileID); err != nil {
		t.Fatal(err)
	}

	a, verdicts := e2eAudit(t, ctx, c, home, peers)
	if len(verdicts) != 3 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	for i, v := range verdicts[:2] {
		if v.Outcome != audit.Pass || v.Penalty != 0 {
			t.Errorf("honest peer %d verdict = %+v", i, v)
		}
		if v.Peer != peers[i].fp {
			t.Errorf("verdict %d identity = %q, want %q", i, v.Peer, peers[i].fp)
		}
	}
	bad := verdicts[2]
	if bad.Outcome != audit.Fail || bad.Tally.Missing != 8 || bad.Tally.Proven != 0 {
		t.Fatalf("dropper verdict = %+v", bad)
	}
	if bad.Penalty != 8*e2ePenalty {
		t.Errorf("dropper penalty = %v, want %v", bad.Penalty, 8*e2ePenalty)
	}

	// The debit arrived in the home peer's ledger over the wire.
	ledger := home.Ledger()
	if got := ledger.Received(dropper.fp); got != e2eCredit-8*e2ePenalty {
		t.Errorf("dropper ledger standing = %v, want %v", got, e2eCredit-8*e2ePenalty)
	}
	for _, p := range peers[:2] {
		if got := ledger.Received(p.fp); got != e2eCredit {
			t.Errorf("honest peer %s standing = %v, want %v", p.fp, got, e2eCredit)
		}
	}

	// And the dropper's pairwise-proportional share collapses.
	shares := e2eAllocate(home, peers)
	if shares[dropper.fp] >= shares[peers[0].fp]/2 {
		t.Errorf("dropper share %v not measurably below honest share %v",
			shares[dropper.fp], shares[peers[0].fp])
	}
	if shares[peers[0].fp] != shares[peers[1].fp] {
		t.Errorf("honest shares diverged: %v vs %v", shares[peers[0].fp], shares[peers[1].fp])
	}

	stats := a.Stats()
	if stats.Passed != 2 || stats.Failed != 1 || stats.PenaltyAssessed != 8*e2ePenalty {
		t.Errorf("auditor stats = %+v", stats)
	}
}

func TestE2EHonestNetworkPassesWithZeroDebits(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	owner := e2eIdentity(t, 199)
	c, err := client.New(owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	home, peers, _ := e2eNetwork(t, ctx, owner, c, 3)
	credits := make(map[string]uint64, len(peers))
	for _, p := range peers {
		credits[p.fp] = uint64(e2eCredit)
	}
	if err := c.SendFeedback(ctx, home.Addr().String(), credits); err != nil {
		t.Fatal(err)
	}

	a, verdicts := e2eAudit(t, ctx, c, home, peers)
	for i, v := range verdicts {
		if v.Outcome != audit.Pass || v.Penalty != 0 {
			t.Errorf("verdict %d = %+v", i, v)
		}
	}
	stats := a.Stats()
	if stats.Passed != 3 || stats.Failed != 0 || stats.Timeouts != 0 || stats.PenaltyAssessed != 0 {
		t.Errorf("stats = %+v", stats)
	}
	ledger := home.Ledger()
	shares := e2eAllocate(home, peers)
	for _, p := range peers {
		if got := ledger.Received(p.fp); got != e2eCredit {
			t.Errorf("peer %s standing = %v, want untouched %v", p.fp, got, e2eCredit)
		}
		if want := 90.0 / 3; shares[p.fp] != want {
			t.Errorf("peer %s share = %v, want %v", p.fp, shares[p.fp], want)
		}
	}
}
