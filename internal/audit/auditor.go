package audit

// The Auditor owns the audit loop: per-target jittered scheduling,
// timeout/retry with exponential backoff, escalation after failures
// (probe more messages, audit sooner), ledger penalties, and
// replica-loss notification. It is transport-agnostic: anything that
// can deliver a challenge and return the response — the real
// client.Client, or an in-process fake in tests — plugs in as a
// Prober.

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"time"

	"asymshare/internal/fairshare"
	"asymshare/internal/metrics"
	"asymshare/internal/wire"
)

// Prober delivers one challenge to a peer and returns its response and
// the peer's ledger identity. client.Client satisfies this.
type Prober interface {
	Audit(ctx context.Context, addr string, ch wire.AuditChallenge) (*wire.AuditResponse, string, error)
}

// Defaults used when the corresponding Config field is zero.
const (
	DefaultInterval   = 30 * time.Second
	DefaultJitter     = 0.2
	DefaultTimeout    = 5 * time.Second
	DefaultBackoff    = 500 * time.Millisecond
	DefaultMaxRetries = 2
	DefaultSampleSize = 8
)

// maxEscalation caps the escalation exponent: after this many
// consecutive failures the sample and the interval stop growing and
// shrinking respectively.
const maxEscalation = 4

// Outcome classifies one completed audit.
type Outcome int

// Audit outcomes.
const (
	// Pass: every sampled message was proven.
	Pass Outcome = iota

	// Fail: the peer answered but at least one sampled message was
	// missing or forged.
	Fail

	// Timeout: the peer never produced a verifiable response within
	// the retry budget — treated exactly like a failure for penalty
	// purposes, or refusing audits would be the winning strategy.
	Timeout
)

func (o Outcome) String() string {
	switch o {
	case Pass:
		return "pass"
	case Fail:
		return "fail"
	case Timeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// Verdict is the result of one audit of one target.
type Verdict struct {
	Addr    string
	Peer    string // ledger identity; may be empty on timeout before any contact
	FileID  uint64
	Outcome Outcome
	Tally   Tally
	Penalty float64 // ledger units debited

	// Attempts is how many probes were sent (1 + retries used).
	Attempts int

	// Err is the last transport error for Timeout verdicts.
	Err error
}

// Config configures an Auditor.
type Config struct {
	// Prober delivers challenges. Required.
	Prober Prober

	// Secret is the owner's per-file coding secret, the root of the
	// challenge key derivation. Required.
	Secret []byte

	// Ledger, when set, is debited for failed and timed-out audits —
	// the owner's local standing of each storage peer.
	Ledger fairshare.Book

	// PenaltyPerMessage is the ledger debit per sampled message that
	// failed (missing, forged, or the whole sample on timeout). Zero
	// derives it from the target's MessageBytes — the peer forfeits
	// the credit-equivalent of the data it no longer proves.
	PenaltyPerMessage float64

	// OnVerdict, when set, observes every completed audit — the hook
	// the repair path uses to re-disseminate lost replicas.
	OnVerdict func(Verdict)

	// Interval is the base time between audits of one target; zero
	// means DefaultInterval.
	Interval time.Duration

	// Jitter spreads each target's next audit uniformly over
	// [Interval*(1-Jitter), Interval*(1+Jitter)], so a fleet of
	// auditors does not thunder in phase. Zero means DefaultJitter;
	// negative disables jitter.
	Jitter float64

	// Timeout bounds one probe attempt; zero means DefaultTimeout.
	Timeout time.Duration

	// MaxRetries is how many times a timed-out probe is retried with
	// exponential backoff before the audit is declared a Timeout;
	// zero means DefaultMaxRetries, negative disables retries.
	MaxRetries int

	// Backoff is the first retry delay, doubling per retry; zero
	// means DefaultBackoff.
	Backoff time.Duration

	// SampleSize is how many messages a routine audit probes; zero
	// means DefaultSampleSize. After a failure the sample doubles per
	// consecutive failure (capped by the target size and
	// wire.MaxAuditSample) and the interval halves, so a suspected
	// free-rider faces escalating scrutiny until it passes again.
	SampleSize int

	// Seed makes scheduling and sampling deterministic in tests; zero
	// seeds from the current time.
	Seed int64

	// Logger receives audit events; nil discards them.
	Logger *slog.Logger

	// Metrics, when set, receives the audit_* instrument families
	// (challenges, verdict outcomes, probe latency, penalties); see
	// internal/audit/metrics.go for the full list. Nil disables
	// instrumentation.
	Metrics *metrics.Registry
}

// Stats are the auditor's cumulative counters.
type Stats struct {
	ChallengesSent  int64 // probes that reached the wire (incl. retries)
	Passed          int64 // audits with every sampled message proven
	Failed          int64 // audits with missing or forged answers
	Timeouts        int64 // audits abandoned after the retry budget
	MessagesProbed  int64 // sampled messages across all audits
	MessagesProven  int64 // sampled messages that verified
	BytesProven     int64 // MessageBytes-weighted proven messages
	PenaltyAssessed float64
}

// PeerHealth summarizes one peer's audit standing.
type PeerHealth struct {
	Peer             string
	Addr             string
	Passed           int64
	Failed           int64 // includes timeouts
	ConsecutiveFails int
	LastOutcome      Outcome
	BytesProven      int64
}

// targetState is one scheduled target.
type targetState struct {
	target      Target
	nextAt      time.Time
	consecFails int
}

// Auditor runs keyed spot-checks against a set of targets.
type Auditor struct {
	cfg Config
	log *slog.Logger
	m   auditorMetrics

	mu      sync.Mutex
	rng     *rand.Rand
	targets []*targetState
	stats   Stats
	health  map[string]*PeerHealth // by address
}

// New validates the configuration and creates an Auditor with no
// targets.
func New(cfg Config) (*Auditor, error) {
	if cfg.Prober == nil {
		return nil, errOf("prober is required")
	}
	if len(cfg.Secret) == 0 {
		return nil, errOf("secret is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Interval < 0 {
		return nil, errOf("negative interval")
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = DefaultJitter
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = DefaultSampleSize
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Auditor{
		cfg:    cfg,
		log:    log,
		m:      newAuditorMetrics(cfg.Metrics),
		rng:    rand.New(rand.NewSource(seed)),
		health: make(map[string]*PeerHealth),
	}, nil
}

func errOf(msg string) error { return &configError{msg} }

type configError struct{ msg string }

func (e *configError) Error() string { return "audit: invalid configuration: " + e.msg }
func (e *configError) Unwrap() error { return ErrBadConfig }

// Add schedules a target for auditing. The first audit is due after
// one jittered interval, staggered per target.
func (a *Auditor) Add(t Target) error {
	if err := t.validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.targets = append(a.targets, &targetState{
		target: t,
		nextAt: time.Now().Add(a.jitteredLocked(a.cfg.Interval)),
	})
	if _, ok := a.health[t.Addr]; !ok {
		a.health[t.Addr] = &PeerHealth{Peer: t.Peer, Addr: t.Addr}
	}
	return nil
}

// jitteredLocked returns d spread uniformly over [d*(1-J), d*(1+J)].
// Callers hold a.mu (the rng is not concurrency-safe).
func (a *Auditor) jitteredLocked(d time.Duration) time.Duration {
	if a.cfg.Jitter <= 0 || d <= 0 {
		return d
	}
	span := 2 * a.cfg.Jitter * float64(d)
	return time.Duration(float64(d)*(1-a.cfg.Jitter) + a.rng.Float64()*span)
}

// Stats returns a snapshot of the cumulative counters.
func (a *Auditor) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Health returns per-peer audit standings, sorted by address.
func (a *Auditor) Health() []PeerHealth {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PeerHealth, 0, len(a.health))
	for _, h := range a.health {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Run audits targets as they come due until ctx is cancelled. One
// audit runs at a time: retention checking is low-rate background
// traffic and must never compete with data transfer for the pipe.
func (a *Auditor) Run(ctx context.Context) {
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		st, wait := a.nextDue()
		if st == nil {
			// No targets yet: poll for additions.
			wait = a.cfg.Interval / 4
			if wait <= 0 {
				wait = time.Second
			}
		}
		timer.Reset(wait)
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		if st == nil {
			continue
		}
		a.auditTarget(ctx, st)
	}
}

// nextDue returns the target with the earliest deadline and how long
// until it is due (zero if overdue).
func (a *Auditor) nextDue() (*targetState, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var best *targetState
	for _, st := range a.targets {
		if best == nil || st.nextAt.Before(best.nextAt) {
			best = st
		}
	}
	if best == nil {
		return nil, 0
	}
	wait := time.Until(best.nextAt)
	if wait < 0 {
		wait = 0
	}
	return best, wait
}

// AuditOnce runs a complete audit round over every registered target,
// in registration order — the synchronous entry point for tests, the
// CLI and the repair loop. Verdicts are returned in target order.
func (a *Auditor) AuditOnce(ctx context.Context) []Verdict {
	a.mu.Lock()
	targets := append([]*targetState(nil), a.targets...)
	a.mu.Unlock()
	out := make([]Verdict, 0, len(targets))
	for _, st := range targets {
		if ctx.Err() != nil {
			break
		}
		out = append(out, a.auditTarget(ctx, st))
	}
	return out
}

// auditTarget audits one target now: sample, challenge, verify, with
// timeout/retry and exponential backoff, then apply penalties,
// escalation and scheduling.
func (a *Auditor) auditTarget(ctx context.Context, st *targetState) Verdict {
	a.mu.Lock()
	sample := a.sampleSizeLocked(st)
	ch, err := BuildChallenge(a.rng, a.cfg.Secret, &st.target, sample)
	a.mu.Unlock()
	v := Verdict{Addr: st.target.Addr, Peer: st.target.Peer, FileID: st.target.FileID}
	if err != nil {
		// Unbuildable challenge (e.g. target lost its digests): treat
		// as a skipped audit, do not penalize the peer.
		v.Err = err
		return v
	}

	var (
		resp        *wire.AuditResponse
		fingerprint string
		probeErr    error
	)
	backoff := a.cfg.Backoff
	for attempt := 0; attempt <= a.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(backoff):
			}
			if ctx.Err() != nil {
				probeErr = ctx.Err()
				break
			}
			backoff *= 2
		}
		probeCtx, cancel := context.WithTimeout(ctx, a.cfg.Timeout)
		probeStart := time.Now()
		resp, fingerprint, probeErr = a.cfg.Prober.Audit(probeCtx, st.target.Addr, ch)
		a.m.probeDur.ObserveSince(probeStart)
		cancel()
		v.Attempts++
		a.m.challenges.Inc()
		a.mu.Lock()
		a.stats.ChallengesSent++
		a.mu.Unlock()
		if probeErr == nil {
			break
		}
		a.log.Debug("audit probe failed", "addr", st.target.Addr, "attempt", attempt+1, "err", probeErr)
	}
	if fingerprint != "" {
		v.Peer = fingerprint
	}

	if probeErr != nil {
		v.Outcome = Timeout
		v.Err = probeErr
		v.Tally = Tally{Sampled: len(ch.MessageIDs), Missing: len(ch.MessageIDs)}
	} else {
		v.Tally = VerifyResponse(ch, resp, st.target.Digests)
		if v.Tally.Passed() {
			v.Outcome = Pass
		} else {
			v.Outcome = Fail
		}
	}
	v.Penalty = a.settle(st, &v)
	if a.cfg.OnVerdict != nil {
		a.cfg.OnVerdict(v)
	}
	a.log.Info("audit verdict", "addr", v.Addr, "peer", v.Peer, "file", v.FileID,
		"outcome", v.Outcome.String(), "proven", v.Tally.Proven, "sampled", v.Tally.Sampled,
		"penalty", v.Penalty, "attempts", v.Attempts)
	return v
}

// sampleSizeLocked returns the escalated sample size for a target:
// doubled per consecutive failure, capped by the obligation size and
// the wire limit. Callers hold a.mu.
func (a *Auditor) sampleSizeLocked(st *targetState) int {
	esc := st.consecFails
	if esc > maxEscalation {
		esc = maxEscalation
	}
	sample := a.cfg.SampleSize << esc
	if sample > len(st.target.Digests) {
		sample = len(st.target.Digests)
	}
	if sample > wire.MaxAuditSample {
		sample = wire.MaxAuditSample
	}
	if sample < 1 {
		sample = 1
	}
	return sample
}

// settle updates counters, health, ledger and scheduling after one
// audit, returning the penalty assessed.
func (a *Auditor) settle(st *targetState, v *Verdict) float64 {
	failedProbes := v.Tally.Missing + v.Tally.Forged
	perMessage := a.cfg.PenaltyPerMessage
	if perMessage <= 0 {
		if st.target.MessageBytes > 0 {
			perMessage = float64(st.target.MessageBytes)
		} else {
			perMessage = 1
		}
	}
	var penalty float64
	if v.Outcome != Pass {
		penalty = perMessage * float64(failedProbes)
	}

	a.mu.Lock()
	st.target.Peer = v.Peer
	h := a.health[st.target.Addr]
	if h == nil {
		h = &PeerHealth{Addr: st.target.Addr}
		a.health[st.target.Addr] = h
	}
	if v.Peer != "" {
		h.Peer = v.Peer
	}
	h.LastOutcome = v.Outcome
	a.stats.MessagesProbed += int64(v.Tally.Sampled)
	a.stats.MessagesProven += int64(v.Tally.Proven)
	a.stats.BytesProven += int64(v.Tally.Proven) * int64(st.target.MessageBytes)
	h.BytesProven += int64(v.Tally.Proven) * int64(st.target.MessageBytes)
	switch v.Outcome {
	case Pass:
		a.stats.Passed++
		h.Passed++
		st.consecFails = 0
	case Fail:
		a.stats.Failed++
		h.Failed++
		st.consecFails++
		a.m.escalations.Inc()
	case Timeout:
		a.stats.Timeouts++
		h.Failed++
		st.consecFails++
		a.m.escalations.Inc()
	}
	h.ConsecutiveFails = st.consecFails
	a.stats.PenaltyAssessed += penalty
	a.recordVerdictMetricsLocked(v, penalty)

	// Escalation shortens the revisit interval while failures persist.
	interval := a.cfg.Interval
	esc := st.consecFails
	if esc > maxEscalation {
		esc = maxEscalation
	}
	interval >>= esc
	// Never hammer faster than one probe timeout — unless the operator
	// configured the base interval below that, in which case honor it.
	floor := a.cfg.Timeout
	if a.cfg.Interval < floor {
		floor = a.cfg.Interval
	}
	if interval < floor {
		interval = floor
	}
	st.nextAt = time.Now().Add(a.jitteredLocked(interval))
	a.mu.Unlock()

	if penalty > 0 && a.cfg.Ledger != nil && v.Peer != "" {
		a.cfg.Ledger.Debit(v.Peer, penalty)
	}
	return penalty
}
