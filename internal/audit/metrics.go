package audit

import "asymshare/internal/metrics"

// Exported auditor metric names (see DESIGN.md §7). They mirror the
// cumulative Stats struct so a scrape and Stats() always agree on what
// the retention-checking layer has observed.
const (
	MetricChallengesSent = "audit_challenges_sent_total"
	MetricPass           = "audit_pass_total"
	MetricFail           = "audit_fail_total"
	MetricTimeout        = "audit_timeout_total"
	MetricMessagesProbed = "audit_messages_probed_total"
	MetricMessagesProven = "audit_messages_proven_total"
	MetricEscalations    = "audit_escalations_total"
	MetricPenaltyUnits   = "audit_penalty_units_total"
	MetricProbeDuration  = "audit_probe_duration_seconds"
)

// auditorMetrics holds the auditor's instruments. All fields are nil
// (and every recording call a no-op) when no registry is configured.
type auditorMetrics struct {
	challenges  *metrics.Counter
	pass        *metrics.Counter
	fail        *metrics.Counter
	timeout     *metrics.Counter
	probed      *metrics.Counter
	proven      *metrics.Counter
	escalations *metrics.Counter
	penalty     *metrics.Gauge
	probeDur    *metrics.Histogram
}

// recordVerdictMetricsLocked mirrors one settled verdict into the
// instrument set. All instruments are nil-safe, so this costs nothing
// when Config.Metrics is unset.
func (a *Auditor) recordVerdictMetricsLocked(v *Verdict, penalty float64) {
	switch v.Outcome {
	case Pass:
		a.m.pass.Inc()
	case Fail:
		a.m.fail.Inc()
	case Timeout:
		a.m.timeout.Inc()
	}
	a.m.probed.Add(uint64(v.Tally.Sampled))
	a.m.proven.Add(uint64(v.Tally.Proven))
	a.m.penalty.Add(penalty)
}

func newAuditorMetrics(reg *metrics.Registry) auditorMetrics {
	return auditorMetrics{
		challenges:  reg.Counter(MetricChallengesSent, "Audit challenges put on the wire, including retries."),
		pass:        reg.Counter(MetricPass, "Audits in which every sampled message was proven."),
		fail:        reg.Counter(MetricFail, "Audits with at least one missing or forged answer."),
		timeout:     reg.Counter(MetricTimeout, "Audits abandoned after the retry budget."),
		probed:      reg.Counter(MetricMessagesProbed, "Messages sampled across all audits."),
		proven:      reg.Counter(MetricMessagesProven, "Sampled messages whose proofs verified."),
		escalations: reg.Counter(MetricEscalations, "Failed audits that raised a target's escalation level."),
		penalty:     reg.Gauge(MetricPenaltyUnits, "Cumulative ledger units debited as audit penalties."),
		probeDur:    reg.Histogram(MetricProbeDuration, "Round-trip time of one audit probe attempt.", metrics.UnitSeconds),
	}
}
