// Package audit implements owner-side keyed spot-checks of remote
// encoded storage, closing the retention gap in the paper's incentive
// story: Theorem 1 assumes storage peers still hold the messages they
// accepted during pre-dissemination, but nothing in the protocol
// verified it — a peer could discard every chunk and keep earning
// ledger credit for bandwidth alone. The auditor periodically samples
// each peer's obligations, challenges it to MAC the sampled messages
// under a per-challenge key derived from the owner's coding secret and
// a fresh nonce (internal/auth.DeriveAuditKey — the holder cannot
// precompute answers, and the owner verifies against manifest digests
// without re-downloading a byte), and feeds the verdicts back into the
// fairness machinery: failures debit the peer in the owner's ledger
// (fairshare.Ledger.Debit) and flag the replica lost so placement can
// re-disseminate. The ledger thereby measures "bandwidth received from
// peers proven to still hold my data", not just bandwidth received.
package audit

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"asymshare/internal/auth"
	"asymshare/internal/rlnc"
	"asymshare/internal/wire"
)

var (
	// ErrBadTarget is returned for targets missing required fields.
	ErrBadTarget = errors.New("audit: invalid target")

	// ErrBadConfig is returned for invalid auditor configurations.
	ErrBadConfig = errors.New("audit: invalid configuration")
)

// Target is one retention obligation: a peer address expected to hold
// the messages of one file, verifiable against the digests recorded at
// dissemination time.
type Target struct {
	// Addr is the peer's dial address.
	Addr string

	// Peer is the peer's ledger identity (key fingerprint). Empty is
	// allowed: it is learned from the first completed probe.
	Peer string

	// FileID identifies the audited generation.
	FileID uint64

	// Digests maps every disseminated message-id to its content digest
	// — the same map carried in the chunk manifest (Sec. III-C).
	Digests map[uint64]rlnc.Digest

	// MessageBytes is the serialized size of one stored message, used
	// for bytes-proven accounting and the default penalty scale.
	MessageBytes int
}

// validate checks the target invariants.
func (t *Target) validate() error {
	if t.Addr == "" {
		return fmt.Errorf("%w: missing address", ErrBadTarget)
	}
	if len(t.Digests) == 0 {
		return fmt.Errorf("%w: no digests for file %d", ErrBadTarget, t.FileID)
	}
	return nil
}

// BuildChallenge samples up to `sample` distinct message-ids from the
// target's digest set and constructs the keyed challenge: fresh nonce,
// per-challenge key derived from (secret, file-id, nonce). The rng
// drives sampling only, never key material.
func BuildChallenge(rng *rand.Rand, secret []byte, t *Target, sample int) (wire.AuditChallenge, error) {
	if err := t.validate(); err != nil {
		return wire.AuditChallenge{}, err
	}
	if sample <= 0 {
		sample = 1
	}
	if sample > len(t.Digests) {
		sample = len(t.Digests)
	}
	if sample > wire.MaxAuditSample {
		sample = wire.MaxAuditSample
	}
	ids := make([]uint64, 0, len(t.Digests))
	for id := range t.Digests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	ids = ids[:sample]

	nonce, err := auth.NewChallenge()
	if err != nil {
		return wire.AuditChallenge{}, err
	}
	key, err := auth.DeriveAuditKey(secret, t.FileID, nonce)
	if err != nil {
		return wire.AuditChallenge{}, err
	}
	return wire.AuditChallenge{
		FileID:     t.FileID,
		Nonce:      nonce,
		Key:        key,
		MessageIDs: ids,
	}, nil
}

// Tally is the verification outcome of one challenge/response pair.
type Tally struct {
	// Sampled is how many messages the challenge probed.
	Sampled int

	// Proven counts messages whose MAC verified: the peer demonstrably
	// still holds bytes hashing to the disseminated digest.
	Proven int

	// Missing counts messages the peer admitted not holding, or left
	// unanswered.
	Missing int

	// Forged counts answers that failed MAC verification — worse than
	// missing, since the peer tried to fake possession.
	Forged int
}

// Passed reports whether every sampled message was proven.
func (t Tally) Passed() bool { return t.Sampled > 0 && t.Proven == t.Sampled }

// VerifyResponse checks a peer's response against the challenge and
// the owner's digests. Proofs for message-ids that were never
// challenged count as forged; challenged ids with no proof count as
// missing. The peer never learns which verdict each answer got.
func VerifyResponse(ch wire.AuditChallenge, resp *wire.AuditResponse, digests map[uint64]rlnc.Digest) Tally {
	tally := Tally{Sampled: len(ch.MessageIDs)}
	challenged := make(map[uint64]bool, len(ch.MessageIDs))
	for _, id := range ch.MessageIDs {
		challenged[id] = true
	}
	answered := make(map[uint64]bool, len(ch.MessageIDs))
	if resp != nil && resp.FileID == ch.FileID {
		for _, p := range resp.Proofs {
			if !challenged[p.MessageID] || answered[p.MessageID] {
				tally.Forged++
				continue
			}
			answered[p.MessageID] = true
			if !p.Present {
				tally.Missing++
				continue
			}
			digest, ok := digests[p.MessageID]
			if ok && auth.VerifyAuditMAC(ch.Key, ch.FileID, p.MessageID, digest[:], p.MAC) {
				tally.Proven++
			} else {
				tally.Forged++
			}
		}
	}
	for _, id := range ch.MessageIDs {
		if !answered[id] {
			tally.Missing++
		}
	}
	return tally
}
