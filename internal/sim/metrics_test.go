package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"asymshare/internal/fairshare"
	"asymshare/internal/trace"
)

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all zero = %v", got)
	}
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal values = %v, want 1", got)
	}
	// One user hogging everything: index -> 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("hog = %v, want 0.25", got)
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		nonzero := false
		for i, v := range raw {
			vals[i] = float64(v)
			if v != 0 {
				nonzero = true
			}
		}
		idx := JainIndex(vals)
		if !nonzero {
			return idx == 0
		}
		return idx > 0 && idx <= 1+1e-12 && idx >= 1/float64(len(vals))-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConvergenceSlot(t *testing.T) {
	series := []float64{0, 0, 50, 90, 99, 100, 101, 100, 100}
	got := ConvergenceSlot(series, 100, 0.05, 1)
	if got != 4 {
		t.Errorf("ConvergenceSlot = %d, want 4", got)
	}
	// A series that leaves the band never settles before the end.
	diverge := []float64{100, 100, 0}
	if got := ConvergenceSlot(diverge, 100, 0.05, 1); got != -1 {
		t.Errorf("diverging series = %d, want -1", got)
	}
	if got := ConvergenceSlot(nil, 100, 0.05, 1); got != -1 {
		t.Errorf("empty series = %d", got)
	}
	if got := ConvergenceSlot(series, 0, 0.05, 1); got != -1 {
		t.Errorf("zero target = %d", got)
	}
}

func TestPairwiseAsymmetryAndJainOnSaturatedRun(t *testing.T) {
	res, err := Run(saturatedConfig([]float64{200, 400, 800}, 6000))
	if err != nil {
		t.Fatal(err)
	}
	if asym := res.PairwiseAsymmetry(); asym > 0.06 {
		t.Errorf("pairwise asymmetry = %v, want ~0 in saturation", asym)
	}
	// Normalized downloads (download/upload) are ~1 for everyone in
	// saturation — equal ratios, so Jain index ~1.
	norm := res.NormalizedDownloads(5000, 6000)
	if idx := JainIndex(norm); idx < 0.999 {
		t.Errorf("Jain index of normalized downloads = %v", idx)
	}
	for i, v := range norm {
		if math.Abs(v-1) > 0.02 {
			t.Errorf("peer %d normalized download = %v, want ~1", i, v)
		}
	}
}

func TestConvergenceSlotOnFig5a(t *testing.T) {
	// The paper observes convergence "quickly" (well within the hour);
	// every peer settles within 5% of its upload rate.
	uploads := make([]float64, 10)
	for i := range uploads {
		uploads[i] = float64(100 * (i + 1))
	}
	res, err := Run(saturatedConfig(uploads, 3600))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range uploads {
		slot := ConvergenceSlot(res.Download[i], u, 0.05, 10)
		if slot < 0 {
			t.Errorf("peer %d never converged", i)
			continue
		}
		if slot > 3000 {
			t.Errorf("peer %d converged only at %d s", i, slot)
		}
	}
}

func TestTotalGainZeroSum(t *testing.T) {
	// Download equals upload system-wide, so the cross-peer "gain" sums
	// to zero: the system moves bandwidth, it does not create it.
	res, err := Run(saturatedConfig([]float64{100, 500}, 500))
	if err != nil {
		t.Fatal(err)
	}
	if gain := res.TotalGain(0, 500); math.Abs(gain) > 1e-6 {
		t.Errorf("total gain = %v, want 0", gain)
	}
}

func TestNormalizedDownloadsZeroUpload(t *testing.T) {
	cfg := Config{
		Slots: 100,
		Peers: []PeerConfig{
			{Name: "free", Upload: trace.Const(0), Demand: trace.Always{}},
			{Name: "giver", Upload: trace.Const(100), Demand: trace.Always{}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm := res.NormalizedDownloads(0, 100)
	if norm[0] != 0 {
		t.Errorf("zero-upload peer normalized = %v", norm[0])
	}
}

// TestTitForTatUnfairVersusEq2 demonstrates why the paper rejects
// instantaneous symmetric reciprocation (Sec. II-A): with a
// BitTorrent-style top-N unchoke, the saturated heterogeneous network
// locks into winner-take-all pairings — downloads no longer track
// contributions (Jain index of download/upload ratios collapses) —
// whereas Eq. (2) returns exactly what each peer gave.
func TestTitForTatUnfairVersusEq2(t *testing.T) {
	build := func(policy fairshare.Allocator) *Result {
		cfg := Config{Slots: 4000}
		uploads := []float64{100, 300, 600, 1000}
		for i, u := range uploads {
			cfg.Peers = append(cfg.Peers, PeerConfig{
				Name:   fmt.Sprintf("p%d", i),
				Upload: trace.Const(u),
				Demand: trace.Always{},
				Policy: policy,
			})
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	eq2 := build(nil) // default pairwise-proportional
	tft := build(fairshare.TitForTat{N: 2})

	eq2Jain := JainIndex(eq2.NormalizedDownloads(3000, 4000))
	tftJain := JainIndex(tft.NormalizedDownloads(3000, 4000))
	if eq2Jain < 0.99 {
		t.Errorf("Eq.2 Jain index = %v, want ~1", eq2Jain)
	}
	if tftJain > 0.8 {
		t.Errorf("tit-for-tat Jain index = %v, expected clearly unfair (< 0.8)", tftJain)
	}
}
