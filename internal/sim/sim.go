// Package sim is the discrete-time simulator used to reproduce the
// fairness and incentive experiments of Sec. V. Time advances in
// one-second slots; at each slot every user independently decides
// whether to request (its Demand process), and every peer divides its
// current upload capacity among the requesting users according to its
// allocation policy, using only its local receipt ledger — exactly the
// model of Sec. IV-A.
package sim

import (
	"errors"
	"fmt"

	"asymshare/internal/fairshare"
	"asymshare/internal/trace"
)

// ErrBadConfig is returned for invalid simulation configurations.
var ErrBadConfig = errors.New("sim: invalid configuration")

// PeerConfig describes one peer/user pair.
type PeerConfig struct {
	// Name identifies the peer; must be unique and non-empty.
	Name string

	// Upload is the peer's upload-capacity schedule (kbps).
	Upload trace.Schedule

	// Demand is the user's request process.
	Demand trace.Demand

	// Policy is the peer's allocation rule; nil means the paper's
	// Eq. (2) pairwise-proportional rule.
	Policy fairshare.Allocator

	// Class is the user's differentiated-service tier, seen by peers
	// running the fairshare.Classes policy. Zero is the default class.
	Class fairshare.ServiceClass
}

// Config describes a simulation run.
type Config struct {
	Peers []PeerConfig

	// Slots is the number of 1-second time slots to simulate.
	Slots int

	// InitialCredit seeds every ledger pair (Eq. 2's "arbitrary small
	// positive initial values"). Zero means fairshare.DefaultInitialCredit;
	// set it negative to force exactly zero.
	InitialCredit float64

	// LedgerDecay, if in (0, 1), multiplies every ledger entry by this
	// factor each slot — the paper's future-work suggestion for faster
	// adaptation. 0 or >= 1 disables decay.
	LedgerDecay float64

	// LedgerBound, when positive, gives every peer a bounded
	// fairshare.ShardedLedger tracking at most this many counterparts
	// exactly; zero keeps exact pairwise ledgers.
	LedgerBound int
}

// Result holds per-slot series for every peer.
type Result struct {
	Names []string

	// Download[i][t] is the total bandwidth user i received at slot t
	// (kbps), summed over all serving peers including its own.
	Download [][]float64

	// Upload[i][t] is the bandwidth peer i actually granted at slot t.
	Upload [][]float64

	// Requesting[i][t] records the demand indicator I_i(t).
	Requesting [][]bool

	// Exchanged[i][j] is the total bandwidth peer i granted to user j
	// over the whole run; Exchanged[i][j]/Slots is the long-run average
	// mu_ij of Sec. IV-C, so Corollary 1 (pairwise fairness) can be
	// checked directly.
	Exchanged [][]float64

	// Ledgers are the final receipt ledgers, indexed like Names —
	// exact pairwise ledgers, or bounded ones under Config.LedgerBound.
	Ledgers []fairshare.Book
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	n := len(cfg.Peers)
	if n == 0 {
		return nil, fmt.Errorf("%w: no peers", ErrBadConfig)
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("%w: slots=%d", ErrBadConfig, cfg.Slots)
	}
	seen := make(map[string]bool, n)
	for i, p := range cfg.Peers {
		if p.Name == "" {
			return nil, fmt.Errorf("%w: peer %d has empty name", ErrBadConfig, i)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("%w: duplicate peer name %q", ErrBadConfig, p.Name)
		}
		seen[p.Name] = true
		if p.Upload == nil || p.Demand == nil {
			return nil, fmt.Errorf("%w: peer %q missing upload or demand", ErrBadConfig, p.Name)
		}
	}

	initial := cfg.InitialCredit
	switch {
	case initial == 0:
		initial = fairshare.DefaultInitialCredit
	case initial < 0:
		initial = 0
	}

	res := &Result{
		Names:      make([]string, n),
		Download:   make([][]float64, n),
		Upload:     make([][]float64, n),
		Requesting: make([][]bool, n),
		Exchanged:  make([][]float64, n),
		Ledgers:    make([]fairshare.Book, n),
	}
	policies := make([]fairshare.Allocator, n)
	for i, p := range cfg.Peers {
		res.Names[i] = p.Name
		res.Download[i] = make([]float64, cfg.Slots)
		res.Upload[i] = make([]float64, cfg.Slots)
		res.Requesting[i] = make([]bool, cfg.Slots)
		res.Exchanged[i] = make([]float64, n)
		if cfg.LedgerBound > 0 {
			res.Ledgers[i] = fairshare.NewShardedLedger(initial, cfg.LedgerBound)
		} else {
			res.Ledgers[i] = fairshare.NewLedger(initial)
		}
		policies[i] = p.Policy
		if policies[i] == nil {
			policies[i] = fairshare.PairwiseProportional{}
		}
	}
	index := make(map[string]int, n)
	for i, name := range res.Names {
		index[name] = i
	}

	requesters := make([]fairshare.Requester, 0, n)
	reqIdx := make([]int, 0, n) // peer index of each requester
	allocs := make([]fairshare.Grants, n)
	for t := 0; t < cfg.Slots; t++ {
		requesters = requesters[:0]
		reqIdx = reqIdx[:0]
		for i, p := range cfg.Peers {
			if p.Demand.Requests(t) {
				res.Requesting[i][t] = true
				requesters = append(requesters, fairshare.Requester{ID: p.Name, Class: p.Class})
				reqIdx = append(reqIdx, i)
			}
		}
		// Phase 1: every peer decides simultaneously from the ledgers as
		// they stood at the start of the slot.
		for i, p := range cfg.Peers {
			allocs[i] = allocs[i][:0]
			capacity := p.Upload.Rate(t)
			if capacity <= 0 || len(requesters) == 0 {
				continue
			}
			// Taken is what this peer has already granted each
			// requester, feeding contribution-index policies.
			for r := range requesters {
				requesters[r].Taken = res.Exchanged[i][reqIdx[r]]
			}
			allocs[i] = policies[i].Allocate(fairshare.AllocRequest{
				Capacity:   capacity,
				Requesters: requesters,
				Ledger:     res.Ledgers[i],
				Scratch:    allocs[i],
			})
		}
		// Phase 2: apply transfers and credit receipts.
		for i, p := range cfg.Peers {
			for g, grant := range allocs[i] {
				amt := grant.Rate
				if amt <= 0 {
					continue
				}
				j := reqIdx[g]
				res.Download[j][t] += amt
				res.Upload[i][t] += amt
				res.Exchanged[i][j] += amt
				// Peer j measures what it received from peer i; this is
				// the only bookkeeping Eq. (2) needs.
				res.Ledgers[j].Credit(p.Name, amt)
			}
		}
		if cfg.LedgerDecay > 0 && cfg.LedgerDecay < 1 {
			for _, l := range res.Ledgers {
				l.Decay(cfg.LedgerDecay)
			}
		}
	}
	return res, nil
}

// Slots returns the number of simulated slots.
func (r *Result) Slots() int {
	if len(r.Download) == 0 {
		return 0
	}
	return len(r.Download[0])
}

// PeerIndex returns the index of a named peer, or -1.
func (r *Result) PeerIndex(name string) int {
	for i, n := range r.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// MeanDownload returns user i's average download rate over [from, to).
func (r *Result) MeanDownload(i, from, to int) float64 {
	return mean(r.Download[i], from, to)
}

// MeanDownloadWhileRequesting returns the average download rate of user
// i over the slots in [from, to) where it was actually requesting —
// the per-request service rate.
func (r *Result) MeanDownloadWhileRequesting(i, from, to int) float64 {
	var sum float64
	count := 0
	for t := clamp(from, 0, len(r.Download[i])); t < clamp(to, 0, len(r.Download[i])); t++ {
		if r.Requesting[i][t] {
			sum += r.Download[i][t]
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// MeanUpload returns peer i's average granted upload over [from, to).
func (r *Result) MeanUpload(i, from, to int) float64 {
	return mean(r.Upload[i], from, to)
}

func mean(series []float64, from, to int) float64 {
	from = clamp(from, 0, len(series))
	to = clamp(to, 0, len(series))
	if to <= from {
		return 0
	}
	var sum float64
	for _, v := range series[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RunningAverage smooths a series with a trailing window of the given
// size (the paper smooths its rate plots with a 10-second running
// average).
func RunningAverage(series []float64, window int) []float64 {
	if window <= 1 {
		out := make([]float64, len(series))
		copy(out, series)
		return out
	}
	out := make([]float64, len(series))
	var sum float64
	for i, v := range series {
		sum += v
		if i >= window {
			sum -= series[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}
