package sim

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"asymshare/internal/fairshare"
	"asymshare/internal/trace"
)

func saturatedConfig(uploads []float64, slots int) Config {
	cfg := Config{Slots: slots}
	for i, u := range uploads {
		cfg.Peers = append(cfg.Peers, PeerConfig{
			Name:   fmt.Sprintf("p%d", i),
			Upload: trace.Const(u),
			Demand: trace.Always{},
		})
	}
	return cfg
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Slots: 10}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no peers error = %v", err)
	}
	cfg := saturatedConfig([]float64{100}, 0)
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero slots error = %v", err)
	}
	cfg = saturatedConfig([]float64{100, 200}, 10)
	cfg.Peers[1].Name = cfg.Peers[0].Name
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("duplicate name error = %v", err)
	}
	cfg = saturatedConfig([]float64{100}, 10)
	cfg.Peers[0].Name = ""
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty name error = %v", err)
	}
	cfg = saturatedConfig([]float64{100}, 10)
	cfg.Peers[0].Demand = nil
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil demand error = %v", err)
	}
}

func TestConservationOfBandwidth(t *testing.T) {
	cfg := saturatedConfig([]float64{100, 300, 700}, 200)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalCapacity := 1100.0
	for tt := 0; tt < cfg.Slots; tt++ {
		var down, up float64
		for i := range cfg.Peers {
			down += res.Download[i][tt]
			up += res.Upload[i][tt]
		}
		if math.Abs(down-up) > 1e-6 {
			t.Fatalf("slot %d: download %v != upload %v", tt, down, up)
		}
		if up > totalCapacity+1e-6 {
			t.Fatalf("slot %d: granted %v exceeds capacity %v", tt, up, totalCapacity)
		}
		// All peers are saturated and honest: the full capacity is used.
		if math.Abs(up-totalCapacity) > 1e-6 {
			t.Fatalf("slot %d: granted %v, want full capacity %v", tt, up, totalCapacity)
		}
	}
}

func TestSaturatedConvergesToOwnUpload(t *testing.T) {
	// Fig. 5(a): ten saturated users with uploads 100..1000 kbps; each
	// download rate converges to its own peer's upload rate.
	uploads := make([]float64, 10)
	for i := range uploads {
		uploads[i] = float64(100 * (i + 1))
	}
	res, err := Run(saturatedConfig(uploads, 3600))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range uploads {
		got := res.MeanDownload(i, 3000, 3600)
		if math.Abs(got-u)/u > 0.05 {
			t.Errorf("peer %d: steady-state download %v, want ~%v", i, got, u)
		}
	}
}

func TestSaturatedFairnessWithDominantPeer(t *testing.T) {
	// Fig. 5(b): fairness holds even when one peer's upload (1024)
	// exceeds the sum of all others (128+256) — the non-dominant
	// condition of [16] is not required because self-allocation is
	// allowed.
	res, err := Run(saturatedConfig([]float64{128, 256, 1024}, 3600))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{128, 256, 1024} {
		got := res.MeanDownload(i, 3000, 3600)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("peer %d: steady-state download %v, want ~%v", i, got, want)
		}
	}
}

func TestPairwiseFairnessCorollary1(t *testing.T) {
	// Corollary 1: in the saturated regime the long-run average
	// bandwidth exchanged between every pair of peers is equal.
	res, err := Run(saturatedConfig([]float64{100, 400, 900, 250}, 6000))
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Names)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a := res.Exchanged[i][j]
			b := res.Exchanged[j][i]
			if a == 0 && b == 0 {
				continue
			}
			asym := math.Abs(a-b) / math.Max(a, b)
			if asym > 0.05 {
				t.Errorf("pair (%d,%d): exchanged %v vs %v (asym %.3f)", i, j, a, b, asym)
			}
		}
	}
}

func TestTheoremOneIncentiveBound(t *testing.T) {
	// Theorem 1: with random demand, every honest user averages at
	// least gamma_i * mu_i — its bandwidth in isolation — regardless of
	// other peers' strategies.
	gammas := []float64{0.3, 0.6, 0.9}
	uploads := []float64{200, 500, 800}
	cfg := Config{Slots: 20000}
	for i := range uploads {
		cfg.Peers = append(cfg.Peers, PeerConfig{
			Name:   fmt.Sprintf("p%d", i),
			Upload: trace.Const(uploads[i]),
			Demand: trace.NewBernoulli(gammas[i], int64(100+i)),
		})
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range uploads {
		isolation := gammas[i] * uploads[i]
		got := res.MeanDownload(i, 2000, cfg.Slots)
		// Allow 5% statistical slack below the bound.
		if got < 0.95*isolation {
			t.Errorf("peer %d: mean download %v below isolation bound %v", i, got, isolation)
		}
	}
}

func TestTheoremOneHoldsAgainstMaliciousCoalition(t *testing.T) {
	// Two colluding peers serve only each other; the honest third peer
	// must still receive at least its isolated bandwidth.
	coalition := map[fairshare.ID]bool{"evil0": true, "evil1": true}
	cfg := Config{
		Slots: 8000,
		Peers: []PeerConfig{
			{Name: "honest", Upload: trace.Const(500), Demand: trace.NewBernoulli(0.5, 1)},
			{Name: "evil0", Upload: trace.Const(500), Demand: trace.NewBernoulli(0.5, 2),
				Policy: fairshare.Favor{Members: coalition}},
			{Name: "evil1", Upload: trace.Const(500), Demand: trace.NewBernoulli(0.5, 3),
				Policy: fairshare.Favor{Members: coalition}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	isolation := 0.5 * 500.0
	got := res.MeanDownload(0, 1000, cfg.Slots)
	if got < 0.95*isolation {
		t.Errorf("honest peer mean download %v below isolation bound %v", got, isolation)
	}
}

func TestFreeloaderIsStarved(t *testing.T) {
	// A peer that never contributes (zero upload) gets almost nothing
	// once ledgers converge, while contributors split the capacity.
	cfg := Config{
		Slots: 4000,
		Peers: []PeerConfig{
			{Name: "free", Upload: trace.Const(0), Demand: trace.Always{}},
			{Name: "a", Upload: trace.Const(500), Demand: trace.Always{}},
			{Name: "b", Upload: trace.Const(500), Demand: trace.Always{}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freeRate := res.MeanDownload(0, 3000, cfg.Slots)
	honestRate := res.MeanDownload(1, 3000, cfg.Slots)
	if freeRate > 0.02*honestRate {
		t.Errorf("freeloader rate %v not starved relative to honest %v", freeRate, honestRate)
	}
	if math.Abs(honestRate-500) > 25 {
		t.Errorf("honest rate %v, want ~500", honestRate)
	}
}

func TestWithholdingServerStillCounted(t *testing.T) {
	// A peer with capacity that refuses to serve (Withhold) hurts the
	// others' totals but cannot be forced; the honest peers simply
	// trade among themselves.
	cfg := Config{
		Slots: 2000,
		Peers: []PeerConfig{
			{Name: "miser", Upload: trace.Const(1000), Demand: trace.Always{},
				Policy: fairshare.Withhold{}},
			{Name: "a", Upload: trace.Const(400), Demand: trace.Always{}},
			{Name: "b", Upload: trace.Const(400), Demand: trace.Always{}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The miser's download decays toward zero since it never credits
	// anyone's ledger.
	miser := res.MeanDownload(0, 1500, cfg.Slots)
	honest := res.MeanDownload(1, 1500, cfg.Slots)
	if miser > 0.05*honest {
		t.Errorf("withholding peer still receives %v vs honest %v", miser, honest)
	}
}

func TestIdleContributorBanksCredit(t *testing.T) {
	// Fig. 8(a): peer 0 contributes from t=0 but only starts requesting
	// at t=1000 alongside newcomer peer 1; peer 0's early contribution
	// must buy it a strictly better rate than peer 1 right after both
	// join.
	cfg := Config{
		Slots: 2000,
		Peers: []PeerConfig{
			{Name: "saver", Upload: trace.Const(1024), Demand: trace.After{Start: 1000, Inner: trace.Always{}}},
			{Name: "late", Upload: trace.StartingAt{Start: 1000, Inner: trace.Const(1024)},
				Demand: trace.After{Start: 1000, Inner: trace.Always{}}},
		},
	}
	for i := 0; i < 8; i++ {
		cfg.Peers = append(cfg.Peers, PeerConfig{
			Name:   fmt.Sprintf("other%d", i),
			Upload: trace.Const(1024),
			Demand: trace.Always{},
		})
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	saver := res.MeanDownload(0, 1000, 1200)
	late := res.MeanDownload(1, 1000, 1200)
	if saver <= 1.1*late {
		t.Errorf("saver %v not clearly ahead of late joiner %v", saver, late)
	}
	if late >= 1024 {
		t.Errorf("late joiner rate %v should start below its upload capacity", late)
	}
	// Before t=1000 the others benefit from the saver's idle capacity:
	// they receive more than their own upload rate.
	other := res.MeanDownload(2, 200, 1000)
	if other <= 1024 {
		t.Errorf("others rate %v should exceed own upload 1024 while saver is idle", other)
	}
}

func TestAdaptationToCapacityDrop(t *testing.T) {
	// Fig. 8(b): one of ten peers halves its upload at t=1000 and
	// restores it at t=3000; its download tracks the change.
	cfg := Config{Slots: 5000}
	for i := 0; i < 10; i++ {
		var upload trace.Schedule = trace.Const(1024)
		if i == 0 {
			upload = trace.Steps{{From: 0, Rate: 1024}, {From: 1000, Rate: 512}, {From: 3000, Rate: 1024}}
		}
		cfg.Peers = append(cfg.Peers, PeerConfig{
			Name:   fmt.Sprintf("p%d", i),
			Upload: upload,
			Demand: trace.Always{},
		})
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := res.MeanDownload(0, 800, 1000)
	during := res.MeanDownload(0, 2700, 3000)
	if before < 950 {
		t.Errorf("pre-drop rate %v, want ~1024", before)
	}
	if during > 0.85*before {
		t.Errorf("during-drop rate %v did not fall from %v", during, before)
	}
	// Other peers recover the lost service among themselves.
	others := res.MeanDownload(5, 2700, 3000)
	if others < 1000 {
		t.Errorf("other peers rate %v during drop, want ~1024", others)
	}
}

func TestLedgerDecaySpeedsAdaptation(t *testing.T) {
	// Ablation: with a decaying ledger the drop in Fig. 8(b) is
	// reflected faster (the paper notes the cumulative system "has slow
	// dynamics" that could be sped up by weighing newer contributions).
	build := func(decay float64) float64 {
		cfg := Config{Slots: 2400, LedgerDecay: decay}
		for i := 0; i < 6; i++ {
			var upload trace.Schedule = trace.Const(1024)
			if i == 0 {
				upload = trace.Steps{{From: 0, Rate: 1024}, {From: 1200, Rate: 256}}
			}
			cfg.Peers = append(cfg.Peers, PeerConfig{
				Name:   fmt.Sprintf("p%d", i),
				Upload: upload,
				Demand: trace.Always{},
			})
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Download of the degraded peer shortly after the drop: lower
		// means the system adapted faster.
		return res.MeanDownload(0, 1400, 1600)
	}
	cumulative := build(0)
	decayed := build(0.995)
	if decayed >= cumulative {
		t.Errorf("decayed ledger rate %v not faster-adapting than cumulative %v", decayed, cumulative)
	}
}

func TestRunningAverage(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5}
	got := RunningAverage(series, 1)
	for i := range series {
		if got[i] != series[i] {
			t.Fatalf("window=1 should copy: %v", got)
		}
	}
	got = RunningAverage(series, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("RunningAverage = %v, want %v", got, want)
		}
	}
	if out := RunningAverage(nil, 5); len(out) != 0 {
		t.Errorf("nil series = %v", out)
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Run(saturatedConfig([]float64{100, 200}, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots() != 50 {
		t.Errorf("Slots = %d", res.Slots())
	}
	if res.PeerIndex("p1") != 1 || res.PeerIndex("zz") != -1 {
		t.Error("PeerIndex wrong")
	}
	if got := res.MeanDownload(0, 40, 10); got != 0 {
		t.Errorf("inverted range mean = %v", got)
	}
	if got := res.MeanDownloadWhileRequesting(0, 0, 50); got <= 0 {
		t.Errorf("while-requesting mean = %v", got)
	}
	if got := res.MeanUpload(1, 0, 50); got <= 0 {
		t.Errorf("MeanUpload = %v", got)
	}
	empty := &Result{}
	if empty.Slots() != 0 {
		t.Error("empty result Slots != 0")
	}
}

func TestDemandGating(t *testing.T) {
	// A user that never requests receives nothing, even with credit.
	cfg := Config{
		Slots: 100,
		Peers: []PeerConfig{
			{Name: "idle", Upload: trace.Const(500), Demand: trace.Never{}},
			{Name: "busy", Upload: trace.Const(500), Demand: trace.Always{}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanDownload(0, 0, 100); got != 0 {
		t.Errorf("idle user downloaded %v", got)
	}
	// The busy user gets both peers' capacity.
	if got := res.MeanDownload(1, 10, 100); math.Abs(got-1000) > 1e-6 {
		t.Errorf("busy user rate %v, want 1000", got)
	}
}
