package sim_test

import (
	"fmt"

	"asymshare/internal/sim"
	"asymshare/internal/trace"
)

// Example runs the paper's saturated-network experiment in miniature:
// three peers with different upload capacities, everyone requesting
// all the time. Each user's download converges to its own upload rate
// — the Eq. (2) fixed point of Fig. 5.
func Example() {
	cfg := sim.Config{
		Slots: 2000,
		Peers: []sim.PeerConfig{
			{Name: "slow", Upload: trace.Const(128), Demand: trace.Always{}},
			{Name: "mid", Upload: trace.Const(256), Demand: trace.Always{}},
			{Name: "fast", Upload: trace.Const(1024), Demand: trace.Always{}},
		},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		panic(err)
	}
	for i, name := range res.Names {
		fmt.Printf("%s: %.0f kbps\n", name, res.MeanDownload(i, 1800, 2000))
	}
	// Output:
	// slow: 128 kbps
	// mid: 256 kbps
	// fast: 1024 kbps
}

// ExampleJainIndex shows the fairness metric used throughout the
// ablations.
func ExampleJainIndex() {
	fmt.Printf("equal:   %.2f\n", sim.JainIndex([]float64{5, 5, 5, 5}))
	fmt.Printf("one hog: %.2f\n", sim.JainIndex([]float64{20, 0, 0, 0}))
	// Output:
	// equal:   1.00
	// one hog: 0.25
}
