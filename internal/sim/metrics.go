package sim

// Analysis helpers used by the figure generators, the ablation
// benchmarks and the tests to turn raw per-slot series into the
// quantities the paper discusses.

import "math"

// JainIndex returns Jain's fairness index of the given values:
// (sum x)^2 / (n * sum x^2), in (0, 1], 1 meaning perfectly equal.
// An empty or all-zero input returns 0.
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(values)) * sumSq)
}

// NormalizedDownloads returns each user's mean download over
// [from, to) divided by its mean upload capacity over the same window —
// the "got back what you gave" ratio that the paper's fairness notion
// predicts converges to >= 1 for contributors.
func (r *Result) NormalizedDownloads(from, to int) []float64 {
	out := make([]float64, len(r.Names))
	for i := range r.Names {
		up := mean(r.Upload[i], from, to)
		down := mean(r.Download[i], from, to)
		if up <= 0 {
			out[i] = 0
			continue
		}
		out[i] = down / up
	}
	return out
}

// ConvergenceSlot returns the first slot after which the smoothed
// series stays within tol (relative) of target for the remainder of
// the run, or -1 if it never settles. window is the smoothing window.
func ConvergenceSlot(series []float64, target, tol float64, window int) int {
	if target == 0 || len(series) == 0 {
		return -1
	}
	smooth := RunningAverage(series, window)
	settled := -1
	for t, v := range smooth {
		if math.Abs(v-target)/math.Abs(target) <= tol {
			if settled < 0 {
				settled = t
			}
		} else {
			settled = -1
		}
	}
	return settled
}

// PairwiseAsymmetry returns the maximum relative asymmetry
// |x_ij - x_ji| / max(x_ij, x_ji) over all peer pairs with non-zero
// exchange — the quantity Corollary 1 drives to zero in saturation.
func (r *Result) PairwiseAsymmetry() float64 {
	worst := 0.0
	n := len(r.Names)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := r.Exchanged[i][j], r.Exchanged[j][i]
			high := math.Max(a, b)
			if high == 0 {
				continue
			}
			if asym := math.Abs(a-b) / high; asym > worst {
				worst = asym
			}
		}
	}
	return worst
}

// TotalGain returns the aggregate bandwidth users received beyond what
// their own peers granted them while requesting in isolation terms:
// sum over users of (download - own-upload-consumed), i.e. how much the
// cooperative system moved across peer boundaries.
func (r *Result) TotalGain(from, to int) float64 {
	var gain float64
	for i := range r.Names {
		for t := clamp(from, 0, r.Slots()); t < clamp(to, 0, r.Slots()); t++ {
			// Download from others only: total minus the self-exchange
			// share cannot be extracted per slot, so approximate with
			// download minus own upload granted (self-loops cancel in
			// the sum across users anyway).
			gain += r.Download[i][t] - r.Upload[i][t]
		}
	}
	return gain
}
