package fsx

// ErrFS: a deterministic fault-injecting in-memory filesystem,
// mirroring internal/netsim's replay-from-seed design for disks
// instead of links. It models the durability semantics that matter for
// crash consistency (Pillai et al., OSDI '14):
//
//   - data reaches stable storage only at Sync; a power cut keeps the
//     synced prefix plus a seeded-random *torn tail* of whatever was
//     appended since — the analogue of a write interrupted mid-sector;
//   - creations, renames and removals reach stable storage only at
//     SyncDir on the parent; a fully-fsynced file still vanishes on
//     crash if its directory entry was never synced;
//   - any mutating operation can be made to fail with an injected
//     error (EIO/ENOSPC analogues), short-write, or trigger the power
//     cut, selected by a global operation ordinal so a sweep can crash
//     a workload at every single fault point it crosses.
//
// After Crash every handle and FS call returns ErrCrashed; Reboot
// restores the durable view as the new logical state, like mounting
// the disk after power returns. Given the same seed and the same
// logical operation sequence, fault decisions and torn-tail lengths
// replay byte-identically.

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Injection sentinels. FailOp accepts any error; these are provided so
// tests and callers classify the common device failures consistently.
var (
	// ErrCrashed is returned by every operation after the simulated
	// power cut (and by handles that survived a Reboot — the "disk"
	// they referenced is gone).
	ErrCrashed = errors.New("fsx: simulated power cut")

	// ErrDiskIO is the EIO analogue for FailOp.
	ErrDiskIO = errors.New("fsx: injected I/O error")

	// ErrNoSpace is the ENOSPC analogue for FailOp.
	ErrNoSpace = errors.New("fsx: injected no-space error")
)

// inode is one file's content. data is the logical content live
// readers see; synced is the snapshot known durable. The workloads
// above this layer only append or replace-via-rename, so the durable
// view after a crash is synced plus a torn tail of data beyond it; if
// content diverged below the synced length (an overwrite), the crash
// conservatively keeps only the synced snapshot.
type inode struct {
	data   []byte
	synced []byte
}

func (ino *inode) durableView(r *rand.Rand) []byte {
	n := len(ino.synced)
	if len(ino.data) >= n && bytes.Equal(ino.data[:n], ino.synced) {
		tail := ino.data[n:]
		keep := 0
		if len(tail) > 0 {
			keep = r.Intn(len(tail) + 1)
		}
		return append([]byte(nil), ino.data[:n+keep]...)
	}
	return append([]byte(nil), ino.synced...)
}

// ErrFS implements FS. The zero value is not usable; use NewErrFS.
type ErrFS struct {
	mu    sync.Mutex
	seed  int64
	epoch uint64 // bumped on Crash and Reboot; stale handles die

	names map[string]*inode // logical namespace
	dur   map[string]*inode // durable namespace (committed by SyncDir)
	dirs  map[string]bool   // existing directories (durable immediately)

	ops      int           // mutating-operation ordinal, 1-based
	crashAt  int           // crash when ops reaches this (0 = never)
	failAt   map[int]error // injected error per ordinal
	shortAt  map[int]bool  // short-write per ordinal
	crashed  bool
	durSnap  map[string][]byte // durable bytes frozen at crash time
	rebooted int               // Reboot count, for diagnostics
}

// NewErrFS returns an empty fault-injecting filesystem. The root
// directory exists; create others with MkdirAll.
func NewErrFS(seed int64) *ErrFS {
	return &ErrFS{
		seed:    seed,
		names:   make(map[string]*inode),
		dur:     make(map[string]*inode),
		dirs:    map[string]bool{".": true, "/": true},
		failAt:  make(map[int]error),
		shortAt: make(map[int]bool),
	}
}

// CrashAtOp schedules the power cut at the nth mutating operation
// (1-based). Zero disables. The nth operation itself fails with
// ErrCrashed; if it is a Write, a seeded-random prefix of its buffer
// may still reach the torn tail, like a write interrupted mid-flight.
func (e *ErrFS) CrashAtOp(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.crashAt = n
}

// FailOp injects err at the nth mutating operation (1-based). The
// operation does not take effect. Use ErrDiskIO/ErrNoSpace for the
// classic device failures.
func (e *ErrFS) FailOp(n int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failAt[n] = err
}

// ShortWriteOp makes the nth mutating operation, if it is a Write,
// persist only half its buffer and return io.ErrShortWrite.
func (e *ErrFS) ShortWriteOp(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.shortAt[n] = true
}

// Ops returns the number of mutating operations performed so far. A
// sweep first runs the workload clean to learn the op count, then
// replays it with CrashAtOp(i) for every i in [1, Ops()].
func (e *ErrFS) Ops() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ops
}

// Crash cuts power immediately: the durable view is frozen and every
// subsequent operation returns ErrCrashed until Reboot.
func (e *ErrFS) Crash() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.crashed {
		e.crashLocked()
	}
}

// Crashed reports whether the power is currently cut.
func (e *ErrFS) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Reboot restores power: the logical namespace becomes the durable
// view frozen at crash time. Handles opened before the crash stay
// dead. Reboot on an un-crashed filesystem is a hard power cycle —
// crash then reboot.
func (e *ErrFS) Reboot() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.crashed {
		e.crashLocked()
	}
	e.names = make(map[string]*inode, len(e.durSnap))
	e.dur = make(map[string]*inode, len(e.durSnap))
	for name, data := range e.durSnap {
		ino := &inode{
			data:   append([]byte(nil), data...),
			synced: append([]byte(nil), data...),
		}
		e.names[name] = ino
		e.dur[name] = ino
	}
	e.durSnap = nil
	e.crashed = false
	// A crash point is one-shot: the machine that comes back up is not
	// scheduled to die at the same op again.
	e.crashAt = 0
	e.epoch++
	e.rebooted++
}

// crashLocked freezes the durable view. Torn-tail lengths are drawn
// from a generator seeded by (seed, op ordinal) over files in sorted
// order, so the outcome is independent of map iteration and goroutine
// interleaving.
func (e *ErrFS) crashLocked() {
	r := rand.New(rand.NewSource(e.seed ^ int64(uint64(e.ops+1)*0x9E3779B97F4A7C15)))
	names := make([]string, 0, len(e.dur))
	for name := range e.dur {
		names = append(names, name)
	}
	sort.Strings(names)
	e.durSnap = make(map[string][]byte, len(names))
	for _, name := range names {
		e.durSnap[name] = e.dur[name].durableView(r)
	}
	e.crashed = true
	e.epoch++
}

// checkOp advances the mutating-operation ordinal and applies any
// scheduled fault. It returns (injected error, isShortWrite). Callers
// hold e.mu.
func (e *ErrFS) checkOp() (error, bool) {
	if e.crashed {
		return ErrCrashed, false
	}
	e.ops++
	if err, ok := e.failAt[e.ops]; ok {
		delete(e.failAt, e.ops)
		return err, false
	}
	if e.shortAt[e.ops] {
		delete(e.shortAt, e.ops)
		return io.ErrShortWrite, true
	}
	if e.crashAt > 0 && e.ops >= e.crashAt {
		return ErrCrashed, false
	}
	return nil, false
}

func notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

func clean(name string) string { return filepath.Clean(name) }

func (e *ErrFS) parentExistsLocked(name string) bool {
	dir := filepath.Dir(name)
	return e.dirs[dir]
}

// OpenFile implements FS.
func (e *ErrFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	name = clean(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	ino, exists := e.names[name]
	creating := !exists && flag&os.O_CREATE != 0
	truncating := exists && flag&os.O_TRUNC != 0 && len(ino.data) > 0
	if !exists && !creating {
		return nil, notExist("open", name)
	}
	if creating && !e.parentExistsLocked(name) {
		return nil, notExist("open", name)
	}
	if creating || truncating {
		if err, _ := e.checkOp(); err != nil {
			if errors.Is(err, ErrCrashed) {
				e.crashLocked()
			}
			return nil, &fs.PathError{Op: "open", Path: name, Err: err}
		}
	}
	if creating {
		ino = &inode{}
		e.names[name] = ino
	}
	if truncating {
		ino.data = nil
	}
	f := &errFile{fs: e, name: name, ino: ino, epoch: e.epoch, flag: flag}
	if flag&os.O_APPEND != 0 {
		f.off = int64(len(ino.data))
	}
	return f, nil
}

// Rename implements FS. Durable after SyncDir on the parent.
func (e *ErrFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	ino, ok := e.names[oldpath]
	if !ok {
		return notExist("rename", oldpath)
	}
	if !e.parentExistsLocked(newpath) {
		return notExist("rename", newpath)
	}
	if err, _ := e.checkOp(); err != nil {
		if errors.Is(err, ErrCrashed) {
			e.crashLocked()
		}
		return &fs.PathError{Op: "rename", Path: oldpath, Err: err}
	}
	delete(e.names, oldpath)
	e.names[newpath] = ino
	return nil
}

// Remove implements FS. Durable after SyncDir on the parent.
func (e *ErrFS) Remove(name string) error {
	name = clean(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if _, ok := e.names[name]; !ok {
		return notExist("remove", name)
	}
	if err, _ := e.checkOp(); err != nil {
		if errors.Is(err, ErrCrashed) {
			e.crashLocked()
		}
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	delete(e.names, name)
	return nil
}

// MkdirAll implements FS. Directory creation is modelled as durable
// immediately — the journalled-store workloads create their directory
// once at open, long before any fault window of interest.
func (e *ErrFS) MkdirAll(path string, perm fs.FileMode) error {
	path = clean(path)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	for p := path; ; p = filepath.Dir(p) {
		e.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

// ReadDir implements FS.
func (e *ErrFS) ReadDir(name string) ([]fs.DirEntry, error) {
	name = clean(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	if !e.dirs[name] {
		return nil, notExist("readdir", name)
	}
	var out []fs.DirEntry
	for p, ino := range e.names {
		if filepath.Dir(p) == name {
			out = append(out, &memDirEntry{name: filepath.Base(p), size: int64(len(ino.data))})
		}
	}
	for d := range e.dirs {
		if d != name && filepath.Dir(d) == name {
			out = append(out, &memDirEntry{name: filepath.Base(d), dir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// Stat implements FS.
func (e *ErrFS) Stat(name string) (fs.FileInfo, error) {
	name = clean(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	if ino, ok := e.names[name]; ok {
		return &memFileInfo{name: filepath.Base(name), size: int64(len(ino.data))}, nil
	}
	if e.dirs[name] {
		return &memFileInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, notExist("stat", name)
}

// SyncDir implements FS: commits the directory's current entries —
// creations, renames and removals — to the durable namespace.
func (e *ErrFS) SyncDir(dir string) error {
	dir = clean(dir)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if !e.dirs[dir] {
		return notExist("syncdir", dir)
	}
	if err, _ := e.checkOp(); err != nil {
		if errors.Is(err, ErrCrashed) {
			e.crashLocked()
		}
		return &fs.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	for name := range e.dur {
		if filepath.Dir(name) == dir {
			if _, ok := e.names[name]; !ok {
				delete(e.dur, name)
			}
		}
	}
	for name, ino := range e.names {
		if filepath.Dir(name) == dir {
			e.dur[name] = ino
		}
	}
	return nil
}

// DurableNames lists the names that would survive a crash right now,
// sorted. Test helper.
func (e *ErrFS) DurableNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.dur))
	for name := range e.dur {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// errFile is a handle on an ErrFS inode.
type errFile struct {
	fs    *ErrFS
	name  string
	ino   *inode
	epoch uint64
	flag  int
	off   int64
	close bool
}

func (f *errFile) stale() bool { return f.close || f.epoch != f.fs.epoch }

func (f *errFile) Name() string { return f.name }

func (f *errFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed || f.stale() {
		return 0, ErrCrashed
	}
	if f.off >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *errFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed || f.stale() {
		return 0, ErrCrashed
	}
	err, short := f.fs.checkOp()
	if short {
		// Half the buffer lands, then the device errors out.
		n := f.writeLocked(p[:len(p)/2])
		return n, io.ErrShortWrite
	}
	if err != nil {
		if errors.Is(err, ErrCrashed) {
			// A power cut mid-write: a seeded-random prefix of the
			// buffer may still hit the platter before the light goes
			// out; it lands in the unsynced tail and is subject to the
			// usual torn-tail draw.
			r := rand.New(rand.NewSource(f.fs.seed ^ (0x517CC1B727220A95 * int64(f.fs.ops))))
			f.writeLocked(p[:r.Intn(len(p)+1)])
			f.fs.crashLocked()
		}
		return 0, err
	}
	return f.writeLocked(p), nil
}

// writeLocked applies a write at the handle offset, zero-filling any
// gap, and returns len(p).
func (f *errFile) writeLocked(p []byte) int {
	if f.flag&os.O_APPEND != 0 {
		f.off = int64(len(f.ino.data))
	}
	end := f.off + int64(len(p))
	for int64(len(f.ino.data)) < end {
		f.ino.data = append(f.ino.data, 0)
	}
	copy(f.ino.data[f.off:end], p)
	f.off = end
	return len(p)
}

func (f *errFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed || f.stale() {
		return 0, ErrCrashed
	}
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.ino.data)) + offset
	}
	if f.off < 0 {
		f.off = 0
	}
	return f.off, nil
}

func (f *errFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed || f.stale() {
		return ErrCrashed
	}
	if err, _ := f.fs.checkOp(); err != nil {
		if errors.Is(err, ErrCrashed) {
			f.fs.crashLocked()
		}
		return err
	}
	f.ino.synced = append([]byte(nil), f.ino.data...)
	return nil
}

func (f *errFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed || f.stale() {
		return ErrCrashed
	}
	if err, _ := f.fs.checkOp(); err != nil {
		if errors.Is(err, ErrCrashed) {
			f.fs.crashLocked()
		}
		return err
	}
	if size < 0 {
		size = 0
	}
	for int64(len(f.ino.data)) < size {
		f.ino.data = append(f.ino.data, 0)
	}
	// Only the logical content shrinks; the synced snapshot stands
	// until the next Sync, so a crash after an unsynced truncate
	// conservatively restores the old, longer content.
	f.ino.data = f.ino.data[:size]
	return nil
}

func (f *errFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.close {
		return fs.ErrClosed
	}
	f.close = true
	if f.fs.crashed || f.epoch != f.fs.epoch {
		return ErrCrashed
	}
	return nil
}

// memDirEntry / memFileInfo satisfy fs.DirEntry / fs.FileInfo.
type memDirEntry struct {
	name string
	size int64
	dir  bool
}

func (d *memDirEntry) Name() string { return d.name }
func (d *memDirEntry) IsDir() bool  { return d.dir }
func (d *memDirEntry) Type() fs.FileMode {
	if d.dir {
		return fs.ModeDir
	}
	return 0
}
func (d *memDirEntry) Info() (fs.FileInfo, error) {
	return &memFileInfo{name: d.name, size: d.size, dir: d.dir}, nil
}

type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i *memFileInfo) Name() string { return i.name }
func (i *memFileInfo) Size() int64  { return i.size }
func (i *memFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i *memFileInfo) ModTime() time.Time { return time.Time{} }
func (i *memFileInfo) IsDir() bool        { return i.dir }
func (i *memFileInfo) Sys() any           { return nil }
