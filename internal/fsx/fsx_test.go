package fsx

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// implementations returns both FS implementations rooted at a fresh
// directory, so the contract tests run against the real OS and the
// fault injector alike.
func implementations(t *testing.T) map[string]struct {
	fsys FS
	root string
} {
	t.Helper()
	efs := NewErrFS(1)
	if err := efs.MkdirAll("/root", 0o755); err != nil {
		t.Fatal(err)
	}
	return map[string]struct {
		fsys FS
		root string
	}{
		"os":    {OS, t.TempDir()},
		"errfs": {efs, "/root"},
	}
}

func TestFSContract(t *testing.T) {
	for name, impl := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			fsys, root := impl.fsys, impl.root
			path := filepath.Join(root, "a.txt")

			if _, err := fsys.Stat(path); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Stat missing = %v", err)
			}
			f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(fsys, path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "hello world" {
				t.Fatalf("content = %q", got)
			}
			info, err := fsys.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() != 11 || info.IsDir() {
				t.Fatalf("Stat = size %d dir %v", info.Size(), info.IsDir())
			}

			// Append mode continues at the end.
			f, err = fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("!")); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if got, _ := ReadFile(fsys, path); string(got) != "hello world!" {
				t.Fatalf("after append = %q", got)
			}

			// Rename + ReadDir + Remove.
			dst := filepath.Join(root, "b.txt")
			if err := fsys.Rename(path, dst); err != nil {
				t.Fatal(err)
			}
			if err := fsys.SyncDir(root); err != nil {
				t.Fatal(err)
			}
			entries, err := fsys.ReadDir(root)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 || entries[0].Name() != "b.txt" {
				t.Fatalf("ReadDir = %v", entries)
			}
			if err := fsys.Remove(dst); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.Stat(dst); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Stat after Remove = %v", err)
			}

			// Truncate cuts the logical content.
			f, err = fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			if err := f.Truncate(4); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Seek(0, 0); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if got, _ := ReadFile(fsys, path); string(got) != "0123" {
				t.Fatalf("after truncate = %q", got)
			}
		})
	}
}

func TestWriteFileAtomic(t *testing.T) {
	for name, impl := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(impl.root, "doc.json")
			if err := WriteFileAtomic(impl.fsys, path, []byte("v1"), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := WriteFileAtomic(impl.fsys, path, []byte("v2"), 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(impl.fsys, path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "v2" {
				t.Fatalf("content = %q", got)
			}
			// No temp litter.
			entries, err := impl.fsys.ReadDir(impl.root)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 {
				t.Fatalf("dir entries = %v", entries)
			}
		})
	}
}

func TestWriteFileAtomicFailureLeavesOld(t *testing.T) {
	efs := NewErrFS(7)
	if err := efs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	path := "/d/doc"
	if err := WriteFileAtomic(efs, path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Fail every mutating op of the second write in turn; the visible
	// content must be "old" or "new", never a mix, and the temp file
	// must not survive a failure.
	probe := NewErrFS(7)
	probe.MkdirAll("/d", 0o755)
	if err := WriteFileAtomic(probe, path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := probe.Ops()
	if err := WriteFileAtomic(probe, path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops() - base

	for i := 1; i <= total; i++ {
		efs := NewErrFS(int64(i))
		efs.MkdirAll("/d", 0o755)
		if err := WriteFileAtomic(efs, path, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		efs.FailOp(efs.Ops()+i, ErrDiskIO)
		err := WriteFileAtomic(efs, path, []byte("new"), 0o644)
		got, readErr := ReadFile(efs, path)
		if readErr != nil {
			t.Fatalf("op %d: read back: %v", i, readErr)
		}
		if err != nil {
			if !errors.Is(err, ErrDiskIO) {
				t.Fatalf("op %d: error not the injected one: %v", i, err)
			}
			if string(got) != "old" && string(got) != "new" {
				t.Fatalf("op %d: torn content %q", i, got)
			}
		} else if string(got) != "new" {
			t.Fatalf("op %d: clean write left %q", i, got)
		}
	}
}

func TestOSSyncDir(t *testing.T) {
	if err := OS.SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on real dir: %v", err)
	}
	if err := OS.SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on missing dir succeeded")
	}
}
