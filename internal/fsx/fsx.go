// Package fsx is the filesystem seam under every durable artefact of
// the node: the message journal (internal/store), the fairness-ledger
// checkpoints (internal/fairshare) and the share handles
// (internal/core). It plays the role internal/transport plays for the
// network — the narrowest interface that lets the whole persistence
// stack run against a fake disk. fsx.OS is the real operating system
// and is what production binaries use; the seam adds zero behaviour
// change there. Tests inject ErrFS, a deterministic fault-injecting
// in-memory filesystem that models the torn-write and fsync pitfalls
// catalogued by Pillai et al. (OSDI '14): EIO/ENOSPC at the Nth
// operation, short writes, and power cuts that keep only synced bytes
// plus a seeded-random torn tail.
package fsx

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the handle surface the durability layer needs: sequential
// read/write, explicit Sync (the durability point), and Truncate (used
// by journal recovery to cut torn tails).
type File interface {
	io.Reader
	io.Writer
	io.Closer

	// Seek repositions the handle (used by recovery re-reads).
	Seek(offset int64, whence int) (int64, error)

	// Sync flushes the file's content to stable storage. Data written
	// but not synced may be lost — wholly or partially — on a crash.
	Sync() error

	// Truncate changes the file's size.
	Truncate(size int64) error

	// Name returns the path the file was opened with.
	Name() string
}

// FS is a filesystem. Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile is the generalized open call, mirroring os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)

	// Rename atomically replaces newpath with oldpath. Like the POSIX
	// call, the *name change* is only durable after SyncDir on the
	// parent directory.
	Rename(oldpath, newpath string) error

	// Remove deletes a file. Durable after SyncDir on the parent.
	Remove(name string) error

	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error

	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]fs.DirEntry, error)

	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)

	// SyncDir fsyncs a directory, making creations, renames and
	// removals inside it durable. Skipping it is the classic
	// crash-consistency bug: a file can be fully fsynced yet vanish
	// because its directory entry never reached the disk.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		// Directory fsync is unsupported on some platforms and
		// filesystems, which report EINVAL-class errors; treat those as
		// "nothing to do", as every production WAL does.
		if errors.Is(syncErr, fs.ErrInvalid) || errors.Is(syncErr, syscall.EINVAL) {
			return closeErr
		}
		return syncErr
	}
	return closeErr
}

// ReadFile reads a whole file through an FS.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFileAtomic durably replaces path with data: write to a
// same-directory temp file, fsync it, close, rename over path, then
// fsync the parent directory. A crash at any point leaves either the
// complete old content or the complete new content — never a mix, and
// never a name pointing at a half-written file.
func WriteFileAtomic(fsys FS, path string, data []byte, perm fs.FileMode) (err error) {
	dir := filepath.Dir(path)
	tmpName := path + ".tmp"
	tmp, err := fsys.OpenFile(tmpName, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("fsx: atomic write %s: %w", path, err)
	}
	closed := false
	defer func() {
		if err != nil {
			if !closed {
				tmp.Close()
			}
			fsys.Remove(tmpName)
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return fmt.Errorf("fsx: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fsx: atomic write %s: sync: %w", path, err)
	}
	closed = true
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fsx: atomic write %s: close: %w", path, err)
	}
	if err = fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("fsx: atomic write %s: rename: %w", path, err)
	}
	if err = fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("fsx: atomic write %s: sync dir: %w", path, err)
	}
	return nil
}
