package fsx

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

// write is a test helper: create/append name with data, optionally
// syncing file and directory.
func write(t *testing.T, e *ErrFS, name string, data []byte, sync, syncDir bool) error {
	t.Helper()
	f, err := e.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if syncDir {
		return e.SyncDir("/d")
	}
	return nil
}

func TestCrashKeepsSyncedPrefix(t *testing.T) {
	e := NewErrFS(3)
	e.MkdirAll("/d", 0o755)
	if err := write(t, e, "/d/f", []byte("durable"), true, true); err != nil {
		t.Fatal(err)
	}
	// Unsynced append: may survive partially (torn tail), never more.
	if err := write(t, e, "/d/f", []byte("-volatile"), false, false); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	if _, err := ReadFile(e, "/d/f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash = %v", err)
	}
	e.Reboot()
	got, err := ReadFile(e, "/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("durable")) {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if len(got) > len("durable-volatile") {
		t.Fatalf("content grew across crash: %q", got)
	}
	if !bytes.HasPrefix([]byte("durable-volatile"), got) {
		t.Fatalf("torn tail is not a prefix of what was written: %q", got)
	}
}

func TestCrashLosesUnsyncedDirEntry(t *testing.T) {
	e := NewErrFS(4)
	e.MkdirAll("/d", 0o755)
	// File fully fsynced but the directory never synced: the classic
	// pitfall — the file vanishes.
	if err := write(t, e, "/d/ghost", []byte("data"), true, false); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	e.Reboot()
	if _, err := e.Stat("/d/ghost"); err == nil {
		t.Fatal("file with unsynced dir entry survived the crash")
	}
	// With the dir synced it survives.
	e2 := NewErrFS(4)
	e2.MkdirAll("/d", 0o755)
	if err := write(t, e2, "/d/kept", []byte("data"), true, true); err != nil {
		t.Fatal(err)
	}
	e2.Crash()
	e2.Reboot()
	if got, err := ReadFile(e2, "/d/kept"); err != nil || string(got) != "data" {
		t.Fatalf("synced file+dir = %q, %v", got, err)
	}
}

func TestCrashRevertsUnsyncedRenameAndRemove(t *testing.T) {
	e := NewErrFS(5)
	e.MkdirAll("/d", 0o755)
	if err := write(t, e, "/d/a", []byte("A"), true, true); err != nil {
		t.Fatal(err)
	}
	if err := write(t, e, "/d/b", []byte("B"), true, true); err != nil {
		t.Fatal(err)
	}
	if err := e.Rename("/d/a", "/d/a2"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("/d/b"); err != nil {
		t.Fatal(err)
	}
	// Neither was followed by SyncDir: both revert.
	e.Crash()
	e.Reboot()
	if got, err := ReadFile(e, "/d/a"); err != nil || string(got) != "A" {
		t.Fatalf("unsynced rename not reverted: %q, %v", got, err)
	}
	if _, err := e.Stat("/d/a2"); err == nil {
		t.Fatal("rename target survived without dir sync")
	}
	if got, err := ReadFile(e, "/d/b"); err != nil || string(got) != "B" {
		t.Fatalf("unsynced remove not reverted: %q, %v", got, err)
	}
}

func TestFailOpInjectsOnce(t *testing.T) {
	e := NewErrFS(6)
	e.MkdirAll("/d", 0o755)
	e.FailOp(2, ErrNoSpace) // op1 = create, op2 = first write
	f, err := e.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write = %v, want injected ErrNoSpace", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("second write after injected failure: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadFile(e, "/d/f"); string(got) != "x" {
		t.Fatalf("content = %q, failed write must not land", got)
	}
}

func TestShortWrite(t *testing.T) {
	e := NewErrFS(8)
	e.MkdirAll("/d", 0o755)
	f, err := e.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	e.ShortWriteOp(e.Ops() + 1)
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v", err)
	}
	if n != 4 {
		t.Fatalf("short write landed %d bytes", n)
	}
	f.Close()
	if got, _ := ReadFile(e, "/d/f"); string(got) != "abcd" {
		t.Fatalf("content = %q", got)
	}
}

func TestCrashAtOpDeterministicReplay(t *testing.T) {
	run := func(seed int64, crashAt int) []byte {
		e := NewErrFS(seed)
		e.MkdirAll("/d", 0o755)
		if crashAt > 0 {
			e.CrashAtOp(crashAt)
		}
		for i := 0; i < 6; i++ {
			if err := write(t, e, "/d/f", bytes.Repeat([]byte{byte('a' + i)}, 32), true, i == 0); err != nil {
				break
			}
		}
		e.Reboot()
		got, err := ReadFile(e, "/d/f")
		if err != nil {
			return nil
		}
		return got
	}
	clean := NewErrFS(11)
	clean.MkdirAll("/d", 0o755)
	for i := 0; i < 6; i++ {
		if err := write(t, clean, "/d/f", bytes.Repeat([]byte{byte('a' + i)}, 32), true, i == 0); err != nil {
			t.Fatal(err)
		}
	}
	total := clean.Ops()
	if total < 6 {
		t.Fatalf("implausible op count %d", total)
	}
	for n := 1; n <= total; n++ {
		a := run(11, n)
		b := run(11, n)
		if !bytes.Equal(a, b) {
			t.Fatalf("crash at op %d not deterministic:\n%x\n%x", n, a, b)
		}
	}
	// A different seed may tear differently somewhere in the sweep.
	diverged := false
	for n := 1; n <= total && !diverged; n++ {
		if !bytes.Equal(run(11, n), run(12, n)) {
			diverged = true
		}
	}
	if !diverged {
		t.Log("seeds 11 and 12 agreed at every crash point (possible, just unlikely)")
	}
}

func TestStaleHandlesDieAcrossReboot(t *testing.T) {
	e := NewErrFS(13)
	e.MkdirAll("/d", 0o755)
	f, err := e.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	e.Crash()
	e.Reboot()
	if _, err := f.Write([]byte("zombie")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle sync = %v", err)
	}
}
