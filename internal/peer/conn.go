package peer

// Per-connection protocol handling. After the mutual handshake the peer
// processes PUT (initialization uploads), GET / GET_MUX (download
// requests, served by shaped writer goroutines), STOP, FEEDBACK (owner
// only) and BYE frames. DATA writes and control replies share the
// connection, so all writes go through a per-connection mutex wrapping
// one batched FrameWriter.
//
// Frames are read through a pooled wire.FrameReader: each payload
// arrives in a reference-counted buffer that the dispatch loop releases
// after the handler returns (handlers copy what they keep). The serve
// path frames stored messages with QueueSpan — 16 header bytes copied,
// the payload handed to writev untouched — so a DATA frame reaches the
// socket without marshaling and without steady-state allocation.
//
// GET_MUX requests differ from legacy GET only in failure scoping: a
// refused or failed stream is answered with a STREAM_ERROR frame naming
// the file-id and the connection (and every other stream on it) stays
// usable, where the legacy path answers with a connection-level ERROR.

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/fairshare"
	"asymshare/internal/ratelimit"
	"asymshare/internal/wire"

	"asymshare/internal/rlnc"
)

// serveBatchBytes caps how many DATA bytes one stream queues under the
// connection write lock before flushing, bounding both the lock hold
// time and the latency it imposes on control replies.
const serveBatchBytes = 256 << 10

// connWriter serializes frame writes from the control loop and the
// data-stream goroutines over one batched FrameWriter.
type connWriter struct {
	mu sync.Mutex
	fw *wire.FrameWriter
}

func newConnWriter(w io.Writer) *connWriter {
	return &connWriter{fw: wire.NewFrameWriter(w)}
}

func (cw *connWriter) writeFrame(t wire.Type, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.fw.WriteFrame(t, payload)
}

// writeErrorFrame sends a connection-level error frame under the write
// lock, following the wire.SendError contract: best-effort, the caller
// must still treat the exchange as failed and close the connection.
func (cw *connWriter) writeErrorFrame(code uint16, reason string) error {
	msg := wire.ErrorMsg{Code: code, Reason: reason}
	return cw.writeFrame(wire.TypeError, msg.Marshal())
}

// writeStreamError sends a stream-scoped error: the named stream is
// dead, the connection is not.
func (cw *connWriter) writeStreamError(fileID uint64, code uint16, reason string) error {
	e := wire.StreamError{FileID: fileID, Code: code, Reason: reason}
	return cw.writeFrame(wire.TypeStreamError, e.Marshal())
}

// writeBusy sends a load-shed refusal for one stream: retry after the
// hint, the connection stays open either way.
func (cw *connWriter) writeBusy(fileID uint64, code uint16, retryAfterMillis uint32, reason string) error {
	b := wire.Busy{FileID: fileID, Code: code, RetryAfterMillis: retryAfterMillis, Reason: reason}
	return cw.writeFrame(wire.TypeBusy, b.Marshal())
}

// connState bundles the per-connection resources the frame dispatcher
// and its stream goroutines share.
type connState struct {
	n         *Node
	conn      net.Conn
	cw        *connWriter
	client    fairshare.ID
	clientKey ed25519.PublicKey
	ctx       context.Context
	wg        *sync.WaitGroup

	mu     sync.Mutex
	active map[uint64]*stream
}

func (n *Node) handleConn(conn net.Conn) {
	defer conn.Close()
	clientKey, role, err := wire.ResponderHandshake(conn, n.cfg.Identity, n.cfg.Trusted)
	if err != nil {
		n.log.Debug("handshake failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	client := auth.Fingerprint(clientKey)
	n.log.Debug("session open", "client", client, "role", role)

	// Streams started by this connection, so they are torn down when
	// the connection dies.
	var streamWG sync.WaitGroup
	connCtx, connCancel := context.WithCancel(n.ctx)
	defer func() {
		connCancel()
		// Close before waiting: a stream can be parked inside a shaped
		// or kernel-buffered write on this connection, and only the
		// close unblocks it. Waiting first would deadlock shutdown for
		// as long as the link takes to drain.
		conn.Close()
		streamWG.Wait()
	}()
	cs := &connState{
		n:         n,
		conn:      conn,
		cw:        newConnWriter(conn),
		client:    client,
		clientKey: clientKey,
		ctx:       connCtx,
		wg:        &streamWG,
		active:    make(map[uint64]*stream),
	}

	// Close the connection when the node shuts down so the read loop
	// unblocks.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		select {
		case <-n.ctx.Done():
			conn.Close()
		case <-stopWatch:
		}
	}()

	fr := wire.NewFrameReader(conn)
	for {
		t, buf, err := fr.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				n.log.Debug("read error", "client", client, "err", err)
			}
			return
		}
		done := cs.dispatch(t, buf.Bytes())
		buf.Release()
		if done {
			return
		}
	}
}

// dispatch handles one control frame. A true return closes the
// connection. payload is only valid for the duration of the call;
// handlers copy what they keep.
func (cs *connState) dispatch(t wire.Type, payload []byte) bool {
	n, client := cs.n, cs.client
	switch t {
	case wire.TypePut:
		if err := n.handlePut(cs.cw, client, payload); err != nil {
			n.log.Debug("put failed", "client", client, "err", err)
			return true
		}
	case wire.TypePatch:
		if err := n.handlePatch(cs.cw, client, payload); err != nil {
			n.log.Debug("patch failed", "client", client, "err", err)
			return true
		}
	case wire.TypeGet:
		return cs.handleGet(payload, false)
	case wire.TypeGetMux:
		return cs.handleGet(payload, true)
	case wire.TypeStop:
		var stop wire.Stop
		if err := stop.Unmarshal(payload); err != nil {
			wire.SendError(cs.conn, wire.CodeBadRequest, "malformed stop")
			return true
		}
		cs.mu.Lock()
		if s, ok := cs.active[stop.FileID]; ok {
			s.cancel()
			delete(cs.active, stop.FileID)
		}
		cs.mu.Unlock()
	case wire.TypeList:
		list := wire.FileList{}
		for _, fileID := range n.cfg.Store.Files() {
			list.Files = append(list.Files, wire.FileEntry{
				FileID:   fileID,
				Messages: n.cfg.Store.Count(fileID),
			})
		}
		blob, err := list.Marshal()
		if err != nil {
			return true
		}
		if err := cs.cw.writeFrame(wire.TypeFileList, blob); err != nil {
			return true
		}
	case wire.TypeAuditChallenge:
		if err := n.handleAudit(cs.cw, client, payload); err != nil {
			n.log.Debug("audit failed", "client", client, "err", err)
			return true
		}
	case wire.TypeContractPropose:
		if err := n.handleContractPropose(cs.cw, client, payload); err != nil {
			n.log.Debug("contract propose failed", "client", client, "err", err)
			return true
		}
	case wire.TypeContractRenew:
		if err := n.handleContractRenew(cs.cw, client, payload); err != nil {
			n.log.Debug("contract renew failed", "client", client, "err", err)
			return true
		}
	case wire.TypeContractRelease:
		if err := n.handleContractRelease(cs.cw, client, payload); err != nil {
			n.log.Debug("contract release failed", "client", client, "err", err)
			return true
		}
	case wire.TypeContractList:
		if err := n.handleContractList(cs.cw, client); err != nil {
			return true
		}
	case wire.TypeFeedback:
		n.handleFeedback(cs.clientKey, client, payload)
		// Acknowledge so the sender knows the credits landed before
		// it disconnects.
		if err := cs.cw.writeFrame(wire.TypePutOK, nil); err != nil {
			return true
		}
	case wire.TypeBye:
		return true
	default:
		wire.SendError(cs.conn, wire.CodeBadRequest, "unexpected frame "+t.String())
		return true
	}
	return false
}

// handleGet starts one download stream. mux selects the failure scope:
// stream-scoped STREAM_ERROR frames that leave the connection (and its
// other streams) running, versus the legacy connection-level ERROR. A
// payload that does not even parse is a connection fault either way.
func (cs *connState) handleGet(payload []byte, mux bool) bool {
	var get wire.Get
	if err := get.Unmarshal(payload); err != nil {
		wire.SendError(cs.conn, wire.CodeBadRequest, "malformed get")
		return true
	}
	s, err := cs.n.startStream(cs, get, mux)
	if err != nil {
		var remote *wire.RemoteError
		if !errors.As(err, &remote) {
			cs.n.log.Debug("get failed", "client", cs.client, "err", err)
		}
		// The refusal frame has been sent; the connection stays open for
		// further requests in both modes.
		return false
	}
	cs.mu.Lock()
	cs.active[get.FileID] = s
	cs.mu.Unlock()
	return false
}

// handlePut stores one uploaded message. The first uploader of a
// file-id becomes its owner; writes from anyone else are refused.
func (n *Node) handlePut(cw *connWriter, client fairshare.ID, payload []byte) error {
	var msg rlnc.Message
	if err := msg.UnmarshalBinary(payload); err != nil {
		return err
	}
	if !n.claimFile(msg.FileID, client) {
		_ = cw.writeErrorFrame(wire.CodeNotPermitted, "file owned by another user")
		return fmt.Errorf("put for file %d owned by another user", msg.FileID)
	}
	if err := n.cfg.Store.Put(&msg); err != nil {
		return err
	}
	n.recordStored(len(payload))
	return cw.writeFrame(wire.TypePutOK, nil)
}

// handlePatch applies a delta message (Sec. VI-A data modification) to
// the matching stored message. Only the file's owner may patch.
func (n *Node) handlePatch(cw *connWriter, client fairshare.ID, payload []byte) error {
	var delta rlnc.Message
	if err := delta.UnmarshalBinary(payload); err != nil {
		return err
	}
	if !n.claimFile(delta.FileID, client) {
		_ = cw.writeErrorFrame(wire.CodeNotPermitted, "file owned by another user")
		return fmt.Errorf("patch for file %d owned by another user", delta.FileID)
	}
	stored, err := n.cfg.Store.Get(delta.FileID, delta.MessageID)
	if err != nil {
		_ = cw.writeErrorFrame(wire.CodeUnknownFile,
			fmt.Sprintf("no stored message (%d,%d)", delta.FileID, delta.MessageID))
		return err
	}
	if err := rlnc.ApplyDelta(stored, &delta); err != nil {
		_ = cw.writeErrorFrame(wire.CodeBadRequest, "delta mismatch")
		return err
	}
	if err := n.cfg.Store.Put(stored); err != nil {
		return err
	}
	return cw.writeFrame(wire.TypePutOK, nil)
}

// handleFeedback folds the owner's receipt report into the ledger.
// Reports from anyone but the owner are ignored: a malicious user
// cannot inflate another peer's standing (or slash a rival's). Credits
// reward service received; debits carry the owner's audit verdicts, so
// a counterpart caught dropping the owner's stored data loses standing
// with this peer's allocator.
func (n *Node) handleFeedback(clientKey ed25519.PublicKey, client fairshare.ID, payload []byte) {
	if n.cfg.Owner == nil || !clientKey.Equal(n.cfg.Owner) {
		n.log.Debug("feedback ignored from non-owner", "client", client)
		return
	}
	var fb wire.Feedback
	if err := fb.Unmarshal(payload); err != nil {
		n.log.Debug("malformed feedback", "client", client, "err", err)
		return
	}
	for _, e := range fb.Entries {
		n.ledger.Credit(e.PeerFingerprint, float64(e.Bytes))
		n.ledger.Debit(e.PeerFingerprint, float64(e.Debit))
	}
	n.m.feedback.Inc()
}

// handleAudit answers a keyed retention spot-check (internal/audit):
// for each sampled message the peer recomputes the content digest from
// the bytes it actually stores and MACs it under the challenge key.
// Messages it no longer holds are admitted as absent — guessing would
// fail verification anyway, since the owner checks against the digests
// recorded at dissemination time. A malformed challenge is answered
// with a typed error frame and kills the connection.
func (n *Node) handleAudit(cw *connWriter, client fairshare.ID, payload []byte) error {
	var ch wire.AuditChallenge
	if err := ch.Unmarshal(payload); err != nil {
		_ = cw.writeErrorFrame(wire.CodeBadRequest, "malformed audit challenge")
		return err
	}
	resp := wire.AuditResponse{FileID: ch.FileID, Proofs: make([]wire.AuditProof, 0, len(ch.MessageIDs))}
	proven := 0
	for _, id := range ch.MessageIDs {
		proof := wire.AuditProof{MessageID: id}
		if msg, err := n.cfg.Store.Get(ch.FileID, id); err == nil {
			digest := msg.Digest()
			proof.Present = true
			proof.MAC = auth.AuditMAC(ch.Key, ch.FileID, id, digest[:])
			proven++
		}
		resp.Proofs = append(resp.Proofs, proof)
	}
	n.recordAudit(proven, len(ch.MessageIDs))
	n.log.Debug("audit answered", "client", client, "file", ch.FileID,
		"sampled", len(ch.MessageIDs), "held", proven)
	return cw.writeFrame(wire.TypeAuditResponse, resp.Marshal())
}

// startStream begins serving a GET request on its own goroutine.
func (n *Node) startStream(cs *connState, get wire.Get, mux bool) (*stream, error) {
	msgs, err := n.cfg.Store.Messages(get.FileID)
	if err != nil {
		reason := fmt.Sprintf("file %d", get.FileID)
		if mux {
			_ = cs.cw.writeStreamError(get.FileID, wire.CodeUnknownFile, reason)
		} else {
			_ = cs.cw.writeErrorFrame(wire.CodeUnknownFile, reason)
		}
		return nil, &wire.RemoteError{Code: wire.CodeUnknownFile}
	}
	if get.Limit > 0 && int(get.Limit) < len(msgs) {
		msgs = msgs[:get.Limit]
	}
	// The burst must cover at least one full message frame or WaitN
	// could never succeed.
	burst := n.cfg.StreamBurst
	if burst <= 0 {
		burst = streamBurst
	}
	for _, m := range msgs {
		if need := float64(len(m.Payload) + 64); need > burst {
			burst = need
		}
	}
	streamCtx, cancel := context.WithCancel(cs.ctx)
	s := &stream{
		client:   cs.client,
		bucket:   ratelimit.NewBucket(0, burst),
		cancel:   cancel,
		fileID:   get.FileID,
		limited:  n.shaping(),
		priority: get.Priority,
	}
	if get.DeadlineMillis > 0 {
		// The wire carries deadline-*remaining*, so no clock agreement
		// with the requester is needed: anchor it here.
		s.deadline = time.Now().Add(time.Duration(get.DeadlineMillis) * time.Millisecond)
	}
	cw := cs.cw
	s.notifyBusy = func(code uint16, retryAfterMillis uint32, reason string) {
		_ = cw.writeBusy(get.FileID, code, retryAfterMillis, reason)
	}
	s.bucket.SetMetrics(n.m.waitSeconds, n.m.throttled)
	verdict := n.admitStream(s)
	if verdict.victim != nil {
		n.shedStream(verdict.victim, "preempted by a higher-standing requester")
	}
	if !verdict.ok {
		cancel()
		n.recordShed(cs.client, false)
		_ = cw.writeBusy(get.FileID, wire.CodeBusy, verdict.retryAfterMillis, "at stream capacity")
		return nil, &wire.RemoteError{Code: wire.CodeBusy}
	}
	cs.wg.Add(1)
	go func() {
		defer cs.wg.Done()
		defer n.unregisterStream(s)
		defer cancel()
		defer func() {
			cs.mu.Lock()
			if cs.active[s.fileID] == s {
				delete(cs.active, s.fileID)
			}
			cs.mu.Unlock()
		}()
		n.serveStream(streamCtx, cs.cw, s, msgs)
	}()
	return s, nil
}

// serveStream writes DATA frames at the allocator-assigned rate until
// the messages are exhausted or the stream is cancelled. Each message
// is framed zero-copy — QueueSpan copies the 16-byte header into the
// writer arena and hands the stored payload to the vectored write
// untouched. After the rate limiter admits the first message, further
// messages whose tokens are already in the bucket are batched into the
// same flush (Available is checked before WaitN, so the limiter can
// never block while the connection write lock is held). An unlimited
// peer skips the bucket entirely — no token math, no timer sleeps —
// and batches straight up to the flush watermark.
func (n *Node) serveStream(ctx context.Context, cw *connWriter, s *stream, msgs []*rlnc.Message) {
	var hdr [rlnc.MessageHeaderBytes]byte
	for i := 0; i < len(msgs); {
		// Dead work is dropped, not served: once the requester's
		// propagated deadline passes, every further byte would arrive
		// too late to matter, so tell the requester and free the slot.
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			n.recordExpired()
			_ = cw.writeBusy(s.fileID, wire.CodeExpired, 0, "deadline passed")
			return
		}
		// Brownout halves the batch budget per flush, re-read each
		// round so the degradation tracks admission load live.
		batchBytes := n.currentBatchBytes()
		msg := msgs[i]
		need := rlnc.MessageHeaderBytes + len(msg.Payload)
		if s.limited {
			if err := s.bucket.WaitN(ctx, need); err != nil {
				return // cancelled or burst misconfiguration
			}
		} else if ctx.Err() != nil {
			return
		}
		cw.mu.Lock()
		flushStart := time.Now()
		msg.PutHeader(hdr[:])
		if err := cw.fw.QueueSpan(wire.TypeData, hdr[:], msg.Payload); err != nil {
			cw.mu.Unlock()
			return
		}
		sent := need
		i++
		for i < len(msgs) && cw.fw.Queued() < batchBytes {
			next := msgs[i]
			nn := rlnc.MessageHeaderBytes + len(next.Payload)
			if s.limited {
				if s.bucket.Available() < float64(nn) {
					break
				}
				if err := s.bucket.WaitN(ctx, nn); err != nil {
					cw.mu.Unlock()
					return
				}
			}
			next.PutHeader(hdr[:])
			if err := cw.fw.QueueSpan(wire.TypeData, hdr[:], next.Payload); err != nil {
				cw.mu.Unlock()
				return
			}
			sent += nn
			i++
		}
		// The batch drains through the raw socket, not the token
		// bucket, so its timing sees the real link rate even while the
		// allocator is granting this stream far less — that is what
		// makes it a usable capacity sample. The timer starts at the
		// first QueueSpan because the frame writer auto-flushes once
		// enough is queued: the socket writes may happen inside the
		// Queue calls, not in the final Flush.
		err := cw.fw.Flush()
		flushDur := time.Since(flushStart)
		cw.mu.Unlock()
		if err != nil {
			return
		}
		n.recordFlush(sent, flushDur)
		n.recordServed(s.client, sent)
	}
	// All stored messages sent: signal end-of-stream with a STOP frame
	// so the downloader knows this peer is exhausted.
	select {
	case <-ctx.Done():
	default:
		eos := wire.Stop{FileID: s.fileID}
		_ = cw.writeFrame(wire.TypeStop, eos.Marshal())
	}
}
