package peer

// Per-connection protocol handling. After the mutual handshake the peer
// processes PUT (initialization uploads), GET (download requests,
// served by a shaped writer goroutine), STOP, FEEDBACK (owner only) and
// BYE frames. DATA writes and control replies share the connection, so
// all writes go through a per-connection mutex.

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"asymshare/internal/auth"
	"asymshare/internal/fairshare"
	"asymshare/internal/ratelimit"
	"asymshare/internal/wire"

	"asymshare/internal/rlnc"
)

// lockedWriter serializes frame writes from the control loop and the
// data-stream goroutines.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) writeFrame(t wire.Type, payload []byte) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return wire.WriteFrame(lw.w, t, payload)
}

func (n *Node) handleConn(conn net.Conn) {
	defer conn.Close()
	clientKey, role, err := wire.ResponderHandshake(conn, n.cfg.Identity, n.cfg.Trusted)
	if err != nil {
		n.log.Debug("handshake failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	client := auth.Fingerprint(clientKey)
	n.log.Debug("session open", "client", client, "role", role)

	lw := &lockedWriter{w: conn}
	// Streams started by this connection, so they are torn down when
	// the connection dies.
	var streamWG sync.WaitGroup
	connCtx, connCancel := context.WithCancel(n.ctx)
	defer func() {
		connCancel()
		streamWG.Wait()
	}()
	active := make(map[uint64]*stream)
	var activeMu sync.Mutex

	// Close the connection when the node shuts down so the read loop
	// unblocks.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		select {
		case <-n.ctx.Done():
			conn.Close()
		case <-stopWatch:
		}
	}()

	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				n.log.Debug("read error", "client", client, "err", err)
			}
			return
		}
		switch frame.Type {
		case wire.TypePut:
			if err := n.handlePut(lw, client, frame.Payload); err != nil {
				n.log.Debug("put failed", "client", client, "err", err)
				return
			}
		case wire.TypePatch:
			if err := n.handlePatch(lw, client, frame.Payload); err != nil {
				n.log.Debug("patch failed", "client", client, "err", err)
				return
			}
		case wire.TypeGet:
			var get wire.Get
			if err := get.Unmarshal(frame.Payload); err != nil {
				wire.SendError(conn, wire.CodeBadRequest, "malformed get")
				return
			}
			s, err := n.startStream(connCtx, lw, client, get, &streamWG, func(s *stream) {
				activeMu.Lock()
				delete(active, s.fileID)
				activeMu.Unlock()
			})
			if err != nil {
				var remote *wire.RemoteError
				if !errors.As(err, &remote) {
					n.log.Debug("get failed", "client", client, "err", err)
				}
				continue
			}
			activeMu.Lock()
			active[get.FileID] = s
			activeMu.Unlock()
		case wire.TypeStop:
			var stop wire.Stop
			if err := stop.Unmarshal(frame.Payload); err != nil {
				wire.SendError(conn, wire.CodeBadRequest, "malformed stop")
				return
			}
			activeMu.Lock()
			if s, ok := active[stop.FileID]; ok {
				s.cancel()
				delete(active, stop.FileID)
			}
			activeMu.Unlock()
		case wire.TypeList:
			list := wire.FileList{}
			for _, fileID := range n.cfg.Store.Files() {
				list.Files = append(list.Files, wire.FileEntry{
					FileID:   fileID,
					Messages: n.cfg.Store.Count(fileID),
				})
			}
			blob, err := list.Marshal()
			if err != nil {
				return
			}
			if err := lw.writeFrame(wire.TypeFileList, blob); err != nil {
				return
			}
		case wire.TypeAuditChallenge:
			if err := n.handleAudit(lw, client, frame.Payload); err != nil {
				n.log.Debug("audit failed", "client", client, "err", err)
				return
			}
		case wire.TypeContractPropose:
			if err := n.handleContractPropose(lw, client, frame.Payload); err != nil {
				n.log.Debug("contract propose failed", "client", client, "err", err)
				return
			}
		case wire.TypeContractRenew:
			if err := n.handleContractRenew(lw, client, frame.Payload); err != nil {
				n.log.Debug("contract renew failed", "client", client, "err", err)
				return
			}
		case wire.TypeContractRelease:
			if err := n.handleContractRelease(lw, client, frame.Payload); err != nil {
				n.log.Debug("contract release failed", "client", client, "err", err)
				return
			}
		case wire.TypeContractList:
			if err := n.handleContractList(lw, client); err != nil {
				return
			}
		case wire.TypeFeedback:
			n.handleFeedback(clientKey, client, frame.Payload)
			// Acknowledge so the sender knows the credits landed before
			// it disconnects.
			if err := lw.writeFrame(wire.TypePutOK, nil); err != nil {
				return
			}
		case wire.TypeBye:
			return
		default:
			wire.SendError(conn, wire.CodeBadRequest, "unexpected frame "+frame.Type.String())
			return
		}
	}
}

// handlePut stores one uploaded message. The first uploader of a
// file-id becomes its owner; writes from anyone else are refused.
func (n *Node) handlePut(lw *lockedWriter, client fairshare.ID, payload []byte) error {
	var msg rlnc.Message
	if err := msg.UnmarshalBinary(payload); err != nil {
		return err
	}
	if !n.claimFile(msg.FileID, client) {
		_ = lw.writeErrorFrame(wire.CodeNotPermitted, "file owned by another user")
		return fmt.Errorf("put for file %d owned by another user", msg.FileID)
	}
	if err := n.cfg.Store.Put(&msg); err != nil {
		return err
	}
	n.recordStored(len(payload))
	return lw.writeFrame(wire.TypePutOK, nil)
}

// handlePatch applies a delta message (Sec. VI-A data modification) to
// the matching stored message. Only the file's owner may patch.
func (n *Node) handlePatch(lw *lockedWriter, client fairshare.ID, payload []byte) error {
	var delta rlnc.Message
	if err := delta.UnmarshalBinary(payload); err != nil {
		return err
	}
	if !n.claimFile(delta.FileID, client) {
		_ = lw.writeErrorFrame(wire.CodeNotPermitted, "file owned by another user")
		return fmt.Errorf("patch for file %d owned by another user", delta.FileID)
	}
	stored, err := n.cfg.Store.Get(delta.FileID, delta.MessageID)
	if err != nil {
		_ = lw.writeErrorFrame(wire.CodeUnknownFile,
			fmt.Sprintf("no stored message (%d,%d)", delta.FileID, delta.MessageID))
		return err
	}
	if err := rlnc.ApplyDelta(stored, &delta); err != nil {
		_ = lw.writeErrorFrame(wire.CodeBadRequest, "delta mismatch")
		return err
	}
	if err := n.cfg.Store.Put(stored); err != nil {
		return err
	}
	return lw.writeFrame(wire.TypePutOK, nil)
}

// handleFeedback folds the owner's receipt report into the ledger.
// Reports from anyone but the owner are ignored: a malicious user
// cannot inflate another peer's standing (or slash a rival's). Credits
// reward service received; debits carry the owner's audit verdicts, so
// a counterpart caught dropping the owner's stored data loses standing
// with this peer's allocator.
func (n *Node) handleFeedback(clientKey ed25519.PublicKey, client fairshare.ID, payload []byte) {
	if n.cfg.Owner == nil || !clientKey.Equal(n.cfg.Owner) {
		n.log.Debug("feedback ignored from non-owner", "client", client)
		return
	}
	var fb wire.Feedback
	if err := fb.Unmarshal(payload); err != nil {
		n.log.Debug("malformed feedback", "client", client, "err", err)
		return
	}
	for _, e := range fb.Entries {
		n.ledger.Credit(e.PeerFingerprint, float64(e.Bytes))
		n.ledger.Debit(e.PeerFingerprint, float64(e.Debit))
	}
	n.m.feedback.Inc()
}

// handleAudit answers a keyed retention spot-check (internal/audit):
// for each sampled message the peer recomputes the content digest from
// the bytes it actually stores and MACs it under the challenge key.
// Messages it no longer holds are admitted as absent — guessing would
// fail verification anyway, since the owner checks against the digests
// recorded at dissemination time. A malformed challenge is answered
// with a typed error frame and kills the connection.
func (n *Node) handleAudit(lw *lockedWriter, client fairshare.ID, payload []byte) error {
	var ch wire.AuditChallenge
	if err := ch.Unmarshal(payload); err != nil {
		_ = lw.writeErrorFrame(wire.CodeBadRequest, "malformed audit challenge")
		return err
	}
	resp := wire.AuditResponse{FileID: ch.FileID, Proofs: make([]wire.AuditProof, 0, len(ch.MessageIDs))}
	proven := 0
	for _, id := range ch.MessageIDs {
		proof := wire.AuditProof{MessageID: id}
		if msg, err := n.cfg.Store.Get(ch.FileID, id); err == nil {
			digest := msg.Digest()
			proof.Present = true
			proof.MAC = auth.AuditMAC(ch.Key, ch.FileID, id, digest[:])
			proven++
		}
		resp.Proofs = append(resp.Proofs, proof)
	}
	n.recordAudit(proven, len(ch.MessageIDs))
	n.log.Debug("audit answered", "client", client, "file", ch.FileID,
		"sampled", len(ch.MessageIDs), "held", proven)
	return lw.writeFrame(wire.TypeAuditResponse, resp.Marshal())
}

// startStream begins serving a GET request on its own goroutine.
func (n *Node) startStream(ctx context.Context, lw *lockedWriter, client fairshare.ID,
	get wire.Get, wg *sync.WaitGroup, onDone func(*stream)) (*stream, error) {
	msgs, err := n.cfg.Store.Messages(get.FileID)
	if err != nil {
		_ = lw.writeErrorFrame(wire.CodeUnknownFile, fmt.Sprintf("file %d", get.FileID))
		return nil, &wire.RemoteError{Code: wire.CodeUnknownFile}
	}
	if get.Limit > 0 && int(get.Limit) < len(msgs) {
		msgs = msgs[:get.Limit]
	}
	// The burst must cover at least one full message frame or WaitN
	// could never succeed.
	burst := n.cfg.StreamBurst
	if burst <= 0 {
		burst = streamBurst
	}
	for _, m := range msgs {
		if need := float64(len(m.Payload) + 64); need > burst {
			burst = need
		}
	}
	streamCtx, cancel := context.WithCancel(ctx)
	s := &stream{
		client: client,
		bucket: ratelimit.NewBucket(0, burst),
		cancel: cancel,
		fileID: get.FileID,
	}
	s.bucket.SetMetrics(n.m.waitSeconds, n.m.throttled)
	if n.cfg.UploadBytesPerSec <= 0 {
		// Unlimited: a generous fixed rate so WaitN never stalls.
		s.bucket.SetRate(1 << 30)
	}
	n.registerStream(s)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer n.unregisterStream(s)
		defer cancel()
		defer onDone(s)
		n.serveStream(streamCtx, lw, s, msgs)
	}()
	return s, nil
}

// serveStream writes DATA frames at the allocator-assigned rate until
// the messages are exhausted or the stream is cancelled.
func (n *Node) serveStream(ctx context.Context, lw *lockedWriter, s *stream, msgs []*rlnc.Message) {
	for _, msg := range msgs {
		buf, err := msg.MarshalBinary()
		if err != nil {
			n.log.Warn("marshal stored message", "err", err)
			return
		}
		if err := s.bucket.WaitN(ctx, len(buf)); err != nil {
			return // cancelled or burst misconfiguration
		}
		if err := lw.writeFrame(wire.TypeData, buf); err != nil {
			return
		}
		n.recordServed(s.client, len(buf))
	}
	// All stored messages sent: signal end-of-stream with a STOP frame
	// so the downloader knows this peer is exhausted.
	select {
	case <-ctx.Done():
	default:
		eos := wire.Stop{FileID: s.fileID}
		_ = lw.writeFrame(wire.TypeStop, eos.Marshal())
	}
}

// writeErrorFrame sends an error frame under the write lock, following
// the wire.SendError contract: best-effort, the caller must still
// treat the exchange as failed and close the connection.
func (lw *lockedWriter) writeErrorFrame(code uint16, reason string) error {
	msg := wire.ErrorMsg{Code: code, Reason: reason}
	return lw.writeFrame(wire.TypeError, msg.Marshal())
}
