package peer_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
	"asymshare/internal/wire"
)

func identity(t *testing.T, b byte) *auth.Identity {
	t.Helper()
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{b}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func testSecret() []byte {
	s := make([]byte, rlnc.SecretLen)
	for i := range s {
		s[i] = byte(i + 1)
	}
	return s
}

// startPeer boots a node on a loopback port and registers cleanup.
func startPeer(t *testing.T, cfg peer.Config) *peer.Node {
	t.Helper()
	n, err := peer.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := n.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return n
}

func smallParams(t *testing.T, k, m, dataLen int) rlnc.Params {
	t.Helper()
	p, err := rlnc.NewParams(gf.MustNew(gf.Bits8), k, m, dataLen)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := peer.New(peer.Config{Store: store.NewMemory()}); err == nil {
		t.Error("missing identity accepted")
	}
	if _, err := peer.New(peer.Config{Identity: identity(t, 1)}); err == nil {
		t.Error("missing store accepted")
	}
}

func TestDisseminateAndFetchSinglePeer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := smallParams(t, 8, 64, 500)
	data := make([]byte, 500)
	rng.Read(data)
	enc, err := rlnc.NewEncoder(params, 42, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := enc.BatchForPeer(0, params.K)
	if err != nil {
		t.Fatal(err)
	}

	peerID := identity(t, 2)
	userID := identity(t, 3)
	node := startPeer(t, peer.Config{
		Identity: peerID,
		Store:    store.NewMemory(),
		Trusted:  auth.NewTrustSet(userID.Public()),
	})

	c, err := client.New(userID, auth.NewTrustSet(peerID.Public()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Disseminate(ctx, node.Addr().String(), batch); err != nil {
		t.Fatal(err)
	}
	if got := node.StoredBytes(); got == 0 {
		t.Error("StoredBytes = 0 after dissemination")
	}

	got, stats, err := c.FetchGeneration(ctx, []string{node.Addr().String()}, params, 42, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched data mismatch")
	}
	if stats.Innovative != params.K {
		t.Errorf("innovative = %d, want %d", stats.Innovative, params.K)
	}
	served := node.ServedBytes()
	if len(served) != 1 {
		t.Errorf("ServedBytes = %v", served)
	}
}

func TestParallelFetchBeatsSinglePeerUpload(t *testing.T) {
	// The headline result: three peers each shaped to uploadRate serve
	// one user in parallel; the user's goodput lands well above a
	// single peer's upload capacity.
	if testing.Short() {
		t.Skip("multi-second shaped transfer")
	}
	rng := rand.New(rand.NewSource(2))
	const dataLen = 768 << 10 // 768 KiB
	params, err := rlnc.ParamsForSize(gf.MustNew(gf.Bits8), dataLen, 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, dataLen)
	rng.Read(data)
	enc, err := rlnc.NewEncoder(params, 7, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}

	const uploadRate = 64 << 10 // 64 KiB/s per peer
	userID := identity(t, 9)
	var addrs []string
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	c, err := client.New(userID, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		node := startPeer(t, peer.Config{
			Identity:          identity(t, byte(10+i)),
			Store:             store.NewMemory(),
			UploadBytesPerSec: uploadRate,
			ReallocInterval:   100 * time.Millisecond,
		})
		batch, err := enc.BatchForPeer(i, params.K)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Disseminate(ctx, node.Addr().String(), batch); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, node.Addr().String())
	}

	got, stats, err := c.FetchGeneration(ctx, addrs, params, 7, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched data mismatch")
	}
	rate := stats.EffectiveRate(len(got))
	// With 3 peers the aggregate should clearly exceed one peer's
	// upload capacity (allow generous slack for handshakes and bursts).
	if rate < 1.5*uploadRate {
		t.Errorf("aggregate rate %.0f B/s does not beat single upload %d B/s", rate, uploadRate)
	}
	if len(stats.BytesFrom) < 2 {
		t.Errorf("download used %d peers, want >= 2", len(stats.BytesFrom))
	}
}

func TestFetchUnknownFile(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 20), Store: store.NewMemory()})
	c, err := client.New(identity(t, 21), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	params := smallParams(t, 4, 16, 64)
	_, _, err = c.FetchGeneration(ctx, []string{node.Addr().String()}, params, 99, testSecret(), nil)
	if !errors.Is(err, client.ErrIncomplete) {
		t.Errorf("unknown file fetch error = %v, want ErrIncomplete", err)
	}
}

func TestFetchNoPeers(t *testing.T) {
	c, err := client.New(identity(t, 22), nil)
	if err != nil {
		t.Fatal(err)
	}
	params := smallParams(t, 4, 16, 64)
	_, _, err = c.FetchGeneration(context.Background(), nil, params, 1, testSecret(), nil)
	if !errors.Is(err, client.ErrNoPeers) {
		t.Errorf("error = %v, want ErrNoPeers", err)
	}
}

func TestUntrustedUserRejected(t *testing.T) {
	allowed := identity(t, 30)
	node := startPeer(t, peer.Config{
		Identity: identity(t, 31),
		Store:    store.NewMemory(),
		Trusted:  auth.NewTrustSet(allowed.Public()),
	})
	intruder, err := client.New(identity(t, 32), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = intruder.Disseminate(ctx, node.Addr().String(), []*rlnc.Message{
		{FileID: 1, MessageID: 1, Payload: []byte{1, 2}},
	})
	if err == nil {
		t.Error("untrusted client disseminated successfully")
	}
}

func TestForgedMessagesRejectedDuringFetch(t *testing.T) {
	// One peer serves corrupted payloads; with digests pinned, the
	// decoder rejects them and the fetch completes from the honest peer.
	rng := rand.New(rand.NewSource(3))
	params := smallParams(t, 6, 64, 300)
	data := make([]byte, 300)
	rng.Read(data)
	enc, err := rlnc.NewEncoder(params, 55, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := enc.BatchForPeer(0, params.K)
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[uint64]rlnc.Digest)
	for _, m := range honest {
		digests[m.MessageID] = m.Digest()
	}
	forged, err := enc.BatchForPeer(1, params.K)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range forged {
		digests[m.MessageID] = m.Digest()
		m.Payload[0] ^= 0xFF // corrupt after digest registration
	}

	userID := identity(t, 40)
	c, err := client.New(userID, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	honestNode := startPeer(t, peer.Config{Identity: identity(t, 41), Store: store.NewMemory()})
	evilNode := startPeer(t, peer.Config{Identity: identity(t, 42), Store: store.NewMemory()})
	if err := c.Disseminate(ctx, honestNode.Addr().String(), honest); err != nil {
		t.Fatal(err)
	}
	if err := c.Disseminate(ctx, evilNode.Addr().String(), forged); err != nil {
		t.Fatal(err)
	}

	// Against the forging peer alone, every message fails its digest:
	// the decode cannot complete and every arrival is rejected.
	_, stats, err := c.FetchGeneration(ctx,
		[]string{evilNode.Addr().String()}, params, 55, testSecret(), digests)
	if !errors.Is(err, client.ErrIncomplete) {
		t.Fatalf("evil-only fetch error = %v, want ErrIncomplete", err)
	}
	if stats.Rejected == 0 || stats.Innovative != 0 {
		t.Errorf("evil-only stats: %+v, want all rejected", stats)
	}

	// With the honest peer in the mix the download completes; the
	// forgeries never poison the decoder.
	got, stats, err := c.FetchGeneration(ctx,
		[]string{evilNode.Addr().String(), honestNode.Addr().String()},
		params, 55, testSecret(), digests)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched data mismatch")
	}
	if stats.Innovative != params.K {
		t.Errorf("innovative = %d, want %d", stats.Innovative, params.K)
	}
}

func TestFeedbackCreditsLedgerOnlyFromOwner(t *testing.T) {
	owner := identity(t, 50)
	stranger := identity(t, 51)
	node := startPeer(t, peer.Config{
		Identity: identity(t, 52),
		Store:    store.NewMemory(),
		Owner:    owner.Public(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	ownerClient, err := client.New(owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ownerClient.SendFeedback(ctx, node.Addr().String(), map[string]uint64{"peerX": 5000}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return node.Ledger().Received("peerX") >= 5000 },
		"owner feedback not credited")

	strangerClient, err := client.New(stranger, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := strangerClient.SendFeedback(ctx, node.Addr().String(), map[string]uint64{"peerY": 7000}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := node.Ledger().Received("peerY"); got >= 7000 {
		t.Errorf("stranger feedback credited: %v", got)
	}
}

func TestFetchFileMultiChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	plan := chunk.Plan{FieldBits: gf.Bits8, M: 128, ChunkSize: 1024}
	data := make([]byte, 2500)
	rng.Read(data)
	share, err := chunk.BuildShare("video", data, plan, 600, testSecret())
	if err != nil {
		t.Fatal(err)
	}

	userID := identity(t, 60)
	c, err := client.New(userID, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var addrs []string
	for i := 0; i < 2; i++ {
		node := startPeer(t, peer.Config{Identity: identity(t, byte(61+i)), Store: store.NewMemory()})
		batches, err := share.BatchForPeer(i, 1024)
		if err != nil {
			t.Fatal(err)
		}
		var flat []*rlnc.Message
		for _, b := range batches {
			flat = append(flat, b...)
		}
		if err := c.Disseminate(ctx, node.Addr().String(), flat); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, node.Addr().String())
	}
	got, stats, err := c.FetchFile(ctx, addrs, &share.Manifest, share.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-chunk fetch mismatch")
	}
	if stats.Rejected != 0 {
		t.Errorf("rejected = %d", stats.Rejected)
	}
}

func TestNodeCloseIdempotentAndStartAfterClose(t *testing.T) {
	n, err := peer.New(peer.Config{Identity: identity(t, 70), Store: store.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); !errors.Is(err, peer.ErrClosed) {
		// Listening succeeded but the node is closed; the listener must
		// have been released.
		t.Errorf("Start after Close error = %v, want ErrClosed", err)
	}
}

func TestStopHaltsStreaming(t *testing.T) {
	// A slow peer with many messages: the client reaches rank k after k
	// messages and sends STOP; the peer must not continue to exhaust
	// the remaining messages.
	rng := rand.New(rand.NewSource(5))
	params := smallParams(t, 4, 256, 1000)
	data := make([]byte, 1000)
	rng.Read(data)
	enc, err := rlnc.NewEncoder(params, 77, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewMemory()
	// Store far more than k messages.
	for id := uint64(0); id < 64; id++ {
		if err := st.Put(enc.Message(id)); err != nil {
			t.Fatal(err)
		}
	}
	node := startPeer(t, peer.Config{Identity: identity(t, 80), Store: st})
	c, err := client.New(identity(t, 81), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, stats, err := c.FetchGeneration(ctx, []string{node.Addr().String()}, params, 77, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch mismatch")
	}
	// The client should have received close to k messages, not all 64.
	if stats.Messages > 2*params.K {
		t.Errorf("received %d messages despite STOP; k=%d", stats.Messages, params.K)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestGetLimit(t *testing.T) {
	// Smoke-test the Limit field through the wire package directly.
	g := wire.Get{FileID: 5, Limit: 2}
	var got wire.Get
	if err := got.Unmarshal(g.Marshal()); err != nil || got.Limit != 2 {
		t.Fatalf("limit round trip: %+v, %v", got, err)
	}
}
