package peer

import (
	"testing"
	"time"
)

func TestNextAcceptBackoff(t *testing.T) {
	steps := []time.Duration{
		acceptBackoffStart,
		2 * acceptBackoffStart,
		4 * acceptBackoffStart,
	}
	cur := time.Duration(0)
	for i, want := range steps {
		cur = nextAcceptBackoff(cur)
		if cur != want {
			t.Fatalf("step %d = %v, want %v", i, cur, want)
		}
	}
	// The backoff saturates at the cap no matter how long failures
	// persist.
	for i := 0; i < 20; i++ {
		cur = nextAcceptBackoff(cur)
	}
	if cur != acceptBackoffMax {
		t.Fatalf("saturated backoff = %v, want %v", cur, acceptBackoffMax)
	}
	// A success resets the caller's state to zero; the next failure
	// starts small again.
	if got := nextAcceptBackoff(0); got != acceptBackoffStart {
		t.Fatalf("post-reset backoff = %v, want %v", got, acceptBackoffStart)
	}
}
