package peer_test

// End-to-end check that a full disseminate + fetch cycle against an
// instrumented node populates the peer_*, store_*, ratelimit_* and
// fairshare_* families, and that the client's own registry sees the
// download-side counters.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/client"
	"asymshare/internal/metrics"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

// counterValue returns the summed value of a family (all series), with
// ok=false when the family does not exist.
func counterValue(s metrics.Snapshot, name string) (float64, bool) {
	f, ok := s.Find(name)
	if !ok {
		return 0, false
	}
	var sum float64
	for _, series := range f.Series {
		if series.Hist != nil {
			sum += float64(series.Hist.Count)
		} else {
			sum += series.Value
		}
	}
	return sum, true
}

func TestNodeMetricsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	params := smallParams(t, 8, 64, 500)
	data := make([]byte, 500)
	rng.Read(data)
	enc, err := rlnc.NewEncoder(params, 42, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := enc.BatchForPeer(0, params.K)
	if err != nil {
		t.Fatal(err)
	}

	peerID := identity(t, 7)
	userID := identity(t, 8)
	peerReg := metrics.NewRegistry()
	node := startPeer(t, peer.Config{
		Identity:          peerID,
		Store:             store.NewMemory(),
		Trusted:           auth.NewTrustSet(userID.Public()),
		UploadBytesPerSec: 4 << 20, // shaped, so the allocator runs
		Metrics:           peerReg,
	})

	c, err := client.New(userID, auth.NewTrustSet(peerID.Public()))
	if err != nil {
		t.Fatal(err)
	}
	clientReg := metrics.NewRegistry()
	c.Instrument(clientReg)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Disseminate(ctx, node.Addr().String(), batch); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.FetchGeneration(ctx, []string{node.Addr().String()}, params, 42, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched data mismatch")
	}

	snap := peerReg.Snapshot()
	for _, name := range []string{
		peer.MetricConnections,
		peer.MetricStoredBytes,
		peer.MetricServedBytes,
		store.MetricOpDuration,
	} {
		v, ok := counterValue(snap, name)
		if !ok {
			t.Errorf("family %s missing from peer registry", name)
		} else if v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
	// The allocator granted the requester a rate at least once; the
	// gauge family must exist with the requester label.
	if f, ok := snap.Find(peer.MetricGrantedRate); !ok {
		t.Errorf("family %s missing", peer.MetricGrantedRate)
	} else if len(f.Series) == 0 || metrics.Get(f.Series[0].Labels, "requester") == "" {
		t.Errorf("%s has no labelled series: %+v", peer.MetricGrantedRate, f.Series)
	}

	csnap := clientReg.Snapshot()
	for _, name := range []string{
		client.MetricFetches,
		client.MetricInnovativeMessages,
		client.MetricReceivedBytes,
		client.MetricDecodedBytes,
	} {
		v, ok := counterValue(csnap, name)
		if !ok {
			t.Errorf("family %s missing from client registry", name)
		} else if v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
}
