package peer_test

import (
	"os"
	"testing"
	"time"

	"asymshare/internal/fairshare"
	"asymshare/internal/fsx"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

// durableConfig returns a node config whose ledger lives at path on
// the given filesystem, with the periodic timer effectively disabled
// so tests control every checkpoint.
func durableConfig(t *testing.T, fsys fsx.FS, path string) peer.Config {
	t.Helper()
	return peer.Config{
		Identity:           identity(t, 1),
		Store:              store.NewMemory(),
		LedgerPath:         path,
		CheckpointInterval: time.Hour,
		FS:                 fsys,
	}
}

// TestNodeLedgerSurvivesRestart runs the full lifecycle: a node earns
// standing, shuts down (final checkpoint), and a second node at the
// same path recovers the exact ledger.
func TestNodeLedgerSurvivesRestart(t *testing.T) {
	efs := fsx.NewErrFS(1)
	if err := efs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}

	n1 := startPeer(t, durableConfig(t, efs, "/d/ledger"))
	if rec := n1.LedgerRecovery(); rec.Loaded {
		t.Fatalf("first boot claims recovery: %+v", rec)
	}
	n1.Ledger().Credit("alice", 123)
	want := n1.Ledger().Received("alice")
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}
	if n1.CheckpointGen() == 0 {
		t.Fatal("close did not checkpoint the ledger")
	}

	n2, err := peer.New(durableConfig(t, efs, "/d/ledger"))
	if err != nil {
		t.Fatal(err)
	}
	rec := n2.LedgerRecovery()
	if !rec.Loaded || rec.CorruptSlots != 0 {
		t.Fatalf("restart recovery = %+v", rec)
	}
	if got := n2.Ledger().Received("alice"); got != want {
		t.Fatalf("recovered standing = %v, want %v", got, want)
	}
	if rec.Gen != n1.CheckpointGen() {
		t.Fatalf("recovered gen %d, last checkpoint gen %d", rec.Gen, n1.CheckpointGen())
	}
}

// TestNodeLedgerCrashLosesAtMostOneInterval kills the filesystem
// between a checkpoint and a later credit: restart recovers the
// checkpointed standing, not zero and not the unsaved tail.
func TestNodeLedgerCrashLosesAtMostOneInterval(t *testing.T) {
	efs := fsx.NewErrFS(2)
	if err := efs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}

	n1 := startPeer(t, durableConfig(t, efs, "/d/ledger"))
	n1.Ledger().Credit("alice", 100)
	if err := n1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	saved := n1.Ledger().Received("alice")
	n1.Ledger().Credit("alice", 7) // never checkpointed

	efs.Crash()
	// Close still succeeds: the final checkpoint fails against the dead
	// disk but Run absorbs the error rather than wedging shutdown.
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}
	efs.Reboot()

	n2, err := peer.New(durableConfig(t, efs, "/d/ledger"))
	if err != nil {
		t.Fatal(err)
	}
	rec := n2.LedgerRecovery()
	if !rec.Loaded || rec.CorruptSlots != 0 {
		t.Fatalf("post-crash recovery = %+v", rec)
	}
	if got := n2.Ledger().Received("alice"); got != saved {
		t.Fatalf("post-crash standing = %v, want checkpointed %v", got, saved)
	}
}

// TestNodeBootsWithDamagedLedgerSlots damages both checkpoint slots:
// the node must boot with a fresh ledger, not refuse to start.
func TestNodeBootsWithDamagedLedgerSlots(t *testing.T) {
	efs := fsx.NewErrFS(3)
	if err := efs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, slot := range []string{"/d/ledger", "/d/ledger.1"} {
		f, err := efs.OpenFile(slot, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("{torn"))
		f.Close()
	}
	n, err := peer.New(durableConfig(t, efs, "/d/ledger"))
	if err != nil {
		t.Fatal(err)
	}
	rec := n.LedgerRecovery()
	if rec.Loaded || rec.CorruptSlots != 2 {
		t.Fatalf("recovery = %+v", rec)
	}
	if got := n.Ledger().Received("anyone"); got != fairshare.DefaultInitialCredit {
		t.Fatalf("fresh ledger initial = %v", got)
	}
}
