// Package peer implements a storage peer daemon: the home computer of
// Fig. 4(a). A peer accepts authenticated connections, stores encoded
// messages uploaded during the initialization phase (Sec. III-A),
// serves stored messages to requesting users at rates chosen by its
// fairshare allocator (Sec. IV, Eq. 2), and accepts periodic feedback
// from its own user reporting service received from other peers — the
// only input the allocation rule needs.
package peer

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/contract"
	"asymshare/internal/fairshare"
	"asymshare/internal/fsx"
	"asymshare/internal/metrics"
	"asymshare/internal/ratelimit"
	"asymshare/internal/store"
	"asymshare/internal/transport"
)

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("peer: node closed")

// DefaultReallocInterval matches the paper's evaluation, where "each
// peer reallocated their upload bandwidths once per second".
const DefaultReallocInterval = time.Second

// streamBurst is the token-bucket burst granted to each download
// stream, in bytes.
const streamBurst = 64 << 10

// Config configures a Node.
type Config struct {
	// Identity is the peer's long-term key. Required.
	Identity *auth.Identity

	// Store holds the peer's encoded messages. Required.
	Store store.Store

	// Trusted restricts which counterpart keys are served. Nil accepts
	// any key that completes the challenge-response (open federation).
	Trusted *auth.TrustSet

	// Owner is the public key of the peer's own user; only the owner
	// may submit ledger feedback. Nil disables feedback.
	Owner ed25519.PublicKey

	// UploadBytesPerSec is the peer's upload capacity mu_i in
	// bytes/second. Zero or negative means unlimited (no shaping).
	UploadBytesPerSec float64

	// Allocator divides capacity among concurrent downloaders; nil
	// means the paper's pairwise-proportional rule.
	Allocator fairshare.Allocator

	// Ledger is the peer's receipt ledger; nil creates a fresh one with
	// the default initial credit, or recovers one from LedgerPath when
	// that is set.
	Ledger *fairshare.Ledger

	// LedgerPath, when set, makes the ledger durable: New recovers the
	// newest valid checkpoint from the dual slots at this path (see
	// fairshare.RecoverLedger) and the running node checkpoints the
	// ledger periodically and once more on Close. Without it a crash
	// zeroes every contributor's standing — the state Eq. (2) allocates
	// by and Theorem 1 assumes persists.
	LedgerPath string

	// CheckpointInterval is how often a dirty ledger is saved; zero
	// means fairshare.DefaultCheckpointInterval. Ignored without
	// LedgerPath.
	CheckpointInterval time.Duration

	// FS is the filesystem the ledger checkpoints go through; nil means
	// the real OS. Tests inject an fsx.ErrFS to crash the node's
	// durable state deterministically.
	FS fsx.FS

	// CapacityBytes is the peer's advertised storage capacity for
	// contracted obligations, in payload bytes. A proposal that would
	// push the obligated total past it is refused with a typed
	// over-capacity error while the owner is still on the line. Zero
	// or negative means unlimited.
	CapacityBytes int64

	// ContractPath, when set, journals accepted obligations there
	// (through FS) so a kill -9 never forgets an acknowledged
	// contract; see internal/contract. Empty keeps the book in
	// memory.
	ContractPath string

	// ReallocInterval is how often stream rates are recomputed; zero
	// means DefaultReallocInterval.
	ReallocInterval time.Duration

	// StreamBurst is the per-stream token-bucket burst in bytes; zero
	// means 64 KiB. It is always raised to cover at least one full
	// message frame of the stream being served.
	StreamBurst float64

	// MaxConns bounds concurrent connections; excess connections are
	// closed immediately. Zero means unlimited.
	MaxConns int

	// Transport provides the listener; nil means real TCP
	// (transport.Default). Tests inject an in-memory netsim fabric
	// here to drive the node through latency, loss and partitions.
	Transport transport.Transport

	// Logger receives operational events; nil discards them.
	Logger *slog.Logger

	// Metrics, when set, receives the node's peer_* instrument
	// families, wraps the store with latency histograms and attaches
	// credit/debit counters to the ledger (see internal/peer/metrics.go
	// and DESIGN.md §7). Each node should get its own registry so that
	// per-requester gauges from co-located nodes do not collide. Nil
	// disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

// Node is a running peer.
type Node struct {
	cfg       Config
	ledger    *fairshare.Ledger
	alloc     fairshare.Allocator
	log       *slog.Logger
	interval  time.Duration
	m         nodeMetrics
	ckpt      *fairshare.Checkpointer
	ledgerRec fairshare.LedgerRecovery
	book      *contract.Book
	bookRec   contract.Recovery

	ln     net.Listener
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	streams map[*stream]struct{}
	closed  bool

	statsMu       sync.Mutex
	bytesOut      map[fairshare.ID]int64 // per-downloader served bytes
	putBytesIn    int64
	auditsServed  int64 // challenges answered
	auditsSampled int64 // messages probed across challenges
	auditsHeld    int64 // probed messages actually held

	ownersMu sync.Mutex
	owners   map[uint64]fairshare.ID // file-id -> first uploader
}

// stream is one active download being served.
type stream struct {
	client  fairshare.ID
	bucket  *ratelimit.Bucket
	cancel  context.CancelFunc
	fileID  uint64
	limited bool // false = no upload cap: skip the bucket entirely
}

// New validates the configuration and creates a node (not yet
// listening).
func New(cfg Config) (*Node, error) {
	if cfg.Identity == nil {
		return nil, errors.New("peer: config requires an identity")
	}
	if cfg.Store == nil {
		return nil, errors.New("peer: config requires a store")
	}
	n := &Node{
		cfg:      cfg,
		ledger:   cfg.Ledger,
		alloc:    cfg.Allocator,
		log:      cfg.Logger,
		interval: cfg.ReallocInterval,
		streams:  make(map[*stream]struct{}),
		bytesOut: make(map[fairshare.ID]int64),
		owners:   make(map[uint64]fairshare.ID),
	}
	if cfg.LedgerPath != "" {
		led, rec, err := fairshare.RecoverLedger(cfg.FS, cfg.LedgerPath, fairshare.DefaultInitialCredit)
		if err != nil {
			return nil, fmt.Errorf("peer: recover ledger: %w", err)
		}
		n.ledgerRec = rec
		if n.ledger == nil {
			// Recovered standing replaces the fresh-ledger default; an
			// explicitly injected ledger wins, but the on-disk generation
			// still seeds the checkpointer so generations never regress.
			n.ledger = led
		}
	}
	if n.ledger == nil {
		n.ledger = fairshare.NewLedger(fairshare.DefaultInitialCredit)
	}
	book, bookRec, err := contract.OpenBook(contract.BookConfig{
		Capacity: cfg.CapacityBytes,
		Path:     cfg.ContractPath,
		FS:       cfg.FS,
		Metrics:  cfg.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("peer: recover contract book: %w", err)
	}
	n.book = book
	n.bookRec = bookRec
	if n.alloc == nil {
		n.alloc = fairshare.PairwiseProportional{}
	}
	if n.log == nil {
		n.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if n.interval <= 0 {
		n.interval = DefaultReallocInterval
	}
	n.m = newNodeMetrics(cfg.Metrics)
	if cfg.Metrics != nil {
		n.cfg.Store = store.Instrument(n.cfg.Store, cfg.Metrics)
		n.ledger.Instrument(cfg.Metrics)
		n.alloc = fairshare.InstrumentAllocator(n.alloc, cfg.Metrics)
	}
	if cfg.LedgerPath != "" {
		n.ckpt = fairshare.NewCheckpointer(fairshare.CheckpointConfig{
			Ledger:   n.ledger,
			Path:     cfg.LedgerPath,
			Interval: cfg.CheckpointInterval,
			FS:       cfg.FS,
			Gen:      n.ledgerRec.Gen,
			Metrics:  cfg.Metrics,
		})
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	return n, nil
}

// Start listens on addr (e.g. "127.0.0.1:0") and begins serving.
func (n *Node) Start(addr string) error {
	tr := n.cfg.Transport
	if tr == nil {
		tr = transport.Default
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("peer: listen: %w", err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	n.ln = ln
	n.mu.Unlock()

	n.wg.Add(2)
	go n.acceptLoop()
	go n.reallocLoop()
	if n.ckpt != nil {
		// Close cancels n.ctx before wg.Wait, so Run's shutdown path
		// writes one final checkpoint before Close returns.
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.ckpt.Run(n.ctx)
		}()
		n.log.Info("ledger checkpointing enabled",
			"path", n.cfg.LedgerPath, "gen", n.ledgerRec.Gen,
			"recovered", n.ledgerRec.Loaded, "corrupt_slots", n.ledgerRec.CorruptSlots)
	}
	n.log.Info("peer started", "addr", ln.Addr().String(), "fingerprint", n.cfg.Identity.Fingerprint())
	return nil
}

// Addr returns the listen address, or nil before Start.
func (n *Node) Addr() net.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return nil
	}
	return n.ln.Addr()
}

// Ledger exposes the node's receipt ledger (shared, concurrent-safe).
func (n *Node) Ledger() *fairshare.Ledger { return n.ledger }

// Contracts exposes the node's obligation book (concurrent-safe).
func (n *Node) Contracts() *contract.Book { return n.book }

// ContractRecovery reports what New found at Config.ContractPath. The
// zero value is returned when the node has no durable book.
func (n *Node) ContractRecovery() contract.Recovery { return n.bookRec }

// LedgerRecovery reports what New found at Config.LedgerPath. The
// zero value is returned when the node has no durable ledger.
func (n *Node) LedgerRecovery() fairshare.LedgerRecovery { return n.ledgerRec }

// CheckpointGen returns the generation of the newest completed ledger
// checkpoint, or 0 when the node has no durable ledger.
func (n *Node) CheckpointGen() uint64 {
	if n.ckpt == nil {
		return 0
	}
	return n.ckpt.Gen()
}

// CheckpointNow forces an immediate ledger checkpoint (no-op without a
// durable ledger). The periodic Run loop normally handles this; it is
// exposed for operators and tests that need a hard durability point.
func (n *Node) CheckpointNow() error {
	if n.ckpt == nil {
		return nil
	}
	return n.ckpt.Checkpoint()
}

// Close stops serving and waits for all connection handlers to exit.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ln := n.ln
	n.mu.Unlock()
	n.cancel()
	if ln != nil {
		ln.Close()
	}
	n.wg.Wait()
	return n.book.Close()
}

// ServedBytes reports the total bytes served per downloader
// fingerprint.
func (n *Node) ServedBytes() map[fairshare.ID]int64 {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	out := make(map[fairshare.ID]int64, len(n.bytesOut))
	for k, v := range n.bytesOut {
		out[k] = v
	}
	return out
}

// StoredBytes reports the total bytes accepted via PUT.
func (n *Node) StoredBytes() int64 {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.putBytesIn
}

// Accept-loop backoff bounds. Transient accept failures (EMFILE,
// ECONNABORTED, momentary stack trouble) must not kill the daemon: the
// loop sleeps an exponentially growing, capped interval and tries
// again, resetting once an accept succeeds.
const (
	acceptBackoffStart = 5 * time.Millisecond
	acceptBackoffMax   = time.Second
)

// nextAcceptBackoff returns the delay after one more consecutive
// accept failure: start on the first failure, doubling up to the cap.
func nextAcceptBackoff(cur time.Duration) time.Duration {
	if cur <= 0 {
		return acceptBackoffStart
	}
	cur *= 2
	if cur > acceptBackoffMax {
		cur = acceptBackoffMax
	}
	return cur
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	var sem chan struct{}
	if n.cfg.MaxConns > 0 {
		sem = make(chan struct{}, n.cfg.MaxConns)
	}
	var backoff time.Duration
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if n.ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			n.m.acceptErrors.Inc()
			backoff = nextAcceptBackoff(backoff)
			n.log.Warn("accept error", "err", err, "retry_in", backoff)
			select {
			case <-n.ctx.Done():
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		n.m.conns.Inc()
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				// At capacity: shed the connection rather than queueing
				// unauthenticated strangers.
				n.m.connsShed.Inc()
				n.log.Debug("connection shed", "remote", conn.RemoteAddr().String())
				conn.Close()
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			n.m.connsActive.Add(1)
			defer n.m.connsActive.Add(-1)
			n.handleConn(conn)
		}()
	}
}

// reallocLoop recomputes each active stream's rate once per interval,
// dividing capacity with the allocator over the currently-downloading
// clients — the real-time counterpart of the simulator's per-slot
// allocation.
func (n *Node) reallocLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-ticker.C:
			n.reallocate()
		}
	}
}

func (n *Node) reallocate() {
	if n.cfg.UploadBytesPerSec <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reallocateLocked()
}

func (n *Node) reallocateLocked() {
	if n.cfg.UploadBytesPerSec <= 0 {
		return
	}
	start := time.Now()
	// Distinct requesting clients (a client may run several streams).
	clients := make(map[fairshare.ID][]*stream, len(n.streams))
	for s := range n.streams {
		clients[s.client] = append(clients[s.client], s)
	}
	if len(clients) == 0 {
		// Zero the gauges of requesters that left so a scrape does not
		// show bandwidth granted to nobody.
		for _, g := range n.m.grants {
			g.Set(0)
		}
		return
	}
	ids := make([]fairshare.ID, 0, len(clients))
	for id := range clients {
		ids = append(ids, id)
	}
	alloc := n.alloc.Allocate(n.cfg.UploadBytesPerSec, ids, n.ledger)
	for id, ss := range clients {
		perStream := alloc[id] / float64(len(ss))
		for _, s := range ss {
			s.bucket.SetRate(perStream)
		}
	}
	for id, g := range n.m.grants {
		if _, requesting := clients[id]; !requesting {
			g.Set(0)
		}
	}
	for id := range clients {
		n.m.grantGauge(id).Set(alloc[id])
	}
	n.m.reallocDur.ObserveSince(start)
}

func (n *Node) registerStream(s *stream) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.streams[s] = struct{}{}
	n.m.streamsActive.Add(1)
	// Give the new stream a sane rate immediately rather than waiting
	// out the first tick.
	n.reallocateLocked()
}

func (n *Node) unregisterStream(s *stream) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.streams, s)
	n.m.streamsActive.Add(-1)
	n.reallocateLocked()
}

func (n *Node) recordServed(client fairshare.ID, bytes int) {
	n.statsMu.Lock()
	n.bytesOut[client] += int64(bytes)
	n.statsMu.Unlock()
	n.m.servedBytes.Add(uint64(bytes))
	n.m.servedRate.Mark(uint64(bytes))
}

func (n *Node) recordStored(bytes int) {
	n.statsMu.Lock()
	n.putBytesIn += int64(bytes)
	n.statsMu.Unlock()
	n.m.storedBytes.Add(uint64(bytes))
}

func (n *Node) recordAudit(held, sampled int) {
	n.statsMu.Lock()
	n.auditsServed++
	n.auditsSampled += int64(sampled)
	n.auditsHeld += int64(held)
	n.statsMu.Unlock()
	n.m.auditsAnswered.Inc()
	n.m.auditSampled.Add(uint64(sampled))
	n.m.auditHeld.Add(uint64(held))
}

// AuditStats reports the challenges this peer has answered: how many
// challenges arrived, how many messages they probed, and how many of
// those the store still held. A healthy peer has held == sampled.
func (n *Node) AuditStats() (served, sampled, held int64) {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.auditsServed, n.auditsSampled, n.auditsHeld
}

// claimFile records the first uploader of a file-id as its owner and
// reports whether client is (now) the owner. Only the owner may write
// further messages or patches for that file, so one trusted user
// cannot corrupt another's stored generations.
func (n *Node) claimFile(fileID uint64, client fairshare.ID) bool {
	n.ownersMu.Lock()
	defer n.ownersMu.Unlock()
	owner, ok := n.owners[fileID]
	if !ok {
		n.owners[fileID] = client
		return true
	}
	return owner == client
}
