// Package peer implements a storage peer daemon: the home computer of
// Fig. 4(a). A peer accepts authenticated connections, stores encoded
// messages uploaded during the initialization phase (Sec. III-A),
// serves stored messages to requesting users at rates chosen by its
// fairshare allocator (Sec. IV, Eq. 2), and accepts periodic feedback
// from its own user reporting service received from other peers — the
// only input the allocation rule needs.
package peer

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/contract"
	"asymshare/internal/estimate"
	"asymshare/internal/fairshare"
	"asymshare/internal/fsx"
	"asymshare/internal/metrics"
	"asymshare/internal/ratelimit"
	"asymshare/internal/store"
	"asymshare/internal/transport"
)

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("peer: node closed")

// DefaultReallocInterval matches the paper's evaluation, where "each
// peer reallocated their upload bandwidths once per second".
const DefaultReallocInterval = time.Second

// streamBurst is the token-bucket burst granted to each download
// stream, in bytes.
const streamBurst = 64 << 10

// Config configures a Node.
type Config struct {
	// Identity is the peer's long-term key. Required.
	Identity *auth.Identity

	// Store holds the peer's encoded messages. Required.
	Store store.Store

	// Trusted restricts which counterpart keys are served. Nil accepts
	// any key that completes the challenge-response (open federation).
	Trusted *auth.TrustSet

	// Owner is the public key of the peer's own user; only the owner
	// may submit ledger feedback. Nil disables feedback.
	Owner ed25519.PublicKey

	// UploadBytesPerSec is the peer's upload capacity mu_i in
	// bytes/second. Zero or negative means unlimited (no shaping).
	// With an Estimator it is the operator override: a ceiling the
	// online estimate is clamped to, and the capacity used while the
	// estimator warms up.
	UploadBytesPerSec float64

	// Estimator, when set, measures the real upload capacity online
	// from flush timings (see internal/estimate) and the realloc loop
	// divides the estimate instead of the configured constant.
	Estimator estimate.Estimator

	// Allocator divides capacity among concurrent downloaders; nil
	// means the paper's pairwise-proportional rule.
	Allocator fairshare.Allocator

	// Ledger is the peer's receipt ledger — either the exact pairwise
	// fairshare.Ledger or the bounded fairshare.ShardedLedger; nil
	// creates a fresh one (bounded iff LedgerBound > 0, with the
	// default initial credit), or recovers one from LedgerPath when
	// that is set.
	Ledger fairshare.Book

	// LedgerBound, when positive, bounds ledger memory: the node keeps
	// the top-LedgerBound counterpart standings exactly and folds the
	// rest into a decayed aggregate tail (fairshare.ShardedLedger). A
	// legacy pairwise checkpoint at LedgerPath is migrated on load.
	// Zero keeps the exact pairwise ledger. Ignored when Ledger is
	// injected directly.
	LedgerBound int

	// LedgerPath, when set, makes the ledger durable: New recovers the
	// newest valid checkpoint from the dual slots at this path (see
	// fairshare.RecoverLedger) and the running node checkpoints the
	// ledger periodically and once more on Close. Without it a crash
	// zeroes every contributor's standing — the state Eq. (2) allocates
	// by and Theorem 1 assumes persists.
	LedgerPath string

	// CheckpointInterval is how often a dirty ledger is saved; zero
	// means fairshare.DefaultCheckpointInterval. Ignored without
	// LedgerPath.
	CheckpointInterval time.Duration

	// FS is the filesystem the ledger checkpoints go through; nil means
	// the real OS. Tests inject an fsx.ErrFS to crash the node's
	// durable state deterministically.
	FS fsx.FS

	// CapacityBytes is the peer's advertised storage capacity for
	// contracted obligations, in payload bytes. A proposal that would
	// push the obligated total past it is refused with a typed
	// over-capacity error while the owner is still on the line. Zero
	// or negative means unlimited.
	CapacityBytes int64

	// ContractPath, when set, journals accepted obligations there
	// (through FS) so a kill -9 never forgets an acknowledged
	// contract; see internal/contract. Empty keeps the book in
	// memory.
	ContractPath string

	// ReallocInterval is how often stream rates are recomputed; zero
	// means DefaultReallocInterval.
	ReallocInterval time.Duration

	// StreamBurst is the per-stream token-bucket burst in bytes; zero
	// means 64 KiB. It is always raised to cover at least one full
	// message frame of the stream being served.
	StreamBurst float64

	// MaxConns bounds concurrent connections; excess connections are
	// closed immediately. Zero means unlimited.
	MaxConns int

	// MaxStreams bounds concurrently served download streams (the
	// admission queue of DESIGN.md §15). At the bound, a new request
	// either preempts the active stream with the lowest (priority,
	// fairness standing) — free riders shed first, high-standing
	// requesters protected — or is refused with a typed BUSY /
	// RETRY_AFTER frame. At three quarters of the bound the node enters
	// brownout and serves every stream with halved batch sizes before
	// refusing anyone. Zero means unlimited (no admission control).
	MaxStreams int

	// Transport provides the listener; nil means real TCP
	// (transport.Default). Tests inject an in-memory netsim fabric
	// here to drive the node through latency, loss and partitions.
	Transport transport.Transport

	// Logger receives operational events; nil discards them.
	Logger *slog.Logger

	// Metrics, when set, receives the node's peer_* instrument
	// families, wraps the store with latency histograms and attaches
	// credit/debit counters to the ledger (see internal/peer/metrics.go
	// and DESIGN.md §7). Each node should get its own registry so that
	// per-requester gauges from co-located nodes do not collide. Nil
	// disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

// Node is a running peer.
type Node struct {
	cfg       Config
	ledger    fairshare.Book
	alloc     fairshare.Allocator
	est       estimate.Estimator
	log       *slog.Logger
	interval  time.Duration
	m         nodeMetrics
	ckpt      *fairshare.Checkpointer
	ledgerRec fairshare.LedgerRecovery
	book      *contract.Book
	bookRec   contract.Recovery

	ln     net.Listener
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	streams map[*stream]struct{}
	closed  bool

	// Realloc scratch, touched only under mu: requester build-up,
	// per-requester stream counts (parallel to reqBuf), requester
	// index by ID, and the grants buffer handed to the allocator —
	// so a steady-state tick reuses every buffer.
	reqBuf    []fairshare.Requester
	cntBuf    []int
	posBuf    map[fairshare.ID]int
	grantsBuf fairshare.Grants

	// Drain-rate tracking (under mu): per-requester served-byte marks
	// and the EWMA-free rate observed over the last full tick, feeding
	// Requester.Demand so water-fill stops over-granting requesters
	// that cannot drain what they are granted. lastDrainMark is when
	// the marks were last advanced.
	drainPrev     map[fairshare.ID]int64
	drainRate     map[fairshare.ID]float64
	grantRate     map[fairshare.ID]float64 // rate granted at the last tick
	lastDrainMark time.Time

	// brownout is set while admission load is at or above the brownout
	// threshold; serve loops read it per batch to halve their sizes.
	brownout atomic.Bool

	// Estimator sample train: flush timings aggregate here until
	// estimate.MinTrainBytes have been observed, then emit one Sample
	// (small flushes ride socket buffers and would read fast).
	trainMu    sync.Mutex
	trainBytes int64
	trainDur   time.Duration

	statsMu       sync.Mutex
	bytesOut      map[fairshare.ID]int64 // per-downloader served bytes
	putBytesIn    int64
	auditsServed  int64 // challenges answered
	auditsSampled int64 // messages probed across challenges
	auditsHeld    int64 // probed messages actually held

	// Overload accounting (under statsMu); see OverloadStats.
	sheds         int64
	preempts      int64
	expired       int64
	shedsByClient map[fairshare.ID]int64

	ownersMu sync.Mutex
	owners   map[uint64]fairshare.ID // file-id -> first uploader
}

// stream is one active download being served.
type stream struct {
	client   fairshare.ID
	bucket   *ratelimit.Bucket
	cancel   context.CancelFunc
	fileID   uint64
	limited  bool // false = no upload cap: skip the bucket entirely
	priority uint8
	deadline time.Time // zero = none; work past it is dropped, not served
	// notifyBusy writes a BUSY frame for this stream on its own
	// connection; the admission path calls it (outside n.mu) when the
	// stream is preempted for a higher-standing requester. Nil in
	// tests that fabricate streams directly.
	notifyBusy func(code uint16, retryAfterMillis uint32, reason string)
}

// New validates the configuration and creates a node (not yet
// listening).
func New(cfg Config) (*Node, error) {
	if cfg.Identity == nil {
		return nil, errors.New("peer: config requires an identity")
	}
	if cfg.Store == nil {
		return nil, errors.New("peer: config requires a store")
	}
	n := &Node{
		cfg:           cfg,
		ledger:        cfg.Ledger,
		alloc:         cfg.Allocator,
		est:           cfg.Estimator,
		log:           cfg.Logger,
		interval:      cfg.ReallocInterval,
		streams:       make(map[*stream]struct{}),
		posBuf:        make(map[fairshare.ID]int),
		bytesOut:      make(map[fairshare.ID]int64),
		owners:        make(map[uint64]fairshare.ID),
		drainPrev:     make(map[fairshare.ID]int64),
		drainRate:     make(map[fairshare.ID]float64),
		grantRate:     make(map[fairshare.ID]float64),
		shedsByClient: make(map[fairshare.ID]int64),
		lastDrainMark: time.Now(),
	}
	if cfg.LedgerPath != "" {
		led, rec, err := fairshare.RecoverBook(cfg.FS, cfg.LedgerPath, fairshare.DefaultInitialCredit, cfg.LedgerBound)
		if err != nil {
			return nil, fmt.Errorf("peer: recover ledger: %w", err)
		}
		n.ledgerRec = rec
		if n.ledger == nil {
			// Recovered standing replaces the fresh-ledger default; an
			// explicitly injected ledger wins, but the on-disk generation
			// still seeds the checkpointer so generations never regress.
			n.ledger = led
		}
	}
	if n.ledger == nil {
		if cfg.LedgerBound > 0 {
			n.ledger = fairshare.NewShardedLedger(fairshare.DefaultInitialCredit, cfg.LedgerBound)
		} else {
			n.ledger = fairshare.NewLedger(fairshare.DefaultInitialCredit)
		}
	}
	book, bookRec, err := contract.OpenBook(contract.BookConfig{
		Capacity: cfg.CapacityBytes,
		Path:     cfg.ContractPath,
		FS:       cfg.FS,
		Metrics:  cfg.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("peer: recover contract book: %w", err)
	}
	n.book = book
	n.bookRec = bookRec
	if n.alloc == nil {
		n.alloc = fairshare.PairwiseProportional{}
	}
	if n.log == nil {
		n.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if n.interval <= 0 {
		n.interval = DefaultReallocInterval
	}
	n.m = newNodeMetrics(cfg.Metrics)
	if cfg.Metrics != nil {
		n.cfg.Store = store.Instrument(n.cfg.Store, cfg.Metrics)
		fairshare.InstrumentBook(n.ledger, cfg.Metrics)
		n.alloc = fairshare.InstrumentAllocator(n.alloc, cfg.Metrics)
		n.est = estimate.Instrument(n.est, cfg.Metrics)
	}
	if cfg.LedgerPath != "" {
		n.ckpt = fairshare.NewCheckpointer(fairshare.CheckpointConfig{
			Ledger:   n.ledger,
			Path:     cfg.LedgerPath,
			Interval: cfg.CheckpointInterval,
			FS:       cfg.FS,
			Gen:      n.ledgerRec.Gen,
			Metrics:  cfg.Metrics,
		})
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	return n, nil
}

// Start listens on addr (e.g. "127.0.0.1:0") and begins serving.
func (n *Node) Start(addr string) error {
	tr := n.cfg.Transport
	if tr == nil {
		tr = transport.Default
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("peer: listen: %w", err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	n.ln = ln
	n.mu.Unlock()

	n.wg.Add(2)
	go n.acceptLoop()
	go n.reallocLoop()
	if n.ckpt != nil {
		// Close cancels n.ctx before wg.Wait, so Run's shutdown path
		// writes one final checkpoint before Close returns.
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.ckpt.Run(n.ctx)
		}()
		n.log.Info("ledger checkpointing enabled",
			"path", n.cfg.LedgerPath, "gen", n.ledgerRec.Gen,
			"recovered", n.ledgerRec.Loaded, "corrupt_slots", n.ledgerRec.CorruptSlots)
	}
	n.log.Info("peer started", "addr", ln.Addr().String(), "fingerprint", n.cfg.Identity.Fingerprint())
	return nil
}

// Addr returns the listen address, or nil before Start.
func (n *Node) Addr() net.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return nil
	}
	return n.ln.Addr()
}

// Ledger exposes the node's receipt ledger (shared, concurrent-safe).
func (n *Node) Ledger() fairshare.Book { return n.ledger }

// Contracts exposes the node's obligation book (concurrent-safe).
func (n *Node) Contracts() *contract.Book { return n.book }

// ContractRecovery reports what New found at Config.ContractPath. The
// zero value is returned when the node has no durable book.
func (n *Node) ContractRecovery() contract.Recovery { return n.bookRec }

// LedgerRecovery reports what New found at Config.LedgerPath. The
// zero value is returned when the node has no durable ledger.
func (n *Node) LedgerRecovery() fairshare.LedgerRecovery { return n.ledgerRec }

// CheckpointGen returns the generation of the newest completed ledger
// checkpoint, or 0 when the node has no durable ledger.
func (n *Node) CheckpointGen() uint64 {
	if n.ckpt == nil {
		return 0
	}
	return n.ckpt.Gen()
}

// CheckpointNow forces an immediate ledger checkpoint (no-op without a
// durable ledger). The periodic Run loop normally handles this; it is
// exposed for operators and tests that need a hard durability point.
func (n *Node) CheckpointNow() error {
	if n.ckpt == nil {
		return nil
	}
	return n.ckpt.Checkpoint()
}

// Close stops serving and waits for all connection handlers to exit.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ln := n.ln
	n.mu.Unlock()
	n.cancel()
	if ln != nil {
		ln.Close()
	}
	n.wg.Wait()
	return n.book.Close()
}

// ServedBytes reports the total bytes served per downloader
// fingerprint.
func (n *Node) ServedBytes() map[fairshare.ID]int64 {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	out := make(map[fairshare.ID]int64, len(n.bytesOut))
	for k, v := range n.bytesOut {
		out[k] = v
	}
	return out
}

// StoredBytes reports the total bytes accepted via PUT.
func (n *Node) StoredBytes() int64 {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.putBytesIn
}

// Accept-loop backoff bounds. Transient accept failures (EMFILE,
// ECONNABORTED, momentary stack trouble) must not kill the daemon: the
// loop sleeps an exponentially growing, capped interval and tries
// again, resetting once an accept succeeds.
const (
	acceptBackoffStart = 5 * time.Millisecond
	acceptBackoffMax   = time.Second
)

// nextAcceptBackoff returns the delay after one more consecutive
// accept failure: start on the first failure, doubling up to the cap.
func nextAcceptBackoff(cur time.Duration) time.Duration {
	if cur <= 0 {
		return acceptBackoffStart
	}
	cur *= 2
	if cur > acceptBackoffMax {
		cur = acceptBackoffMax
	}
	return cur
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	var sem chan struct{}
	if n.cfg.MaxConns > 0 {
		sem = make(chan struct{}, n.cfg.MaxConns)
	}
	var backoff time.Duration
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if n.ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			n.m.acceptErrors.Inc()
			backoff = nextAcceptBackoff(backoff)
			n.log.Warn("accept error", "err", err, "retry_in", backoff)
			select {
			case <-n.ctx.Done():
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		n.m.conns.Inc()
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				// At capacity: shed the connection rather than queueing
				// unauthenticated strangers.
				n.m.connsShed.Inc()
				n.log.Debug("connection shed", "remote", conn.RemoteAddr().String())
				conn.Close()
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			n.m.connsActive.Add(1)
			defer n.m.connsActive.Add(-1)
			n.handleConn(conn)
		}()
	}
}

// reallocLoop recomputes each active stream's rate once per interval,
// dividing capacity with the allocator over the currently-downloading
// clients — the real-time counterpart of the simulator's per-slot
// allocation.
func (n *Node) reallocLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-ticker.C:
			n.reallocate()
		}
	}
}

// shaping reports whether this node limits upload streams at all — a
// configured capacity, or an estimator that will discover one.
func (n *Node) shaping() bool {
	return n.cfg.UploadBytesPerSec > 0 || n.est != nil
}

// warmupRate is the effectively-unshaped bucket rate used while an
// estimator warms up on a node with no configured capacity: streams
// must run through their buckets (so they can be shaped once the
// estimate lands) but nothing real is known to limit them yet.
const warmupRate = 1e12

// currentCapacity resolves the capacity to divide this tick: the
// online estimate clamped to the configured override when both exist,
// the configured constant while the estimate warms up, and 0 for
// "still unknown" (estimator only, not yet converged).
func (n *Node) currentCapacity() float64 {
	configured := n.cfg.UploadBytesPerSec
	if n.est == nil {
		return configured
	}
	if e := estimate.Clamp(n.est.Estimate(), 0, configured); e > 0 {
		return e
	}
	return configured
}

func (n *Node) reallocate() {
	if !n.shaping() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reallocateLocked()
}

func (n *Node) reallocateLocked() {
	if !n.shaping() {
		return
	}
	start := time.Now()
	// Distinct requesting clients (a client may run several streams),
	// built into reused scratch: reqBuf holds one Requester per
	// distinct client, cntBuf its stream count, posBuf its index.
	n.reqBuf = n.reqBuf[:0]
	n.cntBuf = n.cntBuf[:0]
	clear(n.posBuf)
	for s := range n.streams {
		if i, ok := n.posBuf[s.client]; ok {
			n.cntBuf[i]++
			continue
		}
		n.posBuf[s.client] = len(n.reqBuf)
		n.reqBuf = append(n.reqBuf, fairshare.Requester{ID: s.client})
		n.cntBuf = append(n.cntBuf, 1)
	}
	if len(n.reqBuf) == 0 {
		// Zero the gauges of requesters that left so a scrape does not
		// show bandwidth granted to nobody.
		for _, g := range n.m.grants {
			g.Set(0)
		}
		return
	}
	// Taken feeds contribution-index policies (BiasedContribution);
	// the same served-byte reads drive the drain-rate marks behind
	// Requester.Demand.
	n.statsMu.Lock()
	for i := range n.reqBuf {
		n.reqBuf[i].Taken = float64(n.bytesOut[n.reqBuf[i].ID])
	}
	n.updateDrainRatesLocked()
	n.statsMu.Unlock()
	for i := range n.reqBuf {
		n.reqBuf[i].Demand = n.demandFor(n.reqBuf[i].ID)
	}
	capacity := n.currentCapacity()
	n.m.capacity.Set(capacity)
	if capacity <= 0 {
		// Estimator-only node, estimate not yet converged: run the
		// streams effectively unshaped until it is.
		for s := range n.streams {
			s.bucket.SetRate(warmupRate)
		}
		return
	}
	grants := n.alloc.Allocate(fairshare.AllocRequest{
		Capacity:   capacity,
		Requesters: n.reqBuf,
		Ledger:     n.ledger,
		Scratch:    n.grantsBuf,
	})
	n.grantsBuf = grants
	for i := range grants {
		n.grantRate[grants[i].ID] = grants[i].Rate
	}
	for s := range n.streams {
		i := n.posBuf[s.client]
		s.bucket.SetRate(grants[i].Rate / float64(n.cntBuf[i]))
	}
	for id, g := range n.m.grants {
		if _, requesting := n.posBuf[id]; !requesting {
			g.Set(0)
		}
	}
	for i := range grants {
		n.m.grantGauge(grants[i].ID).Set(grants[i].Rate)
	}
	n.m.reallocDur.ObserveSince(start)
}

// recordFlush aggregates one flush timing into the estimator sample
// train (no-op without an estimator). Individual flushes are too small
// to time — socket and shaper burst buffers absorb them — so bytes and
// active-drain durations accumulate until a full train has passed,
// then emit one Sample.
func (n *Node) recordFlush(bytes int, dur time.Duration) {
	if n.est == nil || bytes <= 0 || dur <= 0 {
		return
	}
	n.trainMu.Lock()
	n.trainBytes += int64(bytes)
	n.trainDur += dur
	if n.trainBytes < estimate.MinTrainBytes {
		n.trainMu.Unlock()
		return
	}
	s := estimate.Sample{Bytes: n.trainBytes, Duration: n.trainDur}
	n.trainBytes, n.trainDur = 0, 0
	n.trainMu.Unlock()
	n.est.Observe(s)
}

// registerLocked adds an admitted stream and gives it a sane rate
// immediately rather than waiting out the first tick. Callers hold mu.
func (n *Node) registerLocked(s *stream) {
	n.streams[s] = struct{}{}
	n.m.streamsActive.Add(1)
	n.m.overloadAdmitted.Inc()
	n.updateBrownoutLocked()
	n.reallocateLocked()
}

func (n *Node) unregisterStream(s *stream) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// A preempted stream was already removed (and its gauge decremented)
	// by the admission path; its serve goroutine still unregisters on
	// the way out, which must then be a no-op.
	if _, ok := n.streams[s]; !ok {
		return
	}
	delete(n.streams, s)
	n.m.streamsActive.Add(-1)
	n.updateBrownoutLocked()
	n.reallocateLocked()
}

// updateDrainRatesLocked advances the per-requester served-byte marks
// and recomputes observed drain rates once a meaningful interval has
// passed. Callers hold both mu and statsMu (it reads bytesOut and
// writes the mu-guarded drain maps).
func (n *Node) updateDrainRatesLocked() {
	elapsed := time.Since(n.lastDrainMark).Seconds()
	if elapsed < minDrainInterval.Seconds() {
		return // register/unregister mini-ticks: keep the last full-tick rates
	}
	n.lastDrainMark = time.Now()
	stale := elapsed > maxDrainInterval.Seconds()
	for i := range n.reqBuf {
		id := n.reqBuf[i].ID
		out := n.bytesOut[id]
		prev, seen := n.drainPrev[id]
		n.drainPrev[id] = out
		if !seen || stale {
			// No usable sample: a fresh requester, or marks separated
			// by an idle gap. Leave demand unbounded.
			delete(n.drainRate, id)
			continue
		}
		rate := float64(out-prev) / elapsed
		if g := n.grantRate[id]; g > 0 && rate >= drainSaturation*g {
			// The requester drained essentially everything it was
			// granted: the measured rate is the grant echoed back, not
			// evidence of what it could drain. Capping demand at it
			// would lock a floored requester at the floor forever.
			delete(n.drainRate, id)
			continue
		}
		n.drainRate[id] = rate
	}
	// Drop marks for requesters that left so the maps stay bounded by
	// the active set and a returning requester starts unbounded again.
	for id := range n.drainPrev {
		if _, active := n.posBuf[id]; !active {
			delete(n.drainPrev, id)
			delete(n.drainRate, id)
			delete(n.grantRate, id)
		}
	}
}

// demandFor translates an observed drain rate into the Demand cap
// handed to the allocator: headroom above what the requester proved it
// can drain, so a healthy stream can still grow, floored so a briefly
// idle one is never starved out of its ramp back up. Requesters with
// no full tick of history get 0 — unbounded — so new streams are not
// throttled by an empty ledger of observations. Callers hold mu.
func (n *Node) demandFor(id fairshare.ID) float64 {
	rate, ok := n.drainRate[id]
	if !ok {
		return 0
	}
	d := rate * demandHeadroom
	if d < demandFloorBytesPerSec {
		d = demandFloorBytesPerSec
	}
	return d
}

func (n *Node) recordServed(client fairshare.ID, bytes int) {
	n.statsMu.Lock()
	n.bytesOut[client] += int64(bytes)
	n.statsMu.Unlock()
	n.m.servedBytes.Add(uint64(bytes))
	n.m.servedRate.Mark(uint64(bytes))
}

func (n *Node) recordStored(bytes int) {
	n.statsMu.Lock()
	n.putBytesIn += int64(bytes)
	n.statsMu.Unlock()
	n.m.storedBytes.Add(uint64(bytes))
}

func (n *Node) recordAudit(held, sampled int) {
	n.statsMu.Lock()
	n.auditsServed++
	n.auditsSampled += int64(sampled)
	n.auditsHeld += int64(held)
	n.statsMu.Unlock()
	n.m.auditsAnswered.Inc()
	n.m.auditSampled.Add(uint64(sampled))
	n.m.auditHeld.Add(uint64(held))
}

// AuditStats reports the challenges this peer has answered: how many
// challenges arrived, how many messages they probed, and how many of
// those the store still held. A healthy peer has held == sampled.
func (n *Node) AuditStats() (served, sampled, held int64) {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.auditsServed, n.auditsSampled, n.auditsHeld
}

// claimFile records the first uploader of a file-id as its owner and
// reports whether client is (now) the owner. Only the owner may write
// further messages or patches for that file, so one trusted user
// cannot corrupt another's stored generations.
func (n *Node) claimFile(fileID uint64, client fairshare.ID) bool {
	n.ownersMu.Lock()
	defer n.ownersMu.Unlock()
	owner, ok := n.owners[fileID]
	if !ok {
		n.owners[fileID] = client
		return true
	}
	return owner == client
}
