package peer

// White-box tests for the bounded admission controller: shed ordering
// by (priority, standing), the brownout band, the drain-rate Demand
// feed, and the 0-alloc gate on the granted fast path.

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/fairshare"
	"asymshare/internal/ratelimit"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
	"asymshare/internal/wire"
)

func admissionIdentity(t testing.TB, b byte) *auth.Identity {
	t.Helper()
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{b}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func admissionNode(t testing.TB, cfg Config) *Node {
	t.Helper()
	if cfg.Identity == nil {
		cfg.Identity = admissionIdentity(t, 1)
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMemory()
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// fakeStream fabricates a registered-shape stream without a network
// connection.
func fakeStream(client fairshare.ID, priority uint8) *stream {
	_, cancel := context.WithCancel(context.Background())
	return &stream{
		client:   client,
		bucket:   ratelimit.NewBucket(0, 1<<20),
		cancel:   cancel,
		limited:  true,
		priority: priority,
	}
}

func TestAdmissionUnlimitedWithoutMaxStreams(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6})
	for i := 0; i < 32; i++ {
		if v := n.admitStream(fakeStream("c", 0)); !v.ok || v.victim != nil {
			t.Fatalf("stream %d: verdict %+v, want unconditional admit", i, v)
		}
	}
}

// TestAdmissionShedsLowestStandingFirst pins the shed ordering: at the
// bound, a request from a higher-standing client preempts the active
// stream with the weakest standing; a lower-standing request is
// refused with a retry hint.
func TestAdmissionShedsLowestStandingFirst(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6, MaxStreams: 2})
	n.ledger.Credit("freerider", 1)
	n.ledger.Credit("steady", 1000)
	n.ledger.Credit("vip", 1_000_000)
	n.ledger.Credit("weak", 0.5)

	free := fakeStream("freerider", 0)
	steady := fakeStream("steady", 0)
	if v := n.admitStream(free); !v.ok {
		t.Fatalf("first admit refused: %+v", v)
	}
	if v := n.admitStream(steady); !v.ok {
		t.Fatalf("second admit refused: %+v", v)
	}

	// A weaker newcomer is refused, with a usable retry hint (the conn
	// path accounts the refusal; mirror it).
	if v := n.admitStream(fakeStream("weak", 0)); v.ok || v.retryAfterMillis == 0 {
		t.Fatalf("weak newcomer at capacity: verdict %+v, want refusal with retry hint", v)
	}
	n.recordShed("weak", false)

	// A stronger newcomer preempts the free rider, not the steady
	// contributor.
	vip := fakeStream("vip", 0)
	v := n.admitStream(vip)
	if !v.ok || v.victim != free {
		t.Fatalf("vip admission: verdict ok=%v victim=%v, want preemption of the free rider", v.ok, v.victim)
	}
	n.shedStream(v.victim, "test preemption")

	n.mu.Lock()
	_, freeActive := n.streams[free]
	_, vipActive := n.streams[vip]
	_, steadyActive := n.streams[steady]
	n.mu.Unlock()
	if freeActive || !vipActive || !steadyActive {
		t.Fatalf("post-preemption active set wrong: free=%v vip=%v steady=%v", freeActive, vipActive, steadyActive)
	}

	st := n.OverloadStats()
	if st.Sheds != 2 || st.Preempts != 1 {
		t.Fatalf("overload stats %+v, want 2 sheds (1 preempt)", st)
	}
	if st.ShedsByClient["freerider"] != 1 {
		t.Fatalf("free rider shed count %d, want 1", st.ShedsByClient["freerider"])
	}
}

// TestAdmissionPriorityBeatsStanding pins that an explicitly
// higher-priority request preempts even a higher-standing normal one.
func TestAdmissionPriorityBeatsStanding(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6, MaxStreams: 1})
	n.ledger.Credit("rich", 1_000_000)
	n.ledger.Credit("urgent", 1)

	rich := fakeStream("rich", 0)
	if v := n.admitStream(rich); !v.ok {
		t.Fatalf("admit failed: %+v", v)
	}
	v := n.admitStream(fakeStream("urgent", 5))
	if !v.ok || v.victim != rich {
		t.Fatalf("priority-5 request against priority-0 stream: verdict %+v, want preemption", v)
	}
}

// TestAdmissionEqualStandingDoesNotThrash pins the preemption margin:
// two requesters with (near-)equal standing must not preempt each
// other back and forth.
func TestAdmissionEqualStandingDoesNotThrash(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6, MaxStreams: 1})
	n.ledger.Credit("a", 100)
	n.ledger.Credit("b", 105) // within the 1.1x margin

	if v := n.admitStream(fakeStream("a", 0)); !v.ok {
		t.Fatalf("admit failed: %+v", v)
	}
	if v := n.admitStream(fakeStream("b", 0)); v.ok {
		t.Fatalf("near-equal standing preempted: %+v", v)
	}
}

// TestShedStreamDoesNotBlockOnVictimWriter pins the preemption
// notification contract: the victim's BUSY frame is written on the
// victim's own connection, whose write lock its serve loop may hold
// across a blocked socket flush. shedStream must cancel the victim and
// return without waiting on that write — blocking here would wedge the
// admitting connection's dispatcher on a third party's socket.
func TestShedStreamDoesNotBlockOnVictimWriter(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6})
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // runs before n.Close's wg.Wait
	notified := make(chan struct{})
	victim := fakeStream("victim", 0)
	victim.cancel = cancel
	victim.notifyBusy = func(code uint16, retryAfterMillis uint32, reason string) {
		close(notified)
		<-release // a wedged connection writer: the flush never returns
	}

	done := make(chan struct{})
	go func() {
		n.shedStream(victim, "test preemption")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shedStream blocked on the victim's connection writer")
	}
	if ctx.Err() == nil {
		t.Fatal("victim not cancelled before shedStream returned")
	}
	select {
	case <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("victim never received its best-effort BUSY notification")
	}
	if st := n.OverloadStats(); st.Sheds != 1 || st.Preempts != 1 {
		t.Fatalf("overload stats %+v, want 1 shed (1 preempt)", st)
	}
}

func TestBrownoutEngagesAtThreeQuarters(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6, MaxStreams: 4})
	if n.currentBatchBytes() != serveBatchBytes {
		t.Fatal("brownout active with no streams")
	}
	streams := make([]*stream, 0, 4)
	for i := 0; i < 2; i++ {
		s := fakeStream(fairshare.ID(rune('a'+i)), 0)
		n.admitStream(s)
		streams = append(streams, s)
	}
	if n.currentBatchBytes() != serveBatchBytes {
		t.Fatalf("brownout engaged at 2/4 streams")
	}
	s := fakeStream("c", 0)
	n.admitStream(s)
	streams = append(streams, s)
	if n.currentBatchBytes() != serveBatchBytes/2 {
		t.Fatalf("brownout not engaged at 3/4 streams: batch %d", n.currentBatchBytes())
	}
	n.unregisterStream(streams[0])
	if n.currentBatchBytes() != serveBatchBytes {
		t.Fatalf("brownout not lifted at 2/4 streams")
	}
}

// TestAdmissionSteadyStateAllocs is the ISSUE 10 hot-path gate: the
// granted (non-shed) admission fast path — decision, registration,
// realloc, release — allocates nothing in steady state.
func TestAdmissionSteadyStateAllocs(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6, MaxStreams: 8})
	s := fakeStream("warm", 0)
	// Warm every map involved: streams, posBuf, bytesOut, drain marks.
	n.recordServed("warm", 1024)
	for i := 0; i < 3; i++ {
		if v := n.admitStream(s); !v.ok {
			t.Fatalf("warmup admit refused: %+v", v)
		}
		n.unregisterStream(s)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if v := n.admitStream(s); !v.ok {
			t.Fatal("admit refused mid-gate")
		}
		n.unregisterStream(s)
	})
	if allocs != 0 {
		t.Fatalf("admission fast path allocates %.1f/op, want 0", allocs)
	}
}

// TestAdmissionRefusalScanAllocs gates the at-capacity decision scan
// itself (the frame write on the shed path is allowed to allocate; the
// scan is not).
func TestAdmissionRefusalScanAllocs(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6, MaxStreams: 1})
	n.ledger.Credit("holder", 1000)
	if v := n.admitStream(fakeStream("holder", 0)); !v.ok {
		t.Fatalf("admit refused: %+v", v)
	}
	weak := fakeStream("weak", 0)
	allocs := testing.AllocsPerRun(100, func() {
		if v := n.admitStream(weak); v.ok {
			t.Fatal("weak request admitted mid-gate")
		}
	})
	if allocs != 0 {
		t.Fatalf("refusal scan allocates %.1f/op, want 0", allocs)
	}
}

// TestServeStreamDropsExpiredDeadline pins the deadline propagation
// contract (DESIGN.md §15): a stream whose wire-carried deadline has
// passed is dropped before a single byte is served — the requester
// gets a terminal BUSY/CodeExpired and the accounting records it.
func TestServeStreamDropsExpiredDeadline(t *testing.T) {
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6})
	var buf bytes.Buffer
	cw := newConnWriter(&buf)
	s := fakeStream("late", 0)
	s.fileID = 42
	s.deadline = time.Now().Add(-time.Millisecond)

	n.serveStream(context.Background(), cw, s, []*rlnc.Message{{}})

	if st := n.OverloadStats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
	fr := wire.NewFrameReader(bytes.NewReader(buf.Bytes()))
	b, err := fr.Expect(wire.TypeBusy)
	if err != nil {
		t.Fatalf("expected a BUSY frame: %v", err)
	}
	var bz wire.Busy
	uerr := bz.Unmarshal(b.Bytes())
	b.Release()
	if uerr != nil {
		t.Fatal(uerr)
	}
	if bz.FileID != 42 || bz.Code != wire.CodeExpired {
		t.Fatalf("busy = %+v, want CodeExpired for file 42", bz)
	}
}

// recordingAllocator captures the Demand values handed to the policy
// seam each tick.
type recordingAllocator struct {
	mu      sync.Mutex
	demands map[fairshare.ID]float64
	inner   fairshare.EqualSplit
}

func (r *recordingAllocator) Allocate(req fairshare.AllocRequest) fairshare.Grants {
	r.mu.Lock()
	if r.demands == nil {
		r.demands = make(map[fairshare.ID]float64)
	}
	for _, q := range req.Requesters {
		r.demands[q.ID] = q.Demand
	}
	r.mu.Unlock()
	return r.inner.Allocate(req)
}

func (r *recordingAllocator) demand(id fairshare.ID) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.demands[id]
}

// TestReallocFeedsDemandFromDrainRates pins the PR 9 leftover: the
// realloc tick feeds Requester.Demand from observed drain rates — a
// requester with no history stays unbounded (0), a draining one gets
// headroom above its measured rate, and an idle one is clamped to the
// floor so water-fill stops over-granting it.
func TestReallocFeedsDemandFromDrainRates(t *testing.T) {
	rec := &recordingAllocator{}
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6, Allocator: rec})

	drainer := fakeStream("drainer", 0)
	idler := fakeStream("idler", 0)
	n.admitStream(drainer)
	n.admitStream(idler)

	// First full tick: no history for either — both unbounded.
	n.mu.Lock()
	n.lastDrainMark = time.Now().Add(-time.Second)
	n.mu.Unlock()
	n.reallocate()
	if d := rec.demand("drainer"); d != 0 {
		t.Fatalf("first-tick demand %v, want 0 (unbounded)", d)
	}

	// One tick of observed drain: ~50 KB over ~1 s.
	start := time.Now()
	n.recordServed("drainer", 50_000)
	n.mu.Lock()
	n.lastDrainMark = start.Add(-time.Second)
	n.mu.Unlock()
	n.reallocate()

	d, idle := rec.demand("drainer"), rec.demand("idler")
	// rate ≈ 50 KB/s (looser under -race), demand = 2x headroom.
	if d < 50_000 || d > 150_000 {
		t.Fatalf("drainer demand %v, want ≈100000 (2x of ~50KB/s)", d)
	}
	if idle != demandFloorBytesPerSec {
		t.Fatalf("idler demand %v, want the floor %v", idle, demandFloorBytesPerSec)
	}

	// A requester that leaves is purged, so a return starts unbounded.
	n.unregisterStream(idler)
	n.mu.Lock()
	n.lastDrainMark = time.Now().Add(-time.Second)
	n.mu.Unlock()
	n.reallocate()
	n.mu.Lock()
	_, tracked := n.drainRate["idler"]
	n.mu.Unlock()
	if tracked {
		t.Fatal("departed requester still tracked in drainRate")
	}
}

// TestDrainDemandEscapesFeedbackTraps pins the two escapes from the
// drain-rate feedback loop: a sample spanning an idle gap resets a
// returning requester to unbounded instead of reading bytes-over-idle-
// time as a near-zero rate, and a requester that drains essentially its
// whole grant is treated as grant-limited (unbounded) rather than
// capped at the rate its own starvation produced. Without either, a
// requester that ever touched the demand floor crawled at ~4 KB/s
// forever — a CLI fetch against an idle-for-minutes peer took 64 s for
// 600 KB.
func TestDrainDemandEscapesFeedbackTraps(t *testing.T) {
	rec := &recordingAllocator{}
	n := admissionNode(t, Config{UploadBytesPerSec: 1e6, Allocator: rec})
	n.admitStream(fakeStream("r", 0))

	// One full tick of history at a clearly demand-limited rate.
	n.mu.Lock()
	n.lastDrainMark = time.Now().Add(-time.Second)
	n.mu.Unlock()
	n.reallocate() // history mark
	n.recordServed("r", 50_000)
	n.mu.Lock()
	n.lastDrainMark = time.Now().Add(-time.Second)
	n.mu.Unlock()
	n.reallocate()
	if d := rec.demand("r"); d == 0 {
		t.Fatal("sanity: expected a bounded demand after one drained tick")
	}

	// A sample spanning an idle gap (> maxDrainInterval) resets the
	// requester to unbounded instead of pinning it at the floor.
	n.recordServed("r", 1_000)
	n.mu.Lock()
	n.lastDrainMark = time.Now().Add(-time.Minute)
	n.mu.Unlock()
	n.reallocate()
	if d := rec.demand("r"); d != 0 {
		t.Fatalf("post-gap demand %v, want 0 (unbounded)", d)
	}

	// Draining >= drainSaturation of the granted rate is grant-limited:
	// demand goes back to unbounded rather than echoing the grant.
	n.mu.Lock()
	n.lastDrainMark = time.Now().Add(-time.Second)
	n.mu.Unlock()
	n.reallocate() // fresh history mark after the reset
	n.recordServed("r", 1_000_000)
	n.mu.Lock()
	n.lastDrainMark = time.Now().Add(-time.Second)
	n.mu.Unlock()
	n.reallocate()
	if d := rec.demand("r"); d != 0 {
		t.Fatalf("saturated-drain demand %v, want 0 (unbounded)", d)
	}
}
