package peer

// Bounded admission and standing-aware load shedding (DESIGN.md §15).
//
// When Config.MaxStreams caps the serve path, a request arriving at the
// bound is not queued behind unbounded work: the node either preempts
// the active stream with the lowest (priority, fairness standing) —
// exactly the ordering the paper's incentive structure implies, free
// riders shed first — or refuses the newcomer with a typed BUSY /
// RETRY_AFTER frame it can act on. Before refusing anyone the node
// passes through a brownout band (three quarters of the bound and up)
// in which every stream serves with halved batch sizes, trading peak
// throughput for admission headroom.

import (
	"time"

	"asymshare/internal/fairshare"
	"asymshare/internal/wire"
)

const (
	// busyRetryAfterMillis is the back-off hint carried by every
	// admission refusal and preemption. It is deliberately modest: a
	// slot usually frees within a transfer time, and clients treat it
	// as a floor, not a schedule.
	busyRetryAfterMillis = 250

	// preemptMargin is how much larger (multiplicatively) a newcomer's
	// standing must be than the weakest active stream's before it may
	// preempt at equal priority. Without the margin two near-equal
	// requesters would preempt each other in a livelock.
	preemptMargin = 1.1

	// Brownout engages when active streams reach brownoutNum/brownoutDen
	// of MaxStreams.
	brownoutNum, brownoutDen = 3, 4

	// minDrainInterval is the shortest window a drain-rate sample may
	// span; register/unregister mini-ticks below it reuse the previous
	// full-tick rates instead of dividing by near-zero time.
	minDrainInterval = 200 * time.Millisecond

	// maxDrainInterval bounds how much wall clock one drain sample may
	// span. Ticks only run while streams are active, so the first tick
	// after an idle stretch sees marks that are minutes old; dividing
	// bytes by that gap reads as a near-zero drain rate and would pin a
	// returning requester at the floor. Gaps past the bound reset the
	// history to unbounded instead.
	maxDrainInterval = 2 * time.Second

	// drainSaturation is the fraction of the granted rate above which
	// an observed drain says nothing about demand: the requester
	// consumed essentially everything it was offered, so it is
	// grant-limited, not demand-limited, and capping it at the measured
	// rate would lock in the starvation it is already suffering.
	drainSaturation = 0.8

	// demandHeadroom multiplies the observed drain rate into the Demand
	// cap: 2x leaves room for a healthy stream to double each tick
	// until it is genuinely capacity-bound.
	demandHeadroom = 2.0

	// demandFloorBytesPerSec keeps a briefly idle requester's demand
	// above zero so it can ramp back up instead of being starved.
	demandFloorBytesPerSec = 4096.0
)

// admitVerdict is the outcome of one admission decision.
type admitVerdict struct {
	ok bool
	// retryAfterMillis is the back-off hint for a refusal (ok false).
	retryAfterMillis uint32
	// victim is the stream preempted to make room (ok true); the
	// caller sheds it outside the node lock.
	victim *stream
}

// admitStream decides — atomically with registration, so concurrent
// requests cannot oversubscribe the bound — whether the node takes on
// one more download stream. The granted fast path performs no
// allocation (gated by TestAdmissionSteadyStateAllocs).
func (n *Node) admitStream(s *stream) admitVerdict {
	n.mu.Lock()
	defer n.mu.Unlock()
	max := n.cfg.MaxStreams
	if max <= 0 || len(n.streams) < max {
		n.registerLocked(s)
		return admitVerdict{ok: true}
	}
	// At the bound: find the weakest active stream by (priority,
	// standing). Shed ordering is the fairness ledger's, so the
	// requesters the allocator would reward least are dropped first.
	var victim *stream
	var victimStanding float64
	for t := range n.streams {
		standing := n.ledger.Received(t.client)
		if victim == nil || t.priority < victim.priority ||
			(t.priority == victim.priority && standing < victimStanding) {
			victim, victimStanding = t, standing
		}
	}
	if victim != nil {
		standing := n.ledger.Received(s.client)
		if s.priority > victim.priority ||
			(s.priority == victim.priority && standing > victimStanding*preemptMargin) {
			delete(n.streams, victim)
			n.m.streamsActive.Add(-1)
			n.registerLocked(s)
			return admitVerdict{ok: true, victim: victim}
		}
	}
	return admitVerdict{retryAfterMillis: busyRetryAfterMillis}
}

// shedStream cancels a preempted stream and notifies it best-effort.
// Called outside n.mu. The cancel comes first — it is what actually
// frees the slot — and the BUSY frame goes out on its own goroutine:
// it is written on the victim's connection, whose write lock may be
// held by the victim's serve loop across a blocking, deadline-less
// socket flush (a stalled reader is the typical preemption target), so
// sending it inline would wedge the admitting connection's dispatcher
// on a third party's socket. The goroutine unblocks, at the latest,
// when the victim's connection closes.
func (n *Node) shedStream(victim *stream, reason string) {
	victim.cancel()
	if notify := victim.notifyBusy; notify != nil {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			notify(wire.CodeBusy, busyRetryAfterMillis, reason)
		}()
	}
	n.recordShed(victim.client, true)
}

// updateBrownoutLocked recomputes the brownout flag from the active
// stream count. Callers hold mu.
func (n *Node) updateBrownoutLocked() {
	max := n.cfg.MaxStreams
	b := max > 0 && len(n.streams)*brownoutDen >= max*brownoutNum
	n.brownout.Store(b)
	if b {
		n.m.overloadBrownout.Set(1)
	} else {
		n.m.overloadBrownout.Set(0)
	}
}

// currentBatchBytes is the per-flush DATA budget a serve loop may queue
// right now: the normal watermark, halved during brownout.
func (n *Node) currentBatchBytes() int {
	if n.brownout.Load() {
		return serveBatchBytes / 2
	}
	return serveBatchBytes
}

// recordShed accounts one refused or preempted request.
func (n *Node) recordShed(client fairshare.ID, preempt bool) {
	n.statsMu.Lock()
	n.sheds++
	if preempt {
		n.preempts++
	}
	n.shedsByClient[client]++
	n.statsMu.Unlock()
	n.m.overloadSheds.Inc()
	if preempt {
		n.m.overloadPreempts.Inc()
	}
}

// recordExpired accounts one stream dropped because its propagated
// deadline passed before (or while) it was served.
func (n *Node) recordExpired() {
	n.statsMu.Lock()
	n.expired++
	n.statsMu.Unlock()
	n.m.overloadExpired.Inc()
}

// OverloadStats reports the node's shed/preempt/expiry accounting.
type OverloadStats struct {
	Sheds         int64 // refusals + preemptions, total
	Preempts      int64 // sheds that made room for a higher-standing requester
	Expired       int64 // streams dropped on a passed deadline
	ShedsByClient map[fairshare.ID]int64
}

// OverloadStats snapshots the overload accounting.
func (n *Node) OverloadStats() OverloadStats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	by := make(map[fairshare.ID]int64, len(n.shedsByClient))
	for k, v := range n.shedsByClient {
		by[k] = v
	}
	return OverloadStats{Sheds: n.sheds, Preempts: n.preempts, Expired: n.expired, ShedsByClient: by}
}
