package peer_test

// Audit-path protocol robustness: malformed or oversized challenges
// must come back as typed wire errors, never hang the connection, and
// well-formed challenges over missing data must be answered honestly.

import (
	"bytes"
	"errors"
	"testing"

	"asymshare/internal/auth"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
	"asymshare/internal/wire"
)

func auditChallenge(fileID uint64, ids ...uint64) wire.AuditChallenge {
	return wire.AuditChallenge{
		FileID:     fileID,
		Nonce:      bytes.Repeat([]byte{1}, wire.AuditNonceLen),
		Key:        bytes.Repeat([]byte{2}, wire.AuditKeyLen),
		MessageIDs: ids,
	}
}

// TestAuditMalformedChallengeYieldsRemoteError pins the satellite
// contract for wire.SendError: garbage on the audit path produces a
// typed *RemoteError on the client side, not a hang or a bare close.
func TestAuditMalformedChallengeYieldsRemoteError(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 220), Store: store.NewMemory()})
	conn := dialAuthed(t, node, identity(t, 221))
	if err := wire.WriteFrame(conn, wire.TypeAuditChallenge, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_, err := wire.Expect(conn, wire.TypeAuditResponse)
	var remote *wire.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *wire.RemoteError", err)
	}
	if remote.Code != wire.CodeBadRequest {
		t.Errorf("code = %d, want CodeBadRequest", remote.Code)
	}
}

// TestAuditOversizedChallengeYieldsRemoteError sends a structurally
// valid frame whose sample count exceeds MaxAuditSample; the peer must
// refuse it with a typed error before allocating anything.
func TestAuditOversizedChallengeYieldsRemoteError(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 222), Store: store.NewMemory()})
	conn := dialAuthed(t, node, identity(t, 223))
	ch := auditChallenge(1, make([]uint64, wire.MaxAuditSample+1)...)
	if err := wire.WriteFrame(conn, wire.TypeAuditChallenge, ch.Marshal()); err != nil {
		t.Fatal(err)
	}
	_, err := wire.Expect(conn, wire.TypeAuditResponse)
	var remote *wire.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *wire.RemoteError", err)
	}
}

// TestAuditAnswersHeldAndMissing verifies an honest peer MACs what it
// holds and admits what it does not.
func TestAuditAnswersHeldAndMissing(t *testing.T) {
	st := store.NewMemory()
	msg := &rlnc.Message{FileID: 9, MessageID: 4, Payload: []byte("payload")}
	if err := st.Put(msg); err != nil {
		t.Fatal(err)
	}
	node := startPeer(t, peer.Config{Identity: identity(t, 224), Store: st})
	conn := dialAuthed(t, node, identity(t, 225))

	ch := auditChallenge(9, 4, 77)
	if err := wire.WriteFrame(conn, wire.TypeAuditChallenge, ch.Marshal()); err != nil {
		t.Fatal(err)
	}
	frame, err := wire.Expect(conn, wire.TypeAuditResponse)
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.AuditResponse
	if err := resp.Unmarshal(frame.Payload); err != nil {
		t.Fatal(err)
	}
	if resp.FileID != 9 || len(resp.Proofs) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	held, missing := resp.Proofs[0], resp.Proofs[1]
	if !held.Present {
		t.Fatal("stored message reported absent")
	}
	digest := msg.Digest()
	if !auth.VerifyAuditMAC(ch.Key, 9, 4, digest[:], held.MAC) {
		t.Error("MAC over held message does not verify")
	}
	if missing.Present || len(missing.MAC) != 0 {
		t.Errorf("missing message reported present: %+v", missing)
	}

	// The connection survives an audit: counters advanced, BYE works.
	served, sampled, heldN := node.AuditStats()
	if served != 1 || sampled != 2 || heldN != 1 {
		t.Errorf("AuditStats = (%d,%d,%d), want (1,2,1)", served, sampled, heldN)
	}
	if err := wire.WriteFrame(conn, wire.TypeBye, nil); err != nil {
		t.Fatal(err)
	}
}
